// Ngram-driven prefetching — the optimization §5.2 motivates: "a JSON
// request prediction system can be used by CDNs to perform prefetching for
// cacheable requests". The prefetcher keeps a short per-client history at
// the edge, asks the trained ngram model for likely next URLs, and warms the
// cache with the confident ones. Raw URLs are used (a clustered URL is not
// fetchable); GET-only, cacheable-only filtering happens in the edge server.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cdn/edge.h"
#include "core/ngram.h"
#include "core/timing.h"

namespace jsoncdn::core {

struct PrefetcherParams {
  std::size_t top_k = 3;             // candidates per request
  double min_score = 0.05;           // confidence floor
  std::size_t history_length = 4;    // per-client context kept at the edge
  std::size_t max_tracked_clients = 100'000;  // memory bound
  // Interarrival horizon (only used when a timing model is attached): skip
  // candidates expected later than this — they would age out of the cache
  // before use. 0 disables the upper bound.
  double max_expected_gap_seconds = 600.0;
  // Skip candidates expected sooner than this — the origin fetch cannot
  // complete before the client asks anyway.
  double min_expected_gap_seconds = 0.0;
};

class NgramPrefetcher final : public cdn::PrefetchPolicy {
 public:
  // The model is owned by value: a trained model is moved in once and the
  // prefetcher is then self-contained at the edge.
  NgramPrefetcher(NgramModel model, const PrefetcherParams& params);

  // Attaches an interarrival model (§5.2 future work): candidates are then
  // filtered by their expected gap against the configured horizon.
  void set_timing_model(InterarrivalModel timing);

  [[nodiscard]] std::vector<std::string> candidates(
      const logs::LogRecord& served) override;

  [[nodiscard]] const NgramModel& model() const noexcept { return model_; }
  [[nodiscard]] std::uint64_t suggestions_made() const noexcept {
    return suggestions_;
  }
  [[nodiscard]] std::uint64_t timing_filtered() const noexcept {
    return timing_filtered_;
  }

 private:
  NgramModel model_;
  PrefetcherParams params_;
  std::optional<InterarrivalModel> timing_;
  std::unordered_map<std::string, std::deque<std::string>> history_;
  std::uint64_t suggestions_ = 0;
  std::uint64_t timing_filtered_ = 0;
};

// Convenience: train a raw-URL ngram model from a (typically historical)
// dataset, one observation sequence per client flow.
[[nodiscard]] NgramModel train_prefetch_model(const logs::Dataset& ds,
                                              std::size_t context_len = 1,
                                              std::size_t min_flow_requests = 2);

}  // namespace jsoncdn::core
