
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/iot_telemetry.cpp" "examples/CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o" "gcc" "examples/CMakeFiles/iot_telemetry.dir/iot_telemetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jsoncdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/jsoncdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jsoncdn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/jsoncdn_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
