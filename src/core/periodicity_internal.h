// Shared internals of the §5.1 detector pipeline, split out so the strategy
// implementations in period_detector.cpp can reuse the exact binning,
// spectral-significance, and fundamental-extraction steps instead of
// re-deriving them. Everything here is code moved verbatim out of
// periodicity.cpp — the default ACF+FFT path composes these pieces in the
// same order it always ran them, so its output is bit-identical.
//
// Not part of the public core API; include only from core/*.cpp.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "core/periodicity.h"
#include "stats/kernels.h"
#include "stats/rng.h"

namespace jsoncdn::core::detail {

// Relative-tolerance period equality shared by every strategy (and by
// PeriodicityDetector::periods_match): |a - b| / max(a, b) <= tol.
[[nodiscard]] inline bool relative_periods_match(double a, double b,
                                                 double tol) noexcept {
  if (a <= 0.0 || b <= 0.0) return false;
  const double ref = std::max(a, b);
  return std::abs(a - b) / ref <= tol;
}

// Max ACF value over peak lags >= 1 (0 when no peaks). Same peak definition
// as stats::acf_peaks, scanned inline so the permutation loop allocates no
// peak-index vector.
[[nodiscard]] inline double max_acf_peak(const std::vector<double>& acf) {
  double best = 0.0;
  for (std::size_t k = 1; k < acf.size(); ++k) {
    const bool rising = acf[k] > acf[k - 1];
    const bool falling_next = (k + 1 >= acf.size()) || acf[k] >= acf[k + 1];
    if (rising && falling_next) best = std::max(best, acf[k]);
  }
  return best;
}

// Powers are finite and non-negative, so the lane-blocked max kernel is
// exact here (max over such inputs is order-independent).
[[nodiscard]] inline double max_power(const std::vector<double>& power) {
  return stats::kernels::max_value(power.data(), power.size(), 0.0);
}

struct BinnedFlow {
  bool usable = false;   // flow long/dense enough to test
  double dt = 0.0;       // effective bin width
  double span = 0.0;     // observation span (last - first timestamp)
  std::size_t max_lag = 0;
};

// Bins `times` into `signal` under the DetectorParams policy (sample cap,
// density cap, min-cycles lag bound). usable == false when the flow is too
// short, too sparse, or spans too few cycles for any lag to be testable.
[[nodiscard]] BinnedFlow bin_flow(const DetectorParams& params,
                                  std::span<const double> times,
                                  std::vector<double>& signal);

// Per-signal analysis: fused spectral pass, permutation thresholds, and the
// list of significant (frequency, ACF-peak) matches.
struct FlowAnalysis {
  bool usable = false;          // signal reached the spectral pass
  bool significant = false;     // passed the permutation thresholds
  double dt = 0.0;
  double acf_threshold = 0.0;
  double power_threshold = 0.0;
  struct Match {
    std::size_t lag;
    double value;   // ACF at the lag
    double power;   // periodogram power of the licensing frequency
  };
  std::vector<Match> matches;   // deduplicated by lag
};

// Runs the spectral + permutation + matching steps over an already-binned
// signal. `signal` may alias scratch.signal; the shuffle buffer is separate.
// `span` is the flow's observation span in seconds (bounds the harmonic
// search at span / min_cycles, exactly as the fused pipeline always did).
[[nodiscard]] FlowAnalysis analyze_signal(const DetectorParams& params,
                                          std::span<const double> signal,
                                          double dt, double span,
                                          std::size_t max_lag,
                                          stats::Rng& rng,
                                          DetectScratch& scratch);

// Fundamental extraction: repeatedly picks the smallest matched lag whose
// ACF peak is comparable (>= 0.5x) to the strongest remaining peak, then
// folds that period's near-multiples, appending up to `max_periods`
// detections to `out`. `matches` must be sorted by ACF value descending.
void pick_fundamentals(const FlowAnalysis& analysis, double tolerance,
                       std::size_t max_periods,
                       std::vector<PeriodDetection>& out);

}  // namespace jsoncdn::core::detail
