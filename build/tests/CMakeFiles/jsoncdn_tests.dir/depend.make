# Empty dependencies file for jsoncdn_tests.
# This may be replaced when dependencies are built.
