file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_workload.dir/app_graph.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/app_graph.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/catalog.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/device_profiles.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/device_profiles.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/generator.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/generator.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/industry.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/industry.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/scenario.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/scenario.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/sessions.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/sessions.cpp.o.d"
  "CMakeFiles/jsoncdn_workload.dir/traffic_mix.cpp.o"
  "CMakeFiles/jsoncdn_workload.dir/traffic_mix.cpp.o.d"
  "libjsoncdn_workload.a"
  "libjsoncdn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
