// Case-insensitive HTTP header map (field names are case-insensitive per
// RFC 7230 §3.2). Preserves insertion order and supports repeated fields.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jsoncdn::http {

// ASCII case-insensitive comparison (HTTP field names are ASCII).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b) noexcept;

class HeaderMap {
 public:
  // Appends a field; repeated names are kept (e.g. Set-Cookie).
  void add(std::string_view name, std::string_view value);
  // Replaces all fields with this name by a single one.
  void set(std::string_view name, std::string_view value);
  // First value for the name, if any.
  [[nodiscard]] std::optional<std::string_view> get(
      std::string_view name) const;
  // All values for the name, in insertion order.
  [[nodiscard]] std::vector<std::string_view> get_all(
      std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  void remove(std::string_view name);

  [[nodiscard]] std::size_t size() const noexcept { return fields_.size(); }
  [[nodiscard]] bool empty() const noexcept { return fields_.empty(); }

  struct Field {
    std::string name;
    std::string value;
  };
  [[nodiscard]] const std::vector<Field>& fields() const noexcept {
    return fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace jsoncdn::http
