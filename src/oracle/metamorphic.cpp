#include "oracle/metamorphic.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/hash.h"
#include "stats/rng.h"

namespace jsoncdn::oracle {

namespace {

constexpr std::string_view kScheme = "https://";

std::string insert_infix(const std::string& url, const std::string& infix) {
  if (url.rfind(kScheme, 0) != 0) {
    throw std::invalid_argument("rename_urls_order_preserving: URL without " +
                                std::string(kScheme) + " scheme: " + url);
  }
  std::string out;
  out.reserve(url.size() + infix.size());
  out.append(kScheme);
  out.append(infix);
  out.append(url, kScheme.size(), std::string::npos);
  return out;
}

}  // namespace

logs::Dataset shift_time(const logs::Dataset& ds, double delta_seconds) {
  std::vector<logs::LogRecord> records = ds.records();
  for (auto& record : records) record.timestamp += delta_seconds;
  return logs::Dataset(std::move(records));
}

logs::Dataset scale_time(const logs::Dataset& ds, double factor) {
  if (factor <= 0.0) throw std::invalid_argument("scale_time: factor <= 0");
  std::vector<logs::LogRecord> records = ds.records();
  for (auto& record : records) record.timestamp *= factor;
  return logs::Dataset(std::move(records));
}

logs::Dataset merge_datasets(const logs::Dataset& a, const logs::Dataset& b) {
  std::vector<logs::LogRecord> records;
  records.reserve(a.size() + b.size());
  records.insert(records.end(), a.records().begin(), a.records().end());
  records.insert(records.end(), b.records().begin(), b.records().end());
  logs::Dataset merged(std::move(records));
  merged.sort_by_time();
  return merged;
}

logs::Dataset rename_disjoint(const logs::Dataset& ds,
                              const std::string& tag) {
  std::vector<logs::LogRecord> records = ds.records();
  for (auto& record : records) {
    record.client_id += tag;
    record.url = insert_infix(record.url, tag + ".");
    record.domain = tag + "." + record.domain;
  }
  return logs::Dataset(std::move(records));
}

logs::Dataset inject_benign_noise(const logs::Dataset& ds, std::size_t count,
                                  std::uint64_t seed) {
  const auto [t_min, t_max] = ds.time_range();
  stats::Rng rng(stats::fnv1a64_mix(seed ^ 0x6e6f697365ULL));
  std::vector<logs::LogRecord> records = ds.records();
  records.reserve(records.size() + count);
  for (std::size_t i = 0; i < count; ++i) {
    logs::LogRecord noise;
    noise.timestamp = t_min + rng.uniform() * std::max(t_max - t_min, 1.0);
    noise.client_id = "noise-client-" + std::to_string(i);
    noise.user_agent = "NoiseAgent/1.0";
    noise.url = "https://noise-" + std::to_string(i) +
                ".example/burst/" + std::to_string(i);
    noise.domain = "noise-" + std::to_string(i) + ".example";
    noise.content_type = "application/json";
    noise.status = 200;
    noise.response_bytes = 64;
    noise.cache_status = logs::CacheStatus::kMiss;
    records.push_back(std::move(noise));
  }
  logs::Dataset out(std::move(records));
  out.sort_by_time();
  return out;
}

logs::Dataset rename_urls_order_preserving(const logs::Dataset& ds,
                                           const std::string& infix) {
  std::vector<logs::LogRecord> records = ds.records();
  for (auto& record : records) {
    record.url = insert_infix(record.url, infix);
    record.domain = infix + record.domain;
  }
  return logs::Dataset(std::move(records));
}

DetectionLabels detection_labels(const core::PeriodicityReport& report,
                                 const std::string& url_strip_infix) {
  DetectionLabels labels;
  for (const auto& object : report.objects) {
    std::string url = object.url;
    if (!url_strip_infix.empty()) {
      const auto pos = url.find(url_strip_infix);
      if (pos != std::string::npos) url.erase(pos, url_strip_infix.size());
    }
    for (const auto& rec : object.clients) {
      labels[{url, rec.client}] = {rec.periodic, rec.period_seconds};
    }
  }
  return labels;
}

DetectionLabels scale_periods(const DetectionLabels& labels, double factor) {
  if (factor <= 0.0)
    throw std::invalid_argument("scale_periods: factor <= 0");
  DetectionLabels out;
  for (const auto& [key, value] : labels)
    out.emplace(key, std::make_pair(value.first, value.second * factor));
  return out;
}

DetectionLabels restrict_labels(const DetectionLabels& labels,
                                const DetectionLabels& reference) {
  DetectionLabels out;
  for (const auto& [key, value] : labels) {
    if (reference.contains(key)) out.emplace(key, value);
  }
  return out;
}

bool labels_equivalent(const DetectionLabels& a, const DetectionLabels& b,
                       double period_rel_tol) {
  if (a.size() != b.size()) return false;
  auto it = a.begin();
  for (const auto& [key, vb] : b) {
    const auto& [ka, va] = *it++;
    if (ka != key || va.first != vb.first) return false;
    const double ref = std::max(std::abs(va.second), std::abs(vb.second));
    if (std::abs(va.second - vb.second) > period_rel_tol * ref) return false;
  }
  return true;
}

}  // namespace jsoncdn::oracle
