#include "workload/adversary.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "workload/generator.h"
#include "workload/sessions.h"

namespace jsoncdn::workload {

std::string_view to_string(AttackKind kind) noexcept {
  switch (kind) {
    case AttackKind::kScraper: return "scraper";
    case AttackKind::kStuffing: return "stuffing";
    case AttackKind::kFlashCrowd: return "flash-crowd";
    case AttackKind::kOversized: return "oversized";
  }
  return "scraper";
}

bool parse_attack_kind(std::string_view text, AttackKind& out) noexcept {
  if (text == "scraper") {
    out = AttackKind::kScraper;
  } else if (text == "stuffing") {
    out = AttackKind::kStuffing;
  } else if (text == "flash-crowd") {
    out = AttackKind::kFlashCrowd;
  } else if (text == "oversized") {
    out = AttackKind::kOversized;
  } else {
    return false;
  }
  return true;
}

namespace {

// Attackers live in their own address space (TEST-NET style), disjoint from
// the benign population's 10.x.y.z, so a client-address join labels every
// hostile request.
std::string attacker_address(std::size_t index) {
  return "203.0." + std::to_string((index >> 8) & 0xff) + "." +
         std::to_string(index & 0xff);
}

// Scraper and amplification bots disclose library stacks (or nothing
// parseable) — machine-class under the edge's two-class split.
const char* scraper_ua(stats::Rng& rng) {
  static const char* kUas[] = {
      "python-requests/2.31.0",
      "Scrapy/2.11.0 (+https://scrapy.org)",
      "curl/8.4.0",
      "Go-http-client/2.0",
  };
  return kUas[static_cast<std::size_t>(rng.uniform_int(0, 3))];
}

// Stuffing bots wear faked browser UAs: UA-based classing sees a human, so
// only per-client rate limiting catches the burst cadence.
const char* stuffing_ua(stats::Rng& rng) {
  static const char* kUas[] = {
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/119.0.0.0 Safari/537.36",
      "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/118.0.0.0 Safari/537.36",
  };
  return kUas[static_cast<std::size_t>(rng.uniform_int(0, 1))];
}

// Flash-crowd members are genuine browsers.
const char* flash_ua(stats::Rng& rng) {
  static const char* kUas[] = {
      "Mozilla/5.0 (Linux; Android 13; Pixel 7) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/119.0.0.0 Mobile Safari/537.36",
      "Mozilla/5.0 (iPhone; CPU iPhone OS 17_0 like Mac OS X) "
      "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/17.0 Mobile/15E148 "
      "Safari/604.1",
      "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_15_7) AppleWebKit/537.36 "
      "(KHTML, like Gecko) Chrome/119.0.0.0 Safari/537.36",
  };
  return kUas[static_cast<std::size_t>(rng.uniform_int(0, 2))];
}

}  // namespace

std::size_t inject_hostile_traffic(Workload& out, const DomainCatalog& catalog,
                                   const HostileConfig& config, double window,
                                   std::size_t benign_events,
                                   stats::Rng rng) {
  if (config.hostile_share <= 0.0 || benign_events == 0) return 0;
  if (config.hostile_share >= 1.0) {
    throw std::invalid_argument(
        "inject_hostile_traffic: hostile_share must be in [0, 1)");
  }

  // hostile / (benign + hostile) == share  =>  hostile = benign * s/(1-s).
  const auto target = static_cast<std::size_t>(
      std::ceil(static_cast<double>(benign_events) * config.hostile_share /
                (1.0 - config.hostile_share)));

  const std::vector<double> weights = {
      config.scraper_weight, config.stuffing_weight,
      config.flash_crowd_weight, config.oversized_weight};
  const double weight_sum = weights[0] + weights[1] + weights[2] + weights[3];
  if (weight_sum <= 0.0) return 0;

  std::size_t attacker_index = 0;
  std::size_t emitted_total = 0;
  // Backstop against degenerate catalogs (empty domains, everything outside
  // the window): no attack loop spins forever chasing an unfillable budget.
  constexpr std::size_t kMaxAttackersPerClass = 100'000;

  // Appends one attacker's in-window events plus their truth row.
  auto commit = [&](std::vector<RequestEvent>&& events, AttackKind kind,
                    const std::string& address, const std::string& ua) {
    std::erase_if(events, [&](const RequestEvent& ev) {
      return ev.time < 0.0 || ev.time >= window;
    });
    if (events.empty()) return std::size_t{0};
    AttackerTruth at;
    at.client_address = address;
    at.user_agent = ua;
    at.kind = kind;
    at.request_count = events.size();
    out.truth.attackers.push_back(std::move(at));
    const auto count = events.size();
    for (auto& ev : events) out.events.push_back(std::move(ev));
    emitted_total += count;
    return count;
  };

  const auto budget_of = [&](double weight) {
    return static_cast<std::size_t>(
        std::floor(static_cast<double>(target) * weight / weight_sum));
  };

  // --- Scrapers: walk a domain's URL space in order, machine cadence. ----
  {
    auto srng = rng.fork("scraper");
    std::size_t budget = budget_of(config.scraper_weight);
    std::size_t spawned = 0;
    while (budget > 0 && spawned++ < kMaxAttackersPerClass) {
      auto bot = srng.fork(attacker_index);
      const auto address = attacker_address(attacker_index++);
      const std::string ua = scraper_ua(bot);
      const auto dom = catalog.sample_domain(bot);
      const auto& domain = catalog.domains()[dom];

      // The full URL space of the domain, walked in catalog order — the
      // breadth-first enumeration signature real scrapers leave.
      std::vector<std::size_t> space;
      space.insert(space.end(), domain.html_objects.begin(),
                   domain.html_objects.end());
      space.insert(space.end(), domain.json_objects.begin(),
                   domain.json_objects.end());
      space.insert(space.end(), domain.asset_objects.begin(),
                   domain.asset_objects.end());
      if (space.empty()) continue;

      const auto want = std::min<std::size_t>(
          budget, static_cast<std::size_t>(bot.uniform_int(200, 900)));
      const double span =
          static_cast<double>(want) / std::max(config.scraper_rate, 1e-9);
      double t = bot.uniform(0.0, std::max(1e-9, window - span));

      std::vector<RequestEvent> events;
      events.reserve(want);
      std::size_t probe = 0;
      for (std::size_t k = 0; k < want; ++k) {
        RequestEvent ev;
        ev.time = t;
        ev.client_address = address;
        ev.user_agent = ua;
        ev.method = http::Method::kGet;
        if (bot.bernoulli(config.scraper_probe_share)) {
          // Probe outside the catalog: tunneled to the origin, answered 404.
          ev.url = "https://" + domain.name + "/.probe/" +
                   std::to_string(probe++);
        } else {
          ev.url = catalog.objects().at(space[k % space.size()]).url;
        }
        events.push_back(std::move(ev));
        t += bot.uniform(0.8, 1.2) / std::max(config.scraper_rate, 1e-9);
      }
      budget -= std::min(budget,
                         commit(std::move(events), AttackKind::kScraper,
                                address, ua));
    }
  }

  // --- Credential stuffing: POST bursts against an auth endpoint. --------
  {
    auto srng = rng.fork("stuffing");
    std::size_t budget = budget_of(config.stuffing_weight);
    // All bots in a campaign hit the same target — a popular domain's login
    // route, which is not in the catalog (tunneled, uncacheable).
    const auto tops = catalog.top_domains(3);
    std::size_t spawned = 0;
    while (budget > 0 && !tops.empty() &&
           spawned++ < kMaxAttackersPerClass) {
      auto bot = srng.fork(attacker_index);
      const auto address = attacker_address(attacker_index++);
      const std::string ua = stuffing_ua(bot);
      const auto dom = tops[static_cast<std::size_t>(bot.uniform_int(
          0, static_cast<std::int64_t>(tops.size()) - 1))];
      const std::string url =
          "https://" + catalog.domains()[dom].name + "/api/v1/login";

      const auto burst = std::min<std::size_t>(
          budget, static_cast<std::size_t>(bot.uniform_int(
                      static_cast<std::int64_t>(config.stuffing_burst_lo),
                      static_cast<std::int64_t>(config.stuffing_burst_hi))));
      const double span = static_cast<double>(burst) /
                          std::max(config.stuffing_burst_rate, 1e-9);
      double t = bot.uniform(0.0, std::max(1e-9, window - span));

      std::vector<RequestEvent> events;
      events.reserve(burst);
      for (std::size_t k = 0; k < burst; ++k) {
        RequestEvent ev;
        ev.time = t;
        ev.client_address = address;
        ev.user_agent = ua;
        ev.method = http::Method::kPost;
        ev.url = url;
        ev.request_bytes = static_cast<std::uint64_t>(bot.uniform_int(90, 160));
        events.push_back(std::move(ev));
        t += bot.uniform(0.8, 1.2) / std::max(config.stuffing_burst_rate, 1e-9);
      }
      budget -= std::min(budget,
                         commit(std::move(events), AttackKind::kStuffing,
                                address, ua));
    }
  }

  // --- Flash crowd: correlated browser sessions around one spike. --------
  {
    auto srng = rng.fork("flash");
    std::size_t budget = budget_of(config.flash_crowd_weight);
    const auto tops = catalog.top_domains(1);
    if (!tops.empty()) {
      const auto& domain = catalog.domains()[tops.front()];
      const double spike = srng.uniform(0.35, 0.65) * window;
      BrowserSessionParams session;
      std::size_t spawned = 0;
      while (budget > 0 && spawned++ < kMaxAttackersPerClass) {
        auto member = srng.fork(attacker_index);
        const auto address = attacker_address(attacker_index++);
        const std::string ua = flash_ua(member);
        const double t0 =
            spike + member.normal(0.0, config.flash_spike_stddev_seconds);
        auto events = generate_browser_session(domain, catalog.objects(),
                                               address, ua, t0, session,
                                               member);
        if (events.size() > budget) events.resize(budget);
        budget -= std::min(budget,
                           commit(std::move(events), AttackKind::kFlashCrowd,
                                  address, ua));
      }
    }
  }

  // --- Oversized amplification: hammer the largest bodies. ---------------
  {
    auto srng = rng.fork("oversized");
    std::size_t budget = budget_of(config.oversized_weight);
    // The catalog's largest bodies by size, largest first.
    std::vector<std::size_t> big(catalog.objects().size());
    for (std::size_t i = 0; i < big.size(); ++i) big[i] = i;
    std::sort(big.begin(), big.end(), [&](std::size_t a, std::size_t b) {
      const auto& oa = catalog.objects().at(a);
      const auto& ob = catalog.objects().at(b);
      if (oa.body_bytes != ob.body_bytes) return oa.body_bytes > ob.body_bytes;
      return oa.url < ob.url;  // deterministic tiebreak
    });
    const auto top = std::min(config.oversized_top_objects, big.size());
    std::size_t spawned = 0;
    while (budget > 0 && top > 0 && spawned++ < kMaxAttackersPerClass) {
      auto bot = srng.fork(attacker_index);
      const auto address = attacker_address(attacker_index++);
      const std::string ua = scraper_ua(bot);
      const auto want = std::min<std::size_t>(
          budget, static_cast<std::size_t>(bot.uniform_int(100, 500)));
      const double span =
          static_cast<double>(want) / std::max(config.oversized_rate, 1e-9);
      double t = bot.uniform(0.0, std::max(1e-9, window - span));

      std::vector<RequestEvent> events;
      events.reserve(want);
      for (std::size_t k = 0; k < want; ++k) {
        RequestEvent ev;
        ev.time = t;
        ev.client_address = address;
        ev.user_agent = ua;
        ev.method = http::Method::kGet;
        ev.url = catalog.objects().at(big[k % top]).url;
        events.push_back(std::move(ev));
        t += bot.uniform(0.8, 1.2) / std::max(config.oversized_rate, 1e-9);
      }
      budget -= std::min(budget,
                         commit(std::move(events), AttackKind::kOversized,
                                address, ua));
    }
  }

  out.truth.hostile_events += emitted_total;
  return emitted_total;
}

}  // namespace jsoncdn::workload
