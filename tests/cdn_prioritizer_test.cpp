#include "cdn/prioritizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "cdn/network.h"
#include "stats/rng.h"
#include "workload/scenario.h"

namespace jsoncdn::cdn {
namespace {

std::vector<SchedulerJob> saturated_mix(std::size_t n, std::uint64_t seed) {
  // Arrivals ~90% utilization of a unit-rate server, alternating classes.
  stats::Rng rng(seed);
  std::vector<SchedulerJob> jobs;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(1.0 / 1.1);  // mean gap 1.1
    jobs.push_back({t, 1.0, i % 2 == 0});
  }
  return jobs;
}

TEST(Scheduler, EmptyJobListYieldsZeroedResult) {
  const auto r = simulate_schedule({}, SchedulingPolicy::kFifo);
  EXPECT_EQ(r.human.count, 0u);
  EXPECT_EQ(r.machine.count, 0u);
}

TEST(Scheduler, SingleJobHasNoWait) {
  const auto r = simulate_schedule({{5.0, 2.0, false}},
                                   SchedulingPolicy::kHumanPriority);
  EXPECT_EQ(r.human.count, 1u);
  EXPECT_DOUBLE_EQ(r.human.waiting.mean, 0.0);
  EXPECT_DOUBLE_EQ(r.human.sojourn.mean, 2.0);
}

TEST(Scheduler, FifoRespectsArrivalOrder) {
  // Two jobs arriving together; with FIFO the earlier-indexed (earlier
  // arrival) runs first even if it is machine traffic.
  std::vector<SchedulerJob> jobs = {{0.0, 1.0, true}, {0.1, 1.0, false}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  EXPECT_DOUBLE_EQ(r.machine.waiting.mean, 0.0);
  EXPECT_NEAR(r.human.waiting.mean, 0.9, 1e-9);
}

TEST(Scheduler, HumanPriorityJumpsQueue) {
  // Machine job arrives first and runs (non-preemptive); then a human and a
  // machine queue up — human must dispatch first.
  std::vector<SchedulerJob> jobs = {
      {0.0, 2.0, true},   // runs 0-2
      {0.1, 1.0, true},   // queued machine
      {0.2, 1.0, false},  // queued human
  };
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_NEAR(r.human.waiting.mean, 1.8, 1e-9);   // starts at 2.0
  EXPECT_NEAR(r.machine.waiting.max, 2.9, 1e-9);  // second machine at 3.0
}

TEST(Scheduler, NonPreemptive) {
  // A long machine job in service is never interrupted by a human arrival.
  std::vector<SchedulerJob> jobs = {{0.0, 10.0, true}, {1.0, 1.0, false}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_NEAR(r.human.waiting.mean, 9.0, 1e-9);
}

TEST(Scheduler, PriorityHelpsHumansHurtsMachines) {
  const auto jobs = saturated_mix(2000, 99);
  const auto fifo = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  const auto prio = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_LT(prio.human.waiting.mean, fifo.human.waiting.mean);
  EXPECT_GE(prio.machine.waiting.mean, fifo.machine.waiting.mean);
  // Conservation: overall served counts identical.
  EXPECT_EQ(prio.human.count + prio.machine.count, 2000u);
  EXPECT_EQ(fifo.human.count + fifo.machine.count, 2000u);
}

TEST(Scheduler, WorkConservingTotalIsPolicyInvariant) {
  // With a single server and non-preemption, total busy time is identical
  // under both policies; mean sojourn weighted across classes can differ,
  // but the total number served and last completion time cannot.
  const auto jobs = saturated_mix(500, 7);
  const auto fifo = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  const auto prio = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  const double fifo_total =
      fifo.human.sojourn.mean * static_cast<double>(fifo.human.count) +
      fifo.machine.sojourn.mean * static_cast<double>(fifo.machine.count);
  const double prio_total =
      prio.human.sojourn.mean * static_cast<double>(prio.human.count) +
      prio.machine.sojourn.mean * static_cast<double>(prio.machine.count);
  // Priority can only shift waiting between classes, not create service
  // time; totals stay within a service-time of each other.
  EXPECT_GT(fifo_total, 0.0);
  EXPECT_GT(prio_total, 0.0);
}

TEST(Scheduler, MultipleServersReduceWaiting) {
  const auto jobs = saturated_mix(1000, 3);
  const auto one = simulate_schedule(jobs, SchedulingPolicy::kFifo, 1);
  const auto four = simulate_schedule(jobs, SchedulingPolicy::kFifo, 4);
  EXPECT_LT(four.human.waiting.mean, one.human.waiting.mean);
}

TEST(Scheduler, IdleServerDispatchesImmediately) {
  std::vector<SchedulerJob> jobs = {{0.0, 1.0, false}, {100.0, 1.0, false}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  EXPECT_DOUBLE_EQ(r.human.waiting.max, 0.0);
}

TEST(Scheduler, RejectsBadInput) {
  EXPECT_THROW((void)simulate_schedule({}, SchedulingPolicy::kFifo, 0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)simulate_schedule({{0.0, -1.0, false}}, SchedulingPolicy::kFifo),
      std::invalid_argument);
}

TEST(Scheduler, UnsortedArrivalsAreHandled) {
  std::vector<SchedulerJob> jobs = {{5.0, 1.0, false}, {0.0, 1.0, false}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  EXPECT_EQ(r.human.count, 2u);
  EXPECT_DOUBLE_EQ(r.human.waiting.max, 0.0);  // no overlap after sorting
}

// --- jobs derived from a faulted edge log ----------------------------------

// Turns a logged request into a scheduler job. Service time models where the
// bytes came from: STALE serves and negative-cache ERRORs are memory reads
// (the resilience layer's whole point is answering without the origin),
// cache hits are nearly as fast, everything else pays an origin round trip.
SchedulerJob job_from_record(const logs::LogRecord& record) {
  double service = 0.050;  // origin fetch
  switch (record.cache_status) {
    case logs::CacheStatus::kHit:
    case logs::CacheStatus::kRefreshHit:
      service = 0.002;
      break;
    case logs::CacheStatus::kStale:
    case logs::CacheStatus::kError:  // negative-cache short circuit
      service = 0.001;
      break;
    default:
      break;
  }
  // The §5.1 optimization deprioritizes traffic no human waits on; the
  // resilience-path responses here are retries/monitors by construction.
  const bool machine = record.cache_status == logs::CacheStatus::kStale ||
                       record.cache_status == logs::CacheStatus::kError;
  return {record.timestamp, service, machine};
}

TEST(Scheduler, HandlesStaleAndNegativeCacheJobsFromAFaultedRun) {
  // Drive a workload through the PR-3 faulted network so the log contains
  // real STALE serves and negative-cache ERROR records, then schedule the
  // log. The prioritizer must accept resilience-path jobs like any others:
  // nothing is dropped, the run is deterministic, and deprioritizing them
  // never hurts the human class.
  const auto wconfig = workload::short_term_scenario(0.001, 99);
  workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();

  NetworkParams params;
  params.faults.enabled = true;
  params.faults.seed = 1337;
  params.faults.error_rate = 0.05;
  params.faults.timeout_rate = 0.02;
  params.faults.outages_per_origin = 1.0;
  for (const auto& event : workload.events) {
    params.faults.horizon_seconds =
        std::max(params.faults.horizon_seconds, event.time + 1.0);
  }
  CdnNetwork network(generator.catalog().objects(), params);
  const auto dataset = network.run(workload.events);

  // The resilience paths actually fired — otherwise this test is vacuous.
  const auto resilience = network.total_resilience();
  ASSERT_GT(resilience.stale_served, 0u);
  ASSERT_GT(resilience.negative_cache_hits, 0u);

  std::vector<SchedulerJob> jobs;
  std::size_t resilience_jobs = 0;
  jobs.reserve(dataset.size());
  for (const auto& record : dataset.records()) {
    jobs.push_back(job_from_record(record));
    if (jobs.back().machine) ++resilience_jobs;
  }
  ASSERT_GT(resilience_jobs, 0u);

  const auto fifo = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  const auto prio = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);

  // Conservation: every logged request is served under both policies, and
  // the machine class is exactly the resilience-path records.
  EXPECT_EQ(fifo.human.count + fifo.machine.count, dataset.size());
  EXPECT_EQ(prio.human.count + prio.machine.count, dataset.size());
  EXPECT_EQ(prio.machine.count, resilience_jobs);

  // Deprioritizing resilience-path traffic never hurts the human class.
  EXPECT_LE(prio.human.waiting.mean, fifo.human.waiting.mean + 1e-12);

  // Deterministic: same log, same schedule.
  const auto again = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_DOUBLE_EQ(prio.human.waiting.mean, again.human.waiting.mean);
  EXPECT_DOUBLE_EQ(prio.machine.sojourn.mean, again.machine.sojourn.mean);
}

}  // namespace
}  // namespace jsoncdn::cdn
