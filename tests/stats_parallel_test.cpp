// Tests for the deterministic parallel primitives: pool lifecycle, exact
// task coverage, index-ordered results, exception propagation, nested-use
// safety, the chunk partition, and thread-count resolution.
#include "stats/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

namespace jsoncdn::stats {
namespace {

// RAII save/restore of JSONCDN_THREADS so tests cannot leak env state.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("JSONCDN_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv("JSONCDN_THREADS");
    } else {
      ::setenv("JSONCDN_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_old_) {
      ::setenv("JSONCDN_THREADS", old_.c_str(), 1);
    } else {
      ::unsetenv("JSONCDN_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ResolveThreads, ExplicitRequestPassesThrough) {
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(3), 3u);
  EXPECT_EQ(resolve_threads(64), 64u);
}

TEST(ResolveThreads, AutoUsesEnvWhenSet) {
  ScopedThreadsEnv env("6");
  EXPECT_EQ(resolve_threads(0), 6u);
  // An explicit request still wins over the env.
  EXPECT_EQ(resolve_threads(2), 2u);
}

TEST(ResolveThreads, AutoFallsBackToHardwareConcurrency) {
  ScopedThreadsEnv env(nullptr);
  EXPECT_GE(resolve_threads(0), 1u);
}

TEST(ResolveThreads, GarbageEnvIgnored) {
  {
    ScopedThreadsEnv env("not-a-number");
    EXPECT_GE(resolve_threads(0), 1u);
  }
  {
    ScopedThreadsEnv env("0");
    EXPECT_GE(resolve_threads(0), 1u);
  }
  {
    ScopedThreadsEnv env("-4");
    EXPECT_GE(resolve_threads(0), 1u);
  }
}

TEST(ChunkRange, CoversRangeExactlyAndBalanced) {
  for (const std::size_t n : {0u, 1u, 2u, 7u, 16u, 100u, 101u}) {
    for (const std::size_t chunks : {1u, 2u, 3u, 7u, 16u}) {
      if (chunks > n && n > 0) continue;  // chunk_count never exceeds n
      std::size_t covered = 0;
      std::size_t prev_end = 0;
      std::size_t max_len = 0, min_len = n + 1;
      for (std::size_t c = 0; c < chunks && n > 0; ++c) {
        const auto [begin, end] = chunk_range(n, chunks, c);
        EXPECT_EQ(begin, prev_end) << n << "/" << chunks << "#" << c;
        EXPECT_LE(begin, end);
        prev_end = end;
        covered += end - begin;
        max_len = std::max(max_len, end - begin);
        min_len = std::min(min_len, end - begin);
      }
      if (n > 0) {
        EXPECT_EQ(covered, n);
        EXPECT_EQ(prev_end, n);
        EXPECT_LE(max_len - min_len, 1u) << "unbalanced " << n << "/" << chunks;
      }
    }
  }
}

TEST(ChunkCount, PureFunctionOfSizeAndPool) {
  ThreadPool single(1);
  ThreadPool quad(4);
  EXPECT_EQ(chunk_count(single, 0), 0u);
  EXPECT_EQ(chunk_count(quad, 0), 0u);
  // A single-thread pool uses one chunk: the exact serial code path.
  EXPECT_EQ(chunk_count(single, 1000), 1u);
  // Multi-thread pools over-partition for load balancing, capped at n.
  EXPECT_EQ(chunk_count(quad, 1000), 16u);
  EXPECT_EQ(chunk_count(quad, 3), 3u);
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool single(1);
  EXPECT_EQ(single.thread_count(), 1u);
  ThreadPool quad(4);
  EXPECT_EQ(quad.thread_count(), 4u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> hits(kN);
    pool.run(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < kN; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << ", " << threads;
    }
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.run(20, [&](std::size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1000u);
  pool.run(0, [&](std::size_t) { FAIL() << "no tasks to run"; });
}

TEST(ThreadPool, PropagatesTaskException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.run(100,
               [&](std::size_t i) {
                 if (i == 37) throw std::runtime_error("task 37 failed");
                 completed.fetch_add(1);
               }),
      std::runtime_error);
  // Every non-throwing task still ran, and the pool stays usable.
  EXPECT_EQ(completed.load(), 99);
  std::atomic<int> after{0};
  pool.run(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPool, PropagatesExceptionFromInlinePath) {
  ThreadPool pool(1);  // no workers: run() executes inline on the caller
  EXPECT_THROW(pool.run(5,
                        [](std::size_t i) {
                          if (i == 2) throw std::logic_error("inline");
                        }),
               std::logic_error);
}

TEST(ThreadPool, NestedRunExecutesInline) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 8;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  // A task that re-enters its own pool must not deadlock; the nested run
  // executes inline on the already-pooled thread.
  pool.run(kOuter, [&](std::size_t outer) {
    pool.run(kInner, [&](std::size_t inner) {
      hits[outer * kInner + inner].fetch_add(1);
    });
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 103;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<std::size_t> chunks_seen{0};
  parallel_for(pool, kN,
               [&](std::size_t begin, std::size_t end, std::size_t) {
                 chunks_seen.fetch_add(1);
                 for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
               });
  EXPECT_EQ(chunks_seen.load(), chunk_count(pool, kN));
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelMap, ResultsAreIndexOrdered) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 500;
  const auto out = parallel_map<std::size_t>(
      pool, kN, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), kN);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

struct SumAcc {
  std::uint64_t sum = 0;
  std::vector<std::size_t> order;  // chunk-begin indices, in merge order
  void merge(const SumAcc& other) {
    sum += other.sum;
    order.insert(order.end(), other.order.begin(), other.order.end());
  }
};

TEST(ParallelReduce, MatchesSerialFoldInChunkOrder) {
  constexpr std::size_t kN = 1000;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    ThreadPool pool(threads);
    const auto acc = parallel_reduce<SumAcc>(
        pool, kN, [](SumAcc& a, std::size_t begin, std::size_t end) {
          a.order.push_back(begin);
          for (std::size_t i = begin; i < end; ++i) a.sum += i;
        });
    EXPECT_EQ(acc.sum, kN * (kN - 1) / 2) << threads;
    // Accumulators merged in ascending chunk order regardless of which
    // worker ran which chunk.
    EXPECT_TRUE(std::is_sorted(acc.order.begin(), acc.order.end())) << threads;
    EXPECT_EQ(acc.order.size(), chunk_count(pool, kN)) << threads;
  }
}

TEST(ParallelReduce, EmptyRangeYieldsDefaultAccumulator) {
  ThreadPool pool(4);
  const auto acc = parallel_reduce<SumAcc>(
      pool, 0, [](SumAcc&, std::size_t, std::size_t) {
        FAIL() << "body must not run on an empty range";
      });
  EXPECT_EQ(acc.sum, 0u);
}

}  // namespace
}  // namespace jsoncdn::stats
