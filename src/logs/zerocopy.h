// Zero-copy log ingestion: mmap the file (whole-file read fallback), walk it
// as string_views, and intern fields straight into a LogTable. No per-field
// std::string is ever built — unescaping only happens for the rare field
// that actually contains an escape byte, into one reused buffer.
//
// Semantics are identical to ingest_log_file (PR 3's hardened loop): same
// line accounting, '#' comment and "#jsoncdn-log" header/version handling,
// strict/permissive modes, quarantine callbacks, per-reason counts, and
// error-budget enforcement — same inputs produce the same IngestReport and
// the same rows in the same order.
#pragma once

#include <cstddef>
#include <string>

#include "logs/csv.h"
#include "logs/table.h"

namespace jsoncdn::logs {

// Read-only byte view of a file. Tries mmap first (the kernel pages data in
// as the parse walks it — no read()-into-buffer copy); falls back to one
// whole-file read when mmap is unavailable or fails (pipes, some
// filesystems). Non-copyable; unmaps/frees on destruction.
class MappedFile {
 public:
  // Throws std::runtime_error when the file cannot be opened.
  explicit MappedFile(const std::string& path);
  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] const char* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::string_view view() const noexcept {
    return std::string_view(data_, size_);
  }
  [[nodiscard]] bool is_mapped() const noexcept { return mapped_; }

 private:
  const char* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;      // true: munmap on destruction; false: delete[]
};

// Loads a whole log file into a LogTable via the zero-copy path. Error
// handling mirrors ingest_log_file exactly: throws when the file cannot be
// opened, on an unsupported "#jsoncdn-log" header version, on the first
// malformed line in strict mode, and when the permissive error budget is
// exceeded; otherwise malformed lines are counted/quarantined into *report.
[[nodiscard]] LogTable read_log_table(const std::string& path,
                                      const IngestOptions& options = {},
                                      IngestReport* report = nullptr);

}  // namespace jsoncdn::logs
