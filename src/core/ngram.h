// Backoff ngram request-prediction model (§5.2). The model learns transition
// counts from length-(1..N) contexts of previously requested tokens (raw or
// clustered URLs) to the next token. Prediction backs off: the longest
// observed context suffix is used first; shorter contexts (down to the
// unigram popularity prior) fill remaining top-K slots with a per-level
// discount — "stupid backoff" scoring, which preserves ranking, the only
// thing accuracy@K depends on.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "logs/dataset.h"
#include "logs/table.h"
#include "stats/hash.h"
#include "stats/rng.h"

namespace jsoncdn::core {

class NgramModel {
 public:
  // max_context: longest history used (the paper's "N"). N=1 is a bigram
  // model: predict from the single most recent request.
  explicit NgramModel(std::size_t max_context);

  // Adds all context->next transitions of one client request sequence.
  void observe_sequence(std::span<const std::string> tokens);

  // Adds every count of `other` (same max_context) into this model —
  // the merge half of shard-then-merge parallel training. Token ids are
  // remapped through the vocabulary, so predictions from a merged model are
  // identical to training one model on the concatenated shards: counts add
  // exactly and ranking ties break on token text, never on id.
  void merge(const NgramModel& other);

  struct Prediction {
    std::string token;
    double score = 0.0;  // backoff-discounted relative frequency
  };

  // Top-k next-token predictions for a history (most recent token last).
  [[nodiscard]] std::vector<Prediction> predict(
      std::span<const std::string> history, std::size_t k) const;

  [[nodiscard]] std::size_t vocabulary_size() const noexcept {
    return vocab_.size();
  }
  // True if the token was ever observed during training. Heterogeneous
  // lookup: no temporary std::string.
  [[nodiscard]] bool knows(std::string_view token) const {
    return vocab_.find(token) != vocab_.end();
  }
  [[nodiscard]] std::size_t max_context() const noexcept {
    return max_context_;
  }
  [[nodiscard]] std::uint64_t observed_transitions() const noexcept {
    return transitions_;
  }

 private:
  using TokenId = std::uint32_t;
  using CountMap = std::unordered_map<TokenId, std::uint32_t>;

  TokenId intern(std::string_view token);
  [[nodiscard]] std::string context_key(std::span<const TokenId> context) const;

  std::size_t max_context_;
  // Transparent hashing: interning and prediction look tokens up by
  // string_view without materializing a std::string per probe.
  std::unordered_map<std::string, TokenId, stats::TransparentStringHash,
                     std::equal_to<>>
      vocab_;
  std::vector<std::string> token_names_;
  // One table per context length; contexts serialized to byte-string keys.
  std::vector<std::unordered_map<std::string, CountMap>> tables_;
  CountMap unigrams_;
  std::uint64_t transitions_ = 0;
};

// ---- Table 3 evaluation ---------------------------------------------------

struct NgramEvalConfig {
  std::size_t context_len = 1;           // the paper's N
  std::vector<std::size_t> ks = {1, 5, 10};
  double train_fraction = 0.8;           // split by unique clients (paper)
  bool clustered = false;                // raw URLs vs clustered URLs
  std::size_t min_flow_requests = 2;
  std::uint64_t seed = 17;
  // Worker threads for token extraction, sharded training, and scoring:
  // 0 = auto (JSONCDN_THREADS env, else hardware_concurrency). Accuracy
  // figures are bit-identical for any value.
  std::size_t threads = 0;
};

struct NgramAccuracy {
  std::size_t context_len = 1;
  bool clustered = false;
  std::size_t train_clients = 0;
  std::size_t test_clients = 0;
  std::size_t predictions = 0;
  std::map<std::size_t, double> accuracy_at;  // k -> accuracy
};

// Trains on train_fraction of clients and scores accuracy@K on the rest,
// exactly the paper's protocol (client-level split, per-client request
// flows, URL features; clustered variant applies cluster_url()).
[[nodiscard]] NgramAccuracy evaluate_ngram(const logs::Dataset& ds,
                                           const NgramEvalConfig& config);

// Columnar variant: client flows group on interned symbols and URL tokens
// come straight from the table's dictionary. Accuracy figures are
// bit-identical to the Dataset overload on the equivalent rows.
[[nodiscard]] NgramAccuracy evaluate_ngram(const logs::TableView& view,
                                           const NgramEvalConfig& config);

}  // namespace jsoncdn::core
