// Overload protection: the admission-control layer in front of the edge —
// capacity model, per-client token buckets, bounded admission queue, and
// CoDel-style shedding. Everything is a pure function of the arrival
// sequence, so the tests drive exact scenarios and assert exact outcomes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cdn/edge.h"
#include "cdn/origin.h"
#include "cdn/overload.h"
#include "logs/anonymizer.h"
#include "workload/catalog.h"
#include "workload/sessions.h"

namespace jsoncdn::cdn {
namespace {

constexpr char kBrowserUa[] =
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 "
    "(KHTML, like Gecko) Chrome/118.0.0.0 Safari/537.36";
constexpr char kBotUa[] = "python-requests/2.31.0";

// ---- machine_class --------------------------------------------------------

TEST(MachineClassTest, BrowsersAndAppsAreHuman) {
  EXPECT_FALSE(machine_class(kBrowserUa));
  EXPECT_TRUE(machine_class(kBotUa));
  EXPECT_TRUE(machine_class("curl/8.1.2"));
  EXPECT_TRUE(machine_class(""));          // missing UA: machine-to-machine
  EXPECT_TRUE(machine_class("x!!weird"));  // garbage UA: machine-to-machine
}

// ---- OverloadController, driven directly ----------------------------------

TEST(OverloadControllerTest, DisabledControllerAlwaysAdmitsStateless) {
  OverloadParams params;  // model_capacity == false
  OverloadController controller(params);
  for (int i = 0; i < 100; ++i) {
    const auto d = controller.admit("c", /*machine=*/true, 0.0);
    EXPECT_TRUE(d.admitted());
    EXPECT_DOUBLE_EQ(d.queue_wait, 0.0);
    controller.complete(0.0, 10.0);
  }
  EXPECT_DOUBLE_EQ(controller.queue_delay(0.0), 0.0);
  EXPECT_EQ(controller.queued(0.0), 0u);
}

TEST(OverloadControllerTest, CapacityModelChargesQueueWait) {
  OverloadParams params;
  params.model_capacity = true;
  params.concurrency = 2;
  params.service_floor_seconds = 1.0;
  OverloadController controller(params);

  // Two requests fill both workers until t=1; the third waits for the
  // earliest-free worker.
  for (int i = 0; i < 2; ++i) {
    const auto d = controller.admit("c", false, 0.0);
    ASSERT_TRUE(d.admitted());
    EXPECT_DOUBLE_EQ(d.queue_wait, 0.0);
    controller.complete(0.0, 0.0);  // floored to 1.0
  }
  const auto third = controller.admit("c", false, 0.0);
  ASSERT_TRUE(third.admitted());
  EXPECT_DOUBLE_EQ(third.queue_wait, 1.0);
  controller.complete(0.0, 0.0);  // starts at t=1, frees at t=2

  // After every worker has drained, a late arrival waits for nothing.
  const auto later = controller.admit("c", false, 5.0);
  ASSERT_TRUE(later.admitted());
  EXPECT_DOUBLE_EQ(later.queue_wait, 0.0);
}

TEST(OverloadControllerTest, ServiceTimeIsFloored) {
  OverloadParams params;
  params.model_capacity = true;
  params.concurrency = 1;
  params.service_floor_seconds = 0.5;
  OverloadController controller(params);

  ASSERT_TRUE(controller.admit("c", false, 0.0).admitted());
  controller.complete(0.0, 0.001);  // floored: worker busy until 0.5
  EXPECT_DOUBLE_EQ(controller.admit("c", false, 0.0).queue_wait, 0.5);
  controller.complete(0.0, 2.0);  // above the floor: kept as-is

  // Second worker slot starts when the first frees (0.5) + 2.0 => 2.5.
  EXPECT_DOUBLE_EQ(controller.queue_delay(0.6), 2.5 - 0.6);
}

TEST(OverloadControllerTest, TokenBucketThrottlesPerClient) {
  OverloadParams params;
  params.model_capacity = true;
  params.bucket_rate = 1.0;
  params.bucket_burst = 3.0;
  OverloadController controller(params);

  // The burst admits 3 back-to-back requests; the 4th is throttled.
  for (int i = 0; i < 3; ++i) {
    const auto d = controller.admit("bot", true, 0.0);
    EXPECT_TRUE(d.admitted()) << "request " << i;
    controller.complete(0.0, 0.0);
  }
  EXPECT_EQ(controller.admit("bot", true, 0.0).outcome,
            AdmitOutcome::kThrottled);

  // Buckets are per-client: an unrelated client is untouched.
  EXPECT_TRUE(controller.admit("human", false, 0.0).admitted());
  controller.complete(0.0, 0.0);

  // One second refills one token.
  EXPECT_TRUE(controller.admit("bot", true, 1.0).admitted());
  controller.complete(1.0, 0.0);
  EXPECT_EQ(controller.admit("bot", true, 1.0).outcome,
            AdmitOutcome::kThrottled);
}

TEST(OverloadControllerTest, BoundedQueueShedsOverflow) {
  OverloadParams params;
  params.model_capacity = true;
  params.concurrency = 1;
  params.service_floor_seconds = 100.0;  // nothing drains during the test
  params.queue_limit = 2;
  OverloadController controller(params);

  // First request occupies the worker; the next two queue behind it.
  for (int i = 0; i < 3; ++i) {
    const auto d = controller.admit("c", false, 0.0);
    ASSERT_TRUE(d.admitted()) << "request " << i;
    controller.complete(0.0, 0.0);
  }
  EXPECT_EQ(controller.queued(0.0), 2u);
  EXPECT_EQ(controller.admit("c", false, 0.0).outcome,
            AdmitOutcome::kShedQueueFull);
}

TEST(OverloadControllerTest, CodelShedsMachineBeforeHuman) {
  OverloadParams params;
  params.model_capacity = true;
  params.concurrency = 1;
  params.service_floor_seconds = 10.0;
  params.codel_target_seconds = 1.0;
  params.codel_interval_seconds = 0.5;
  params.human_shed_multiplier = 4.0;
  OverloadController controller(params);

  // Build a backlog: worker busy until t=10, then 10 more queued requests
  // push the queue delay far above target * multiplier.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(controller.admit("c", false, 0.0).admitted());
    controller.complete(0.0, 0.0);
  }
  // Delay (30 - t) is above target, but not yet sustained for a full
  // interval: both classes still ride through.
  EXPECT_TRUE(controller.admit("c", true, 0.01).admitted());
  controller.complete(0.01, 0.0);

  // Past the interval the machine class sheds...
  EXPECT_EQ(controller.admit("c", true, 0.6).outcome,
            AdmitOutcome::kShedOverload);
  // ...and with the delay far past target * multiplier, humans shed too.
  EXPECT_EQ(controller.admit("c", false, 0.6).outcome,
            AdmitOutcome::kShedOverload);
}

TEST(OverloadControllerTest, CodelSparesHumansBelowMultiplier) {
  OverloadParams params;
  params.model_capacity = true;
  params.concurrency = 1;
  params.service_floor_seconds = 2.0;
  params.codel_target_seconds = 1.0;
  params.codel_interval_seconds = 0.5;
  params.human_shed_multiplier = 4.0;
  OverloadController controller(params);

  // One busy worker: delay = 2.0 - now, above target but below 4x target.
  ASSERT_TRUE(controller.admit("c", false, 0.0).admitted());
  controller.complete(0.0, 0.0);
  ASSERT_GT(controller.queue_delay(0.6), params.codel_target_seconds);

  // An early probe starts the above-target clock without taking a worker.
  ASSERT_TRUE(controller.admit("c", true, 0.05).admitted());

  // Sustained above target: machine sheds, human is admitted (and pays the
  // queue wait instead).
  EXPECT_EQ(controller.admit("c", true, 0.6).outcome,
            AdmitOutcome::kShedOverload);
  const auto human = controller.admit("c", false, 0.6);
  EXPECT_TRUE(human.admitted());
  EXPECT_NEAR(human.queue_wait, 1.4, 1e-9);
}

TEST(OverloadControllerTest, IdenticalSequencesReplayIdentically) {
  const auto run = [] {
    OverloadParams params = OverloadParams::protected_defaults();
    params.concurrency = 2;
    params.service_floor_seconds = 0.1;
    OverloadController controller(params);
    std::vector<int> outcomes;
    std::vector<double> waits;
    for (int i = 0; i < 500; ++i) {
      const double now = 0.01 * i;
      const std::string client = "c" + std::to_string(i % 7);
      const auto d = controller.admit(client, i % 3 != 0, now);
      outcomes.push_back(static_cast<int>(d.outcome));
      waits.push_back(d.queue_wait);
      if (d.admitted()) controller.complete(now, 0.05);
    }
    return std::make_pair(outcomes, waits);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

// ---- EdgeServer integration -----------------------------------------------

class OverloadEdgeFixture : public ::testing::Test {
 protected:
  void make_edge(const EdgeParams& params = {}) {
    workload::ObjectSpec obj;
    obj.url = "https://d/x";
    obj.domain = "d";
    obj.content_type = "application/json";
    obj.cacheable = true;
    obj.ttl_seconds = 3600.0;
    obj.body_bytes = 1000;
    catalog_.add(obj);
    origin_ = std::make_unique<Origin>(catalog_, OriginParams{});
    anonymizer_ = std::make_unique<logs::Anonymizer>(9);
    edge_ = std::make_unique<EdgeServer>(0, *origin_, *anonymizer_, params);
  }

  static workload::RequestEvent request(double t, const char* address,
                                        const char* ua) {
    workload::RequestEvent ev;
    ev.time = t;
    ev.client_address = address;
    ev.user_agent = ua;
    ev.url = "https://d/x";
    return ev;
  }

  workload::ObjectCatalog catalog_;
  std::unique_ptr<Origin> origin_;
  std::unique_ptr<logs::Anonymizer> anonymizer_;
  std::unique_ptr<EdgeServer> edge_;
};

TEST_F(OverloadEdgeFixture, DisabledOverloadLeavesEdgeUnchanged) {
  make_edge();  // defaults: model_capacity == false
  for (int i = 0; i < 10; ++i) {
    (void)edge_->handle(request(0.1 * i, "10.0.0.1", kBotUa));
  }
  EXPECT_FALSE(edge_->two_class().any());
  EXPECT_EQ(edge_->resilience().rejected(), 0u);
  EXPECT_DOUBLE_EQ(edge_->resilience().queue_wait_seconds, 0.0);
  EXPECT_EQ(edge_->metrics().rejected(), 0u);
}

TEST_F(OverloadEdgeFixture, ThrottledRequestsLogged429) {
  EdgeParams params;
  params.overload.model_capacity = true;
  params.overload.bucket_rate = 1.0;
  params.overload.bucket_burst = 2.0;
  make_edge(params);

  // Burst of 4 from one bot at t=0: 2 admitted, 2 throttled.
  std::vector<logs::LogRecord> records;
  for (int i = 0; i < 4; ++i) {
    records.push_back(edge_->handle(request(0.0, "203.0.0.1", kBotUa)));
  }
  EXPECT_EQ(records[0].status, 200);
  EXPECT_EQ(records[2].status, 429);
  EXPECT_EQ(records[2].cache_status, logs::CacheStatus::kThrottled);
  EXPECT_EQ(records[2].response_bytes, 0u);
  // The rejection record keeps the origin's identity so per-domain analyses
  // still see the hostile traffic.
  EXPECT_EQ(records[2].domain, "d");

  const auto& r = edge_->resilience();
  EXPECT_EQ(r.throttled, 2u);
  EXPECT_EQ(edge_->metrics().rejected(), 2u);
  EXPECT_EQ(edge_->metrics().requests(), 4u);
  // Rejections carry no latency sample.
  EXPECT_EQ(edge_->metrics().latencies().size(), 2u);

  const auto& machine = edge_->two_class().machine;
  EXPECT_EQ(machine.requests, 4u);
  EXPECT_EQ(machine.served, 2u);
  EXPECT_EQ(machine.throttled, 2u);
  EXPECT_EQ(machine.latencies.size(), 2u);
}

TEST_F(OverloadEdgeFixture, QueueOverflowLogged503Shed) {
  EdgeParams params;
  params.overload.model_capacity = true;
  params.overload.concurrency = 1;
  params.overload.service_floor_seconds = 50.0;
  params.overload.queue_limit = 1;
  make_edge(params);

  (void)edge_->handle(request(0.0, "10.0.0.1", kBrowserUa));  // worker busy
  (void)edge_->handle(request(0.0, "10.0.0.2", kBrowserUa));  // queued
  const auto shed = edge_->handle(request(0.0, "10.0.0.3", kBrowserUa));
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.cache_status, logs::CacheStatus::kShed);
  EXPECT_EQ(edge_->resilience().shed_queue_full, 1u);
  EXPECT_EQ(edge_->two_class().human.shed, 1u);
  // The queued request's wait surfaced in both the latency sample and the
  // aggregate counter.
  EXPECT_GT(edge_->resilience().queue_wait_seconds, 0.0);
}

TEST_F(OverloadEdgeFixture, QueueWaitRaisesServedLatency) {
  EdgeParams params;
  params.overload.model_capacity = true;
  params.overload.concurrency = 1;
  params.overload.service_floor_seconds = 2.0;
  make_edge(params);
  // Control: the identical sequence through an edge with no capacity model.
  EdgeServer control(1, *origin_, *anonymizer_, EdgeParams{});

  for (const auto* address : {"10.0.0.1", "10.0.0.2"}) {
    (void)edge_->handle(request(0.0, address, kBrowserUa));
    (void)control.handle(request(0.0, address, kBrowserUa));
  }
  const auto& with = edge_->metrics().latencies();
  const auto& without = control.metrics().latencies();
  ASSERT_EQ(with.size(), 2u);
  ASSERT_EQ(without.size(), 2u);
  // First request sees an idle worker: no wait. The second waited the full
  // 2 s service floor; everything else about the serve path is identical.
  EXPECT_DOUBLE_EQ(with[0], without[0]);
  EXPECT_NEAR(with[1] - without[1], 2.0, 1e-9);
}

TEST_F(OverloadEdgeFixture, ProtectedEdgeReplaysBitIdentically) {
  EdgeParams params;
  params.overload = OverloadParams::protected_defaults();
  params.overload.concurrency = 1;
  params.overload.service_floor_seconds = 0.5;

  const auto run = [&] {
    workload::ObjectCatalog catalog;
    workload::ObjectSpec obj;
    obj.url = "https://d/x";
    obj.domain = "d";
    obj.content_type = "application/json";
    obj.cacheable = true;
    obj.ttl_seconds = 3600.0;
    obj.body_bytes = 1000;
    catalog.add(obj);
    Origin origin(catalog, OriginParams{});
    logs::Anonymizer anonymizer(9);
    EdgeServer edge(0, origin, anonymizer, params);
    std::vector<std::pair<int, logs::CacheStatus>> out;
    for (int i = 0; i < 300; ++i) {
      const auto record = edge.handle(request(
          0.02 * i, i % 2 == 0 ? "203.0.0.1" : "10.0.0.1",
          i % 2 == 0 ? kBotUa : kBrowserUa));
      out.emplace_back(record.status, record.cache_status);
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(OverloadEdgeFixture, UnprotectedArmQueuesButNeverRejects) {
  EdgeParams params;
  params.overload = OverloadParams::unprotected_defaults();
  params.overload.concurrency = 1;
  params.overload.service_floor_seconds = 1.0;
  make_edge(params);

  for (int i = 0; i < 50; ++i) {
    const auto record = edge_->handle(request(0.0, "10.0.0.1", kBrowserUa));
    EXPECT_EQ(record.status, 200);
  }
  EXPECT_EQ(edge_->resilience().rejected(), 0u);
  // The backlog grows without bound: the last request waited ~49 service
  // times for a worker.
  const auto& latencies = edge_->metrics().latencies();
  EXPECT_GT(latencies.back(), 48.0);
}

}  // namespace
}  // namespace jsoncdn::cdn
