// Radix-2 FFT and periodogram, implemented from scratch (no external DSP
// dependency). The periodicity detector (§5.1 of the paper) uses the
// periodogram on the frequency domain side and an FFT-accelerated
// autocorrelation on the time domain side.
#pragma once

#include <complex>
#include <span>
#include <vector>

namespace jsoncdn::stats {

// Returns the smallest power of two >= n (n = 0 maps to 1). When no such
// power is representable in std::size_t (n > 2^(bits-1)), returns 0 instead
// of looping forever on the shift overflow.
[[nodiscard]] std::size_t next_pow2(std::size_t n) noexcept;

// In-place iterative radix-2 Cooley-Tukey FFT. Requires data.size() to be a
// power of two (throws std::invalid_argument otherwise). `inverse` computes
// the unscaled inverse transform; callers divide by N if they need the true
// inverse (ifft() below does this).
void fft_inplace(std::vector<std::complex<double>>& data, bool inverse);

// Forward FFT of a real signal, zero-padded to the next power of two.
[[nodiscard]] std::vector<std::complex<double>> fft_real(
    std::span<const double> signal);

// True inverse FFT (scaled by 1/N). Requires power-of-two size.
[[nodiscard]] std::vector<std::complex<double>> ifft(
    std::vector<std::complex<double>> data);

// Periodogram: squared magnitude of FFT bins 1..N/2 of the mean-removed,
// zero-padded signal, normalized by N. Index k of the returned vector
// corresponds to FFT bin k+1, i.e. frequency (k+1) / (N * dt) with N the
// padded length. Bin 0 (DC) is excluded because the mean carries no period.
struct Periodogram {
  std::vector<double> power;  // power[k] for FFT bin k+1
  std::size_t padded_size = 0;

  // Frequency (cycles per sample) of entry k.
  [[nodiscard]] double frequency(std::size_t k) const {
    return static_cast<double>(k + 1) / static_cast<double>(padded_size);
  }
  // Period in samples of entry k.
  [[nodiscard]] double period(std::size_t k) const {
    return static_cast<double>(padded_size) / static_cast<double>(k + 1);
  }
};

// Requires a non-empty signal.
[[nodiscard]] Periodogram periodogram(std::span<const double> signal);

}  // namespace jsoncdn::stats
