file(REMOVE_RECURSE
  "libjsoncdn_http.a"
)
