// Conformance harness: generate → serve → analyze → score, against bands.
//
// One conformance *case* is a seeded workload pushed through the CDN and
// every analysis family, scored against its ground-truth sidecar, plus the
// differential checks the pipeline guarantees by contract:
//   - 1-thread and N-thread analysis runs must be bit-identical;
//   - the streaming study's exact counters (methods, cacheability, status,
//     per-device requests) must equal the batch aggregations.
// The runner sweeps cases over seeds and collects every band violation as a
// human-readable failure string — an empty list is a pass, so a test can
// EXPECT the list empty and print it verbatim on failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logs/dataset.h"
#include "oracle/ground_truth.h"
#include "oracle/scorer.h"

namespace jsoncdn::oracle {

// Acceptance bands. Defaults are the paper-band invariants ISSUE'd for the
// clean long-window workload: the detector must recover labelled periodic
// flows nearly perfectly, marginals must sit close to the configured
// populations, and the predictor must clear a usefulness floor.
struct ConformanceTolerances {
  double min_detector_precision = 0.90;
  double min_detector_recall = 0.90;
  double min_detector_f1 = 0.90;
  double max_period_rel_error = 0.15;  // worst true-positive period error
  double max_device_l1 = 0.20;
  double max_class_l1 = 0.25;
  double max_industry_l1 = 0.40;
  double min_measured_top1 = 0.05;   // raw-URL accuracy@1 on the edge log
  double min_skyline_top1 = 0.05;    // same protocol on the true chains
  // The log path may *gain* accuracy over the session skyline (periodic
  // machine flows are trivially predictable), but it must not lose more
  // than this at K=1.
  double max_skyline_gap_top1 = 0.50;
};

struct ConformanceConfig {
  std::vector<std::uint64_t> seeds = {1, 7, 1337};
  // Workload shape: the long-term scenario rescaled to a bounded window so
  // a full sweep stays test-sized. n_clients = 0 keeps the scenario's own
  // client count.
  double scale = 0.001;
  double duration_seconds = 2.0 * 3600.0;
  std::size_t n_clients = 600;
  // Thread counts swept by the determinism differential; the first entry is
  // the count used for scoring. 0 = auto.
  std::vector<std::size_t> thread_counts = {1, 0};
  bool check_streaming = true;
  std::size_t ngram_context = 1;
  ConformanceTolerances tolerances;
};

// One generated workload, served through the CDN, with its sidecar.
struct GeneratedCase {
  std::uint64_t seed = 0;
  logs::Dataset dataset;       // full edge log
  logs::Dataset json;          // JSON-filtered view (the paper's input)
  TruthSidecar truth;
};

[[nodiscard]] GeneratedCase generate_case(std::uint64_t seed,
                                          const ConformanceConfig& config);

struct CaseResult {
  std::uint64_t seed = 0;
  DetectorScore detector;
  NgramScore ngram_raw;
  NgramScore ngram_clustered;
  MarginalScore marginals;
  bool thread_invariant = true;
  bool streaming_consistent = true;
  std::vector<std::string> failures;  // empty = within every band

  [[nodiscard]] bool passed() const noexcept { return failures.empty(); }
};

// Scores one prepared (log, sidecar) pair against the bands. `threads` is
// the analysis thread count (0 = auto). Differential checks are the
// sweep's job, not this function's.
[[nodiscard]] CaseResult score_case(const logs::Dataset& dataset,
                                    const logs::Dataset& json,
                                    const TruthSidecar& truth,
                                    std::uint64_t seed,
                                    const ConformanceConfig& config,
                                    std::size_t threads);

struct ConformanceReport {
  std::vector<CaseResult> cases;
  [[nodiscard]] bool all_passed() const noexcept;
  [[nodiscard]] std::size_t total_failures() const noexcept;
};

// The full sweep: every seed generated, scored, and differentially checked.
[[nodiscard]] ConformanceReport run_conformance(const ConformanceConfig& config);

// Plain-text renderings in the report.h house style.
[[nodiscard]] std::string render_case(const CaseResult& result);
[[nodiscard]] std::string render_conformance(const ConformanceReport& report);
// The EXPERIMENTS.md detector table: one row per seed with P/R/F1, period
// error, and marginal distances.
[[nodiscard]] std::string render_detector_table(const ConformanceReport& report);

}  // namespace jsoncdn::oracle
