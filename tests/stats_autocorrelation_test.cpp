#include "stats/autocorrelation.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "stats/fft.h"
#include "stats/rng.h"

namespace jsoncdn::stats {
namespace {

std::vector<double> random_signal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(-1.0, 1.0);
  return out;
}

TEST(Autocorrelation, LagZeroIsOneForVaryingSignal) {
  const auto signal = random_signal(50, 1);
  const auto r = autocorrelation_direct(signal, 10);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(Autocorrelation, ConstantSignalIsAllZero) {
  std::vector<double> signal(32, 3.0);
  for (const double v : autocorrelation_direct(signal, 8)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
  for (const double v : autocorrelation_fft(signal, 8)) {
    EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(Autocorrelation, MaxLagClampedToSizeMinusOne) {
  const auto signal = random_signal(10, 2);
  EXPECT_EQ(autocorrelation_direct(signal, 100).size(), 10u);
  EXPECT_EQ(autocorrelation_fft(signal, 100).size(), 10u);
}

TEST(Autocorrelation, RejectsEmptySignal) {
  EXPECT_THROW((void)autocorrelation_direct({}, 5), std::invalid_argument);
  EXPECT_THROW((void)autocorrelation_fft({}, 5), std::invalid_argument);
}

class AcfEquivalenceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AcfEquivalenceTest, FftMatchesDirect) {
  const auto signal = random_signal(GetParam(), GetParam());
  const auto direct = autocorrelation_direct(signal, GetParam() / 2);
  const auto fast = autocorrelation_fft(signal, GetParam() / 2);
  ASSERT_EQ(direct.size(), fast.size());
  for (std::size_t k = 0; k < direct.size(); ++k) {
    EXPECT_NEAR(direct[k], fast[k], 1e-9) << "lag " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AcfEquivalenceTest,
                         ::testing::Values(2, 3, 5, 17, 64, 100, 255));

TEST(Autocorrelation, PeriodicImpulseTrainPeaksAtPeriod) {
  // Impulse every 10 samples.
  std::vector<double> signal(200, 0.0);
  for (std::size_t i = 0; i < signal.size(); i += 10) signal[i] = 1.0;
  const auto r = autocorrelation_fft(signal, 50);
  const auto peaks = acf_peaks(r);
  ASSERT_FALSE(peaks.empty());
  // The strongest peak must be at lag 10 (or a multiple).
  std::size_t best = peaks.front();
  for (const auto p : peaks) {
    if (r[p] > r[best]) best = p;
  }
  EXPECT_EQ(best % 10, 0u);
  EXPECT_GT(r[best], 0.8);
}

TEST(AcfPeaks, FindsInteriorLocalMaxima) {
  const std::vector<double> r = {1.0, 0.2, 0.8, 0.3, 0.1, 0.5};
  const auto peaks = acf_peaks(r);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0], 2u);
  EXPECT_EQ(peaks[1], 5u);  // rising final lag counts
}

TEST(AcfPeaks, MonotoneDecreasingHasNoPeaks) {
  const std::vector<double> r = {1.0, 0.8, 0.6, 0.4};
  EXPECT_TRUE(acf_peaks(r).empty());
}

TEST(SpectralAnalysis, AcfMatchesStandaloneFunction) {
  const auto signal = random_signal(100, 5);
  const auto spec = spectral_analysis(signal, 40);
  const auto reference = autocorrelation_fft(signal, 40);
  ASSERT_EQ(spec.acf.size(), reference.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_NEAR(spec.acf[k], reference[k], 1e-9);
  }
}

TEST(SpectralAnalysis, PgramPeakAtPlantedPeriod) {
  std::vector<double> signal(512);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) / 16.0);
  }
  const auto spec = spectral_analysis(signal, 200);
  std::size_t best = 0;
  for (std::size_t k = 1; k < spec.pgram_power.size(); ++k) {
    if (spec.pgram_power[k] > spec.pgram_power[best]) best = k;
  }
  EXPECT_NEAR(spec.pgram_period_samples(best), 16.0, 0.2);
}

TEST(SpectralAnalysis, PaddedSizeIsAtLeastTwiceInput) {
  const auto spec = spectral_analysis(random_signal(100, 6), 10);
  EXPECT_GE(spec.padded_size, 200u);
  EXPECT_EQ(spec.padded_size & (spec.padded_size - 1), 0u);
}

}  // namespace
}  // namespace jsoncdn::stats
