// Property sweeps over the two-class priority scheduler: invariants that
// must hold at any utilization and class mix.
#include <gtest/gtest.h>

#include "cdn/prioritizer.h"
#include "stats/rng.h"

namespace jsoncdn::cdn {
namespace {

struct SweepCase {
  double utilization;    // offered load vs a single unit-rate server
  double machine_share;  // probability a job is machine traffic
  std::uint64_t seed;
};

std::vector<SchedulerJob> make_jobs(const SweepCase& c, std::size_t n) {
  stats::Rng rng(c.seed);
  std::vector<SchedulerJob> jobs;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.exponential(c.utilization);  // mean gap 1/u, service 1
    jobs.push_back({t, rng.uniform(0.5, 1.5), rng.bernoulli(c.machine_share)});
  }
  return jobs;
}

class SchedulerSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(SchedulerSweepTest, AllJobsServedUnderBothPolicies) {
  const auto jobs = make_jobs(GetParam(), 800);
  for (const auto policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kHumanPriority}) {
    const auto r = simulate_schedule(jobs, policy);
    EXPECT_EQ(r.human.count + r.machine.count, jobs.size());
  }
}

TEST_P(SchedulerSweepTest, PriorityNeverHurtsHumans) {
  const auto jobs = make_jobs(GetParam(), 800);
  const auto fifo = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  const auto prio = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  if (fifo.human.count == 0) return;  // nothing to compare
  EXPECT_LE(prio.human.waiting.mean, fifo.human.waiting.mean + 1e-9);
}

TEST_P(SchedulerSweepTest, WaitingIsNonNegativeAndSojournExceedsService) {
  const auto jobs = make_jobs(GetParam(), 400);
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_GE(r.human.waiting.min, 0.0);
  EXPECT_GE(r.machine.waiting.min, 0.0);
  if (r.human.count > 0) {
    EXPECT_GE(r.human.sojourn.mean, r.human.waiting.mean);
  }
}

TEST_P(SchedulerSweepTest, MoreServersNeverIncreaseMeanWait) {
  const auto jobs = make_jobs(GetParam(), 600);
  double prev = 1e18;
  for (const std::size_t servers : {1u, 2u, 4u}) {
    const auto r = simulate_schedule(jobs, SchedulingPolicy::kFifo, servers);
    const double overall_wait =
        (r.human.waiting.mean * static_cast<double>(r.human.count) +
         r.machine.waiting.mean * static_cast<double>(r.machine.count)) /
        static_cast<double>(jobs.size());
    EXPECT_LE(overall_wait, prev + 1e-9) << servers;
    prev = overall_wait;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadMixGrid, SchedulerSweepTest,
    ::testing::Values(SweepCase{0.3, 0.2, 1}, SweepCase{0.3, 0.8, 2},
                      SweepCase{0.7, 0.5, 3}, SweepCase{0.9, 0.3, 4},
                      SweepCase{0.9, 0.7, 5}, SweepCase{1.1, 0.5, 6},
                      SweepCase{1.5, 0.5, 7}));

TEST(SchedulerEdge, AllMachineTrafficStillServed) {
  std::vector<SchedulerJob> jobs = {{0.0, 1.0, true}, {0.5, 1.0, true}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kHumanPriority);
  EXPECT_EQ(r.machine.count, 2u);
  EXPECT_EQ(r.human.count, 0u);
}

TEST(SchedulerEdge, ZeroServiceJobsCompleteInstantly) {
  std::vector<SchedulerJob> jobs = {{0.0, 0.0, false}, {0.0, 0.0, false}};
  const auto r = simulate_schedule(jobs, SchedulingPolicy::kFifo);
  EXPECT_DOUBLE_EQ(r.human.sojourn.max, 0.0);
}

}  // namespace
}  // namespace jsoncdn::cdn
