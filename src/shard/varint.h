// Byte-level codec primitives for the `.jlog` v2 chunk store: LEB128-style
// varints, zigzag signed mapping, and 3-bit packing for the small enums.
//
// Every decoder is bounds-checked against the caller's buffer and returns
// false instead of reading past the end or accepting an overlong encoding —
// the chunk decoder maps false onto the uniform jlog_corrupt() error. All
// encodings are canonical (one byte sequence per value), so a re-encode of
// decoded data is byte-identical; the round-trip tests rely on this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jsoncdn::shard {

// Maximum encoded size of a varint u64: ceil(64 / 7) bytes.
inline constexpr std::size_t kMaxVarintBytes = 10;

// Appends the LEB128 encoding of `v` (7 value bits per byte, high bit =
// continuation) to `out`.
void put_varint(std::string& out, std::uint64_t v);

// Decodes one varint at `pos`, advancing `pos` past it. Returns false on a
// truncated buffer, an encoding longer than 10 bytes, or set bits beyond
// the 64th (a non-canonical final byte).
[[nodiscard]] bool get_varint(std::string_view buf, std::size_t& pos,
                              std::uint64_t& out) noexcept;

// Zigzag maps signed deltas onto small unsigned varints: 0, -1, 1, -2, ...
// become 0, 1, 2, 3, ... C++20 mandates two's complement and arithmetic
// right shift, so both directions are exact for the full int64 range.
[[nodiscard]] constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

// Appends `n` 3-bit values (each must be < 8) packed little-endian-first
// into ceil(3n/8) bytes. n == 0 appends nothing.
void pack3(std::string& out, const std::uint8_t* values, std::size_t n);

// Unpacks `n` 3-bit values written by pack3, advancing `pos` past the
// packed bytes. Returns false when the buffer holds fewer than ceil(3n/8)
// bytes at `pos`. Values come back in [0, 8); semantic range checks (enum
// limits) are the caller's.
[[nodiscard]] bool unpack3(std::string_view buf, std::size_t& pos,
                           std::uint8_t* values, std::size_t n) noexcept;

// Running delta encoder/decoder over u64 values (timestamp bit patterns,
// byte counts, symbols): deltas are computed in modular u64 arithmetic and
// zigzag-coded, so *any* u64 sequence round-trips, including jumps past
// 2^63 and u64 max.
class DeltaEncoder {
 public:
  void put(std::string& out, std::uint64_t v) {
    put_varint(out, zigzag_encode(static_cast<std::int64_t>(v - prev_)));
    prev_ = v;
  }

 private:
  std::uint64_t prev_ = 0;
};

class DeltaDecoder {
 public:
  [[nodiscard]] bool get(std::string_view buf, std::size_t& pos,
                         std::uint64_t& out) noexcept {
    std::uint64_t z = 0;
    if (!get_varint(buf, pos, z)) return false;
    prev_ += static_cast<std::uint64_t>(zigzag_decode(z));
    out = prev_;
    return true;
  }

  // Bulk form for column decode: `n` deltas into out[0..n). Position, state,
  // and accepted byte sequences are exactly `n` get() calls — the fast path
  // below only skips re-checking bounds per byte when the next two bytes are
  // provably readable, and small deltas (the overwhelmingly common case for
  // sorted timestamps, statuses, and dense symbols) are 1-2 encoded bytes.
  [[nodiscard]] bool get_n(std::string_view buf, std::size_t& pos,
                           std::uint64_t* out, std::size_t n) noexcept {
    const char* data = buf.data();
    const std::size_t size = buf.size();
    std::size_t p = pos;
    std::uint64_t prev = prev_;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t z;
      if (p + 2 <= size) {
        const auto b0 = static_cast<std::uint8_t>(data[p]);
        if (b0 < 0x80) {
          z = b0;
          p += 1;
        } else {
          const auto b1 = static_cast<std::uint8_t>(data[p + 1]);
          if (b1 < 0x80) {
            z = static_cast<std::uint64_t>(b0 & 0x7f) |
                (static_cast<std::uint64_t>(b1) << 7);
            p += 2;
          } else if (!get_varint(buf, p, z)) {
            return false;
          }
        }
      } else if (!get_varint(buf, p, z)) {
        return false;
      }
      prev += static_cast<std::uint64_t>(zigzag_decode(z));
      out[i] = prev;
    }
    pos = p;
    prev_ = prev;
    return true;
  }

 private:
  std::uint64_t prev_ = 0;
};

}  // namespace jsoncdn::shard
