// Google-benchmark microbenchmarks for the hot paths: FFT/ACF (periodicity
// inner loop), ngram training/prediction, edge cache operations, UA
// classification, URL parsing/clustering, and log (de)serialization — plus
// a wall-clock speedup report (1 thread vs N) for the parallel periodicity
// and ngram stages, printed after the benchmark table.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <complex>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numbers>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "cdn/cache.h"
#include "cdn/network.h"
#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "core/url_cluster.h"
#include "http/device_db.h"
#include "http/url.h"
#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "logs/zerocopy.h"
#include "shard/reader.h"
#include "shard/synth.h"
#include "shard/varint.h"
#include "shard/writer.h"
#include "stats/autocorrelation.h"
#include "stats/fft.h"
#include "stats/kernels.h"
#include "stats/parallel.h"
#include "stats/rng.h"
#include "stats/simd.h"
#include "stream/streaming_study.h"
#include "workload/scenario.h"

namespace {

using namespace jsoncdn;
namespace kernels = stats::kernels;

std::vector<double> random_signal(std::size_t n) {
  stats::Rng rng(n);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(0.0, 2.0);
  return out;
}

void BM_FftReal(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fft_real(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftReal)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_SpectralAnalysis(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::spectral_analysis(signal, signal.size() / 3));
  }
}
BENCHMARK(BM_SpectralAnalysis)->RangeMultiplier(4)->Range(256, 16384);

void BM_DetectPeriodicFlow(benchmark::State& state) {
  stats::Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 40; ++i)
    times.push_back(60.0 * i + rng.normal(0.0, 0.4));
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(11);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPeriodicFlow);

void BM_DetectPoissonFlowEarlyExit(benchmark::State& state) {
  stats::Rng rng(8);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(1.0 / 60.0);
    times.push_back(t);
  }
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(12);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPoissonFlowEarlyExit);

void BM_NgramObserve(benchmark::State& state) {
  std::vector<std::string> tokens;
  for (int i = 0; i < 64; ++i)
    tokens.push_back("https://h/api/v1/x/" + std::to_string(i % 12));
  for (auto _ : state) {
    core::NgramModel model(2);
    model.observe_sequence(tokens);
    benchmark::DoNotOptimize(model.observed_transitions());
  }
}
BENCHMARK(BM_NgramObserve);

void BM_NgramPredictTop10(benchmark::State& state) {
  core::NgramModel model(2);
  stats::Rng rng(5);
  std::vector<std::string> tokens;
  for (int i = 0; i < 5000; ++i) {
    tokens.push_back("https://h/api/v1/x/" +
                     std::to_string(rng.uniform_int(0, 50)));
  }
  model.observe_sequence(tokens);
  const std::vector<std::string> history = {tokens[100], tokens[101]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(history, 10));
  }
}
BENCHMARK(BM_NgramPredictTop10);

void BM_CacheInsertLookup(benchmark::State& state) {
  cdn::LruCache cache(64ULL * 1024 * 1024);
  stats::Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i)
    keys.push_back("https://h/obj/" + std::to_string(i));
  std::size_t i = 0;
  double now = 0.0;
  for (auto _ : state) {
    now += 0.001;
    const auto& key = keys[i++ & 4095];
    if (!cache.lookup(key, now)) cache.insert(key, 20'000, 600.0, now);
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_ClassifyDevice(benchmark::State& state) {
  constexpr std::string_view kUa =
      "Mozilla/5.0 (Linux; Android 9; SM-G960F) AppleWebKit/537.36 (KHTML, "
      "like Gecko) Chrome/76.0.3809.132 Mobile Safari/537.36";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::classify_device(kUa));
  }
}
BENCHMARK(BM_ClassifyDevice);

void BM_ParseUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::parse_url(kUrl));
  }
}
BENCHMARK(BM_ParseUrl);

void BM_ClusterUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster_url(kUrl));
  }
}
BENCHMARK(BM_ClusterUrl);

void BM_LogLineRoundTrip(benchmark::State& state) {
  logs::LogRecord record;
  record.timestamp = 1234.567;
  record.client_id = "deadbeefdeadbeef";
  record.user_agent = "NewsReader/5.2.1 (iPhone; iOS 12.4.1; Scale/3.00)";
  record.url = "https://api.news-003.example/api/v1/article/18234";
  record.domain = "api.news-003.example";
  record.content_type = "application/json; charset=utf-8";
  record.response_bytes = 2048;
  for (auto _ : state) {
    benchmark::DoNotOptimize(logs::from_line(logs::to_line(record)));
  }
}
BENCHMARK(BM_LogLineRoundTrip);

// ---- Parallel stage speedup (wall clock, 1 thread vs N) -------------------

// Synthetic dataset dense enough to pass the paper's flow filter: a mix of
// periodic objects (the expensive full-permutation path) and Poisson objects
// (the cheap early-exit path), mirroring the real workload's skew.
logs::Dataset make_periodicity_dataset(std::size_t periodic_objects,
                                       std::size_t poisson_objects) {
  stats::Rng rng(2024);
  logs::Dataset ds;
  const std::size_t clients = 12;
  const std::size_t requests = 24;
  auto add_flow = [&](const std::string& url, std::size_t c,
                      double t) {
    logs::LogRecord record;
    record.timestamp = t;
    record.client_id = "client" + std::to_string(c);
    record.user_agent = "NewsReader/5.2";
    record.url = url;
    record.domain = "api.bench.example";
    record.content_type = "application/json";
    record.response_bytes = 2048;
    record.cache_status = logs::CacheStatus::kNotCacheable;
    ds.add(std::move(record));
  };
  for (std::size_t o = 0; o < periodic_objects; ++o) {
    const std::string url =
        "https://api.bench.example/poll/" + std::to_string(o);
    const double period = 30.0 + static_cast<double>(o % 5) * 15.0;
    for (std::size_t c = 0; c < clients; ++c) {
      const double phase = rng.uniform(0.0, period);
      for (std::size_t r = 0; r < requests; ++r) {
        add_flow(url, c,
                 phase + static_cast<double>(r) * period +
                     rng.normal(0.0, 0.3));
      }
    }
  }
  for (std::size_t o = 0; o < poisson_objects; ++o) {
    const std::string url =
        "https://api.bench.example/feed/" + std::to_string(o);
    for (std::size_t c = 0; c < clients; ++c) {
      double t = rng.uniform(0.0, 60.0);
      for (std::size_t r = 0; r < requests; ++r) {
        t += rng.exponential(1.0 / 45.0);
        add_flow(url, c, t);
      }
    }
  }
  ds.sort_by_time();
  return ds;
}

// Per-client request sequences with Zipf-ish repeat structure so the ngram
// model has something to learn.
logs::Dataset make_ngram_dataset(std::size_t n_clients,
                                 std::size_t requests_per_client) {
  stats::Rng rng(7);
  logs::Dataset ds;
  for (std::size_t c = 0; c < n_clients; ++c) {
    double t = rng.uniform(0.0, 10.0);
    std::int64_t page = rng.uniform_int(0, 49);
    for (std::size_t r = 0; r < requests_per_client; ++r) {
      // Mostly-deterministic walk with occasional jumps: predictable
      // transitions dominate, like app-driven request sequences.
      page = rng.bernoulli(0.7) ? (page + 1) % 50 : rng.uniform_int(0, 49);
      t += rng.exponential(1.0 / 5.0);
      logs::LogRecord record;
      record.timestamp = t;
      record.client_id = "client" + std::to_string(c);
      record.user_agent = "NewsReader/5.2";
      record.url = "https://api.bench.example/api/v1/page/" +
                   std::to_string(page);
      record.domain = "api.bench.example";
      record.content_type = "application/json";
      record.response_bytes = 1024;
      ds.add(std::move(record));
    }
  }
  ds.sort_by_time();
  return ds;
}

void report_parallel_speedup() {
  const std::size_t n_threads = 4;
  bench::print_header(
      "parallel speedup",
      "analysis stages, 1 thread vs " + std::to_string(n_threads) +
          " (hardware_concurrency = " +
          std::to_string(std::thread::hardware_concurrency()) + ")");

  {
    const auto ds = make_periodicity_dataset(24, 24);
    core::PeriodicityConfig config;
    auto run_with = [&](std::size_t threads) {
      config.threads = threads;
      bench::Timer timer;
      const auto report = core::analyze_periodicity(ds, config);
      const double elapsed = timer.seconds();
      if (report.objects.empty()) bench::note("warning: no flows analyzed");
      return elapsed;
    };
    run_with(1);  // warm-up: page in the dataset, stabilize the comparison
    const double serial = run_with(1);
    const double parallel = run_with(n_threads);
    bench::print_speedup("analyze_periodicity", serial, parallel, n_threads);
  }

  {
    const auto ds = make_ngram_dataset(4000, 60);
    core::NgramEvalConfig config;
    config.context_len = 2;
    auto run_with = [&](std::size_t threads) {
      config.threads = threads;
      bench::Timer timer;
      const auto accuracy = core::evaluate_ngram(ds, config);
      const double elapsed = timer.seconds();
      if (accuracy.predictions == 0) bench::note("warning: no predictions");
      return elapsed;
    };
    run_with(1);
    const double serial = run_with(1);
    const double parallel = run_with(n_threads);
    bench::print_speedup("evaluate_ngram", serial, parallel, n_threads);
  }
}

// ---- Streaming vs batch (throughput + analysis-state memory) --------------

// Approximate resident footprint of a materialized dataset: the record
// structs plus their heap-allocated string payloads.
std::size_t dataset_bytes(const logs::Dataset& ds) {
  std::size_t bytes = ds.size() * sizeof(logs::LogRecord);
  for (const auto& r : ds.records()) {
    bytes += r.client_id.capacity() + r.user_agent.capacity() +
             r.url.capacity() + r.domain.capacity() +
             r.content_type.capacity();
  }
  return bytes;
}

void report_streaming_vs_batch() {
  bench::print_header(
      "streaming vs batch",
      "one-pass sketches vs exact characterization at 1x / 10x / 100x");
  const auto base = make_periodicity_dataset(8, 8);
  const double span =
      base.time_range().second - base.time_range().first + 1.0;
  bench::note("base workload: " + std::to_string(base.size()) + " records");

  for (const std::size_t scale : {std::size_t{1}, std::size_t{10},
                                  std::size_t{100}}) {
    // Streaming: chunks generated on the fly, so peak memory is the sketch
    // state plus one chunk — the production shape.
    stream::StreamingConfig config;
    config.threads = 4;
    stream::StreamingStudy study(config);
    std::vector<logs::LogRecord> chunk;
    bench::Timer stream_timer;
    for (std::size_t rep = 0; rep < scale; ++rep) {
      chunk = base.records();
      for (auto& r : chunk) r.timestamp += span * static_cast<double>(rep);
      study.ingest(chunk);
    }
    const auto summary = study.summary();
    const double stream_seconds = stream_timer.seconds();

    // Batch: materialize the scaled dataset, then run the exact analyses
    // the summary mirrors.
    logs::Dataset scaled;
    scaled.reserve(base.size() * scale);
    for (std::size_t rep = 0; rep < scale; ++rep) {
      for (auto r : base.records()) {
        r.timestamp += span * static_cast<double>(rep);
        scaled.add(std::move(r));
      }
    }
    bench::Timer batch_timer;
    const auto json = scaled.json_only();
    benchmark::DoNotOptimize(core::characterize_methods(json, 4));
    benchmark::DoNotOptimize(core::characterize_cacheability(json, 4));
    benchmark::DoNotOptimize(core::characterize_source(json, 4));
    benchmark::DoNotOptimize(core::compare_sizes(scaled, 4));
    benchmark::DoNotOptimize(json.distinct_objects());
    benchmark::DoNotOptimize(json.distinct_clients());
    const double batch_seconds = batch_timer.seconds();
    const std::size_t batch_bytes = dataset_bytes(scaled) +
                                    dataset_bytes(json);

    const auto records = static_cast<double>(summary.total_records);
    std::printf(
        "  %4zux (%8llu records)  streaming: %6.2f Mrec/s %6zu KiB state"
        "   batch: %6.2f Mrec/s %8zu KiB state\n",
        scale, static_cast<unsigned long long>(summary.total_records),
        records / stream_seconds / 1e6, summary.memory_bytes / 1024,
        records / batch_seconds / 1e6, batch_bytes / 1024);
  }
  bench::note(
      "streaming state is the sketch footprint (flat in the record count); "
      "batch state is the materialized datasets the exact analyses need");
}

// ---- Columnar ingest & group-by throughput --------------------------------

// End-to-end comparison of the row pipeline (TSV -> Dataset -> string-keyed
// flow grouping -> analyses) against the columnar one (zero-copy TSV ->
// LogTable -> symbol-keyed grouping -> the same analyses), plus the .jlog
// binary load. Emits machine-readable ratios to BENCH_ingest.json so CI can
// gate on regressions with machine-independent numbers.

// Synthetic log shaped like the paper's traffic: a periodic polling core
// (which the flow filter keeps and the detector works on), a long random
// tail, HTML for the size comparison, and realistic string cardinalities.
void write_ingest_log(const std::string& path, std::size_t records) {
  stats::Rng rng(8086);
  std::vector<std::string> uas;
  for (int i = 0; i < 40; ++i) {
    uas.push_back(i % 3 == 0
                      ? "NewsReader/5." + std::to_string(i) + " (iPhone; iOS 12)"
                      : "Mozilla/5.0 (Linux; Android 9; Unit-" +
                            std::to_string(i) + ") Chrome/76.0");
  }
  std::ofstream out(path);
  logs::LogWriter writer(out);
  logs::LogRecord r;
  r.edge_id = 1;

  // Periodic core: 20 poll objects x 12 clients x ~40 polls. Kept small so
  // the detector's FFT+permutation work (identical compute in both
  // pipelines) doesn't drown out the storage costs this section measures.
  const std::size_t periodic = std::min<std::size_t>(records / 2, 9'600);
  std::size_t written = 0;
  for (std::size_t o = 0; written < periodic; ++o) {
    const double period = 20.0 + static_cast<double>(o % 6) * 10.0;
    r.url = "https://api.bench.example/poll/" + std::to_string(o % 100);
    r.domain = "api.bench.example";
    r.content_type = "application/json";
    r.method = http::Method::kGet;
    r.status = 200;
    for (std::size_t c = 0; c < 12 && written < periodic; ++c) {
      r.client_id = "poll-client-" + std::to_string(c + (o % 100) * 12);
      r.user_agent = uas[(c + o) % uas.size()];
      const double phase = rng.uniform(0.0, period);
      for (std::size_t k = 0; k < 40 && written < periodic; ++k) {
        r.timestamp = phase + static_cast<double>(k) * period +
                      rng.normal(0.0, 0.2);
        r.response_bytes = 700 + c;
        r.cache_status = k % 2 == 0 ? logs::CacheStatus::kNotCacheable
                                    : logs::CacheStatus::kMiss;
        writer.write(r);
        ++written;
      }
    }
  }
  // Random tail up to the target count.
  for (; written < records; ++written) {
    const auto i = written;
    const bool json = i % 10 < 6;
    r.timestamp = rng.uniform(0.0, 86'400.0);
    r.client_id = "client-" + std::to_string(i % 5'000);
    r.user_agent = uas[i % uas.size()];
    r.method = i % 13 == 0 ? http::Method::kPost : http::Method::kGet;
    r.url = (json ? "https://api.bench.example/v1/obj/"
                  : "https://www.bench.example/page/") +
            std::to_string(i % 2'000) + "?page=" + std::to_string(i % 7);
    r.domain = json ? "api.bench.example" : "www.bench.example";
    r.content_type = json ? "application/json; charset=utf-8"
                          : "text/html; charset=utf-8";
    r.status = i % 211 == 0 ? 503 : 200;
    r.response_bytes = 256 + i % 4'096;
    r.cache_status = static_cast<logs::CacheStatus>(i % 4);
    writer.write(r);
  }
}

struct PipelineTiming {
  double ingest_s = 0.0;   // file -> in-memory store
  double groupby_s = 0.0;  // object + client flow extraction
  double analyze_s = 0.0;  // characterization + periodicity
  std::size_t store_bytes = 0;
  std::size_t flows = 0;  // sanity: both pipelines must agree
  [[nodiscard]] double total_s() const {
    return ingest_s + groupby_s + analyze_s;
  }
};

core::PeriodicityConfig ingest_bench_periodicity(std::size_t threads) {
  core::PeriodicityConfig config;
  config.detector.permutations = 10;  // enough work, bounded wall clock
  config.threads = threads;
  return config;
}

PipelineTiming run_row_pipeline(const std::string& path, std::size_t threads) {
  PipelineTiming t;
  bench::Timer timer;
  auto ds = logs::ingest_log_file(path, logs::IngestOptions{});
  ds.sort_by_time();
  t.ingest_s = timer.seconds();

  const auto json = ds.json_only();
  timer.reset();
  const auto object_flows = logs::extract_object_flows(json);
  const auto client_flows = logs::extract_client_flows(json);
  t.groupby_s = timer.seconds();
  t.flows = object_flows.size() + client_flows.size();

  timer.reset();
  benchmark::DoNotOptimize(core::characterize_source(json, threads));
  benchmark::DoNotOptimize(core::characterize_methods(json, threads));
  benchmark::DoNotOptimize(core::characterize_cacheability(json, threads));
  benchmark::DoNotOptimize(core::compare_sizes(ds, threads));
  benchmark::DoNotOptimize(core::characterize_status(ds, threads));
  benchmark::DoNotOptimize(
      core::analyze_periodicity(json, ingest_bench_periodicity(threads)));
  t.analyze_s = timer.seconds();
  t.store_bytes = dataset_bytes(ds) + dataset_bytes(json);
  return t;
}

PipelineTiming run_columnar_pipeline(const std::string& path,
                                     std::size_t threads, bool from_jlog) {
  PipelineTiming t;
  bench::Timer timer;
  auto table = from_jlog ? shard::load_table_auto(path)
                         : logs::read_log_table(path, logs::IngestOptions{});
  table.sort_by_time();
  t.ingest_s = timer.seconds();

  const auto json_indices = table.json_rows();
  const logs::TableView json(table, json_indices);
  const logs::TableView full(table);
  timer.reset();
  const auto object_flows = logs::extract_object_flows(json);
  const auto client_flows = logs::extract_client_flows(json);
  t.groupby_s = timer.seconds();
  t.flows = object_flows.size() + client_flows.size();

  timer.reset();
  benchmark::DoNotOptimize(core::characterize_source(json, threads));
  benchmark::DoNotOptimize(core::characterize_methods(json, threads));
  benchmark::DoNotOptimize(core::characterize_cacheability(json, threads));
  benchmark::DoNotOptimize(core::compare_sizes(full, threads));
  benchmark::DoNotOptimize(core::characterize_status(full, threads));
  benchmark::DoNotOptimize(
      core::analyze_periodicity(json, ingest_bench_periodicity(threads)));
  t.analyze_s = timer.seconds();
  t.store_bytes = table.memory_bytes() +
                  json_indices.size() * sizeof(logs::LogTable::RowIndex);
  return t;
}

struct IngestBenchReport {
  std::size_t records = 0;
  PipelineTiming row1, col1, jlog1;  // 1 thread
  PipelineTiming rowN, colN;         // n_threads
  std::size_t n_threads = 4;

  // Headline: the columnar store end-to-end (.jlog load + symbol-keyed
  // group-by + analyses) against the TSV row pipeline. Parsing text happens
  // once, at sidecar-write time; every analysis run after that starts from
  // the binary columns.
  [[nodiscard]] double speedup_total() const {
    return row1.total_s() / jlog1.total_s();
  }
  // Same pipelines but both starting from the TSV text — isolates what
  // zero-copy tokenization + interning buy before the sidecar exists.
  [[nodiscard]] double speedup_total_tsv() const {
    return row1.total_s() / col1.total_s();
  }
  [[nodiscard]] double speedup_ingest() const {
    return row1.ingest_s / jlog1.ingest_s;
  }
  [[nodiscard]] double speedup_groupby() const {
    return row1.groupby_s / col1.groupby_s;
  }
  [[nodiscard]] double memory_reduction() const {
    return 1.0 - static_cast<double>(col1.store_bytes) /
                     static_cast<double>(row1.store_bytes);
  }
};

void print_pipeline(const char* name, const PipelineTiming& t) {
  std::printf(
      "  %-22s ingest %7.3f s   group-by %7.3f s   analyze %7.3f s   "
      "total %7.3f s   store %8zu KiB\n",
      name, t.ingest_s, t.groupby_s, t.analyze_s, t.total_s(),
      t.store_bytes / 1024);
}

IngestBenchReport report_ingest_throughput(std::size_t records) {
  bench::print_header(
      "columnar ingest",
      "TSV row pipeline vs zero-copy columnar vs .jlog binary, " +
          std::to_string(records) + " records");
  IngestBenchReport report;
  report.records = records;
  const std::string log_path = "/tmp/jsoncdn_bench_ingest.log";
  const std::string jlog_path = "/tmp/jsoncdn_bench_ingest.jlog";
  write_ingest_log(log_path, records);
  logs::write_jlog(jlog_path, logs::read_log_table(log_path,
                                                   logs::IngestOptions{}));

  // Warm the page cache so the comparison measures parsing, not disk.
  (void)logs::read_log_table(log_path, logs::IngestOptions{});

  report.row1 = run_row_pipeline(log_path, 1);
  report.col1 = run_columnar_pipeline(log_path, 1, /*from_jlog=*/false);
  report.jlog1 = run_columnar_pipeline(jlog_path, 1, /*from_jlog=*/true);
  report.rowN = run_row_pipeline(log_path, report.n_threads);
  report.colN = run_columnar_pipeline(log_path, report.n_threads,
                                      /*from_jlog=*/false);
  if (report.row1.flows != report.col1.flows ||
      report.col1.flows != report.jlog1.flows) {
    bench::note("warning: pipelines disagree on flow counts");
  }

  print_pipeline("row (1 thread)", report.row1);
  print_pipeline("columnar (1 thread)", report.col1);
  print_pipeline(".jlog (1 thread)", report.jlog1);
  print_pipeline("row (4 threads)", report.rowN);
  print_pipeline("columnar (4 threads)", report.colN);
  std::printf(
      "  end-to-end speedup %.2fx (.jlog store; %.2fx from TSV)   "
      "ingest %.2fx   group-by %.2fx   store reduction %.1f%%\n",
      report.speedup_total(), report.speedup_total_tsv(),
      report.speedup_ingest(), report.speedup_groupby(),
      100.0 * report.memory_reduction());
  std::remove(log_path.c_str());
  std::remove(jlog_path.c_str());
  return report;
}

void write_ingest_json(const IngestBenchReport& r, const std::string& path) {
  std::ofstream out(path);
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"records\": %zu,\n"
      "  \"row_1t\": {\"ingest_s\": %.4f, \"groupby_s\": %.4f, "
      "\"analyze_s\": %.4f, \"total_s\": %.4f, \"store_bytes\": %zu},\n"
      "  \"columnar_1t\": {\"ingest_s\": %.4f, \"groupby_s\": %.4f, "
      "\"analyze_s\": %.4f, \"total_s\": %.4f, \"store_bytes\": %zu},\n"
      "  \"jlog_1t\": {\"ingest_s\": %.4f, \"total_s\": %.4f},\n"
      "  \"row_4t_total_s\": %.4f,\n"
      "  \"columnar_4t_total_s\": %.4f,\n"
      "  \"speedup_total\": %.4f,\n"
      "  \"speedup_total_tsv\": %.4f,\n"
      "  \"speedup_ingest\": %.4f,\n"
      "  \"speedup_groupby\": %.4f,\n"
      "  \"memory_reduction\": %.4f\n"
      "}\n",
      r.records, r.row1.ingest_s, r.row1.groupby_s, r.row1.analyze_s,
      r.row1.total_s(), r.row1.store_bytes, r.col1.ingest_s,
      r.col1.groupby_s, r.col1.analyze_s, r.col1.total_s(),
      r.col1.store_bytes, r.jlog1.ingest_s, r.jlog1.total_s(),
      r.rowN.total_s(), r.colN.total_s(), r.speedup_total(),
      r.speedup_total_tsv(), r.speedup_ingest(), r.speedup_groupby(),
      r.memory_reduction());
  out << buf;
  bench::note("wrote " + path);
}

// Minimal key lookup for the fixed-format JSON this binary writes — no
// dependency, no general parser.
double json_number(const std::string& text, const std::string& key) {
  const auto pos = text.find("\"" + key + "\"");
  if (pos == std::string::npos) return -1.0;
  const auto colon = text.find(':', pos);
  if (colon == std::string::npos) return -1.0;
  return std::atof(text.c_str() + colon + 1);
}

// Compares machine-independent ratios against the committed baseline; wall
// clocks differ across machines, speedups should not. Returns false when a
// ratio regressed by more than `tolerance` (relative).
bool check_against_baseline(const IngestBenchReport& r,
                            const std::string& baseline_path,
                            double tolerance) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  bool ok = true;
  const auto check = [&](const char* key, double current) {
    const double base = json_number(text, key);
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline missing %s\n", key);
      ok = false;
      return;
    }
    const double floor = base * (1.0 - tolerance);
    const bool pass = current >= floor;
    std::printf("  %-18s baseline %6.3f   current %6.3f   floor %6.3f   %s\n",
                key, base, current, floor, pass ? "ok" : "REGRESSED");
    if (!pass) ok = false;
  };
  bench::print_header("ingest regression check",
                      baseline_path + " (tolerance " +
                          std::to_string(static_cast<int>(tolerance * 100)) +
                          "%)");
  // The workload's periodic core is an absolute size, so the ratios shift
  // with the record count; a comparison is only meaningful at the count the
  // baseline was measured at.
  const auto base_records =
      static_cast<std::size_t>(json_number(text, "records"));
  if (base_records != r.records) {
    std::fprintf(stderr,
                 "baseline was measured at %zu records, this run used %zu; "
                 "rerun with --ingest-records=%zu\n",
                 base_records, r.records, base_records);
    return false;
  }
  check("speedup_total", r.speedup_total());
  check("speedup_total_tsv", r.speedup_total_tsv());
  check("speedup_ingest", r.speedup_ingest());
  check("speedup_groupby", r.speedup_groupby());
  check("memory_reduction", r.memory_reduction());
  return ok;
}

// ---- Out-of-core scale (.jlog v2 chunk store) -----------------------------

// End-to-end scaling of the sharded store: synthesize N records straight
// into a v2 chunk store (never materializing the table), decode it back with
// a full scan, run the out-of-core streaming study over it, and measure how
// much of the file a quarter-length time window lets the zone maps skip.
// The machine-independent ratios (compression vs v1, bytes/row, prune
// fraction) are what the committed baseline gates on; the throughputs are
// informational.
struct ScaleBenchReport {
  std::size_t records = 0;
  std::uint32_t chunk_rows = 0;
  std::uint64_t v1_bytes = 0;
  std::uint64_t v2_bytes = 0;
  double write_s = 0.0;   // synth stream -> v2 store on disk
  double decode_s = 0.0;  // full scan, no consumer (pure codec cost)
  double e2e_s = 0.0;     // scan -> StreamingStudy summary
  std::uint32_t chunks_total = 0;
  std::uint32_t chunks_pruned = 0;  // quarter-window scan

  [[nodiscard]] double compression_ratio() const {
    return v2_bytes == 0 ? 0.0 : static_cast<double>(v1_bytes) /
                                     static_cast<double>(v2_bytes);
  }
  [[nodiscard]] double bytes_per_row() const {
    return records == 0 ? 0.0 : static_cast<double>(v2_bytes) /
                                    static_cast<double>(records);
  }
  [[nodiscard]] double prune_fraction() const {
    return chunks_total == 0 ? 0.0 : static_cast<double>(chunks_pruned) /
                                         static_cast<double>(chunks_total);
  }
  [[nodiscard]] double mrec_s(double seconds) const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(records) / seconds / 1e6;
  }
};

ScaleBenchReport report_scale(std::size_t records) {
  bench::print_header(
      "out-of-core scale",
      ".jlog v2 write/decode/stream + zone-map pruning, " +
          std::to_string(records) + " records");
  ScaleBenchReport r;
  r.records = records;
  const std::string v2_path = "/tmp/jsoncdn_bench_scale_v2.jlog";
  const std::string v1_path = "/tmp/jsoncdn_bench_scale_v1.jlog";

  shard::SynthOptions synth;
  synth.records = records;
  synth.seed = 4242;

  {
    shard::ShardWriterOptions options;
    shard::ShardWriter writer(v2_path, options);
    r.chunk_rows = options.chunk_rows;
    bench::Timer timer;
    shard::synth_records(synth, [&](const shard::SynthFields& f) {
      writer.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                           f.url, f.domain, f.content_type, f.status,
                           f.response_bytes, f.request_bytes, f.cache_status,
                           f.edge_id);
    });
    const auto stats = writer.finalize();
    r.write_s = timer.seconds();
    r.v2_bytes = stats.file_bytes;
    r.chunks_total = static_cast<std::uint32_t>(stats.chunks);
  }

  {
    // The same rows as a v1 row-image sidecar, for the size comparison.
    shard::ShardReader reader(v2_path);
    logs::write_jlog(v1_path, reader.read_all());
    r.v1_bytes = std::filesystem::file_size(v1_path);
  }

  {
    shard::ShardReader reader(v2_path);
    bench::Timer timer;
    const auto stats = reader.scan(
        shard::ScanPredicate{},
        [](const logs::LogTable&, std::span<const std::uint32_t>) {});
    r.decode_s = timer.seconds();
    if (stats.rows_scanned != records)
      bench::note("warning: full scan decoded an unexpected row count");
  }

  {
    shard::ShardReader reader(v2_path);
    stream::StreamingStudy study{stream::StreamingConfig{}};
    bench::Timer timer;
    reader.scan(shard::ScanPredicate{},
                [&](const logs::LogTable& chunk,
                    std::span<const std::uint32_t> selected) {
                  study.ingest(chunk, selected);
                });
    const auto summary = study.summary();
    r.e2e_s = timer.seconds();
    if (summary.total_records != records)
      bench::note("warning: streaming study saw an unexpected row count");
  }

  {
    shard::ShardReader reader(v2_path);
    shard::ScanPredicate window;
    window.min_time = synth.start_time;
    window.max_time = synth.start_time + synth.duration / 4.0;
    const auto stats = reader.scan(
        window, [](const logs::LogTable&, std::span<const std::uint32_t>) {});
    r.chunks_total = stats.chunks_total;
    r.chunks_pruned = stats.chunks_pruned;
  }

  std::printf(
      "  v1 %8.1f MiB   v2 %8.1f MiB   compression %5.2fx   %5.1f B/row\n",
      static_cast<double>(r.v1_bytes) / (1024.0 * 1024.0),
      static_cast<double>(r.v2_bytes) / (1024.0 * 1024.0),
      r.compression_ratio(), r.bytes_per_row());
  std::printf(
      "  write %6.2f Mrec/s   decode %6.2f Mrec/s   stream %6.2f Mrec/s\n",
      r.mrec_s(r.write_s), r.mrec_s(r.decode_s), r.mrec_s(r.e2e_s));
  std::printf(
      "  quarter window pruned %u of %u chunks (%.1f%%) without decoding\n",
      r.chunks_pruned, r.chunks_total, 100.0 * r.prune_fraction());
  std::remove(v1_path.c_str());
  std::remove(v2_path.c_str());
  return r;
}

void write_scale_json(const ScaleBenchReport& r, const std::string& path) {
  std::ofstream out(path);
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"records\": %zu,\n"
      "  \"chunk_rows\": %u,\n"
      "  \"v1_bytes\": %llu,\n"
      "  \"v2_bytes\": %llu,\n"
      "  \"compression_ratio\": %.4f,\n"
      "  \"bytes_per_row\": %.4f,\n"
      "  \"prune_fraction\": %.4f,\n"
      "  \"write_mrec_s\": %.4f,\n"
      "  \"decode_mrec_s\": %.4f,\n"
      "  \"stream_mrec_s\": %.4f\n"
      "}\n",
      r.records, r.chunk_rows,
      static_cast<unsigned long long>(r.v1_bytes),
      static_cast<unsigned long long>(r.v2_bytes), r.compression_ratio(),
      r.bytes_per_row(), r.prune_fraction(), r.mrec_s(r.write_s),
      r.mrec_s(r.decode_s), r.mrec_s(r.e2e_s));
  out << buf;
  bench::note("wrote " + path);
}

// Gates on the machine-independent ratios only: compression and pruning are
// properties of the format and the workload, not of the machine. Throughputs
// are reported but never gated.
bool check_scale_baseline(const ScaleBenchReport& r,
                          const std::string& baseline_path, double tolerance) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  bench::print_header("scale regression check",
                      baseline_path + " (tolerance " +
                          std::to_string(static_cast<int>(tolerance * 100)) +
                          "%)");
  const auto base_records =
      static_cast<std::size_t>(json_number(text, "records"));
  if (base_records != r.records) {
    std::fprintf(stderr,
                 "baseline was measured at %zu records, this run used %zu; "
                 "rerun with --scale-records=%zu\n",
                 base_records, r.records, base_records);
    return false;
  }
  bool ok = true;
  const auto check_min = [&](const char* key, double current) {
    const double base = json_number(text, key);
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline missing %s\n", key);
      ok = false;
      return;
    }
    const double floor = base * (1.0 - tolerance);
    const bool pass = current >= floor;
    std::printf("  %-18s baseline %6.3f   current %6.3f   floor %6.3f   %s\n",
                key, base, current, floor, pass ? "ok" : "REGRESSED");
    if (!pass) ok = false;
  };
  const auto check_max = [&](const char* key, double current) {
    const double base = json_number(text, key);
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline missing %s\n", key);
      ok = false;
      return;
    }
    const double ceiling = base * (1.0 + tolerance);
    const bool pass = current <= ceiling;
    std::printf(
        "  %-18s baseline %6.3f   current %6.3f   ceiling %6.3f   %s\n", key,
        base, current, ceiling, pass ? "ok" : "REGRESSED");
    if (!pass) ok = false;
  };
  check_min("compression_ratio", r.compression_ratio());
  check_min("prune_fraction", r.prune_fraction());
  check_max("bytes_per_row", r.bytes_per_row());
  return ok;
}

// ---- Vectorized kernel throughput (--kernels) -----------------------------

// Per-kernel elements/second for the dual-build analysis kernels, three ways:
// the pre-kernel reference loop (kernels::baseline, compiled at the build's
// default flags exactly like the original call sites), the scalar kernel
// build, and the SIMD kernel build. The committed baseline gates on the
// SIMD-vs-reference throughput ratio — a property of the kernel shapes far
// more stable across machines than any wall clock.

// Rate of `fn` in elements/second: repetitions are scaled until a trial runs
// long enough to trust, and the best of three trials is kept (the usual
// guard against scheduler noise on shared CI runners).
template <typename Fn>
double measure_rate(double elements_per_call, Fn&& fn) {
  double best = 0.0;
  for (int trial = 0; trial < 3; ++trial) {
    std::size_t reps = 1;
    for (;;) {
      bench::Timer timer;
      for (std::size_t r = 0; r < reps; ++r) fn();
      const double s = timer.seconds();
      if (s >= 0.06) {
        best = std::max(best, elements_per_call *
                                  static_cast<double>(reps) / s);
        break;
      }
      reps = s <= 1e-6 ? reps * 16
                       : static_cast<std::size_t>(
                             static_cast<double>(reps) * (0.1 / s)) +
                             1;
    }
  }
  return best;
}

struct KernelBench {
  std::string name;
  double baseline_meps = 0.0;  // pre-kernel reference loop
  double scalar_meps = 0.0;    // kernel body, vectorization disabled
  double simd_meps = 0.0;      // kernel body, vectorized build
  [[nodiscard]] double ratio() const {
    return baseline_meps <= 0.0 ? 0.0 : simd_meps / baseline_meps;
  }
};

struct KernelBenchReport {
  std::size_t records = 0;
  bool simd_ran = false;
  std::vector<KernelBench> kernels;
};

// Measures one kernel three ways. `run_kernel` calls the dispatched kernel
// (measured under both dispatch modes), `run_baseline` the reference loop.
template <typename KernelFn, typename BaselineFn>
KernelBench bench_kernel(const std::string& name, double elements_per_call,
                         KernelFn&& run_kernel, BaselineFn&& run_baseline) {
  KernelBench result;
  result.name = name;
  result.baseline_meps = measure_rate(elements_per_call, run_baseline) / 1e6;
  stats::set_simd_enabled(false);
  result.scalar_meps = measure_rate(elements_per_call, run_kernel) / 1e6;
  stats::set_simd_enabled(true);
  result.simd_meps = measure_rate(elements_per_call, run_kernel) / 1e6;
  std::printf(
      "  %-14s reference %8.1f Melem/s   scalar %8.1f   %-6s %8.1f   "
      "ratio %5.2fx\n",
      result.name.c_str(), result.baseline_meps, result.scalar_meps,
      stats::simd_isa(), result.simd_meps, result.ratio());
  return result;
}

// The twiddle chain fft.cpp feeds the table kernel (same repeated-multiply
// recurrence the baseline stage runs inline).
std::vector<std::complex<double>> bench_stage_twiddles(std::size_t len) {
  const double angle = -2.0 * std::numbers::pi / static_cast<double>(len);
  const std::complex<double> wlen(std::cos(angle), std::sin(angle));
  std::vector<std::complex<double>> tw;
  tw.reserve(len / 2);
  std::complex<double> w(1.0, 0.0);
  for (std::size_t k = 0; k < len / 2; ++k) {
    tw.push_back(w);
    w *= wlen;
  }
  return tw;
}

KernelBenchReport report_kernel_throughput(std::size_t records) {
  bench::print_header(
      "vectorized kernels",
      "reference loop vs scalar vs SIMD kernel build, " +
          std::to_string(records) + " elements");
  KernelBenchReport report;
  report.records = records;
  report.simd_ran = stats::simd_available();
  if (!report.simd_ran) {
    bench::note("warning: no SIMD kernel build on this machine; the SIMD "
                "column measures the scalar build");
  }
  const bool entry_mode = stats::simd_enabled();
  stats::Rng rng(0x51d);
  const std::size_t n = records;

  // FFT butterfly stages: all stages of a 4096-point transform, the size the
  // periodicity permutation gate runs hundreds of times per flow.
  {
    constexpr std::size_t n_fft = 4096;
    constexpr std::size_t stages = 12;  // log2(n_fft)
    std::vector<std::complex<double>> pristine(n_fft);
    for (auto& v : pristine) v = {rng.uniform(-1.0, 1.0),
                                  rng.uniform(-1.0, 1.0)};
    std::vector<std::vector<std::complex<double>>> tables;
    for (std::size_t len = 2; len <= n_fft; len <<= 1)
      tables.push_back(bench_stage_twiddles(len));
    std::vector<std::complex<double>> work(n_fft);
    // Work unit: one touched point per stage.
    const double elements = static_cast<double>(n_fft * stages);
    report.kernels.push_back(bench_kernel(
        "fft",
        elements,
        [&] {
          work = pristine;
          std::size_t stage = 0;
          for (std::size_t len = 2; len <= n_fft; len <<= 1, ++stage)
            kernels::fft_pass(work.data(), n_fft, len, tables[stage].data());
          benchmark::DoNotOptimize(work.data());
        },
        [&] {
          work = pristine;
          for (std::size_t len = 2; len <= n_fft; len <<= 1)
            kernels::baseline::fft_pass(work.data(), n_fft, len, false);
          benchmark::DoNotOptimize(work.data());
        }));
  }

  // Direct autocorrelation: the short-series path of spectral_analysis.
  {
    constexpr std::size_t n_acf = 8192;
    constexpr std::size_t max_lag = 2048;
    std::vector<double> x(n_acf);
    for (auto& v : x) v = rng.uniform(0.0, 2.0);
    double energy = 0.0;
    for (const double v : x) energy += v * v;
    std::vector<double> r(max_lag + 1);
    // Work unit: one multiply-add of the lag sums.
    const double elements =
        static_cast<double>((max_lag + 1) * n_acf -
                            max_lag * (max_lag + 1) / 2);
    report.kernels.push_back(bench_kernel(
        "acf",
        elements,
        [&] {
          kernels::acf_direct(x.data(), n_acf, max_lag, energy, r.data());
          benchmark::DoNotOptimize(r.data());
        },
        [&] {
          kernels::baseline::acf_direct(x.data(), n_acf, max_lag, energy,
                                        r.data());
          benchmark::DoNotOptimize(r.data());
        }));
  }

  // Time-binning over a full-size record stream (rate histograms). Flow
  // event times arrive chronologically, which the kernel's sorted fast path
  // exploits; a shuffled copy exercises the per-element vectorized fallback.
  {
    const double t_begin = 0.0, t_end = 86'400.0;
    constexpr std::size_t nbins = 1024;
    const double dt = (t_end - t_begin) / static_cast<double>(nbins);
    std::vector<double> times(n);
    for (auto& t : times) t = rng.uniform(-100.0, 86'500.0);
    std::vector<double> shuffled = times;
    std::sort(times.begin(), times.end());
    std::vector<double> bins(nbins);
    report.kernels.push_back(bench_kernel(
        "bin_events",
        static_cast<double>(n),
        [&] {
          std::fill(bins.begin(), bins.end(), 0.0);
          kernels::bin_events(times.data(), n, t_begin, t_end, dt,
                              bins.data(), nbins);
          benchmark::DoNotOptimize(bins.data());
        },
        [&] {
          std::fill(bins.begin(), bins.end(), 0.0);
          kernels::baseline::bin_events(times.data(), n, t_begin, t_end, dt,
                                        bins.data(), nbins);
          benchmark::DoNotOptimize(bins.data());
        }));
    report.kernels.push_back(bench_kernel(
        "bin_shuffled",
        static_cast<double>(n),
        [&] {
          std::fill(bins.begin(), bins.end(), 0.0);
          kernels::bin_events(shuffled.data(), n, t_begin, t_end, dt,
                              bins.data(), nbins);
          benchmark::DoNotOptimize(bins.data());
        },
        [&] {
          std::fill(bins.begin(), bins.end(), 0.0);
          kernels::baseline::bin_events(shuffled.data(), n, t_begin, t_end,
                                        dt, bins.data(), nbins);
          benchmark::DoNotOptimize(bins.data());
        }));
  }

  // Symbol-keyed group-by counting on a CDN-skewed stream: time-sorted
  // access logs repeat the same hot object in bursts (geometric run
  // lengths, mean ~5), so a single count table serialises on
  // store-to-load forwarding; the interleaved sub-tables recover
  // independent increment chains.
  {
    constexpr std::size_t n_keys = 2048;
    std::vector<std::uint32_t> keys(n);
    std::uint32_t prev = 0;
    for (auto& k : keys) {
      if (rng.uniform_int(0, 99) < 80) {
        k = prev;  // continue the current hot-object burst
      } else {
        const auto r = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(n_keys * 5) - 1));
        k = static_cast<std::uint32_t>(r % 5 != 0 ? r % 16 : r % n_keys);
        prev = k;
      }
    }
    std::vector<std::uint64_t> counts(n_keys);
    report.kernels.push_back(bench_kernel(
        "groupby",
        static_cast<double>(n),
        [&] {
          std::fill(counts.begin(), counts.end(), 0);
          kernels::count_u32(keys.data(), nullptr, n, counts.data(), n_keys);
          benchmark::DoNotOptimize(counts.data());
        },
        [&] {
          std::fill(counts.begin(), counts.end(), 0);
          kernels::baseline::count_u32(keys.data(), nullptr, n, counts.data(),
                                       n_keys);
          benchmark::DoNotOptimize(counts.data());
        }));
  }

  // Status classing (the characterization marginals).
  {
    std::vector<std::int32_t> status(n);
    for (auto& s : status) {
      const auto r = rng.uniform_int(0, 99);
      s = r < 70 ? 200 : r < 80 ? 304 : r < 90 ? 404 : r < 95 ? 503 : 504;
    }
    report.kernels.push_back(bench_kernel(
        "status",
        static_cast<double>(n),
        [&] {
          benchmark::DoNotOptimize(
              kernels::count_status(status.data(), nullptr, n));
        },
        [&] {
          benchmark::DoNotOptimize(
              kernels::baseline::count_status(status.data(), nullptr, n));
        }));
  }

  // Sketch finalizer batch (HyperLogLog / CountMin add paths).
  {
    std::vector<std::uint64_t> hashes(n);
    std::uint64_t s = 0x5eed;
    for (auto& h : hashes) h = s = stats::splitmix64(s);
    std::vector<std::uint64_t> mixed(n);
    report.kernels.push_back(bench_kernel(
        "splitmix",
        static_cast<double>(n),
        [&] {
          kernels::splitmix_batch(hashes.data(), n, 0, mixed.data());
          benchmark::DoNotOptimize(mixed.data());
        },
        [&] {
          kernels::baseline::splitmix_batch(hashes.data(), n, 0,
                                            mixed.data());
          benchmark::DoNotOptimize(mixed.data());
        }));
  }

  // Chunk-store varint decode: bulk get_n vs the element-at-a-time get()
  // loop the column decoder ran before. Not SIMD-dispatched (the fast path
  // is branch restructuring, identical in both builds) — the ratio is what
  // the gate watches.
  {
    std::string buf;
    {
      shard::DeltaEncoder enc;
      std::uint64_t v = 1'000'000'000;
      for (std::size_t i = 0; i < n; ++i) {
        v += static_cast<std::uint64_t>(rng.uniform_int(0, 300));
        enc.put(buf, v);
      }
    }
    std::vector<std::uint64_t> decoded(n);
    report.kernels.push_back(bench_kernel(
        "varint",
        static_cast<double>(n),
        [&] {
          shard::DeltaDecoder dec;
          std::size_t pos = 0;
          if (!dec.get_n(buf, pos, decoded.data(), n))
            bench::note("warning: varint bulk decode failed");
          benchmark::DoNotOptimize(decoded.data());
        },
        [&] {
          shard::DeltaDecoder dec;
          std::size_t pos = 0;
          for (std::size_t i = 0; i < n; ++i) {
            if (!dec.get(buf, pos, decoded[i])) {
              bench::note("warning: varint decode failed");
              break;
            }
          }
          benchmark::DoNotOptimize(decoded.data());
        }));
  }

  stats::set_simd_enabled(entry_mode);
  return report;
}

void write_kernels_json(const KernelBenchReport& r, const std::string& path) {
  std::ofstream out(path);
  out << "{\n  \"records\": " << r.records << ",\n  \"simd_ran\": "
      << (r.simd_ran ? "true" : "false") << ",\n";
  char buf[512];
  for (std::size_t i = 0; i < r.kernels.size(); ++i) {
    const auto& k = r.kernels[i];
    std::snprintf(buf, sizeof(buf),
                  "  \"%s_baseline_meps\": %.2f,\n"
                  "  \"%s_scalar_meps\": %.2f,\n"
                  "  \"%s_simd_meps\": %.2f,\n"
                  "  \"%s_ratio\": %.4f%s\n",
                  k.name.c_str(), k.baseline_meps, k.name.c_str(),
                  k.scalar_meps, k.name.c_str(), k.simd_meps, k.name.c_str(),
                  k.ratio(), i + 1 < r.kernels.size() ? "," : "");
    out << buf;
  }
  out << "}\n";
  bench::note("wrote " + path);
}

// Gates each kernel's SIMD-vs-reference throughput ratio against the
// committed baseline. Machines without the SIMD build skip the gate (the
// ratio would measure nothing).
bool check_kernels_baseline(const KernelBenchReport& r,
                            const std::string& baseline_path,
                            double tolerance) {
  if (!r.simd_ran) {
    bench::note("no SIMD build on this machine; skipping kernel gate");
    return true;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "cannot open baseline %s\n", baseline_path.c_str());
    return false;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  bench::print_header("kernel regression check",
                      baseline_path + " (tolerance " +
                          std::to_string(static_cast<int>(tolerance * 100)) +
                          "%)");
  const auto base_records =
      static_cast<std::size_t>(json_number(text, "records"));
  if (base_records != r.records) {
    std::fprintf(stderr,
                 "baseline was measured at %zu records, this run used %zu; "
                 "rerun with --kernels-records=%zu\n",
                 base_records, r.records, base_records);
    return false;
  }
  bool ok = true;
  for (const auto& k : r.kernels) {
    const double base = json_number(text, k.name + "_ratio");
    if (base <= 0.0) {
      std::fprintf(stderr, "baseline missing %s_ratio\n", k.name.c_str());
      ok = false;
      continue;
    }
    const double floor = base * (1.0 - tolerance);
    const bool pass = k.ratio() >= floor;
    std::printf("  %-14s baseline %6.3f   current %6.3f   floor %6.3f   %s\n",
                (k.name + "_ratio").c_str(), base, k.ratio(), floor,
                pass ? "ok" : "REGRESSED");
    if (!pass) ok = false;
  }
  return ok;
}

// ---- Edge throughput under origin faults ----------------------------------

// The resilience layer (retry/backoff, stale-if-error, negative cache,
// breaker) only runs on origin failures, so its cost must scale with the
// fault rate and be zero at 0%. This section measures edge throughput,
// cache-hit ratio, and the error share actually reaching clients at 0%, 1%,
// and 10% origin failure — the EXPERIMENTS.md fault table comes from here.
void report_fault_resilience() {
  bench::print_header(
      "edge resilience",
      "simulated edge throughput vs deterministic origin fault rate");
  workload::WorkloadGenerator generator(workload::short_term_scenario(0.01, 42));
  const auto workload = generator.generate();
  double horizon = 0.0;
  for (const auto& event : workload.events)
    horizon = std::max(horizon, event.time);
  bench::note("workload: " + std::to_string(workload.events.size()) +
              " requests");

  for (const double rate : {0.0, 0.01, 0.10}) {
    cdn::NetworkParams params;
    if (rate > 0.0) {
      params.faults.enabled = true;
      params.faults.seed = 1337;
      params.faults.error_rate = 0.6 * rate;
      params.faults.timeout_rate = 0.2 * rate;
      params.faults.truncate_rate = 0.1 * rate;
      params.faults.latency_spike_rate = 0.1 * rate;
      params.faults.horizon_seconds = horizon + 1.0;
    }
    cdn::CdnNetwork network(generator.catalog().objects(), params);
    bench::Timer timer;
    const auto dataset = network.run(workload.events);
    const double seconds = timer.seconds();

    const auto metrics = network.total_metrics();
    const auto resilience = network.total_resilience();
    const double requests = static_cast<double>(metrics.requests());
    const double error_share =
        requests == 0.0 ? 0.0
                        : static_cast<double>(metrics.errors()) / requests;
    std::printf(
        "  fault rate %5.1f%%  %6.2f Mreq/s   hit ratio %5.3f   "
        "error share %6.4f   stale served %llu   retries %llu   "
        "breaker trips %llu\n",
        100.0 * rate, requests / seconds / 1e6,
        metrics.overall_hit_ratio(), error_share,
        static_cast<unsigned long long>(resilience.stale_served),
        static_cast<unsigned long long>(resilience.retries),
        static_cast<unsigned long long>(resilience.breaker_trips));
    benchmark::DoNotOptimize(dataset.size());
  }
  bench::note(
      "error share counts responses no resilience mechanism could absorb; "
      "the gap to the injected rate is retries + stale-if-error");
}

}  // namespace

int main(int argc, char** argv) {
  // Custom ingest-bench flags, stripped before google-benchmark sees argv:
  //   --ingest-json=PATH     write BENCH_ingest.json-style results to PATH
  //   --ingest-check=PATH    compare ratios against a committed baseline,
  //                          exit non-zero on a >25% regression
  //   --ingest-records=N     workload size (default 1,000,000)
  //   --ingest-only          skip the microbenchmark suite & other reports
  // Out-of-core scale flags (same pattern, .jlog v2 chunk store):
  //   --scale                run the out-of-core scale section
  //   --scale-json=PATH      write BENCH_scale.json-style results to PATH
  //   --scale-check=PATH     compare format ratios against a baseline
  //   --scale-records=N      workload size (default 2,000,000)
  //   --scale-only           run only the scale section
  // Vectorized-kernel flags (same pattern, stats/kernels dual build):
  //   --kernels              run the per-kernel throughput section
  //   --kernels-json=PATH    write BENCH_kernels.json-style results to PATH
  //   --kernels-check=PATH   compare SIMD-vs-reference throughput ratios
  //                          against a baseline, exit non-zero on a >25%
  //                          regression
  //   --kernels-records=N    stream length for the array kernels (default
  //                          1,000,000; fft/acf sizes are fixed)
  //   --kernels-only         run only the kernels section
  std::string ingest_json_path;
  std::string ingest_check_path;
  std::size_t ingest_records = 1'000'000;
  bool ingest_only = false;
  std::string scale_json_path;
  std::string scale_check_path;
  std::size_t scale_records = 2'000'000;
  bool scale_enabled = false;
  bool scale_only = false;
  std::string kernels_json_path;
  std::string kernels_check_path;
  std::size_t kernels_records = 1'000'000;
  bool kernels_enabled = false;
  bool kernels_only = false;
  {
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--ingest-json=", 0) == 0) {
        ingest_json_path = arg.substr(std::strlen("--ingest-json="));
      } else if (arg.rfind("--ingest-check=", 0) == 0) {
        ingest_check_path = arg.substr(std::strlen("--ingest-check="));
      } else if (arg.rfind("--ingest-records=", 0) == 0) {
        ingest_records = static_cast<std::size_t>(
            std::atoll(arg.c_str() + std::strlen("--ingest-records=")));
      } else if (arg == "--ingest-only") {
        ingest_only = true;
      } else if (arg == "--scale") {
        scale_enabled = true;
      } else if (arg.rfind("--scale-json=", 0) == 0) {
        scale_json_path = arg.substr(std::strlen("--scale-json="));
        scale_enabled = true;
      } else if (arg.rfind("--scale-check=", 0) == 0) {
        scale_check_path = arg.substr(std::strlen("--scale-check="));
        scale_enabled = true;
      } else if (arg.rfind("--scale-records=", 0) == 0) {
        scale_records = static_cast<std::size_t>(
            std::atoll(arg.c_str() + std::strlen("--scale-records=")));
        scale_enabled = true;
      } else if (arg == "--scale-only") {
        scale_enabled = true;
        scale_only = true;
      } else if (arg == "--kernels") {
        kernels_enabled = true;
      } else if (arg.rfind("--kernels-json=", 0) == 0) {
        kernels_json_path = arg.substr(std::strlen("--kernels-json="));
        kernels_enabled = true;
      } else if (arg.rfind("--kernels-check=", 0) == 0) {
        kernels_check_path = arg.substr(std::strlen("--kernels-check="));
        kernels_enabled = true;
      } else if (arg.rfind("--kernels-records=", 0) == 0) {
        kernels_records = static_cast<std::size_t>(
            std::atoll(arg.c_str() + std::strlen("--kernels-records=")));
        kernels_enabled = true;
      } else if (arg == "--kernels-only") {
        kernels_enabled = true;
        kernels_only = true;
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
  }

  if (kernels_enabled) {
    const auto kernel_report = report_kernel_throughput(kernels_records);
    if (!kernels_json_path.empty())
      write_kernels_json(kernel_report, kernels_json_path);
    if (!kernels_check_path.empty() &&
        !check_kernels_baseline(kernel_report, kernels_check_path,
                                /*tolerance=*/0.25))
      return 1;
    if (kernels_only) return 0;
  }

  if (!ingest_only && !scale_only) {
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    report_parallel_speedup();
    report_streaming_vs_batch();
    report_fault_resilience();
  }

  if (!scale_only) {
    const auto ingest_report = report_ingest_throughput(ingest_records);
    if (!ingest_json_path.empty())
      write_ingest_json(ingest_report, ingest_json_path);
    if (!ingest_check_path.empty() &&
        !check_against_baseline(ingest_report, ingest_check_path,
                                /*tolerance=*/0.25))
      return 1;
  }

  if (scale_enabled) {
    const auto scale_report = report_scale(scale_records);
    if (!scale_json_path.empty())
      write_scale_json(scale_report, scale_json_path);
    if (!scale_check_path.empty() &&
        !check_scale_baseline(scale_report, scale_check_path,
                              /*tolerance=*/0.25))
      return 1;
  }
  return 0;
}
