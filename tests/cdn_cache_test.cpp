#include "cdn/cache.h"

#include <gtest/gtest.h>

namespace jsoncdn::cdn {
namespace {

TEST(LruCache, InsertThenLookupHits) {
  LruCache cache(1024);
  cache.insert("a", 100, 60.0, 0.0);
  const auto hit = cache.lookup("a", 1.0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 100u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(LruCache, MissOnAbsentKey) {
  LruCache cache(1024);
  EXPECT_FALSE(cache.lookup("missing", 0.0).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(LruCache, TtlExpiryCountsAsExpirationAndMiss) {
  LruCache cache(1024);
  cache.insert("a", 100, 10.0, 0.0);
  EXPECT_TRUE(cache.lookup("a", 9.99).has_value());
  EXPECT_FALSE(cache.lookup("a", 10.0).has_value());  // expires_at <= now
  EXPECT_EQ(cache.stats().expirations, 1u);
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(300);
  cache.insert("a", 100, 100.0, 0.0);
  cache.insert("b", 100, 100.0, 1.0);
  cache.insert("c", 100, 100.0, 2.0);
  (void)cache.lookup("a", 3.0);         // refresh a
  cache.insert("d", 100, 100.0, 4.0);   // evicts b (LRU)
  EXPECT_TRUE(cache.contains("a", 5.0));
  EXPECT_FALSE(cache.contains("b", 5.0));
  EXPECT_TRUE(cache.contains("c", 5.0));
  EXPECT_TRUE(cache.contains("d", 5.0));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruCache, CapacityNeverExceeded) {
  LruCache cache(250);
  for (int i = 0; i < 20; ++i) {
    cache.insert("k" + std::to_string(i), 100, 100.0, i);
    EXPECT_LE(cache.size_bytes(), 250u);
  }
  EXPECT_EQ(cache.entry_count(), 2u);
}

TEST(LruCache, OversizedObjectNotAdmitted) {
  LruCache cache(100);
  cache.insert("big", 101, 100.0, 0.0);
  EXPECT_FALSE(cache.contains("big", 1.0));
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(LruCache, NonPositiveTtlNotAdmitted) {
  LruCache cache(100);
  cache.insert("a", 10, 0.0, 0.0);
  cache.insert("b", 10, -5.0, 0.0);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(LruCache, ZeroCapacityAlwaysMisses) {
  LruCache cache(0);
  cache.insert("a", 1, 100.0, 0.0);
  EXPECT_FALSE(cache.lookup("a", 0.5).has_value());
}

TEST(LruCache, OverwriteReplacesSizeAndTtl) {
  LruCache cache(1000);
  cache.insert("a", 100, 10.0, 0.0);
  cache.insert("a", 300, 100.0, 1.0);
  EXPECT_EQ(cache.size_bytes(), 300u);
  EXPECT_EQ(cache.entry_count(), 1u);
  const auto hit = cache.lookup("a", 50.0);  // old TTL would have expired
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 300u);
}

TEST(LruCache, ContainsDoesNotTouchStatsOrRecency) {
  LruCache cache(200);
  cache.insert("a", 100, 100.0, 0.0);
  cache.insert("b", 100, 100.0, 1.0);
  (void)cache.contains("a", 2.0);  // must NOT refresh a
  cache.insert("c", 100, 100.0, 3.0);  // evicts a (still LRU)
  EXPECT_FALSE(cache.contains("a", 4.0));
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
}

TEST(LruCache, EraseRemovesEntry) {
  LruCache cache(1000);
  cache.insert("a", 100, 100.0, 0.0);
  cache.erase("a");
  EXPECT_FALSE(cache.contains("a", 1.0));
  EXPECT_EQ(cache.size_bytes(), 0u);
  cache.erase("a");  // idempotent
}

TEST(LruCache, ClearResetsContentButKeepsStats) {
  LruCache cache(1000);
  cache.insert("a", 100, 100.0, 0.0);
  (void)cache.lookup("a", 1.0);
  cache.clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheStats, HitRatioComputation) {
  CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.hit_ratio(), 0.75);
}

}  // namespace
}  // namespace jsoncdn::cdn
