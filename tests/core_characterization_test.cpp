#include "core/characterization.h"

#include <gtest/gtest.h>

#include "core/taxonomy.h"

namespace jsoncdn::core {
namespace {

logs::LogRecord record(const std::string& ua, http::Method method,
                       logs::CacheStatus cache, const std::string& mime,
                       std::uint64_t bytes = 100,
                       const std::string& domain = "d.example") {
  logs::LogRecord r;
  r.user_agent = ua;
  r.method = method;
  r.cache_status = cache;
  r.content_type = mime;
  r.response_bytes = bytes;
  r.domain = domain;
  r.client_id = "c";
  r.url = "https://" + domain + "/x";
  return r;
}

constexpr const char* kMobileAppUa =
    "NewsReader/5.2.1 (iPhone; iOS 12.4.1; Scale/3.00)";
constexpr const char* kMobileBrowserUa =
    "Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) "
    "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/12.1.2 Mobile/15E148 "
    "Safari/604.1";
constexpr const char* kDesktopUa =
    "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
    "like Gecko) Chrome/76.0.3809.100 Safari/537.36";
constexpr const char* kWatchUa =
    "FitnessTracker/6.0.1 (AppleWatch4,4; watchOS 5.3; Scale/2.00)";

TEST(Taxonomy, ClassifyMapsAllAxes) {
  const auto r = record(kMobileAppUa, http::Method::kPost,
                        logs::CacheStatus::kNotCacheable,
                        "application/json", 512);
  const auto c = classify(r);
  EXPECT_TRUE(c.is_json());
  EXPECT_EQ(c.device, http::DeviceType::kMobile);
  EXPECT_EQ(c.agent, http::AgentKind::kNativeApp);
  EXPECT_EQ(c.request, RequestType::kUpload);
  EXPECT_FALSE(c.cacheable_config);
  EXPECT_EQ(c.response_bytes, 512u);
  EXPECT_FALSE(c.is_browser());
}

TEST(Taxonomy, RequestTypeMapping) {
  EXPECT_EQ(classify(record("", http::Method::kGet,
                            logs::CacheStatus::kHit, "application/json"))
                .request,
            RequestType::kDownload);
  EXPECT_EQ(classify(record("", http::Method::kDelete,
                            logs::CacheStatus::kHit, "application/json"))
                .request,
            RequestType::kOther);
}

TEST(CharacterizeSource, CountsDevicesAndBrowsers) {
  logs::Dataset ds;
  for (int i = 0; i < 6; ++i)
    ds.add(record(kMobileAppUa, http::Method::kGet, logs::CacheStatus::kHit,
                  "application/json"));
  for (int i = 0; i < 2; ++i)
    ds.add(record(kMobileBrowserUa, http::Method::kGet,
                  logs::CacheStatus::kHit, "application/json"));
  ds.add(record(kDesktopUa, http::Method::kGet, logs::CacheStatus::kHit,
                "application/json"));
  ds.add(record(kWatchUa, http::Method::kGet, logs::CacheStatus::kHit,
                "application/json"));
  ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit,
                "application/json"));
  const auto source = characterize_source(ds);
  EXPECT_EQ(source.total_requests, 11u);
  EXPECT_NEAR(source.device_share(http::DeviceType::kMobile), 8.0 / 11, 1e-9);
  EXPECT_NEAR(source.device_share(http::DeviceType::kDesktop), 1.0 / 11, 1e-9);
  EXPECT_NEAR(source.device_share(http::DeviceType::kEmbedded), 1.0 / 11,
              1e-9);
  EXPECT_NEAR(source.device_share(http::DeviceType::kUnknown), 1.0 / 11, 1e-9);
  EXPECT_NEAR(source.browser_share(), 3.0 / 11, 1e-9);
  EXPECT_NEAR(source.mobile_browser_share(), 2.0 / 11, 1e-9);
  EXPECT_NEAR(source.non_browser_share(), 8.0 / 11, 1e-9);
  EXPECT_EQ(source.missing_ua_requests, 1u);
  // 4 distinct non-empty UA strings: app, mobile browser, desktop, watch.
  EXPECT_EQ(source.total_ua_strings, 4u);
  EXPECT_NEAR(source.ua_string_share(http::DeviceType::kMobile), 0.5, 1e-9);
}

TEST(CharacterizeMethods, SharesMatchPaperDefinitions) {
  logs::Dataset ds;
  for (int i = 0; i < 84; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit,
                  "application/json"));
  for (int i = 0; i < 15; ++i)
    ds.add(record("", http::Method::kPost, logs::CacheStatus::kNotCacheable,
                  "application/json"));
  ds.add(record("", http::Method::kPut, logs::CacheStatus::kNotCacheable,
                "application/json"));
  const auto mix = characterize_methods(ds);
  EXPECT_EQ(mix.total, 100u);
  EXPECT_DOUBLE_EQ(mix.get_share(), 0.84);
  EXPECT_NEAR(mix.post_share_of_non_get(), 15.0 / 16.0, 1e-9);
}

TEST(CharacterizeCacheability, SplitsByConfig) {
  logs::Dataset ds;
  for (int i = 0; i < 55; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kNotCacheable,
                  "application/json"));
  for (int i = 0; i < 30; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit,
                  "application/json"));
  for (int i = 0; i < 15; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kMiss,
                  "application/json"));
  const auto cache = characterize_cacheability(ds);
  EXPECT_DOUBLE_EQ(cache.uncacheable_share(), 0.55);
  EXPECT_DOUBLE_EQ(cache.hit_share(), 0.30);
}

TEST(CompareSizes, PercentileRatios) {
  logs::Dataset ds;
  for (const auto bytes : {100, 200, 300, 400}) {
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit,
                  "application/json", bytes));
  }
  for (const auto bytes : {1000, 2000, 3000, 4000}) {
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit, "text/html",
                  bytes));
  }
  const auto sizes = compare_sizes(ds);
  EXPECT_EQ(sizes.json.count, 4u);
  EXPECT_EQ(sizes.html.count, 4u);
  EXPECT_DOUBLE_EQ(sizes.p50_ratio(), 0.1);
  EXPECT_DOUBLE_EQ(sizes.p75_ratio(), 0.1);
}

TEST(CompareSizes, EmptyClassesYieldZeroRatios) {
  logs::Dataset ds;
  const auto sizes = compare_sizes(ds);
  EXPECT_DOUBLE_EQ(sizes.p50_ratio(), 0.0);
}

TEST(DomainCacheability, DownloadOnlyAndPerDomainShares) {
  logs::Dataset ds;
  // Domain A: 3 cacheable GETs, 1 uncacheable GET, plus POSTs that must be
  // ignored by the Fig. 4 view.
  for (int i = 0; i < 3; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kHit,
                  "application/json", 10, "a.example"));
  ds.add(record("", http::Method::kGet, logs::CacheStatus::kNotCacheable,
                "application/json", 10, "a.example"));
  for (int i = 0; i < 10; ++i)
    ds.add(record("", http::Method::kPost, logs::CacheStatus::kNotCacheable,
                  "application/json", 10, "a.example"));
  // Domain B: never cacheable.
  for (int i = 0; i < 5; ++i)
    ds.add(record("", http::Method::kGet, logs::CacheStatus::kNotCacheable,
                  "application/json", 10, "b.example"));

  const IndustryLookup lookup = [](std::string_view domain) {
    return domain == "a.example" ? std::string("News/Media")
                                 : std::string("Financial Services");
  };
  const auto domains = domain_cacheability(ds, lookup);
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0].domain, "a.example");
  EXPECT_DOUBLE_EQ(domains[0].cacheable_share, 0.75);
  EXPECT_EQ(domains[0].requests, 4u);  // GETs only
  EXPECT_DOUBLE_EQ(domains[1].cacheable_share, 0.0);
  EXPECT_EQ(domains[1].category, "Financial Services");
}

TEST(DomainCacheability, NullLookupThrows) {
  logs::Dataset ds;
  EXPECT_THROW((void)domain_cacheability(ds, nullptr), std::invalid_argument);
}

TEST(CacheabilityHeatmap, BinsEdgesAndAggregates) {
  std::vector<DomainCacheability> domains = {
      {"d1", "A", 10, 0.0},  {"d2", "A", 10, 0.0}, {"d3", "A", 10, 1.0},
      {"d4", "B", 10, 0.45}, {"d5", "B", 10, 1.0},
  };
  const auto heatmap = cacheability_heatmap(domains, 10);
  ASSERT_EQ(heatmap.categories.size(), 2u);
  EXPECT_EQ(heatmap.categories[0], "A");
  // Category A: 2/3 in bin 0 (never), 1/3 in bin 9 (always).
  EXPECT_NEAR(heatmap.density[0][0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(heatmap.density[0][9], 1.0 / 3.0, 1e-9);
  // Category B: 0.45 -> bin 4; 1.0 -> bin 9.
  EXPECT_NEAR(heatmap.density[1][4], 0.5, 1e-9);
  EXPECT_NEAR(heatmap.density[1][9], 0.5, 1e-9);
  EXPECT_NEAR(heatmap.never_cache_domain_share, 0.4, 1e-9);
  EXPECT_NEAR(heatmap.always_cache_domain_share, 0.4, 1e-9);
}

TEST(CacheabilityHeatmap, RowsSumToOne) {
  std::vector<DomainCacheability> domains = {
      {"d1", "A", 1, 0.2}, {"d2", "A", 1, 0.7}, {"d3", "A", 1, 0.99},
  };
  const auto heatmap = cacheability_heatmap(domains, 5);
  double sum = 0.0;
  for (const double cell : heatmap.density[0]) sum += cell;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(CacheabilityHeatmap, RejectsTooFewBins) {
  EXPECT_THROW((void)cacheability_heatmap({}, 1), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::core
