// Industry categories for CDN customer domains (the paper labels domains via
// a commercial categorization service; Fig. 4 groups cacheability by the top
// 11 categories). Each category carries a cacheability mixture matching the
// paper's qualitative finding: Financial Services / Streaming / Gaming serve
// one-time-use or personalized JSON (never cacheable), while News/Media /
// Sports / Entertainment serve highly static content (mostly cacheable), and
// overall ~50% of domains never cache while ~30% always cache.
#pragma once

#include <array>
#include <string_view>

#include "stats/rng.h"

namespace jsoncdn::workload {

enum class Industry {
  kFinancialServices,
  kStreaming,
  kGaming,
  kNewsMedia,
  kSports,
  kEntertainment,
  kRetail,
  kTechnology,
  kTravel,
  kSocialMedia,
  kAdvertising,
};

inline constexpr std::size_t kIndustryCount = 11;

inline constexpr std::array<Industry, kIndustryCount> kAllIndustries = {
    Industry::kFinancialServices, Industry::kStreaming,
    Industry::kGaming,            Industry::kNewsMedia,
    Industry::kSports,            Industry::kEntertainment,
    Industry::kRetail,            Industry::kTechnology,
    Industry::kTravel,            Industry::kSocialMedia,
    Industry::kAdvertising,
};

[[nodiscard]] std::string_view to_string(Industry i) noexcept;

// Cacheability mixture for domains of a category: with probability
// `never_share` a domain caches nothing, with `always_share` it caches
// everything, otherwise its cacheable object share is uniform in
// [mid_lo, mid_hi].
struct CacheabilityProfile {
  double never_share = 0.0;
  double always_share = 0.0;
  double mid_lo = 0.2;
  double mid_hi = 0.8;
};

[[nodiscard]] const CacheabilityProfile& cacheability_profile(
    Industry i) noexcept;

// Draws one domain's cacheable-object share from the category mixture.
[[nodiscard]] double sample_domain_cacheable_share(Industry i,
                                                   stats::Rng& rng);

}  // namespace jsoncdn::workload
