// Edge cache: byte-capacity LRU with per-entry TTL. Customer configuration
// decides *whether* an object may be cached (the paper: "CDN customers
// decide whether a response is cacheable"); the cache decides *what stays*
// under capacity pressure.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

namespace jsoncdn::cdn {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;      // capacity evictions
  std::uint64_t expirations = 0;    // TTL evictions observed at lookup
  [[nodiscard]] double hit_ratio() const noexcept {
    const auto total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }
};

class LruCache {
 public:
  // capacity_bytes == 0 disables caching entirely (every lookup misses).
  explicit LruCache(std::uint64_t capacity_bytes);

  // Returns the stored size if `key` is present and fresh at `now`;
  // refreshes recency. Expired entries are erased and counted.
  [[nodiscard]] std::optional<std::uint64_t> lookup(std::string_view key,
                                                    double now);

  // Inserts/overwrites an entry valid until now + ttl. Objects larger than
  // the whole cache are not admitted. Evicts LRU entries as needed.
  void insert(std::string_view key, std::uint64_t bytes, double ttl,
              double now);

  // True if present and fresh, without touching recency or stats.
  [[nodiscard]] bool contains(std::string_view key, double now) const;
  // Size of a present-but-expired entry, if any — the revalidation case: the
  // bytes are still on disk, only freshness lapsed. Does not erase or touch
  // stats; a subsequent insert() refreshes the entry.
  [[nodiscard]] std::optional<std::uint64_t> peek_stale(std::string_view key,
                                                        double now) const;

  // Present-but-expired entry with its expiry time — the stale-if-error
  // case needs to know *how* stale a copy is. Does not erase or touch stats.
  struct StaleEntry {
    std::uint64_t bytes = 0;
    double expires_at = 0.0;
  };
  [[nodiscard]] std::optional<StaleEntry> peek_stale_entry(
      std::string_view key, double now) const;

  // Re-admits an entry with an explicit absolute expiry (possibly already in
  // the past) — used by the stale-if-error path to put back a stale copy
  // that lookup() evicted, so later requests during the same origin outage
  // can still be served stale.
  void restore(std::string_view key, std::uint64_t bytes, double expires_at);
  void erase(std::string_view key);
  void clear();

  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return entries_.size();
  }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::string key;
    std::uint64_t bytes = 0;
    double expires_at = 0.0;
  };
  using LruList = std::list<Entry>;

  void evict_lru();

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_;
  CacheStats stats_;
};

}  // namespace jsoncdn::cdn
