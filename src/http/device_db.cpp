#include "http/device_db.h"

#include "http/headers.h"

namespace jsoncdn::http {

namespace {

bool has(const UserAgent& ua, std::string_view needle) {
  return icontains(ua.raw, needle);
}

// Browser product names with conventional Mozilla-compatible UA shapes.
// Order matters: more specific names first (Edge/OPR before Chrome, Chrome
// before Safari) — the same precedence real browser databases use.
constexpr std::string_view kBrowserMarkers[] = {
    "Edg/",    "Edge/",    "OPR/",    "Opera",  "SamsungBrowser",
    "Firefox", "Chrome",   "CriOS",   "FxiOS",  "Safari",
    "MSIE",    "Trident/",
};

// Product names of generic HTTP stacks. A UA is library traffic only when
// one of these *leads* the product list: "Feedly/61.0 CFNetwork/978" is a
// native app that happens to disclose its HTTP stack, while a bare
// "okhttp/3.12.1" or stock "Dalvik/2.1.0 (...)" carries no app identity.
constexpr std::string_view kLibraryProducts[] = {
    "curl",        "Wget",          "python-requests", "Python-urllib",
    "Go-http-client", "okhttp",     "Apache-HttpClient", "Java",
    "libwww-perl", "aiohttp",       "node-fetch",      "axios",
    "CFNetwork",   "Dalvik",        "urlgrabber",
};

// Embedded: consoles, watches, TVs, streaming sticks, IoT stacks.
constexpr std::string_view kEmbeddedMarkers[] = {
    "PlayStation", "Xbox",        "Nintendo",  "AppleWatch", "Watch OS",
    "watchOS",     "SmartTV",     "SMART-TV",  "Tizen",      "WebOS",
    "web0s",       "Roku",        "AppleTV",   "Apple TV",   "tvOS",
    "BRAVIA",      "AquosTV",     "GoogleTV",  "CrKey",      "Chromecast",
    "FireTV",      "AFTB",        "ESP8266",   "ESP32",      "SmartThings",
    "HomePod",     "Alexa",       "Kindle",
};

}  // namespace

std::string_view to_string(DeviceType d) noexcept {
  switch (d) {
    case DeviceType::kMobile: return "mobile";
    case DeviceType::kDesktop: return "desktop";
    case DeviceType::kEmbedded: return "embedded";
    case DeviceType::kUnknown: return "unknown";
  }
  return "unknown";
}

std::string_view to_string(AgentKind a) noexcept {
  switch (a) {
    case AgentKind::kBrowser: return "browser";
    case AgentKind::kNativeApp: return "native-app";
    case AgentKind::kLibrary: return "library";
    case AgentKind::kUnknown: return "unknown";
  }
  return "unknown";
}

DeviceClassification classify_device(const UserAgent& ua) {
  DeviceClassification out;
  if (ua.empty()) return out;

  // --- Device type -------------------------------------------------------
  // Embedded first: console/TV UAs often also carry desktop-ish tokens
  // ("Mozilla/5.0 (PlayStation 4 ...)"), so embedded markers take precedence.
  for (const auto marker : kEmbeddedMarkers) {
    if (has(ua, marker)) {
      out.device = DeviceType::kEmbedded;
      break;
    }
  }
  if (out.device == DeviceType::kUnknown) {
    if (has(ua, "iPhone") || has(ua, "iPod")) {
      out.device = DeviceType::kMobile;
      out.os = "ios";
    } else if (has(ua, "iPad")) {
      out.device = DeviceType::kMobile;
      out.os = "ios";
    } else if (has(ua, "Android")) {
      out.device = DeviceType::kMobile;
      out.os = "android";
    } else if (has(ua, "Windows Phone")) {
      out.device = DeviceType::kMobile;
      out.os = "windows";
    } else if (has(ua, "Mobile") && has(ua, "Mozilla")) {
      out.device = DeviceType::kMobile;
    } else if (has(ua, "Windows NT") || has(ua, "Win64") ||
               has(ua, "Windows;")) {
      out.device = DeviceType::kDesktop;
      out.os = "windows";
    } else if (has(ua, "Macintosh") || has(ua, "Mac OS X")) {
      out.device = DeviceType::kDesktop;
      out.os = "macos";
    } else if (has(ua, "X11") || has(ua, "Linux x86_64") ||
               has(ua, "CrOS")) {
      out.device = DeviceType::kDesktop;
      out.os = "linux";
    } else if (has(ua, "Darwin") || has(ua, "CFNetwork")) {
      // Apple HTTP stack without device marker: overwhelmingly iOS apps.
      out.device = DeviceType::kMobile;
      out.os = "ios";
    } else if (has(ua, "Dalvik") || has(ua, "okhttp")) {
      out.device = DeviceType::kMobile;
      out.os = "android";
    }
  } else {
    if (has(ua, "Tizen") || has(ua, "SmartTV") || has(ua, "WebOS") ||
        has(ua, "BRAVIA"))
      out.os = "tv";
  }

  // --- Agent kind --------------------------------------------------------
  // Library stacks first: "okhttp/3.12" alone is a library UA even on
  // Android; browsers are identified by the Mozilla-compatible shape plus a
  // known browser product.
  bool is_library = false;
  if (!ua.products.empty()) {
    for (const auto product : kLibraryProducts) {
      if (iequals(ua.products.front().name, product)) {
        is_library = true;
        break;
      }
    }
  }
  bool is_browser = false;
  if (has(ua, "Mozilla/")) {
    for (const auto marker : kBrowserMarkers) {
      if (has(ua, marker)) {
        is_browser = true;
        break;
      }
    }
  }
  if (is_browser && out.device != DeviceType::kEmbedded) {
    // Consoles/TVs embed browser engines in app shells; the paper observes
    // no browser traffic from embedded devices, and an embedded UA carrying
    // Chrome tokens is an engine, not a user browser.
    out.agent = AgentKind::kBrowser;
  } else if (is_library) {
    out.agent = AgentKind::kLibrary;
  } else if (!ua.products.empty() &&
             (!ua.products.front().version.empty() || !ua.comments.empty())) {
    // "AppName/1.2.3 (...)" — the native-app convention. A bare unversioned
    // token with no comment ("prod-fetcher-internal") stays unknown.
    out.agent = AgentKind::kNativeApp;
  }
  return out;
}

DeviceClassification classify_device(std::string_view raw_ua) {
  return classify_device(parse_user_agent(raw_ua));
}

}  // namespace jsoncdn::http
