// Conditional revalidation (If-None-Match / 304): stale cached copies are
// validated with the origin instead of re-transferred.
#include <gtest/gtest.h>

#include "cdn/edge.h"
#include "cdn/origin.h"

namespace jsoncdn::cdn {
namespace {

class RevalidationFixture : public ::testing::Test {
 protected:
  RevalidationFixture() : origin_(catalog_, OriginParams{}), anonymizer_(9) {}

  void SetUp() override {
    workload::ObjectSpec obj;
    obj.url = "https://d/x";
    obj.domain = "d";
    obj.content_type = "application/json";
    obj.cacheable = true;
    obj.ttl_seconds = 60.0;
    obj.body_bytes = 100'000;
    catalog_.add(obj);

    EdgeParams params;
    params.enable_revalidation = true;
    edge_ = std::make_unique<EdgeServer>(0, origin_, anonymizer_, params);
  }

  static workload::RequestEvent request(double t) {
    workload::RequestEvent ev;
    ev.time = t;
    ev.client_address = "10.0.0.1";
    ev.user_agent = "ua";
    ev.url = "https://d/x";
    return ev;
  }

  workload::ObjectCatalog catalog_;
  Origin origin_;
  logs::Anonymizer anonymizer_;
  std::unique_ptr<EdgeServer> edge_;
};

TEST_F(RevalidationFixture, StaleEntryRevalidatesInsteadOfRefetching) {
  const auto first = edge_->handle(request(0.0));
  EXPECT_EQ(first.cache_status, logs::CacheStatus::kMiss);
  const auto bytes_after_miss = origin_.bytes_served();

  // Past TTL: revalidation, not refetch.
  const auto second = edge_->handle(request(61.0));
  EXPECT_EQ(second.cache_status, logs::CacheStatus::kRefreshHit);
  EXPECT_EQ(origin_.bytes_served(), bytes_after_miss);  // 304: no body
  EXPECT_EQ(edge_->metrics().refresh_hits(), 1u);
}

TEST_F(RevalidationFixture, RevalidationRefreshesTtl) {
  (void)edge_->handle(request(0.0));
  (void)edge_->handle(request(61.0));  // refresh
  const auto third = edge_->handle(request(100.0));  // within renewed TTL
  EXPECT_EQ(third.cache_status, logs::CacheStatus::kHit);
}

TEST_F(RevalidationFixture, RefreshIsFasterThanMissSlowerThanHit) {
  (void)edge_->handle(request(0.0));    // miss
  (void)edge_->handle(request(1.0));    // hit
  (void)edge_->handle(request(61.5));   // refresh
  const auto& latencies = edge_->metrics().latencies();
  ASSERT_EQ(latencies.size(), 3u);
  EXPECT_LT(latencies[2], latencies[0]);  // refresh < miss (no transfer)
  EXPECT_GT(latencies[2], latencies[1]);  // refresh > hit (origin RTT)
}

TEST_F(RevalidationFixture, RefreshCountsAsHitInOffload) {
  (void)edge_->handle(request(0.0));
  (void)edge_->handle(request(61.0));
  EXPECT_EQ(edge_->metrics().hits(), 1u);  // the refresh
  EXPECT_EQ(edge_->metrics().misses(), 1u);
}

TEST_F(RevalidationFixture, EvictedEntryCannotRevalidate) {
  (void)edge_->handle(request(0.0));
  // Force eviction by filling a tiny cache... use a dedicated edge instead.
  EdgeParams params;
  params.enable_revalidation = true;
  params.cache_capacity_bytes = 10;  // object never admitted
  EdgeServer tiny(1, origin_, anonymizer_, params);
  (void)tiny.handle(request(0.0));
  const auto again = tiny.handle(request(61.0));
  EXPECT_EQ(again.cache_status, logs::CacheStatus::kMiss);
}

TEST_F(RevalidationFixture, DisabledFlagFallsBackToFullMiss) {
  EdgeParams params;  // enable_revalidation defaults to false
  EdgeServer plain(2, origin_, anonymizer_, params);
  (void)plain.handle(request(0.0));
  const auto second = plain.handle(request(61.0));
  EXPECT_EQ(second.cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(plain.metrics().refresh_hits(), 0u);
}

TEST(CacheStalePeek, ReportsOnlyExpiredEntries) {
  LruCache cache(1024);
  cache.insert("k", 100, 10.0, 0.0);
  EXPECT_FALSE(cache.peek_stale("k", 5.0).has_value());   // still fresh
  ASSERT_TRUE(cache.peek_stale("k", 10.0).has_value());   // expired
  EXPECT_EQ(*cache.peek_stale("k", 10.0), 100u);
  EXPECT_FALSE(cache.peek_stale("missing", 10.0).has_value());
  // Peek does not erase: a later insert refreshes in place.
  cache.insert("k", 100, 10.0, 20.0);
  EXPECT_TRUE(cache.contains("k", 25.0));
}

TEST(RefreshStatus, SerializesInLogSchema) {
  logs::CacheStatus out;
  ASSERT_TRUE(logs::parse_cache_status("REFRESH", out));
  EXPECT_EQ(out, logs::CacheStatus::kRefreshHit);
  EXPECT_EQ(logs::to_string(logs::CacheStatus::kRefreshHit), "REFRESH");
}

}  // namespace
}  // namespace jsoncdn::cdn
