# Empty compiler generated dependencies file for jsoncdn_stats.
# This may be replaced when dependencies are built.
