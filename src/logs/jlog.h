// `.jlog` v1 — compact binary sidecar of a LogTable for fast reloads in
// bench/validate sweeps: parse a CSV log once, write the columnar image,
// and every later run deserializes dictionaries + columns with no
// tokenizing, unescaping, or hashing.
//
// Layout (all integers little-endian, no padding):
//   magic          8 bytes  "jlogcdn1"
//   row_count      u64
//   6 dictionaries, in order url, client_id, user_agent, domain,
//   content_type, client_key:
//     count        u32
//     lengths      u32 × count
//     bytes        concatenation of the strings (sum of lengths)
//   7 value columns, row_count entries each:
//     timestamp f64 · method u8 · status i32 · response_bytes u64 ·
//     request_bytes u64 · cache_status u8 · edge_id u32
//   6 symbol columns, row_count × u32 each, same dictionary order
//
// The reader is fully bounds-checked: a truncated file, bad magic, or any
// out-of-range symbol/enum value throws std::runtime_error before any row
// becomes visible — binary corruption is structural, so unlike CSV there is
// no per-line permissive skip. On success the IngestReport is filled as if
// a clean CSV of the same rows had been ingested (header_seen, records ==
// row count), so tools report ingest state uniformly across both formats.
#pragma once

#include <string>

#include "logs/csv.h"
#include "logs/table.h"

namespace jsoncdn::logs {

// Magic tag opening every .jlog file.
[[nodiscard]] std::string_view jlog_magic() noexcept;

// Writes the table's dictionaries and columns to `path`. Throws
// std::runtime_error when the file cannot be created or written.
void write_jlog(const std::string& path, const LogTable& table);

// Reads a .jlog file back into a LogTable. Throws std::runtime_error on
// open failure, bad magic, truncation, or corrupt symbol/enum values;
// fills *report (records, lines, header_seen) on success.
[[nodiscard]] LogTable read_jlog(const std::string& path,
                                 IngestReport* report = nullptr);

// True when `path` names a .jlog file (by magic, not extension) — lets
// tools accept either format through one flag.
[[nodiscard]] bool is_jlog_file(const std::string& path);

}  // namespace jsoncdn::logs
