#include "faults/retry.h"

#include "stats/hash.h"
#include "stats/rng.h"

namespace jsoncdn::faults {

double backoff_delay(const RetryConfig& config, std::string_view key,
                     std::size_t attempt) {
  double delay = config.base_delay_seconds;
  for (std::size_t a = 0; a < attempt; ++a) delay *= config.multiplier;
  if (config.jitter > 0.0) {
    const std::uint64_t bits = stats::splitmix64(
        config.seed ^ stats::splitmix64(stats::fnv1a64(key) ^
                                        stats::splitmix64(attempt)));
    const double u = static_cast<double>(bits >> 11) * 0x1.0p-53;
    delay *= 1.0 + config.jitter * u;
  }
  return delay;
}

}  // namespace jsoncdn::faults
