// Sketch correctness: every bound the stream layer's file comments promise
// is exercised here on seeded streams — error within the configured
// epsilon/delta/alpha, and merge determinism (sharded merge equals the
// single-pass sketch bit for bit where the contract says it must).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "stats/descriptive.h"
#include "stats/rng.h"
#include "stream/countmin.h"
#include "stream/hyperloglog.h"
#include "stream/quantile.h"
#include "stream/spacesaving.h"
#include "stream/triage.h"

namespace jsoncdn::stream {
namespace {

// ---- Count-Min ------------------------------------------------------------

TEST(CountMin, NeverUnderestimatesAndRespectsEpsilonBound) {
  CountMinSketch cms(/*epsilon=*/1e-3, /*delta=*/1e-3, /*seed=*/7);
  // Zipf-ish truth: key i appears 2000 / (i + 1) times.
  std::vector<std::uint64_t> truth(500);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    truth[i] = 2000 / (i + 1);
    cms.add("key-" + std::to_string(i), truth[i]);
  }
  const double bound = cms.error_bound();
  EXPECT_GT(cms.total_weight(), 0u);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const auto est = cms.estimate("key-" + std::to_string(i));
    EXPECT_GE(est, truth[i]);
    EXPECT_LE(static_cast<double>(est), static_cast<double>(truth[i]) + bound);
  }
  // A key never added can only report collision mass, within the same bound.
  EXPECT_LE(static_cast<double>(cms.estimate("never-added")), bound);
}

TEST(CountMin, ShardedMergeIsBitIdenticalToSinglePass) {
  const auto make = [] { return CountMinSketch(5e-3, 1e-2, /*seed=*/42); };
  CountMinSketch single = make();
  CountMinSketch shard_a = make();
  CountMinSketch shard_b = make();
  CountMinSketch shard_c = make();
  stats::Rng rng(123);
  for (std::size_t i = 0; i < 3000; ++i) {
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 400));
    single.add(key);
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).add(key);
  }
  shard_a.merge(shard_b);
  shard_a.merge(shard_c);
  EXPECT_EQ(shard_a.total_weight(), single.total_weight());
  for (std::uint64_t key = 0; key <= 450; ++key)
    EXPECT_EQ(shard_a.estimate(key), single.estimate(key)) << key;
}

TEST(CountMin, MergeRejectsMismatchedShapes) {
  CountMinSketch a(1e-3, 1e-3, 1);
  CountMinSketch wider(1e-4, 1e-3, 1);
  CountMinSketch reseeded(1e-3, 1e-3, 2);
  EXPECT_THROW(a.merge(wider), std::invalid_argument);
  EXPECT_THROW(a.merge(reseeded), std::invalid_argument);
}

// ---- HyperLogLog ----------------------------------------------------------

TEST(HyperLogLog, EstimatesWithinThreeSigmaAcrossRange) {
  for (const std::size_t cardinality : {100u, 5000u, 200000u}) {
    HyperLogLog hll(/*precision=*/12);
    for (std::size_t i = 0; i < cardinality; ++i)
      hll.add(stats::splitmix64(i));
    const double est = hll.estimate();
    const double tolerance =
        3.0 * hll.standard_error() * static_cast<double>(cardinality);
    EXPECT_NEAR(est, static_cast<double>(cardinality), tolerance)
        << "cardinality " << cardinality;
  }
}

TEST(HyperLogLog, MergeIsBitIdenticalAndIdempotent) {
  HyperLogLog single(10);
  HyperLogLog shard_a(10);
  HyperLogLog shard_b(10);
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const auto h = stats::splitmix64(i);
    single.add(h);
    (i % 2 == 0 ? shard_a : shard_b).add(h);
    // Overlap: both shards see every 5th element, as duplicated records
    // across shards would.
    if (i % 5 == 0) {
      shard_a.add(h);
      shard_b.add(h);
    }
  }
  shard_a.merge(shard_b);
  EXPECT_DOUBLE_EQ(shard_a.estimate(), single.estimate());
  // Merging the same state again must change nothing (register-wise max).
  const double before = shard_a.estimate();
  shard_a.merge(shard_b);
  EXPECT_DOUBLE_EQ(shard_a.estimate(), before);
}

TEST(HyperLogLog, MergeRejectsMismatchedPrecision) {
  HyperLogLog a(10);
  HyperLogLog b(12);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---- Quantile sketch ------------------------------------------------------

// Exact quantile under the sketch's own rank convention.
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(values.size() - 1)));
  return values[std::min(rank, values.size() - 1)];
}

TEST(QuantileSketch, RelativeErrorWithinAlpha) {
  const double alpha = 0.01;
  QuantileSketch sketch(alpha);
  stats::Rng rng(99);
  std::vector<double> values;
  values.reserve(50000);
  for (std::size_t i = 0; i < 50000; ++i) {
    // Log-normal, like response body sizes.
    const double v = std::exp(rng.normal(8.0, 1.5));
    values.push_back(v);
    sketch.add(v);
  }
  for (const double q : {0.01, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double est = sketch.quantile(q);
    EXPECT_NEAR(est, exact, alpha * exact * 1.05) << "q=" << q;
  }
}

TEST(QuantileSketch, ShardedMergeIsBitIdenticalToSinglePass) {
  QuantileSketch single(0.02);
  QuantileSketch shard_a(0.02);
  QuantileSketch shard_b(0.02);
  stats::Rng rng(7);
  for (std::size_t i = 0; i < 10000; ++i) {
    const double v = rng.uniform(0.0, 1e6);
    single.add(v);
    (i % 2 == 0 ? shard_a : shard_b).add(v);
  }
  shard_a.merge(shard_b);
  EXPECT_EQ(shard_a.count(), single.count());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0})
    EXPECT_EQ(shard_a.quantile(q), single.quantile(q)) << "q=" << q;
}

TEST(QuantileSketch, ZeroValuesLandInZeroBucket) {
  QuantileSketch sketch(0.01);
  sketch.add(0.0, 60);
  sketch.add(1000.0, 40);
  EXPECT_EQ(sketch.quantile(0.25), 0.0);
  EXPECT_NEAR(sketch.quantile(0.99), 1000.0, 1000.0 * 0.011);
}

TEST(QuantileSketch, MergeRejectsMismatchedAlpha) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

// ---- Space-Saving ---------------------------------------------------------

TEST(SpaceSaving, TracksEveryKeyAboveTheGuaranteeThreshold) {
  SpaceSaving ss(/*capacity=*/10);
  // Heavy key: 500 of 1000 total; N / capacity = 100, so it must be tracked
  // with estimate in [500, 500 + error].
  stats::Rng rng(5);
  std::vector<std::string> tail;
  for (int i = 0; i < 50; ++i) tail.push_back("tail-" + std::to_string(i));
  std::size_t heavy_left = 500, tail_left = 500;
  while (heavy_left + tail_left > 0) {
    const bool pick_heavy =
        heavy_left > 0 &&
        (tail_left == 0 || rng.uniform() < 0.5);
    if (pick_heavy) {
      ss.offer("heavy");
      --heavy_left;
    } else {
      ss.offer(tail[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(tail.size()) - 1))]);
      --tail_left;
    }
  }
  ASSERT_TRUE(ss.contains("heavy"));
  const auto top = ss.top(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].key, "heavy");
  EXPECT_GE(top[0].count, 500u);
  EXPECT_LE(top[0].count - top[0].error, 500u);
  EXPECT_LE(static_cast<double>(top[0].error), ss.error_bound());
}

TEST(SpaceSaving, OfferReportsEvictionsSoCallersCanDropState) {
  SpaceSaving ss(2);
  EXPECT_FALSE(ss.offer("a").has_value());
  EXPECT_FALSE(ss.offer("b").has_value());
  EXPECT_FALSE(ss.offer("a").has_value());  // existing key, no eviction
  const auto evicted = ss.offer("c");
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(*evicted, "b");  // the minimum counter
  EXPECT_TRUE(ss.contains("c"));
  EXPECT_FALSE(ss.contains("b"));
}

TEST(SpaceSaving, MergePreservesCountBounds) {
  SpaceSaving a(8);
  SpaceSaving b(8);
  // Disjoint streams with one shared heavy key.
  for (int i = 0; i < 300; ++i) a.offer("shared");
  for (int i = 0; i < 200; ++i) b.offer("shared");
  for (int i = 0; i < 400; ++i) a.offer("only-a-" + std::to_string(i % 20));
  for (int i = 0; i < 400; ++i) b.offer("only-b-" + std::to_string(i % 20));
  a.merge(b);
  EXPECT_EQ(a.total_weight(), 1300u);
  ASSERT_TRUE(a.contains("shared"));
  const auto est = a.estimate("shared");
  EXPECT_GE(est, 500u);
  const auto top = a.top(1);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, "shared");
  EXPECT_LE(top[0].count - top[0].error, 500u);
}

// ---- RunningMoments -------------------------------------------------------

TEST(RunningMoments, MatchesDirectComputation) {
  stats::RunningMoments m;
  stats::Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.normal(10.0, 3.0);
    values.push_back(v);
    m.add(v);
  }
  double sum = 0.0;
  for (const double v : values) sum += v;
  const double mean = sum / static_cast<double>(values.size());
  double m2 = 0.0;
  for (const double v : values) m2 += (v - mean) * (v - mean);
  const double variance = m2 / static_cast<double>(values.size());
  EXPECT_EQ(m.count(), values.size());
  EXPECT_NEAR(m.mean(), mean, 1e-9 * std::abs(mean));
  EXPECT_NEAR(m.variance(), variance, 1e-9 * variance);
}

TEST(RunningMoments, MergeMatchesSequentialIngest) {
  stats::RunningMoments whole, first_half, second_half;
  stats::Rng rng(12);
  for (int i = 0; i < 4000; ++i) {
    const double v = rng.exponential(0.25);
    whole.add(v);
    (i < 2000 ? first_half : second_half).add(v);
  }
  first_half.merge(second_half);
  EXPECT_EQ(first_half.count(), whole.count());
  EXPECT_NEAR(first_half.mean(), whole.mean(), 1e-9 * whole.mean());
  EXPECT_NEAR(first_half.variance(), whole.variance(),
              1e-9 * whole.variance());
  EXPECT_NEAR(first_half.coefficient_of_variation(),
              whole.coefficient_of_variation(), 1e-9);
}

// ---- Inter-arrival triage -------------------------------------------------

TEST(InterarrivalTriage, PassesPeriodicFlowsAndScreensOutIneligibleOnes) {
  TriageConfig config;
  config.max_flows = 64;
  InterarrivalTriage triage(config);
  // "periodic": 15 clients polling every 30 s with per-client phase offsets.
  // "small": only 3 clients (fails the >= 10 clients filter).
  // "burst": plenty of clients but every request in the same instant
  // (fails the minimum-span screen).
  for (int tick = 0; tick < 20; ++tick) {
    for (std::uint64_t c = 0; c < 15; ++c) {
      triage.offer("periodic", c,
                   30.0 * tick + 2.0 * static_cast<double>(c));
    }
  }
  for (int tick = 0; tick < 20; ++tick)
    for (std::uint64_t c = 0; c < 3; ++c)
      triage.offer("small", c, 30.0 * tick + static_cast<double>(c));
  for (std::uint64_t c = 0; c < 20; ++c) triage.offer("burst", c, 100.0);

  const auto candidates = triage.candidates();
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].key, "periodic");
  EXPECT_EQ(candidates[0].requests, 300u);
  EXPECT_GE(candidates[0].estimated_clients, 10.0);
  EXPECT_LE(candidates[0].gap_cv, config.max_gap_cv);
}

TEST(InterarrivalTriage, ChunkMergeMatchesSerialIngest) {
  TriageConfig config;
  config.max_flows = 32;
  InterarrivalTriage serial(config);
  InterarrivalTriage first(config);
  InterarrivalTriage second(config);
  // Two flows; the split point lands mid-flow so merge() must stitch the
  // boundary inter-arrival gap.
  std::vector<std::tuple<std::string, std::uint64_t, double>> events;
  for (int tick = 0; tick < 40; ++tick) {
    for (std::uint64_t c = 0; c < 12; ++c) {
      events.emplace_back("flow-a", c, 15.0 * tick + static_cast<double>(c));
      events.emplace_back("flow-b", c,
                          15.0 * tick + 0.5 * static_cast<double>(c));
    }
  }
  std::sort(events.begin(), events.end(), [](const auto& x, const auto& y) {
    return std::get<2>(x) < std::get<2>(y);
  });
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& [key, client, ts] = events[i];
    serial.offer(key, client, ts);
    (i < events.size() / 2 ? first : second).offer(key, client, ts);
  }
  first.merge(second);
  const auto expect = serial.candidates();
  const auto got = first.candidates();
  ASSERT_EQ(got.size(), expect.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, expect[i].key);
    EXPECT_EQ(got[i].requests, expect[i].requests);
    EXPECT_DOUBLE_EQ(got[i].span_seconds, expect[i].span_seconds);
    // Welford merge reassociates the floating-point sums; the gap sample
    // *set* is identical, so the moments agree to rounding error.
    EXPECT_NEAR(got[i].mean_gap, expect[i].mean_gap, 1e-9);
    EXPECT_NEAR(got[i].gap_cv, expect[i].gap_cv, 1e-9);
    EXPECT_DOUBLE_EQ(got[i].estimated_clients, expect[i].estimated_clients);
  }
}

TEST(InterarrivalTriage, FlowTableStaysBounded) {
  TriageConfig config;
  config.max_flows = 16;
  InterarrivalTriage triage(config);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    triage.offer("flow-" + std::to_string(i % 200), i % 37,
                 static_cast<double>(i));
  }
  EXPECT_LE(triage.tracked_flows(), config.max_flows);
}

}  // namespace
}  // namespace jsoncdn::stream
