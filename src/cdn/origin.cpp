#include "cdn/origin.h"

#include <stdexcept>

namespace jsoncdn::cdn {

Origin::Origin(const workload::ObjectCatalog& catalog,
               const OriginParams& params)
    : catalog_(catalog), params_(params) {
  if (params.bandwidth_bytes_per_s <= 0.0)
    throw std::invalid_argument("Origin: bandwidth <= 0");
  if (params.rtt_seconds < 0.0 || params.processing_seconds < 0.0)
    throw std::invalid_argument("Origin: negative latency");
}

OriginResult Origin::fetch(std::string_view url) const {
  ++fetches_;
  OriginResult out;
  out.object = catalog_.find(url);
  out.latency_seconds = params_.rtt_seconds + params_.processing_seconds;
  if (out.object != nullptr) {
    out.bytes = out.object->body_bytes;
    out.latency_seconds +=
        static_cast<double>(out.bytes) / params_.bandwidth_bytes_per_s;
    bytes_ += out.bytes;
  }
  return out;
}

OriginResult Origin::revalidate(std::string_view url) const {
  ++fetches_;
  OriginResult out;
  out.object = catalog_.find(url);
  out.latency_seconds = params_.rtt_seconds + params_.processing_seconds;
  // 304: headers only, no body bytes served.
  return out;
}

}  // namespace jsoncdn::cdn
