#include "core/report.h"

#include <gtest/gtest.h>

namespace jsoncdn::core {
namespace {

TEST(RenderGrowth, EmptySeriesRendersHeaderOnly) {
  const auto out = render_growth({});
  EXPECT_NE(out.find("Figure 1"), std::string::npos);
}

TEST(RenderGrowth, RowsPerQuarter) {
  std::vector<workload::QuarterStats> series(2);
  series[0].label = "2016Q1";
  series[0].json_html_ratio = 1.0;
  series[0].mean_json_bytes = 1000.0;
  series[1].label = "2016Q2";
  series[1].json_html_ratio = 2.0;
  series[1].mean_json_bytes = 900.0;
  const auto out = render_growth(series);
  EXPECT_NE(out.find("2016Q1"), std::string::npos);
  EXPECT_NE(out.find("2016Q2"), std::string::npos);
  EXPECT_NE(out.find("-10.0%"), std::string::npos);  // size change
}

TEST(RenderPeriodHistogram, BucketsSpikesWithTolerance) {
  // 31 s lands in the 30 s bucket; 100 s is no spike -> "other".
  const auto out = render_period_histogram({31.0, 60.0, 100.0});
  EXPECT_NE(out.find("30s"), std::string::npos);
  EXPECT_NE(out.find("other"), std::string::npos);
  EXPECT_NE(out.find("3 periodic objects"), std::string::npos);
}

TEST(RenderPeriodHistogram, MinuteLabels) {
  const auto out = render_period_histogram({});
  EXPECT_NE(out.find("1m"), std::string::npos);
  EXPECT_NE(out.find("30m"), std::string::npos);
  EXPECT_NE(out.find("45s"), std::string::npos);
}

TEST(RenderPeriodicClientCdf, EmptyInputHandled) {
  const auto out = render_periodic_client_cdf({});
  EXPECT_NE(out.find("no periodic objects"), std::string::npos);
}

TEST(RenderPeriodicClientCdf, MajorityShareLine) {
  const auto out = render_periodic_client_cdf({0.1, 0.2, 0.8, 0.9});
  EXPECT_NE(out.find("majority"), std::string::npos);
  EXPECT_NE(out.find("50.0%"), std::string::npos);  // 2 of 4 above 0.5
}

TEST(RenderPeriodicitySummary, ContainsHeadlineNumbers) {
  PeriodicityReport report;
  report.total_requests = 1000;
  report.periodic_requests = 63;
  report.periodic_request_share = 0.063;
  report.periodic_uncacheable_share = 0.562;
  report.periodic_upload_share = 0.78;
  const auto out = render_periodicity_summary(report);
  EXPECT_NE(out.find("6.3%"), std::string::npos);
  EXPECT_NE(out.find("56.2%"), std::string::npos);
  EXPECT_NE(out.find("78.0%"), std::string::npos);
}

TEST(RenderNgramTable, FormatsRows) {
  NgramAccuracy row;
  row.context_len = 1;
  row.clustered = true;
  row.predictions = 1234;
  row.accuracy_at = {{1, 0.65}, {5, 0.84}, {10, 0.87}};
  const auto out = render_ngram_table({row});
  EXPECT_NE(out.find("clustered"), std::string::npos);
  EXPECT_NE(out.find("0.650"), std::string::npos);
  EXPECT_NE(out.find("0.870"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
}

TEST(RenderHeatmap, ShadesCells) {
  CacheabilityHeatmap heatmap;
  heatmap.categories = {"Gaming"};
  heatmap.bins = 10;
  heatmap.density = {{1.0, 0, 0, 0, 0, 0, 0, 0, 0, 0}};
  heatmap.never_cache_domain_share = 1.0;
  const auto out = render_heatmap(heatmap);
  EXPECT_NE(out.find("Gaming"), std::string::npos);
  EXPECT_NE(out.find("@"), std::string::npos);  // full-density shade
  EXPECT_NE(out.find("100.0%"), std::string::npos);
}

}  // namespace
}  // namespace jsoncdn::core
