// URL clustering for the "Clustered URLs" column of Table 3, in the style of
// Klotski's URL argument clustering: client-specific tokens (numeric IDs,
// hashes, UUIDs, long mixed strings) in path segments and query values are
// collapsed to a placeholder, so all instances of "/article/1234" and
// "/article/8731" share the cluster "/article/{id}". Clustered URLs reveal
// the application-level dependency structure that raw URLs fragment across
// ids.
#pragma once

#include <string>
#include <string_view>

namespace jsoncdn::core {

// True when a path segment / query value looks like a client- or
// entity-specific identifier rather than a route word.
[[nodiscard]] bool looks_like_identifier(std::string_view token);

// Canonical cluster key of a URL. Unparseable URLs cluster to themselves.
[[nodiscard]] std::string cluster_url(std::string_view url);

}  // namespace jsoncdn::core
