// End-to-end integration: scenario -> workload -> CDN -> logs -> analyses.
// These tests assert the *paper-shaped* properties of the full pipeline at
// small scale, with tolerances wide enough for sampling noise.
#include "core/study.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "logs/csv.h"
#include "workload/scenario.h"
#include "workload/traffic_mix.h"

namespace jsoncdn::core {
namespace {

const StudyResult& small_short_term_study() {
  static const StudyResult result = [] {
    StudyConfig config;
    config.workload = workload::short_term_scenario(0.008, 2024);
    config.ngram_configs = {{1, {1, 5, 10}, 0.8, false, 2, 17},
                            {1, {1, 5, 10}, 0.8, true, 2, 17}};
    return run_study(config);
  }();
  return result;
}

TEST(Study, ProducesAllCharacterizationOutputs) {
  const auto& r = small_short_term_study();
  EXPECT_GT(r.dataset.size(), 10000u);
  EXPECT_GT(r.json.size(), 1000u);
  ASSERT_TRUE(r.source.has_value());
  ASSERT_TRUE(r.methods.has_value());
  ASSERT_TRUE(r.cacheability.has_value());
  ASSERT_TRUE(r.sizes.has_value());
  ASSERT_TRUE(r.heatmap.has_value());
  EXPECT_FALSE(r.domains.empty());
  EXPECT_FALSE(r.periodicity.has_value());  // not requested
}

TEST(Study, Figure3DeviceMixInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: mobile >= 55%, embedded ~12%, unknown ~24%.
  EXPECT_GT(source.device_share(http::DeviceType::kMobile), 0.52);
  EXPECT_NEAR(source.device_share(http::DeviceType::kEmbedded), 0.12, 0.05);
  EXPECT_NEAR(source.device_share(http::DeviceType::kUnknown), 0.24, 0.07);
}

TEST(Study, BrowserSharesInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: 88% non-browser; mobile browsers 2.5% of JSON traffic.
  EXPECT_GT(source.non_browser_share(), 0.80);
  EXPECT_NEAR(source.mobile_browser_share(), 0.025, 0.03);
}

TEST(Study, UaStringDistributionInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: 73% mobile / 17% embedded / 3% desktop / 7% unknown UA strings.
  EXPECT_NEAR(source.ua_string_share(http::DeviceType::kMobile), 0.73, 0.08);
  EXPECT_NEAR(source.ua_string_share(http::DeviceType::kEmbedded), 0.17,
              0.06);
  EXPECT_LT(source.ua_string_share(http::DeviceType::kDesktop), 0.10);
}

TEST(Study, MethodMixInPaperBands) {
  const auto& methods = *small_short_term_study().methods;
  // Paper: 84% GET; 96% of the rest POST.
  EXPECT_NEAR(methods.get_share(), 0.84, 0.05);
  EXPECT_GT(methods.post_share_of_non_get(), 0.85);
}

TEST(Study, CacheabilityInPaperBands) {
  const auto& cache = *small_short_term_study().cacheability;
  // Paper: ~55% of JSON traffic uncacheable.
  EXPECT_NEAR(cache.uncacheable_share(), 0.55, 0.12);
}

TEST(Study, SizeComparisonInPaperBands) {
  const auto& sizes = *small_short_term_study().sizes;
  // Paper: JSON ~24% smaller at p50, ~87% smaller at p75.
  // Wide band: the scaled-down catalog has few HTML objects, so the
  // request-weighted HTML median is seed-noisy (converges at larger scale).
  EXPECT_NEAR(sizes.p50_ratio(), 0.76, 0.22);
  EXPECT_NEAR(sizes.p75_ratio(), 0.13, 0.08);
  EXPECT_LT(sizes.json.mean, sizes.html.mean);
}

TEST(Study, HeatmapDomainSharesInPaperBands) {
  const auto& heatmap = *small_short_term_study().heatmap;
  // Paper: ~50% of domains never cache, ~30% always cache.
  EXPECT_NEAR(heatmap.never_cache_domain_share, 0.50, 0.12);
  EXPECT_NEAR(heatmap.always_cache_domain_share, 0.30, 0.12);
}

TEST(Study, NgramAccuracyMatchesTable3Shape) {
  const auto& rows = small_short_term_study().ngram;
  ASSERT_EQ(rows.size(), 2u);
  const auto& actual = rows[0];
  const auto& clustered = rows[1];
  ASSERT_FALSE(actual.clustered);
  ASSERT_TRUE(clustered.clustered);
  // Table 3 shape: clustered beats actual at every K; accuracy grows in K.
  for (const auto k : {1u, 5u, 10u}) {
    EXPECT_GT(clustered.accuracy_at.at(k), actual.accuracy_at.at(k)) << k;
  }
  EXPECT_LT(actual.accuracy_at.at(1), actual.accuracy_at.at(10));
  // Rough bands around the paper's numbers.
  EXPECT_NEAR(actual.accuracy_at.at(1), 0.45, 0.12);
  EXPECT_NEAR(clustered.accuracy_at.at(1), 0.65, 0.12);
  EXPECT_NEAR(clustered.accuracy_at.at(10), 0.87, 0.10);
}

TEST(Study, DeliveryMetricsConsistent) {
  const auto& r = small_short_term_study();
  EXPECT_EQ(r.delivery.requests(), r.dataset.size());
  EXPECT_GT(r.delivery.bytes_served(), 0u);
  EXPECT_GT(r.delivery.cacheable_hit_ratio(), 0.0);
  EXPECT_LT(r.delivery.cacheable_hit_ratio(), 1.0);
}

TEST(Study, DatasetSurvivesCsvRoundTrip) {
  const auto& r = small_short_term_study();
  std::stringstream stream;
  logs::LogWriter writer(stream);
  for (std::size_t i = 0; i < 500; ++i) writer.write(r.dataset[i]);
  logs::LogReader reader(stream);
  const auto back = reader.read_all();
  ASSERT_EQ(back.size(), 500u);
  EXPECT_EQ(reader.malformed_lines(), 0u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].url, r.dataset[i].url);
    EXPECT_EQ(back[i].client_id, r.dataset[i].client_id);
    EXPECT_EQ(back[i].cache_status, r.dataset[i].cache_status);
  }
}

TEST(Study, ReportRenderersProduceOutput) {
  const auto& r = small_short_term_study();
  EXPECT_NE(render_source(*r.source).find("mobile"), std::string::npos);
  EXPECT_NE(render_headline(*r.methods, *r.cacheability, *r.sizes)
                .find("GET share"),
            std::string::npos);
  EXPECT_NE(render_heatmap(*r.heatmap).find("Figure 4"), std::string::npos);
  EXPECT_NE(render_ngram_table(r.ngram).find("Table 3"), std::string::npos);
}

TEST(Study, GroundTruthNeverLeaksIntoLogs) {
  // The dataset must contain anonymized ids, never raw 10.x addresses.
  const auto& r = small_short_term_study();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(r.dataset[i].client_id.find("10."), std::string::npos);
    EXPECT_EQ(r.dataset[i].client_id.size(), 16u);
  }
}

// The threading determinism contract (DESIGN.md): every analysis output is
// bit-identical for any thread count. Exact (EXPECT_EQ) comparisons on
// doubles are deliberate — "close" would hide order-dependent reductions.
TEST(Study, ResultsBitIdenticalAcrossThreadCounts) {
  StudyConfig config;
  config.workload = workload::short_term_scenario(0.002, 7);
  config.run_periodicity = true;
  config.periodicity.detector.permutations = 25;  // keep the test fast
  config.ngram_configs = {{1, {1, 5}, 0.8, false, 2, 17},
                          {2, {1, 5}, 0.8, true, 2, 17}};

  config.threads = 1;
  const StudyResult serial = run_study(config);
  config.threads = 4;
  const StudyResult parallel = run_study(config);

  // Characterization counters.
  ASSERT_TRUE(serial.source && parallel.source);
  EXPECT_EQ(serial.source->requests_by_device,
            parallel.source->requests_by_device);
  EXPECT_EQ(serial.source->ua_strings_by_device,
            parallel.source->ua_strings_by_device);
  EXPECT_EQ(serial.source->total_requests, parallel.source->total_requests);
  EXPECT_EQ(serial.source->total_ua_strings,
            parallel.source->total_ua_strings);
  EXPECT_EQ(serial.source->browser_requests,
            parallel.source->browser_requests);
  EXPECT_EQ(serial.source->mobile_browser_requests,
            parallel.source->mobile_browser_requests);
  EXPECT_EQ(serial.source->missing_ua_requests,
            parallel.source->missing_ua_requests);

  ASSERT_TRUE(serial.methods && parallel.methods);
  EXPECT_EQ(serial.methods->get, parallel.methods->get);
  EXPECT_EQ(serial.methods->post, parallel.methods->post);
  EXPECT_EQ(serial.methods->other, parallel.methods->other);
  EXPECT_EQ(serial.methods->total, parallel.methods->total);

  ASSERT_TRUE(serial.cacheability && parallel.cacheability);
  EXPECT_EQ(serial.cacheability->cacheable, parallel.cacheability->cacheable);
  EXPECT_EQ(serial.cacheability->uncacheable,
            parallel.cacheability->uncacheable);
  EXPECT_EQ(serial.cacheability->hits, parallel.cacheability->hits);

  // Size summaries: percentiles come from per-shard vectors concatenated in
  // chunk order, so even the floating-point stats must match exactly.
  ASSERT_TRUE(serial.sizes && parallel.sizes);
  const auto expect_summary_eq = [](const stats::Summary& a,
                                    const stats::Summary& b) {
    EXPECT_EQ(a.count, b.count);
    EXPECT_EQ(a.mean, b.mean);
    EXPECT_EQ(a.stddev, b.stddev);
    EXPECT_EQ(a.min, b.min);
    EXPECT_EQ(a.max, b.max);
    EXPECT_EQ(a.p25, b.p25);
    EXPECT_EQ(a.p50, b.p50);
    EXPECT_EQ(a.p75, b.p75);
    EXPECT_EQ(a.p90, b.p90);
    EXPECT_EQ(a.p99, b.p99);
  };
  expect_summary_eq(serial.sizes->json, parallel.sizes->json);
  expect_summary_eq(serial.sizes->html, parallel.sizes->html);

  // Domain cacheability rows and the derived heatmap.
  ASSERT_EQ(serial.domains.size(), parallel.domains.size());
  for (std::size_t i = 0; i < serial.domains.size(); ++i) {
    EXPECT_EQ(serial.domains[i].domain, parallel.domains[i].domain);
    EXPECT_EQ(serial.domains[i].category, parallel.domains[i].category);
    EXPECT_EQ(serial.domains[i].requests, parallel.domains[i].requests);
    EXPECT_EQ(serial.domains[i].cacheable_share,
              parallel.domains[i].cacheable_share);
  }
  ASSERT_TRUE(serial.heatmap && parallel.heatmap);
  EXPECT_EQ(serial.heatmap->categories, parallel.heatmap->categories);
  EXPECT_EQ(serial.heatmap->density, parallel.heatmap->density);

  // Periodicity: per-flow RNG forking keyed on url/client hashes makes the
  // permutation tests independent of scheduling.
  ASSERT_TRUE(serial.periodicity && parallel.periodicity);
  const auto& sp = *serial.periodicity;
  const auto& pp = *parallel.periodicity;
  EXPECT_EQ(sp.total_requests, pp.total_requests);
  EXPECT_EQ(sp.periodic_requests, pp.periodic_requests);
  EXPECT_EQ(sp.periodic_request_share, pp.periodic_request_share);
  EXPECT_EQ(sp.periodic_uncacheable_share, pp.periodic_uncacheable_share);
  EXPECT_EQ(sp.periodic_upload_share, pp.periodic_upload_share);
  EXPECT_EQ(sp.object_periods, pp.object_periods);
  EXPECT_EQ(sp.periodic_client_shares, pp.periodic_client_shares);
  ASSERT_EQ(sp.objects.size(), pp.objects.size());
  for (std::size_t i = 0; i < sp.objects.size(); ++i) {
    const auto& a = sp.objects[i];
    const auto& b = pp.objects[i];
    EXPECT_EQ(a.url, b.url);
    EXPECT_EQ(a.object_periodic, b.object_periodic);
    EXPECT_EQ(a.object_period_seconds, b.object_period_seconds);
    EXPECT_EQ(a.total_requests, b.total_requests);
    EXPECT_EQ(a.periodic_client_count, b.periodic_client_count);
    EXPECT_EQ(a.periodic_requests, b.periodic_requests);
    ASSERT_EQ(a.clients.size(), b.clients.size()) << a.url;
    for (std::size_t c = 0; c < a.clients.size(); ++c) {
      EXPECT_EQ(a.clients[c].client, b.clients[c].client);
      EXPECT_EQ(a.clients[c].periodic, b.clients[c].periodic);
      EXPECT_EQ(a.clients[c].period_seconds, b.clients[c].period_seconds);
      EXPECT_EQ(a.clients[c].matches_object, b.clients[c].matches_object);
    }
  }

  // Ngram: sharded count-then-merge training and chunked scoring.
  ASSERT_EQ(serial.ngram.size(), parallel.ngram.size());
  for (std::size_t i = 0; i < serial.ngram.size(); ++i) {
    EXPECT_EQ(serial.ngram[i].train_clients, parallel.ngram[i].train_clients);
    EXPECT_EQ(serial.ngram[i].test_clients, parallel.ngram[i].test_clients);
    EXPECT_EQ(serial.ngram[i].predictions, parallel.ngram[i].predictions);
    EXPECT_EQ(serial.ngram[i].accuracy_at, parallel.ngram[i].accuracy_at);
  }
}

TEST(TrafficMix, InterpolationHitsEndpoints) {
  workload::GrowthConfig config;
  const auto start = workload::interpolate_mix(config, 0);
  const auto end = workload::interpolate_mix(config, config.n_quarters - 1);
  EXPECT_NEAR(start.mobile_app, config.mix_2016.mobile_app, 1e-9);
  EXPECT_NEAR(end.mobile_app, config.mix_2019.mobile_app, 1e-9);
  EXPECT_THROW((void)workload::interpolate_mix(config, -1),
               std::invalid_argument);
  EXPECT_THROW((void)workload::interpolate_mix(config, config.n_quarters),
               std::invalid_argument);
}

TEST(TrafficMix, SizeShiftReachesConfiguredScale) {
  workload::GrowthConfig config;
  EXPECT_DOUBLE_EQ(workload::json_size_log_shift_at(config, 0), 0.0);
  EXPECT_NEAR(std::exp(workload::json_size_log_shift_at(
                  config, config.n_quarters - 1)),
              config.json_size_total_scale, 1e-9);
}

TEST(TrafficMix, Figure1RatioGrowsAcrossTheSpan) {
  workload::GrowthConfig config;
  config.clients_per_quarter = 500;
  config.n_quarters = 7;  // sample fewer quarters for test speed
  const auto series = workload::simulate_growth(config);
  ASSERT_EQ(series.size(), 7u);
  EXPECT_GT(series.front().json_html_ratio, 0.0);
  // Headline shape: the ratio grows substantially start -> end.
  EXPECT_GT(series.back().json_html_ratio,
            series.front().json_html_ratio * 1.5);
  // Median JSON body size shrinks (means carry Pareto-tail noise).
  EXPECT_LT(series.back().median_json_bytes,
            series.front().median_json_bytes * 0.90);
  // Labels advance.
  EXPECT_EQ(series.front().label, "2016Q1");
  EXPECT_EQ(series[4].label, "2017Q1");
}

}  // namespace
}  // namespace jsoncdn::core
