// Periodicity-detector ablations: permutation count x (the paper uses
// x = 100 and reports no change beyond it) and sampling interval (the paper
// uses 1 s, citing network jitter). Scores precision/recall against planted
// ground truth: periodic flows with jitter/dropout vs Poisson flows.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/periodicity.h"
#include "stats/rng.h"

namespace {

using namespace jsoncdn;

struct Flow {
  std::vector<double> times;
  bool periodic;
};

std::vector<Flow> make_flows(std::size_t per_class, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<Flow> flows;
  const double periods[] = {30.0, 60.0, 120.0, 300.0, 900.0};
  for (std::size_t i = 0; i < per_class; ++i) {
    // Periodic flow with jitter and dropout.
    Flow flow;
    flow.periodic = true;
    const double period = periods[i % std::size(periods)];
    for (int k = 0; k < 40; ++k) {
      if (rng.bernoulli(0.03)) continue;
      flow.times.push_back(period * k + rng.normal(0.0, 0.5));
    }
    std::sort(flow.times.begin(), flow.times.end());
    flows.push_back(std::move(flow));

    // Poisson flow at a matched rate.
    Flow noise;
    noise.periodic = false;
    double t = 0.0;
    for (int k = 0; k < 40; ++k) {
      t += rng.exponential(1.0 / period);
      noise.times.push_back(t);
    }
    flows.push_back(std::move(noise));
  }
  return flows;
}

struct Score {
  double precision = 0.0;
  double recall = 0.0;
  double ms = 0.0;
};

Score score_detector(const core::DetectorParams& params,
                     const std::vector<Flow>& flows) {
  core::PeriodicityDetector detector(params);
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t truth = 0;
  const auto start = std::chrono::steady_clock::now();
  stats::Rng rng(99);
  for (const auto& flow : flows) {
    if (flow.periodic) ++truth;
    const auto result = detector.detect(flow.times, rng);
    if (result.periodic) {
      (flow.periodic ? tp : fp) += 1;
    }
  }
  const auto end = std::chrono::steady_clock::now();
  Score score;
  score.precision = tp + fp == 0 ? 1.0
                                 : static_cast<double>(tp) /
                                       static_cast<double>(tp + fp);
  score.recall =
      truth == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(truth);
  score.ms = std::chrono::duration<double, std::milli>(end - start).count();
  return score;
}

}  // namespace

int main() {
  bench::print_header("Ablation: periodicity detector",
                      "permutations x and sampling interval");
  const auto flows = make_flows(40, 4242);
  std::printf("  %zu flows (half periodic with jitter+dropout, half "
              "Poisson)\n\n",
              flows.size());

  std::printf("  permutation count x (paper: 100):\n");
  std::printf("  %-8s %-12s %-10s %-10s\n", "x", "precision", "recall",
              "total-ms");
  for (const std::size_t x : {10u, 25u, 50u, 100u, 200u}) {
    core::DetectorParams params;
    params.permutations = x;
    const auto s = score_detector(params, flows);
    std::printf("  %-8zu %-12.3f %-10.3f %-10.1f\n", x, s.precision, s.recall,
                s.ms);
  }

  std::printf("\n  sampling interval (paper: 1 s):\n");
  std::printf("  %-8s %-12s %-10s %-10s\n", "dt", "precision", "recall",
              "total-ms");
  for (const double dt : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0}) {
    core::DetectorParams params;
    params.sample_interval = dt;
    const auto s = score_detector(params, flows);
    std::printf("  %-8.1f %-12.3f %-10.3f %-10.1f\n", dt, s.precision,
                s.recall, s.ms);
  }

  bench::note("");
  bench::note("expected shape: precision high everywhere (permutation test");
  bench::note("controls false positives); x beyond 100 changes little — the");
  bench::note("paper's observation. Coarser sampling erodes recall for the");
  bench::note("shortest periods once dt approaches period/2.");
  return 0;
}
