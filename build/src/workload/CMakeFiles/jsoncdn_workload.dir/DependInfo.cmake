
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/app_graph.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/app_graph.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/app_graph.cpp.o.d"
  "/root/repo/src/workload/catalog.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/catalog.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/catalog.cpp.o.d"
  "/root/repo/src/workload/device_profiles.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/device_profiles.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/device_profiles.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/industry.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/industry.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/industry.cpp.o.d"
  "/root/repo/src/workload/scenario.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/scenario.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/scenario.cpp.o.d"
  "/root/repo/src/workload/sessions.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/sessions.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/sessions.cpp.o.d"
  "/root/repo/src/workload/traffic_mix.cpp" "src/workload/CMakeFiles/jsoncdn_workload.dir/traffic_mix.cpp.o" "gcc" "src/workload/CMakeFiles/jsoncdn_workload.dir/traffic_mix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
