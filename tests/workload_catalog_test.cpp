#include "workload/catalog.h"

#include <gtest/gtest.h>

#include "http/url.h"
#include "workload/industry.h"

namespace jsoncdn::workload {
namespace {

CatalogConfig small_config() {
  CatalogConfig config;
  config.domains_per_industry = 3;
  config.json_objects_per_domain = 10;
  config.html_objects_per_domain = 4;
  config.asset_objects_per_domain = 6;
  return config;
}

TEST(ObjectCatalog, AddAndFind) {
  ObjectCatalog catalog;
  ObjectSpec spec;
  spec.url = "https://h/x";
  spec.domain = "h";
  const auto idx = catalog.add(spec);
  EXPECT_EQ(idx, 0u);
  ASSERT_NE(catalog.find("https://h/x"), nullptr);
  EXPECT_EQ(catalog.find("https://h/x")->domain, "h");
  EXPECT_EQ(catalog.find("https://h/missing"), nullptr);
  EXPECT_EQ(catalog.at(0).url, "https://h/x");
}

TEST(ObjectCatalog, DuplicateUrlThrows) {
  ObjectCatalog catalog;
  ObjectSpec spec;
  spec.url = "https://h/x";
  catalog.add(spec);
  EXPECT_THROW(catalog.add(spec), std::invalid_argument);
}

TEST(ObjectCatalog, AtThrowsOutOfRange) {
  ObjectCatalog catalog;
  EXPECT_THROW((void)catalog.at(0), std::out_of_range);
}

TEST(DomainCatalog, GeneratesExpectedCounts) {
  DomainCatalog catalog(small_config(), stats::Rng(1));
  EXPECT_EQ(catalog.domains().size(), 3u * kIndustryCount);
  for (const auto& d : catalog.domains()) {
    EXPECT_EQ(d.json_objects.size(), 10u);
    EXPECT_EQ(d.html_objects.size(), 4u);
    EXPECT_EQ(d.asset_objects.size(), 6u);
    EXPECT_TRUE(d.telemetry_object.has_value());
    EXPECT_TRUE(d.poll_object.has_value());
    EXPECT_EQ(d.page_assets.size(), d.html_objects.size());
    EXPECT_EQ(d.page_xhrs.size(), d.html_objects.size());
  }
}

TEST(DomainCatalog, DeterministicForSameSeed) {
  DomainCatalog a(small_config(), stats::Rng(7));
  DomainCatalog b(small_config(), stats::Rng(7));
  ASSERT_EQ(a.objects().size(), b.objects().size());
  for (std::size_t i = 0; i < a.objects().size(); ++i) {
    EXPECT_EQ(a.objects().at(i).url, b.objects().at(i).url);
    EXPECT_EQ(a.objects().at(i).cacheable, b.objects().at(i).cacheable);
    EXPECT_EQ(a.objects().at(i).body_bytes, b.objects().at(i).body_bytes);
  }
}

TEST(DomainCatalog, AllUrlsParse) {
  DomainCatalog catalog(small_config(), stats::Rng(2));
  for (const auto& obj : catalog.objects().objects()) {
    const auto parsed = http::parse_url(obj.url);
    ASSERT_TRUE(parsed.has_value()) << obj.url;
    EXPECT_EQ(parsed->host, obj.domain) << obj.url;
  }
}

TEST(DomainCatalog, TelemetryEndpointsAreUncacheable) {
  DomainCatalog catalog(small_config(), stats::Rng(3));
  for (const auto& d : catalog.domains()) {
    EXPECT_FALSE(catalog.objects().at(*d.telemetry_object).cacheable);
  }
}

TEST(DomainCatalog, NeverCacheDomainsHaveNoCacheableJson) {
  DomainCatalog catalog(small_config(), stats::Rng(4));
  for (const auto& d : catalog.domains()) {
    if (d.cacheable_share > 0.0) continue;
    for (const auto idx : d.json_objects) {
      EXPECT_FALSE(catalog.objects().at(idx).cacheable) << d.name;
    }
    EXPECT_FALSE(catalog.objects().at(*d.poll_object).cacheable);
  }
}

TEST(DomainCatalog, AssetsAlwaysCacheable) {
  DomainCatalog catalog(small_config(), stats::Rng(5));
  for (const auto& d : catalog.domains()) {
    for (const auto idx : d.asset_objects) {
      EXPECT_TRUE(catalog.objects().at(idx).cacheable);
    }
  }
}

TEST(DomainCatalog, SampleDomainFollowsPopularity) {
  DomainCatalog catalog(small_config(), stats::Rng(6));
  stats::Rng rng(100);
  std::vector<int> counts(catalog.domains().size(), 0);
  for (int i = 0; i < 20000; ++i) ++counts[catalog.sample_domain(rng)];
  // The most popular domain should be sampled noticeably more than the
  // least popular one.
  const auto [min_it, max_it] =
      std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*max_it, *min_it * 2);
}

TEST(DomainCatalog, RejectsZeroDomains) {
  CatalogConfig config;
  config.domains_per_industry = 0;
  EXPECT_THROW(DomainCatalog(config, stats::Rng(1)), std::invalid_argument);
}

TEST(SizeParams, JsonSmallerThanHtmlAtMedian) {
  const auto json = size_params(http::ContentClass::kJson);
  const auto html = size_params(http::ContentClass::kHtml);
  // Lognormal medians: exp(log_mean); HTML also carries a heavy tail.
  EXPECT_LT(json.log_mean, html.log_mean + 1.0);
  EXPECT_GT(html.tail_prob, json.tail_prob);
}

TEST(ContentTypeFor, AllClassesHaveTypes) {
  for (const auto c :
       {http::ContentClass::kJson, http::ContentClass::kHtml,
        http::ContentClass::kCss, http::ContentClass::kJavascript,
        http::ContentClass::kImage, http::ContentClass::kVideo}) {
    const auto ct = content_type_for(c);
    EXPECT_NE(ct.find('/'), std::string::npos);
    EXPECT_EQ(http::classify_content(ct), c);
  }
}

TEST(Industry, CacheabilityMixtureMatchesPaperAggregates) {
  // Across all categories, ~50% of domains never cache and ~30% always
  // cache (§4). Check the mixture parameters aggregate to that.
  double never = 0.0;
  double always = 0.0;
  for (const auto ind : kAllIndustries) {
    never += cacheability_profile(ind).never_share;
    always += cacheability_profile(ind).always_share;
  }
  never /= kIndustryCount;
  always /= kIndustryCount;
  EXPECT_NEAR(never, 0.50, 0.06);
  EXPECT_NEAR(always, 0.30, 0.06);
}

TEST(Industry, PersonalizedCategoriesRarelyCache) {
  for (const auto ind : {Industry::kFinancialServices, Industry::kStreaming,
                         Industry::kGaming}) {
    EXPECT_GT(cacheability_profile(ind).never_share, 0.6) << to_string(ind);
  }
}

TEST(Industry, StaticContentCategoriesMostlyCache) {
  for (const auto ind :
       {Industry::kNewsMedia, Industry::kSports, Industry::kEntertainment}) {
    EXPECT_GT(cacheability_profile(ind).always_share, 0.5) << to_string(ind);
    EXPECT_LT(cacheability_profile(ind).never_share, 0.25) << to_string(ind);
  }
}

TEST(Industry, SampleShareRespectsMixture) {
  stats::Rng rng(42);
  int never = 0;
  int always = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double s =
        sample_domain_cacheable_share(Industry::kFinancialServices, rng);
    if (s == 0.0) ++never;
    if (s == 1.0) ++always;
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
  const auto& p = cacheability_profile(Industry::kFinancialServices);
  EXPECT_NEAR(static_cast<double>(never) / n, p.never_share, 0.02);
  EXPECT_NEAR(static_cast<double>(always) / n, p.always_share, 0.02);
}

}  // namespace
}  // namespace jsoncdn::workload
