# Empty dependencies file for jsoncdn_logs.
# This may be replaced when dependencies are built.
