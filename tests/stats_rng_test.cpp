#include "stats/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace jsoncdn::stats {
namespace {

TEST(SplitMix64, KnownVectorsAreStable) {
  // Pinned outputs: these must never change or every seeded scenario shifts.
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_NE(splitmix64(2), splitmix64(3));
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkIsIndependentOfParentDrawCount) {
  Rng a(7);
  Rng b(7);
  (void)b();  // advance b only
  (void)b();
  // fork depends on the seed, not engine state.
  auto fa = a.fork(5);
  auto fb = b.fork(5);
  EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForkKeysProduceDistinctStreams) {
  Rng root(99);
  auto a = root.fork(1);
  auto b = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, StringForkMatchesRepeatedCalls) {
  Rng root(99);
  auto a = root.fork("catalog");
  auto b = root.fork("catalog");
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 6.5);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 6.5);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLo) {
  Rng rng(3);
  EXPECT_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, UniformThrowsOnInvertedRange) {
  Rng rng(3);
  EXPECT_THROW((void)rng.uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, BernoulliEdgeCasesAreDeterministic) {
  Rng rng(1);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequencyApproximatesP) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(6);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialThrowsOnNonPositiveRate) {
  Rng rng(6);
  EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, NormalMomentsApproximatelyCorrect) {
  Rng rng(8);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(sq / n - mean * mean), 2.0, 0.1);
}

}  // namespace
}  // namespace jsoncdn::stats
