#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <span>
#include <sstream>

#include "logs/anonymizer.h"
#include "logs/csv.h"
#include "logs/record.h"

namespace jsoncdn::logs {
namespace {

LogRecord sample_record() {
  LogRecord r;
  r.timestamp = 1234.5;
  r.client_id = "deadbeef00112233";
  r.user_agent = "NewsReader/5.2.1 (iPhone; iOS 12.4.1)";
  r.method = http::Method::kGet;
  r.url = "https://api.news-000.example/api/v1/stories/1";
  r.domain = "api.news-000.example";
  r.content_type = "application/json; charset=utf-8";
  r.status = 200;
  r.response_bytes = 2048;
  r.request_bytes = 0;
  r.cache_status = CacheStatus::kHit;
  r.edge_id = 2;
  return r;
}

void expect_equal(const LogRecord& a, const LogRecord& b) {
  EXPECT_DOUBLE_EQ(a.timestamp, b.timestamp);
  EXPECT_EQ(a.client_id, b.client_id);
  EXPECT_EQ(a.user_agent, b.user_agent);
  EXPECT_EQ(a.method, b.method);
  EXPECT_EQ(a.url, b.url);
  EXPECT_EQ(a.domain, b.domain);
  EXPECT_EQ(a.content_type, b.content_type);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.response_bytes, b.response_bytes);
  EXPECT_EQ(a.request_bytes, b.request_bytes);
  EXPECT_EQ(a.cache_status, b.cache_status);
  EXPECT_EQ(a.edge_id, b.edge_id);
}

TEST(CacheStatus, RoundTripsAllValues) {
  for (const auto s : {CacheStatus::kHit, CacheStatus::kMiss,
                       CacheStatus::kNotCacheable}) {
    CacheStatus out;
    ASSERT_TRUE(parse_cache_status(to_string(s), out));
    EXPECT_EQ(out, s);
  }
  CacheStatus out;
  EXPECT_FALSE(parse_cache_status("BOGUS", out));
}

TEST(LogLine, RoundTripsTypicalRecord) {
  const auto r = sample_record();
  const auto parsed = from_line(to_line(r));
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, r);
}

TEST(LogLine, RoundTripsNastyFieldBytes) {
  auto r = sample_record();
  r.user_agent = "evil\tagent\nwith%special\rchars";
  r.url = "https://h/a%20b?x=\t1";
  const auto line = to_line(r);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  const auto parsed = from_line(line);
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, r);
}

TEST(LogLine, RoundTripsLiteralPlusUnchanged) {
  // '+' is a legitimate byte in UA strings and URLs; unescape_field must be
  // the exact inverse of the writer's escaping, not form decoding (which
  // would fold '+' to space and break joins against truth-sidecar keys).
  auto r = sample_record();
  r.user_agent = "Scrapy/2.11.0 (+https://scrapy.org)";
  r.url = "https://h/search?q=a+b";
  const auto parsed = from_line(to_line(r));
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, r);
}

TEST(LogLine, RoundTripsEmptyFields) {
  auto r = sample_record();
  r.user_agent = "";
  r.client_id = "";
  const auto parsed = from_line(to_line(r));
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, r);
}

TEST(LogLine, RejectsMalformedLines) {
  EXPECT_FALSE(from_line("").has_value());
  EXPECT_FALSE(from_line("only\tthree\tcolumns").has_value());
  auto good = to_line(sample_record());
  EXPECT_FALSE(from_line(good + "\textra").has_value());
  // Corrupt the numeric status column.
  auto bad = good;
  const auto pos = bad.find("\t200\t");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 5, "\tNaN\t");
  EXPECT_FALSE(from_line(bad).has_value());
}

TEST(LogLine, RejectsUnknownMethodOrCacheStatus) {
  auto line = to_line(sample_record());
  auto bad_method = line;
  const auto mpos = bad_method.find("\tGET\t");
  bad_method.replace(mpos, 5, "\tGOT\t");
  EXPECT_FALSE(from_line(bad_method).has_value());
}

TEST(LogWriterReader, StreamRoundTripWithHeaderAndMalformedLines) {
  std::stringstream stream;
  LogWriter writer(stream);
  const auto r1 = sample_record();
  auto r2 = sample_record();
  r2.timestamp = 2000.25;
  r2.method = http::Method::kPost;
  r2.cache_status = CacheStatus::kNotCacheable;
  writer.write(r1);
  writer.write(r2);
  EXPECT_EQ(writer.written(), 2u);

  stream << "this is not a log line\n\n";

  LogReader reader(stream);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 2u);
  expect_equal(records[0], r1);
  expect_equal(records[1], r2);
  EXPECT_EQ(reader.malformed_lines(), 1u);  // empty lines are skipped silently
}

TEST(LogLine, ToleratesCrlfLineEndings) {
  const auto r = sample_record();
  const auto parsed = from_line(to_line(r) + "\r");
  ASSERT_TRUE(parsed.has_value());
  expect_equal(*parsed, r);
}

TEST(LogWriterReader, ReadsCrlfStreamsAndFinalRowWithoutNewline) {
  const auto r1 = sample_record();
  auto r2 = sample_record();
  r2.timestamp = 99.75;
  // A Windows-edited log: CRLF endings, a blank CR line, and no newline
  // after the final row.
  std::stringstream stream;
  stream << log_header() << "\r\n"
         << to_line(r1) << "\r\n"
         << "\r\n"
         << to_line(r2);  // no trailing newline
  LogReader reader(stream);
  const auto records = reader.read_all();
  ASSERT_EQ(records.size(), 2u);
  expect_equal(records[0], r1);
  expect_equal(records[1], r2);
  EXPECT_EQ(reader.malformed_lines(), 0u);
}

class LogFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "jsoncdn_logs_file_test.log";
    std::ofstream out(path_);
    LogWriter writer(out);
    for (int i = 0; i < 25; ++i) {
      auto r = sample_record();
      r.timestamp = 100.0 + i;
      r.url = "https://api.news-000.example/api/v1/stories/" +
              std::to_string(i);
      writer.write(r);
      written_.push_back(std::move(r));
    }
    out << "not a log line\n";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  std::vector<LogRecord> written_;
};

TEST_F(LogFileTest, ReadLogFileLoadsAndCountsMalformed) {
  std::uint64_t malformed = 0;
  const auto ds = read_log_file(path_, &malformed);
  ASSERT_EQ(ds.size(), written_.size());
  EXPECT_EQ(malformed, 1u);
  for (std::size_t i = 0; i < written_.size(); ++i)
    expect_equal(ds[i], written_[i]);
  // The file-size reserve hint must be in a sane band: nonzero, and not
  // orders of magnitude above the real record count.
  const auto hint = estimate_record_count(path_);
  EXPECT_GT(hint, 0u);
  EXPECT_LT(hint, written_.size() * 100);
}

TEST_F(LogFileTest, ReadLogFileThrowsOnMissingFile) {
  EXPECT_THROW((void)read_log_file(path_ + ".does-not-exist"),
               std::runtime_error);
}

TEST_F(LogFileTest, ForEachRecordChunksMatchReadAll) {
  std::vector<LogRecord> streamed;
  std::size_t calls = 0;
  std::size_t max_chunk = 0;
  const auto stats = for_each_record(
      path_, 7, [&](std::span<const LogRecord> chunk) {
        ++calls;
        max_chunk = std::max(max_chunk, chunk.size());
        streamed.insert(streamed.end(), chunk.begin(), chunk.end());
      });
  EXPECT_EQ(stats.records, written_.size());
  EXPECT_EQ(stats.malformed, 1u);
  EXPECT_LE(max_chunk, 7u);
  EXPECT_EQ(calls, (written_.size() + 6) / 7);
  ASSERT_EQ(streamed.size(), written_.size());
  for (std::size_t i = 0; i < written_.size(); ++i)
    expect_equal(streamed[i], written_[i]);
}

TEST(LogHeader, StartsWithCommentMarker) {
  EXPECT_EQ(log_header().front(), '#');
}

TEST(Anonymizer, DeterministicPerSalt) {
  Anonymizer a(42);
  EXPECT_EQ(a.pseudonym("10.0.0.1"), a.pseudonym("10.0.0.1"));
  EXPECT_NE(a.pseudonym("10.0.0.1"), a.pseudonym("10.0.0.2"));
}

TEST(Anonymizer, DifferentSaltsCannotBeJoined) {
  Anonymizer a(1);
  Anonymizer b(2);
  EXPECT_NE(a.pseudonym("10.0.0.1"), b.pseudonym("10.0.0.1"));
}

TEST(Anonymizer, ProducesFixedWidthHex) {
  Anonymizer a(7);
  const auto p = a.pseudonym("192.168.1.1");
  EXPECT_EQ(p.size(), 16u);
  EXPECT_EQ(p.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(ClientKey, CombinesIpHashAndUserAgent) {
  auto r = sample_record();
  const auto key1 = r.client_key();
  r.user_agent = "other";
  EXPECT_NE(r.client_key(), key1);  // same IP, different UA = different client
}

}  // namespace
}  // namespace jsoncdn::logs
