#include "stats/hash.h"

#include <gtest/gtest.h>

namespace jsoncdn::stats {
namespace {

TEST(Fnv1a64, EmptyStringIsOffsetBasis) {
  EXPECT_EQ(fnv1a64(""), kFnvOffsetBasis64);
}

TEST(Fnv1a64, KnownVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a64, ChainingEqualsConcatenation) {
  EXPECT_EQ(fnv1a64("bar", fnv1a64("foo")), fnv1a64("foobar"));
}

TEST(Fnv1a64, IsConstexpr) {
  static_assert(fnv1a64("compile-time") != 0);
  SUCCEED();
}

TEST(Fnv1a64Mix, DependsOnAllBytes) {
  EXPECT_NE(fnv1a64_mix(1), fnv1a64_mix(2));
  EXPECT_NE(fnv1a64_mix(1ULL << 56), fnv1a64_mix(0));
}

TEST(ToHex64, FormatsFixedWidth) {
  EXPECT_EQ(to_hex64(0), "0000000000000000");
  EXPECT_EQ(to_hex64(0xdeadbeefULL), "00000000deadbeef");
  EXPECT_EQ(to_hex64(0xffffffffffffffffULL), "ffffffffffffffff");
}

TEST(ToHex64, RoundTripsNibbles) {
  EXPECT_EQ(to_hex64(0x0123456789abcdefULL), "0123456789abcdef");
}

}  // namespace
}  // namespace jsoncdn::stats
