// Interarrival-aware request prediction — the paper's §5.2 future work:
// "future work can also take into account request interarrival time to
// better inform prediction systems".
//
// InterarrivalModel learns, per (previous URL -> next URL) transition, the
// distribution of the gap between the two requests (streaming mean/variance
// plus min/max). A prefetcher can then act only on predictions whose
// expected gap fits its horizon: warming an object the client will want in
// 40 minutes is wasted cache space if the entry's TTL is 10 minutes, and an
// object wanted in 80 ms cannot be fetched from origin in time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "logs/dataset.h"

namespace jsoncdn::core {

// Streaming gap statistics (Welford's algorithm: numerically stable single
// pass, O(1) memory per transition).
struct GapStats {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;  // sum of squared deviations
  double min = 0.0;
  double max = 0.0;

  void add(double gap);
  [[nodiscard]] double variance() const noexcept {
    return count < 2 ? 0.0 : m2 / static_cast<double>(count - 1);
  }
};

class InterarrivalModel {
 public:
  // Records one observed transition with its gap (seconds, >= 0).
  void observe(std::string_view from, std::string_view to, double gap);

  // Trains from per-client flows of a dataset: every consecutive request
  // pair contributes one observation.
  void observe_dataset(const logs::Dataset& ds,
                       std::size_t min_flow_requests = 2);

  // Gap statistics for a transition, if it was ever observed.
  [[nodiscard]] const GapStats* stats_for(std::string_view from,
                                          std::string_view to) const;
  // Expected gap, falling back to the per-source mean, then to the global
  // mean; nullopt when nothing at all was observed.
  [[nodiscard]] std::optional<double> expected_gap(std::string_view from,
                                                   std::string_view to) const;

  [[nodiscard]] std::uint64_t observations() const noexcept {
    return observations_;
  }
  [[nodiscard]] std::size_t transition_count() const noexcept {
    return transitions_.size();
  }

 private:
  static std::string key(std::string_view from, std::string_view to);

  std::unordered_map<std::string, GapStats> transitions_;
  std::unordered_map<std::string, GapStats> by_source_;
  GapStats global_;
  std::uint64_t observations_ = 0;
};

}  // namespace jsoncdn::core
