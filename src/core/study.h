// End-to-end study pipeline: scenario -> synthetic workload -> CDN
// simulation -> edge-log dataset -> every §4/§5 analysis. This is the
// one-call public API; examples and benches compose it or its pieces.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cdn/network.h"
#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "logs/dataset.h"
#include "workload/generator.h"

namespace jsoncdn::core {

struct StudyConfig {
  workload::GeneratorConfig workload;
  cdn::NetworkParams network;
  PeriodicityConfig periodicity;
  std::vector<NgramEvalConfig> ngram_configs;  // empty => skip ngram eval
  bool run_characterization = true;
  bool run_periodicity = false;  // expensive; long-term studies enable it
  // Worker threads for every analysis stage: 0 = auto (JSONCDN_THREADS env,
  // else hardware_concurrency). Overrides the per-stage thread settings.
  // The determinism contract (see DESIGN.md) guarantees the StudyResult is
  // bit-identical for any value.
  std::size_t threads = 0;
};

struct StudyResult {
  logs::Dataset dataset;        // all content types
  logs::Dataset json;           // application/json only
  workload::GroundTruth truth;  // never consumed by the analyses
  cdn::DeliveryMetrics delivery;

  // §4 characterization (over the JSON dataset unless noted).
  std::optional<SourceBreakdown> source;
  std::optional<MethodMix> methods;
  std::optional<CacheabilityStats> cacheability;
  std::optional<SizeComparison> sizes;                // over the full dataset
  std::optional<CacheabilityHeatmap> heatmap;
  std::vector<DomainCacheability> domains;

  // §5 analyses.
  std::optional<PeriodicityReport> periodicity;
  std::vector<NgramAccuracy> ngram;
};

// Runs the configured pipeline. The industry lookup for the Fig. 4 heatmap
// is derived from the generated domain catalog (standing in for the paper's
// commercial categorization service).
[[nodiscard]] StudyResult run_study(const StudyConfig& config);

}  // namespace jsoncdn::core
