#include "core/ngram.h"

#include <gtest/gtest.h>

#include "core/url_cluster.h"

namespace jsoncdn::core {
namespace {

std::vector<std::string> seq(std::initializer_list<const char*> tokens) {
  return {tokens.begin(), tokens.end()};
}

TEST(NgramModel, LearnsDeterministicChainExactly) {
  NgramModel model(1);
  for (int i = 0; i < 10; ++i) model.observe_sequence(seq({"a", "b", "c"}));
  const auto after_a = model.predict(seq({"a"}), 1);
  ASSERT_EQ(after_a.size(), 1u);
  EXPECT_EQ(after_a[0].token, "b");
  EXPECT_DOUBLE_EQ(after_a[0].score, 1.0);
  const auto after_b = model.predict(seq({"b"}), 1);
  ASSERT_EQ(after_b.size(), 1u);
  EXPECT_EQ(after_b[0].token, "c");
}

TEST(NgramModel, RanksByFrequency) {
  NgramModel model(1);
  for (int i = 0; i < 7; ++i) model.observe_sequence(seq({"a", "x"}));
  for (int i = 0; i < 3; ++i) model.observe_sequence(seq({"a", "y"}));
  const auto p = model.predict(seq({"a"}), 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].token, "x");
  EXPECT_NEAR(p[0].score, 0.7, 1e-12);
  EXPECT_EQ(p[1].token, "y");
  EXPECT_NEAR(p[1].score, 0.3, 1e-12);
}

TEST(NgramModel, LongerContextBeatsShorterWhenAvailable) {
  NgramModel model(2);
  // After (a,b) the next is always c; after bare b it is mostly d.
  model.observe_sequence(seq({"a", "b", "c"}));
  model.observe_sequence(seq({"x", "b", "d"}));
  model.observe_sequence(seq({"y", "b", "d"}));
  const auto p = model.predict(seq({"a", "b"}), 1);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p[0].token, "c");  // bigram "b->d" must not override (a,b)->c
}

TEST(NgramModel, BacksOffToShorterContext) {
  NgramModel model(2);
  model.observe_sequence(seq({"a", "b", "c"}));
  // Context ("z", "b") unseen; backs off to "b" -> c.
  const auto p = model.predict(seq({"z", "b"}), 1);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p[0].token, "c");
}

TEST(NgramModel, BacksOffToUnigramPopularityForUnknownContext) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "a", "a", "b"}));
  const auto p = model.predict(seq({"never-seen"}), 1);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p[0].token, "a");  // most popular token overall
}

TEST(NgramModel, BackoffScoresAreDiscounted) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "b"}));
  model.observe_sequence(seq({"c", "d"}));
  const auto direct = model.predict(seq({"a"}), 4);
  ASSERT_GE(direct.size(), 2u);
  // First entry from the matched context, later ones from the unigram
  // fallback at discounted score.
  EXPECT_EQ(direct[0].token, "b");
  EXPECT_GT(direct[0].score, direct[1].score);
}

TEST(NgramModel, TopKNeverRepeatsTokens) {
  NgramModel model(2);
  model.observe_sequence(seq({"a", "b", "c", "a", "b", "c"}));
  const auto p = model.predict(seq({"a", "b"}), 10);
  std::set<std::string> unique;
  for (const auto& pred : p) EXPECT_TRUE(unique.insert(pred.token).second);
}

TEST(NgramModel, DeterministicTieBreaking) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "z"}));
  model.observe_sequence(seq({"a", "b"}));  // equal counts
  const auto p = model.predict(seq({"a"}), 2);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0].token, "b");  // lexicographic among ties
}

TEST(NgramModel, ShortSequencesIgnored) {
  NgramModel model(1);
  model.observe_sequence(seq({"only"}));
  EXPECT_EQ(model.observed_transitions(), 0u);
  EXPECT_TRUE(model.predict(seq({"only"}), 3).empty());
}

TEST(NgramModel, KnowsReportsVocabulary) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "b"}));
  EXPECT_TRUE(model.knows("a"));
  EXPECT_TRUE(model.knows("b"));
  EXPECT_FALSE(model.knows("c"));
  EXPECT_EQ(model.vocabulary_size(), 2u);
}

TEST(NgramModel, KZeroYieldsNothing) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "b"}));
  EXPECT_TRUE(model.predict(seq({"a"}), 0).empty());
}

TEST(NgramModel, RejectsZeroContext) {
  EXPECT_THROW(NgramModel(0), std::invalid_argument);
}

TEST(NgramModel, UnknownTokenMidHistoryUsesSuffix) {
  NgramModel model(2);
  model.observe_sequence(seq({"a", "b", "c"}));
  // "?? b" with ?? unknown: only "b" usable -> predicts c.
  const auto p = model.predict(seq({"??", "b"}), 1);
  ASSERT_FALSE(p.empty());
  EXPECT_EQ(p[0].token, "c");
}

// ---- evaluate_ngram on a hand-built dataset -------------------------------

logs::Dataset chain_dataset(std::size_t n_clients,
                            std::size_t repeats_per_client) {
  // Every client requests the exact cycle u1 -> u2 -> u3.
  logs::Dataset ds;
  double t = 0.0;
  for (std::size_t c = 0; c < n_clients; ++c) {
    for (std::size_t r = 0; r < repeats_per_client; ++r) {
      for (const char* url : {"https://h/a/1", "https://h/b/2",
                              "https://h/c/3"}) {
        logs::LogRecord rec;
        rec.timestamp = t;
        t += 1.0;
        rec.client_id = "client" + std::to_string(c);
        rec.user_agent = "ua";
        rec.url = url;
        rec.domain = "h";
        rec.content_type = "application/json";
        ds.add(rec);
      }
    }
  }
  return ds;
}

TEST(EvaluateNgram, PerfectChainScoresNearOne) {
  const auto ds = chain_dataset(40, 5);
  NgramEvalConfig config;
  config.context_len = 1;
  config.ks = {1};
  const auto result = evaluate_ngram(ds, config);
  EXPECT_GT(result.train_clients, 0u);
  EXPECT_GT(result.test_clients, 0u);
  EXPECT_GT(result.predictions, 0u);
  // Only the first transition of each test flow (no history of the cycle
  // start) can miss; everything else is deterministic.
  EXPECT_GT(result.accuracy_at.at(1), 0.9);
}

TEST(EvaluateNgram, AccuracyMonotoneInK) {
  const auto ds = chain_dataset(40, 5);
  NgramEvalConfig config;
  config.ks = {1, 5, 10};
  const auto result = evaluate_ngram(ds, config);
  EXPECT_LE(result.accuracy_at.at(1), result.accuracy_at.at(5));
  EXPECT_LE(result.accuracy_at.at(5), result.accuracy_at.at(10));
}

TEST(EvaluateNgram, ClusteredAtLeastAsGoodOnParameterizedChains) {
  // Clients cycle template /a/{i} with client-specific ids: raw URLs differ
  // per client, clusters agree.
  logs::Dataset ds;
  double t = 0.0;
  for (int c = 0; c < 40; ++c) {
    for (int r = 0; r < 6; ++r) {
      for (const char* step : {"x", "y"}) {
        logs::LogRecord rec;
        rec.timestamp = t;
        t += 1.0;
        rec.client_id = "client" + std::to_string(c);
        rec.user_agent = "ua";
        rec.url = "https://h/" + std::string(step) + "/" +
                  std::to_string(1000 + c);
        rec.domain = "h";
        rec.content_type = "application/json";
        ds.add(rec);
      }
    }
  }
  NgramEvalConfig raw;
  raw.ks = {1};
  NgramEvalConfig clustered = raw;
  clustered.clustered = true;
  const auto raw_result = evaluate_ngram(ds, raw);
  const auto clustered_result = evaluate_ngram(ds, clustered);
  EXPECT_GT(clustered_result.accuracy_at.at(1),
            raw_result.accuracy_at.at(1) + 0.3);
}

TEST(EvaluateNgram, SplitIsClientDisjointAndStable) {
  const auto ds = chain_dataset(100, 2);
  NgramEvalConfig config;
  const auto r1 = evaluate_ngram(ds, config);
  const auto r2 = evaluate_ngram(ds, config);
  EXPECT_EQ(r1.train_clients, r2.train_clients);
  EXPECT_EQ(r1.train_clients + r1.test_clients, 100u);
  EXPECT_NEAR(static_cast<double>(r1.train_clients) / 100.0, 0.8, 0.12);
}

TEST(EvaluateNgram, RejectsBadConfig) {
  const auto ds = chain_dataset(4, 1);
  NgramEvalConfig config;
  config.train_fraction = 1.0;
  EXPECT_THROW((void)evaluate_ngram(ds, config), std::invalid_argument);
  config = {};
  config.context_len = 0;
  EXPECT_THROW((void)evaluate_ngram(ds, config), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::core
