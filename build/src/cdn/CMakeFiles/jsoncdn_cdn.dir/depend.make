# Empty dependencies file for jsoncdn_cdn.
# This may be replaced when dependencies are built.
