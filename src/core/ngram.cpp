#include "core/ngram.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <unordered_set>

#include "core/url_cluster.h"
#include "stats/hash.h"
#include "stats/parallel.h"

namespace jsoncdn::core {

namespace {

constexpr double kBackoffDiscount = 0.4;  // standard stupid-backoff alpha

}  // namespace

NgramModel::NgramModel(std::size_t max_context) : max_context_(max_context) {
  if (max_context == 0)
    throw std::invalid_argument("NgramModel: max_context must be >= 1");
  tables_.resize(max_context);
}

NgramModel::TokenId NgramModel::intern(std::string_view token) {
  const auto it = vocab_.find(token);  // heterogeneous: no temporary string
  if (it != vocab_.end()) return it->second;
  const auto id = static_cast<TokenId>(token_names_.size());
  token_names_.emplace_back(token);
  vocab_.emplace(token_names_.back(), id);
  return id;
}

std::string NgramModel::context_key(std::span<const TokenId> context) const {
  std::string key;
  key.reserve(context.size() * sizeof(TokenId));
  for (const TokenId id : context) {
    key.append(reinterpret_cast<const char*>(&id), sizeof(TokenId));
  }
  return key;
}

void NgramModel::observe_sequence(std::span<const std::string> tokens) {
  if (tokens.size() < 2) return;
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(intern(t));

  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) ++transitions_;
    ++unigrams_[ids[i]];
    // Transitions into position i from contexts of length 1..max_context_.
    for (std::size_t len = 1; len <= max_context_ && len <= i; ++len) {
      const std::span<const TokenId> context(&ids[i - len], len);
      ++tables_[len - 1][context_key(context)][ids[i]];
    }
  }
}

void NgramModel::merge(const NgramModel& other) {
  if (other.max_context_ != max_context_)
    throw std::invalid_argument("NgramModel::merge: max_context mismatch");
  // Remap the other model's token ids into this vocabulary.
  std::vector<TokenId> remap(other.token_names_.size());
  for (std::size_t i = 0; i < other.token_names_.size(); ++i)
    remap[i] = intern(other.token_names_[i]);

  for (const auto& [id, count] : other.unigrams_)
    unigrams_[remap[id]] += count;
  transitions_ += other.transitions_;

  std::vector<TokenId> context;
  for (std::size_t len = 1; len <= max_context_; ++len) {
    for (const auto& [key, counts] : other.tables_[len - 1]) {
      context.resize(len);
      std::memcpy(context.data(), key.data(), key.size());
      for (auto& id : context) id = remap[id];
      auto& dst = tables_[len - 1][context_key(context)];
      for (const auto& [id, count] : counts) dst[remap[id]] += count;
    }
  }
}

std::vector<NgramModel::Prediction> NgramModel::predict(
    std::span<const std::string> history, std::size_t k) const {
  std::vector<Prediction> out;
  if (k == 0) return out;

  // Resolve the history to ids; unseen tokens break any context containing
  // them, which backoff handles naturally.
  std::vector<TokenId> ids;
  ids.reserve(history.size());
  bool tail_known = true;
  for (const auto& t : history) {
    const auto it = vocab_.find(t);
    if (it == vocab_.end()) {
      ids.clear();  // everything before an unknown token is unusable
      tail_known = false;
      continue;
    }
    ids.push_back(it->second);
    tail_known = true;
  }
  (void)tail_known;

  std::unordered_set<TokenId> chosen;
  double level_scale = 1.0;
  const std::size_t longest = std::min(max_context_, ids.size());
  for (std::size_t len = longest; len > 0 && out.size() < k; --len) {
    const std::span<const TokenId> context(&ids[ids.size() - len], len);
    const auto& table = tables_[len - 1];
    const auto it = table.find(context_key(context));
    if (it != table.end()) {
      // Rank continuations of this context by count. Only the prefix the
      // selection loop can reach needs ordering: it stops after k picks and
      // skips at most chosen.size() already-picked tokens, so a partial
      // sort of k + chosen.size() entries yields the identical prefix the
      // full sort produced — at O(n log prefix) instead of O(n log n).
      std::vector<std::pair<TokenId, std::uint32_t>> ranked(
          it->second.begin(), it->second.end());
      const std::size_t prefix =
          std::min(ranked.size(), k - out.size() + chosen.size());
      std::partial_sort(
          ranked.begin(), ranked.begin() + prefix, ranked.end(),
          [&](const auto& a, const auto& b) {
            if (a.second != b.second) return a.second > b.second;
            return token_names_[a.first] < token_names_[b.first];  // determinism
          });
      // Exact integer total (counts are integers, so the double sum the
      // sorted loop accumulated equals this in any order).
      std::uint64_t total_count = 0;
      for (const auto& [id, count] : ranked) total_count += count;
      const auto total = static_cast<double>(total_count);
      for (std::size_t p = 0; p < prefix; ++p) {
        const auto [id, count] = ranked[p];
        if (out.size() >= k) break;
        if (!chosen.insert(id).second) continue;
        out.push_back(
            {token_names_[id], level_scale * static_cast<double>(count) / total});
      }
      level_scale *= kBackoffDiscount;
    }
  }
  if (out.size() < k && !unigrams_.empty()) {
    // Final backoff: global popularity prior, same partial-sort bound.
    std::vector<std::pair<TokenId, std::uint32_t>> ranked(unigrams_.begin(),
                                                          unigrams_.end());
    const std::size_t prefix =
        std::min(ranked.size(), k - out.size() + chosen.size());
    std::partial_sort(ranked.begin(), ranked.begin() + prefix, ranked.end(),
                      [&](const auto& a, const auto& b) {
                        if (a.second != b.second) return a.second > b.second;
                        return token_names_[a.first] < token_names_[b.first];
                      });
    std::uint64_t total_count = 0;
    for (const auto& [id, count] : ranked) total_count += count;
    const auto total = static_cast<double>(total_count);
    for (std::size_t p = 0; p < prefix; ++p) {
      const auto [id, count] = ranked[p];
      if (out.size() >= k) break;
      if (!chosen.insert(id).second) continue;
      out.push_back(
          {token_names_[id], level_scale * static_cast<double>(count) / total});
    }
  }
  return out;
}

namespace {

// Shared evaluation driver over extracted client flows. `url_of(idx)`
// resolves a flow record index to its URL — the only input access the
// protocol needs — so the row (Dataset) and columnar (TableView) entry
// points produce bit-identical accuracy by construction.
template <typename UrlOf>
NgramAccuracy evaluate_flows(const std::vector<logs::ClientFlow>& flows,
                             const UrlOf& url_of,
                             const NgramEvalConfig& config) {
  if (config.train_fraction <= 0.0 || config.train_fraction >= 1.0)
    throw std::invalid_argument("evaluate_ngram: train_fraction outside (0,1)");
  if (config.context_len == 0)
    throw std::invalid_argument("evaluate_ngram: context_len == 0");

  NgramAccuracy result;
  result.context_len = config.context_len;
  result.clustered = config.clustered;

  auto tokens_of = [&](const logs::ClientFlow& flow) {
    std::vector<std::string> tokens;
    tokens.reserve(flow.record_indices.size());
    for (const auto idx : flow.record_indices) {
      const std::string_view url = url_of(idx);
      tokens.push_back(config.clustered ? cluster_url(url) : std::string(url));
    }
    return tokens;
  };

  // Client-level split: hash of the client key + seed decides the side, so
  // the split is stable under dataset reordering.
  auto is_train = [&](const std::string& client) {
    const auto h = stats::fnv1a64(client, stats::fnv1a64_mix(config.seed));
    return static_cast<double>(h % 1'000'000) / 1e6 < config.train_fraction;
  };

  std::vector<const logs::ClientFlow*> train_flows;
  std::vector<const logs::ClientFlow*> test_flows;
  for (const auto& flow : flows) {
    if (is_train(flow.client)) {
      ++result.train_clients;
      train_flows.push_back(&flow);
    } else {
      ++result.test_clients;
      test_flows.push_back(&flow);
    }
  }

  stats::ThreadPool pool(config.threads);

  // Token extraction is per-flow independent: index-ordered parallel map.
  const auto train_tokens = stats::parallel_map<std::vector<std::string>>(
      pool, train_flows.size(),
      [&](std::size_t i) { return tokens_of(*train_flows[i]); });

  // Sharded count-then-merge training. Shards are contiguous chunks of the
  // flow order and merge ascending, so the merged model carries exactly the
  // counts (and first-seen vocabulary order) of serial training.
  NgramModel model(config.context_len);
  const std::size_t shards = stats::chunk_count(pool, train_flows.size());
  if (shards <= 1) {
    for (const auto& tokens : train_tokens) model.observe_sequence(tokens);
  } else {
    std::vector<NgramModel> shard_models(shards,
                                         NgramModel(config.context_len));
    stats::parallel_for(pool, train_flows.size(),
                        [&](std::size_t begin, std::size_t end,
                            std::size_t shard) {
                          for (std::size_t i = begin; i < end; ++i)
                            shard_models[shard].observe_sequence(
                                train_tokens[i]);
                        });
    for (const auto& shard_model : shard_models) model.merge(shard_model);
  }

  const std::size_t max_k =
      *std::max_element(config.ks.begin(), config.ks.end());

  // Scoring shards accumulate integer hit counters and merge by addition —
  // order-insensitive, so accuracy is identical for any thread count.
  struct EvalAcc {
    std::vector<std::uint64_t> hits;  // parallel to config.ks
    std::uint64_t predictions = 0;
    void merge(const EvalAcc& other) {
      if (hits.size() < other.hits.size()) hits.resize(other.hits.size(), 0);
      for (std::size_t i = 0; i < other.hits.size(); ++i)
        hits[i] += other.hits[i];
      predictions += other.predictions;
    }
  };
  const auto scored = stats::parallel_reduce<EvalAcc>(
      pool, test_flows.size(),
      [&](EvalAcc& acc, std::size_t begin, std::size_t end) {
        acc.hits.assign(config.ks.size(), 0);
        for (std::size_t f = begin; f < end; ++f) {
          const auto tokens = tokens_of(*test_flows[f]);
          for (std::size_t i = 1; i < tokens.size(); ++i) {
            const std::size_t ctx = std::min(config.context_len, i);
            const std::span<const std::string> history(&tokens[i - ctx], ctx);
            const auto predictions = model.predict(history, max_k);
            ++acc.predictions;
            for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
              const auto limit = std::min(config.ks[ki], predictions.size());
              for (std::size_t p = 0; p < limit; ++p) {
                if (predictions[p].token == tokens[i]) {
                  ++acc.hits[ki];
                  break;
                }
              }
            }
          }
        }
      });

  result.predictions = scored.predictions;
  for (std::size_t ki = 0; ki < config.ks.size(); ++ki) {
    const std::uint64_t k_hits = ki < scored.hits.size() ? scored.hits[ki] : 0;
    result.accuracy_at[config.ks[ki]] =
        result.predictions == 0
            ? 0.0
            : static_cast<double>(k_hits) /
                  static_cast<double>(result.predictions);
  }
  return result;
}

}  // namespace

NgramAccuracy evaluate_ngram(const logs::Dataset& ds,
                             const NgramEvalConfig& config) {
  const auto flows = logs::extract_client_flows(ds, config.min_flow_requests);
  const auto& records = ds.records();
  return evaluate_flows(
      flows,
      [&](std::size_t idx) -> std::string_view { return records[idx].url; },
      config);
}

NgramAccuracy evaluate_ngram(const logs::TableView& view,
                             const NgramEvalConfig& config) {
  const auto flows = logs::extract_client_flows(view, config.min_flow_requests);
  return evaluate_flows(
      flows,
      // Flow indices are view positions; tokens come from the dictionary.
      [&](std::size_t idx) -> std::string_view {
        return view.table().url(view[idx]);
      },
      config);
}

}  // namespace jsoncdn::core
