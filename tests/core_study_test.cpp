// End-to-end integration: scenario -> workload -> CDN -> logs -> analyses.
// These tests assert the *paper-shaped* properties of the full pipeline at
// small scale, with tolerances wide enough for sampling noise.
#include "core/study.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.h"
#include "logs/csv.h"
#include "workload/scenario.h"
#include "workload/traffic_mix.h"

namespace jsoncdn::core {
namespace {

const StudyResult& small_short_term_study() {
  static const StudyResult result = [] {
    StudyConfig config;
    config.workload = workload::short_term_scenario(0.008, 2024);
    config.ngram_configs = {{1, {1, 5, 10}, 0.8, false, 2, 17},
                            {1, {1, 5, 10}, 0.8, true, 2, 17}};
    return run_study(config);
  }();
  return result;
}

TEST(Study, ProducesAllCharacterizationOutputs) {
  const auto& r = small_short_term_study();
  EXPECT_GT(r.dataset.size(), 10000u);
  EXPECT_GT(r.json.size(), 1000u);
  ASSERT_TRUE(r.source.has_value());
  ASSERT_TRUE(r.methods.has_value());
  ASSERT_TRUE(r.cacheability.has_value());
  ASSERT_TRUE(r.sizes.has_value());
  ASSERT_TRUE(r.heatmap.has_value());
  EXPECT_FALSE(r.domains.empty());
  EXPECT_FALSE(r.periodicity.has_value());  // not requested
}

TEST(Study, Figure3DeviceMixInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: mobile >= 55%, embedded ~12%, unknown ~24%.
  EXPECT_GT(source.device_share(http::DeviceType::kMobile), 0.52);
  EXPECT_NEAR(source.device_share(http::DeviceType::kEmbedded), 0.12, 0.05);
  EXPECT_NEAR(source.device_share(http::DeviceType::kUnknown), 0.24, 0.07);
}

TEST(Study, BrowserSharesInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: 88% non-browser; mobile browsers 2.5% of JSON traffic.
  EXPECT_GT(source.non_browser_share(), 0.80);
  EXPECT_NEAR(source.mobile_browser_share(), 0.025, 0.03);
}

TEST(Study, UaStringDistributionInPaperBands) {
  const auto& source = *small_short_term_study().source;
  // Paper: 73% mobile / 17% embedded / 3% desktop / 7% unknown UA strings.
  EXPECT_NEAR(source.ua_string_share(http::DeviceType::kMobile), 0.73, 0.08);
  EXPECT_NEAR(source.ua_string_share(http::DeviceType::kEmbedded), 0.17,
              0.06);
  EXPECT_LT(source.ua_string_share(http::DeviceType::kDesktop), 0.10);
}

TEST(Study, MethodMixInPaperBands) {
  const auto& methods = *small_short_term_study().methods;
  // Paper: 84% GET; 96% of the rest POST.
  EXPECT_NEAR(methods.get_share(), 0.84, 0.05);
  EXPECT_GT(methods.post_share_of_non_get(), 0.85);
}

TEST(Study, CacheabilityInPaperBands) {
  const auto& cache = *small_short_term_study().cacheability;
  // Paper: ~55% of JSON traffic uncacheable.
  EXPECT_NEAR(cache.uncacheable_share(), 0.55, 0.12);
}

TEST(Study, SizeComparisonInPaperBands) {
  const auto& sizes = *small_short_term_study().sizes;
  // Paper: JSON ~24% smaller at p50, ~87% smaller at p75.
  // Wide band: the scaled-down catalog has few HTML objects, so the
  // request-weighted HTML median is seed-noisy (converges at larger scale).
  EXPECT_NEAR(sizes.p50_ratio(), 0.76, 0.22);
  EXPECT_NEAR(sizes.p75_ratio(), 0.13, 0.08);
  EXPECT_LT(sizes.json.mean, sizes.html.mean);
}

TEST(Study, HeatmapDomainSharesInPaperBands) {
  const auto& heatmap = *small_short_term_study().heatmap;
  // Paper: ~50% of domains never cache, ~30% always cache.
  EXPECT_NEAR(heatmap.never_cache_domain_share, 0.50, 0.12);
  EXPECT_NEAR(heatmap.always_cache_domain_share, 0.30, 0.12);
}

TEST(Study, NgramAccuracyMatchesTable3Shape) {
  const auto& rows = small_short_term_study().ngram;
  ASSERT_EQ(rows.size(), 2u);
  const auto& actual = rows[0];
  const auto& clustered = rows[1];
  ASSERT_FALSE(actual.clustered);
  ASSERT_TRUE(clustered.clustered);
  // Table 3 shape: clustered beats actual at every K; accuracy grows in K.
  for (const auto k : {1u, 5u, 10u}) {
    EXPECT_GT(clustered.accuracy_at.at(k), actual.accuracy_at.at(k)) << k;
  }
  EXPECT_LT(actual.accuracy_at.at(1), actual.accuracy_at.at(10));
  // Rough bands around the paper's numbers.
  EXPECT_NEAR(actual.accuracy_at.at(1), 0.45, 0.12);
  EXPECT_NEAR(clustered.accuracy_at.at(1), 0.65, 0.12);
  EXPECT_NEAR(clustered.accuracy_at.at(10), 0.87, 0.10);
}

TEST(Study, DeliveryMetricsConsistent) {
  const auto& r = small_short_term_study();
  EXPECT_EQ(r.delivery.requests(), r.dataset.size());
  EXPECT_GT(r.delivery.bytes_served(), 0u);
  EXPECT_GT(r.delivery.cacheable_hit_ratio(), 0.0);
  EXPECT_LT(r.delivery.cacheable_hit_ratio(), 1.0);
}

TEST(Study, DatasetSurvivesCsvRoundTrip) {
  const auto& r = small_short_term_study();
  std::stringstream stream;
  logs::LogWriter writer(stream);
  for (std::size_t i = 0; i < 500; ++i) writer.write(r.dataset[i]);
  logs::LogReader reader(stream);
  const auto back = reader.read_all();
  ASSERT_EQ(back.size(), 500u);
  EXPECT_EQ(reader.malformed_lines(), 0u);
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].url, r.dataset[i].url);
    EXPECT_EQ(back[i].client_id, r.dataset[i].client_id);
    EXPECT_EQ(back[i].cache_status, r.dataset[i].cache_status);
  }
}

TEST(Study, ReportRenderersProduceOutput) {
  const auto& r = small_short_term_study();
  EXPECT_NE(render_source(*r.source).find("mobile"), std::string::npos);
  EXPECT_NE(render_headline(*r.methods, *r.cacheability, *r.sizes)
                .find("GET share"),
            std::string::npos);
  EXPECT_NE(render_heatmap(*r.heatmap).find("Figure 4"), std::string::npos);
  EXPECT_NE(render_ngram_table(r.ngram).find("Table 3"), std::string::npos);
}

TEST(Study, GroundTruthNeverLeaksIntoLogs) {
  // The dataset must contain anonymized ids, never raw 10.x addresses.
  const auto& r = small_short_term_study();
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_EQ(r.dataset[i].client_id.find("10."), std::string::npos);
    EXPECT_EQ(r.dataset[i].client_id.size(), 16u);
  }
}

TEST(TrafficMix, InterpolationHitsEndpoints) {
  workload::GrowthConfig config;
  const auto start = workload::interpolate_mix(config, 0);
  const auto end = workload::interpolate_mix(config, config.n_quarters - 1);
  EXPECT_NEAR(start.mobile_app, config.mix_2016.mobile_app, 1e-9);
  EXPECT_NEAR(end.mobile_app, config.mix_2019.mobile_app, 1e-9);
  EXPECT_THROW((void)workload::interpolate_mix(config, -1),
               std::invalid_argument);
  EXPECT_THROW((void)workload::interpolate_mix(config, config.n_quarters),
               std::invalid_argument);
}

TEST(TrafficMix, SizeShiftReachesConfiguredScale) {
  workload::GrowthConfig config;
  EXPECT_DOUBLE_EQ(workload::json_size_log_shift_at(config, 0), 0.0);
  EXPECT_NEAR(std::exp(workload::json_size_log_shift_at(
                  config, config.n_quarters - 1)),
              config.json_size_total_scale, 1e-9);
}

TEST(TrafficMix, Figure1RatioGrowsAcrossTheSpan) {
  workload::GrowthConfig config;
  config.clients_per_quarter = 500;
  config.n_quarters = 7;  // sample fewer quarters for test speed
  const auto series = workload::simulate_growth(config);
  ASSERT_EQ(series.size(), 7u);
  EXPECT_GT(series.front().json_html_ratio, 0.0);
  // Headline shape: the ratio grows substantially start -> end.
  EXPECT_GT(series.back().json_html_ratio,
            series.front().json_html_ratio * 1.5);
  // Median JSON body size shrinks (means carry Pareto-tail noise).
  EXPECT_LT(series.back().median_json_bytes,
            series.front().median_json_bytes * 0.90);
  // Labels advance.
  EXPECT_EQ(series.front().label, "2016Q1");
  EXPECT_EQ(series[4].label, "2017Q1");
}

}  // namespace
}  // namespace jsoncdn::core
