// Quickstart: generate a small synthetic CDN trace, run the full §4
// characterization, and print the paper-style report. ~1 second runtime.
//
//   $ ./quickstart [scale]
//
#include <cstdlib>
#include <iostream>

#include "core/report.h"
#include "core/study.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;

  const double scale = argc > 1 ? std::atof(argv[1]) : 0.002;
  core::StudyConfig config;
  config.workload = workload::short_term_scenario(scale);
  config.run_characterization = true;

  std::cout << "jsoncdn quickstart: short-term scenario at scale " << scale
            << "\n\n";
  const auto result = core::run_study(config);

  std::cout << "dataset: " << result.dataset.size() << " records, "
            << result.json.size() << " JSON, "
            << result.dataset.distinct_domains() << " domains, "
            << result.dataset.distinct_clients() << " clients\n\n";

  std::cout << core::render_source(*result.source) << "\n";
  std::cout << core::render_headline(*result.methods, *result.cacheability,
                                     *result.sizes)
            << "\n";
  std::cout << core::render_heatmap(*result.heatmap) << "\n";

  const auto latency = result.delivery.latency_summary();
  std::cout << "delivery: overall hit ratio "
            << result.delivery.overall_hit_ratio() << ", origin share "
            << result.delivery.origin_share() << ", median latency "
            << latency.p50 * 1000.0 << " ms\n";
  return 0;
}
