#include "http/headers.h"

#include <algorithm>
#include <cctype>

namespace jsoncdn::http {

bool iequals(std::string_view a, std::string_view b) noexcept {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

void HeaderMap::add(std::string_view name, std::string_view value) {
  fields_.push_back({std::string(name), std::string(value)});
}

void HeaderMap::set(std::string_view name, std::string_view value) {
  remove(name);
  add(name, value);
}

std::optional<std::string_view> HeaderMap::get(std::string_view name) const {
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) return f.value;
  }
  return std::nullopt;
}

std::vector<std::string_view> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& f : fields_) {
    if (iequals(f.name, name)) out.push_back(f.value);
  }
  return out;
}

bool HeaderMap::contains(std::string_view name) const {
  return get(name).has_value();
}

void HeaderMap::remove(std::string_view name) {
  std::erase_if(fields_,
                [&](const Field& f) { return iequals(f.name, name); });
}

}  // namespace jsoncdn::http
