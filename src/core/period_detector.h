// Pluggable period-detection strategies behind one interface, so the §5.1
// pipeline, the anomaly second pass, and the validator's detector matrix can
// swap methods without touching the flow plumbing.
//
// The portfolio (ROADMAP open item 2):
//   acf-fft        — the paper's Vlachos-style ACF + periodogram with a
//                    permutation test (PeriodicityDetector, unchanged and
//                    bit-identical to the pre-refactor output);
//   lomb-scargle   — event periodogram over raw timestamps with an analytic
//                    Poisson-null threshold; no binning, so jitter and
//                    dropout don't alias;
//   autoperiod     — periodogram candidates validated as ACF "hills"
//                    (Vlachos et al., autoperiod);
//   cfd-autoperiod — autoperiod over a first-differenced signal with
//                    clustered candidate bins (trend-robust variant);
//   multi-period   — iteratively subtracts each detected component's
//                    per-phase profile and re-runs the default pipeline on
//                    the residual, surfacing overlapping periods.
//
// All strategies share DetectorParams; Lomb-Scargle additionally reads the
// ls_* knobs. Strategies are deterministic given (times, rng state).
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/periodicity.h"
#include "stats/rng.h"

namespace jsoncdn::core {

class PeriodDetector {
 public:
  // Per-thread reusable buffers. Each strategy returns its own derived type
  // from make_scratch(); a scratch from one strategy must only be passed
  // back to that strategy. Never share one across threads.
  struct Scratch {
    virtual ~Scratch() = default;
  };

  virtual ~PeriodDetector() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::unique_ptr<Scratch> make_scratch() const = 0;
  // How many distinct periods the dataset pipeline should request per flow.
  // 1 for single-period strategies; >1 only for multi-period.
  [[nodiscard]] virtual std::size_t max_detections() const noexcept {
    return 1;
  }
  // True when a and b agree within the strategy's relative tolerance.
  [[nodiscard]] virtual bool periods_match(double a, double b) const
      noexcept = 0;

  // Validated entry points shared by every strategy: a flow containing any
  // non-finite timestamp or a strictly decreasing pair is rejected up front
  // (empty result / non-periodic detection), deterministically, before any
  // strategy code runs. Duplicate timestamps are legal input.
  [[nodiscard]] PeriodDetection detect(std::span<const double> times,
                                       stats::Rng& rng) const;
  [[nodiscard]] PeriodDetection detect(std::span<const double> times,
                                       stats::Rng& rng,
                                       Scratch& scratch) const;
  [[nodiscard]] std::vector<PeriodDetection> detect_all(
      std::span<const double> times, stats::Rng& rng,
      std::size_t max_periods) const;
  [[nodiscard]] std::vector<PeriodDetection> detect_all(
      std::span<const double> times, stats::Rng& rng, std::size_t max_periods,
      Scratch& scratch) const;

 protected:
  // Strategy body. `times` is guaranteed finite and ascending (duplicates
  // allowed); `scratch` is whatever make_scratch() returned.
  [[nodiscard]] virtual std::vector<PeriodDetection> do_detect_all(
      std::span<const double> times, stats::Rng& rng, std::size_t max_periods,
      Scratch& scratch) const = 0;
};

// ---- Registry -------------------------------------------------------------

struct DetectorInfo {
  DetectorStrategy strategy;
  std::string_view name;     // CLI spelling (--detector NAME)
  std::string_view summary;  // one-line description
};

// All known strategies, in enum order.
[[nodiscard]] std::span<const DetectorInfo> detector_registry() noexcept;

// CLI name of a strategy ("acf-fft", "lomb-scargle", ...).
[[nodiscard]] std::string_view detector_name(DetectorStrategy strategy);

// Inverse lookup; throws std::invalid_argument on an unknown name.
[[nodiscard]] DetectorStrategy detector_strategy_from_name(
    std::string_view name);

// Constructs the strategy. Throws std::invalid_argument on invalid params
// (same validation as PeriodicityDetector, plus ls_* sanity for LS).
[[nodiscard]] std::unique_ptr<PeriodDetector> make_period_detector(
    DetectorStrategy strategy, const DetectorParams& params);

}  // namespace jsoncdn::core
