// §5.1 periodicity detection, extending Vlachos et al. (SDM'05) exactly as
// the paper describes:
//
//   (1) compute the autocorrelation (time domain) and Fourier periodogram
//       (frequency domain) of each flow's 1-second-binned request signal;
//   (2) randomly permute the flow's inter-arrival gaps x times, recording the
//       max autocorrelation peak and max periodogram power per permutation;
//   (3) take the (x-1)-th largest of those maxima as significance thresholds
//       (x = 100 => ~p = 0.01);
//   (4) line up significant periodogram frequencies with significant
//       autocorrelation peaks; the matched, ACF-refined period is the flow
//       period — or no period at all, after noise thresholding.
//
// A client-object flow is labelled periodic iff both it and its object flow
// have a detected period and the two match. The detector returns at most one
// period per flow (multi-period analysis is future work in the paper too).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "logs/dataset.h"
#include "logs/table.h"
#include "stats/autocorrelation.h"
#include "stats/rng.h"

namespace jsoncdn::core {

// Pluggable detection strategies (core/period_detector.h). kAcfFft is the
// paper's method and the default everywhere; the others trade its uniform
// binning for robustness on jittered, drifting, or sparse flows. The enum
// lives here so PeriodicityConfig can carry a selector without pulling the
// strategy interface into every include of the report types.
enum class DetectorStrategy {
  kAcfFft,         // §5.1 ACF + periodogram with permutation test (default)
  kLombScargle,    // event periodogram on raw timestamps, no binning
  kAutoperiod,     // periodogram candidates validated on ACF hills
  kCfdAutoperiod,  // autoperiod + detrending + clustered candidate bins
  kMultiPeriod,    // iteratively subtracts detected components
};

struct DetectorParams {
  double sample_interval = 1.0;   // paper: 1 s (network jitter floor)
  std::size_t permutations = 100; // paper: x = 100
  // Long flows are re-binned so the signal stays <= this many samples; the
  // effective interval never drops below sample_interval. Pure optimization:
  // periods of interest (>= 30 s) stay far above the Nyquist limit.
  std::size_t max_signal_samples = 8192;
  // Signal length also scales with flow density: a flow of n events is
  // binned into at most samples_per_event * n bins. For a periodic flow the
  // period then spans ~samples_per_event bins — ample resolution — while
  // sparse flows avoid FFTs over mostly-zero signals.
  std::size_t samples_per_event = 16;
  // Relative tolerance when matching an ACF peak to a periodogram frequency
  // (and an object period to a client period).
  double period_match_tolerance = 0.15;
  // A period must fit this many times into the observation span to count.
  double min_cycles = 3.0;
  std::size_t min_requests = 4;   // below this, no detection attempt

  // ---- Lomb-Scargle (kLombScargle) knobs; ignored by other strategies ----
  // Frequency oversampling of the event periodogram grid.
  double ls_oversample = 4.0;
  // Grid size cap: the grid is coarsened (never truncated) beyond this.
  std::size_t ls_max_frequencies = 8192;
  // Dense flows are strided down to this many events before the O(n*M) scan.
  std::size_t ls_max_events = 4096;
  // A detected period must explain at least this share of interarrival gaps
  // (each within 25% of a multiple of the period). This is the precision
  // guard standing in for the ACF cross-check: the analytic Poisson-null
  // threshold alone over-fires on clumpy session flows.
  double ls_min_gap_agreement = 0.34;
};

struct PeriodDetection {
  bool periodic = false;
  double period_seconds = 0.0;
  double acf_peak_value = 0.0;    // ACF at the detected period lag
  double periodogram_power = 0.0;
  double acf_threshold = 0.0;     // permutation-derived
  double power_threshold = 0.0;
};

// Reusable buffers for detect()/detect_all(): the binned signal, its
// shuffled copies, the fused-FFT workspace/outputs, and the permutation
// maxima. The permutation test runs ~100 spectral passes per flow across
// thousands of flows, so carrying one scratch per worker thread removes
// every per-permutation (and per-flow) allocation from the hot loop.
// Contents carry no state between calls; never share one across threads.
struct DetectScratch {
  stats::SpectralWorkspace workspace;
  stats::SpectralAnalysis spectral;       // observed signal
  stats::SpectralAnalysis null_spectral;  // reused per permutation
  std::vector<double> signal;
  std::vector<double> shuffled;
  std::vector<double> null_acf_max;
  std::vector<double> null_power_max;
};

class PeriodicityDetector {
 public:
  explicit PeriodicityDetector(const DetectorParams& params);

  // Detects the most significant period of an ascending timestamp sequence.
  // `rng` drives the permutation null model only.
  [[nodiscard]] PeriodDetection detect(std::span<const double> times,
                                       stats::Rng& rng) const;
  // Same, with caller-owned scratch buffers (hot-loop variant).
  [[nodiscard]] PeriodDetection detect(std::span<const double> times,
                                       stats::Rng& rng,
                                       DetectScratch& scratch) const;

  // Multi-period extension (the paper's future work: "we assume a flow only
  // contains one significant period and leave multi-period analysis for
  // future work"). Returns every distinct significant period, strongest ACF
  // peak first; periods that are near-multiples of an already-accepted
  // period are folded into it rather than reported again. detect() is
  // equivalent to detect_all(...).front() when non-empty.
  [[nodiscard]] std::vector<PeriodDetection> detect_all(
      std::span<const double> times, stats::Rng& rng,
      std::size_t max_periods = 4) const;
  [[nodiscard]] std::vector<PeriodDetection> detect_all(
      std::span<const double> times, stats::Rng& rng, std::size_t max_periods,
      DetectScratch& scratch) const;

  [[nodiscard]] const DetectorParams& params() const noexcept {
    return params_;
  }

  // True when a and b agree within the configured relative tolerance.
  [[nodiscard]] bool periods_match(double a, double b) const noexcept;

 private:
  DetectorParams params_;
};

// ---- Dataset-level analysis ----------------------------------------------

struct ClientPeriodRecord {
  std::string client;
  bool periodic = false;          // client flow has a period at all
  double period_seconds = 0.0;
  std::size_t requests = 0;
  bool matches_object = false;    // period agrees with the object period
  // Additional distinct periods beyond the primary, strongest first. Only
  // the multi-period strategy fills these; empty for every single-period
  // strategy, so existing consumers are unchanged.
  std::vector<double> extra_periods;
};

struct ObjectPeriodicity {
  std::string url;
  bool object_periodic = false;
  double object_period_seconds = 0.0;
  std::size_t total_requests = 0;
  std::vector<ClientPeriodRecord> clients;  // analyzed client flows
  std::vector<double> extra_periods;        // multi-period strategy only
  std::size_t periodic_client_count = 0;    // matching clients
  double periodic_client_share = 0.0;       // of analyzed clients (Fig. 6)
  std::size_t periodic_requests = 0;        // requests in matching flows
  double uncacheable_share = 0.0;           // over the whole object flow
  double upload_share = 0.0;
};

struct PeriodicityConfig {
  DetectorParams detector;
  // Which detection method runs per flow (core/period_detector.h). The
  // default reproduces the paper's ACF+FFT pipeline bit-identically.
  DetectorStrategy strategy = DetectorStrategy::kAcfFft;
  logs::FlowFilter flow_filter;   // paper: >=10 requests, >=10 clients
  std::uint64_t seed = 0x9e110d;  // permutation-test randomness
  // Worker threads for the per-flow fan-out: 0 = auto (JSONCDN_THREADS env,
  // else hardware_concurrency). Results are bit-identical for any value —
  // randomness is forked per flow and results placed in flow order.
  std::size_t threads = 0;
  // When nonzero, periodic_request_share is computed against this request
  // count instead of the input dataset's size. The streaming pipeline feeds
  // the detector only triage-selected candidate flows, but the share it
  // reports must stay relative to the full stream.
  std::size_t total_requests_override = 0;
};

struct PeriodicityReport {
  std::vector<ObjectPeriodicity> objects;
  std::size_t total_requests = 0;      // across the input dataset
  std::size_t periodic_requests = 0;   // in matching client flows
  double periodic_request_share = 0.0; // the paper's 6.3%
  double periodic_uncacheable_share = 0.0;  // the paper's 56.2%
  double periodic_upload_share = 0.0;       // the paper's 78%
  // Detected object periods (Fig. 5 histogram input), one per periodic
  // object.
  std::vector<double> object_periods;
  // Periodic-client share per periodic object (Fig. 6 CDF input).
  std::vector<double> periodic_client_shares;
};

// Runs the full §5.1 pipeline over a dataset (callers pass the JSON-filtered
// dataset to match the paper).
[[nodiscard]] PeriodicityReport analyze_periodicity(
    const logs::Dataset& ds, const PeriodicityConfig& config);

// Columnar variant: same pipeline over a LogTable view (callers pass the
// JSON-row selection). Flow grouping keys on interned u32 symbols instead of
// hashing strings per record; the report is bit-identical to the Dataset
// overload on the equivalent rows.
[[nodiscard]] PeriodicityReport analyze_periodicity(
    const logs::TableView& view, const PeriodicityConfig& config);

}  // namespace jsoncdn::core
