#include "workload/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "workload/scenario.h"

namespace jsoncdn::workload {
namespace {

GeneratorConfig small_config(std::uint64_t seed = 11) {
  GeneratorConfig config;
  config.seed = seed;
  config.duration_seconds = 1200.0;
  config.n_clients = 400;
  config.catalog.domains_per_industry = 1;
  return config;
}

TEST(WorkloadGenerator, DeterministicForSameSeed) {
  WorkloadGenerator a(small_config());
  WorkloadGenerator b(small_config());
  const auto wa = a.generate();
  const auto wb = b.generate();
  ASSERT_EQ(wa.events.size(), wb.events.size());
  for (std::size_t i = 0; i < wa.events.size(); ++i) {
    EXPECT_EQ(wa.events[i].url, wb.events[i].url);
    EXPECT_EQ(wa.events[i].client_address, wb.events[i].client_address);
    EXPECT_DOUBLE_EQ(wa.events[i].time, wb.events[i].time);
  }
}

TEST(WorkloadGenerator, RepeatedGenerateCallsAgree) {
  WorkloadGenerator gen(small_config());
  const auto w1 = gen.generate();
  const auto w2 = gen.generate();
  EXPECT_EQ(w1.events.size(), w2.events.size());
}

TEST(WorkloadGenerator, DifferentSeedsDiffer) {
  WorkloadGenerator a(small_config(1));
  WorkloadGenerator b(small_config(2));
  EXPECT_NE(a.generate().events.size(), b.generate().events.size());
}

TEST(WorkloadGenerator, EventsSortedAndInWindow) {
  WorkloadGenerator gen(small_config());
  const auto w = gen.generate();
  ASSERT_FALSE(w.events.empty());
  for (std::size_t i = 0; i < w.events.size(); ++i) {
    EXPECT_GE(w.events[i].time, 0.0);
    EXPECT_LT(w.events[i].time, 1200.0);
    if (i > 0) EXPECT_LE(w.events[i - 1].time, w.events[i].time);
  }
}

TEST(WorkloadGenerator, AllUrlsResolveInCatalog) {
  WorkloadGenerator gen(small_config());
  const auto w = gen.generate();
  for (const auto& ev : w.events) {
    EXPECT_NE(gen.catalog().objects().find(ev.url), nullptr) << ev.url;
  }
}

TEST(WorkloadGenerator, GroundTruthCountsConsistent) {
  WorkloadGenerator gen(small_config());
  const auto w = gen.generate();
  EXPECT_EQ(w.truth.total_events, w.events.size());
  EXPECT_EQ(w.truth.clients.size(), 400u);
  std::size_t periodic_clients = 0;
  for (const auto& ct : w.truth.clients) {
    if (ct.runs_periodic_flow) ++periodic_clients;
  }
  EXPECT_GE(w.truth.periodic_flows.size(), periodic_clients * 0);
  for (const auto& pt : w.truth.periodic_flows) {
    EXPECT_GT(pt.period_seconds, 0.0);
    EXPECT_GT(pt.request_count, 0u);
  }
}

TEST(WorkloadGenerator, ClientAddressesUnique) {
  WorkloadGenerator gen(small_config());
  const auto w = gen.generate();
  std::unordered_set<std::string> addresses;
  for (const auto& ct : w.truth.clients) addresses.insert(ct.address);
  EXPECT_EQ(addresses.size(), w.truth.clients.size());
}

TEST(WorkloadGenerator, PopulationSharesApproximatelyRespected) {
  auto config = small_config();
  config.n_clients = 4000;
  WorkloadGenerator gen(config);
  const auto w = gen.generate();
  std::size_t mobile_app = 0;
  std::size_t embedded = 0;
  for (const auto& ct : w.truth.clients) {
    if (ct.profile_class == ProfileClass::kMobileApp) ++mobile_app;
    if (ct.profile_class == ProfileClass::kEmbedded) ++embedded;
  }
  const double total = static_cast<double>(w.truth.clients.size());
  EXPECT_NEAR(mobile_app / total, 0.53, 0.05);  // weights are renormalized
  EXPECT_NEAR(embedded / total, 0.13, 0.04);
}

TEST(WorkloadGenerator, TemplateMapCoversAppUrls) {
  WorkloadGenerator gen(small_config());
  const auto w = gen.generate();
  for (const auto& graph : gen.app_graphs()) {
    for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
      for (const auto& url : graph.urls_of(t)) {
        ASSERT_TRUE(w.truth.template_of_url.contains(url)) << url;
      }
    }
  }
}

TEST(WorkloadGenerator, SharedCatalogSeedYieldsSameEcosystem) {
  auto c1 = small_config(100);
  auto c2 = small_config(200);
  c1.catalog_seed = 77;
  c2.catalog_seed = 77;
  WorkloadGenerator a(c1);
  WorkloadGenerator b(c2);
  ASSERT_EQ(a.catalog().objects().size(), b.catalog().objects().size());
  for (std::size_t i = 0; i < a.catalog().objects().size(); ++i) {
    EXPECT_EQ(a.catalog().objects().at(i).url, b.catalog().objects().at(i).url);
  }
  // But the traffic differs.
  EXPECT_NE(a.generate().events.size(), b.generate().events.size());
}

TEST(WorkloadGenerator, RejectsBadConfig) {
  auto config = small_config();
  config.duration_seconds = 0.0;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
  config = small_config();
  config.n_clients = 0;
  EXPECT_THROW(WorkloadGenerator{config}, std::invalid_argument);
}

TEST(CanonicalPeriods, MatchFigure5Spikes) {
  const auto& periods = canonical_periods();
  ASSERT_FALSE(periods.empty());
  std::vector<double> values;
  for (const auto& p : periods) {
    EXPECT_GT(p.weight, 0.0);
    values.push_back(p.seconds);
  }
  for (const double expected : {30.0, 60.0, 120.0, 180.0, 600.0, 900.0,
                                1800.0}) {
    EXPECT_NE(std::find(values.begin(), values.end(), expected), values.end())
        << expected;
  }
}

TEST(Scenario, ShortTermMatchesTable2Shape) {
  const auto config = short_term_scenario(0.01, 1);
  EXPECT_DOUBLE_EQ(config.duration_seconds, 600.0);  // 10 minutes
  EXPECT_GT(config.catalog.domains_per_industry * kIndustryCount, 30u);
  EXPECT_GT(config.n_clients, 10000u);
}

TEST(Scenario, LongTermMatchesTable2Shape) {
  const auto config = long_term_scenario(0.01, 1);
  EXPECT_DOUBLE_EQ(config.duration_seconds, 86400.0);  // 24 hours
  // ~170 domains at full scale; far fewer than the short-term catalog.
  EXPECT_LT(config.catalog.domains_per_industry,
            short_term_scenario(0.01, 1).catalog.domains_per_industry);
}

TEST(Scenario, FullScaleApproximatesPaperDatasets) {
  const auto short_term = short_term_scenario(1.0, 1);
  EXPECT_NEAR(static_cast<double>(short_term.catalog.domains_per_industry) *
                  kIndustryCount,
              5000.0, 250.0);
  const auto long_term = long_term_scenario(1.0, 1);
  EXPECT_NEAR(static_cast<double>(long_term.catalog.domains_per_industry) *
                  kIndustryCount,
              170.0, 20.0);
}

TEST(Scenario, RejectsNonPositiveScale) {
  EXPECT_THROW((void)short_term_scenario(0.0), std::invalid_argument);
  EXPECT_THROW((void)long_term_scenario(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::workload
