// Per-origin circuit breaker: the standard closed / open / half-open state
// machine CDN edges run in front of failing origins. Consecutive failures
// trip the breaker; while open, requests are short-circuited (served stale
// or failed fast) without touching the origin; after a cooling-off period a
// limited number of probe requests decide whether to close it again.
//
// The machine is driven entirely by the caller's simulation clock — no wall
// time — so breaker state timelines replay bit-identically.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace jsoncdn::faults {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

[[nodiscard]] std::string_view to_string(BreakerState s) noexcept;

struct BreakerConfig {
  std::size_t failure_threshold = 5;    // consecutive failures that trip it
  double open_seconds = 30.0;           // cooling-off before probing
  std::size_t half_open_successes = 2;  // probe successes needed to close
};

struct BreakerTransition {
  double time = 0.0;
  BreakerState from = BreakerState::kClosed;
  BreakerState to = BreakerState::kClosed;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerConfig& config = {});

  // May a request be sent to the protected origin at `now`? Records the
  // open -> half-open transition when the cooling-off period has lapsed.
  [[nodiscard]] bool allow(double now);

  void record_success(double now);
  void record_failure(double now);

  // State at `now` without side effects (an elapsed open period reads as
  // half-open even before allow() observes it).
  [[nodiscard]] BreakerState state(double now) const noexcept;

  [[nodiscard]] std::uint64_t trips() const noexcept { return trips_; }
  [[nodiscard]] const std::vector<BreakerTransition>& timeline()
      const noexcept {
    return timeline_;
  }
  [[nodiscard]] const BreakerConfig& config() const noexcept {
    return config_;
  }

 private:
  void transition(double now, BreakerState to);

  BreakerConfig config_;
  BreakerState state_ = BreakerState::kClosed;
  std::size_t consecutive_failures_ = 0;
  std::size_t half_open_successes_ = 0;
  double open_until_ = 0.0;
  std::uint64_t trips_ = 0;
  std::vector<BreakerTransition> timeline_;
};

}  // namespace jsoncdn::faults
