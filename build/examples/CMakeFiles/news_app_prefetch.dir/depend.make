# Empty dependencies file for news_app_prefetch.
# This may be replaced when dependencies are built.
