// Device and agent classification from User-Agent strings.
//
// Stands in for the two databases the paper uses: Akamai's Edge Device
// Characteristics (device type) and useragentstring.com (browser detection).
// The classifier is rule-based over UA tokens: platform identifiers group
// devices ("Android", "iPhone", "Windows NT", console/watch/TV markers), a
// browser table separates browser from non-browser traffic, and anything
// unmatched — or an absent UA — is Unknown, exactly as in §3.2.
#pragma once

#include <string_view>

#include "http/user_agent.h"

namespace jsoncdn::http {

// Device half of the paper's traffic-source taxonomy (Fig. 2 / Fig. 3).
enum class DeviceType {
  kMobile,    // smartphones and tablets
  kDesktop,   // desktops and laptops
  kEmbedded,  // game consoles, smart watches, smart TVs, IoT
  kUnknown,   // missing or unidentifiable user agent
};

// What kind of software issued the request.
enum class AgentKind {
  kBrowser,    // well-formed browser UA
  kNativeApp,  // app UA (bundle ids, app tokens, mobile HTTP stacks)
  kLibrary,    // generic HTTP libraries / scripts (curl, okhttp bare, python)
  kUnknown,
};

[[nodiscard]] std::string_view to_string(DeviceType d) noexcept;
[[nodiscard]] std::string_view to_string(AgentKind a) noexcept;

struct DeviceClassification {
  DeviceType device = DeviceType::kUnknown;
  AgentKind agent = AgentKind::kUnknown;
  std::string_view os;        // "android", "ios", "windows", ... or ""
  [[nodiscard]] bool is_browser() const noexcept {
    return agent == AgentKind::kBrowser;
  }
};

// Classifies a tokenized UA. Deterministic, allocation-free, total.
[[nodiscard]] DeviceClassification classify_device(const UserAgent& ua);

// Convenience overload that tokenizes first.
[[nodiscard]] DeviceClassification classify_device(std::string_view raw_ua);

}  // namespace jsoncdn::http
