#include "cdn/network.h"

#include <algorithm>
#include <stdexcept>

#include "stats/hash.h"

namespace jsoncdn::cdn {

CdnNetwork::CdnNetwork(const workload::ObjectCatalog& catalog,
                       const NetworkParams& params)
    : fault_plan_(params.faults),
      origin_(catalog, params.origin),
      anonymizer_(params.anonymization_salt) {
  if (params.edge_count == 0)
    throw std::invalid_argument("CdnNetwork: edge_count == 0");
  origin_.set_fault_plan(&fault_plan_);
  edges_.reserve(params.edge_count);
  for (std::size_t i = 0; i < params.edge_count; ++i) {
    edges_.emplace_back(static_cast<std::uint32_t>(i), origin_, anonymizer_,
                        params.edge);
  }
}

std::size_t CdnNetwork::edge_for(std::string_view client_address) const {
  return stats::fnv1a64(client_address) % edges_.size();
}

logs::Dataset CdnNetwork::run(
    const std::vector<workload::RequestEvent>& events,
    PrefetchPolicy* policy) {
  logs::Dataset dataset;
  dataset.reserve(events.size());
  for (const auto& event : events) {
    auto& edge = edges_[edge_for(event.client_address)];
    dataset.add(edge.handle(event, policy));
  }
  dataset.sort_by_time();
  return dataset;
}

DeliveryMetrics CdnNetwork::total_metrics() const {
  DeliveryMetrics total;
  for (const auto& edge : edges_) total.merge(edge.metrics());
  return total;
}

ResilienceMetrics CdnNetwork::total_resilience() const {
  ResilienceMetrics total;
  for (const auto& edge : edges_) total.merge(edge.resilience());
  return total;
}

TwoClassDelivery CdnNetwork::total_two_class() const {
  TwoClassDelivery total;
  for (const auto& edge : edges_) total.merge(edge.two_class());
  return total;
}

std::vector<BreakerEvent> CdnNetwork::breaker_timeline() const {
  std::vector<BreakerEvent> events;
  for (const auto& edge : edges_) {
    auto per_edge = edge.breaker_timeline();
    events.insert(events.end(), per_edge.begin(), per_edge.end());
  }
  std::sort(events.begin(), events.end(),
            [](const BreakerEvent& a, const BreakerEvent& b) {
              if (a.transition.time != b.transition.time) {
                return a.transition.time < b.transition.time;
              }
              if (a.edge_id != b.edge_id) return a.edge_id < b.edge_id;
              return a.domain < b.domain;
            });
  return events;
}

}  // namespace jsoncdn::cdn
