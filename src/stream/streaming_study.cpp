#include "stream/streaming_study.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "http/device_db.h"
#include "http/mime.h"
#include "stats/hash.h"

namespace jsoncdn::stream {

namespace {

constexpr std::size_t device_index(http::DeviceType d) noexcept {
  return static_cast<std::size_t>(d);
}

// UA classification cache cap: far above any real UA corpus, but bounded so
// a flood of unique garbage UAs cannot grow the accumulator unboundedly.
constexpr std::size_t kUaCacheCap = 8192;

}  // namespace

StreamingAccumulator::StreamingAccumulator(const StreamingConfig& config)
    : config_(config),
      urls_(config.hll_precision),
      clients_(config.hll_precision),
      domains_(config.hll_precision),
      ua_strings_(config.hll_precision),
      ua_by_device_{HyperLogLog(config.hll_precision),
                    HyperLogLog(config.hll_precision),
                    HyperLogLog(config.hll_precision),
                    HyperLogLog(config.hll_precision)},
      url_counts_(config.cms_epsilon, config.cms_delta, /*seed=*/0x0415),
      client_counts_(config.cms_epsilon, config.cms_delta, /*seed=*/0x0416),
      top_urls_(config.heavy_hitters),
      top_clients_(config.heavy_hitters),
      json_sizes_(config.quantile_alpha, config.quantile_max_buckets),
      html_sizes_(config.quantile_alpha, config.quantile_max_buckets),
      triage_(config.triage) {}

void StreamingAccumulator::offer(const logs::LogRecord& record) {
  record.client_key_into(key_scratch_);
  offer_fields(record.timestamp, key_scratch_, record.user_agent,
               record.method, record.url, record.domain, record.content_type,
               record.status, record.response_bytes, record.cache_status);
}

void StreamingAccumulator::offer(const logs::LogTable& table,
                                 logs::LogTable::RowIndex row) {
  offer_fields(table.timestamp(row), table.client_key(row),
               table.user_agent(row), table.method(row), table.url(row),
               table.domain(row), table.content_type(row), table.status(row),
               table.response_bytes(row), table.cache_status(row));
}

void StreamingAccumulator::offer_fields(
    double timestamp, std::string_view client_key, std::string_view user_agent,
    http::Method method, std::string_view url, std::string_view domain,
    std::string_view content_type, int status, std::uint64_t response_bytes,
    logs::CacheStatus cache_status) {
  ++total_records_;
  first_ts_ = std::min(first_ts_, timestamp);
  last_ts_ = std::max(last_ts_, timestamp);

  // §4 size comparison runs over the full stream (all content types).
  const auto content = http::classify_content(content_type);
  const auto bytes = static_cast<double>(response_bytes);
  if (content == http::ContentClass::kJson) {
    json_sizes_.add(bytes);
    json_moments_.add(bytes);
    json_min_ = std::min(json_min_, bytes);
    json_max_ = std::max(json_max_, bytes);
  } else if (content == http::ContentClass::kHtml) {
    html_sizes_.add(bytes);
    html_moments_.add(bytes);
    html_min_ = std::min(html_min_, bytes);
    html_max_ = std::max(html_max_, bytes);
  }

  // Status mix is a delivery-health view over the whole stream (exact
  // counters, mirroring core::characterize_status record for record).
  ++status_.total;
  if (status >= 500) {
    ++status_.server_error_5xx;
    if (status == 504) ++status_.gateway_timeout_504;
  } else if (status >= 400) {
    ++status_.client_error_4xx;
  } else if (status >= 300) {
    ++status_.redirect_3xx;
  } else if (status >= 200) {
    ++status_.ok_2xx;
  }
  if (cache_status == logs::CacheStatus::kStale) ++status_.stale_served;
  if (cache_status == logs::CacheStatus::kError)
    ++status_.error_cache_status;
  if (cache_status == logs::CacheStatus::kShed) ++status_.shed;
  if (cache_status == logs::CacheStatus::kThrottled) ++status_.throttled;

  // Everything below mirrors the batch pipeline's JSON-only analyses.
  if (content != http::ContentClass::kJson) return;
  ++json_records_;

  ++methods_.total;
  switch (method) {
    case http::Method::kGet: ++methods_.get; break;
    case http::Method::kPost: ++methods_.post; break;
    default: ++methods_.other; break;
  }

  // Same rules as core::characterize_cacheability: ERROR carries no
  // cacheability signal, STALE is a hit served from CDN storage.
  switch (cache_status) {
    case logs::CacheStatus::kError:
    case logs::CacheStatus::kShed:
    case logs::CacheStatus::kThrottled:
      break;
    case logs::CacheStatus::kNotCacheable:
      ++cacheability_.uncacheable;
      break;
    case logs::CacheStatus::kHit:
    case logs::CacheStatus::kStale:
      ++cacheability_.cacheable;
      ++cacheability_.hits;
      break;
    case logs::CacheStatus::kMiss:
    case logs::CacheStatus::kRefreshHit:
      ++cacheability_.cacheable;
      break;
  }

  http::DeviceClassification cls;
  if (const auto it = ua_cache_.find(user_agent); it != ua_cache_.end()) {
    cls = it->second;
  } else {
    cls = http::classify_device(user_agent);
    if (ua_cache_.size() < kUaCacheCap)
      ua_cache_.emplace(std::string(user_agent), cls);
  }
  ++source_.total_requests;
  ++source_.requests_by_device[device_index(cls.device)];
  if (cls.is_browser()) {
    ++source_.browser_requests;
    if (cls.device == http::DeviceType::kMobile)
      ++source_.mobile_browser_requests;
  }
  if (user_agent.empty()) {
    ++source_.missing_ua_requests;
  } else {
    const std::uint64_t ua_hash = stats::fnv1a64(user_agent);
    ua_strings_.add(ua_hash);
    ua_by_device_[device_index(cls.device)].add(ua_hash);
  }

  const std::uint64_t url_hash = stats::fnv1a64(url);
  const std::uint64_t client_hash = stats::fnv1a64(client_key);
  urls_.add(url_hash);
  clients_.add(client_hash);
  domains_.add(stats::fnv1a64(domain));
  url_counts_.add(url_hash);
  client_counts_.add(client_hash);
  top_urls_.offer(url);
  top_clients_.offer(client_key);
  triage_.offer(url, client_hash, timestamp);
}

void StreamingAccumulator::merge(const StreamingAccumulator& later) {
  total_records_ += later.total_records_;
  json_records_ += later.json_records_;
  first_ts_ = std::min(first_ts_, later.first_ts_);
  last_ts_ = std::max(last_ts_, later.last_ts_);

  methods_.merge(later.methods_);
  cacheability_.merge(later.cacheability_);
  status_.merge(later.status_);
  source_.merge(later.source_);

  urls_.merge(later.urls_);
  clients_.merge(later.clients_);
  domains_.merge(later.domains_);
  ua_strings_.merge(later.ua_strings_);
  for (std::size_t d = 0; d < ua_by_device_.size(); ++d)
    ua_by_device_[d].merge(later.ua_by_device_[d]);

  url_counts_.merge(later.url_counts_);
  client_counts_.merge(later.client_counts_);
  top_urls_.merge(later.top_urls_);
  top_clients_.merge(later.top_clients_);

  json_sizes_.merge(later.json_sizes_);
  html_sizes_.merge(later.html_sizes_);
  json_moments_.merge(later.json_moments_);
  html_moments_.merge(later.html_moments_);
  json_min_ = std::min(json_min_, later.json_min_);
  json_max_ = std::max(json_max_, later.json_max_);
  html_min_ = std::min(html_min_, later.html_min_);
  html_max_ = std::max(html_max_, later.html_max_);

  triage_.merge(later.triage_);

  for (const auto& [ua, cls] : later.ua_cache_) {
    if (ua_cache_.size() >= kUaCacheCap) break;
    ua_cache_.emplace(ua, cls);
  }
}

namespace {

stats::Summary summary_from_sketch(const QuantileSketch& sketch,
                                   const stats::RunningMoments& moments,
                                   double min_value, double max_value) {
  stats::Summary s;
  s.count = moments.count();
  if (s.count == 0) return s;
  s.mean = moments.mean();
  s.stddev = moments.stddev();
  s.min = min_value;
  s.max = max_value;
  s.p25 = sketch.quantile(0.25);
  s.p50 = sketch.quantile(0.50);
  s.p75 = sketch.quantile(0.75);
  s.p90 = sketch.quantile(0.90);
  s.p99 = sketch.quantile(0.99);
  return s;
}

}  // namespace

StreamingSummary StreamingAccumulator::summarize() const {
  StreamingSummary out;
  out.total_records = total_records_;
  out.json_records = json_records_;
  out.first_timestamp = total_records_ == 0 ? 0.0 : first_ts_;
  out.last_timestamp = total_records_ == 0 ? 0.0 : last_ts_;

  out.methods = methods_;
  out.cacheability = cacheability_;
  out.status = status_;
  out.source = source_;
  // The UA-string side of the breakdown is estimated: distinct-UA counting
  // is exactly what the batch path needs the full dataset for.
  out.source.total_ua_strings =
      static_cast<std::uint64_t>(std::llround(ua_strings_.estimate()));
  for (std::size_t d = 0; d < ua_by_device_.size(); ++d) {
    out.source.ua_strings_by_device[d] = static_cast<std::uint64_t>(
        std::llround(ua_by_device_[d].estimate()));
  }

  out.distinct_urls = urls_.estimate();
  out.distinct_clients = clients_.estimate();
  out.distinct_domains = domains_.estimate();
  out.distinct_ua_strings = ua_strings_.estimate();
  out.hll_standard_error = urls_.standard_error();

  out.top_urls = top_urls_.top(config_.heavy_hitters);
  out.top_clients = top_clients_.top(config_.heavy_hitters);
  out.heavy_hitter_error_bound = top_urls_.error_bound();

  out.json_sizes =
      summary_from_sketch(json_sizes_, json_moments_, json_min_, json_max_);
  out.html_sizes =
      summary_from_sketch(html_sizes_, html_moments_, html_min_, html_max_);
  out.quantile_alpha = config_.quantile_alpha;

  out.periodic_candidates = triage_.candidates();
  out.memory_bytes = memory_bytes();
  return out;
}

std::size_t StreamingAccumulator::memory_bytes() const {
  std::size_t bytes = sizeof(*this);
  bytes += urls_.memory_bytes() + clients_.memory_bytes() +
           domains_.memory_bytes() + ua_strings_.memory_bytes();
  for (const auto& hll : ua_by_device_) bytes += hll.memory_bytes();
  bytes += url_counts_.memory_bytes() + client_counts_.memory_bytes();
  bytes += top_urls_.memory_bytes() + top_clients_.memory_bytes();
  bytes += json_sizes_.memory_bytes() + html_sizes_.memory_bytes();
  bytes += triage_.memory_bytes();
  for (const auto& [ua, cls] : ua_cache_)
    bytes += ua.capacity() + sizeof(cls) + 2 * sizeof(void*);
  return bytes;
}

StreamingStudy::StreamingStudy(const StreamingConfig& config)
    : config_(config),
      threads_(stats::resolve_threads(config.threads)),
      pool_(threads_),
      state_(config) {}

void StreamingStudy::offer(const logs::LogRecord& record) {
  state_.offer(record);
  ++ingested_;
}

void StreamingStudy::ingest(std::span<const logs::LogRecord> chunk) {
  ingested_ += chunk.size();
  // Sharding pays for itself only when each worker gets a real slice; tiny
  // chunks go straight into the master state.
  if (threads_ <= 1 || chunk.size() < threads_ * 256) {
    for (const auto& record : chunk) state_.offer(record);
    return;
  }
  // One accumulator per contiguous subrange, merged in subrange order: the
  // exact shard-then-merge shape of the batch stages, so sketch guarantees
  // and determinism carry over (see the file comment).
  std::vector<StreamingAccumulator> shards(threads_,
                                           StreamingAccumulator(config_));
  pool_.run(threads_, [&](std::size_t s) {
    const auto [begin, end] = stats::chunk_range(chunk.size(), threads_, s);
    for (std::size_t i = begin; i < end; ++i) shards[s].offer(chunk[i]);
  });
  for (const auto& shard : shards) state_.merge(shard);
}

void StreamingStudy::ingest(const logs::LogTable& table,
                            std::span<const logs::LogTable::RowIndex> rows) {
  ingested_ += rows.size();
  // Identical shard geometry to the record-span overload: same inline
  // threshold, same chunk_range partition, same merge order — so streaming
  // a table produces the same summary as streaming the equivalent records.
  if (threads_ <= 1 || rows.size() < threads_ * 256) {
    for (const auto row : rows) state_.offer(table, row);
    return;
  }
  std::vector<StreamingAccumulator> shards(threads_,
                                           StreamingAccumulator(config_));
  pool_.run(threads_, [&](std::size_t s) {
    const auto [begin, end] = stats::chunk_range(rows.size(), threads_, s);
    for (std::size_t i = begin; i < end; ++i) shards[s].offer(table, rows[i]);
  });
  for (const auto& shard : shards) state_.merge(shard);
}

std::string render_streaming_summary(const StreamingSummary& summary,
                                     std::size_t top_n) {
  std::ostringstream out;
  auto pct = [](double v) {
    std::ostringstream o;
    o << std::fixed << std::setprecision(1) << v * 100.0 << "%";
    return o.str();
  };
  out << "Streaming summary (one-pass, bounded-memory sketches)\n";
  out << "  records: " << summary.total_records << " ("
      << summary.json_records << " JSON), span " << std::fixed
      << std::setprecision(1)
      << summary.last_timestamp - summary.first_timestamp << " s\n";
  out << "  sketch state: " << summary.memory_bytes / 1024 << " KiB\n";
  out << "  distinct (HLL, +/-" << pct(summary.hll_standard_error)
      << "): urls " << std::setprecision(0) << summary.distinct_urls
      << ", clients " << summary.distinct_clients << ", domains "
      << summary.distinct_domains << ", UA strings "
      << summary.distinct_ua_strings << "\n";
  out << "  GET share: " << pct(summary.methods.get_share())
      << "   POST share of non-GET: "
      << pct(summary.methods.post_share_of_non_get())
      << "   uncacheable: " << pct(summary.cacheability.uncacheable_share())
      << "\n";
  out << "  non-browser traffic: " << pct(summary.source.non_browser_share())
      << "   mobile requests: "
      << pct(summary.source.device_share(http::DeviceType::kMobile)) << "\n";
  out << "  JSON/HTML size ratio (sketch, +/-"
      << pct(summary.quantile_alpha) << "): p50 " << std::setprecision(2)
      << summary.json_html_p50_ratio() << ", p75 "
      << summary.json_html_p75_ratio() << "\n";
  out << "  top URLs (Space-Saving, max err "
      << static_cast<std::uint64_t>(summary.heavy_hitter_error_bound)
      << "):\n";
  for (std::size_t i = 0; i < summary.top_urls.size() && i < top_n; ++i) {
    const auto& hh = summary.top_urls[i];
    out << "    " << std::setw(8) << hh.count << " (+/-" << hh.error << ") "
        << hh.key << "\n";
  }
  // Only printed when the stream actually saw errors, so fault-free output
  // is unchanged.
  if (summary.status.server_error_5xx != 0 ||
      summary.status.stale_served != 0 ||
      summary.status.error_cache_status != 0) {
    out << "  errors: " << summary.status.server_error_5xx << " 5xx ("
        << pct(summary.status.error_share()) << " of requests, "
        << summary.status.gateway_timeout_504 << " timeouts), stale served "
        << summary.status.stale_served << ", logged ERROR "
        << summary.status.error_cache_status << "\n";
  }
  out << "  periodic-candidate flows (triage): "
      << summary.periodic_candidates.size() << "\n";
  for (std::size_t i = 0; i < summary.periodic_candidates.size() && i < top_n;
       ++i) {
    const auto& c = summary.periodic_candidates[i];
    out << "    " << std::setw(8) << c.requests << " reqs, ~"
        << std::setprecision(1) << c.estimated_clients << " clients, gap "
        << std::setprecision(2) << c.mean_gap << " s (cv "
        << c.gap_cv << ") " << c.key << "\n";
  }
  return out.str();
}

}  // namespace jsoncdn::stream
