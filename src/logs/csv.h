// Log (de)serialization as TSV — one record per line, tab-separated, with
// URL-style escaping of tabs/newlines inside fields. Edge servers in the
// simulator stream records through a LogWriter; analyses that want to work
// from files read them back with LogReader. Round-trip is lossless
// (property-tested).
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "logs/dataset.h"
#include "logs/record.h"

namespace jsoncdn::logs {

// Header line identifying the column layout / format version.
[[nodiscard]] std::string_view log_header() noexcept;

// Serializes one record to a single line (no trailing newline).
[[nodiscard]] std::string to_line(const LogRecord& record);

// Parses one line. Returns nullopt on malformed input (wrong column count,
// non-numeric numerics, unknown enums) — malformed log lines are data errors,
// skipped and counted by the reader, never exceptions. A trailing '\r'
// (CRLF line ending) is tolerated; files without a final newline parse the
// last row like any other.
[[nodiscard]] std::optional<LogRecord> from_line(std::string_view line);

// Streams records to an ostream, writing the header first.
class LogWriter {
 public:
  explicit LogWriter(std::ostream& out);
  void write(const LogRecord& record);
  [[nodiscard]] std::uint64_t written() const noexcept { return written_; }

 private:
  std::ostream& out_;
  std::uint64_t written_ = 0;
};

// Reads records from an istream; tolerates and counts malformed lines.
class LogReader {
 public:
  explicit LogReader(std::istream& in);
  // Reads everything that remains; `reserve_hint` pre-sizes the result
  // vector (see estimate_record_count for file-backed streams).
  [[nodiscard]] std::vector<LogRecord> read_all(std::size_t reserve_hint = 0);
  [[nodiscard]] std::uint64_t malformed_lines() const noexcept {
    return malformed_;
  }

 private:
  std::istream& in_;
  std::uint64_t malformed_ = 0;
};

// Estimated record count from the file size — a reserve hint, not a promise;
// 0 when the file cannot be stat'ed.
[[nodiscard]] std::size_t estimate_record_count(const std::string& path);

// Loads a whole log file into a Dataset, reserving capacity from the file
// size so the load does one allocation instead of log2(n) regrows. Throws
// std::runtime_error if the file cannot be opened; malformed lines are
// skipped and counted into `*malformed` when non-null.
[[nodiscard]] Dataset read_log_file(const std::string& path,
                                    std::uint64_t* malformed = nullptr);

struct FileReadStats {
  std::uint64_t records = 0;    // well-formed records delivered to fn
  std::uint64_t malformed = 0;  // lines skipped
};

// Streams a log file through `fn` in chunks of up to `chunk_size` records
// without ever materializing the whole file — the bounded-memory ingest path
// for stream::StreamingStudy. The span passed to fn is only valid for the
// duration of the call. Throws std::runtime_error if the file cannot be
// opened.
FileReadStats for_each_record(
    const std::string& path, std::size_t chunk_size,
    const std::function<void(std::span<const LogRecord>)>& fn);

}  // namespace jsoncdn::logs
