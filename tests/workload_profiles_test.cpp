#include "workload/device_profiles.h"

#include <gtest/gtest.h>

#include <set>

namespace jsoncdn::workload {
namespace {

constexpr ProfileClass kAllClasses[] = {
    ProfileClass::kMobileApp,      ProfileClass::kMobileBrowser,
    ProfileClass::kDesktopBrowser, ProfileClass::kEmbedded,
    ProfileClass::kLibrary,        ProfileClass::kNoUserAgent,
    ProfileClass::kGarbageUa,
};

TEST(Profiles, EveryClassHasAtLeastOneProfile) {
  for (const auto c : kAllClasses) {
    EXPECT_FALSE(profiles(c).empty()) << to_string(c);
  }
}

// The key consistency property: every built-in profile's UA must classify
// back to its ground-truth device/agent labels. If the classifier and the
// corpus disagree, the Fig. 3 reproduction silently degrades.
TEST(Profiles, ClassifierAgreesWithGroundTruth) {
  stats::Rng rng(1);
  for (const auto c : kAllClasses) {
    for (const auto& profile : profiles(c)) {
      const auto ua = materialize_user_agent(profile, rng);
      const auto classified = http::classify_device(ua);
      EXPECT_EQ(classified.device, profile.true_device)
          << profile.name << ": " << ua;
      EXPECT_EQ(classified.agent, profile.true_agent)
          << profile.name << ": " << ua;
    }
  }
}

TEST(Profiles, BrowserClassesAreBrowsers) {
  for (const auto& p : profiles(ProfileClass::kMobileBrowser)) {
    EXPECT_EQ(p.true_agent, http::AgentKind::kBrowser);
    EXPECT_EQ(p.true_device, http::DeviceType::kMobile);
  }
  for (const auto& p : profiles(ProfileClass::kDesktopBrowser)) {
    EXPECT_EQ(p.true_agent, http::AgentKind::kBrowser);
    EXPECT_EQ(p.true_device, http::DeviceType::kDesktop);
  }
}

TEST(Profiles, NoUserAgentClassEmitsEmptyString) {
  for (const auto& p : profiles(ProfileClass::kNoUserAgent)) {
    EXPECT_TRUE(p.user_agent.empty());
  }
}

TEST(Profiles, EmbeddedProfilesNeverBrowse) {
  for (const auto& p : profiles(ProfileClass::kEmbedded)) {
    EXPECT_NE(p.true_agent, http::AgentKind::kBrowser);
  }
}

TEST(MaterializeUserAgent, FillsVersionSlot) {
  stats::Rng rng(2);
  const auto& apps = profiles(ProfileClass::kMobileApp);
  const auto ua = materialize_user_agent(apps.front(), rng);
  EXPECT_EQ(ua.find("{v}"), std::string::npos);
  EXPECT_FALSE(ua.empty());
}

TEST(MaterializeUserAgent, ProducesMultipleVariants) {
  stats::Rng rng(3);
  const auto& apps = profiles(ProfileClass::kMobileApp);
  std::set<std::string> variants;
  for (int i = 0; i < 300; ++i) {
    variants.insert(materialize_user_agent(apps.front(), rng));
  }
  EXPECT_GT(variants.size(), 5u);
  EXPECT_LE(variants.size(),
            static_cast<std::size_t>(apps.front().version_variants));
}

TEST(MaterializeUserAgent, IdempotentWithoutSlot) {
  stats::Rng rng(4);
  const auto& libs = profiles(ProfileClass::kLibrary);
  EXPECT_EQ(materialize_user_agent(libs.front(), rng), libs.front().user_agent);
}

TEST(SampleProfile, ReturnsMemberOfClass) {
  stats::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto& p = sample_profile(ProfileClass::kEmbedded, rng);
    EXPECT_EQ(p.true_device, http::DeviceType::kEmbedded);
  }
}

TEST(ProfileClassNames, AreStable) {
  EXPECT_EQ(to_string(ProfileClass::kMobileApp), "mobile-app");
  EXPECT_EQ(to_string(ProfileClass::kGarbageUa), "garbage-ua");
}

}  // namespace
}  // namespace jsoncdn::workload
