// HTTP Server Push simulation (§5.2's second delivery mechanism).
#include <gtest/gtest.h>

#include "cdn/edge.h"
#include "cdn/origin.h"

namespace jsoncdn::cdn {
namespace {

class PushFixture : public ::testing::Test {
 protected:
  PushFixture() : origin_(catalog_, OriginParams{}), anonymizer_(5) {}

  void SetUp() override {
    workload::ObjectSpec a;
    a.url = "https://d/a";
    a.domain = "d";
    a.content_type = "application/json";
    a.cacheable = true;
    a.ttl_seconds = 600.0;
    a.body_bytes = 1000;
    catalog_.add(a);
    workload::ObjectSpec b = a;
    b.url = "https://d/b";
    catalog_.add(b);

    EdgeParams params;
    params.enable_push = true;
    params.push_validity_seconds = 30.0;
    edge_ = std::make_unique<EdgeServer>(0, origin_, anonymizer_, params);
  }

  static workload::RequestEvent request(const std::string& client,
                                        const std::string& url, double t) {
    workload::RequestEvent ev;
    ev.time = t;
    ev.client_address = client;
    ev.user_agent = "ua";
    ev.url = url;
    return ev;
  }

  workload::ObjectCatalog catalog_;
  Origin origin_;
  logs::Anonymizer anonymizer_;
  std::unique_ptr<EdgeServer> edge_;
};

// Policy that always predicts /b after anything.
class PredictB final : public PrefetchPolicy {
 public:
  std::vector<std::string> candidates(const logs::LogRecord&) override {
    return {"https://d/b"};
  }
};

TEST_F(PushFixture, PushedResponseAnswersNextRequestLocally) {
  PredictB policy;
  (void)edge_->handle(request("c1", "https://d/a", 0.0), &policy);
  EXPECT_EQ(edge_->metrics().pushes_sent(), 1u);

  const auto r = edge_->handle(request("c1", "https://d/b", 5.0));
  EXPECT_EQ(r.cache_status, logs::CacheStatus::kHit);
  EXPECT_EQ(edge_->metrics().pushes_used(), 1u);
  // The pushed answer is near-instant, far below even an edge hit.
  EXPECT_LT(edge_->metrics().latencies().back(), 0.002);
}

TEST_F(PushFixture, PushExpiresAfterValidityWindow) {
  PredictB policy;
  (void)edge_->handle(request("c1", "https://d/a", 0.0), &policy);
  const auto r = edge_->handle(request("c1", "https://d/b", 31.0));
  // Still a cache hit (prefetch warmed the edge), but not a push hit.
  EXPECT_EQ(r.cache_status, logs::CacheStatus::kHit);
  EXPECT_EQ(edge_->metrics().pushes_used(), 0u);
  EXPECT_GT(edge_->metrics().latencies().back(), 0.002);
}

TEST_F(PushFixture, PushIsPerClient) {
  PredictB policy;
  (void)edge_->handle(request("c1", "https://d/a", 0.0), &policy);
  // A different client did not receive the push.
  (void)edge_->handle(request("c2", "https://d/b", 1.0));
  EXPECT_EQ(edge_->metrics().pushes_used(), 0u);
}

TEST_F(PushFixture, PushConsumedOnlyOnce) {
  PredictB policy;
  (void)edge_->handle(request("c1", "https://d/a", 0.0), &policy);
  (void)edge_->handle(request("c1", "https://d/b", 1.0));
  (void)edge_->handle(request("c1", "https://d/b", 2.0));
  EXPECT_EQ(edge_->metrics().pushes_used(), 1u);
}

TEST_F(PushFixture, WasteAccounting) {
  PredictB policy;
  (void)edge_->handle(request("c1", "https://d/a", 0.0), &policy);
  (void)edge_->handle(request("c2", "https://d/a", 1.0), &policy);
  // Only c1 consumes its push.
  (void)edge_->handle(request("c1", "https://d/b", 2.0));
  EXPECT_EQ(edge_->metrics().pushes_sent(), 2u);
  EXPECT_EQ(edge_->metrics().pushes_used(), 1u);
  EXPECT_DOUBLE_EQ(edge_->metrics().push_waste(), 0.5);
  EXPECT_GT(edge_->metrics().push_bytes(), 0u);
}

// ---- Push-table sweep (memory hygiene) ------------------------------------

TEST_F(PushFixture, SizeTriggeredSweepDropsOnlyExpiredEntries) {
  EdgeParams params;
  params.enable_push = true;
  params.push_validity_seconds = 30.0;
  params.push_table_sweep_entries = 2;        // sweep once the table holds 3
  params.push_table_sweep_seconds = 1e9;      // isolate the size trigger
  EdgeServer edge(0, origin_, anonymizer_, params);
  PredictB policy;

  // Three pushes to distinct clients; by the third, the first has expired.
  (void)edge.handle(request("c1", "https://d/a", 0.0), &policy);
  (void)edge.handle(request("c2", "https://d/a", 20.0), &policy);
  EXPECT_EQ(edge.push_table_size(), 2u);
  (void)edge.handle(request("c3", "https://d/a", 40.0), &policy);
  // The sweep fired (3 > 2) and dropped only c1's expired entry.
  EXPECT_EQ(edge.push_table_size(), 2u);

  // The surviving fresh entries still answer locally: sweeping is invisible
  // to served traffic.
  (void)edge.handle(request("c2", "https://d/b", 41.0));
  (void)edge.handle(request("c3", "https://d/b", 42.0));
  EXPECT_EQ(edge.metrics().pushes_used(), 2u);
}

TEST_F(PushFixture, TimeTriggeredSweepBoundsIdleTable) {
  EdgeParams params;
  params.enable_push = true;
  params.push_validity_seconds = 30.0;
  params.push_table_sweep_entries = 1'000'000;  // never by size
  params.push_table_sweep_seconds = 60.0;
  EdgeServer edge(0, origin_, anonymizer_, params);
  PredictB policy;

  (void)edge.handle(request("c1", "https://d/a", 0.0), &policy);
  EXPECT_EQ(edge.push_table_size(), 1u);
  // c1 never returns; its entry expires at t=30. A later request from
  // another client crosses the sweep period and collects it.
  (void)edge.handle(request("c2", "https://d/a", 70.0), &policy);
  EXPECT_EQ(edge.push_table_size(), 1u);  // only c2's fresh push remains
}

TEST_F(PushFixture, DisabledPushNeverPushes) {
  EdgeParams params;  // enable_push defaults to false
  EdgeServer plain(1, origin_, anonymizer_, params);
  PredictB policy;
  (void)plain.handle(request("c1", "https://d/a", 0.0), &policy);
  EXPECT_EQ(plain.metrics().pushes_sent(), 0u);
  EXPECT_GT(plain.metrics().prefetches_issued(), 0u);  // prefetch still works
}

}  // namespace
}  // namespace jsoncdn::cdn
