// Top-level workload generator: builds a client population, assigns each
// client a behaviour model, and merges all request events into one
// time-ordered stream with full ground truth. This is the stand-in for the
// paper's production traffic; every figure/table is regenerated from its
// output, and the ground truth lets tests score the paper's detectors
// (something the original study could not do).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "workload/adversary.h"
#include "workload/app_graph.h"
#include "workload/catalog.h"
#include "workload/device_profiles.h"
#include "workload/sessions.h"

namespace jsoncdn::workload {

// Population mix over profile classes (fractions of clients; need not sum to
// exactly 1 — they are used as weights). Defaults approximate the paper's
// Fig. 3 request shares: mobile >= 55%, embedded ~12%, unknown ~24%,
// desktop small, and 88% non-browser overall.
struct PopulationShares {
  double mobile_app = 0.50;
  double mobile_browser = 0.06;
  double desktop_browser = 0.08;
  double embedded = 0.12;
  double library = 0.03;
  double no_ua = 0.165;
  double garbage_ua = 0.03;
};

// Probability that a client of a class runs a periodic machine-to-machine
// flow in addition to (or instead of) its interactive behaviour.
struct PeriodicShares {
  double mobile_app = 0.03;   // apps with background refresh/telemetry
  double embedded = 0.55;     // IoT, watches: mostly periodic by nature
  double library = 0.35;      // cron-style scripts
  double no_ua = 0.10;
  double garbage_ua = 0.10;
};

// Hostile-periodic stress layered onto every periodic flow — the regimes
// the binned ACF+FFT detector is weak on, each one knob. All knobs are
// inert at their defaults: no extra RNG draws, so the event stream is
// bit-identical to a config without them.
struct PeriodicStress {
  // Per-flow jitter floor as a fraction of the flow's period (e.g. 0.30 =
  // sigma is 30% of the period). The larger of this and the absolute
  // periodic_jitter_stddev wins.
  double jitter_relative = 0.0;
  // Clock drift per cycle (sessions.h: tick k advances by
  // period * (1 + drift_per_cycle * k)).
  double drift_per_cycle = 0.0;
  // Overrides the flows' tick-dropout probability when >= 0 (default 0.02
  // from PeriodicFlowParams); < 0 keeps the default.
  double dropout_prob = -1.0;
  // Diurnal dropout swell (sessions.h). The short default cycle makes the
  // modulation visible inside a two-hour validation window.
  double diurnal_amplitude = 0.0;
  double diurnal_period = 5400.0;
  // Chance a periodic client runs a SECOND overlapping flow to the same
  // object, with a period that is not a near-multiple of the first — the
  // multi-period telemetry case. Emits its own truth row.
  double multi_period_share = 0.0;
};

struct GeneratorConfig {
  std::uint64_t seed = 1;
  // Seed for the domain/object catalog and app graphs; 0 derives it from
  // `seed`. Setting it explicitly lets two runs share one app ecosystem
  // while drawing different client populations (train/replay experiments).
  std::uint64_t catalog_seed = 0;
  double duration_seconds = 600.0;
  std::size_t n_clients = 2000;
  PopulationShares shares;
  PeriodicShares periodic;
  CatalogConfig catalog;
  AppGraphParams app_graph;
  AppSessionParams app_session;
  BrowserSessionParams browser_session;
  // Mean interactive sessions per client over the window.
  double mean_sessions_per_client = 3.0;
  // Poisson beacon rate (req/s) for library/script clients.
  double beacon_rate = 1.0 / 110.0;
  // Share of unknown-UA clients that behave like apps (vs scripted beacons).
  double unknown_app_like_share = 0.75;
  // Chance an app session opens an embedded webview (one HTML page load) —
  // hybrid apps; a second source of HTML traffic besides browsers.
  double app_webview_html_prob = 0.10;
  // Scripted beacon clients run in bounded sessions (cron jobs, batch
  // uploads), not all day: per-activation span drawn from this range.
  double beacon_session_lo_seconds = 900.0;
  double beacon_session_hi_seconds = 7200.0;
  // Machine-to-machine traffic concentrates on a few big endpoints
  // (analytics providers, central telemetry): with this probability a
  // periodic client targets one of the top `m2m_top_domains` domains
  // instead of its own favourite.
  double m2m_concentration = 0.7;
  std::size_t m2m_top_domains = 6;
  // Gaussian jitter of periodic request timing, seconds.
  double periodic_jitter_stddev = 0.35;
  // Probability a periodic client adopts its object's canonical period
  // (drives the Fig. 6 share of period-matching clients per object).
  double canonical_period_adherence_lo = 0.20;
  double canonical_period_adherence_hi = 0.80;
  // Hostile-periodic stress knobs (inert at defaults; see PeriodicStress).
  PeriodicStress periodic_stress;
  // Adversarial traffic layered on top of the benign population (inert at
  // hostile_share == 0: no events, no attacker truth, benign stream
  // unchanged).
  HostileConfig hostile;
};

// Ground-truth labels, kept separate from the log stream: the analyses never
// see these.
struct ClientTruth {
  std::string address;
  std::string user_agent;
  ProfileClass profile_class = ProfileClass::kNoUserAgent;
  http::DeviceType device = http::DeviceType::kUnknown;
  http::AgentKind agent = http::AgentKind::kUnknown;
  bool runs_periodic_flow = false;
};

struct PeriodicTruth {
  std::string client_address;
  std::string user_agent;
  std::string url;
  double period_seconds = 0.0;
  std::size_t request_count = 0;
};

// One interactive session's true URL chain, in request order, as the client
// intended it — before CDN routing interleaves clients and before the window
// clamp drops overrunning tails. The oracle's n-gram skyline trains on these
// chains; the gap between skyline accuracy and log-measured accuracy is the
// cost of observing sessions only through the edge log.
struct SessionTruth {
  std::string client_address;
  std::string user_agent;
  std::vector<std::string> urls;
};

struct GroundTruth {
  std::vector<ClientTruth> clients;
  std::vector<PeriodicTruth> periodic_flows;
  std::vector<SessionTruth> sessions;  // app-graph-driven sessions
  // Hostile clients with their attack class (workload/adversary.h). A join
  // on client_address labels every hostile request: attackers use dedicated
  // addresses the benign population never draws.
  std::vector<AttackerTruth> attackers;
  std::size_t total_events = 0;
  std::size_t periodic_events = 0;   // events emitted by periodic flows
  std::size_t hostile_events = 0;    // events emitted by attackers
  // Template id per app-graph URL (for scoring clustered-URL prediction).
  std::unordered_map<std::string, std::string> template_of_url;
  // Domain -> industry label (the categorization service the paper buys,
  // exported so analyses' industry marginals can be graded exactly).
  std::unordered_map<std::string, std::string> industry_of_domain;
};

struct Workload {
  std::vector<RequestEvent> events;  // ascending time
  GroundTruth truth;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(GeneratorConfig config);

  // Generates the full event stream. Deterministic: same config -> same
  // workload. Callable repeatedly; each call regenerates from the seed.
  [[nodiscard]] Workload generate() const;

  [[nodiscard]] const DomainCatalog& catalog() const noexcept {
    return *catalog_;
  }
  [[nodiscard]] const std::vector<AppGraph>& app_graphs() const noexcept {
    return app_graphs_;
  }
  [[nodiscard]] const GeneratorConfig& config() const noexcept {
    return config_;
  }

 private:
  GeneratorConfig config_;
  std::unique_ptr<DomainCatalog> catalog_;
  std::vector<AppGraph> app_graphs_;  // one per domain
};

// Canonical machine-to-machine period set: the spikes the paper reports in
// Fig. 5 (30 s, 1 m, 2 m, 3 m, 5 m, 10 m, 15 m, 30 m) plus their weights.
struct PeriodChoice {
  double seconds;
  double weight;
};
[[nodiscard]] const std::vector<PeriodChoice>& canonical_periods();

}  // namespace jsoncdn::workload
