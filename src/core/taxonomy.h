// The paper's JSON traffic taxonomy (Fig. 2): every log record is classified
// along three axes —
//   traffic source: device type (mobile / desktop / embedded / unknown) and
//                   browser vs non-browser agent;
//   request type:   upload (POST) vs download (GET);
//   response type:  size and cacheability.
// Human- vs machine-generated is the one axis that cannot be read off a
// single record; §5.1's periodicity detector supplies it per flow.
#pragma once

#include <cstdint>
#include <string_view>

#include "http/device_db.h"
#include "http/mime.h"
#include "logs/record.h"

namespace jsoncdn::core {

enum class RequestType { kDownload, kUpload, kOther };

[[nodiscard]] std::string_view to_string(RequestType t) noexcept;

struct TrafficClass {
  http::ContentClass content = http::ContentClass::kOther;
  http::DeviceType device = http::DeviceType::kUnknown;
  http::AgentKind agent = http::AgentKind::kUnknown;
  RequestType request = RequestType::kDownload;
  bool cacheable_config = false;  // customer allowed caching
  std::uint64_t response_bytes = 0;

  [[nodiscard]] bool is_json() const noexcept {
    return content == http::ContentClass::kJson;
  }
  [[nodiscard]] bool is_browser() const noexcept {
    return agent == http::AgentKind::kBrowser;
  }
};

// Classifies one record. Pure function of the record's fields.
[[nodiscard]] TrafficClass classify(const logs::LogRecord& record);

}  // namespace jsoncdn::core
