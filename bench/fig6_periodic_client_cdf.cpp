// Figure 6: "CDF of the percent of periodic clients across objects" — for
// each periodic object, what share of its (analyzable) clients request it at
// the object's period. The paper highlights that 20% of periodic objects
// have a majority (>50%) of period-matching clients.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "core/study.h"
#include "stats/descriptive.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.003;
  bench::print_header("Figure 6",
                      "CDF of periodic-client share across objects");

  core::StudyConfig config;
  config.workload = workload::long_term_scenario(scale);
  config.run_characterization = false;
  config.run_periodicity = true;
  const auto result = core::run_study(config);
  const auto& report = *result.periodicity;

  std::fputs(
      core::render_periodic_client_cdf(report.periodic_client_shares).c_str(),
      stdout);
  std::printf("\n");
  double majority_share = 0.0;
  if (!report.periodic_client_shares.empty()) {
    stats::EmpiricalCdf cdf{
        std::vector<double>(report.periodic_client_shares)};
    majority_share = 1.0 - cdf.at(0.5);
  }
  bench::compare("objects with >50% periodic clients", 0.20, majority_share);
  bench::note("paper: 20% of periodic objects have a majority of clients "
              "sharing the object period.");
  return 0;
}
