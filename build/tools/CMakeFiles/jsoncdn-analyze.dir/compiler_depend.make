# Empty compiler generated dependencies file for jsoncdn-analyze.
# This may be replaced when dependencies are built.
