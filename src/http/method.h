// HTTP request methods (RFC 7231 §4). The paper's taxonomy maps GET to
// "download" and POST to "upload" (§3.2, Request Type).
#pragma once

#include <optional>
#include <string_view>

namespace jsoncdn::http {

enum class Method {
  kGet,
  kPost,
  kPut,
  kDelete,
  kHead,
  kOptions,
  kPatch,
};

// Parses a case-sensitive method token (HTTP methods are case-sensitive per
// RFC 7231). Returns nullopt for unknown tokens.
[[nodiscard]] std::optional<Method> parse_method(std::string_view token);

[[nodiscard]] std::string_view to_string(Method m) noexcept;

// Request-type half of the paper's taxonomy: does this method convey a body
// from client to server?
[[nodiscard]] constexpr bool is_upload(Method m) noexcept {
  return m == Method::kPost || m == Method::kPut || m == Method::kPatch;
}
[[nodiscard]] constexpr bool is_download(Method m) noexcept {
  return m == Method::kGet || m == Method::kHead;
}

}  // namespace jsoncdn::http
