// Equivalence of the out-of-core v2 streaming path with the in-memory
// streaming study: with matching chunk geometry the rendered summary is
// byte-identical, and zone-map pruning never changes a windowed result.
#include <cstdint>
#include <filesystem>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "logs/table.h"
#include "shard/reader.h"
#include "shard/synth.h"
#include "shard/writer.h"
#include "stream/streaming_study.h"

namespace {

using jsoncdn::logs::LogTable;
using jsoncdn::shard::ScanPredicate;
using jsoncdn::shard::ShardReader;
using jsoncdn::shard::ShardWriter;
using jsoncdn::shard::ShardWriterOptions;
using jsoncdn::shard::SynthFields;
using jsoncdn::shard::SynthOptions;
using jsoncdn::stream::StreamingConfig;
using jsoncdn::stream::StreamingStudy;

constexpr std::uint32_t kChunkRows = 1024;

SynthOptions workload() {
  SynthOptions options;
  options.records = 20000;
  options.seed = 11;
  options.clients = 800;
  options.urls = 300;
  options.domains = 24;
  options.duration = 20000.0;
  return options;
}

class StreamEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    file_ = (std::filesystem::temp_directory_path() /
             "jsoncdn_shard_stream_test.jlog")
                .string();
    ShardWriterOptions writer_options;
    writer_options.chunk_rows = kChunkRows;
    ShardWriter writer(file_, writer_options);
    jsoncdn::shard::synth_records(workload(), [&](const SynthFields& f) {
      table_.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                           f.url, f.domain, f.content_type, f.status,
                           f.response_bytes, f.request_bytes, f.cache_status,
                           f.edge_id);
      writer.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                           f.url, f.domain, f.content_type, f.status,
                           f.response_bytes, f.request_bytes, f.cache_status,
                           f.edge_id);
    });
    writer.finalize();
  }
  void TearDown() override { std::filesystem::remove(file_); }

  // The in-memory streaming path of jsoncdn-analyze: ingest the table in
  // file order, `chunk_size` rows at a time, optionally time-windowed.
  [[nodiscard]] std::string in_memory_summary(std::size_t chunk_size,
                                              double from, double to) const {
    StreamingStudy study{StreamingConfig{}};
    std::vector<std::uint32_t> order;
    for (std::uint32_t i = 0; i < table_.size(); ++i) {
      if (table_.timestamp(i) >= from && table_.timestamp(i) <= to) {
        order.push_back(i);
      }
    }
    for (std::size_t begin = 0; begin < order.size(); begin += chunk_size) {
      const std::size_t len = std::min(chunk_size, order.size() - begin);
      study.ingest(table_, std::span<const std::uint32_t>(&order[begin], len));
    }
    return jsoncdn::stream::render_streaming_summary(study.summary());
  }

  // The out-of-core path: scan the v2 store, ingest each decoded chunk's
  // selected rows in `chunk_size` sub-spans.
  [[nodiscard]] std::string out_of_core_summary(std::size_t chunk_size,
                                                const ScanPredicate& predicate,
                                                ShardReader& reader) const {
    StreamingStudy study{StreamingConfig{}};
    reader.scan(predicate, [&](const LogTable& chunk,
                               std::span<const std::uint32_t> selected) {
      for (std::size_t begin = 0; begin < selected.size();
           begin += chunk_size) {
        const std::size_t len = std::min(chunk_size, selected.size() - begin);
        study.ingest(chunk, std::span<const std::uint32_t>(
                                selected.data() + begin, len));
      }
    });
    return jsoncdn::stream::render_streaming_summary(study.summary());
  }

  std::string file_;
  LogTable table_;
};

TEST_F(StreamEquivalence, FullScanMatchesInMemoryStreamingByteForByte) {
  ShardReader reader(file_);
  // chunk_size == the store's chunk_rows: identical ingest geometry, so the
  // two-tier determinism contract promises a byte-identical summary.
  EXPECT_EQ(in_memory_summary(kChunkRows, -1e300, 1e300),
            out_of_core_summary(kChunkRows, ScanPredicate{}, reader));
  // A divisor of chunk_rows also reproduces the geometry (sub-spans align).
  EXPECT_EQ(in_memory_summary(256, -1e300, 1e300),
            out_of_core_summary(256, ScanPredicate{}, reader));
}

TEST_F(StreamEquivalence, PrunedWindowMatchesUnprunedByteForByte) {
  ShardReader reader(file_);
  ScanPredicate window;
  window.min_time = 5000.0;
  window.max_time = 9000.0;
  ScanPredicate no_zone = window;
  no_zone.use_zone_maps = false;
  const auto pruned = out_of_core_summary(kChunkRows, window, reader);
  const auto unpruned = out_of_core_summary(kChunkRows, no_zone, reader);
  EXPECT_EQ(pruned, unpruned);
}

TEST_F(StreamEquivalence, WindowedScanSelectsExactlyTheWindowRows) {
  ShardReader reader(file_);
  ScanPredicate window;
  window.min_time = 2500.0;
  window.max_time = 7500.0;
  std::uint64_t expected = 0;
  for (std::uint32_t i = 0; i < table_.size(); ++i) {
    const double t = table_.timestamp(i);
    if (t >= window.min_time && t <= window.max_time) ++expected;
  }
  const auto stats = reader.scan(
      window, [](const LogTable&, std::span<const std::uint32_t>) {});
  EXPECT_EQ(stats.rows_selected, expected);
  EXPECT_GT(stats.chunks_pruned, 0u);
  // The time-ordered workload keeps zone maps tight: a quarter-length
  // window must prune at least half of the chunks.
  EXPECT_GE(stats.chunks_pruned, stats.chunks_total / 2);
}

TEST_F(StreamEquivalence, ScratchReuseKeepsReaderMemoryFlat) {
  ShardReader reader(file_);
  std::size_t after_first_chunk = 0;
  std::size_t chunks_seen = 0;
  reader.scan(ScanPredicate{}, [&](const LogTable&,
                                   std::span<const std::uint32_t>) {
    ++chunks_seen;
    if (chunks_seen == 1) after_first_chunk = reader.resident_bytes();
  });
  ASSERT_GT(chunks_seen, 10u);
  // The scratch table is reused: resident footprint after the last chunk
  // matches the first chunk's (no growth proportional to chunks scanned).
  EXPECT_LE(reader.resident_bytes(), after_first_chunk * 2);
}

}  // namespace
