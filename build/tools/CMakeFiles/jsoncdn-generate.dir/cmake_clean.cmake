file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn-generate.dir/jsoncdn_generate.cpp.o"
  "CMakeFiles/jsoncdn-generate.dir/jsoncdn_generate.cpp.o.d"
  "jsoncdn-generate"
  "jsoncdn-generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn-generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
