// HTTP request/response value types used at the CDN simulator boundary.
#pragma once

#include <cstdint>
#include <string>

#include "http/headers.h"
#include "http/method.h"
#include "http/url.h"

namespace jsoncdn::http {

// Common status codes the simulator emits.
enum class Status : int {
  kOk = 200,
  kNotModified = 304,
  kBadRequest = 400,
  kNotFound = 404,
  kInternalError = 500,
  kOriginTimeout = 504,
};

[[nodiscard]] constexpr int code(Status s) noexcept {
  return static_cast<int>(s);
}
[[nodiscard]] constexpr bool is_success(Status s) noexcept {
  return code(s) >= 200 && code(s) < 300;
}

struct Request {
  Method method = Method::kGet;
  std::string url;          // normalized full URL
  HeaderMap headers;        // includes User-Agent when present
  std::uint64_t body_bytes = 0;  // upload payload size (POST/PUT)
};

struct Response {
  Status status = Status::kOk;
  HeaderMap headers;        // includes Content-Type
  std::uint64_t body_bytes = 0;
};

}  // namespace jsoncdn::http
