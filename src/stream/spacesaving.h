// Space-Saving heavy hitters (Metwally et al. '05): top-K tracking in a
// fixed budget of `capacity` counters. Guarantees: every key whose true
// count exceeds N / capacity is tracked; a tracked key's count overestimates
// its true count by at most its recorded `error`, which never exceeds
// N / capacity.
//
// Merge contract (Agarwal et al., "Mergeable Summaries"): for each key in
// either operand, absent-side counts are bounded by that side's minimum
// counter; the union is re-truncated to the capacity largest. The merged
// sketch keeps the same error guarantees over the combined stream. Contents
// depend on operand order, so shard merges must follow the chunk-ordered
// contract (stats::parallel_reduce) for reproducible output; the guarantees
// themselves hold for any order.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace jsoncdn::stream {

struct HeavyHitter {
  std::string key;
  std::uint64_t count = 0;  // estimate; >= true count
  std::uint64_t error = 0;  // count - error <= true count <= count
};

class SpaceSaving {
 public:
  // Requires capacity >= 1.
  explicit SpaceSaving(std::size_t capacity);

  // Offers one occurrence (or `weight` of them). Returns the key evicted to
  // make room, if any — the triage layer uses this to drop per-flow state
  // for keys that fell out of the heavy set.
  std::optional<std::string> offer(std::string_view key,
                                   std::uint64_t weight = 1);

  [[nodiscard]] bool contains(std::string_view key) const;
  // Count estimate for a tracked key; untracked keys report the untracked
  // bound (their true count cannot exceed it).
  [[nodiscard]] std::uint64_t estimate(std::string_view key) const;

  // The `n` largest tracked keys, count descending, key ascending on ties.
  [[nodiscard]] std::vector<HeavyHitter> top(std::size_t n) const;

  // Upper bound on the true count of any key NOT tracked: the minimum
  // counter when full, 0 otherwise.
  [[nodiscard]] std::uint64_t untracked_bound() const noexcept;

  // Guaranteed worst-case overestimation: total_weight / capacity.
  [[nodiscard]] double error_bound() const noexcept {
    return static_cast<double>(total_) / static_cast<double>(capacity_);
  }

  void merge(const SpaceSaving& other);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  struct Entry {
    std::string key;
    std::uint64_t count = 0;
    std::uint64_t error = 0;
  };

  // Min-heap by count over heap_, with index_ mapping key -> heap slot.
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  void swap_slots(std::size_t a, std::size_t b);

  // Transparent hashing so hot-path lookups take string_view without
  // allocating a temporary std::string.
  struct StringHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  using Index =
      std::unordered_map<std::string, std::size_t, StringHash, std::equal_to<>>;

  std::size_t capacity_;
  std::uint64_t total_ = 0;
  std::vector<Entry> heap_;
  Index index_;
};

}  // namespace jsoncdn::stream
