// Scenario presets mirroring the paper's two datasets (Table 2):
//
//   Short-term: 25 M logs, 10 minutes, ~5 K domains  — the whole network,
//               used for the §4 characterization (Fig. 3, Fig. 4, sizes).
//   Long-term:  10 M logs, 24 hours,   ~170 domains — three Seattle vantage
//               points, used for the §5 pattern analyses (Fig. 5/6, Table 3).
//
// `scale` shrinks log volume and domain count proportionally so the full
// pipeline runs on a laptop; 1.0 would reproduce paper-sized datasets.
#pragma once

#include <cstdint>

#include "workload/generator.h"

namespace jsoncdn::workload {

// Wide, short window over a large customer base. scale=0.01 yields roughly
// 250 K logs over ~50 domains-per-industry.
[[nodiscard]] GeneratorConfig short_term_scenario(double scale = 0.01,
                                                  std::uint64_t seed = 42);

// Narrow, day-long window over a small customer base, rich in periodic and
// app-session traffic. scale=0.01 yields roughly 100 K logs.
[[nodiscard]] GeneratorConfig long_term_scenario(double scale = 0.01,
                                                 std::uint64_t seed = 43);

}  // namespace jsoncdn::workload
