#include "logs/dataset.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "http/mime.h"
#include "stats/hash.h"

namespace jsoncdn::logs {

Dataset::Dataset(std::vector<LogRecord> records)
    : records_(std::move(records)) {}

void Dataset::add(LogRecord record) { records_.push_back(std::move(record)); }

void Dataset::sort_by_time() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
}

Dataset Dataset::filter(
    const std::function<bool(const LogRecord&)>& pred) const {
  Dataset out;
  for (const auto& r : records_) {
    if (pred(r)) out.add(r);
  }
  return out;
}

Dataset Dataset::json_only() const {
  return filter([](const LogRecord& r) {
    return http::is_json(r.content_type);
  });
}

std::pair<double, double> Dataset::time_range() const {
  if (records_.empty()) return {0.0, 0.0};
  double lo = records_.front().timestamp;
  double hi = lo;
  for (const auto& r : records_) {
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  return {lo, hi};
}

std::size_t Dataset::distinct_domains() const {
  std::unordered_set<std::string_view> seen;
  for (const auto& r : records_) seen.insert(r.domain);
  return seen.size();
}

std::size_t Dataset::distinct_objects() const {
  std::unordered_set<std::string_view> seen;
  for (const auto& r : records_) seen.insert(r.url);
  return seen.size();
}

std::size_t Dataset::distinct_clients() const {
  std::unordered_set<std::string, stats::TransparentStringHash, std::equal_to<>>
      seen;
  std::string key;
  for (const auto& r : records_) {
    r.client_key_into(key);
    // Heterogeneous probe first: only distinct clients pay the insert copy.
    if (seen.find(std::string_view(key)) == seen.end()) seen.insert(key);
  }
  return seen.size();
}

std::vector<ObjectFlow> extract_object_flows(const Dataset& dataset,
                                             const FlowFilter& filter) {
  // First pass: bucket record indices by URL, then by client within URL.
  std::unordered_map<std::string_view, std::vector<std::size_t>> by_url;
  const auto& records = dataset.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    by_url[records[i].url].push_back(i);
  }

  std::vector<ObjectFlow> out;
  out.reserve(by_url.size());
  for (auto& [url, indices] : by_url) {
    // Indices follow dataset order; enforce time order defensively.
    std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
      return records[a].timestamp < records[b].timestamp;
    });

    std::unordered_map<std::string, ClientObjectFlow,
                       stats::TransparentStringHash, std::equal_to<>>
        by_client;
    ObjectFlow flow;
    flow.url = std::string(url);
    flow.total_requests = indices.size();
    flow.times.reserve(indices.size());
    std::size_t uncacheable = 0;
    std::size_t uploads = 0;
    std::string key;  // reused: no per-record client_key() allocation
    for (std::size_t idx : indices) {
      const auto& r = records[idx];
      flow.times.push_back(r.timestamp);
      if (r.cache_status == CacheStatus::kNotCacheable) ++uncacheable;
      if (http::is_upload(r.method)) ++uploads;
      r.client_key_into(key);
      auto it = by_client.find(std::string_view(key));
      if (it == by_client.end()) {
        it = by_client.emplace(key, ClientObjectFlow{}).first;
        it->second.client = key;
      }
      auto& cof = it->second;
      cof.times.push_back(r.timestamp);
      cof.record_indices.push_back(idx);
    }
    flow.uncacheable_share =
        static_cast<double>(uncacheable) / static_cast<double>(indices.size());
    flow.upload_share =
        static_cast<double>(uploads) / static_cast<double>(indices.size());

    if (by_client.size() < filter.min_object_clients) continue;

    flow.clients.reserve(by_client.size());
    for (auto& [client, cof] : by_client) {
      if (cof.times.size() >= filter.min_client_flow_requests) {
        flow.clients.push_back(std::move(cof));
      }
    }
    // Deterministic order regardless of hash-map iteration.
    std::sort(flow.clients.begin(), flow.clients.end(),
              [](const ClientObjectFlow& a, const ClientObjectFlow& b) {
                return a.client < b.client;
              });
    out.push_back(std::move(flow));
  }
  std::sort(out.begin(), out.end(),
            [](const ObjectFlow& a, const ObjectFlow& b) {
              return a.url < b.url;
            });
  return out;
}

std::vector<ClientFlow> extract_client_flows(const Dataset& dataset,
                                             std::size_t min_requests) {
  std::unordered_map<std::string, ClientFlow, stats::TransparentStringHash,
                     std::equal_to<>>
      by_client;
  const auto& records = dataset.records();
  std::string key;  // reused: no per-record client_key() allocation
  for (std::size_t i = 0; i < records.size(); ++i) {
    records[i].client_key_into(key);
    auto it = by_client.find(std::string_view(key));
    if (it == by_client.end()) {
      it = by_client.emplace(key, ClientFlow{}).first;
      it->second.client = key;
    }
    it->second.record_indices.push_back(i);
  }
  std::vector<ClientFlow> out;
  out.reserve(by_client.size());
  for (auto& [client, flow] : by_client) {
    if (flow.record_indices.size() < min_requests) continue;
    std::sort(flow.record_indices.begin(), flow.record_indices.end(),
              [&](std::size_t a, std::size_t b) {
                return records[a].timestamp < records[b].timestamp;
              });
    out.push_back(std::move(flow));
  }
  std::sort(out.begin(), out.end(), [](const ClientFlow& a, const ClientFlow& b) {
    return a.client < b.client;
  });
  return out;
}

}  // namespace jsoncdn::logs
