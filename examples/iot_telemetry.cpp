// IoT / machine-to-machine scenario (§5.1): a fleet of embedded devices
// polls and uploads on fixed periods. The example runs the paper's
// periodicity detector over the resulting edge logs, scores it against the
// generator's ground truth (precision/recall — something the paper could not
// do on production traffic), and then quantifies the paper's proposed
// optimization: deprioritizing machine traffic to improve human latency.
//
//   $ ./iot_telemetry [n_clients]
//
#include <cstdlib>
#include <iostream>
#include <unordered_set>

#include "cdn/network.h"
#include "cdn/prioritizer.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;

  workload::GeneratorConfig config;
  config.seed = 2026;
  config.duration_seconds = 6 * 3600.0;  // six hours of fleet activity
  config.n_clients = argc > 1 ? static_cast<std::size_t>(std::atol(argv[1]))
                              : 1200;
  config.catalog.domains_per_industry = 2;
  // Embedded-heavy population: this is a smart-device fleet.
  config.shares = {0.18, 0.02, 0.02, 0.52, 0.08, 0.14, 0.04};
  config.periodic.embedded = 0.75;
  config.periodic.library = 0.50;

  std::cout << "IoT telemetry scenario: " << config.n_clients
            << " clients over " << config.duration_seconds / 3600.0
            << " h\n\n";

  workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);
  const auto json = dataset.json_only();
  std::cout << "generated " << dataset.size() << " log records ("
            << json.size() << " JSON), ground truth: "
            << workload.truth.periodic_flows.size() << " periodic flows, "
            << workload.truth.periodic_events << " periodic requests\n\n";

  // --- Detect periodicity (the paper's §5.1 pipeline). -------------------
  core::PeriodicityConfig pconfig;
  const auto report = core::analyze_periodicity(json, pconfig);
  std::cout << core::render_periodicity_summary(report) << "\n";
  std::cout << core::render_period_histogram(report.object_periods) << "\n";
  std::cout << core::render_periodic_client_cdf(report.periodic_client_shares)
            << "\n";

  // --- Score against ground truth. ----------------------------------------
  // Truth flows are keyed by (anonymized client, url); detection labels
  // client-object flows.
  const auto& anonymizer = network.anonymizer();
  std::unordered_set<std::string> truth_keys;
  for (const auto& pt : workload.truth.periodic_flows) {
    if (pt.request_count < 10) continue;  // below the paper's flow filter
    truth_keys.insert(anonymizer.pseudonym(pt.client_address) + "|" +
                      pt.user_agent + "@" + pt.url);
  }
  std::size_t flow_tp = 0;       // flow detected periodic, flow is truth
  std::size_t flow_detected = 0; // flows detected periodic (any period)
  std::size_t truth_analyzed = 0;
  std::size_t matched_label = 0; // the paper's object-matching label
  for (const auto& obj : report.objects) {
    for (const auto& client : obj.clients) {
      const bool is_truth = truth_keys.contains(client.client + "@" + obj.url);
      if (is_truth) ++truth_analyzed;
      if (client.periodic) {
        ++flow_detected;
        if (is_truth) ++flow_tp;
      }
      if (client.matches_object) ++matched_label;
    }
  }
  const double precision =
      flow_detected == 0
          ? 0.0
          : static_cast<double>(flow_tp) / static_cast<double>(flow_detected);
  const double recall = truth_analyzed == 0
                            ? 0.0
                            : static_cast<double>(flow_tp) /
                                  static_cast<double>(truth_analyzed);
  std::cout << "detector vs ground truth (client-object flows passing the "
               ">=10 filters):\n"
            << "  detected periodic: " << flow_detected << ", precision "
            << precision << ", recall " << recall << "\n"
            << "  labelled periodic by the paper's object-match rule: "
            << matched_label << "\n"
            << "  (truth flows dropped by the object>=10-clients filter: "
            << truth_keys.size() - truth_analyzed << ")\n\n";

  // --- Deprioritization (the paper's proposed optimization). -------------
  // Build scheduler jobs from the logs: service time approximates edge CPU
  // cost; machine label comes from the *detector*, as an operator would do.
  std::unordered_set<std::string> machine_objects;
  for (const auto& obj : report.objects) {
    if (obj.object_periodic && obj.periodic_client_share > 0.5)
      machine_objects.insert(obj.url);
  }
  std::vector<cdn::SchedulerJob> jobs;
  jobs.reserve(json.size());
  for (const auto& record : json.records()) {
    cdn::SchedulerJob job;
    job.arrival = record.timestamp;
    job.service = 0.0008 + static_cast<double>(record.response_bytes) / 2e8;
    job.machine = machine_objects.contains(record.url);
    jobs.push_back(job);
  }
  // Compress arrivals so the edge runs near saturation (queueing visible).
  double total_service = 0.0;
  for (const auto& j : jobs) total_service += j.service;
  const double busy_target = 0.9;
  const double compress =
      total_service / (busy_target * config.duration_seconds);
  for (auto& j : jobs) j.arrival *= compress;

  const auto fifo =
      cdn::simulate_schedule(jobs, cdn::SchedulingPolicy::kFifo, 1);
  const auto prio =
      cdn::simulate_schedule(jobs, cdn::SchedulingPolicy::kHumanPriority, 1);
  std::cout << "scheduling (single worker, ~" << busy_target * 100
            << "% utilization):\n"
            << "  FIFO          : human p50 wait "
            << fifo.human.waiting.p50 * 1000.0 << " ms, p99 "
            << fifo.human.waiting.p99 * 1000.0 << " ms (machine p99 "
            << fifo.machine.waiting.p99 * 1000.0 << " ms)\n"
            << "  human-priority: human p50 wait "
            << prio.human.waiting.p50 * 1000.0 << " ms, p99 "
            << prio.human.waiting.p99 * 1000.0 << " ms (machine p99 "
            << prio.machine.waiting.p99 * 1000.0 << " ms)\n";
  return 0;
}
