// Table 2: "Summary of our datasets" — short-term (25M logs / 10 min / ~5K
// domains) and long-term (10M logs / 24h / ~170 domains). Regenerates both
// at a configurable scale and reports how the scaled volumes compare to the
// scaled paper targets.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "workload/scenario.h"

namespace {

void run_scenario(const char* name, const jsoncdn::workload::GeneratorConfig&
                      config, double scale, double paper_logs,
                  double expected_domains) {
  using namespace jsoncdn;
  workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto dataset = network.run(workload.events);

  std::printf("\n%s dataset (scale %.4f):\n", name, scale);
  std::printf("  logs: %zu   duration: %.0f s   domains: %zu   clients: %zu\n",
              dataset.size(), config.duration_seconds,
              dataset.distinct_domains(), dataset.distinct_clients());
  jsoncdn::bench::compare("log volume vs scaled paper target",
                          paper_logs * scale,
                          static_cast<double>(dataset.size()));
  jsoncdn::bench::compare("domain count vs scenario target",
                          expected_domains,
                          static_cast<double>(dataset.distinct_domains()));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  bench::print_header("Table 2", "dataset summary (short-term and long-term)");
  const auto short_term = workload::short_term_scenario(scale);
  run_scenario("short-term", short_term, scale, 25e6,
               static_cast<double>(short_term.catalog.domains_per_industry *
                                   workload::kIndustryCount));
  const auto long_term = workload::long_term_scenario(scale);
  run_scenario("long-term", long_term, scale, 10e6,
               static_cast<double>(long_term.catalog.domains_per_industry *
                                   workload::kIndustryCount));
  bench::note("");
  bench::note("paper: short-term 25M logs / 10 min / ~5K domains;");
  bench::note("       long-term 10M logs / 24 h / ~170 domains.");
  bench::note("note: long-term domain count shrinks with sqrt(scale) to keep");
  bench::note("      flows dense enough for the >=10-client object filter.");
  return 0;
}
