// The detector portfolio: registry round-trips, the default strategy's
// bit-equivalence with the pre-refactor PeriodicityDetector, each
// alternative strategy's recall on the regime it exists for, and the
// strategy-routed check_period second pass changing its verdict where the
// binned default goes blind.
#include "core/period_detector.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/anomaly.h"
#include "core/periodicity.h"
#include "stats/rng.h"

namespace jsoncdn::core {
namespace {

std::vector<double> comb(double period, std::size_t ticks, double jitter,
                         std::uint64_t seed, double t0 = 0.0) {
  stats::Rng rng(seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < ticks; ++i) {
    double t = t0 + period * static_cast<double>(i);
    if (jitter > 0.0) t += rng.normal(0.0, jitter);
    times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

DetectorParams fast_params() {
  DetectorParams params;
  params.permutations = 100;
  return params;
}

// --- registry -------------------------------------------------------------

TEST(DetectorRegistry, NamesRoundTripThroughFactory) {
  const auto& registry = detector_registry();
  ASSERT_EQ(registry.size(), 5u);
  for (const auto& info : registry) {
    EXPECT_EQ(detector_strategy_from_name(info.name), info.strategy);
    EXPECT_EQ(detector_name(info.strategy), info.name);
    const auto detector = make_period_detector(info.strategy, fast_params());
    ASSERT_NE(detector, nullptr);
    EXPECT_EQ(detector->name(), info.name);
    EXPECT_GE(detector->max_detections(), 1u);
  }
}

TEST(DetectorRegistry, UnknownNameThrows) {
  EXPECT_THROW((void)detector_strategy_from_name("fourier-magic"),
               std::invalid_argument);
}

TEST(DetectorRegistry, DefaultStrategyIsSinglePeriod) {
  const auto acf = make_period_detector(DetectorStrategy::kAcfFft,
                                        fast_params());
  EXPECT_EQ(acf->max_detections(), 1u);
  const auto multi = make_period_detector(DetectorStrategy::kMultiPeriod,
                                          fast_params());
  EXPECT_GT(multi->max_detections(), 1u);
}

// --- default equivalence ---------------------------------------------------

TEST(DetectorPortfolio, AcfFftStrategyBitEqualsLegacyDetector) {
  const auto params = fast_params();
  const PeriodicityDetector legacy(params);
  const auto strategy = make_period_detector(DetectorStrategy::kAcfFft,
                                             params);
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    // Periodic and aperiodic flows; identical rng streams on both sides.
    const auto periodic = comb(45.0, 40, 1.0, 10 + seed);
    stats::Rng r1(100 + seed), r2(100 + seed);
    const auto a = legacy.detect(periodic, r1);
    const auto b = strategy->detect(periodic, r2);
    EXPECT_EQ(a.periodic, b.periodic);
    EXPECT_EQ(a.period_seconds, b.period_seconds);  // bit-identical
    EXPECT_EQ(a.acf_peak_value, b.acf_peak_value);
    EXPECT_EQ(a.acf_threshold, b.acf_threshold);
    EXPECT_EQ(a.power_threshold, b.power_threshold);
  }
}

// --- per-strategy recall on its home regime --------------------------------

TEST(DetectorPortfolio, EveryStrategyDetectsCleanComb) {
  for (const auto& info : detector_registry()) {
    const auto detector = make_period_detector(info.strategy, fast_params());
    int hits = 0;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      const auto times = comb(120.0, 40, 2.0, 300 + seed);
      stats::Rng rng(9);
      const auto det = detector->detect(times, rng);
      hits += det.periodic &&
              std::abs(det.period_seconds - 120.0) < 120.0 * 0.15;
    }
    EXPECT_GE(hits, 4) << "strategy " << info.name;
  }
}

TEST(DetectorPortfolio, LombScargleSurvivesJitterTheDefaultCannot) {
  // sigma = 15% of the period: the binned comb is smeared over many bins,
  // but the raw-timestamp periodogram keeps enough phase coherence. This
  // regime is the Lomb-Scargle strategy's reason to exist.
  const auto params = fast_params();
  const auto acf = make_period_detector(DetectorStrategy::kAcfFft, params);
  const auto ls = make_period_detector(DetectorStrategy::kLombScargle,
                                       params);
  int acf_hits = 0;
  int ls_hits = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto times = comb(60.0, 80, 9.0, 100 + seed);
    stats::Rng r1(7), r2(7);
    auto hit = [](const PeriodDetection& det) {
      return det.periodic && std::abs(det.period_seconds - 60.0) < 9.0;
    };
    acf_hits += hit(acf->detect(times, r1));
    ls_hits += hit(ls->detect(times, r2));
  }
  EXPECT_LE(acf_hits, 2);
  EXPECT_GE(ls_hits, 7);
}

TEST(DetectorPortfolio, LombScarglePeriodIsSharp) {
  const auto ls = make_period_detector(DetectorStrategy::kLombScargle,
                                       fast_params());
  const auto times = comb(300.0, 40, 3.0, 42);
  stats::Rng rng(5);
  const auto det = ls->detect(times, rng);
  ASSERT_TRUE(det.periodic);
  // No binning: the period comes off the refined periodogram peak, well
  // under a percent, where the binned default quantizes to whole bins.
  EXPECT_NEAR(det.period_seconds, 300.0, 3.0);
}

TEST(DetectorPortfolio, MultiPeriodRecoversOverlappedCombs) {
  const auto multi = make_period_detector(DetectorStrategy::kMultiPeriod,
                                          fast_params());
  int both = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto times = comb(60.0, 50, 1.0, 500 + seed);
    const auto second = comb(97.0, 31, 1.0, 600 + seed, 13.0);
    times.insert(times.end(), second.begin(), second.end());
    std::sort(times.begin(), times.end());
    stats::Rng rng(11);
    const auto dets = multi->detect_all(times, rng, 4);
    bool has60 = false;
    bool has97 = false;
    for (const auto& det : dets) {
      has60 = has60 || std::abs(det.period_seconds - 60.0) < 9.0;
      has97 = has97 || std::abs(det.period_seconds - 97.0) < 15.0;
    }
    both += has60 && has97;
  }
  EXPECT_GE(both, 4);
}

TEST(DetectorPortfolio, SinglePeriodStrategiesReportOneDetection) {
  auto times = comb(60.0, 50, 1.0, 500);
  const auto second = comb(97.0, 31, 1.0, 600, 13.0);
  times.insert(times.end(), second.begin(), second.end());
  std::sort(times.begin(), times.end());
  const auto acf = make_period_detector(DetectorStrategy::kAcfFft,
                                        fast_params());
  stats::Rng rng(11);
  const auto dets = acf->detect_all(times, rng, acf->max_detections());
  EXPECT_LE(dets.size(), 1u);
}

// --- strategy-routed second pass (anomaly triage) --------------------------

TEST(CheckPeriodStrategy, NonDefaultStrategyChangesSecondPassVerdict) {
  // The streaming study's targeted second pass re-examines suspect flows
  // with a raw-timestamp detector. On a heavy-jitter flow the default finds
  // nothing (no verdict at all), while Lomb-Scargle both finds the period
  // and grades the gaps against it.
  const auto params = fast_params();
  const auto acf = make_period_detector(DetectorStrategy::kAcfFft, params);
  const auto ls = make_period_detector(DetectorStrategy::kLombScargle,
                                       params);
  const auto times = comb(60.0, 80, 10.8, 104);

  stats::Rng r1(3);
  const auto default_verdict = check_period(times, *acf, r1);
  EXPECT_FALSE(default_verdict.detected);

  stats::Rng r2(3);
  const auto ls_verdict = check_period(times, *ls, r2);
  ASSERT_TRUE(ls_verdict.detected);
  EXPECT_NEAR(ls_verdict.period_seconds, 60.0, 9.0);
  EXPECT_GT(ls_verdict.anomaly.gaps, 0u);
}

TEST(CheckPeriodStrategy, RejectsNonPositiveTolerance) {
  const auto acf = make_period_detector(DetectorStrategy::kAcfFft,
                                        fast_params());
  const auto times = comb(60.0, 40, 1.0, 3);
  stats::Rng rng(3);
  EXPECT_THROW((void)check_period(times, *acf, rng, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::core
