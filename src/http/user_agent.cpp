#include "http/user_agent.h"

#include <cctype>

namespace jsoncdn::http {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())))
    s.remove_prefix(1);
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())))
    s.remove_suffix(1);
  return s;
}

}  // namespace

bool icontains(std::string_view haystack, std::string_view needle) noexcept {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (std::tolower(static_cast<unsigned char>(haystack[i + j])) !=
          std::tolower(static_cast<unsigned char>(needle[j]))) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

bool UserAgent::mentions(std::string_view needle) const {
  if (icontains(raw, needle)) return true;
  return false;
}

UserAgent parse_user_agent(std::string_view raw) {
  UserAgent ua;
  ua.raw = std::string(trim(raw));
  std::string_view rest = ua.raw;
  while (!rest.empty()) {
    rest = trim(rest);
    if (rest.empty()) break;
    if (rest.front() == '(') {
      // Comment: runs to the matching close paren (nesting tolerated).
      std::size_t depth = 0;
      std::size_t end = 0;
      for (; end < rest.size(); ++end) {
        if (rest[end] == '(') ++depth;
        if (rest[end] == ')' && --depth == 0) break;
      }
      const auto body = rest.substr(1, end > 0 ? end - 1 : 0);
      // Split comment body on ';'.
      std::string_view items = body;
      while (!items.empty()) {
        std::string_view item = items;
        if (const auto semi = items.find(';'); semi != std::string_view::npos) {
          item = items.substr(0, semi);
          items = items.substr(semi + 1);
        } else {
          items = {};
        }
        item = trim(item);
        if (!item.empty()) ua.comments.emplace_back(item);
      }
      rest = end < rest.size() ? rest.substr(end + 1) : std::string_view{};
      continue;
    }
    // Product token: runs to whitespace or '('.
    std::size_t end = 0;
    while (end < rest.size() &&
           !std::isspace(static_cast<unsigned char>(rest[end])) &&
           rest[end] != '(')
      ++end;
    const auto token = rest.substr(0, end);
    UaProduct product;
    if (const auto slash = token.find('/'); slash != std::string_view::npos) {
      product.name = std::string(token.substr(0, slash));
      product.version = std::string(token.substr(slash + 1));
    } else {
      product.name = std::string(token);
    }
    if (!product.name.empty()) ua.products.push_back(std::move(product));
    rest = rest.substr(end);
  }
  return ua;
}

}  // namespace jsoncdn::http
