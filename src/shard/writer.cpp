#include "shard/writer.h"

#include <sstream>
#include <stdexcept>

#include "shard/chunk.h"

namespace jsoncdn::shard {

ShardWriter::ShardWriter(const std::string& path, ShardWriterOptions options)
    : path_(path),
      os_(path, std::ios::binary | std::ios::trunc),
      out_(os_),
      options_(options) {
  if (options_.chunk_rows == 0) {
    throw std::runtime_error("shard writer: chunk_rows must be positive");
  }
  if (!os_) {
    throw std::runtime_error("cannot create .jlog file: " + path_);
  }
  const auto magic = logs::jlog_v2_magic();
  out_.raw(magic.data(), magic.size());
  pending_.reserve(options_.chunk_rows);
}

void ShardWriter::append(const logs::LogRecord& record) {
  pending_.append(record);
  if (pending_.size() >= options_.chunk_rows) flush_chunk();
}

void ShardWriter::append_fields(
    double timestamp, std::string_view client_id, std::string_view user_agent,
    http::Method method, std::string_view url, std::string_view domain,
    std::string_view content_type, int status, std::uint64_t response_bytes,
    std::uint64_t request_bytes, logs::CacheStatus cache_status,
    std::uint32_t edge_id) {
  pending_.append_fields(timestamp, client_id, user_agent, method, url, domain,
                         content_type, status, response_bytes, request_bytes,
                         cache_status, edge_id);
  if (pending_.size() >= options_.chunk_rows) flush_chunk();
}

void ShardWriter::append(const logs::LogTable& table) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto row = static_cast<logs::LogTable::RowIndex>(i);
    append_fields(table.timestamp(row), table.client_id(row),
                  table.user_agent(row), table.method(row), table.url(row),
                  table.domain(row), table.content_type(row), table.status(row),
                  table.response_bytes(row), table.request_bytes(row),
                  table.cache_status(row), table.edge_id(row));
  }
}

void ShardWriter::flush_chunk() {
  if (pending_.empty()) return;
  payload_buf_.clear();
  ChunkMeta meta = ChunkCodec::encode(
      pending_, 0, static_cast<std::uint32_t>(pending_.size()), payload_buf_);
  meta.offset = out_.written();
  out_.raw(payload_buf_.data(), payload_buf_.size());
  rows_total_ += meta.row_count;
  payload_total_ += meta.payload_bytes;
  directory_.push_back(meta);
  pending_.clear_rows();
}

ShardWriteStats ShardWriter::finalize() {
  if (finalized_) {
    throw std::runtime_error("shard writer: finalize() called twice");
  }
  finalized_ = true;
  flush_chunk();

  // The footer is assembled in memory first so its checksum covers exactly
  // the bytes that land in the file.
  std::ostringstream footer_os(std::ios::binary);
  {
    logs::BinaryWriter footer(footer_os);
    ChunkCodec::write_dictionaries(footer, pending_);
    footer.pod<std::uint32_t>(options_.chunk_rows);
    footer.pod<std::uint32_t>(static_cast<std::uint32_t>(directory_.size()));
    for (const auto& meta : directory_) write_chunk_meta(footer, meta);
    footer.pod<std::uint64_t>(rows_total_);
  }
  const std::string footer_bytes = footer_os.str();
  const std::uint64_t footer_offset = out_.written();
  out_.raw(footer_bytes.data(), footer_bytes.size());
  out_.pod<std::uint64_t>(footer_offset);
  out_.pod<std::uint64_t>(payload_checksum(footer_bytes));
  out_.raw(kJlogV2TailMagic.data(), kJlogV2TailMagic.size());

  os_.flush();
  if (!os_) {
    throw std::runtime_error("cannot write .jlog file: " + path_);
  }
  ShardWriteStats stats;
  stats.rows = rows_total_;
  stats.chunks = static_cast<std::uint32_t>(directory_.size());
  stats.file_bytes = out_.written();
  stats.payload_bytes = payload_total_;
  return stats;
}

ShardWriteStats write_jlog_v2(const std::string& path,
                              const logs::LogTable& table,
                              ShardWriterOptions options) {
  ShardWriter writer(path, options);
  writer.append(table);
  return writer.finalize();
}

}  // namespace jsoncdn::shard
