#include "core/prefetch.h"

namespace jsoncdn::core {

NgramPrefetcher::NgramPrefetcher(NgramModel model,
                                 const PrefetcherParams& params)
    : model_(std::move(model)), params_(params) {}

void NgramPrefetcher::set_timing_model(InterarrivalModel timing) {
  timing_ = std::move(timing);
}

std::vector<std::string> NgramPrefetcher::candidates(
    const logs::LogRecord& served) {
  // Bound edge memory: drop all tracked histories when the table overflows.
  // (Real deployments would use an LRU; wholesale reset keeps the simulator
  // deterministic and the bound hard.)
  if (history_.size() > params_.max_tracked_clients) history_.clear();

  auto& hist = history_[served.client_key()];
  hist.push_back(served.url);
  while (hist.size() > params_.history_length) hist.pop_front();

  const std::vector<std::string> context(hist.begin(), hist.end());
  const auto predictions = model_.predict(context, params_.top_k);
  std::vector<std::string> out;
  out.reserve(predictions.size());
  for (const auto& p : predictions) {
    if (p.score < params_.min_score) continue;
    if (p.token == served.url) continue;  // already being served
    if (timing_.has_value()) {
      const auto gap = timing_->expected_gap(served.url, p.token);
      if (gap.has_value() &&
          (*gap < params_.min_expected_gap_seconds ||
           (params_.max_expected_gap_seconds > 0.0 &&
            *gap > params_.max_expected_gap_seconds))) {
        ++timing_filtered_;
        continue;
      }
    }
    out.push_back(p.token);
  }
  suggestions_ += out.size();
  return out;
}

NgramModel train_prefetch_model(const logs::Dataset& ds,
                                std::size_t context_len,
                                std::size_t min_flow_requests) {
  NgramModel model(context_len);
  const auto& records = ds.records();
  for (const auto& flow : logs::extract_client_flows(ds, min_flow_requests)) {
    std::vector<std::string> tokens;
    tokens.reserve(flow.record_indices.size());
    for (const auto idx : flow.record_indices)
      tokens.push_back(records[idx].url);
    model.observe_sequence(tokens);
  }
  return model;
}

}  // namespace jsoncdn::core
