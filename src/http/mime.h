// MIME / media-type handling (RFC 2045 grammar subset). The study filters
// traffic by the response content-type header: a record is JSON traffic iff
// its media type is application/json (including +json structured suffixes,
// which the CDN logs as application/json-compatible).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace jsoncdn::http {

// Parsed media type: type "/" subtype *(";" parameter). Type and subtype are
// normalized to lowercase; parameter order is preserved.
struct MimeType {
  std::string type;
  std::string subtype;
  std::vector<std::pair<std::string, std::string>> parameters;

  [[nodiscard]] std::string essence() const { return type + "/" + subtype; }
  bool operator==(const MimeType&) const = default;
};

// Parses a Content-Type header value. Returns nullopt on grammar violations
// (empty type/subtype, missing slash). Whitespace around tokens is tolerated,
// as real-world headers are sloppy.
[[nodiscard]] std::optional<MimeType> parse_mime(std::string_view header);

// Content classes the characterization breaks traffic into (Fig. 1 compares
// JSON vs HTML; §4 compares their response sizes).
enum class ContentClass {
  kJson,
  kHtml,
  kCss,
  kJavascript,
  kImage,
  kVideo,
  kFont,
  kPlain,
  kBinary,
  kOther,
};

[[nodiscard]] std::string_view to_string(ContentClass c) noexcept;

// Maps a media type to its content class. application/json and any
// subtype with a "+json" suffix classify as kJson, matching how the paper
// filters on "application/json" appearing in the mime header.
[[nodiscard]] ContentClass classify_content(const MimeType& mime) noexcept;

// Convenience: parses and classifies; unparseable headers are kOther.
[[nodiscard]] ContentClass classify_content(std::string_view header) noexcept;

[[nodiscard]] bool is_json(std::string_view header) noexcept;

}  // namespace jsoncdn::http
