// Deterministic synthetic scale workload: a pure function of (options,
// seed) that streams any number of records in nondecreasing time order with
// bounded string cardinalities — the driver for out-of-core scale tests and
// benchmarks, where the full workload generator (workload/scenario.h) would
// be too slow and too memory-hungry at 100M records.
//
// Properties the scale harness relies on:
//   - record i's timestamp lies in [start + i·dt, start + (i+1)·dt), so the
//     stream is time-sorted by construction and chunk zone maps are tight —
//     a half-window time query prunes roughly half the chunks;
//   - all six dictionaries are bounded by the options (user agent is a pure
//     function of client, so the client-key dictionary is bounded too),
//     keeping writer/reader memory flat no matter how many records stream;
//   - object popularity and client activity are skewed (quadratic bias), so
//     heavy-hitter sketches see a realistic head;
//   - content type is a pure function of the object, with json_share of
//     objects serving JSON — time windows and content-type predicates
//     correlate with chunks the way CDN logs do.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "http/method.h"
#include "logs/record.h"

namespace jsoncdn::shard {

struct SynthOptions {
  std::uint64_t records = 0;
  std::uint64_t seed = 42;
  std::uint32_t clients = 100000;
  std::uint32_t user_agents = 64;
  std::uint32_t urls = 20000;
  std::uint32_t domains = 128;
  std::uint32_t edges = 16;
  double start_time = 0.0;
  double duration = 86400.0;      // one synthetic day
  double json_share = 0.55;       // share of *objects* serving JSON
};

// One synthetic record; the string_views point into the stream's interned
// pools and stay valid for the stream's lifetime.
struct SynthFields {
  double timestamp = 0.0;
  std::string_view client_id;
  std::string_view user_agent;
  http::Method method = http::Method::kGet;
  std::string_view url;
  std::string_view domain;
  std::string_view content_type;
  int status = 200;
  std::uint64_t response_bytes = 0;
  std::uint64_t request_bytes = 0;
  logs::CacheStatus cache_status = logs::CacheStatus::kHit;
  std::uint32_t edge_id = 0;
};

class SynthStream {
 public:
  explicit SynthStream(const SynthOptions& options);

  // Fills `out` with the next record; false once `records` have streamed.
  [[nodiscard]] bool next(SynthFields& out);

  [[nodiscard]] std::uint64_t produced() const noexcept { return produced_; }

 private:
  SynthOptions options_;
  std::uint64_t state_;  // splitmix64 state — all randomness forks from here
  std::uint64_t produced_ = 0;
  double dt_ = 0.0;
  // Pre-rendered string pools (a few MB at the default cardinalities) so
  // next() is pure RNG + indexing — no formatting per record.
  std::vector<std::string> clients_;
  std::vector<std::string> user_agents_;
  std::vector<std::string> urls_;
  std::vector<std::string> domains_;
  std::vector<std::uint32_t> url_domain_;  // url index -> domain index
  std::vector<std::uint8_t> url_ctype_;    // url index -> content-type index
};

// Drives the whole stream through `fn` — the shared loop of
// `jsoncdn-jlog synth` and the scale benchmark.
void synth_records(const SynthOptions& options,
                   const std::function<void(const SynthFields&)>& fn);

}  // namespace jsoncdn::shard
