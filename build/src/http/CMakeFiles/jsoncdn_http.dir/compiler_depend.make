# Empty compiler generated dependencies file for jsoncdn_http.
# This may be replaced when dependencies are built.
