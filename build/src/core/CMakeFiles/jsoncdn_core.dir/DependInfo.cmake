
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/characterization.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/characterization.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/characterization.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/cost.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/cost.cpp.o.d"
  "/root/repo/src/core/ngram.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/ngram.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/ngram.cpp.o.d"
  "/root/repo/src/core/periodicity.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/periodicity.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/periodicity.cpp.o.d"
  "/root/repo/src/core/prefetch.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/prefetch.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/prefetch.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/report.cpp.o.d"
  "/root/repo/src/core/study.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/study.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/study.cpp.o.d"
  "/root/repo/src/core/taxonomy.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/taxonomy.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/taxonomy.cpp.o.d"
  "/root/repo/src/core/timing.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/timing.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/timing.cpp.o.d"
  "/root/repo/src/core/url_cluster.cpp" "src/core/CMakeFiles/jsoncdn_core.dir/url_cluster.cpp.o" "gcc" "src/core/CMakeFiles/jsoncdn_core.dir/url_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cdn/CMakeFiles/jsoncdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jsoncdn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/jsoncdn_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
