#include "workload/catalog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "stats/hash.h"

namespace jsoncdn::workload {

std::size_t ObjectCatalog::add(ObjectSpec spec) {
  const auto [it, inserted] = by_url_.emplace(spec.url, objects_.size());
  if (!inserted)
    throw std::invalid_argument("ObjectCatalog::add: duplicate URL " +
                                spec.url);
  objects_.push_back(std::move(spec));
  return objects_.size() - 1;
}

const ObjectSpec* ObjectCatalog::find(std::string_view url) const {
  const auto it = by_url_.find(std::string(url));
  return it == by_url_.end() ? nullptr : &objects_[it->second];
}

const ObjectSpec& ObjectCatalog::at(std::size_t index) const {
  if (index >= objects_.size())
    throw std::out_of_range("ObjectCatalog::at");
  return objects_[index];
}

stats::BodySizeSampler::Params size_params(http::ContentClass content) {
  stats::BodySizeSampler::Params p;
  switch (content) {
    case http::ContentClass::kJson:
      // API payloads cluster in the single-digit kilobytes with a thin tail.
      // Median ~ e^8.6 = 5.4 kB.
      p.log_mean = 8.75;
      p.log_stddev = 0.75;
      p.tail_prob = 0.01;
      p.tail_xm = 64 * 1024;
      p.tail_alpha = 1.8;
      break;
    case http::ContentClass::kHtml:
      // Bimodal: lean mobile pages (lognormal body) plus heavy
      // server-rendered desktop pages (Pareto component). Solved so that
      // JSON is ~24% smaller at p50 and ~87% smaller at p75 (§4): HTML
      // p50 ~ 7.3 kB, p75 ~ 70 kB.
      p.log_mean = 8.45;
      p.log_stddev = 0.5;
      p.tail_prob = 0.38;
      p.tail_xm = 50 * 1024;
      p.tail_alpha = 1.2;
      break;
    case http::ContentClass::kCss:
    case http::ContentClass::kJavascript:
      p.log_mean = 9.2;
      p.log_stddev = 1.0;
      break;
    case http::ContentClass::kImage:
      p.log_mean = 10.0;
      p.log_stddev = 1.3;
      p.tail_prob = 0.05;
      p.tail_xm = 256 * 1024;
      p.tail_alpha = 1.6;
      break;
    case http::ContentClass::kVideo:
      p.log_mean = 13.0;
      p.log_stddev = 1.2;
      break;
    default:
      p.log_mean = 7.0;
      p.log_stddev = 1.0;
      break;
  }
  return p;
}

std::string content_type_for(http::ContentClass content) {
  switch (content) {
    case http::ContentClass::kJson: return "application/json; charset=utf-8";
    case http::ContentClass::kHtml: return "text/html; charset=utf-8";
    case http::ContentClass::kCss: return "text/css";
    case http::ContentClass::kJavascript: return "application/javascript";
    case http::ContentClass::kImage: return "image/jpeg";
    case http::ContentClass::kVideo: return "video/mp4";
    case http::ContentClass::kFont: return "font/woff2";
    case http::ContentClass::kPlain: return "text/plain";
    case http::ContentClass::kBinary: return "application/octet-stream";
    case http::ContentClass::kOther: return "application/x-unknown";
  }
  return "application/octet-stream";
}

namespace {

std::string industry_slug(Industry ind) {
  switch (ind) {
    case Industry::kFinancialServices: return "fin";
    case Industry::kStreaming: return "stream";
    case Industry::kGaming: return "game";
    case Industry::kNewsMedia: return "news";
    case Industry::kSports: return "sports";
    case Industry::kEntertainment: return "ent";
    case Industry::kRetail: return "shop";
    case Industry::kTechnology: return "tech";
    case Industry::kTravel: return "travel";
    case Industry::kSocialMedia: return "social";
    case Industry::kAdvertising: return "ads";
  }
  return "misc";
}

// API path vocabulary per industry so generated URLs look like the real
// endpoints the paper cites (stories/articles for news, scores for gaming,
// quotes for finance, ...).
const std::vector<std::string>& api_nouns(Industry ind) {
  static const std::vector<std::string> fin = {
      "quotes", "accounts", "portfolio", "rates", "transactions", "alerts"};
  static const std::vector<std::string> stream = {
      "playlist", "catalog", "recommendations", "drm", "progress", "search"};
  static const std::vector<std::string> game = {
      "scores", "leaderboard", "matches", "inventory", "session", "friends"};
  static const std::vector<std::string> news = {
      "stories", "article", "headlines", "topics", "comments", "related"};
  static const std::vector<std::string> sports = {
      "scores", "schedule", "standings", "players", "stats", "live"};
  static const std::vector<std::string> ent = {
      "listings", "events", "reviews", "media", "trending", "search"};
  static const std::vector<std::string> shop = {
      "products", "cart", "offers", "inventory", "reviews", "recommend"};
  static const std::vector<std::string> tech = {
      "config", "features", "updates", "devices", "status", "metrics"};
  static const std::vector<std::string> travel = {
      "flights", "hotels", "bookings", "prices", "itinerary", "search"};
  static const std::vector<std::string> social = {
      "feed", "messages", "notifications", "profile", "friends", "media"};
  static const std::vector<std::string> ads = {
      "impressions", "bids", "segments", "creatives", "clicks", "config"};
  switch (ind) {
    case Industry::kFinancialServices: return fin;
    case Industry::kStreaming: return stream;
    case Industry::kGaming: return game;
    case Industry::kNewsMedia: return news;
    case Industry::kSports: return sports;
    case Industry::kEntertainment: return ent;
    case Industry::kRetail: return shop;
    case Industry::kTechnology: return tech;
    case Industry::kTravel: return travel;
    case Industry::kSocialMedia: return social;
    case Industry::kAdvertising: return ads;
  }
  return tech;
}

}  // namespace

DomainCatalog::DomainCatalog(const CatalogConfig& config, stats::Rng rng) {
  if (config.domains_per_industry == 0)
    throw std::invalid_argument("DomainCatalog: domains_per_industry == 0");

  auto json_params = size_params(http::ContentClass::kJson);
  json_params.log_mean += config.json_size_log_shift;
  stats::BodySizeSampler json_sizes(json_params);
  stats::BodySizeSampler html_sizes(size_params(http::ContentClass::kHtml));
  stats::BodySizeSampler css_sizes(size_params(http::ContentClass::kCss));
  stats::BodySizeSampler img_sizes(size_params(http::ContentClass::kImage));

  for (const auto ind : kAllIndustries) {
    for (std::size_t d = 0; d < config.domains_per_industry; ++d) {
      DomainSpec domain;
      char num[8];
      std::snprintf(num, sizeof num, "%03zu", d);
      domain.name =
          "api." + industry_slug(ind) + "-" + num + ".example";
      domain.industry = ind;
      domain.cacheable_share = sample_domain_cacheable_share(ind, rng);
      const auto& nouns = api_nouns(ind);
      const std::string base = "https://" + domain.name;

      // JSON API endpoints. A per-domain draw decides each object's
      // cacheability so the domain-level share matches ground truth.
      for (std::size_t j = 0; j < config.json_objects_per_domain; ++j) {
        ObjectSpec obj;
        const auto& noun = nouns[j % nouns.size()];
        obj.url = base + "/api/v1/" + noun + "/" +
                  std::to_string(j / nouns.size());
        obj.domain = domain.name;
        obj.content = http::ContentClass::kJson;
        obj.content_type = content_type_for(obj.content);
        obj.cacheable = rng.bernoulli(domain.cacheable_share);
        obj.ttl_seconds = config.default_ttl_seconds;
        obj.body_bytes = json_sizes.sample(rng);
        domain.json_objects.push_back(objects_.add(std::move(obj)));
      }

      // HTML pages (for the browser population and the Fig. 1 HTML side).
      for (std::size_t h = 0; h < config.html_objects_per_domain; ++h) {
        ObjectSpec obj;
        obj.url = base + "/pages/" + std::to_string(h) + ".html";
        obj.domain = domain.name;
        obj.content = http::ContentClass::kHtml;
        obj.content_type = content_type_for(obj.content);
        obj.cacheable = rng.bernoulli(
            std::min(1.0, domain.cacheable_share + 0.2));
        obj.ttl_seconds = config.default_ttl_seconds;
        obj.body_bytes = html_sizes.sample(rng);
        domain.html_objects.push_back(objects_.add(std::move(obj)));
      }

      // Static assets: always cacheable (the classic CDN use case).
      for (std::size_t a = 0; a < config.asset_objects_per_domain; ++a) {
        ObjectSpec obj;
        const bool image = (a % 3 != 0);
        obj.url = base + "/static/" + (image ? "img" : "app") +
                  std::to_string(a) + (image ? ".jpg" : ".js");
        obj.domain = domain.name;
        obj.content = image ? http::ContentClass::kImage
                            : http::ContentClass::kJavascript;
        obj.content_type = content_type_for(obj.content);
        obj.cacheable = true;
        obj.ttl_seconds = 24 * 3600.0;
        obj.body_bytes = image ? img_sizes.sample(rng) : css_sizes.sample(rng);
        domain.asset_objects.push_back(objects_.add(std::move(obj)));
      }

      // Template-fixed page dependencies: which assets and JSON XHRs each
      // page references.
      for (std::size_t h = 0; h < domain.html_objects.size(); ++h) {
        std::vector<std::size_t> assets;
        if (!domain.asset_objects.empty()) {
          const auto hi = std::min<std::size_t>(8, domain.asset_objects.size());
          const auto lo = std::min<std::size_t>(4, hi);
          const auto asset_count = static_cast<std::size_t>(rng.uniform_int(
              static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)));
          for (std::size_t a = 0; a < asset_count; ++a) {
            assets.push_back(domain.asset_objects[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(
                                       domain.asset_objects.size()) - 1))]);
          }
        }
        std::vector<std::size_t> xhrs;
        if (!domain.json_objects.empty()) {
          const auto xhr_count =
              static_cast<std::size_t>(rng.uniform_int(1, 3));
          for (std::size_t x = 0; x < xhr_count; ++x) {
            xhrs.push_back(domain.json_objects[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(
                                       domain.json_objects.size()) - 1))]);
          }
        }
        domain.page_assets.push_back(std::move(assets));
        domain.page_xhrs.push_back(std::move(xhrs));
      }

      // Machine-to-machine endpoints: a POST telemetry beacon and a GET
      // poller (latest-messages style). Both uncacheable, per §5.1's finding
      // that periodic traffic is mostly uncacheable and upload-heavy.
      {
        ObjectSpec beacon;
        beacon.url = base + "/api/v1/telemetry";
        beacon.domain = domain.name;
        beacon.content = http::ContentClass::kJson;
        beacon.content_type = content_type_for(beacon.content);
        beacon.cacheable = false;
        // Telemetry responses carry config/ack payloads, smaller than API
        // bodies but not trivial.
        beacon.body_bytes = std::max<std::uint64_t>(
            64, json_sizes.sample(rng) / 4);
        domain.telemetry_object = objects_.add(std::move(beacon));

        ObjectSpec poll;
        poll.url = base + "/api/v1/" + nouns[0] + "/latest";
        poll.domain = domain.name;
        poll.content = http::ContentClass::kJson;
        poll.content_type = content_type_for(poll.content);
        // Short-TTL cacheable polling following the domain's cacheability
        // policy, so never-cache domains stay on Fig. 4's left edge and
        // always-cache domains on its right edge.
        poll.cacheable = rng.bernoulli(domain.cacheable_share);
        poll.ttl_seconds = 10.0;
        poll.body_bytes = json_sizes.sample(rng);
        domain.poll_object = objects_.add(std::move(poll));
      }

      domains_.push_back(std::move(domain));
    }
  }

  // Zipf popularity over domains, shuffled so popularity is not correlated
  // with industry order, then mildly biased toward cacheable domains: the
  // high-volume CDN customers (news, media, sports) are exactly the ones
  // that cache. This is what lets the request-weighted uncacheable share
  // (~55%) coexist with ~50% of *domains* never caching, as in §4.
  stats::ZipfSampler zipf(domains_.size(), config.domain_popularity_zipf_s);
  std::vector<std::size_t> ranks(domains_.size());
  for (std::size_t i = 0; i < ranks.size(); ++i) ranks[i] = i;
  std::shuffle(ranks.begin(), ranks.end(), rng.engine());
  popularity_.resize(domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    popularity_[i] =
        zipf.pmf(ranks[i]) * (0.45 + 1.15 * domains_[i].cacheable_share);
    domains_[i].popularity_weight = popularity_[i];
  }
}

std::size_t DomainCatalog::sample_domain(stats::Rng& rng) const {
  return stats::weighted_choice(popularity_, rng);
}

std::vector<std::size_t> DomainCatalog::top_domains(std::size_t k) const {
  std::vector<std::size_t> indices(domains_.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
    return popularity_[a] > popularity_[b];
  });
  indices.resize(std::min(k, indices.size()));
  return indices;
}

}  // namespace jsoncdn::workload
