// Deterministic random number generation for the jsoncdn simulator.
//
// All randomness in the library flows from a single 64-bit seed through Rng so
// that a scenario run is exactly reproducible. Rng also supports cheap forking
// ("streams"): fork(key) derives an independent child generator from the
// parent seed and a caller-supplied key, so concurrent subsystems (per-client
// session models, per-domain catalogs, ...) draw from uncorrelated streams
// without sharing mutable state.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace jsoncdn::stats {

// SplitMix64 step: used to stretch user seeds into well-mixed state and to
// derive fork keys. Public because tests and the anonymizer reuse it.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Seeded pseudo-random generator wrapping mt19937_64 with convenience draws.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

  // Derives an independent generator from this generator's seed and `key`.
  // Forking depends only on (seed, key), not on how many draws the parent has
  // made, so the derivation is stable under refactoring of draw order.
  [[nodiscard]] Rng fork(std::uint64_t key) const {
    return Rng(splitmix64(seed_ ^ splitmix64(key)));
  }
  [[nodiscard]] Rng fork(std::string_view key) const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  // UniformRandomBitGenerator interface so <random> distributions accept Rng.
  static constexpr result_type min() { return std::mt19937_64::min(); }
  static constexpr result_type max() { return std::mt19937_64::max(); }
  result_type operator()() { return engine_(); }

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform();
  // Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  // Bernoulli draw with probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p);
  // Standard normal via the engine.
  [[nodiscard]] double normal(double mean, double stddev);
  // Exponential with given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate);

  std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
};

}  // namespace jsoncdn::stats
