#include <gtest/gtest.h>

#include "core/anomaly.h"
#include "core/prefetch.h"

namespace jsoncdn::core {
namespace {

std::vector<std::string> seq(std::initializer_list<const char*> tokens) {
  return {tokens.begin(), tokens.end()};
}

NgramModel chain_model() {
  NgramModel model(1);
  for (int i = 0; i < 20; ++i) {
    model.observe_sequence(seq({"a", "b", "c", "a", "b", "c"}));
  }
  return model;
}

TEST(ScoreSequence, ConformingFlowHasLowSurprisal) {
  const auto model = chain_model();
  const auto score = score_sequence(model, seq({"a", "b", "c", "a", "b"}));
  EXPECT_EQ(score.unpredicted, 0u);
  EXPECT_LT(score.mean_surprisal, 2.0);
}

TEST(ScoreSequence, OrderViolationScoresHigherThanNovelty) {
  const auto model = chain_model();
  // Known tokens in impossible order. k=1: the vocabulary is tiny, so any
  // larger k would cover it from the unigram backoff alone.
  const auto violation =
      score_sequence(model, seq({"c", "b", "a", "c", "b"}), 1);
  // Unknown tokens entirely.
  const auto novel = score_sequence(model, seq({"x", "y", "z", "w", "v"}), 1);
  EXPECT_GT(violation.mean_surprisal, novel.mean_surprisal);
  EXPECT_EQ(novel.novel, novel.unpredicted);
  EXPECT_GT(violation.unpredicted, 0u);
  EXPECT_EQ(violation.novel, 0u);
}

TEST(ScoreSequence, ShortSequencesScoreZeroTransitions) {
  const auto model = chain_model();
  const auto score = score_sequence(model, seq({"a"}));
  EXPECT_EQ(score.transitions, 0u);
  EXPECT_DOUBLE_EQ(score.mean_surprisal, 0.0);
}

TEST(ScoreSequence, RejectsZeroK) {
  const auto model = chain_model();
  EXPECT_THROW((void)score_sequence(model, seq({"a", "b"}), 0),
               std::invalid_argument);
}

TEST(CheckPeriod, SteadyFlowConforms) {
  std::vector<double> times;
  for (int i = 0; i < 30; ++i) times.push_back(10.0 * i);
  const auto result = check_period(times, 10.0);
  EXPECT_EQ(result.deviant_gaps, 0u);
  EXPECT_DOUBLE_EQ(result.deviant_share, 0.0);
}

TEST(CheckPeriod, MissedTicksAreNotDeviant) {
  // Gaps of exactly 2 periods (dropout) conform to the schedule.
  const std::vector<double> times = {0.0, 10.0, 30.0, 40.0, 60.0};
  const auto result = check_period(times, 10.0);
  EXPECT_EQ(result.deviant_gaps, 0u);
}

TEST(CheckPeriod, OffScheduleGapsFlagged) {
  const std::vector<double> times = {0.0, 10.0, 25.5, 40.0};
  // Gaps: 10 (ok), 15.5 (neither 10 nor 20 within 25%), 14.5 (deviant too).
  const auto result = check_period(times, 10.0);
  EXPECT_EQ(result.gaps, 3u);
  EXPECT_EQ(result.deviant_gaps, 2u);
}

TEST(CheckPeriod, RejectsBadArguments) {
  const std::vector<double> times = {0.0, 1.0};
  EXPECT_THROW((void)check_period(times, 0.0), std::invalid_argument);
  EXPECT_THROW((void)check_period(times, 10.0, 0.0), std::invalid_argument);
}

// ---- prefetcher -----------------------------------------------------------

logs::LogRecord served(const std::string& client, const std::string& url) {
  logs::LogRecord r;
  r.client_id = client;
  r.user_agent = "ua";
  r.url = url;
  r.content_type = "application/json";
  return r;
}

TEST(NgramPrefetcher, SuggestsLikelyNextUrls) {
  NgramPrefetcher prefetcher(chain_model(), PrefetcherParams{});
  const auto candidates = prefetcher.candidates(served("c1", "a"));
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates.front(), "b");
}

TEST(NgramPrefetcher, NeverSuggestsTheServedUrl) {
  NgramModel model(1);
  model.observe_sequence(seq({"a", "a", "a", "b"}));
  NgramPrefetcher prefetcher(std::move(model), PrefetcherParams{});
  for (const auto& c : prefetcher.candidates(served("c1", "a"))) {
    EXPECT_NE(c, "a");
  }
}

TEST(NgramPrefetcher, UsesPerClientHistory) {
  NgramModel model(2);
  for (int i = 0; i < 10; ++i) {
    model.observe_sequence(seq({"a", "b", "x"}));
    model.observe_sequence(seq({"z", "b", "y"}));
  }
  PrefetcherParams params;
  params.top_k = 1;
  NgramPrefetcher prefetcher(std::move(model), params);
  (void)prefetcher.candidates(served("c1", "a"));
  const auto after_ab = prefetcher.candidates(served("c1", "b"));
  ASSERT_FALSE(after_ab.empty());
  EXPECT_EQ(after_ab.front(), "x");  // (a,b) context, not bare b
  // A different client with (z,b) history gets y.
  (void)prefetcher.candidates(served("c2", "z"));
  const auto after_zb = prefetcher.candidates(served("c2", "b"));
  ASSERT_FALSE(after_zb.empty());
  EXPECT_EQ(after_zb.front(), "y");
}

TEST(NgramPrefetcher, ConfidenceFloorFiltersWeakPredictions) {
  NgramModel model(1);
  // 21 equally likely continuations: each scores < 0.05.
  for (int i = 0; i < 21; ++i) {
    const std::vector<std::string> tokens = {"a", "t" + std::to_string(i)};
    model.observe_sequence(tokens);
  }
  PrefetcherParams params;
  params.min_score = 0.05;
  NgramPrefetcher prefetcher(std::move(model), params);
  EXPECT_TRUE(prefetcher.candidates(served("c1", "a")).empty());
}

TEST(TrainPrefetchModel, BuildsFromClientFlows) {
  logs::Dataset ds;
  double t = 0.0;
  for (int c = 0; c < 5; ++c) {
    for (const char* url : {"u1", "u2", "u3"}) {
      logs::LogRecord r;
      r.timestamp = t;
      t += 1.0;
      r.client_id = "c" + std::to_string(c);
      r.user_agent = "ua";
      r.url = url;
      r.content_type = "application/json";
      ds.add(r);
    }
  }
  const auto model = train_prefetch_model(ds, 1);
  EXPECT_EQ(model.vocabulary_size(), 3u);
  EXPECT_GT(model.observed_transitions(), 0u);
}

}  // namespace
}  // namespace jsoncdn::core
