#include "http/headers.h"

#include <gtest/gtest.h>

namespace jsoncdn::http {
namespace {

TEST(IEquals, CaseInsensitiveAscii) {
  EXPECT_TRUE(iequals("Content-Type", "content-type"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("a", "ab"));
  EXPECT_FALSE(iequals("abc", "abd"));
}

TEST(HeaderMap, GetIsCaseInsensitive) {
  HeaderMap h;
  h.add("Content-Type", "application/json");
  EXPECT_EQ(h.get("content-type"), "application/json");
  EXPECT_EQ(h.get("CONTENT-TYPE"), "application/json");
  EXPECT_FALSE(h.get("content-length").has_value());
}

TEST(HeaderMap, RepeatedFieldsKeptInOrder) {
  HeaderMap h;
  h.add("Set-Cookie", "a=1");
  h.add("Set-Cookie", "b=2");
  const auto all = h.get_all("set-cookie");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], "a=1");
  EXPECT_EQ(all[1], "b=2");
  EXPECT_EQ(h.get("Set-Cookie"), "a=1");  // first wins
}

TEST(HeaderMap, SetReplacesAllInstances) {
  HeaderMap h;
  h.add("X", "1");
  h.add("X", "2");
  h.set("x", "3");
  EXPECT_EQ(h.get_all("X").size(), 1u);
  EXPECT_EQ(h.get("X"), "3");
}

TEST(HeaderMap, RemoveDeletesAllInstances) {
  HeaderMap h;
  h.add("A", "1");
  h.add("a", "2");
  h.add("B", "3");
  h.remove("A");
  EXPECT_FALSE(h.contains("a"));
  EXPECT_TRUE(h.contains("B"));
  EXPECT_EQ(h.size(), 1u);
}

TEST(HeaderMap, PreservesInsertionOrderAcrossNames) {
  HeaderMap h;
  h.add("B", "2");
  h.add("A", "1");
  ASSERT_EQ(h.fields().size(), 2u);
  EXPECT_EQ(h.fields()[0].name, "B");
  EXPECT_EQ(h.fields()[1].name, "A");
}

TEST(HeaderMap, EmptyByDefault) {
  HeaderMap h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.size(), 0u);
}

}  // namespace
}  // namespace jsoncdn::http
