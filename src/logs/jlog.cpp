#include "logs/jlog.h"

#include <fstream>
#include <memory>
#include <stdexcept>

#include "logs/zerocopy.h"

namespace jsoncdn::logs {

namespace {

constexpr std::string_view kJlogMagic = "jlogcdn1";    // 8 bytes
constexpr std::string_view kJlogV2Magic = "jlogcdn2";  // 8 bytes
constexpr std::size_t kMethodCount = 7;  // http::Method enumerator count

}  // namespace

void jlog_corrupt(const std::string& path, const char* what) {
  throw std::runtime_error("corrupt .jlog file " + path + ": " + what);
}

std::string_view jlog_magic() noexcept { return kJlogMagic; }
std::string_view jlog_v2_magic() noexcept { return kJlogV2Magic; }

LogFormat detect_log_format(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return LogFormat::kText;
  char head[8] = {};
  is.read(head, sizeof(head));
  if (is.gcount() != static_cast<std::streamsize>(kJlogMagic.size())) {
    return LogFormat::kText;
  }
  const std::string_view magic(head, kJlogMagic.size());
  if (magic == kJlogMagic) return LogFormat::kJlogV1;
  if (magic == kJlogV2Magic) return LogFormat::kJlogV2;
  return LogFormat::kText;
}

void write_jlog_dictionary(BinaryWriter& out, const StringInterner& dict) {
  out.pod<std::uint32_t>(static_cast<std::uint32_t>(dict.size()));
  for (std::size_t s = 0; s < dict.size(); ++s) {
    out.pod<std::uint32_t>(static_cast<std::uint32_t>(
        dict.view(static_cast<StringInterner::Symbol>(s)).size()));
  }
  for (std::size_t s = 0; s < dict.size(); ++s) {
    const auto v = dict.view(static_cast<StringInterner::Symbol>(s));
    out.raw(v.data(), v.size());
  }
}

void read_jlog_dictionary(BinaryReader& in, StringInterner& dict,
                          const std::string& path) {
  const auto count = in.pod<std::uint32_t>();
  const auto lengths = in.column<std::uint32_t>(count);
  dict.reserve(count);
  for (std::uint32_t s = 0; s < count; ++s) {
    const auto before = dict.size();
    dict.intern(in.bytes(lengths[s]));
    // Symbols must come out dense and in file order; a duplicate entry
    // would silently remap every row that references the later copy.
    if (dict.size() != before + 1) {
      jlog_corrupt(path, "duplicate dictionary entry");
    }
  }
}

// Friend of LogTable: moves columns in/out without per-row accessors.
class JlogReader {
 public:
  static void write(BinaryWriter& out, const LogTable& t) {
    out.raw(kJlogMagic.data(), kJlogMagic.size());
    out.pod<std::uint64_t>(t.size());
    write_jlog_dictionary(out, t.url_dict_);
    write_jlog_dictionary(out, t.client_id_dict_);
    write_jlog_dictionary(out, t.ua_dict_);
    write_jlog_dictionary(out, t.domain_dict_);
    write_jlog_dictionary(out, t.ctype_dict_);
    write_jlog_dictionary(out, t.client_dict_);
    out.column(t.ts_);
    write_enum_column(out, t.method_);
    out.column(t.status_);
    out.column(t.resp_bytes_);
    out.column(t.req_bytes_);
    write_enum_column(out, t.cache_);
    out.column(t.edge_);
    out.column(t.url_);
    out.column(t.client_id_);
    out.column(t.ua_);
    out.column(t.domain_);
    out.column(t.ctype_);
    out.column(t.client_);
  }

  static LogTable read(BinaryReader& in, const std::string& path) {
    const auto n64 = in.pod<std::uint64_t>();
    if (n64 > 0xffffffffULL) jlog_corrupt(path, "row count exceeds u32 range");
    const auto n = static_cast<std::size_t>(n64);

    LogTable t;
    read_jlog_dictionary(in, t.url_dict_, path);
    read_jlog_dictionary(in, t.client_id_dict_, path);
    read_jlog_dictionary(in, t.ua_dict_, path);
    read_jlog_dictionary(in, t.domain_dict_, path);
    read_jlog_dictionary(in, t.ctype_dict_, path);
    read_jlog_dictionary(in, t.client_dict_, path);

    t.ts_ = in.column<double>(n);
    t.method_ = read_enum_column<http::Method>(in, n, kMethodCount, path,
                                               "method value out of range");
    t.status_ = in.column<std::int32_t>(n);
    t.resp_bytes_ = in.column<std::uint64_t>(n);
    t.req_bytes_ = in.column<std::uint64_t>(n);
    t.cache_ = read_enum_column<CacheStatus>(in, n, kCacheStatusCount, path,
                                             "cache status out of range");
    t.edge_ = in.column<std::uint32_t>(n);
    t.url_ = read_symbol_column(in, n, t.url_dict_, path);
    t.client_id_ = read_symbol_column(in, n, t.client_id_dict_, path);
    t.ua_ = read_symbol_column(in, n, t.ua_dict_, path);
    t.domain_ = read_symbol_column(in, n, t.domain_dict_, path);
    t.ctype_ = read_symbol_column(in, n, t.ctype_dict_, path);
    t.client_ = read_symbol_column(in, n, t.client_dict_, path);
    if (!in.exhausted()) jlog_corrupt(path, "trailing bytes after columns");
    return t;
  }

 private:
  template <typename E>
  static void write_enum_column(BinaryWriter& out, const std::vector<E>& col) {
    std::vector<std::uint8_t> packed(col.size());
    for (std::size_t i = 0; i < col.size(); ++i) {
      packed[i] = static_cast<std::uint8_t>(col[i]);
    }
    out.column(packed);
  }

  template <typename E>
  static std::vector<E> read_enum_column(BinaryReader& in, std::size_t n,
                                         std::size_t limit,
                                         const std::string& path,
                                         const char* what) {
    const auto packed = in.column<std::uint8_t>(n);
    std::vector<E> col(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (packed[i] >= limit) jlog_corrupt(path, what);
      col[i] = static_cast<E>(packed[i]);
    }
    return col;
  }

  static std::vector<StringInterner::Symbol> read_symbol_column(
      BinaryReader& in, std::size_t n, const StringInterner& dict,
      const std::string& path) {
    auto col = in.column<StringInterner::Symbol>(n);
    for (const auto sym : col) {
      if (sym >= dict.size()) {
        jlog_corrupt(path, "symbol out of dictionary range");
      }
    }
    return col;
  }
};

void write_jlog(const std::string& path, const LogTable& table) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot create .jlog file: " + path);
  BinaryWriter out(os);
  JlogReader::write(out, table);
  os.flush();
  if (!os) throw std::runtime_error("cannot write .jlog file: " + path);
}

LogTable read_jlog(const std::string& path, IngestReport* report) {
  // Same mapping machinery as the zero-copy TSV path: the kernel pages the
  // image in as the bulk column copies walk it, with a whole-file read
  // fallback where mmap is unavailable.
  std::unique_ptr<MappedFile> file;
  try {
    file = std::make_unique<MappedFile>(path);
  } catch (const std::exception&) {
    throw std::runtime_error("cannot open .jlog file: " + path);
  }
  BinaryReader in(file->view(), path);
  in.need(kJlogMagic.size(), "file shorter than magic");
  if (in.bytes(kJlogMagic.size()) != kJlogMagic) {
    jlog_corrupt(path, "bad magic (not a .jlog v1 file)");
  }
  LogTable table = JlogReader::read(in, path);
  if (report != nullptr) {
    IngestReport r;
    r.lines = table.size();
    r.records = table.size();
    r.header_seen = true;  // the magic is the binary format's header
    *report = std::move(r);
  }
  return table;
}

bool is_jlog_file(const std::string& path) {
  return detect_log_format(path) == LogFormat::kJlogV1;
}

}  // namespace jsoncdn::logs
