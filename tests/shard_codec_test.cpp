// Unit tests for the v2 codec primitives (shard/varint.h) and the chunk
// codec (shard/chunk.h): canonical round trips across the full u64 range,
// rejection of truncated/overlong encodings, zone-map derivation, and
// corrupt-payload rejection.
#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "logs/record.h"
#include "logs/table.h"
#include "shard/chunk.h"
#include "shard/format.h"
#include "shard/varint.h"

namespace {

using jsoncdn::logs::CacheStatus;
using jsoncdn::logs::LogRecord;
using jsoncdn::logs::LogTable;
using jsoncdn::shard::ChunkCodec;
using jsoncdn::shard::ChunkMeta;
using jsoncdn::shard::DeltaDecoder;
using jsoncdn::shard::DeltaEncoder;
using jsoncdn::shard::get_varint;
using jsoncdn::shard::pack3;
using jsoncdn::shard::put_varint;
using jsoncdn::shard::unpack3;
using jsoncdn::shard::zigzag_decode;
using jsoncdn::shard::zigzag_encode;

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,     1,     127,        128,
      16383, 16384, 0xffffffffu, 0x100000000ull,
      std::numeric_limits<std::uint64_t>::max() - 1,
      std::numeric_limits<std::uint64_t>::max(),
  };
  for (const auto v : values) {
    std::string buf;
    put_varint(buf, v);
    ASSERT_LE(buf.size(), jsoncdn::shard::kMaxVarintBytes);
    std::size_t pos = 0;
    std::uint64_t out = 0;
    ASSERT_TRUE(get_varint(buf, pos, out)) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(Varint, RejectsTruncation) {
  std::string buf;
  put_varint(buf, 0x1234567890abcdefull);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    std::size_t pos = 0;
    std::uint64_t out = 0;
    EXPECT_FALSE(get_varint(std::string_view(buf).substr(0, len), pos, out))
        << "accepted a " << len << "-byte prefix";
  }
}

TEST(Varint, RejectsOverlongAndOverflowingEncodings) {
  // Eleven continuation bytes: longer than any canonical u64 encoding.
  std::string overlong(11, '\x80');
  overlong.push_back('\x01');
  std::size_t pos = 0;
  std::uint64_t out = 0;
  EXPECT_FALSE(get_varint(overlong, pos, out));

  // Ten bytes whose final byte carries bits beyond the 64th.
  std::string overflow(9, '\x80');
  overflow.push_back('\x02');
  pos = 0;
  EXPECT_FALSE(get_varint(overflow, pos, out));
}

TEST(Zigzag, RoundTripsFullRange) {
  const std::int64_t values[] = {
      0, -1, 1, -2, 2, std::numeric_limits<std::int64_t>::min(),
      std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
  }
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(DeltaCodec, RoundTripsModularSequencesIncludingU64Max) {
  const std::vector<std::uint64_t> values = {
      0,
      std::numeric_limits<std::uint64_t>::max(),
      1,
      1ull << 63,
      0,
      42,
      std::numeric_limits<std::uint64_t>::max() - 7,
  };
  std::string buf;
  DeltaEncoder enc;
  for (const auto v : values) enc.put(buf, v);
  DeltaDecoder dec;
  std::size_t pos = 0;
  for (const auto v : values) {
    std::uint64_t out = 0;
    ASSERT_TRUE(dec.get(buf, pos, out));
    EXPECT_EQ(out, v);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(Pack3, RoundTripsAllValuesAndOddCounts) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{7}, std::size_t{8}, std::size_t{41}}) {
    std::vector<std::uint8_t> values(n);
    for (std::size_t i = 0; i < n; ++i) {
      values[i] = static_cast<std::uint8_t>(i % 8);
    }
    std::string buf;
    pack3(buf, values.data(), n);
    EXPECT_EQ(buf.size(), (3 * n + 7) / 8);
    std::vector<std::uint8_t> out(n);
    std::size_t pos = 0;
    ASSERT_TRUE(unpack3(buf, pos, out.data(), n));
    EXPECT_EQ(out, values);
    EXPECT_EQ(pos, buf.size());

    if (n > 0) {
      // One byte short must be rejected, not read out of bounds.
      std::size_t short_pos = 0;
      EXPECT_FALSE(unpack3(std::string_view(buf).substr(0, buf.size() - 1),
                           short_pos, out.data(), n));
    }
  }
}

LogRecord make_record(double ts, const std::string& url, int status,
                      std::uint64_t resp) {
  LogRecord r;
  r.timestamp = ts;
  r.client_id = "client-a";
  r.user_agent = "agent/1.0";
  r.method = jsoncdn::http::Method::kGet;
  r.url = url;
  r.domain = "d.example";
  r.content_type = "application/json";
  r.status = status;
  r.response_bytes = resp;
  r.request_bytes = 0;
  r.cache_status = CacheStatus::kHit;
  r.edge_id = 3;
  return r;
}

TEST(ChunkCodec, RoundTripsRowsAndZoneMap) {
  LogTable table;
  table.append(make_record(10.5, "/a", 200, 100));
  table.append(make_record(11.0, "/b", 404, 0));
  table.append(
      make_record(9.25, "/a", 200,
                  std::numeric_limits<std::uint64_t>::max()));

  std::string payload;
  const ChunkMeta meta =
      ChunkCodec::encode(table, 0, static_cast<std::uint32_t>(table.size()),
                         payload);
  EXPECT_EQ(meta.row_count, 3u);
  EXPECT_EQ(meta.min_ts, 9.25);
  EXPECT_EQ(meta.max_ts, 11.0);
  EXPECT_EQ(meta.symbols[jsoncdn::shard::kSymUrl].min_sym, 0u);
  EXPECT_EQ(meta.symbols[jsoncdn::shard::kSymUrl].max_sym, 1u);
  EXPECT_EQ(meta.payload_bytes, payload.size());

  // Decode into a scratch table holding the same dictionaries.
  LogTable scratch;
  scratch.append(make_record(0, "/a", 200, 0));
  scratch.append(make_record(0, "/b", 200, 0));
  scratch.clear_rows();
  ChunkCodec::decode(payload, meta, scratch, "test");
  ASSERT_EQ(scratch.size(), 3u);
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(scratch.timestamp(i), table.timestamp(i));
    EXPECT_EQ(scratch.url(i), table.url(i));
    EXPECT_EQ(scratch.status(i), table.status(i));
    EXPECT_EQ(scratch.response_bytes(i), table.response_bytes(i));
    EXPECT_EQ(scratch.cache_status(i), table.cache_status(i));
    EXPECT_EQ(scratch.edge_id(i), table.edge_id(i));
  }
}

TEST(ChunkCodec, SingleRecordAndZeroRowChunks) {
  LogTable table;
  table.append(make_record(1.0, "/solo", 200, 7));

  std::string payload;
  const ChunkMeta one = ChunkCodec::encode(table, 0, 1, payload);
  EXPECT_EQ(one.row_count, 1u);
  EXPECT_EQ(one.min_ts, 1.0);
  EXPECT_EQ(one.max_ts, 1.0);

  std::string empty_payload;
  const ChunkMeta zero = ChunkCodec::encode(table, 1, 1, empty_payload);
  EXPECT_EQ(zero.row_count, 0u);
  EXPECT_TRUE(empty_payload.empty());
  EXPECT_EQ(zero.min_ts, 0.0);
  EXPECT_EQ(zero.max_ts, 0.0);

  LogTable scratch;
  scratch.append(make_record(0, "/solo", 200, 0));
  scratch.clear_rows();
  ChunkCodec::decode(payload, one, scratch, "test");
  EXPECT_EQ(scratch.size(), 1u);
  scratch.clear_rows();
  ChunkCodec::decode(empty_payload, zero, scratch, "test");
  EXPECT_EQ(scratch.size(), 0u);
}

TEST(ChunkCodec, RejectsEverySingleByteFlip) {
  LogTable table;
  for (int i = 0; i < 16; ++i) {
    table.append(make_record(1.0 + i, i % 2 ? "/x" : "/y", 200, 100 + i));
  }
  std::string payload;
  const ChunkMeta meta = ChunkCodec::encode(
      table, 0, static_cast<std::uint32_t>(table.size()), payload);

  for (std::size_t byte = 0; byte < payload.size(); ++byte) {
    std::string corrupt = payload;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    LogTable scratch;
    scratch.append(make_record(0, "/y", 200, 0));
    scratch.append(make_record(0, "/x", 200, 0));
    scratch.clear_rows();
    // The checksum catches every flip before decode even starts.
    EXPECT_THROW(ChunkCodec::decode(corrupt, meta, scratch, "test"),
                 std::runtime_error)
        << "flip at byte " << byte << " was accepted";
  }
}

TEST(ChunkCodec, RejectsLyingZoneMap) {
  LogTable table;
  table.append(make_record(5.0, "/a", 200, 10));
  std::string payload;
  ChunkMeta meta = ChunkCodec::encode(table, 0, 1, payload);
  // A zone map claiming a different time range (checksum intact) must be
  // rejected — pruning decisions have to be trustworthy.
  meta.min_ts = 100.0;
  meta.max_ts = 200.0;
  LogTable scratch;
  scratch.append(make_record(0, "/a", 200, 0));
  scratch.clear_rows();
  EXPECT_THROW(ChunkCodec::decode(payload, meta, scratch, "test"),
               std::runtime_error);
}

TEST(ChunkCodec, RejectsTruncatedPayload) {
  LogTable table;
  for (int i = 0; i < 8; ++i) {
    table.append(make_record(1.0 + i, "/a", 200, 50));
  }
  std::string payload;
  ChunkMeta meta = ChunkCodec::encode(
      table, 0, static_cast<std::uint32_t>(table.size()), payload);
  for (const std::size_t keep :
       {std::size_t{0}, payload.size() / 2, payload.size() - 1}) {
    LogTable scratch;
    scratch.append(make_record(0, "/a", 200, 0));
    scratch.clear_rows();
    EXPECT_THROW(
        ChunkCodec::decode(std::string_view(payload).substr(0, keep), meta,
                           scratch, "test"),
        std::runtime_error);
  }
}

TEST(ChunkCodec, RejectsOutOfDictionarySymbols) {
  LogTable table;
  table.append(make_record(1.0, "/a", 200, 10));
  table.append(make_record(2.0, "/b", 200, 20));
  std::string payload;
  const ChunkMeta meta = ChunkCodec::encode(table, 0, 2, payload);

  // A scratch table whose url dictionary is *smaller* than the encoder's
  // must reject the out-of-range symbol.
  LogTable scratch;
  scratch.append(make_record(0, "/a", 200, 0));
  scratch.clear_rows();
  EXPECT_THROW(ChunkCodec::decode(payload, meta, scratch, "test"),
               std::runtime_error);
}

}  // namespace
