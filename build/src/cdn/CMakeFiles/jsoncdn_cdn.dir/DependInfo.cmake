
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdn/cache.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/cache.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/cache.cpp.o.d"
  "/root/repo/src/cdn/edge.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/edge.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/edge.cpp.o.d"
  "/root/repo/src/cdn/metrics.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/metrics.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/metrics.cpp.o.d"
  "/root/repo/src/cdn/network.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/network.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/network.cpp.o.d"
  "/root/repo/src/cdn/origin.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/origin.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/origin.cpp.o.d"
  "/root/repo/src/cdn/prioritizer.cpp" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/prioritizer.cpp.o" "gcc" "src/cdn/CMakeFiles/jsoncdn_cdn.dir/prioritizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/jsoncdn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/jsoncdn_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
