#include "stats/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace jsoncdn::stats {
namespace {

TEST(ZipfSampler, PmfSumsToOne) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) sum += zipf.pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, PmfIsMonotoneDecreasing) {
  ZipfSampler zipf(50, 1.2);
  for (std::size_t k = 1; k < zipf.size(); ++k) {
    EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1));
  }
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler zipf(10, 0.0);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_NEAR(zipf.pmf(k), 0.1, 1e-12);
}

TEST(ZipfSampler, SingleItemAlwaysRankZero) {
  ZipfSampler zipf(1, 2.0);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -0.1), std::invalid_argument);
}

TEST(ZipfSampler, PmfThrowsOutOfRange) {
  ZipfSampler zipf(5, 1.0);
  EXPECT_THROW((void)zipf.pmf(5), std::out_of_range);
}

// Sampling frequencies should track the pmf across exponents.
class ZipfFrequencyTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfFrequencyTest, EmpiricalFrequencyMatchesPmf) {
  const double s = GetParam();
  ZipfSampler zipf(20, s);
  Rng rng(123);
  std::vector<int> counts(20, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 5; ++k) {  // check the head, where mass is
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.01)
        << "rank " << k << " s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfFrequencyTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.3, 2.0));

TEST(BodySizeSampler, RespectsClamping) {
  BodySizeSampler::Params p;
  p.log_mean = 20.0;  // enormous draws
  p.log_stddev = 0.1;
  p.min_bytes = 100;
  p.max_bytes = 1000;
  BodySizeSampler sampler(p);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto b = sampler.sample(rng);
    EXPECT_GE(b, 100u);
    EXPECT_LE(b, 1000u);
  }
}

TEST(BodySizeSampler, MedianNearLogMean) {
  BodySizeSampler::Params p;
  p.log_mean = 8.0;
  p.log_stddev = 0.5;
  p.tail_prob = 0.0;
  BodySizeSampler sampler(p);
  Rng rng(2);
  std::vector<double> draws;
  for (int i = 0; i < 20000; ++i)
    draws.push_back(static_cast<double>(sampler.sample(rng)));
  std::nth_element(draws.begin(), draws.begin() + draws.size() / 2,
                   draws.end());
  EXPECT_NEAR(draws[draws.size() / 2], std::exp(8.0),
              std::exp(8.0) * 0.05);
}

TEST(BodySizeSampler, TailProducesLargeBodies) {
  BodySizeSampler::Params p;
  p.log_mean = 5.0;
  p.log_stddev = 0.1;
  p.tail_prob = 1.0;  // always the Pareto tail
  p.tail_xm = 1 << 20;
  p.tail_alpha = 2.0;
  BodySizeSampler sampler(p);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(sampler.sample(rng), static_cast<std::uint64_t>(1 << 20));
  }
}

TEST(BodySizeSampler, RejectsBadParameters) {
  BodySizeSampler::Params p;
  p.tail_prob = 1.5;
  EXPECT_THROW(BodySizeSampler{p}, std::invalid_argument);
  p.tail_prob = 0.1;
  p.tail_alpha = 0.0;
  EXPECT_THROW(BodySizeSampler{p}, std::invalid_argument);
  p.tail_alpha = 1.0;
  p.min_bytes = 10;
  p.max_bytes = 5;
  EXPECT_THROW(BodySizeSampler{p}, std::invalid_argument);
}

TEST(PoissonProcess, ArrivalsAreAscendingWithinWindow) {
  PoissonProcess process(0.5);
  Rng rng(4);
  const auto arrivals = process.arrivals(10.0, 200.0, rng);
  ASSERT_FALSE(arrivals.empty());
  for (std::size_t i = 0; i < arrivals.size(); ++i) {
    EXPECT_GE(arrivals[i], 10.0);
    EXPECT_LT(arrivals[i], 200.0);
    if (i > 0) EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
}

TEST(PoissonProcess, CountMatchesRate) {
  PoissonProcess process(2.0);
  Rng rng(5);
  double total = 0.0;
  for (int r = 0; r < 50; ++r) {
    total += static_cast<double>(process.arrivals(0.0, 100.0, rng).size());
  }
  EXPECT_NEAR(total / 50.0, 200.0, 10.0);
}

TEST(PoissonProcess, NextAfterIsStrictlyLater) {
  PoissonProcess process(1.0);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_GT(process.next_after(5.0, rng), 5.0);
}

TEST(PoissonProcess, RejectsBadParameters) {
  EXPECT_THROW(PoissonProcess(0.0), std::invalid_argument);
  PoissonProcess process(1.0);
  Rng rng(1);
  EXPECT_THROW((void)process.arrivals(5.0, 1.0, rng), std::invalid_argument);
}

TEST(WeightedChoice, RespectsWeights) {
  Rng rng(7);
  std::vector<double> weights = {0.0, 3.0, 1.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[weighted_choice(weights, rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.25, 0.02);
}

TEST(WeightedChoice, RejectsDegenerateInput) {
  Rng rng(8);
  std::vector<double> zero = {0.0, 0.0};
  std::vector<double> negative = {1.0, -1.0};
  std::vector<double> empty;
  EXPECT_THROW((void)weighted_choice(zero, rng), std::invalid_argument);
  EXPECT_THROW((void)weighted_choice(negative, rng), std::invalid_argument);
  EXPECT_THROW((void)weighted_choice(empty, rng), std::invalid_argument);
}

TEST(WeightedChoice, SinglePositiveWeightAlwaysChosen) {
  Rng rng(9);
  std::vector<double> weights = {0.0, 0.0, 2.5};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(weighted_choice(weights, rng), 2u);
}

}  // namespace
}  // namespace jsoncdn::stats
