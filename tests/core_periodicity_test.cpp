#include "core/periodicity.h"

#include <gtest/gtest.h>

#include <cmath>

#include "workload/sessions.h"

namespace jsoncdn::core {
namespace {

std::vector<double> periodic_times(double period, std::size_t count,
                                   double jitter, std::uint64_t seed,
                                   double dropout = 0.0) {
  stats::Rng rng(seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < count; ++i) {
    if (dropout > 0.0 && rng.bernoulli(dropout)) continue;
    double t = period * static_cast<double>(i);
    if (jitter > 0.0) t += rng.normal(0.0, jitter);
    times.push_back(t);
  }
  std::sort(times.begin(), times.end());
  return times;
}

std::vector<double> poisson_times(double rate, double duration,
                                  std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> times;
  double t = 0.0;
  while (true) {
    t += rng.exponential(rate);
    if (t >= duration) break;
    times.push_back(t);
  }
  return times;
}

DetectorParams fast_params() {
  DetectorParams params;
  params.permutations = 100;
  return params;
}

// --- detector on planted periods, across period x jitter ------------------

struct PlantedCase {
  double period;
  double jitter;
};

class PlantedPeriodTest : public ::testing::TestWithParam<PlantedCase> {};

TEST_P(PlantedPeriodTest, DetectsWithinTolerance) {
  const auto [period, jitter] = GetParam();
  const auto times = periodic_times(period, 40, jitter, 7, 0.02);
  PeriodicityDetector detector(fast_params());
  stats::Rng rng(1);
  const auto result = detector.detect(times, rng);
  ASSERT_TRUE(result.periodic) << "period=" << period << " jitter=" << jitter;
  EXPECT_NEAR(result.period_seconds, period, period * 0.15);
  EXPECT_GT(result.acf_peak_value, result.acf_threshold);
}

INSTANTIATE_TEST_SUITE_P(
    PeriodsAndJitter, PlantedPeriodTest,
    ::testing::Values(PlantedCase{30.0, 0.0}, PlantedCase{30.0, 0.5},
                      PlantedCase{30.0, 1.5}, PlantedCase{60.0, 0.5},
                      PlantedCase{120.0, 1.0}, PlantedCase{300.0, 2.0},
                      PlantedCase{900.0, 5.0}, PlantedCase{1800.0, 10.0}));

TEST(PeriodicityDetector, RejectsPoissonTraffic) {
  PeriodicityDetector detector(fast_params());
  int false_positives = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto times = poisson_times(1.0 / 30.0, 2400.0, seed);
    if (times.size() < 10) continue;
    stats::Rng rng(seed + 100);
    if (detector.detect(times, rng).periodic) ++false_positives;
  }
  // The threshold targets ~p=0.01 per test; a couple of hits in 20 noisy
  // flows would already be unusual.
  EXPECT_LE(false_positives, 2);
}

TEST(PeriodicityDetector, RejectsTooFewRequests) {
  PeriodicityDetector detector(fast_params());
  stats::Rng rng(1);
  const std::vector<double> times = {0.0, 30.0, 60.0};
  EXPECT_FALSE(detector.detect(times, rng).periodic);
}

TEST(PeriodicityDetector, RejectsBurstOfSimultaneousRequests) {
  PeriodicityDetector detector(fast_params());
  stats::Rng rng(1);
  std::vector<double> times(50, 1.0);  // zero span
  EXPECT_FALSE(detector.detect(times, rng).periodic);
}

TEST(PeriodicityDetector, NeedsMinCyclesInWindow) {
  // Period 1000 s but only ~2 cycles observed: must not report it.
  const auto times = periodic_times(1000.0, 3, 0.0, 1);
  PeriodicityDetector detector(fast_params());
  stats::Rng rng(2);
  const auto result = detector.detect(times, rng);
  EXPECT_FALSE(result.periodic);
}

TEST(PeriodicityDetector, DeterministicGivenSameRngSeed) {
  const auto times = periodic_times(60.0, 30, 0.5, 3);
  PeriodicityDetector detector(fast_params());
  stats::Rng r1(5);
  stats::Rng r2(5);
  const auto a = detector.detect(times, r1);
  const auto b = detector.detect(times, r2);
  EXPECT_EQ(a.periodic, b.periodic);
  EXPECT_DOUBLE_EQ(a.period_seconds, b.period_seconds);
}

TEST(PeriodicityDetector, PeriodsMatchTolerance) {
  DetectorParams params;
  params.period_match_tolerance = 0.15;
  PeriodicityDetector detector(params);
  EXPECT_TRUE(detector.periods_match(30.0, 30.0));
  EXPECT_TRUE(detector.periods_match(30.0, 33.0));
  EXPECT_FALSE(detector.periods_match(30.0, 40.0));
  EXPECT_FALSE(detector.periods_match(30.0, 60.0));
  EXPECT_FALSE(detector.periods_match(0.0, 30.0));
}

TEST(PeriodicityDetector, RejectsBadParams) {
  DetectorParams params;
  params.sample_interval = 0.0;
  EXPECT_THROW(PeriodicityDetector{params}, std::invalid_argument);
  params = {};
  params.permutations = 1;
  EXPECT_THROW(PeriodicityDetector{params}, std::invalid_argument);
  params = {};
  params.period_match_tolerance = 1.5;
  EXPECT_THROW(PeriodicityDetector{params}, std::invalid_argument);
  params = {};
  params.min_cycles = 1.0;
  EXPECT_THROW(PeriodicityDetector{params}, std::invalid_argument);
}

TEST(PeriodicityDetector, LongPeriodLongSpanStillResolved) {
  // 30-minute period over a day: exercises the adaptive re-binning path.
  const auto times = periodic_times(1800.0, 48, 5.0, 9);
  PeriodicityDetector detector(fast_params());
  stats::Rng rng(10);
  const auto result = detector.detect(times, rng);
  ASSERT_TRUE(result.periodic);
  EXPECT_NEAR(result.period_seconds, 1800.0, 1800.0 * 0.15);
}

// --- dataset-level analysis ------------------------------------------------

logs::LogRecord rec(double t, const std::string& client,
                    const std::string& url,
                    http::Method method = http::Method::kGet) {
  logs::LogRecord r;
  r.timestamp = t;
  r.client_id = client;
  r.user_agent = "ua";
  r.url = url;
  r.domain = "d";
  r.content_type = "application/json";
  r.method = method;
  r.cache_status = logs::CacheStatus::kNotCacheable;
  return r;
}

logs::Dataset mixed_dataset() {
  logs::Dataset ds;
  // Periodic object: 12 clients polling at 60 s (shared period), offset
  // phases.
  for (int c = 0; c < 12; ++c) {
    stats::Rng rng(100 + c);
    const double phase = rng.uniform(0.0, 60.0);
    for (int i = 0; i < 25; ++i) {
      ds.add(rec(phase + 60.0 * i + rng.normal(0.0, 0.3),
                 "p" + std::to_string(c), "https://d/poll"));
    }
  }
  // Aperiodic object: 12 clients with Poisson traffic.
  for (int c = 0; c < 12; ++c) {
    stats::Rng rng(200 + c);
    double t = 0.0;
    for (int i = 0; i < 25; ++i) {
      t += rng.exponential(1.0 / 60.0);
      ds.add(rec(t, "a" + std::to_string(c), "https://d/random",
                 http::Method::kPost));
    }
  }
  ds.sort_by_time();
  return ds;
}

TEST(AnalyzePeriodicity, SeparatesPeriodicFromPoissonObjects) {
  const auto ds = mixed_dataset();
  PeriodicityConfig config;
  const auto report = analyze_periodicity(ds, config);
  ASSERT_EQ(report.objects.size(), 2u);

  const auto* poll = &report.objects[0];
  const auto* random = &report.objects[1];
  if (poll->url != "https://d/poll") std::swap(poll, random);

  EXPECT_TRUE(poll->object_periodic);
  EXPECT_NEAR(poll->object_period_seconds, 60.0, 9.0);
  EXPECT_GT(poll->periodic_client_share, 0.8);

  EXPECT_EQ(random->periodic_client_count, 0u);
}

TEST(AnalyzePeriodicity, ReportAggregatesShares) {
  const auto ds = mixed_dataset();
  PeriodicityConfig config;
  const auto report = analyze_periodicity(ds, config);
  EXPECT_EQ(report.total_requests, ds.size());
  EXPECT_GT(report.periodic_requests, 0u);
  EXPECT_NEAR(report.periodic_request_share,
              static_cast<double>(report.periodic_requests) /
                  static_cast<double>(ds.size()),
              1e-12);
  // The periodic object is GET + uncacheable in this dataset.
  EXPECT_NEAR(report.periodic_uncacheable_share, 1.0, 1e-9);
  EXPECT_NEAR(report.periodic_upload_share, 0.0, 1e-9);
  ASSERT_EQ(report.object_periods.size(), 1u);
  ASSERT_EQ(report.periodic_client_shares.size(), 1u);
}

TEST(AnalyzePeriodicity, DeterministicAcrossRuns) {
  const auto ds = mixed_dataset();
  PeriodicityConfig config;
  const auto a = analyze_periodicity(ds, config);
  const auto b = analyze_periodicity(ds, config);
  EXPECT_EQ(a.periodic_requests, b.periodic_requests);
  EXPECT_EQ(a.object_periods, b.object_periods);
}

TEST(AnalyzePeriodicity, FlowFilterExcludesSmallObjects) {
  logs::Dataset ds;
  // 3 clients only -> below the >=10 clients filter.
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 20; ++i) {
      ds.add(rec(60.0 * i, "c" + std::to_string(c), "https://d/x"));
    }
  }
  const auto report = analyze_periodicity(ds, PeriodicityConfig{});
  EXPECT_TRUE(report.objects.empty());
  EXPECT_EQ(report.periodic_requests, 0u);
}

}  // namespace
}  // namespace jsoncdn::core
