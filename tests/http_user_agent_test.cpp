#include "http/user_agent.h"

#include <gtest/gtest.h>

namespace jsoncdn::http {
namespace {

TEST(ParseUserAgent, ProductsAndVersions) {
  const auto ua = parse_user_agent("NewsReader/5.2.1 CFNetwork/978.0.7");
  ASSERT_EQ(ua.products.size(), 2u);
  EXPECT_EQ(ua.products[0].name, "NewsReader");
  EXPECT_EQ(ua.products[0].version, "5.2.1");
  EXPECT_EQ(ua.products[1].name, "CFNetwork");
  EXPECT_TRUE(ua.comments.empty());
}

TEST(ParseUserAgent, CommentsSplitOnSemicolon) {
  const auto ua =
      parse_user_agent("Mozilla/5.0 (iPhone; CPU iPhone OS 12_4) Safari/604.1");
  ASSERT_EQ(ua.products.size(), 2u);
  ASSERT_EQ(ua.comments.size(), 2u);
  EXPECT_EQ(ua.comments[0], "iPhone");
  EXPECT_EQ(ua.comments[1], "CPU iPhone OS 12_4");
}

TEST(ParseUserAgent, VersionlessProduct) {
  const auto ua = parse_user_agent("Wget");
  ASSERT_EQ(ua.products.size(), 1u);
  EXPECT_EQ(ua.products[0].name, "Wget");
  EXPECT_TRUE(ua.products[0].version.empty());
}

TEST(ParseUserAgent, EmptyInput) {
  const auto ua = parse_user_agent("");
  EXPECT_TRUE(ua.empty());
  EXPECT_TRUE(ua.products.empty());
}

TEST(ParseUserAgent, WhitespaceOnlyInput) {
  const auto ua = parse_user_agent("   ");
  EXPECT_TRUE(ua.empty());
}

TEST(ParseUserAgent, UnbalancedParenDoesNotCrash) {
  const auto ua = parse_user_agent("App/1.0 (unterminated comment");
  EXPECT_EQ(ua.products.size(), 1u);
  ASSERT_FALSE(ua.comments.empty());
}

TEST(ParseUserAgent, NestedParensStayInOneComment) {
  const auto ua = parse_user_agent("App/1.0 (outer (inner) rest)");
  ASSERT_EQ(ua.products.size(), 1u);
  ASSERT_EQ(ua.comments.size(), 1u);
  EXPECT_EQ(ua.comments[0], "outer (inner) rest");
}

TEST(ParseUserAgent, GarbageBytesTokenizeSomething) {
  const auto ua = parse_user_agent("0x8fA3-device");
  EXPECT_FALSE(ua.empty());
  EXPECT_EQ(ua.products.size(), 1u);
}

TEST(IContains, CaseInsensitiveSearch) {
  EXPECT_TRUE(icontains("Mozilla/5.0 (iPhone)", "iphone"));
  EXPECT_TRUE(icontains("abc", ""));
  EXPECT_FALSE(icontains("abc", "abcd"));
  EXPECT_FALSE(icontains("PlayStation", "xbox"));
}

TEST(Mentions, SearchesRawString) {
  const auto ua = parse_user_agent("Mozilla/5.0 (PlayStation 4 6.72)");
  EXPECT_TRUE(ua.mentions("playstation"));
  EXPECT_FALSE(ua.mentions("nintendo"));
}

}  // namespace
}  // namespace jsoncdn::http
