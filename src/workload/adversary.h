// Hostile traffic classes: deterministic adversarial workloads layered on
// top of the benign population, with full ground-truth attacker labels so
// tests can score how the paper's detectors and the characterization
// marginals degrade as the hostile share rises — and how well the edge's
// overload protection shields human-class traffic.
//
// Four attack classes, mirroring what a CDN operator actually absorbs:
//
//   scraper      — bots walking a domain's URL space in order at machine
//                  cadence, with a configurable share of probes to URLs that
//                  do not exist (tunneled to the origin as 404s).
//   stuffing     — credential-stuffing bursts: POST floods against an auth
//                  endpoint (/api/v1/login) that is not in the catalog, from
//                  bots wearing faked browser UAs (so only per-client rate
//                  limiting, not UA classing, can stop them).
//   flash-crowd  — a correlated spike of real browser sessions against the
//                  most popular domain, Gaussian around one moment in the
//                  window. Human-class load, not malice: the case shedding
//                  must NOT punish.
//   oversized    — amplification: cheap GETs hammering the catalog's largest
//                  bodies so each request pins an edge worker for a long
//                  transfer.
//
// All randomness flows from the fork discipline of the caller's Rng, so the
// same seed reproduces the same attack bit-for-bit.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "stats/rng.h"
#include "workload/catalog.h"

namespace jsoncdn::workload {

struct Workload;  // defined in workload/generator.h

enum class AttackKind {
  kScraper,
  kStuffing,
  kFlashCrowd,
  kOversized,
};
inline constexpr std::size_t kAttackKindCount = 4;

[[nodiscard]] std::string_view to_string(AttackKind kind) noexcept;
// Parses the to_string() token; returns false on anything else.
[[nodiscard]] bool parse_attack_kind(std::string_view text,
                                     AttackKind& out) noexcept;

struct HostileConfig {
  // Target share of final workload events that are hostile. 0 disables the
  // whole layer (the generator emits no attacker truth and no events).
  double hostile_share = 0.0;

  // Relative event-budget weights per attack class (0 disables a class).
  double scraper_weight = 0.35;
  double stuffing_weight = 0.20;
  double flash_crowd_weight = 0.30;
  double oversized_weight = 0.15;

  // Scrapers: requests/second per bot and the share of requests probing
  // URLs outside the catalog.
  double scraper_rate = 6.0;
  double scraper_probe_share = 0.25;

  // Credential stuffing: in-burst request rate and burst size range.
  double stuffing_burst_rate = 20.0;
  std::size_t stuffing_burst_lo = 40;
  std::size_t stuffing_burst_hi = 160;

  // Flash crowd: session start times are Gaussian around a spike moment
  // drawn uniformly from the middle of the window.
  double flash_spike_stddev_seconds = 25.0;

  // Oversized amplification: how many of the largest catalog bodies are
  // targeted, and the per-bot request rate.
  std::size_t oversized_top_objects = 5;
  double oversized_rate = 3.0;
};

// One attacker client (attackers get dedicated TEST-NET-style addresses, so
// a client-address join turns these into per-request labels).
struct AttackerTruth {
  std::string client_address;
  std::string user_agent;
  AttackKind kind = AttackKind::kScraper;
  std::size_t request_count = 0;  // in-window events actually emitted
};

// Appends hostile events (all inside [0, window)) and attacker truth to
// `out`, sized so hostile traffic is ~`hostile_share` of the final stream
// given `benign_events` already present. Caller re-sorts afterwards.
// Returns the number of hostile events emitted.
std::size_t inject_hostile_traffic(Workload& out, const DomainCatalog& catalog,
                                   const HostileConfig& config, double window,
                                   std::size_t benign_events, stats::Rng rng);

}  // namespace jsoncdn::workload
