// Longitudinal content-type mix model behind Fig. 1 (JSON:HTML request ratio
// on the CDN, 2016 -> 2019) and the §4 note that mean JSON response size
// shrank ~28% over the same span.
//
// The paper attributes the shift to the app ecosystem: native mobile and
// embedded apps (pure JSON consumers) displacing browser page views
// (HTML + subresources), and payloads slimming as APIs mature. We model
// exactly those drivers: per quarter, the client population mix interpolates
// from a 2016 browser-heavy ecosystem to the 2019 app-heavy one observed in
// the paper, and the JSON size model shifts downward. Each quarter is then
// *simulated* — the ratio is measured from generated traffic, not computed
// in closed form.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/generator.h"

namespace jsoncdn::workload {

struct GrowthConfig {
  std::uint64_t seed = 7;
  int start_year = 2016;
  int start_quarter = 1;       // 1-based
  int n_quarters = 15;         // 2016Q1 .. 2019Q3 inclusive
  std::size_t clients_per_quarter = 1200;
  double duration_seconds = 600.0;
  // Ecosystem endpoints (interpolated geometrically per quarter).
  PopulationShares mix_2016{0.07, 0.15, 0.43, 0.03, 0.05, 0.23, 0.04};
  PopulationShares mix_2019{0.50, 0.06, 0.08, 0.12, 0.03, 0.165, 0.03};
  // Total multiplicative change of mean JSON body size over the span
  // (0.72 == the paper's -28%).
  double json_size_total_scale = 0.72;
  // View/data separation grows over the span (Section 2.2): pages fire more
  // JSON XHRs, unknown-UA traffic shifts from scripts to apps, hybrid-app
  // webviews fade as apps go API-only.
  double browser_xhr_prob_2016 = 0.15;
  double browser_xhr_prob_2019 = 0.80;
  std::size_t browser_max_xhr_2016 = 1;
  std::size_t browser_max_xhr_2019 = 3;
  double unknown_app_like_2016 = 0.20;
  double unknown_app_like_2019 = 0.75;
  double webview_prob_2016 = 0.65;
  double webview_prob_2019 = 0.30;
  // CDN-wide request volume index relative to 2016Q1 (traffic grows).
  double quarterly_traffic_growth = 1.05;
};

struct QuarterStats {
  int year = 2016;
  int quarter = 1;
  std::string label;            // "2016Q1"
  std::uint64_t json_requests = 0;
  std::uint64_t html_requests = 0;
  double json_html_ratio = 0.0;
  double mean_json_bytes = 0.0;
  double mean_html_bytes = 0.0;
  // Catalog-level (object-weighted) median JSON body size. The
  // request-weighted mean confounds the size trend with the traffic-mix
  // trend (telemetry acks vs API payloads); the object median isolates
  // "JSON responses got smaller".
  double median_json_bytes = 0.0;
};

// Population mix + size shift for quarter q in [0, n_quarters).
[[nodiscard]] PopulationShares interpolate_mix(const GrowthConfig& config,
                                               int q);
[[nodiscard]] double json_size_log_shift_at(const GrowthConfig& config, int q);

// Simulates every quarter and reports the Fig. 1 series.
[[nodiscard]] std::vector<QuarterStats> simulate_growth(
    const GrowthConfig& config);

}  // namespace jsoncdn::workload
