#include "stats/fft.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numbers>

#include "stats/rng.h"

namespace jsoncdn::stats {
namespace {

// O(n^2) reference DFT.
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc(0.0, 0.0);
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = 2.0 * std::numbers::pi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n) *
                           (inverse ? 1.0 : -1.0);
      acc += x[j] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(NextPow2, OverflowBoundary) {
  constexpr std::size_t kTop =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  // Exact powers map to themselves, including the largest representable one.
  EXPECT_EQ(next_pow2(kTop / 2), kTop / 2);
  EXPECT_EQ(next_pow2(kTop - 1), kTop);
  EXPECT_EQ(next_pow2(kTop), kTop);
  // Beyond the top power of two, no result is representable: 0 sentinel
  // instead of an infinite shift loop.
  EXPECT_EQ(next_pow2(kTop + 1), 0u);
  EXPECT_EQ(next_pow2(std::numeric_limits<std::size_t>::max()), 0u);
}

TEST(Fft, RejectsNonPowerOfTwo) {
  std::vector<std::complex<double>> data(3);
  EXPECT_THROW(fft_inplace(data, false), std::invalid_argument);
  std::vector<std::complex<double>> empty;
  EXPECT_THROW(fft_inplace(empty, false), std::invalid_argument);
}

class FftVsNaiveTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsNaiveTest, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  Rng rng(n);
  std::vector<std::complex<double>> data(n);
  for (auto& v : data) v = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  auto expected = naive_dft(data, false);
  auto actual = data;
  fft_inplace(actual, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(actual[k].real(), expected[k].real(), 1e-9 * n);
    EXPECT_NEAR(actual[k].imag(), expected[k].imag(), 1e-9 * n);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftVsNaiveTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256));

TEST(Fft, InverseRoundTripsToIdentity) {
  Rng rng(9);
  std::vector<std::complex<double>> data(128);
  for (auto& v : data) v = {rng.uniform(-5.0, 5.0), rng.uniform(-5.0, 5.0)};
  auto transformed = data;
  fft_inplace(transformed, false);
  const auto back = ifft(std::move(transformed));
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(back[i].real(), data[i].real(), 1e-9);
    EXPECT_NEAR(back[i].imag(), data[i].imag(), 1e-9);
  }
}

TEST(Fft, ParsevalEnergyConservation) {
  Rng rng(10);
  std::vector<std::complex<double>> data(64);
  double time_energy = 0.0;
  for (auto& v : data) {
    v = {rng.uniform(-1.0, 1.0), 0.0};
    time_energy += std::norm(v);
  }
  auto freq = data;
  fft_inplace(freq, false);
  double freq_energy = 0.0;
  for (const auto& v : freq) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / 64.0, time_energy, 1e-9);
}

TEST(FftReal, PadsToPowerOfTwo) {
  std::vector<double> signal(100, 1.0);
  const auto spectrum = fft_real(signal);
  EXPECT_EQ(spectrum.size(), 128u);
}

TEST(Periodogram, PeakAtKnownFrequency) {
  // 8 cycles over 256 samples -> power concentrated at bin 8.
  std::vector<double> signal(256);
  for (std::size_t i = 0; i < signal.size(); ++i) {
    signal[i] =
        std::sin(2.0 * std::numbers::pi * 8.0 * static_cast<double>(i) / 256.0);
  }
  const auto pgram = periodogram(signal);
  std::size_t best = 0;
  for (std::size_t k = 1; k < pgram.power.size(); ++k) {
    if (pgram.power[k] > pgram.power[best]) best = k;
  }
  EXPECT_NEAR(pgram.frequency(best), 8.0 / 256.0, 1e-6);
  EXPECT_NEAR(pgram.period(best), 32.0, 1e-6);
}

TEST(Periodogram, DcIsExcluded) {
  // Pure constant: mean removal leaves nothing.
  std::vector<double> signal(64, 5.0);
  const auto pgram = periodogram(signal);
  for (const double p : pgram.power) EXPECT_NEAR(p, 0.0, 1e-12);
}

TEST(Periodogram, RejectsEmptySignal) {
  EXPECT_THROW((void)periodogram({}), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::stats
