// Golden regression for the default detector: a committed 2700 s workload
// capture plus the per-flow labels the pre-refactor ACF+FFT pipeline
// produced for it, periods stored as hexfloats. The strategy refactor (and
// anything after it) must reproduce every label and every period to the
// bit, or this fails with the exact flow that moved.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/periodicity.h"
#include "logs/csv.h"
#include "oracle/metamorphic.h"

#ifndef JSONCDN_TEST_DATA_DIR
#error "JSONCDN_TEST_DATA_DIR must point at tests/data"
#endif

namespace jsoncdn::core {
namespace {

oracle::DetectionLabels read_golden_labels(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "missing golden labels: " << path;
  oracle::DetectionLabels labels;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string url;
    std::string client;
    std::string flag;
    std::string period;
    std::getline(row, url, '\t');
    std::getline(row, client, '\t');
    std::getline(row, flag, '\t');
    std::getline(row, period, '\t');
    labels[{url, client}] = {flag == "1",
                             std::strtod(period.c_str(), nullptr)};
  }
  return labels;
}

TEST(PeriodicityGolden, DefaultStrategyReproducesCommittedLabels) {
  const std::string data_dir = JSONCDN_TEST_DATA_DIR;
  const auto dataset =
      logs::read_log_file(data_dir + "/periodicity_golden.tsv");
  ASSERT_GT(dataset.size(), 1000u);

  PeriodicityConfig config;
  config.threads = 1;
  const auto report = analyze_periodicity(dataset.json_only(), config);
  const auto labels = oracle::detection_labels(report);

  const auto golden =
      read_golden_labels(data_dir + "/periodicity_golden_labels.tsv");
  ASSERT_FALSE(golden.empty());
  std::size_t golden_periodic = 0;
  for (const auto& [key, value] : golden) golden_periodic += value.first;
  ASSERT_GT(golden_periodic, 0u) << "fixture carries no periodic flows";

  EXPECT_EQ(labels.size(), golden.size());
  for (const auto& [key, expected] : golden) {
    const auto it = labels.find(key);
    ASSERT_NE(it, labels.end())
        << "flow missing from report: " << key.first << " / " << key.second;
    EXPECT_EQ(it->second.first, expected.first)
        << "label flipped: " << key.first << " / " << key.second;
    // Bit-identical, not approximately equal: the fixture stores hexfloats.
    EXPECT_EQ(it->second.second, expected.second)
        << "period moved: " << key.first << " / " << key.second;
  }
}

}  // namespace
}  // namespace jsoncdn::core
