# Empty dependencies file for fig1_json_growth.
# This may be replaced when dependencies are built.
