#include "core/characterization.h"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "stats/kernels.h"
#include "stats/parallel.h"

namespace jsoncdn::core {

namespace {

constexpr std::size_t device_index(http::DeviceType d) noexcept {
  return static_cast<std::size_t>(d);
}

// The counting kernels read enum columns through their int underlying type
// ([expr.static.cast]/10 allows the aliasing) and assume the enumerator
// numbering below; a new enumerator that breaks either assumption fails here
// instead of miscounting.
static_assert(sizeof(http::Method) == sizeof(std::int32_t));
static_assert(sizeof(logs::CacheStatus) == sizeof(std::int32_t));
static_assert(static_cast<int>(http::Method::kGet) == 0 &&
              static_cast<int>(http::Method::kPost) == 1 &&
              static_cast<int>(http::Method::kPatch) == 6);
static_assert(static_cast<int>(logs::CacheStatus::kHit) == 0 &&
              static_cast<int>(logs::CacheStatus::kThrottled) == 7 &&
              logs::kCacheStatusCount == 8);

// Kernel-facing view of an enum/symbol column restricted to a shard
// [begin, end) of TableView positions: a direct column walk (offset by
// begin) for whole-table views, a gather through the view's row indices
// otherwise.
struct ShardSlice {
  const std::uint32_t* idx;  // nullptr => contiguous
  std::size_t begin;
  std::size_t n;

  ShardSlice(const logs::TableView& view, std::size_t b, std::size_t e)
      : idx(view.row_indices() == nullptr ? nullptr
                                          : view.row_indices() + b),
        begin(b),
        n(e - b) {}

  template <typename T>
  [[nodiscard]] const std::int32_t* enum_col(std::span<const T> col) const {
    return reinterpret_cast<const std::int32_t*>(col.data()) +
           (idx == nullptr ? begin : 0);
  }
  [[nodiscard]] const std::uint32_t* u32_col(
      std::span<const std::uint32_t> col) const {
    return col.data() + (idx == nullptr ? begin : 0);
  }
};

}  // namespace

double SourceBreakdown::device_share(http::DeviceType d) const noexcept {
  return total_requests == 0
             ? 0.0
             : static_cast<double>(requests_by_device[device_index(d)]) /
                   static_cast<double>(total_requests);
}

double SourceBreakdown::ua_string_share(http::DeviceType d) const noexcept {
  return total_ua_strings == 0
             ? 0.0
             : static_cast<double>(ua_strings_by_device[device_index(d)]) /
                   static_cast<double>(total_ua_strings);
}

double SourceBreakdown::browser_share() const noexcept {
  return total_requests == 0 ? 0.0
                             : static_cast<double>(browser_requests) /
                                   static_cast<double>(total_requests);
}

double SourceBreakdown::non_browser_share() const noexcept {
  return total_requests == 0 ? 0.0 : 1.0 - browser_share();
}

double SourceBreakdown::mobile_browser_share() const noexcept {
  return total_requests == 0 ? 0.0
                             : static_cast<double>(mobile_browser_requests) /
                                   static_cast<double>(total_requests);
}

void SourceBreakdown::merge(const SourceBreakdown& other) noexcept {
  for (std::size_t d = 0; d < requests_by_device.size(); ++d) {
    requests_by_device[d] += other.requests_by_device[d];
    ua_strings_by_device[d] += other.ua_strings_by_device[d];
  }
  total_requests += other.total_requests;
  total_ua_strings += other.total_ua_strings;
  browser_requests += other.browser_requests;
  mobile_browser_requests += other.mobile_browser_requests;
  missing_ua_requests += other.missing_ua_requests;
}

namespace {

// Per-shard accumulator: request counters plus the shard's distinct-UA
// classification cache. UA-string counting happens after the caches are
// unioned, so a UA seen by several shards still counts once.
struct SourceShard {
  SourceBreakdown breakdown;  // request-side counters only
  std::unordered_map<std::string, http::DeviceClassification> ua_cache;

  void merge(SourceShard& other) {
    breakdown.merge(other.breakdown);
    ua_cache.merge(other.ua_cache);
  }
};

}  // namespace

SourceBreakdown characterize_source(const logs::TableView& view,
                                    std::size_t threads) {
  const auto& table = view.table();
  // Classify each distinct UA once, up front: the dictionary is tiny next to
  // the row count. The row loop then reduces to a symbol histogram (the
  // group-by counting kernel) and every per-request marginal is recovered
  // from per-symbol counts — integer sums commute, so the totals match the
  // per-row loop exactly.
  const auto& uas = table.user_agents();
  std::vector<http::DeviceClassification> cls_by_sym(uas.size());
  for (std::size_t s = 0; s < uas.size(); ++s) {
    cls_by_sym[s] = http::classify_device(
        uas.view(static_cast<logs::StringInterner::Symbol>(s)));
  }

  struct Shard {
    std::vector<std::uint64_t> count_by_sym;
    void merge(const Shard& other) {
      if (count_by_sym.size() < other.count_by_sym.size())
        count_by_sym.resize(other.count_by_sym.size(), 0);
      for (std::size_t s = 0; s < other.count_by_sym.size(); ++s)
        count_by_sym[s] += other.count_by_sym[s];
    }
  };
  stats::ThreadPool pool(threads);
  const auto shard = stats::parallel_reduce<Shard>(
      pool, view.size(), [&](Shard& acc, std::size_t begin, std::size_t end) {
        acc.count_by_sym.resize(uas.size(), 0);
        const ShardSlice slice(view, begin, end);
        stats::kernels::count_u32(slice.u32_col(table.user_agent_syms()),
                                  slice.idx, slice.n,
                                  acc.count_by_sym.data(), uas.size());
      });
  SourceBreakdown out;
  for (std::size_t s = 0; s < shard.count_by_sym.size(); ++s) {
    const std::uint64_t c = shard.count_by_sym[s];
    if (c == 0) continue;
    const auto& cls = cls_by_sym[s];
    out.total_requests += c;
    out.requests_by_device[device_index(cls.device)] += c;
    if (cls.is_browser()) {
      out.browser_requests += c;
      if (cls.device == http::DeviceType::kMobile)
        out.mobile_browser_requests += c;
    }
    const bool empty_ua =
        uas.view(static_cast<logs::StringInterner::Symbol>(s)).empty();
    if (empty_ua) {
      out.missing_ua_requests += c;
      continue;  // a missing header is not a UA string
    }
    ++out.total_ua_strings;
    ++out.ua_strings_by_device[device_index(cls.device)];
  }
  return out;
}

SourceBreakdown characterize_source(const logs::Dataset& ds,
                                    std::size_t threads) {
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  auto shard = stats::parallel_reduce<SourceShard>(
      pool, records.size(),
      [&](SourceShard& acc, std::size_t begin, std::size_t end) {
        auto& out = acc.breakdown;
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = records[i];
          // Classification cached per distinct string since datasets repeat
          // UAs millions of times.
          const auto [it, inserted] = acc.ua_cache.try_emplace(
              record.user_agent, http::DeviceClassification{});
          if (inserted) it->second = http::classify_device(record.user_agent);
          const auto& cls = it->second;

          ++out.total_requests;
          ++out.requests_by_device[device_index(cls.device)];
          if (cls.is_browser()) {
            ++out.browser_requests;
            if (cls.device == http::DeviceType::kMobile)
              ++out.mobile_browser_requests;
          }
          if (record.user_agent.empty()) ++out.missing_ua_requests;
        }
      });
  SourceBreakdown out = shard.breakdown;
  for (const auto& [ua, cls] : shard.ua_cache) {
    if (ua.empty()) continue;  // a missing header is not a UA string
    ++out.total_ua_strings;
    ++out.ua_strings_by_device[device_index(cls.device)];
  }
  return out;
}

double MethodMix::get_share() const noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(get) / static_cast<double>(total);
}

double MethodMix::post_share_of_non_get() const noexcept {
  const auto non_get = total - get;
  return non_get == 0 ? 0.0
                      : static_cast<double>(post) /
                            static_cast<double>(non_get);
}

double MethodMix::upload_share() const noexcept {
  // In this log schema the upload methods are POST and the residual "other"
  // bucket's PUT/PATCH; downloads are GET/HEAD.
  return total == 0 ? 0.0
                    : static_cast<double>(post) / static_cast<double>(total);
}

void MethodMix::merge(const MethodMix& shard) noexcept {
  get += shard.get;
  post += shard.post;
  other += shard.other;
  total += shard.total;
}

MethodMix characterize_methods(const logs::TableView& view,
                               std::size_t threads) {
  const auto& table = view.table();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<MethodMix>(
      pool, view.size(),
      [&](MethodMix& out, std::size_t begin, std::size_t end) {
        const ShardSlice slice(view, begin, end);
        std::uint64_t counts[8] = {};
        stats::kernels::count_enum8(slice.enum_col(table.methods()),
                                    slice.idx, slice.n, counts);
        out.get += counts[static_cast<int>(http::Method::kGet)];
        out.post += counts[static_cast<int>(http::Method::kPost)];
        out.total += slice.n;
        // Everything else lands in the residual bucket, as the switch did.
        std::uint64_t other = 0;
        for (int m = 0; m < 8; ++m) {
          if (m != static_cast<int>(http::Method::kGet) &&
              m != static_cast<int>(http::Method::kPost))
            other += counts[m];
        }
        out.other += other;
      });
}

MethodMix characterize_methods(const logs::Dataset& ds, std::size_t threads) {
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<MethodMix>(
      pool, records.size(),
      [&](MethodMix& out, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          ++out.total;
          switch (records[i].method) {
            case http::Method::kGet: ++out.get; break;
            case http::Method::kPost: ++out.post; break;
            default: ++out.other; break;
          }
        }
      });
}

double CacheabilityStats::uncacheable_share() const noexcept {
  const auto total = cacheable + uncacheable;
  return total == 0 ? 0.0
                    : static_cast<double>(uncacheable) /
                          static_cast<double>(total);
}

double CacheabilityStats::hit_share() const noexcept {
  const auto total = cacheable + uncacheable;
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void CacheabilityStats::merge(const CacheabilityStats& shard) noexcept {
  cacheable += shard.cacheable;
  uncacheable += shard.uncacheable;
  hits += shard.hits;
}

CacheabilityStats characterize_cacheability(const logs::TableView& view,
                                            std::size_t threads) {
  const auto& table = view.table();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<CacheabilityStats>(
      pool, view.size(),
      [&](CacheabilityStats& out, std::size_t begin, std::size_t end) {
        const ShardSlice slice(view, begin, end);
        std::uint64_t counts[8] = {};
        stats::kernels::count_enum8(slice.enum_col(table.cache_statuses()),
                                    slice.idx, slice.n, counts);
        // Same bucketing as count_cache_status, applied to the tallies.
        const auto c = [&](logs::CacheStatus s) {
          return counts[static_cast<int>(s)];
        };
        out.uncacheable += c(logs::CacheStatus::kNotCacheable);
        out.cacheable += c(logs::CacheStatus::kHit) +
                         c(logs::CacheStatus::kStale) +
                         c(logs::CacheStatus::kMiss) +
                         c(logs::CacheStatus::kRefreshHit);
        out.hits += c(logs::CacheStatus::kHit) + c(logs::CacheStatus::kStale);
      });
}

CacheabilityStats characterize_cacheability(const logs::Dataset& ds,
                                            std::size_t threads) {
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<CacheabilityStats>(
      pool, records.size(),
      [&](CacheabilityStats& out, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          switch (records[i].cache_status) {
            case logs::CacheStatus::kError:
            case logs::CacheStatus::kShed:
            case logs::CacheStatus::kThrottled:
              // Failures and overload rejections carry no cacheability signal.
              break;
            case logs::CacheStatus::kNotCacheable:
              ++out.uncacheable;
              break;
            case logs::CacheStatus::kHit:
            case logs::CacheStatus::kStale:  // served from CDN storage
              ++out.cacheable;
              ++out.hits;
              break;
            case logs::CacheStatus::kMiss:
            case logs::CacheStatus::kRefreshHit:
              ++out.cacheable;
              break;
          }
        }
      });
}

double StatusBreakdown::error_share() const noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(server_error_5xx) /
                          static_cast<double>(total);
}

double StatusBreakdown::absorbed_share() const noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(stale_served) /
                          static_cast<double>(total);
}

double StatusBreakdown::rejected_share() const noexcept {
  return total == 0 ? 0.0
                    : static_cast<double>(shed + throttled) /
                          static_cast<double>(total);
}

void StatusBreakdown::merge(const StatusBreakdown& shard) noexcept {
  total += shard.total;
  ok_2xx += shard.ok_2xx;
  redirect_3xx += shard.redirect_3xx;
  client_error_4xx += shard.client_error_4xx;
  server_error_5xx += shard.server_error_5xx;
  gateway_timeout_504 += shard.gateway_timeout_504;
  stale_served += shard.stale_served;
  error_cache_status += shard.error_cache_status;
  shed += shard.shed;
  throttled += shard.throttled;
}

StatusBreakdown characterize_status(const logs::TableView& view,
                                    std::size_t threads) {
  const auto& table = view.table();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<StatusBreakdown>(
      pool, view.size(),
      [&](StatusBreakdown& out, std::size_t begin, std::size_t end) {
        const ShardSlice slice(view, begin, end);
        const auto buckets = stats::kernels::count_status(
            slice.enum_col(table.statuses()), slice.idx, slice.n);
        out.total += slice.n;
        out.ok_2xx += buckets.ok_2xx;
        out.redirect_3xx += buckets.redirect_3xx;
        out.client_error_4xx += buckets.client_error_4xx;
        out.server_error_5xx += buckets.server_error_5xx;
        out.gateway_timeout_504 += buckets.gateway_timeout_504;
        std::uint64_t cache_counts[8] = {};
        stats::kernels::count_enum8(slice.enum_col(table.cache_statuses()),
                                    slice.idx, slice.n, cache_counts);
        out.stale_served +=
            cache_counts[static_cast<int>(logs::CacheStatus::kStale)];
        out.error_cache_status +=
            cache_counts[static_cast<int>(logs::CacheStatus::kError)];
        out.shed += cache_counts[static_cast<int>(logs::CacheStatus::kShed)];
        out.throttled +=
            cache_counts[static_cast<int>(logs::CacheStatus::kThrottled)];
      });
}

StatusBreakdown characterize_status(const logs::Dataset& ds,
                                    std::size_t threads) {
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  return stats::parallel_reduce<StatusBreakdown>(
      pool, records.size(),
      [&](StatusBreakdown& out, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = records[i];
          ++out.total;
          if (record.status >= 500) {
            ++out.server_error_5xx;
            if (record.status == 504) ++out.gateway_timeout_504;
          } else if (record.status >= 400) {
            ++out.client_error_4xx;
          } else if (record.status >= 300) {
            ++out.redirect_3xx;
          } else if (record.status >= 200) {
            ++out.ok_2xx;
          }
          if (record.cache_status == logs::CacheStatus::kStale)
            ++out.stale_served;
          if (record.cache_status == logs::CacheStatus::kError)
            ++out.error_cache_status;
          if (record.cache_status == logs::CacheStatus::kShed) ++out.shed;
          if (record.cache_status == logs::CacheStatus::kThrottled)
            ++out.throttled;
        }
      });
}

double SizeComparison::p50_ratio() const noexcept {
  return html.p50 == 0.0 ? 0.0 : json.p50 / html.p50;
}

double SizeComparison::p75_ratio() const noexcept {
  return html.p75 == 0.0 ? 0.0 : json.p75 / html.p75;
}

namespace {

// Chunk-ordered concatenation keeps the collected sizes in record order, so
// the summaries match the serial pass bit for bit.
struct SizeShard {
  std::vector<double> json_sizes;
  std::vector<double> html_sizes;

  void merge(const SizeShard& shard) {
    json_sizes.insert(json_sizes.end(), shard.json_sizes.begin(),
                      shard.json_sizes.end());
    html_sizes.insert(html_sizes.end(), shard.html_sizes.begin(),
                      shard.html_sizes.end());
  }
};

}  // namespace

SizeComparison compare_sizes(const logs::TableView& view,
                             std::size_t threads) {
  const auto& table = view.table();
  // One classification per distinct content-type symbol.
  const auto& ctypes = table.content_types();
  std::vector<http::ContentClass> class_by_sym(ctypes.size());
  for (std::size_t s = 0; s < ctypes.size(); ++s) {
    class_by_sym[s] = http::classify_content(
        ctypes.view(static_cast<logs::StringInterner::Symbol>(s)));
  }
  stats::ThreadPool pool(threads);
  const auto shard = stats::parallel_reduce<SizeShard>(
      pool, view.size(),
      [&](SizeShard& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = view[i];
          const auto content = class_by_sym[table.content_type_sym(row)];
          if (content == http::ContentClass::kJson) {
            acc.json_sizes.push_back(
                static_cast<double>(table.response_bytes(row)));
          } else if (content == http::ContentClass::kHtml) {
            acc.html_sizes.push_back(
                static_cast<double>(table.response_bytes(row)));
          }
        }
      });
  SizeComparison out;
  out.json = stats::summarize(shard.json_sizes);
  out.html = stats::summarize(shard.html_sizes);
  return out;
}

SizeComparison compare_sizes(const logs::Dataset& ds, std::size_t threads) {
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  const auto shard = stats::parallel_reduce<SizeShard>(
      pool, records.size(),
      [&](SizeShard& acc, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto content =
              http::classify_content(records[i].content_type);
          if (content == http::ContentClass::kJson) {
            acc.json_sizes.push_back(
                static_cast<double>(records[i].response_bytes));
          } else if (content == http::ContentClass::kHtml) {
            acc.html_sizes.push_back(
                static_cast<double>(records[i].response_bytes));
          }
        }
      });
  SizeComparison out;
  out.json = stats::summarize(shard.json_sizes);
  out.html = stats::summarize(shard.html_sizes);
  return out;
}

std::vector<DomainCacheability> domain_cacheability(
    const logs::TableView& view, const IndustryLookup& industry_of,
    std::size_t threads) {
  if (!industry_of)
    throw std::invalid_argument("domain_cacheability: null industry lookup");
  const auto& table = view.table();
  const auto& domains = table.domains();
  struct Acc {
    std::uint64_t requests = 0;
    std::uint64_t cacheable = 0;
  };
  struct DomainShard {
    std::vector<Acc> by_sym;  // flat per-domain-symbol accumulators
    void merge(const DomainShard& other) {
      if (by_sym.size() < other.by_sym.size()) by_sym.resize(other.by_sym.size());
      for (std::size_t s = 0; s < other.by_sym.size(); ++s) {
        by_sym[s].requests += other.by_sym[s].requests;
        by_sym[s].cacheable += other.by_sym[s].cacheable;
      }
    }
  };
  stats::ThreadPool pool(threads);
  const auto merged = stats::parallel_reduce<DomainShard>(
      pool, view.size(),
      [&](DomainShard& shard, std::size_t begin, std::size_t end) {
        shard.by_sym.resize(domains.size());
        for (std::size_t i = begin; i < end; ++i) {
          const auto row = view[i];
          // Same filters as the Dataset overload: download traffic only,
          // ERROR records carry no cacheability signal.
          if (!http::is_download(table.method(row))) continue;
          const auto cache = table.cache_status(row);
          if (cache == logs::CacheStatus::kError) continue;
          auto& acc = shard.by_sym[table.domain_sym(row)];
          ++acc.requests;
          if (cache != logs::CacheStatus::kNotCacheable) ++acc.cacheable;
        }
      });
  // Emit in domain-string order — the order the Dataset overload's ordered
  // map iterates in.
  std::vector<logs::StringInterner::Symbol> present;
  for (std::size_t s = 0; s < merged.by_sym.size(); ++s) {
    if (merged.by_sym[s].requests > 0)
      present.push_back(static_cast<logs::StringInterner::Symbol>(s));
  }
  std::sort(present.begin(), present.end(),
            [&](logs::StringInterner::Symbol a, logs::StringInterner::Symbol b) {
              return domains.view(a) < domains.view(b);
            });
  std::vector<DomainCacheability> out;
  out.reserve(present.size());
  for (const auto sym : present) {
    const auto& acc = merged.by_sym[sym];
    DomainCacheability dc;
    dc.domain = std::string(domains.view(sym));
    dc.category = industry_of(dc.domain);
    dc.requests = acc.requests;
    dc.cacheable_share = static_cast<double>(acc.cacheable) /
                         static_cast<double>(acc.requests);
    out.push_back(std::move(dc));
  }
  return out;
}

std::vector<DomainCacheability> domain_cacheability(
    const logs::Dataset& ds, const IndustryLookup& industry_of,
    std::size_t threads) {
  if (!industry_of)
    throw std::invalid_argument("domain_cacheability: null industry lookup");
  struct Acc {
    std::uint64_t requests = 0;
    std::uint64_t cacheable = 0;
  };
  struct DomainShard {
    std::map<std::string, Acc> by_domain;  // ordered => deterministic output

    void merge(const DomainShard& shard) {
      for (const auto& [domain, acc] : shard.by_domain) {
        auto& mine = by_domain[domain];
        mine.requests += acc.requests;
        mine.cacheable += acc.cacheable;
      }
    }
  };
  const auto& records = ds.records();
  stats::ThreadPool pool(threads);
  const auto merged = stats::parallel_reduce<DomainShard>(
      pool, records.size(),
      [&](DomainShard& shard, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          const auto& record = records[i];
          // Cacheability is a property of *served content*: uploads are
          // inherently uncacheable and would push every domain off the
          // heatmap's right edge, so the Fig. 4 view considers download
          // traffic only.
          if (!http::is_download(record.method)) continue;
          // ERROR records carry no cacheability signal (see
          // characterize_cacheability).
          if (record.cache_status == logs::CacheStatus::kError) continue;
          auto& acc = shard.by_domain[record.domain];
          ++acc.requests;
          if (record.cache_status != logs::CacheStatus::kNotCacheable)
            ++acc.cacheable;
        }
      });
  const auto& by_domain = merged.by_domain;
  std::vector<DomainCacheability> out;
  out.reserve(by_domain.size());
  for (const auto& [domain, acc] : by_domain) {
    DomainCacheability dc;
    dc.domain = domain;
    dc.category = industry_of(domain);
    dc.requests = acc.requests;
    dc.cacheable_share = acc.requests == 0
                             ? 0.0
                             : static_cast<double>(acc.cacheable) /
                                   static_cast<double>(acc.requests);
    out.push_back(std::move(dc));
  }
  return out;
}

CacheabilityHeatmap cacheability_heatmap(
    const std::vector<DomainCacheability>& domains, std::size_t bins) {
  if (bins < 2)
    throw std::invalid_argument("cacheability_heatmap: bins < 2");
  CacheabilityHeatmap out;
  out.bins = bins;

  std::map<std::string, std::vector<double>> shares_by_category;
  std::size_t never = 0;
  std::size_t always = 0;
  for (const auto& d : domains) {
    shares_by_category[d.category].push_back(d.cacheable_share);
    if (d.cacheable_share <= 0.0) ++never;
    if (d.cacheable_share >= 1.0) ++always;
  }
  if (!domains.empty()) {
    out.never_cache_domain_share =
        static_cast<double>(never) / static_cast<double>(domains.size());
    out.always_cache_domain_share =
        static_cast<double>(always) / static_cast<double>(domains.size());
  }

  for (const auto& [category, shares] : shares_by_category) {
    out.categories.push_back(category);
    std::vector<double> row(bins, 0.0);
    for (double s : shares) {
      auto bin = static_cast<std::size_t>(s * static_cast<double>(bins));
      if (bin >= bins) bin = bins - 1;  // s == 1.0 lands in the last bin
      row[bin] += 1.0;
    }
    for (double& cell : row) cell /= static_cast<double>(shares.size());
    out.density.push_back(std::move(row));
  }
  return out;
}

}  // namespace jsoncdn::core
