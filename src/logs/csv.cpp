#include "logs/csv.h"

#include <array>
#include <charconv>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "http/method.h"

namespace jsoncdn::logs {

namespace {

constexpr std::string_view kHeader =
    "#jsoncdn-log-v1\ttime\tclient\tua\tmethod\turl\tdomain\tmime\tstatus\t"
    "resp_bytes\treq_bytes\tcache\tedge";
constexpr std::size_t kColumns = 12;

// Escapes field separators; reuses percent-encoding for the three bytes that
// would break the line format.
std::string escape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      case '%': out += "%25"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

template <typename T>
bool parse_number(std::string_view s, T& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
#if defined(__cpp_lib_to_chars)
  // Fast path: from_chars parses straight off the view, no temporary.
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec == std::errc{} && ptr == s.data() + s.size()) return true;
#endif
  // Slow path for the inputs strtod accepts but from_chars does not (leading
  // whitespace or '+', hex floats) — acceptance must stay exactly strtod's so
  // malformed-line classification is unchanged.
  const std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return end == tmp.c_str() + tmp.size() && !tmp.empty();
}

}  // namespace

std::string_view log_header() noexcept { return kHeader; }

std::string unescape_field(std::string_view field) {
  const auto hex = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    return -1;
  };
  std::string out;
  out.reserve(field.size());
  for (std::size_t i = 0; i < field.size(); ++i) {
    if (field[i] == '%' && i + 2 < field.size()) {
      const int hi = hex(field[i + 1]);
      const int lo = hex(field[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(field[i]);
  }
  return out;
}

std::string to_line(const LogRecord& r) {
  std::ostringstream out;
  out.precision(6);
  out << std::fixed << r.timestamp << '\t' << escape(r.client_id) << '\t'
      << escape(r.user_agent) << '\t' << http::to_string(r.method) << '\t'
      << escape(r.url) << '\t' << escape(r.domain) << '\t'
      << escape(r.content_type) << '\t' << r.status << '\t'
      << r.response_bytes << '\t' << r.request_bytes << '\t'
      << to_string(r.cache_status) << '\t' << r.edge_id;
  return out.str();
}

bool parse_line(std::string_view line, LineFields& out, std::string* reason) {
  const auto fail = [reason](const char* why) {
    if (reason != nullptr) *reason = why;
    return false;
  };
  // Tolerate CRLF line endings (files written on Windows or fetched over
  // HTTP): getline leaves the '\r' on, and it would corrupt the last column.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  // Fixed-size split: a well-formed line has exactly kColumns fields, so a
  // stack array replaces the per-line vector the old parser allocated.
  std::array<std::string_view, kColumns> cols;
  std::size_t ncols = 0;
  while (true) {
    const auto tab = line.find('\t');
    const auto col = tab == std::string_view::npos ? line : line.substr(0, tab);
    if (ncols == kColumns) return fail("column-count");  // too many fields
    cols[ncols++] = col;
    if (tab == std::string_view::npos) break;
    line = line.substr(tab + 1);
  }
  if (ncols != kColumns) return fail("column-count");

  if (!parse_double(cols[0], out.timestamp)) return fail("bad-timestamp");
  out.client_id = cols[1];
  out.user_agent = cols[2];
  const auto method = http::parse_method(cols[3]);
  if (!method) return fail("bad-method");
  out.method = *method;
  out.url = cols[4];
  out.domain = cols[5];
  out.content_type = cols[6];
  if (!parse_number(cols[7], out.status)) return fail("bad-status");
  if (!parse_number(cols[8], out.response_bytes))
    return fail("bad-response-bytes");
  if (!parse_number(cols[9], out.request_bytes))
    return fail("bad-request-bytes");
  if (!parse_cache_status(cols[10], out.cache_status))
    return fail("bad-cache-status");
  if (!parse_number(cols[11], out.edge_id)) return fail("bad-edge-id");
  return true;
}

std::optional<LogRecord> from_line(std::string_view line,
                                   std::string* reason) {
  LineFields f;
  if (!parse_line(line, f, reason)) return std::nullopt;
  LogRecord r;
  r.timestamp = f.timestamp;
  r.client_id = unescape_field(f.client_id);
  r.user_agent = unescape_field(f.user_agent);
  r.method = f.method;
  r.url = unescape_field(f.url);
  r.domain = unescape_field(f.domain);
  r.content_type = unescape_field(f.content_type);
  r.status = f.status;
  r.response_bytes = f.response_bytes;
  r.request_bytes = f.request_bytes;
  r.cache_status = f.cache_status;
  r.edge_id = f.edge_id;
  return r;
}

std::optional<LogRecord> from_line(std::string_view line) {
  return from_line(line, nullptr);
}

StreamQuarantine::StreamQuarantine(std::ostream& out) : out_(out) {}

void StreamQuarantine::quarantine(std::uint64_t line_number,
                                  std::string_view line,
                                  std::string_view reason) {
  out_ << line_number << '\t' << reason << '\t' << line << '\n';
  ++count_;
}

void IngestReport::merge(const IngestReport& other) {
  lines += other.lines;
  records += other.records;
  malformed += other.malformed;
  header_seen = header_seen || other.header_seen;
  for (const auto& [reason, count] : other.reasons) reasons[reason] += count;
}

std::string render_ingest_report(const IngestReport& report) {
  std::ostringstream out;
  out << "Ingest (" << report.lines << " lines)\n";
  out << "  records: " << report.records << "   malformed: "
      << report.malformed << " (" << std::fixed << std::setprecision(2)
      << 100.0 * report.error_share() << "% of data lines)\n";
  for (const auto& [reason, count] : report.reasons) {
    out << "    " << reason << ": " << count << "\n";
  }
  if (!report.header_seen) {
    out << "  note: no #jsoncdn-log header line present\n";
  }
  return out.str();
}

LogWriter::LogWriter(std::ostream& out) : out_(out) {
  out_ << kHeader << '\n';
}

void LogWriter::write(const LogRecord& record) {
  out_ << to_line(record) << '\n';
  ++written_;
}

LogReader::LogReader(std::istream& in) : in_(in) {}

std::vector<LogRecord> LogReader::read_all(std::size_t reserve_hint) {
  std::vector<LogRecord> out;
  out.reserve(reserve_hint);
  std::string line;
  while (std::getline(in_, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (view.empty() || view.front() == '#') continue;
    if (auto rec = from_line(view)) {
      out.push_back(std::move(*rec));
    } else {
      ++malformed_;
    }
  }
  return out;
}

std::size_t estimate_record_count(const std::string& path) {
  std::error_code ec;
  const auto bytes = std::filesystem::file_size(path, ec);
  if (ec) return 0;
  // to_line emits ~100-200 bytes per record for realistic URLs and UAs; a
  // conservative divisor over-reserves slightly rather than reallocating.
  constexpr std::uintmax_t kEstimatedBytesPerRecord = 96;
  return static_cast<std::size_t>(bytes / kEstimatedBytesPerRecord);
}

Dataset read_log_file(const std::string& path, std::uint64_t* malformed) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  LogReader reader(in);
  Dataset dataset(reader.read_all(estimate_record_count(path)));
  if (malformed) *malformed = reader.malformed_lines();
  return dataset;
}

namespace {

// Shared hardened line loop: header/version validation, strict-vs-permissive
// handling, per-reason accounting, quarantine, and the error budget. `emit`
// receives each accepted record.
template <typename Emit>
IngestReport ingest_stream(std::istream& in, const IngestOptions& options,
                           Emit&& emit) {
  constexpr std::string_view kMagic = "#jsoncdn-log";
  IngestReport report;
  std::string line;
  std::string reason;
  std::uint64_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    ++report.lines;
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (view.empty()) continue;
    if (view.front() == '#') {
      if (view.substr(0, kMagic.size()) == kMagic) {
        report.header_seen = true;
        // A wrong version means every following line may parse *wrong*
        // rather than fail — fatal in both modes.
        if (view != log_header()) {
          throw std::runtime_error(
              "unsupported log header at line " + std::to_string(line_number) +
              " (expected \"" + std::string(log_header()) + "\")");
        }
      }
      continue;
    }
    if (auto rec = from_line(view, &reason)) {
      ++report.records;
      emit(std::move(*rec));
      continue;
    }
    if (options.mode == ParseMode::kStrict) {
      throw std::runtime_error("malformed log line " +
                               std::to_string(line_number) + ": " + reason);
    }
    ++report.malformed;
    ++report.reasons[reason];
    if (options.quarantine != nullptr) {
      options.quarantine->quarantine(line_number, view, reason);
    }
    if (report.malformed > options.max_malformed) {
      throw std::runtime_error(
          "ingest error budget exceeded: " + std::to_string(report.malformed) +
          " malformed lines (limit " + std::to_string(options.max_malformed) +
          ")");
    }
  }
  return report;
}

}  // namespace

Dataset ingest_log_file(const std::string& path, const IngestOptions& options,
                        IngestReport* report) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  std::vector<LogRecord> records;
  records.reserve(estimate_record_count(path));
  auto local = ingest_stream(in, options, [&records](LogRecord&& rec) {
    records.push_back(std::move(rec));
  });
  if (report != nullptr) *report = std::move(local);
  return Dataset(std::move(records));
}

IngestReport ingest_for_each_record(
    const std::string& path, std::size_t chunk_size,
    const IngestOptions& options,
    const std::function<void(std::span<const LogRecord>)>& fn) {
  if (chunk_size == 0) chunk_size = 1;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  std::vector<LogRecord> chunk;
  chunk.reserve(chunk_size);
  auto report =
      ingest_stream(in, options, [&chunk, &fn, chunk_size](LogRecord&& rec) {
        chunk.push_back(std::move(rec));
        if (chunk.size() == chunk_size) {
          fn(std::span<const LogRecord>(chunk));
          chunk.clear();
        }
      });
  if (!chunk.empty()) fn(std::span<const LogRecord>(chunk));
  return report;
}

FileReadStats for_each_record(
    const std::string& path, std::size_t chunk_size,
    const std::function<void(std::span<const LogRecord>)>& fn) {
  if (chunk_size == 0) chunk_size = 1;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  FileReadStats stats;
  std::vector<LogRecord> chunk;
  chunk.reserve(chunk_size);
  std::string line;
  while (std::getline(in, line)) {
    std::string_view view(line);
    if (!view.empty() && view.back() == '\r') view.remove_suffix(1);
    if (view.empty() || view.front() == '#') continue;
    if (auto rec = from_line(view)) {
      chunk.push_back(std::move(*rec));
      if (chunk.size() == chunk_size) {
        fn(std::span<const LogRecord>(chunk));
        stats.records += chunk.size();
        chunk.clear();
      }
    } else {
      ++stats.malformed;
    }
  }
  if (!chunk.empty()) {
    fn(std::span<const LogRecord>(chunk));
    stats.records += chunk.size();
  }
  return stats;
}

}  // namespace jsoncdn::logs
