// Count-Min sketch (Cormode & Muthukrishnan '05): bounded-memory frequency
// estimation over a key stream. With width w = ceil(e/epsilon) and depth
// d = ceil(ln(1/delta)), every point query overestimates by at most
// epsilon * N (N = total stream weight) with probability >= 1 - delta, and
// never underestimates.
//
// Merge contract: two sketches with identical (width, depth, seed) merge by
// cell-wise addition — commutative and associative over integers, so a
// sharded ingest merged in any order is bit-identical to the single-pass
// sketch over the concatenated stream.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace jsoncdn::stream {

class CountMinSketch {
 public:
  // Requires 0 < epsilon < 1 and 0 < delta < 1.
  CountMinSketch(double epsilon, double delta, std::uint64_t seed = 0);

  // Adds `count` occurrences of the (pre-hashed) key.
  void add(std::uint64_t key_hash, std::uint64_t count = 1);
  void add(std::string_view key, std::uint64_t count = 1);

  // Bulk form: one occurrence of each pre-hashed key. Cell increments
  // commute, so this is bit-identical to n add() calls; the per-row hash
  // remix runs through the vectorized batch kernel (the `% width_` cell
  // mapping itself must stay scalar — it is part of the sketch identity).
  void add_batch(const std::uint64_t* key_hashes, std::size_t n);

  // Point query: min over the key's cells. >= true count, and
  // <= true count + epsilon * total_weight() w.p. 1 - delta.
  [[nodiscard]] std::uint64_t estimate(std::uint64_t key_hash) const;
  [[nodiscard]] std::uint64_t estimate(std::string_view key) const;

  // Requires identical (width, depth, seed); throws std::invalid_argument
  // otherwise.
  void merge(const CountMinSketch& other);

  [[nodiscard]] std::size_t width() const noexcept { return width_; }
  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }
  [[nodiscard]] double epsilon() const noexcept { return epsilon_; }
  [[nodiscard]] double delta() const noexcept { return delta_; }
  [[nodiscard]] std::uint64_t total_weight() const noexcept { return total_; }
  // The additive error bound the (epsilon, delta) configuration promises for
  // the stream ingested so far.
  [[nodiscard]] double error_bound() const noexcept {
    return epsilon_ * static_cast<double>(total_);
  }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return cells_.capacity() * sizeof(std::uint64_t) + sizeof(*this);
  }

 private:
  [[nodiscard]] std::size_t cell(std::size_t row,
                                 std::uint64_t key_hash) const noexcept;

  double epsilon_;
  double delta_;
  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> cells_;  // depth_ rows of width_ cells
};

}  // namespace jsoncdn::stream
