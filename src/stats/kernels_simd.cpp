// SIMD build of the shared kernel bodies: compiled at -O3 with the
// vectorizer forced on and (when the toolchain supports it) an AVX2 target,
// FP contraction off (see src/stats/CMakeLists.txt). Same source as the
// scalar build — only the code generation differs.
#define JSONCDN_KERNEL_NS kernels_simd
#include "stats/kernels_impl.h"
