#include "stats/timeseries.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/kernels.h"

namespace jsoncdn::stats {

std::vector<double> bin_events(std::span<const double> times, double t_begin,
                               double t_end, double dt) {
  std::vector<double> bins;
  bin_events(times, t_begin, t_end, dt, bins);
  return bins;
}

void bin_events(std::span<const double> times, double t_begin, double t_end,
                double dt, std::vector<double>& out) {
  if (dt <= 0.0) throw std::invalid_argument("bin_events: dt <= 0");
  if (!(t_begin < t_end))
    throw std::invalid_argument("bin_events: requires t_begin < t_end");
  const auto n = static_cast<std::size_t>(std::ceil((t_end - t_begin) / dt));
  out.assign(n, 0.0);
  kernels::bin_events(times.data(), times.size(), t_begin, t_end, dt,
                      out.data(), n);
}

std::vector<double> interarrival_gaps(std::span<const double> times) {
  if (times.size() < 2) return {};
  std::vector<double> gaps(times.size() - 1);
  if (!kernels::diff_ascending(times.data(), times.size(), gaps.data()))
    throw std::invalid_argument("interarrival_gaps: times not ascending");
  return gaps;
}

std::vector<double> times_from_gaps(double t0, std::span<const double> gaps) {
  std::vector<double> times;
  times.reserve(gaps.size() + 1);
  times.push_back(t0);
  for (double g : gaps) times.push_back(times.back() + g);
  return times;
}

std::vector<double> permute_gaps(std::span<const double> times, Rng& rng) {
  if (times.size() < 2)
    throw std::invalid_argument("permute_gaps: need at least 2 events");
  auto gaps = interarrival_gaps(times);
  std::shuffle(gaps.begin(), gaps.end(), rng.engine());
  return times_from_gaps(times.front(), gaps);
}

}  // namespace jsoncdn::stats
