#include "core/cost.h"

#include <gtest/gtest.h>

namespace jsoncdn::core {
namespace {

logs::LogRecord rec(const std::string& mime, std::uint64_t bytes,
                    logs::CacheStatus cache = logs::CacheStatus::kHit) {
  logs::LogRecord r;
  r.content_type = mime;
  r.response_bytes = bytes;
  r.cache_status = cache;
  r.url = "https://d/x";
  return r;
}

TEST(AnalyzeCosts, SplitsFixedAndPerByteComponents) {
  logs::Dataset ds;
  ds.add(rec("application/json", 1024));  // 1 KB, cache hit
  CostModel model;
  model.cpu_per_request = 1.0;
  model.cpu_per_kilobyte = 0.5;
  model.network_per_kilobyte = 2.0;
  model.origin_per_request = 10.0;
  const auto report = analyze_costs(ds, model);
  const auto* json = report.find(http::ContentClass::kJson);
  ASSERT_NE(json, nullptr);
  EXPECT_DOUBLE_EQ(json->cpu_cost, 1.5);
  EXPECT_DOUBLE_EQ(json->network_cost, 2.0);
  EXPECT_DOUBLE_EQ(json->origin_cost, 0.0);  // hit: no origin
  EXPECT_DOUBLE_EQ(json->total_cost(), 3.5);
  EXPECT_DOUBLE_EQ(report.total_cost, 3.5);
}

TEST(AnalyzeCosts, OriginCostChargedForMissesAndTunnels) {
  logs::Dataset ds;
  ds.add(rec("application/json", 1024, logs::CacheStatus::kMiss));
  ds.add(rec("application/json", 1024, logs::CacheStatus::kNotCacheable));
  ds.add(rec("application/json", 1024, logs::CacheStatus::kHit));
  CostModel model;
  model.origin_per_request = 5.0;
  const auto report = analyze_costs(ds, model);
  EXPECT_DOUBLE_EQ(report.find(http::ContentClass::kJson)->origin_cost, 10.0);
}

TEST(AnalyzeCosts, SmallBodiesCostMorePerByte) {
  // The paper's provisioning argument: a 512 B JSON response and a 64 KB
  // HTML response carry the same fixed CPU cost, so JSON's cost-per-byte is
  // far higher.
  logs::Dataset ds;
  for (int i = 0; i < 100; ++i) ds.add(rec("application/json", 512));
  for (int i = 0; i < 100; ++i) ds.add(rec("text/html", 64 * 1024));
  const auto report = analyze_costs(ds);
  const auto* json = report.find(http::ContentClass::kJson);
  const auto* html = report.find(http::ContentClass::kHtml);
  ASSERT_NE(json, nullptr);
  ASSERT_NE(html, nullptr);
  EXPECT_GT(json->cost_per_kilobyte(), html->cost_per_kilobyte() * 5.0);
  EXPECT_GT(json->cpu_share(), html->cpu_share());
}

TEST(AnalyzeCosts, ClassesSortedByTotalCost) {
  logs::Dataset ds;
  for (int i = 0; i < 10; ++i) ds.add(rec("text/html", 1 << 20));
  ds.add(rec("application/json", 128));
  const auto report = analyze_costs(ds);
  ASSERT_EQ(report.by_class.size(), 2u);
  EXPECT_EQ(report.by_class[0].content, http::ContentClass::kHtml);
  EXPECT_GE(report.by_class[0].total_cost(),
            report.by_class[1].total_cost());
}

TEST(AnalyzeCosts, EmptyDatasetYieldsEmptyReport) {
  const auto report = analyze_costs(logs::Dataset{});
  EXPECT_TRUE(report.by_class.empty());
  EXPECT_DOUBLE_EQ(report.total_cost, 0.0);
  EXPECT_EQ(report.find(http::ContentClass::kJson), nullptr);
}

TEST(AnalyzeCosts, RejectsNegativeModel) {
  CostModel model;
  model.cpu_per_request = -1.0;
  EXPECT_THROW((void)analyze_costs(logs::Dataset{}, model),
               std::invalid_argument);
}

TEST(RenderCosts, ProducesTable) {
  logs::Dataset ds;
  ds.add(rec("application/json", 2048));
  const auto out = render_costs(analyze_costs(ds));
  EXPECT_NE(out.find("json"), std::string::npos);
  EXPECT_NE(out.find("cost/KB"), std::string::npos);
  EXPECT_NE(out.find("total cost"), std::string::npos);
}

TEST(ClassCost, ZeroBytesYieldsZeroPerKb) {
  ClassCost cost;
  EXPECT_DOUBLE_EQ(cost.cost_per_kilobyte(), 0.0);
  EXPECT_DOUBLE_EQ(cost.cpu_share(), 0.0);
}

}  // namespace
}  // namespace jsoncdn::core
