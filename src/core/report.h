// Plain-text renderers for the paper's figures and tables. Every bench
// binary prints its figure/table through these, so the terminal output reads
// like the paper's evaluation section.
#pragma once

#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "workload/traffic_mix.h"

namespace jsoncdn::core {

// Fig. 1: quarterly JSON:HTML ratio series.
[[nodiscard]] std::string render_growth(
    const std::vector<workload::QuarterStats>& series);

// Fig. 3: device-type breakdown + UA-string distribution.
[[nodiscard]] std::string render_source(const SourceBreakdown& source);

// §4 headline numbers (methods, cacheability, sizes).
[[nodiscard]] std::string render_headline(const MethodMix& methods,
                                          const CacheabilityStats& cache,
                                          const SizeComparison& sizes);

// Response-status mix / error share — the resilience experiments' view of a
// log with fault injection on. Empty string when the log is error-free, so
// fault-free reports are byte-identical with or without this call.
[[nodiscard]] std::string render_status(const StatusBreakdown& status);

// Fig. 4: per-industry cacheability heatmap (ASCII shading).
[[nodiscard]] std::string render_heatmap(const CacheabilityHeatmap& heatmap);

// Fig. 5: histogram of detected object periods, labelled at the canonical
// spikes.
[[nodiscard]] std::string render_period_histogram(
    const std::vector<double>& periods);

// Fig. 6: CDF of the percent of periodic clients across objects.
[[nodiscard]] std::string render_periodic_client_cdf(
    const std::vector<double>& shares);

// §5.1 summary block (periodic share, uncacheable/upload shares).
[[nodiscard]] std::string render_periodicity_summary(
    const PeriodicityReport& report);

// Table 3: accuracy@K for each evaluated configuration.
[[nodiscard]] std::string render_ngram_table(
    const std::vector<NgramAccuracy>& rows);

}  // namespace jsoncdn::core
