// Streaming-vs-batch: the one-pass sketch pipeline must reproduce the exact
// batch results within each sketch's configured bound, stay deterministic,
// and hold its memory flat as the stream grows.
#include "stream/streaming_study.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/periodicity.h"
#include "logs/dataset.h"
#include "stats/rng.h"
#include "stream/validate.h"

namespace jsoncdn::stream {
namespace {

logs::LogRecord make_record(double ts, const std::string& client,
                            const std::string& url, const std::string& domain,
                            bool json, std::uint64_t bytes,
                            logs::CacheStatus cache, http::Method method) {
  logs::LogRecord r;
  r.timestamp = ts;
  r.client_id = client;
  r.user_agent = "NewsReader/5.2.1 (iPhone; iOS 12.4.1)";
  r.method = method;
  r.url = url;
  r.domain = domain;
  r.content_type =
      json ? "application/json; charset=utf-8" : "text/html; charset=utf-8";
  r.status = 200;
  r.response_bytes = bytes;
  r.request_bytes = method == http::Method::kPost ? 256 : 0;
  r.cache_status = cache;
  r.edge_id = 1;
  return r;
}

// Synthetic stream with known structure:
//   - three periodic JSON flows (20 clients polling every 20 s),
//   - one heavy aperiodic JSON flow (12 clients, exponential gaps),
//   - a tail of small JSON flows (ineligible for periodicity),
//   - HTML traffic for the size comparison.
logs::Dataset make_stream_dataset() {
  logs::Dataset ds;
  stats::Rng rng(2024);
  for (int flow = 0; flow < 3; ++flow) {
    const std::string url =
        "https://api.test.example/poll/" + std::to_string(flow);
    // Random per-client phases: each client polls every 20 s from its own
    // offset (evenly spaced offsets would add a spurious fine-grained
    // period to the aggregate signal).
    std::vector<double> phase(20);
    for (auto& p : phase) p = rng.uniform(0.0, 20.0);
    for (int tick = 0; tick < 30; ++tick) {
      for (int c = 0; c < 20; ++c) {
        const double ts =
            20.0 * tick + phase[c] + rng.uniform(-0.2, 0.2);
        ds.add(make_record(ts, "client-" + std::to_string(c), url,
                           "api.test.example", true,
                           900 + static_cast<std::uint64_t>(flow) * 64 +
                               static_cast<std::uint64_t>(c),
                           tick % 2 == 0 ? logs::CacheStatus::kNotCacheable
                                         : logs::CacheStatus::kMiss,
                           c % 4 == 0 ? http::Method::kPost
                                      : http::Method::kGet));
      }
    }
  }
  for (int c = 0; c < 12; ++c) {
    double ts = rng.uniform(0.0, 5.0);
    for (int i = 0; i < 30; ++i) {
      ts += rng.exponential(1.0 / 18.0);
      ds.add(make_record(ts, "hot-client-" + std::to_string(c),
                         "https://api.test.example/hot", "api.test.example",
                         true,
                         static_cast<std::uint64_t>(
                             std::exp(rng.normal(7.0, 0.8))),
                         logs::CacheStatus::kHit, http::Method::kGet));
    }
  }
  for (int u = 0; u < 80; ++u) {
    const std::string url =
        "https://tail.test.example/obj/" + std::to_string(u);
    for (int i = 0; i < 4; ++i) {
      ds.add(make_record(rng.uniform(0.0, 590.0),
                         "tail-client-" + std::to_string(u % 25), url,
                         "tail.test.example", true,
                         static_cast<std::uint64_t>(
                             std::exp(rng.normal(6.5, 1.0))),
                         logs::CacheStatus::kMiss, http::Method::kGet));
    }
  }
  for (int i = 0; i < 3000; ++i) {
    ds.add(make_record(rng.uniform(0.0, 590.0),
                       "web-client-" + std::to_string(i % 40),
                       "https://www.test.example/page/" +
                           std::to_string(i % 60),
                       "www.test.example", false,
                       static_cast<std::uint64_t>(
                           std::exp(rng.normal(9.5, 1.2))),
                       logs::CacheStatus::kHit, http::Method::kGet));
  }
  ds.sort_by_time();
  return ds;
}

StreamingSummary stream_in_chunks(const logs::Dataset& ds,
                                  const StreamingConfig& config,
                                  std::size_t chunk_size) {
  StreamingStudy study(config);
  const auto& records = ds.records();
  for (std::size_t begin = 0; begin < records.size(); begin += chunk_size) {
    const auto count = std::min(chunk_size, records.size() - begin);
    study.ingest(std::span<const logs::LogRecord>(&records[begin], count));
  }
  return study.summary();
}

TEST(StreamingStudy, MatchesExactBatchWithinConfiguredBounds) {
  const auto ds = make_stream_dataset();
  StreamingConfig config;
  config.threads = 2;
  const auto summary = stream_in_chunks(ds, config, 512);
  const auto report = validate_streaming(ds, summary, config);
  EXPECT_TRUE(report.counters_identical);
  EXPECT_EQ(report.topk_found, report.topk_checked);
  EXPECT_LE(report.url_cardinality_error, report.hll_error_bound);
  EXPECT_LE(report.client_cardinality_error, report.hll_error_bound);
  EXPECT_LE(report.quantile_max_rel_error,
            report.quantile_error_bound * 1.05);
  EXPECT_TRUE(report.within_bounds())
      << render_validation(report);
  // Every flow eligible for the paper's periodicity filters must survive
  // triage (the screen may only drop ineligible or hopeless flows).
  EXPECT_EQ(report.eligible_missed, 0u) << render_validation(report);
  EXPECT_GE(report.eligible_flows, 4u);
}

TEST(StreamingStudy, SummaryIsDeterministicAcrossRuns) {
  const auto ds = make_stream_dataset();
  StreamingConfig config;
  config.threads = 4;
  const auto a = stream_in_chunks(ds, config, 1024);
  const auto b = stream_in_chunks(ds, config, 1024);
  EXPECT_EQ(render_streaming_summary(a), render_streaming_summary(b));
}

TEST(StreamingStudy, ShardedIngestMatchesSerialOnMergeInvariantState) {
  const auto ds = make_stream_dataset();
  StreamingConfig serial_config;
  serial_config.threads = 1;
  StreamingConfig sharded_config;
  sharded_config.threads = 4;
  // One big chunk so the sharded study actually fans out.
  StreamingStudy serial(serial_config);
  StreamingStudy sharded(sharded_config);
  serial.ingest(std::span<const logs::LogRecord>(ds.records()));
  sharded.ingest(std::span<const logs::LogRecord>(ds.records()));
  const auto a = serial.summary();
  const auto b = sharded.summary();
  // Counters, HLL, and quantile state merge bit-identically for any
  // partition; Space-Saving order is only fixed per (chunk, threads), so it
  // is not compared here.
  EXPECT_EQ(a.total_records, b.total_records);
  EXPECT_EQ(a.json_records, b.json_records);
  EXPECT_EQ(a.methods.get, b.methods.get);
  EXPECT_EQ(a.methods.post, b.methods.post);
  EXPECT_EQ(a.cacheability.uncacheable, b.cacheability.uncacheable);
  EXPECT_EQ(a.source.requests_by_device, b.source.requests_by_device);
  EXPECT_DOUBLE_EQ(a.distinct_urls, b.distinct_urls);
  EXPECT_DOUBLE_EQ(a.distinct_clients, b.distinct_clients);
  EXPECT_DOUBLE_EQ(a.distinct_domains, b.distinct_domains);
  EXPECT_DOUBLE_EQ(a.json_sizes.p50, b.json_sizes.p50);
  EXPECT_DOUBLE_EQ(a.json_sizes.p99, b.json_sizes.p99);
  EXPECT_DOUBLE_EQ(a.html_sizes.p50, b.html_sizes.p50);
}

TEST(StreamingStudy, MemoryStaysBoundedAsStreamGrows) {
  const auto ds = make_stream_dataset();
  StreamingConfig config;
  config.threads = 1;
  const auto once = stream_in_chunks(ds, config, 2048);

  // 10x the stream: same shape, repeated with shifted timestamps. Exact
  // batch analysis would need 10x the RAM; the sketches must not.
  const double span = once.last_timestamp - once.first_timestamp + 1.0;
  StreamingStudy study(config);
  std::vector<logs::LogRecord> shifted;
  for (int rep = 0; rep < 10; ++rep) {
    shifted = ds.records();
    for (auto& r : shifted) r.timestamp += span * rep;
    study.ingest(std::span<const logs::LogRecord>(shifted));
  }
  const auto tenfold = study.summary();
  EXPECT_EQ(tenfold.total_records, once.total_records * 10);
  // O(sketch) memory: a 10x stream may not cost even 1.5x the footprint.
  EXPECT_LE(tenfold.memory_bytes,
            once.memory_bytes + once.memory_bytes / 2);
  EXPECT_LT(tenfold.memory_bytes, 8u * 1024 * 1024);
}

TEST(StreamingStudy, TriageCandidatesDriveTargetedPeriodicityPass) {
  const auto ds = make_stream_dataset();
  StreamingConfig config;
  config.threads = 1;
  const auto summary = stream_in_chunks(ds, config, 2048);
  ASSERT_FALSE(summary.periodic_candidates.empty());
  std::unordered_set<std::string> candidates;
  for (const auto& c : summary.periodic_candidates) candidates.insert(c.key);
  for (int flow = 0; flow < 3; ++flow) {
    EXPECT_TRUE(candidates.contains("https://api.test.example/poll/" +
                                    std::to_string(flow)));
  }
  // The candidate set must stay a small subset: the tail flows are screened.
  EXPECT_LT(candidates.size(), 10u);

  // Second pass: detector over candidate records only, shares reported
  // relative to the full stream via the override.
  logs::Dataset subset = ds.json_only().filter([&](const logs::LogRecord& r) {
    return candidates.contains(r.url);
  });
  core::PeriodicityConfig pconfig;
  pconfig.detector.permutations = 40;
  pconfig.threads = 2;
  pconfig.total_requests_override =
      static_cast<std::size_t>(summary.json_records);
  const auto report = core::analyze_periodicity(subset, pconfig);
  EXPECT_EQ(report.total_requests, summary.json_records);
  std::unordered_set<std::string> periodic;
  for (const auto& obj : report.objects) {
    if (obj.object_periodic) periodic.insert(obj.url);
  }
  for (int flow = 0; flow < 3; ++flow) {
    EXPECT_TRUE(periodic.contains("https://api.test.example/poll/" +
                                  std::to_string(flow)))
        << "flow " << flow;
  }
  EXPECT_GT(report.periodic_request_share, 0.0);
  EXPECT_LT(report.periodic_request_share, 1.0);
}

TEST(StreamingStudy, RenderedSummaryCarriesHeadlineNumbers) {
  const auto ds = make_stream_dataset();
  StreamingConfig config;
  config.threads = 1;
  const auto summary = stream_in_chunks(ds, config, 2048);
  const auto text = render_streaming_summary(summary);
  EXPECT_NE(text.find("Streaming summary"), std::string::npos);
  EXPECT_NE(text.find("top URLs"), std::string::npos);
  EXPECT_NE(text.find("periodic-candidate flows"), std::string::npos);
}

}  // namespace
}  // namespace jsoncdn::stream
