file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_core.dir/anomaly.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/characterization.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/characterization.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/cost.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/cost.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/ngram.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/ngram.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/periodicity.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/periodicity.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/prefetch.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/prefetch.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/report.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/report.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/study.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/study.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/taxonomy.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/taxonomy.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/timing.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/timing.cpp.o.d"
  "CMakeFiles/jsoncdn_core.dir/url_cluster.cpp.o"
  "CMakeFiles/jsoncdn_core.dir/url_cluster.cpp.o.d"
  "libjsoncdn_core.a"
  "libjsoncdn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
