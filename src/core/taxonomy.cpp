#include "core/taxonomy.h"

namespace jsoncdn::core {

std::string_view to_string(RequestType t) noexcept {
  switch (t) {
    case RequestType::kDownload: return "download";
    case RequestType::kUpload: return "upload";
    case RequestType::kOther: return "other";
  }
  return "other";
}

TrafficClass classify(const logs::LogRecord& record) {
  TrafficClass out;
  out.content = http::classify_content(record.content_type);
  const auto device = http::classify_device(record.user_agent);
  out.device = device.device;
  out.agent = device.agent;
  if (http::is_download(record.method)) {
    out.request = RequestType::kDownload;
  } else if (http::is_upload(record.method)) {
    out.request = RequestType::kUpload;
  } else {
    out.request = RequestType::kOther;
  }
  out.cacheable_config =
      record.cache_status != logs::CacheStatus::kNotCacheable;
  out.response_bytes = record.response_bytes;
  return out;
}

}  // namespace jsoncdn::core
