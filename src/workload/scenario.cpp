#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace jsoncdn::workload {

namespace {

std::size_t scaled(double base, double scale, std::size_t min_value) {
  return std::max(min_value,
                  static_cast<std::size_t>(std::llround(base * scale)));
}

}  // namespace

GeneratorConfig short_term_scenario(double scale, std::uint64_t seed) {
  if (scale <= 0.0)
    throw std::invalid_argument("short_term_scenario: scale <= 0");
  GeneratorConfig config;
  config.seed = seed;
  config.duration_seconds = 600.0;  // the paper's 10-minute capture
  // ~5 K domains at scale 1 (11 industries * ~455).
  config.catalog.domains_per_industry = scaled(455.0, scale, 2);
  // ~25 M logs at scale 1. A client contributes ~16 requests in 10 minutes
  // (one-ish session, assets included), so ~1.6 M clients at scale 1.
  config.n_clients = scaled(1'600'000.0, scale, 500);
  config.mean_sessions_per_client = 1.2;
  return config;
}

GeneratorConfig long_term_scenario(double scale, std::uint64_t seed) {
  if (scale <= 0.0)
    throw std::invalid_argument("long_term_scenario: scale <= 0");
  GeneratorConfig config;
  config.seed = seed;
  config.duration_seconds = 24.0 * 3600.0;  // the paper's 24-hour capture
  // ~170 domains at scale 1: 11 industries * ~15. Domain count shrinks with
  // sqrt(scale) so flows stay dense enough for the >=10-clients-per-object
  // filter even at small scales.
  config.catalog.domains_per_industry = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::llround(15.0 * std::sqrt(scale))));
  // ~10 M logs at scale 1; a day-long client contributes ~90 requests
  // (four app sessions with assets, plus machine-to-machine flows).
  config.n_clients = scaled(112'000.0, scale, 1600);
  config.mean_sessions_per_client = 4.0;
  // Long-window captures are where machine-to-machine traffic shows up.
  config.periodic.mobile_app = 0.03;
  config.periodic.embedded = 0.50;
  config.periodic.library = 0.30;
  return config;
}

GeneratorConfig scraper_scenario(double scale, std::uint64_t seed) {
  auto config = short_term_scenario(scale, seed);
  config.hostile.hostile_share = 0.25;
  config.hostile.scraper_weight = 1.0;
  config.hostile.stuffing_weight = 0.0;
  config.hostile.flash_crowd_weight = 0.0;
  config.hostile.oversized_weight = 0.0;
  return config;
}

GeneratorConfig stuffing_scenario(double scale, std::uint64_t seed) {
  auto config = short_term_scenario(scale, seed);
  config.hostile.hostile_share = 0.20;
  config.hostile.scraper_weight = 0.0;
  config.hostile.stuffing_weight = 1.0;
  config.hostile.flash_crowd_weight = 0.0;
  config.hostile.oversized_weight = 0.0;
  return config;
}

GeneratorConfig flash_crowd_scenario(double scale, std::uint64_t seed) {
  auto config = short_term_scenario(scale, seed);
  // The headline overload experiment: a human flash crowd with a scraper
  // underlay, so shedding has machine-class traffic to sacrifice first.
  config.hostile.hostile_share = 0.35;
  config.hostile.scraper_weight = 0.35;
  config.hostile.stuffing_weight = 0.0;
  config.hostile.flash_crowd_weight = 0.65;
  config.hostile.oversized_weight = 0.0;
  return config;
}

GeneratorConfig hostile_mix_scenario(double scale, std::uint64_t seed) {
  auto config = short_term_scenario(scale, seed);
  config.hostile.hostile_share = 0.30;  // default class weights
  return config;
}

namespace {

// Shared base for the periodic-* stress scenarios: the long-term capture
// with boosted periodic shares, so the detector matrix has enough labelled
// flows per seed to make per-scenario F1 statistically meaningful.
GeneratorConfig periodic_stress_base(double scale, std::uint64_t seed) {
  auto config = long_term_scenario(scale, seed);
  config.periodic.mobile_app = 0.05;
  config.periodic.embedded = 0.70;
  config.periodic.library = 0.50;
  return config;
}

}  // namespace

GeneratorConfig periodic_jitter_scenario(double scale, std::uint64_t seed) {
  auto config = periodic_stress_base(scale, seed);
  // Heavy timing noise: per-flow sigma uniform in [5%, 30%] of the period.
  // The top of that range destroys phase coherence for every method; the
  // middle is where raw-timestamp detectors separate from 1 s binning.
  config.periodic_stress.jitter_relative = 0.30;
  return config;
}

GeneratorConfig periodic_drift_scenario(double scale, std::uint64_t seed) {
  auto config = periodic_stress_base(scale, seed);
  // Each cycle stretches by 0.3%: over a 60-tick flow the gap grows ~18%,
  // smearing the spectral line across several bins.
  config.periodic_stress.drift_per_cycle = 0.003;
  return config;
}

GeneratorConfig periodic_dropout_scenario(double scale, std::uint64_t seed) {
  auto config = periodic_stress_base(scale, seed);
  // Nearly half the ticks vanish: the comb survives (gaps stay multiples
  // of the period) but binned signals lose most of their energy.
  config.periodic_stress.dropout_prob = 0.45;
  return config;
}

GeneratorConfig periodic_multi_scenario(double scale, std::uint64_t seed) {
  auto config = periodic_stress_base(scale, seed);
  // Every periodic client overlays a second, non-harmonic flow on the same
  // object — the overlapping-telemetry case single-period detectors can
  // recover at most half of.
  config.periodic_stress.multi_period_share = 1.0;
  return config;
}

GeneratorConfig periodic_diurnal_scenario(double scale, std::uint64_t seed) {
  auto config = periodic_stress_base(scale, seed);
  // Pollers back off heavily mid-cycle (85% dropout at the trough of a
  // 90-minute "day", shortened so a two-hour validation window sees full
  // cycles): amplitude modulation that puts sidebands around every line.
  config.periodic_stress.diurnal_amplitude = 0.85;
  config.periodic_stress.diurnal_period = 5400.0;
  return config;
}

const std::vector<ScenarioInfo>& scenario_registry() {
  static const std::vector<ScenarioInfo> kRegistry = {
      {"short-term", "10-minute whole-network capture (paper Table 2)"},
      {"long-term", "24-hour three-vantage capture, periodic-flow heavy"},
      {"scraper", "short-term + URL-space-walking bots (25% hostile)"},
      {"stuffing", "short-term + credential-stuffing bursts (20% hostile)"},
      {"flash-crowd",
       "short-term + correlated browser spike over a scraper underlay "
       "(35% hostile)"},
      {"hostile-mix", "short-term + all four attack classes (30% hostile)"},
      {"periodic-jitter",
       "long-term + periodic flows with sigma up to 30% of period"},
      {"periodic-drift",
       "long-term + periodic flows with 0.3%/cycle clock drift"},
      {"periodic-dropout", "long-term + periodic flows losing 45% of ticks"},
      {"periodic-multi",
       "long-term + a second non-harmonic flow per periodic client"},
      {"periodic-diurnal",
       "long-term + diurnally modulated pollers (85% trough dropout)"},
  };
  return kRegistry;
}

GeneratorConfig scenario_by_name(std::string_view name, double scale,
                                 std::uint64_t seed) {
  if (name == "short-term") return short_term_scenario(scale, seed);
  if (name == "long-term") return long_term_scenario(scale, seed);
  if (name == "scraper") return scraper_scenario(scale, seed);
  if (name == "stuffing") return stuffing_scenario(scale, seed);
  if (name == "flash-crowd") return flash_crowd_scenario(scale, seed);
  if (name == "hostile-mix") return hostile_mix_scenario(scale, seed);
  if (name == "periodic-jitter") return periodic_jitter_scenario(scale, seed);
  if (name == "periodic-drift") return periodic_drift_scenario(scale, seed);
  if (name == "periodic-dropout")
    return periodic_dropout_scenario(scale, seed);
  if (name == "periodic-multi") return periodic_multi_scenario(scale, seed);
  if (name == "periodic-diurnal")
    return periodic_diurnal_scenario(scale, seed);
  throw std::invalid_argument("unknown scenario: " + std::string(name));
}

}  // namespace jsoncdn::workload
