// Table 3: "NGram model accuracy for URLs with a history of N = 1 and
// varying K" — accuracy@K for K in {1, 5, 10} on actual vs clustered URLs,
// plus the Section 5.2 note that N = 5 adds at most ~5%.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "core/ngram.h"
#include "core/report.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  bench::print_header("Table 3", "backoff ngram accuracy@K (long-term)");

  // The prediction study runs on the long-term dataset (the paper uses it
  // for all Section 5 analyses).
  workload::WorkloadGenerator generator(workload::long_term_scenario(scale));
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  const auto json = network.run(workload.events).json_only();
  std::printf("  dataset: %zu JSON records, %zu clients\n\n", json.size(),
              json.distinct_clients());

  std::vector<core::NgramAccuracy> rows;
  for (const std::size_t n : {1u, 5u}) {
    for (const bool clustered : {true, false}) {
      core::NgramEvalConfig config;
      config.context_len = n;
      config.clustered = clustered;
      rows.push_back(core::evaluate_ngram(json, config));
    }
  }
  std::fputs(core::render_ngram_table(rows).c_str(), stdout);
  std::printf("\n");

  const auto& clustered_n1 = rows[0];
  const auto& actual_n1 = rows[1];
  bench::compare("clustered accuracy K=1 (N=1)", 0.65,
                 clustered_n1.accuracy_at.at(1));
  bench::compare("clustered accuracy K=5 (N=1)", 0.84,
                 clustered_n1.accuracy_at.at(5));
  bench::compare("clustered accuracy K=10 (N=1)", 0.87,
                 clustered_n1.accuracy_at.at(10));
  bench::compare("actual accuracy K=1 (N=1)", 0.45,
                 actual_n1.accuracy_at.at(1));
  bench::compare("actual accuracy K=5 (N=1)", 0.64,
                 actual_n1.accuracy_at.at(5));
  bench::compare("actual accuracy K=10 (N=1)", 0.69,
                 actual_n1.accuracy_at.at(10));
  const double n5_gain =
      rows[3].accuracy_at.at(10) - actual_n1.accuracy_at.at(10);
  bench::compare("N=5 gain over N=1 at K=10 (actual)", 0.05, n5_gain);
  return 0;
}
