// Columnar log store: interner symbol/view stability, LogTable row-proxy
// equivalence with the row-oriented Dataset, the zero-copy file ingest, and
// the .jlog binary sidecar round-trip (including corruption rejection).
#include "logs/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "logs/csv.h"
#include "logs/interner.h"
#include "logs/jlog.h"
#include "logs/zerocopy.h"
#include "stats/rng.h"

namespace jsoncdn::logs {
namespace {

// ---- StringInterner -------------------------------------------------------

TEST(StringInterner, AssignsDenseFirstSeenSymbols) {
  StringInterner interner;
  EXPECT_TRUE(interner.empty());
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("alpha"), 0u);  // stable on re-intern
  EXPECT_EQ(interner.intern(""), 2u);       // empty string is a real symbol
  EXPECT_EQ(interner.size(), 3u);

  EXPECT_EQ(interner.find("beta"), 1u);
  EXPECT_EQ(interner.find("gamma"), StringInterner::kNoSymbol);
  EXPECT_EQ(interner.view(0), "alpha");
  EXPECT_EQ(interner.view(2), "");
}

TEST(StringInterner, ViewsStayValidAcrossArenaGrowth) {
  StringInterner interner;
  const auto first = interner.intern("the-very-first-string");
  const std::string_view early = interner.view(first);
  const char* early_data = early.data();

  // Push well past one 64 KiB arena block so several blocks are allocated.
  for (int i = 0; i < 5000; ++i) {
    interner.intern("padding-string-number-" + std::to_string(i) +
                    "-with-some-extra-length-to-fill-arena-blocks-faster");
  }
  // The early view must still point at the same bytes — blocks never move.
  EXPECT_EQ(interner.view(first).data(), early_data);
  EXPECT_EQ(interner.view(first), "the-very-first-string");
  EXPECT_EQ(interner.find("the-very-first-string"), first);
}

TEST(StringInterner, HundredThousandSymbolStress) {
  StringInterner interner;
  interner.reserve(100'000);
  for (std::uint32_t i = 0; i < 100'000; ++i) {
    ASSERT_EQ(interner.intern("sym-" + std::to_string(i)), i);
  }
  EXPECT_EQ(interner.size(), 100'000u);
  // Spot-check lookups and views across the whole range.
  for (std::uint32_t i = 0; i < 100'000; i += 9973) {
    const std::string s = "sym-" + std::to_string(i);
    EXPECT_EQ(interner.find(s), i);
    EXPECT_EQ(interner.view(i), s);
  }
  EXPECT_GT(interner.memory_bytes(), 100'000u);  // arena is accounted for
}

// ---- LogTable -------------------------------------------------------------

Dataset make_dataset(std::size_t n, std::uint64_t seed = 99) {
  Dataset ds;
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    LogRecord r;
    r.timestamp = rng.uniform(0.0, 600.0);
    r.client_id = "client-" + std::to_string(i % 37);
    r.user_agent = i % 5 == 0 ? "" : "Agent/" + std::to_string(i % 7);
    r.method = i % 11 == 0 ? http::Method::kPost : http::Method::kGet;
    r.url = "https://api.test.example/obj/" + std::to_string(i % 53);
    r.domain = i % 2 == 0 ? "api.test.example" : "www.test.example";
    r.content_type = i % 3 == 0 ? "text/html; charset=utf-8"
                                : "application/json";
    r.status = i % 17 == 0 ? 504 : 200;
    r.response_bytes = 100 + i;
    r.request_bytes = i % 11 == 0 ? 256 : 0;
    r.cache_status = static_cast<CacheStatus>(i % kCacheStatusCount);
    r.edge_id = static_cast<std::uint32_t>(i % 4);
    ds.add(std::move(r));
  }
  return ds;
}

void expect_same_records(const Dataset& ds, const LogTable& table) {
  ASSERT_EQ(ds.size(), table.size());
  const auto& records = ds.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    const auto row = table.row(static_cast<LogTable::RowIndex>(i));
    ASSERT_EQ(row.timestamp(), r.timestamp) << i;
    ASSERT_EQ(row.client_id(), r.client_id) << i;
    ASSERT_EQ(row.user_agent(), r.user_agent) << i;
    ASSERT_EQ(row.method(), r.method) << i;
    ASSERT_EQ(row.url(), r.url) << i;
    ASSERT_EQ(row.domain(), r.domain) << i;
    ASSERT_EQ(row.content_type(), r.content_type) << i;
    ASSERT_EQ(row.status(), r.status) << i;
    ASSERT_EQ(row.response_bytes(), r.response_bytes) << i;
    ASSERT_EQ(row.request_bytes(), r.request_bytes) << i;
    ASSERT_EQ(row.cache_status(), r.cache_status) << i;
    ASSERT_EQ(row.edge_id(), r.edge_id) << i;
    ASSERT_EQ(row.object_key(), r.object_key()) << i;
    ASSERT_EQ(row.client_key(), r.client_key()) << i;
  }
}

TEST(LogTable, RowProxyMatchesDataset) {
  const auto ds = make_dataset(2000);
  const auto table = LogTable::from_dataset(ds);
  expect_same_records(ds, table);

  // Distinct counts are dictionary sizes and must agree with the row path.
  EXPECT_EQ(table.distinct_domains(), ds.distinct_domains());
  EXPECT_EQ(table.distinct_objects(), ds.distinct_objects());
  EXPECT_EQ(table.distinct_clients(), ds.distinct_clients());
  EXPECT_EQ(table.time_range(), ds.time_range());
}

TEST(LogTable, FlowKeyPacksClientAndUrlSymbols) {
  const auto ds = make_dataset(500);
  const auto table = LogTable::from_dataset(ds);
  const auto& records = ds.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    for (std::size_t j = i + 1; j < std::min(records.size(), i + 40); ++j) {
      const bool same_flow = records[i].url == records[j].url &&
                             records[i].client_key() == records[j].client_key();
      const auto a = static_cast<LogTable::RowIndex>(i);
      const auto b = static_cast<LogTable::RowIndex>(j);
      ASSERT_EQ(table.flow_key(a) == table.flow_key(b), same_flow)
          << i << " vs " << j;
    }
  }
}

TEST(LogTable, SortByTimeMatchesDatasetStableSort) {
  auto ds = make_dataset(3000);
  auto table = LogTable::from_dataset(ds);
  ds.sort_by_time();
  table.sort_by_time();
  expect_same_records(ds, table);
}

TEST(LogTable, JsonRowsMatchDatasetFilter) {
  const auto ds = make_dataset(2000);
  const auto table = LogTable::from_dataset(ds);
  const auto json = ds.json_only();
  const auto rows = table.json_rows();
  ASSERT_EQ(rows.size(), json.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    EXPECT_EQ(table.url(rows[k]), json.records()[k].url);
    EXPECT_EQ(table.timestamp(rows[k]), json.records()[k].timestamp);
  }
}

TEST(LogTable, ToDatasetRoundTrips) {
  const auto ds = make_dataset(1500);
  const auto table = LogTable::from_dataset(ds);
  const auto back = table.to_dataset();
  expect_same_records(back, table);
  ASSERT_EQ(back.size(), ds.size());
}

TEST(LogTable, AppendAfterJlogLoadKeepsInterningConsistent) {
  const auto ds = make_dataset(300);
  const std::string path = testing::TempDir() + "append_after_load.jlog";
  write_jlog(path, LogTable::from_dataset(ds));
  auto table = read_jlog(path);
  // Appending a record whose client pair already exists must reuse its
  // symbol even though the pair cache was rebuilt from the file.
  const auto& first = ds.records().front();
  const auto before = table.distinct_clients();
  table.append(first);
  EXPECT_EQ(table.distinct_clients(), before);
  EXPECT_EQ(table.client_key(static_cast<LogTable::RowIndex>(table.size() - 1)),
            first.client_key());
  std::remove(path.c_str());
}

// ---- Zero-copy file ingest ------------------------------------------------

std::string write_temp_log(const std::string& name, const Dataset& ds,
                           const std::vector<std::string>& extra_lines = {}) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  LogWriter writer(out);
  for (const auto& r : ds.records()) writer.write(r);
  for (const auto& line : extra_lines) out << line << "\n";
  return path;
}

TEST(ZeroCopyIngest, MatchesRowIngestOnCleanFile) {
  Dataset ds = make_dataset(1200);
  {
    // Exercise the unescape slow path: tabs and '+' in fields.
    LogRecord r = ds.records().front();
    r.url = "https://api.test.example/search?q=a+b\tc";
    r.user_agent = "Agent With Spaces/1.0\t(tabbed)";
    ds.add(std::move(r));
  }
  const auto path = write_temp_log("zerocopy_clean.log", ds);

  IngestReport row_report;
  const auto row_ds = ingest_log_file(path, IngestOptions{}, &row_report);
  IngestReport col_report;
  const auto table = read_log_table(path, IngestOptions{}, &col_report);

  expect_same_records(row_ds, table);
  EXPECT_EQ(col_report.lines, row_report.lines);
  EXPECT_EQ(col_report.records, row_report.records);
  EXPECT_EQ(col_report.malformed, row_report.malformed);
  EXPECT_EQ(col_report.header_seen, row_report.header_seen);
  std::remove(path.c_str());
}

TEST(ZeroCopyIngest, CountsMalformedLinesLikeRowIngest) {
  const auto ds = make_dataset(200);
  const auto path = write_temp_log(
      "zerocopy_malformed.log", ds,
      {"not\ta\tlog\tline", "# a comment line",
       "sideways\tc\tua\tGET\tu\td\tct\t200\t1\t0\tHIT\t1",
       "1.5\tc\tua\tBREW\tu\td\tct\t200\t1\t0\tHIT\t1"});

  IngestReport row_report;
  const auto row_ds = ingest_log_file(path, IngestOptions{}, &row_report);
  IngestReport col_report;
  const auto table = read_log_table(path, IngestOptions{}, &col_report);

  expect_same_records(row_ds, table);
  EXPECT_EQ(col_report.lines, row_report.lines);
  EXPECT_EQ(col_report.malformed, row_report.malformed);
  EXPECT_EQ(col_report.reasons, row_report.reasons);
  std::remove(path.c_str());
}

TEST(ZeroCopyIngest, StrictModeThrowsTheSameMessage) {
  const auto ds = make_dataset(10);
  const auto path =
      write_temp_log("zerocopy_strict.log", ds, {"short\tline"});
  IngestOptions strict;
  strict.mode = ParseMode::kStrict;
  std::string row_error;
  try {
    (void)ingest_log_file(path, strict);
    FAIL() << "row ingest did not throw";
  } catch (const std::exception& e) {
    row_error = e.what();
  }
  try {
    (void)read_log_table(path, strict);
    FAIL() << "columnar ingest did not throw";
  } catch (const std::exception& e) {
    EXPECT_EQ(row_error, e.what());
  }
  std::remove(path.c_str());
}

TEST(ZeroCopyIngest, HandlesMissingFinalNewlineAndCrlf) {
  const std::string path = testing::TempDir() + "zerocopy_edges.log";
  {
    const auto line = to_line(LogRecord{});
    std::ofstream out(path, std::ios::binary);
    out << line << "\r\n" << line;  // CRLF line + no final newline
  }
  IngestReport report;
  const auto table = read_log_table(path, IngestOptions{}, &report);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(report.records, 2u);
  EXPECT_EQ(report.malformed, 0u);
  std::remove(path.c_str());
}

// ---- .jlog sidecar --------------------------------------------------------

TEST(Jlog, RoundTripsTableExactly) {
  auto ds = make_dataset(2500);
  ds.sort_by_time();
  const auto table = LogTable::from_dataset(ds);
  const std::string path = testing::TempDir() + "roundtrip.jlog";
  write_jlog(path, table);

  EXPECT_TRUE(is_jlog_file(path));
  IngestReport report;
  const auto loaded = read_jlog(path, &report);
  expect_same_records(ds, loaded);
  EXPECT_EQ(report.records, ds.size());
  EXPECT_EQ(report.lines, ds.size());
  EXPECT_TRUE(report.header_seen);
  std::remove(path.c_str());
}

TEST(Jlog, RejectsBadMagicAndTruncation) {
  const auto ds = make_dataset(400);
  const std::string path = testing::TempDir() + "corrupt.jlog";
  write_jlog(path, LogTable::from_dataset(ds));

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);

  // Truncate at several depths: header, dictionaries, columns, last byte.
  for (const std::size_t keep :
       {std::size_t{4}, std::size_t{20}, bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(keep));
    out.close();
    EXPECT_THROW((void)read_jlog(path), std::runtime_error) << keep;
  }

  // Flip the magic.
  {
    std::string bad = bytes;
    bad[0] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_FALSE(is_jlog_file(path));
  EXPECT_THROW((void)read_jlog(path), std::runtime_error);

  // Trailing garbage after a valid image is corruption, not slack.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  EXPECT_THROW((void)read_jlog(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Jlog, RejectsOutOfRangeEnumAndSymbol) {
  const auto ds = make_dataset(50);
  const std::string path = testing::TempDir() + "ranges.jlog";
  write_jlog(path, LogTable::from_dataset(ds));
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();

  // Corrupting interior bytes must never crash: every read is bounds- and
  // range-checked, so the only acceptable outcomes are a clean throw or a
  // (for bytes inside string payloads) differing but well-formed table.
  stats::Rng rng(7);
  for (int trial = 0; trial < 64; ++trial) {
    std::string bad = bytes;
    const auto pos = static_cast<std::size_t>(rng.uniform_int(
        8, static_cast<std::int64_t>(bad.size() - 1)));
    bad[pos] = static_cast<char>(bad[pos] ^ 0xff);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
    out.close();
    try {
      const auto table = read_jlog(path);
      EXPECT_EQ(table.size(), ds.size());  // row count guarded by checks
    } catch (const std::runtime_error&) {
      // rejected — the expected path for structural corruption
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace jsoncdn::logs
