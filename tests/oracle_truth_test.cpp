#include "oracle/ground_truth.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "cdn/network.h"
#include "workload/scenario.h"

namespace jsoncdn::oracle {
namespace {

TruthSidecar sample_sidecar() {
  TruthSidecar truth;
  truth.total_events = 1234;
  truth.periodic_events = 56;
  truth.population_shares = {{"mobile-app", 0.5}, {"embedded", 0.12}};
  truth.clients.push_back(
      {"abc123|UA with\ttab and\nnewline", "mobile-app", "mobile",
       "native-app", true});
  truth.clients.push_back({"def456|", "no-ua", "unknown", "unknown", false});
  truth.periodic_flows.push_back(
      {"abc123|UA with\ttab and\nnewline",
       "https://api.fin-001.example/poll?x=100%25", 30.0, 120});
  truth.sessions.push_back(
      {"abc123|UA with\ttab and\nnewline",
       {"https://a.example/1", "https://a.example/2", "https://a.example/3"}});
  truth.template_of_url = {
      {"https://a.example/article/99", "https://a.example/article/{id}"}};
  truth.industry_of_domain = {{"api.fin-001.example", "Financial Services"}};
  // The '+' is load-bearing: unescape must not fold it to a space the way
  // form decoding would, or attacker keys stop joining the log.
  truth.attackers.push_back(
      {"fee1dead|Scrapy/2.11.0 (+https://scrapy.org)", "scraper", 352});
  truth.hostile_events = 352;
  return truth;
}

TEST(OracleTruth, RoundTripsThroughStream) {
  const auto truth = sample_sidecar();
  std::stringstream stream;
  write_truth(stream, truth);

  const auto loaded = read_truth(stream);
  EXPECT_EQ(loaded.total_events, truth.total_events);
  EXPECT_EQ(loaded.periodic_events, truth.periodic_events);
  EXPECT_EQ(loaded.population_shares, truth.population_shares);
  ASSERT_EQ(loaded.clients.size(), truth.clients.size());
  for (std::size_t i = 0; i < truth.clients.size(); ++i) {
    EXPECT_EQ(loaded.clients[i].client_key, truth.clients[i].client_key);
    EXPECT_EQ(loaded.clients[i].profile_class,
              truth.clients[i].profile_class);
    EXPECT_EQ(loaded.clients[i].device, truth.clients[i].device);
    EXPECT_EQ(loaded.clients[i].agent, truth.clients[i].agent);
    EXPECT_EQ(loaded.clients[i].runs_periodic_flow,
              truth.clients[i].runs_periodic_flow);
  }
  ASSERT_EQ(loaded.periodic_flows.size(), 1u);
  EXPECT_EQ(loaded.periodic_flows[0].client_key,
            truth.periodic_flows[0].client_key);
  EXPECT_EQ(loaded.periodic_flows[0].url, truth.periodic_flows[0].url);
  EXPECT_DOUBLE_EQ(loaded.periodic_flows[0].period_seconds, 30.0);
  EXPECT_EQ(loaded.periodic_flows[0].request_count, 120u);
  ASSERT_EQ(loaded.sessions.size(), 1u);
  EXPECT_EQ(loaded.sessions[0].urls, truth.sessions[0].urls);
  EXPECT_EQ(loaded.template_of_url, truth.template_of_url);
  EXPECT_EQ(loaded.industry_of_domain, truth.industry_of_domain);
  ASSERT_EQ(loaded.attackers.size(), 1u);
  EXPECT_EQ(loaded.attackers[0].client_key, truth.attackers[0].client_key);
  EXPECT_EQ(loaded.attackers[0].kind, "scraper");
  EXPECT_EQ(loaded.attackers[0].request_count, 352u);
  EXPECT_EQ(loaded.hostile_events, 352u);
}

TEST(OracleTruth, HeaderIsVersioned) {
  std::stringstream stream;
  write_truth(stream, sample_sidecar());
  std::string first_line;
  std::getline(stream, first_line);
  EXPECT_EQ(first_line, truth_header());
}

TEST(OracleTruth, RejectsMissingHeader) {
  std::stringstream stream("stat\ttotal_events\t5\n");
  EXPECT_THROW((void)read_truth(stream), std::runtime_error);
}

TEST(OracleTruth, RejectsEmptyInput) {
  std::stringstream stream;
  EXPECT_THROW((void)read_truth(stream), std::runtime_error);
}

TEST(OracleTruth, RejectsMalformedRows) {
  const auto parse = [](const std::string& row) {
    std::stringstream stream(std::string(truth_header()) + "\n" + row + "\n");
    return read_truth(stream);
  };
  EXPECT_THROW((void)parse("stat\ttotal_events\tnot-a-number"),
               std::runtime_error);
  EXPECT_THROW((void)parse("stat\tbogus_name\t5"), std::runtime_error);
  EXPECT_THROW((void)parse("client\tonly\tthree\tcols"), std::runtime_error);
  EXPECT_THROW((void)parse("client\tk\tc\td\ta\t2"), std::runtime_error);
  EXPECT_THROW((void)parse("flow\tk\tu\t-3\t10"), std::runtime_error);
  EXPECT_THROW((void)parse("flow\tk\tu\t30\tmany"), std::runtime_error);
  EXPECT_THROW((void)parse("session"), std::runtime_error);
  EXPECT_THROW((void)parse("mystery\ta\tb"), std::runtime_error);
}

TEST(OracleTruth, FileHelpersThrowOnMissingPath) {
  EXPECT_THROW((void)read_truth_file("/nonexistent/dir/x.truth"),
               std::runtime_error);
  EXPECT_THROW(write_truth_file("/nonexistent/dir/x.truth", sample_sidecar()),
               std::runtime_error);
}

// The sidecar must speak the log's identity vocabulary: every client key it
// emits joins against the records the CDN actually logged for that workload.
TEST(OracleTruth, SidecarKeysJoinAgainstTheEdgeLog) {
  auto config = workload::long_term_scenario(0.001, 5);
  config.duration_seconds = 1800.0;
  config.n_clients = 120;
  const workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(),
                          cdn::NetworkParams{});
  const auto dataset = network.run(workload.events);
  const auto sidecar =
      make_sidecar(workload.truth, config, network.anonymizer());

  ASSERT_EQ(sidecar.clients.size(), workload.truth.clients.size());
  std::unordered_set<std::string> truth_keys;
  for (const auto& client : sidecar.clients) {
    // Pseudonymized: the id half of the key is the anonymizer's 16-hex-digit
    // pseudonym, never the raw generator address.
    const auto bar = client.client_key.find('|');
    ASSERT_NE(bar, std::string::npos) << client.client_key;
    const auto id = client.client_key.substr(0, bar);
    EXPECT_EQ(id.size(), 16u) << client.client_key;
    EXPECT_EQ(id.find_first_not_of("0123456789abcdef"), std::string::npos)
        << client.client_key;
    truth_keys.insert(client.client_key);
  }
  ASSERT_FALSE(dataset.empty());
  for (const auto& record : dataset.records()) {
    EXPECT_TRUE(truth_keys.contains(record.client_key()))
        << "log record client has no truth row: " << record.client_key();
  }

  // Every domain the log saw carries an exact industry label.
  for (const auto& record : dataset.records()) {
    EXPECT_TRUE(sidecar.industry_of_domain.contains(record.domain))
        << record.domain;
  }

  // Session truth is present and well-formed (app-graph sessions exist even
  // in a small long-term window).
  EXPECT_FALSE(sidecar.sessions.empty());
  for (const auto& session : sidecar.sessions) {
    EXPECT_TRUE(truth_keys.contains(session.client_key));
    EXPECT_FALSE(session.urls.empty());
  }
}

}  // namespace
}  // namespace jsoncdn::oracle
