#include "faults/breaker.h"

#include <stdexcept>

namespace jsoncdn::faults {

std::string_view to_string(BreakerState s) noexcept {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "closed";
}

CircuitBreaker::CircuitBreaker(const BreakerConfig& config) : config_(config) {
  if (config.failure_threshold == 0)
    throw std::invalid_argument("CircuitBreaker: failure_threshold == 0");
  if (config.open_seconds < 0.0)
    throw std::invalid_argument("CircuitBreaker: negative open_seconds");
  if (config.half_open_successes == 0)
    throw std::invalid_argument("CircuitBreaker: half_open_successes == 0");
}

void CircuitBreaker::transition(double now, BreakerState to) {
  timeline_.push_back({now, state_, to});
  state_ = to;
}

bool CircuitBreaker::allow(double now) {
  if (state_ == BreakerState::kOpen) {
    if (now < open_until_) return false;
    transition(now, BreakerState::kHalfOpen);
    half_open_successes_ = 0;
  }
  return true;
}

void CircuitBreaker::record_success(double now) {
  switch (state_) {
    case BreakerState::kClosed:
      consecutive_failures_ = 0;
      break;
    case BreakerState::kHalfOpen:
      if (++half_open_successes_ >= config_.half_open_successes) {
        transition(now, BreakerState::kClosed);
        consecutive_failures_ = 0;
      }
      break;
    case BreakerState::kOpen:
      // A success cannot be observed while open (allow() refused the
      // request); tolerate the call for robustness.
      break;
  }
}

void CircuitBreaker::record_failure(double now) {
  switch (state_) {
    case BreakerState::kClosed:
      if (++consecutive_failures_ >= config_.failure_threshold) {
        transition(now, BreakerState::kOpen);
        open_until_ = now + config_.open_seconds;
        ++trips_;
      }
      break;
    case BreakerState::kHalfOpen:
      // A failed probe reopens immediately.
      transition(now, BreakerState::kOpen);
      open_until_ = now + config_.open_seconds;
      ++trips_;
      break;
    case BreakerState::kOpen:
      break;
  }
}

BreakerState CircuitBreaker::state(double now) const noexcept {
  if (state_ == BreakerState::kOpen && now >= open_until_)
    return BreakerState::kHalfOpen;
  return state_;
}

}  // namespace jsoncdn::faults
