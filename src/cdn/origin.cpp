#include "cdn/origin.h"

#include <stdexcept>

namespace jsoncdn::cdn {

Origin::Origin(const workload::ObjectCatalog& catalog,
               const OriginParams& params)
    : catalog_(catalog), params_(params) {
  if (params.bandwidth_bytes_per_s <= 0.0)
    throw std::invalid_argument("Origin: bandwidth <= 0");
  if (params.rtt_seconds < 0.0 || params.processing_seconds < 0.0)
    throw std::invalid_argument("Origin: negative latency");
}

void Origin::apply_faults(OriginResult& result, std::string_view url,
                          double now) const {
  if (faults_ == nullptr || !faults_->enabled()) return;
  // The plan is keyed by the customer origin (the object's domain); requests
  // for unknown objects key on the URL — they reach *some* infrastructure.
  const std::string_view key =
      result.object != nullptr ? std::string_view(result.object->domain) : url;
  const auto decision = faults_->next(key, now);
  switch (decision.outcome) {
    case faults::FaultOutcome::kOk:
      result.latency_seconds *= decision.latency_multiplier;
      return;
    case faults::FaultOutcome::kError:
      // Fast 5xx: the origin answered, just not with content.
      result.status = decision.status;
      result.latency_seconds = params_.rtt_seconds + params_.processing_seconds;
      result.bytes = 0;
      break;
    case faults::FaultOutcome::kTimeout:
      // Hung connection: nothing comes back; the edge decides how long it
      // waits (its timeout budget), so charge only the round trip here.
      result.timed_out = true;
      result.status = 504;
      result.latency_seconds = params_.rtt_seconds;
      result.bytes = 0;
      break;
    case faults::FaultOutcome::kTruncated:
      // 200 on the wire, connection dropped mid-body: half the bytes
      // arrive and the response is unusable.
      result.truncated = true;
      result.bytes /= 2;
      result.latency_seconds =
          params_.rtt_seconds + params_.processing_seconds +
          static_cast<double>(result.bytes) / params_.bandwidth_bytes_per_s;
      break;
  }
  ++faulted_;
}

OriginResult Origin::fetch(std::string_view url, double now) const {
  ++fetches_;
  OriginResult out;
  out.object = catalog_.find(url);
  out.latency_seconds = params_.rtt_seconds + params_.processing_seconds;
  if (out.object != nullptr) {
    out.bytes = out.object->body_bytes;
    out.latency_seconds +=
        static_cast<double>(out.bytes) / params_.bandwidth_bytes_per_s;
  } else {
    out.status = 404;
  }
  apply_faults(out, url, now);
  bytes_ += out.bytes;
  return out;
}

OriginResult Origin::revalidate(std::string_view url, double now) const {
  ++fetches_;
  OriginResult out;
  out.object = catalog_.find(url);
  out.latency_seconds = params_.rtt_seconds + params_.processing_seconds;
  if (out.object == nullptr) out.status = 404;
  // 304: headers only, no body bytes served.
  apply_faults(out, url, now);
  return out;
}

}  // namespace jsoncdn::cdn
