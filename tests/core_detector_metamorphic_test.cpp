// Metamorphic relations for the whole detector portfolio: time-shift,
// uniform time-scale, flow-disjoint interleaving, and benign noise all have
// known label algebra (identity, scaled periods, identity on original
// flows, identity on original flows) that every strategy must satisfy on
// the same generated workload. No reference outputs: the relations grade
// the detectors against themselves.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "cdn/network.h"
#include "core/period_detector.h"
#include "core/periodicity.h"
#include "logs/dataset.h"
#include "oracle/metamorphic.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace jsoncdn::core {
namespace {

class DetectorMetamorphicTest
    : public ::testing::TestWithParam<DetectorStrategy> {
 protected:
  static void SetUpTestSuite() {
    auto wconfig = workload::long_term_scenario(0.001, 31);
    wconfig.duration_seconds = 1800.0;
    wconfig.n_clients = 120;
    wconfig.periodic.embedded = 0.8;
    wconfig.periodic.library = 0.5;
    const workload::WorkloadGenerator generator(wconfig);
    const auto workload = generator.generate();
    cdn::CdnNetwork network(generator.catalog().objects(),
                            cdn::NetworkParams{});
    dataset_ = new logs::Dataset(network.run(workload.events).json_only());
  }
  static void TearDownTestSuite() {
    delete dataset_;
    dataset_ = nullptr;
  }

  oracle::DetectionLabels labels_of(const logs::Dataset& ds,
                                    const std::string& strip = {}) const {
    PeriodicityConfig config;
    config.strategy = GetParam();
    config.threads = 1;
    return oracle::detection_labels(analyze_periodicity(ds, config), strip);
  }

  static logs::Dataset* dataset_;
};

logs::Dataset* DetectorMetamorphicTest::dataset_ = nullptr;

TEST_P(DetectorMetamorphicTest, TimeShiftPreservesLabels) {
  const auto original = labels_of(*dataset_);
  ASSERT_FALSE(original.empty());
  const auto shifted = labels_of(oracle::shift_time(*dataset_, 86400.0));
  // Labels exact; periods may wiggle at the per-timestamp rounding ulp.
  EXPECT_TRUE(oracle::labels_equivalent(shifted, original, 1e-9));
}

TEST_P(DetectorMetamorphicTest, TimeScalePreservesLabelsAndScalesPeriods) {
  const double factor = 1.75;
  const auto original = labels_of(*dataset_);
  ASSERT_FALSE(original.empty());
  const auto scaled = labels_of(oracle::scale_time(*dataset_, factor));
  // Period quantization (bin width, periodogram grid) rescales with the
  // input, but the caps that don't scale (the 1 s sampling floor) let
  // refined periods move by a small relative amount.
  EXPECT_TRUE(oracle::labels_equivalent(
      scaled, oracle::scale_periods(original, factor), 0.05));
}

TEST_P(DetectorMetamorphicTest, InterleavingDisjointCopyPreservesLabels) {
  const auto original = labels_of(*dataset_);
  ASSERT_FALSE(original.empty());
  const auto merged = oracle::merge_datasets(
      *dataset_, oracle::rename_disjoint(*dataset_, "-mirror"));
  const auto merged_labels = labels_of(merged);
  EXPECT_TRUE(oracle::labels_equivalent(
      oracle::restrict_labels(merged_labels, original), original));
}

TEST_P(DetectorMetamorphicTest, BenignNoiseDoesNotFlipLabels) {
  const auto original = labels_of(*dataset_);
  ASSERT_FALSE(original.empty());
  const auto noisy =
      labels_of(oracle::inject_benign_noise(*dataset_, 400, 99));
  EXPECT_TRUE(oracle::labels_equivalent(
      oracle::restrict_labels(noisy, original), original));
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, DetectorMetamorphicTest,
    ::testing::Values(DetectorStrategy::kAcfFft,
                      DetectorStrategy::kLombScargle,
                      DetectorStrategy::kAutoperiod,
                      DetectorStrategy::kCfdAutoperiod,
                      DetectorStrategy::kMultiPeriod),
    [](const ::testing::TestParamInfo<DetectorStrategy>& info) {
      std::string name(detector_name(info.param));
      std::replace(name.begin(), name.end(), '-', '_');
      return name;
    });

}  // namespace
}  // namespace jsoncdn::core
