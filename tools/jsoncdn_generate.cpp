// jsoncdn-generate — produce a synthetic CDN edge log file.
//
//   jsoncdn-generate [--scenario short|long] [--scale S] [--seed N]
//                    [--out FILE] [--json-only]
//
// Writes the TSV log format (logs/csv.h) that jsoncdn-analyze consumes, so
// the full pipeline can be driven from the shell exactly like the paper's:
// collect logs on the edge, analyze offline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "cdn/network.h"
#include "logs/csv.h"
#include "workload/scenario.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jsoncdn-generate [--scenario short|long] [--scale S]\n"
               "                        [--seed N] [--out FILE] [--json-only]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  std::string scenario = "short";
  double scale = 0.005;
  std::uint64_t seed = 42;
  std::string out_path = "jsoncdn.log";
  bool json_only = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--json-only") {
      json_only = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  workload::GeneratorConfig config;
  if (scenario == "short") {
    config = workload::short_term_scenario(scale, seed);
  } else if (scenario == "long") {
    config = workload::long_term_scenario(scale, seed);
  } else {
    std::fprintf(stderr, "unknown scenario: %s\n", scenario.c_str());
    return 2;
  }

  std::fprintf(stderr, "generating %s-term scenario at scale %g (seed %llu)\n",
               scenario.c_str(), scale,
               static_cast<unsigned long long>(seed));
  workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  cdn::CdnNetwork network(generator.catalog().objects(), {});
  auto dataset = network.run(workload.events);
  if (json_only) dataset = dataset.json_only();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  logs::LogWriter writer(out);
  for (const auto& record : dataset.records()) writer.write(record);
  std::fprintf(stderr, "wrote %llu records to %s\n",
               static_cast<unsigned long long>(writer.written()),
               out_path.c_str());
  return 0;
}
