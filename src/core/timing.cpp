#include "core/timing.h"

#include <algorithm>
#include <stdexcept>

namespace jsoncdn::core {

void GapStats::add(double gap) {
  if (count == 0) {
    min = gap;
    max = gap;
  } else {
    min = std::min(min, gap);
    max = std::max(max, gap);
  }
  ++count;
  const double delta = gap - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (gap - mean);
}

std::string InterarrivalModel::key(std::string_view from,
                                   std::string_view to) {
  std::string out;
  out.reserve(from.size() + to.size() + 1);
  out.append(from);
  out.push_back('\x1f');  // unit separator: cannot appear in URLs
  out.append(to);
  return out;
}

void InterarrivalModel::observe(std::string_view from, std::string_view to,
                                double gap) {
  if (gap < 0.0)
    throw std::invalid_argument("InterarrivalModel::observe: negative gap");
  transitions_[key(from, to)].add(gap);
  by_source_[std::string(from)].add(gap);
  global_.add(gap);
  ++observations_;
}

void InterarrivalModel::observe_dataset(const logs::Dataset& ds,
                                        std::size_t min_flow_requests) {
  const auto& records = ds.records();
  for (const auto& flow : logs::extract_client_flows(ds, min_flow_requests)) {
    for (std::size_t i = 1; i < flow.record_indices.size(); ++i) {
      const auto& prev = records[flow.record_indices[i - 1]];
      const auto& next = records[flow.record_indices[i]];
      const double gap = std::max(0.0, next.timestamp - prev.timestamp);
      observe(prev.url, next.url, gap);
    }
  }
}

const GapStats* InterarrivalModel::stats_for(std::string_view from,
                                             std::string_view to) const {
  const auto it = transitions_.find(key(from, to));
  return it == transitions_.end() ? nullptr : &it->second;
}

std::optional<double> InterarrivalModel::expected_gap(
    std::string_view from, std::string_view to) const {
  if (const auto* stats = stats_for(from, to)) return stats->mean;
  if (const auto it = by_source_.find(std::string(from));
      it != by_source_.end()) {
    return it->second.mean;
  }
  if (global_.count > 0) return global_.mean;
  return std::nullopt;
}

}  // namespace jsoncdn::core
