// Ground-truth sidecar: the generator's labels, serialized next to the log.
//
// The whole point of substituting the paper's Akamai logs with a synthetic
// workload is that every analysis can be scored against known ground truth —
// this file closes that loop. `jsoncdn-generate --ground-truth` writes one
// sidecar per log; the oracle scorer joins analysis output against it.
//
// The sidecar speaks the *log's* identity vocabulary, not the generator's:
// client addresses are pseudonymized through the same salted hash the edge
// applies (logs::Anonymizer), so truth rows join against log records by
// client_key without ever exposing raw addresses. Format is line-oriented
// TSV with a leading record-type column, percent-escaped like the log
// itself, sorted sections — stable, diffable, and versioned by header.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "logs/anonymizer.h"
#include "workload/generator.h"

namespace jsoncdn::oracle {

// One client of the population, keyed the way the log keys it.
struct TruthClient {
  std::string client_key;     // pseudonym "|" user_agent — LogRecord::client_key()
  std::string profile_class;  // workload::to_string(ProfileClass)
  std::string device;         // http::to_string(DeviceType)
  std::string agent;          // http::to_string(AgentKind)
  bool runs_periodic_flow = false;
};

// One labelled periodic machine-to-machine flow.
struct TruthFlow {
  std::string client_key;
  std::string url;
  double period_seconds = 0.0;
  std::uint64_t request_count = 0;
};

// One interactive session's intended URL chain, in request order.
struct TruthSession {
  std::string client_key;
  std::vector<std::string> urls;
};

// One hostile client with its attack class. Rows are additive to the v1
// format: a log-side join on client_key labels every hostile request,
// because attackers use dedicated addresses the benign population never
// draws.
struct TruthAttacker {
  std::string client_key;
  std::string kind;  // workload::to_string(AttackKind)
  std::uint64_t request_count = 0;
};

struct TruthSidecar {
  std::vector<TruthClient> clients;
  std::vector<TruthFlow> periodic_flows;
  std::vector<TruthSession> sessions;
  std::vector<TruthAttacker> attackers;
  // URL -> app-graph template key (ideal clustering for Table 3 scoring).
  std::map<std::string, std::string> template_of_url;
  // Domain -> industry label (the paper's categorization service, exact).
  std::map<std::string, std::string> industry_of_domain;
  // Configured population weights by profile-class name (unnormalized).
  std::map<std::string, double> population_shares;
  std::uint64_t total_events = 0;
  std::uint64_t periodic_events = 0;
  std::uint64_t hostile_events = 0;
};

// Header line identifying the sidecar format version.
[[nodiscard]] std::string_view truth_header() noexcept;

// Builds the sidecar from the generator's truth, pseudonymizing every client
// address through `anonymizer` — pass the same one the CDN network logged
// with, or nothing will join.
[[nodiscard]] TruthSidecar make_sidecar(const workload::GroundTruth& truth,
                                        const workload::GeneratorConfig& config,
                                        const logs::Anonymizer& anonymizer);

// Serialization. write_truth emits the header plus one line per row;
// read_truth parses a complete sidecar and throws std::runtime_error on a
// missing/unsupported header or a malformed row (truth files are artifacts
// we wrote ourselves — corruption is an error, never skipped silently).
void write_truth(std::ostream& out, const TruthSidecar& sidecar);
[[nodiscard]] TruthSidecar read_truth(std::istream& in);

// File convenience wrappers; throw std::runtime_error when the file cannot
// be opened.
void write_truth_file(const std::string& path, const TruthSidecar& sidecar);
[[nodiscard]] TruthSidecar read_truth_file(const std::string& path);

}  // namespace jsoncdn::oracle
