#include "http/mime.h"

#include <gtest/gtest.h>

namespace jsoncdn::http {
namespace {

TEST(ParseMime, BasicTypeSubtype) {
  const auto m = parse_mime("application/json");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->type, "application");
  EXPECT_EQ(m->subtype, "json");
  EXPECT_TRUE(m->parameters.empty());
  EXPECT_EQ(m->essence(), "application/json");
}

TEST(ParseMime, NormalizesCase) {
  const auto m = parse_mime("Application/JSON");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->essence(), "application/json");
}

TEST(ParseMime, ParsesParameters) {
  const auto m = parse_mime("text/html; charset=utf-8; boundary=x");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->parameters.size(), 2u);
  EXPECT_EQ(m->parameters[0].first, "charset");
  EXPECT_EQ(m->parameters[0].second, "utf-8");
  EXPECT_EQ(m->parameters[1].first, "boundary");
}

TEST(ParseMime, ToleratesSloppyWhitespace) {
  const auto m = parse_mime("  application/json ;  charset=utf-8  ");
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->essence(), "application/json");
  ASSERT_EQ(m->parameters.size(), 1u);
}

TEST(ParseMime, RejectsGrammarViolations) {
  EXPECT_FALSE(parse_mime("").has_value());
  EXPECT_FALSE(parse_mime("noslash").has_value());
  EXPECT_FALSE(parse_mime("/json").has_value());
  EXPECT_FALSE(parse_mime("application/").has_value());
  EXPECT_FALSE(parse_mime("a/b/c").has_value());
}

TEST(ParseMime, ValuelessParameterAllowed) {
  const auto m = parse_mime("application/json; x");
  ASSERT_TRUE(m.has_value());
  ASSERT_EQ(m->parameters.size(), 1u);
  EXPECT_EQ(m->parameters[0].first, "x");
  EXPECT_EQ(m->parameters[0].second, "");
}

struct ClassifyCase {
  const char* header;
  ContentClass expected;
};

class ClassifyContentTest : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(ClassifyContentTest, MapsToExpectedClass) {
  EXPECT_EQ(classify_content(GetParam().header), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Headers, ClassifyContentTest,
    ::testing::Values(
        ClassifyCase{"application/json", ContentClass::kJson},
        ClassifyCase{"application/json; charset=utf-8", ContentClass::kJson},
        ClassifyCase{"application/problem+json", ContentClass::kJson},
        ClassifyCase{"application/vnd.api+json", ContentClass::kJson},
        ClassifyCase{"text/json", ContentClass::kJson},
        ClassifyCase{"text/html", ContentClass::kHtml},
        ClassifyCase{"TEXT/HTML; charset=ISO-8859-1", ContentClass::kHtml},
        ClassifyCase{"text/css", ContentClass::kCss},
        ClassifyCase{"application/javascript", ContentClass::kJavascript},
        ClassifyCase{"text/javascript", ContentClass::kJavascript},
        ClassifyCase{"application/x-javascript", ContentClass::kJavascript},
        ClassifyCase{"image/png", ContentClass::kImage},
        ClassifyCase{"image/jpeg", ContentClass::kImage},
        ClassifyCase{"video/mp4", ContentClass::kVideo},
        ClassifyCase{"font/woff2", ContentClass::kFont},
        ClassifyCase{"application/font-woff", ContentClass::kFont},
        ClassifyCase{"text/plain", ContentClass::kPlain},
        ClassifyCase{"application/octet-stream", ContentClass::kBinary},
        ClassifyCase{"application/xml", ContentClass::kOther},
        ClassifyCase{"garbage", ContentClass::kOther},
        ClassifyCase{"", ContentClass::kOther}));

TEST(IsJson, MatchesPaperFilter) {
  EXPECT_TRUE(is_json("application/json"));
  EXPECT_TRUE(is_json("application/json; charset=utf-8"));
  EXPECT_FALSE(is_json("text/html"));
  EXPECT_FALSE(is_json("application/jsonp"));  // not json
}

TEST(ContentClassNames, AreStable) {
  EXPECT_EQ(to_string(ContentClass::kJson), "json");
  EXPECT_EQ(to_string(ContentClass::kHtml), "html");
  EXPECT_EQ(to_string(ContentClass::kOther), "other");
}

}  // namespace
}  // namespace jsoncdn::http
