#include "cdn/overload.h"

#include <algorithm>

#include "http/device_db.h"

namespace jsoncdn::cdn {

bool machine_class(std::string_view user_agent) {
  const auto cls = http::classify_device(user_agent);
  return cls.agent != http::AgentKind::kBrowser &&
         cls.agent != http::AgentKind::kNativeApp;
}

OverloadParams OverloadParams::protected_defaults() {
  OverloadParams p;
  p.model_capacity = true;
  p.queue_limit = 64;
  p.bucket_rate = 4.0;
  p.bucket_burst = 24.0;
  p.codel_target_seconds = 0.05;
  p.codel_interval_seconds = 0.5;
  p.human_shed_multiplier = 4.0;
  return p;
}

OverloadParams OverloadParams::unprotected_defaults() {
  OverloadParams p;
  p.model_capacity = true;
  return p;
}

OverloadController::OverloadController(const OverloadParams& params)
    : params_(params) {
  if (params_.concurrency == 0) params_.concurrency = 1;
}

double OverloadController::queue_delay(double now) const {
  // Workers not in the heap (or whose busy-until already passed) are idle:
  // a new request would start immediately.
  if (free_at_.size() < params_.concurrency) return 0.0;
  return std::max(0.0, free_at_.top() - now);
}

std::size_t OverloadController::queued(double now) {
  while (!pending_starts_.empty() && pending_starts_.front() <= now) {
    pending_starts_.pop_front();
  }
  return pending_starts_.size();
}

bool OverloadController::take_token(std::string_view client_key, double now) {
  const auto symbol = clients_.intern(client_key);
  if (symbol >= buckets_.size()) {
    TokenBucket fresh;
    fresh.tokens = params_.bucket_burst;
    fresh.refilled_at = now;
    buckets_.resize(symbol + 1, fresh);
  }
  auto& bucket = buckets_[symbol];
  bucket.tokens = std::min(
      params_.bucket_burst,
      bucket.tokens + (now - bucket.refilled_at) * params_.bucket_rate);
  bucket.refilled_at = now;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

AdmitDecision OverloadController::admit(std::string_view client_key,
                                        bool machine, double now) {
  AdmitDecision decision;
  if (!params_.model_capacity) return decision;

  // Rate limiting first: a bot with an empty bucket is rejected even when
  // the edge is idle — fairness, not just congestion control.
  if (params_.bucket_rate > 0.0 && !take_token(client_key, now)) {
    decision.outcome = AdmitOutcome::kThrottled;
    return decision;
  }

  const double wait = queue_delay(now);

  // Bounded admission queue: reject rather than grow the backlog past the
  // limit. Rejected requests never enter the queue.
  if (params_.queue_limit > 0 && queued(now) >= params_.queue_limit) {
    decision.outcome = AdmitOutcome::kShedQueueFull;
    return decision;
  }

  // CoDel-style shedding: only engages after the queue delay has stayed
  // above target for a full interval (transient bursts ride through), and
  // sheds machine-class before human-class.
  if (params_.codel_target_seconds > 0.0) {
    if (wait > params_.codel_target_seconds) {
      if (first_above_at_ < 0.0) first_above_at_ = now;
      const bool sustained =
          now - first_above_at_ >= params_.codel_interval_seconds;
      const bool shed_human =
          wait > params_.codel_target_seconds * params_.human_shed_multiplier;
      if (sustained && (machine || shed_human)) {
        decision.outcome = AdmitOutcome::kShedOverload;
        return decision;
      }
    } else {
      first_above_at_ = -1.0;
    }
  }

  decision.queue_wait = wait;
  return decision;
}

void OverloadController::complete(double now, double service_seconds) {
  if (!params_.model_capacity) return;
  service_seconds = std::max(service_seconds, params_.service_floor_seconds);
  // Idle workers (busy-until in the past) free their heap slot here, so the
  // heap never exceeds `concurrency` entries.
  while (!free_at_.empty() && free_at_.top() <= now) free_at_.pop();
  double start = now;
  if (free_at_.size() >= params_.concurrency) {
    start = std::max(now, free_at_.top());
    free_at_.pop();
  }
  free_at_.push(start + service_seconds);
  if (start > now) pending_starts_.push_back(start);
}

}  // namespace jsoncdn::cdn
