#include "cdn/prioritizer.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <stdexcept>

namespace jsoncdn::cdn {

ScheduleResult simulate_schedule(std::vector<SchedulerJob> jobs,
                                 SchedulingPolicy policy,
                                 std::size_t servers) {
  if (servers == 0)
    throw std::invalid_argument("simulate_schedule: servers == 0");
  for (const auto& j : jobs) {
    if (j.service < 0.0)
      throw std::invalid_argument("simulate_schedule: negative service time");
  }
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const SchedulerJob& a, const SchedulerJob& b) {
                     return a.arrival < b.arrival;
                   });

  std::priority_queue<double, std::vector<double>, std::greater<>> busy;
  std::size_t free_servers = servers;
  std::deque<std::size_t> human_q;
  std::deque<std::size_t> machine_q;
  std::vector<double> human_wait, human_sojourn;
  std::vector<double> machine_wait, machine_sojourn;

  std::size_t next_arrival = 0;
  double clock = 0.0;

  auto dispatch = [&](std::size_t j) {
    const double wait = clock - jobs[j].arrival;
    const double sojourn = wait + jobs[j].service;
    if (jobs[j].machine) {
      machine_wait.push_back(wait);
      machine_sojourn.push_back(sojourn);
    } else {
      human_wait.push_back(wait);
      human_sojourn.push_back(sojourn);
    }
    busy.push(clock + jobs[j].service);
    --free_servers;
  };

  auto pick_next = [&]() -> std::size_t {
    if (policy == SchedulingPolicy::kHumanPriority) {
      if (!human_q.empty()) {
        const auto j = human_q.front();
        human_q.pop_front();
        return j;
      }
      const auto j = machine_q.front();
      machine_q.pop_front();
      return j;
    }
    // FIFO across classes: both queues are arrival-ordered, so compare
    // fronts by index (indices follow arrival order after the sort).
    if (machine_q.empty() ||
        (!human_q.empty() && human_q.front() < machine_q.front())) {
      const auto j = human_q.front();
      human_q.pop_front();
      return j;
    }
    const auto j = machine_q.front();
    machine_q.pop_front();
    return j;
  };

  const std::size_t total = jobs.size();
  std::size_t dispatched = 0;
  while (dispatched < total) {
    // Admit every arrival at or before the clock.
    while (next_arrival < total && jobs[next_arrival].arrival <= clock) {
      (jobs[next_arrival].machine ? machine_q : human_q)
          .push_back(next_arrival);
      ++next_arrival;
    }
    if (free_servers > 0 && (!human_q.empty() || !machine_q.empty())) {
      dispatch(pick_next());
      ++dispatched;
      continue;
    }
    // Nothing dispatchable: advance to the next event.
    const double next_arr = next_arrival < total
                                ? jobs[next_arrival].arrival
                                : std::numeric_limits<double>::infinity();
    const double next_done =
        busy.empty() ? std::numeric_limits<double>::infinity() : busy.top();
    const double next_event = std::min(next_arr, next_done);
    if (next_event == std::numeric_limits<double>::infinity()) break;
    clock = std::max(clock, next_event);
    while (!busy.empty() && busy.top() <= clock) {
      busy.pop();
      ++free_servers;
    }
  }

  ScheduleResult out;
  out.human.count = human_wait.size();
  out.human.waiting = stats::summarize(human_wait);
  out.human.sojourn = stats::summarize(human_sojourn);
  out.machine.count = machine_wait.size();
  out.machine.waiting = stats::summarize(machine_wait);
  out.machine.sojourn = stats::summarize(machine_sojourn);
  return out;
}

}  // namespace jsoncdn::cdn
