#include "stream/validate.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "core/characterization.h"
#include "http/mime.h"
#include "stats/descriptive.h"

namespace jsoncdn::stream {

namespace {

double rel_error(double estimate, double exact) {
  if (exact == 0.0) return estimate == 0.0 ? 0.0 : 1.0;
  return std::abs(estimate - exact) / exact;
}

// Exact quantile under the sketch's rank convention (nearest rank of
// q * (n - 1), no interpolation), so the comparison exercises exactly the
// guarantee DDSketch makes.
double exact_quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::llround(q * static_cast<double>(sorted.size() - 1)));
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

bool ValidationReport::within_bounds() const noexcept {
  // The 1.05 slack absorbs floating-point rounding in the bucket-midpoint
  // math; the statistical bounds themselves are not relaxed.
  return url_cardinality_error <= hll_error_bound &&
         client_cardinality_error <= hll_error_bound &&
         domain_cardinality_error <= hll_error_bound &&
         topk_found == topk_checked &&
         topk_max_count_error <= heavy_hitter_error_bound &&
         quantile_max_rel_error <= quantile_error_bound * 1.05 &&
         counters_identical;
}

ValidationReport validate_streaming(const logs::Dataset& exact,
                                    const StreamingSummary& summary,
                                    const StreamingConfig& config,
                                    std::size_t top_k) {
  ValidationReport report;
  const auto json = exact.json_only();

  // --- Cardinalities ------------------------------------------------------
  report.exact_urls = json.distinct_objects();
  report.exact_clients = json.distinct_clients();
  report.exact_domains = json.distinct_domains();
  report.url_cardinality_error =
      rel_error(summary.distinct_urls, static_cast<double>(report.exact_urls));
  report.client_cardinality_error = rel_error(
      summary.distinct_clients, static_cast<double>(report.exact_clients));
  report.domain_cardinality_error = rel_error(
      summary.distinct_domains, static_cast<double>(report.exact_domains));
  report.hll_error_bound = 3.0 * summary.hll_standard_error;

  // --- Heavy hitters ------------------------------------------------------
  std::unordered_map<std::string_view, std::uint64_t> exact_counts;
  for (const auto& r : json.records()) ++exact_counts[r.url];
  std::vector<std::pair<std::string_view, std::uint64_t>> ranked(
      exact_counts.begin(), exact_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::unordered_map<std::string_view, const HeavyHitter*> sketch_top;
  for (const auto& hh : summary.top_urls) sketch_top.emplace(hh.key, &hh);
  report.heavy_hitter_error_bound = summary.heavy_hitter_error_bound;
  for (std::size_t i = 0; i < ranked.size() && i < top_k; ++i) {
    const auto [url, count] = ranked[i];
    ++report.topk_checked;
    const auto it = sketch_top.find(url);
    if (it == sketch_top.end()) continue;
    ++report.topk_found;
    report.topk_max_count_error =
        std::max(report.topk_max_count_error,
                 std::abs(static_cast<double>(it->second->count) -
                          static_cast<double>(count)));
  }

  // --- Size quantiles -----------------------------------------------------
  std::vector<double> json_sizes;
  std::vector<double> html_sizes;
  for (const auto& r : exact.records()) {
    const auto content = http::classify_content(r.content_type);
    if (content == http::ContentClass::kJson)
      json_sizes.push_back(static_cast<double>(r.response_bytes));
    else if (content == http::ContentClass::kHtml)
      html_sizes.push_back(static_cast<double>(r.response_bytes));
  }
  std::sort(json_sizes.begin(), json_sizes.end());
  std::sort(html_sizes.begin(), html_sizes.end());
  const std::pair<double, const stats::Summary*> checks[] = {
      {0.25, &summary.json_sizes}, {0.50, &summary.json_sizes},
      {0.75, &summary.json_sizes}, {0.90, &summary.json_sizes},
      {0.99, &summary.json_sizes}, {0.25, &summary.html_sizes},
      {0.50, &summary.html_sizes}, {0.75, &summary.html_sizes},
      {0.90, &summary.html_sizes}, {0.99, &summary.html_sizes}};
  for (const auto& [q, sketch_summary] : checks) {
    const bool is_json = sketch_summary == &summary.json_sizes;
    const auto& sorted = is_json ? json_sizes : html_sizes;
    if (sorted.empty()) continue;
    const double exact_q = exact_quantile(sorted, q);
    double sketch_q = 0.0;
    if (q == 0.25) sketch_q = sketch_summary->p25;
    else if (q == 0.50) sketch_q = sketch_summary->p50;
    else if (q == 0.75) sketch_q = sketch_summary->p75;
    else if (q == 0.90) sketch_q = sketch_summary->p90;
    else sketch_q = sketch_summary->p99;
    report.quantile_max_rel_error =
        std::max(report.quantile_max_rel_error, rel_error(sketch_q, exact_q));
  }
  report.quantile_error_bound = config.quantile_alpha;

  // --- Exact counters -----------------------------------------------------
  const auto methods = core::characterize_methods(json);
  const auto cache = core::characterize_cacheability(json);
  const auto source = core::characterize_source(json);
  report.counters_identical =
      methods.get == summary.methods.get &&
      methods.post == summary.methods.post &&
      methods.other == summary.methods.other &&
      methods.total == summary.methods.total &&
      cache.cacheable == summary.cacheability.cacheable &&
      cache.uncacheable == summary.cacheability.uncacheable &&
      cache.hits == summary.cacheability.hits &&
      source.total_requests == summary.source.total_requests &&
      source.requests_by_device == summary.source.requests_by_device &&
      source.browser_requests == summary.source.browser_requests &&
      source.mobile_browser_requests ==
          summary.source.mobile_browser_requests &&
      source.missing_ua_requests == summary.source.missing_ua_requests;

  // --- Triage recall ------------------------------------------------------
  logs::FlowFilter filter;
  filter.min_client_flow_requests = config.triage.min_requests;
  filter.min_object_clients = config.triage.min_clients;
  const auto flows = logs::extract_object_flows(json, filter);
  std::unordered_set<std::string_view> candidate_keys;
  for (const auto& c : summary.periodic_candidates)
    candidate_keys.insert(c.key);
  report.eligible_flows = flows.size();
  report.candidate_flows = summary.periodic_candidates.size();
  for (const auto& flow : flows) {
    if (!candidate_keys.contains(flow.url)) ++report.eligible_missed;
  }
  return report;
}

std::string render_validation(const ValidationReport& report) {
  std::ostringstream out;
  out << std::fixed;
  out << "Streaming-vs-batch validation\n";
  out << "  cardinality rel. error (bound " << std::setprecision(4)
      << report.hll_error_bound << "): urls "
      << report.url_cardinality_error << ", clients "
      << report.client_cardinality_error << ", domains "
      << report.domain_cardinality_error << "\n";
  out << "  top-" << report.topk_checked << " URLs found: "
      << report.topk_found << "/" << report.topk_checked
      << ", max count error " << std::setprecision(1)
      << report.topk_max_count_error << " (bound "
      << report.heavy_hitter_error_bound << ")\n";
  out << "  quantile rel. error: " << std::setprecision(4)
      << report.quantile_max_rel_error << " (bound "
      << report.quantile_error_bound << ")\n";
  out << "  exact counters identical: "
      << (report.counters_identical ? "yes" : "NO") << "\n";
  out << "  triage: " << report.candidate_flows << " candidates for "
      << report.eligible_flows << " eligible flows, " << report.eligible_missed
      << " eligible missed\n";
  out << "  within configured bounds: "
      << (report.within_bounds() ? "yes" : "NO") << "\n";
  return out.str();
}

}  // namespace jsoncdn::stream
