#include "oracle/scorer.h"

#include <gtest/gtest.h>

#include "core/characterization.h"
#include "core/url_cluster.h"
#include "http/device_db.h"

namespace jsoncdn::oracle {
namespace {

core::ObjectPeriodicity object_with(
    const std::string& url,
    std::vector<core::ClientPeriodRecord> clients) {
  core::ObjectPeriodicity object;
  object.url = url;
  object.clients = std::move(clients);
  return object;
}

core::ClientPeriodRecord client_record(const std::string& client,
                                       bool periodic, double period) {
  core::ClientPeriodRecord record;
  record.client = client;
  record.periodic = periodic;
  record.period_seconds = period;
  return record;
}

TruthFlow truth_flow(const std::string& client, const std::string& url,
                     double period) {
  return TruthFlow{client, url, period, 100};
}

// --- score_periodicity -----------------------------------------------------

TEST(ScorePeriodicity, PerfectDetectionScoresPerfectly) {
  core::PeriodicityReport report;
  report.objects.push_back(object_with(
      "u1", {client_record("c1", true, 30.0), client_record("c2", false, 0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_EQ(score.eligible_truth, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  EXPECT_DOUBLE_EQ(score.f1(), 1.0);
  EXPECT_LT(score.max_period_rel_error(), 1e-12);
}

TEST(ScorePeriodicity, DetectionWithoutLabelIsFalsePositive) {
  core::PeriodicityReport report;
  report.objects.push_back(
      object_with("u1", {client_record("c1", true, 30.0)}));
  const TruthSidecar truth;  // no labelled flows

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.0);
}

TEST(ScorePeriodicity, LabeledAttackerDetectionIsNeitherTpNorFp) {
  // A rate-limited scraper genuinely emits periodic cadence; the truth
  // labels the client hostile but models no periodic flow for it. The
  // detection must not burn precision — it lands in hostile_detections.
  core::PeriodicityReport report;
  report.objects.push_back(object_with(
      "u1", {client_record("bot", true, 10.0), client_record("c1", true, 30.0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};
  truth.attackers.push_back({"bot", "scraper", 400});

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_EQ(score.hostile_detections, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 1.0);
}

TEST(ScorePeriodicity, MissedEligibleLabelIsFalseNegative) {
  core::PeriodicityReport report;
  report.objects.push_back(
      object_with("u1", {client_record("c1", false, 0.0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(score.recall(), 0.0);
}

TEST(ScorePeriodicity, WrongPeriodCountsAsBothFalsePositiveAndNegative) {
  core::PeriodicityReport report;
  report.objects.push_back(
      object_with("u1", {client_record("c1", true, 300.0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 0u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
}

TEST(ScorePeriodicity, PeriodWithinToleranceIsTruePositive) {
  core::PeriodicityReport report;
  report.objects.push_back(
      object_with("u1", {client_record("c1", true, 31.0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth, 0.15);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_NEAR(score.max_period_rel_error(), 1.0 / 31.0, 1e-9);
}

TEST(ScorePeriodicity, FilteredTruthFlowDoesNotHurtRecall) {
  // Truth labels a flow the analysis never examined (eligibility filters
  // dropped it): recall is computed over eligible flows only, coverage
  // reports the filtered share.
  core::PeriodicityReport report;  // no analyzed flows at all
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.eligible_truth, 0u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(score.coverage(), 0.0);
  EXPECT_EQ(score.truth_flows, 1u);
}

TEST(ScorePeriodicity, DuplicateLabelsOnOneKeyMatchBestFirst) {
  // Two labelled flows collide on one (url, client) key; the single
  // detection recovers the closer period, the other label is a miss.
  core::PeriodicityReport report;
  report.objects.push_back(
      object_with("u1", {client_record("c1", true, 60.0)}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 61.0),
                          truth_flow("c1", "u1", 30.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_negatives, 1u);
  EXPECT_NEAR(score.max_period_rel_error(), 1.0 / 61.0, 1e-9);
}

TEST(ScorePeriodicity, ExtraPeriodsGradeAgainstSeparateLabels) {
  // A multi-period detection (primary 60 s, extra 97 s) against two truth
  // flows on the same key: both components are independent true positives.
  core::PeriodicityReport report;
  auto rec = client_record("c1", true, 60.0);
  rec.extra_periods = {97.0};
  report.objects.push_back(object_with("u1", {rec}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 60.0),
                          truth_flow("c1", "u1", 97.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 2u);
  EXPECT_EQ(score.false_positives, 0u);
  EXPECT_EQ(score.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
}

TEST(ScorePeriodicity, UnmatchedExtraPeriodIsFalsePositive) {
  core::PeriodicityReport report;
  auto rec = client_record("c1", true, 60.0);
  rec.extra_periods = {400.0};  // no second label anywhere near this
  report.objects.push_back(object_with("u1", {rec}));
  TruthSidecar truth;
  truth.periodic_flows = {truth_flow("c1", "u1", 60.0)};

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.true_positives, 1u);
  EXPECT_EQ(score.false_positives, 1u);
  EXPECT_EQ(score.false_negatives, 0u);
}

TEST(ScorePeriodicity, AttackerExtraPeriodsCountAsHostileDetections) {
  core::PeriodicityReport report;
  auto rec = client_record("bot", true, 10.0);
  rec.extra_periods = {25.0};
  report.objects.push_back(object_with("u1", {rec}));
  TruthSidecar truth;
  truth.attackers.push_back({"bot", "scraper", 400});

  const auto score = score_periodicity(report, truth);
  EXPECT_EQ(score.hostile_detections, 2u);  // primary + extra
  EXPECT_EQ(score.false_positives, 0u);
}

// --- score_ngram -----------------------------------------------------------

logs::LogRecord json_record(double t, const std::string& client_id,
                            const std::string& ua, const std::string& url) {
  logs::LogRecord record;
  record.timestamp = t;
  record.client_id = client_id;
  record.user_agent = ua;
  record.url = url;
  record.domain = "a.example";
  record.content_type = "application/json";
  return record;
}

TEST(ScoreNgram, SkylineEqualsMeasuredWhenLogMatchesSessionsExactly) {
  // Build a log that replays each client's session chain verbatim; the
  // measured protocol and the skyline protocol then see identical token
  // sequences, so every accuracy figure must coincide.
  std::vector<logs::LogRecord> records;
  TruthSidecar truth;
  const std::vector<std::string> chain = {
      "https://a.example/app/v1/home", "https://a.example/app/v1/feed",
      "https://a.example/app/v1/item", "https://a.example/app/v1/home"};
  for (int c = 0; c < 12; ++c) {
    const std::string id = "client" + std::to_string(c);
    const std::string key = id + "|UA";
    double t = 10.0 * c;
    for (const auto& url : chain) {
      records.push_back(json_record(t, id, "UA", url));
      t += 1.0;
    }
    truth.sessions.push_back({key, chain});
  }
  logs::Dataset ds(std::move(records));
  ds.sort_by_time();

  core::NgramEvalConfig config;
  config.threads = 1;
  const auto score = score_ngram(ds, truth, config);
  EXPECT_EQ(score.measured.predictions, score.skyline.predictions);
  EXPECT_EQ(score.measured.accuracy_at, score.skyline.accuracy_at);
  for (const auto& [k, delta] : score.delta()) {
    EXPECT_NEAR(delta, 0.0, 1e-12) << "k=" << k;
  }
}

TEST(ScoreNgram, ClusteredSkylinePrefersTruthTemplates) {
  // Two URLs with distinct ids share one truth template; the clustered
  // skyline must treat them as the same token and predict perfectly, even
  // though the raw URLs never repeat.
  std::vector<logs::LogRecord> records;
  TruthSidecar truth;
  for (int c = 0; c < 12; ++c) {
    const std::string id = "client" + std::to_string(c);
    const std::string key = id + "|UA";
    const std::vector<std::string> chain = {
        "https://a.example/app/v1/home",
        "https://a.example/article/" + std::to_string(1000 + c),
        "https://a.example/app/v1/home",
        "https://a.example/article/" + std::to_string(2000 + c)};
    double t = 10.0 * c;
    for (const auto& url : chain) {
      records.push_back(json_record(t, id, "UA", url));
      t += 1.0;
      truth.template_of_url.emplace(url, core::cluster_url(url));
    }
    truth.sessions.push_back({key, chain});
  }
  logs::Dataset ds(std::move(records));
  ds.sort_by_time();

  core::NgramEvalConfig config;
  config.threads = 1;
  config.clustered = true;
  const auto score = score_ngram(ds, truth, config);
  ASSERT_GT(score.skyline.predictions, 0u);
  EXPECT_GT(score.skyline.accuracy_at.at(1), 0.9);
  EXPECT_EQ(score.measured.accuracy_at, score.skyline.accuracy_at);
}

TEST(ScoreNgram, DeltaSubtractsMeasuredFromSkyline) {
  NgramScore score;
  score.measured.accuracy_at = {{1, 0.4}, {5, 0.6}};
  score.skyline.accuracy_at = {{1, 0.5}, {5, 0.55}};
  const auto delta = score.delta();
  EXPECT_NEAR(delta.at(1), 0.1, 1e-12);
  EXPECT_NEAR(delta.at(5), -0.05, 1e-12);
}

// --- score_marginals -------------------------------------------------------

TEST(ScoreMarginals, ZeroDistanceWhenTruthAgreesWithClassifier) {
  // Clients whose UA the classifier maps to the same device the truth
  // declares, a class population exactly matching the configured shares,
  // and one domain per industry -> every L1 distance is zero.
  const std::string mobile_ua =
      "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) "
      "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.0 Mobile/15E148 "
      "Safari/604.1";
  std::vector<logs::LogRecord> records;
  TruthSidecar truth;
  for (int c = 0; c < 4; ++c) {
    const std::string id = "m" + std::to_string(c);
    auto record = json_record(static_cast<double>(c), id, mobile_ua,
                              "https://api.fin-001.example/v1/poll");
    record.domain = "api.fin-001.example";
    records.push_back(record);
    truth.clients.push_back({id + "|" + mobile_ua, "mobile-app",
                             std::string(http::to_string(
                                 http::DeviceType::kMobile)),
                             "native-app", false});
  }
  truth.population_shares = {{"mobile-app", 1.0}};
  truth.industry_of_domain = {{"api.fin-001.example", "Financial Services"}};

  logs::Dataset ds(std::move(records));
  ds.sort_by_time();
  const auto source = core::characterize_source(ds, 1);

  const auto score = score_marginals(ds, source, truth);
  EXPECT_EQ(score.joined_requests, 4u);
  EXPECT_EQ(score.unmatched_requests, 0u);
  EXPECT_NEAR(score.device_request_l1, 0.0, 1e-12);
  EXPECT_NEAR(score.class_population_l1, 0.0, 1e-12);
  EXPECT_NEAR(score.industry_domain_l1, 0.0, 1e-12);
}

TEST(ScoreMarginals, CountsRecordsWithoutTruthRowAsUnmatched) {
  std::vector<logs::LogRecord> records;
  records.push_back(
      json_record(0.0, "stranger", "UA", "https://a.example/x"));
  logs::Dataset ds(std::move(records));
  const auto source = core::characterize_source(ds, 1);

  const auto score = score_marginals(ds, source, TruthSidecar{});
  EXPECT_EQ(score.joined_requests, 0u);
  EXPECT_EQ(score.unmatched_requests, 1u);
}

TEST(ScoreMarginals, HostileRecordsAreExcludedFromTheDeviceMarginal) {
  // Benign clients agree with truth exactly; a labeled bot whose UA
  // classifies nothing like the benign mix floods the log. With the
  // attacker row present the device marginal must ignore its records on
  // both sides and stay at zero, counting them as hostile instead.
  const std::string mobile_ua =
      "Mozilla/5.0 (iPhone; CPU iPhone OS 15_0 like Mac OS X) "
      "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/15.0 Mobile/15E148 "
      "Safari/604.1";
  const std::string bot_ua = "python-requests/2.31.0";
  std::vector<logs::LogRecord> records;
  TruthSidecar truth;
  for (int c = 0; c < 4; ++c) {
    const std::string id = "m" + std::to_string(c);
    records.push_back(json_record(static_cast<double>(c), id, mobile_ua,
                                  "https://a.example/v1/poll"));
    truth.clients.push_back({id + "|" + mobile_ua, "mobile-app",
                             std::string(http::to_string(
                                 http::DeviceType::kMobile)),
                             "native-app", false});
  }
  for (int r = 0; r < 12; ++r) {
    records.push_back(json_record(10.0 + r, "bot", bot_ua,
                                  "https://a.example/page/" +
                                      std::to_string(r)));
  }
  truth.attackers.push_back({"bot|" + bot_ua, "scraper", 12});
  truth.population_shares = {{"mobile-app", 1.0}};

  logs::Dataset ds(std::move(records));
  ds.sort_by_time();
  const auto source = core::characterize_source(ds, 1);
  // Sanity: the whole-log device mix really is skewed by the bot.
  EXPECT_LT(source.device_share(http::DeviceType::kMobile), 0.5);

  const auto score = score_marginals(ds, source, truth);
  EXPECT_EQ(score.joined_requests, 4u);
  EXPECT_EQ(score.unmatched_requests, 0u);
  EXPECT_EQ(score.hostile_requests, 12u);
  EXPECT_NEAR(score.device_request_l1, 0.0, 1e-12);
}

TEST(ScoreMarginals, DeviceMismatchShowsUpAsDistance) {
  // Truth says embedded; the empty UA classifies as unknown. The device
  // marginal must move by 2 (one full unit of share leaves embedded, one
  // arrives at unknown).
  std::vector<logs::LogRecord> records;
  records.push_back(json_record(0.0, "c0", "", "https://a.example/x"));
  TruthSidecar truth;
  truth.clients.push_back({"c0|", "embedded",
                           std::string(http::to_string(
                               http::DeviceType::kEmbedded)),
                           "unknown", false});
  logs::Dataset ds(std::move(records));
  const auto source = core::characterize_source(ds, 1);

  const auto score = score_marginals(ds, source, truth);
  EXPECT_EQ(score.joined_requests, 1u);
  EXPECT_NEAR(score.device_request_l1, 2.0, 1e-12);
}

}  // namespace
}  // namespace jsoncdn::oracle
