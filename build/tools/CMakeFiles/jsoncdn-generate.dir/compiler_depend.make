# Empty compiler generated dependencies file for jsoncdn-generate.
# This may be replaced when dependencies are built.
