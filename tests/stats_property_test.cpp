// Property-style sweeps over the stats substrate: invariants that must hold
// for arbitrary random inputs, parameterized over seeds/sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"
#include "stats/distributions.h"
#include "stats/fft.h"
#include "stats/rng.h"

namespace jsoncdn::stats {
namespace {

class RandomSampleTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<double> sample(std::size_t n) {
    Rng rng(GetParam());
    std::vector<double> out(n);
    for (auto& v : out) v = rng.uniform(-100.0, 100.0);
    return out;
  }
};

TEST_P(RandomSampleTest, PercentilesAreMonotoneInQ) {
  const auto values = sample(257);
  double prev = percentile(values, 0.0);
  for (double q = 0.05; q <= 1.0; q += 0.05) {
    const double p = percentile(values, q);
    EXPECT_GE(p, prev) << "q=" << q;
    prev = p;
  }
}

TEST_P(RandomSampleTest, PercentilesBoundedByMinMax) {
  const auto values = sample(64);
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  for (double q : {0.0, 0.1, 0.5, 0.9, 1.0}) {
    const double p = percentile(values, q);
    EXPECT_GE(p, *lo);
    EXPECT_LE(p, *hi);
  }
}

TEST_P(RandomSampleTest, SummaryMeanMatchesAccumulate) {
  const auto values = sample(100);
  const auto s = summarize(values);
  const double mean =
      std::accumulate(values.begin(), values.end(), 0.0) / values.size();
  EXPECT_NEAR(s.mean, mean, 1e-9);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.p50);
  EXPECT_LE(s.p50, s.p75);
  EXPECT_LE(s.p75, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST_P(RandomSampleTest, HistogramConservesTotal) {
  const auto values = sample(500);
  Histogram h(-50.0, 50.0, 13);
  for (const double v : values) h.add(v);
  std::uint64_t in_range = 0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) in_range += h.count(b);
  EXPECT_EQ(in_range + h.underflow() + h.overflow(), values.size());
  EXPECT_EQ(h.total(), values.size());
}

TEST_P(RandomSampleTest, CdfIsMonotoneAndQuantileInverts) {
  const auto values = sample(128);
  EmpiricalCdf cdf{std::vector<double>(values)};
  double prev = 0.0;
  for (double x = -110.0; x <= 110.0; x += 10.0) {
    const double f = cdf.at(x);
    EXPECT_GE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
  // Quantiles interpolate between order statistics while at() is the step
  // ECDF, so inversion holds up to one empirical step.
  const double step = 1.0 / static_cast<double>(values.size());
  for (double q : {0.1, 0.5, 0.9}) {
    const double x = cdf.quantile(q);
    EXPECT_GE(cdf.at(x), q - step - 1e-9);
  }
}

TEST_P(RandomSampleTest, FftIsLinear) {
  Rng rng(GetParam() + 17);
  const std::size_t n = 128;
  std::vector<std::complex<double>> a(n);
  std::vector<std::complex<double>> b(n);
  std::vector<std::complex<double>> sum(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    b[i] = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
    sum[i] = a[i] + 2.0 * b[i];
  }
  fft_inplace(a, false);
  fft_inplace(b, false);
  fft_inplace(sum, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto expected = a[i] + 2.0 * b[i];
    EXPECT_NEAR(sum[i].real(), expected.real(), 1e-9);
    EXPECT_NEAR(sum[i].imag(), expected.imag(), 1e-9);
  }
}

TEST_P(RandomSampleTest, ZipfCdfIsProper) {
  Rng rng(GetParam());
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 200));
  const double s = rng.uniform(0.0, 2.5);
  ZipfSampler zipf(n, s);
  double total = 0.0;
  for (std::size_t k = 0; k < zipf.size(); ++k) {
    const double p = zipf.pmf(k);
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST_P(RandomSampleTest, BodySamplerAlwaysWithinBounds) {
  Rng rng(GetParam());
  BodySizeSampler::Params params;
  params.log_mean = rng.uniform(4.0, 12.0);
  params.log_stddev = rng.uniform(0.1, 2.0);
  params.tail_prob = rng.uniform(0.0, 0.5);
  params.min_bytes = 32;
  params.max_bytes = 1 << 22;
  BodySizeSampler sampler(params);
  for (int i = 0; i < 200; ++i) {
    const auto bytes = sampler.sample(rng);
    EXPECT_GE(bytes, params.min_bytes);
    EXPECT_LE(bytes, params.max_bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSampleTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace jsoncdn::stats
