// Multi-period detection (detect_all) — the paper's declared future work.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/periodicity.h"

namespace jsoncdn::core {
namespace {

std::vector<double> comb(double period, std::size_t count, double phase,
                         double jitter, std::uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> times;
  for (std::size_t i = 0; i < count; ++i) {
    times.push_back(phase + period * static_cast<double>(i) +
                    (jitter > 0.0 ? rng.normal(0.0, jitter) : 0.0));
  }
  return times;
}

TEST(DetectAll, SinglePeriodFlowYieldsOneDetection) {
  const auto times = comb(60.0, 40, 0.0, 0.4, 1);
  PeriodicityDetector detector({});
  stats::Rng rng(2);
  const auto all = detector.detect_all(times, rng);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_NEAR(all.front().period_seconds, 60.0, 9.0);
}

TEST(DetectAll, FrontMatchesDetect) {
  const auto times = comb(120.0, 40, 3.0, 1.0, 3);
  PeriodicityDetector detector({});
  stats::Rng r1(7);
  stats::Rng r2(7);
  const auto all = detector.detect_all(times, r1);
  const auto one = detector.detect(times, r2);
  ASSERT_FALSE(all.empty());
  ASSERT_TRUE(one.periodic);
  EXPECT_DOUBLE_EQ(all.front().period_seconds, one.period_seconds);
}

TEST(DetectAll, FindsTwoInterleavedPeriods) {
  // One device polling at 30 s and uploading telemetry at 300 s on the same
  // object flow: both periods present, neither a multiple of the other's
  // detected value within tolerance... (30 divides 300; pick 70/300 instead
  // so no near-multiple relationship confuses the fold-in rule).
  auto times = comb(70.0, 60, 0.0, 0.3, 4);
  const auto second = comb(300.0, 14, 11.0, 0.3, 5);
  times.insert(times.end(), second.begin(), second.end());
  std::sort(times.begin(), times.end());

  PeriodicityDetector detector({});
  stats::Rng rng(6);
  const auto all = detector.detect_all(times, rng, 4);
  ASSERT_GE(all.size(), 1u);
  bool found70 = false;
  for (const auto& det : all) {
    if (std::abs(det.period_seconds - 70.0) <= 10.0) found70 = true;
  }
  EXPECT_TRUE(found70);
  // All reported periods are significant and mutually non-harmonic.
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_TRUE(all[i].periodic);
    EXPECT_GT(all[i].acf_peak_value, all[i].acf_threshold);
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      const double ratio = std::max(all[i].period_seconds,
                                    all[j].period_seconds) /
                           std::min(all[i].period_seconds,
                                    all[j].period_seconds);
      const double nearest = std::round(ratio);
      EXPECT_GT(std::abs(ratio - nearest) / nearest, 0.15)
          << all[i].period_seconds << " vs " << all[j].period_seconds;
    }
  }
}

TEST(DetectAll, HarmonicsAreFoldedIntoTheFundamental) {
  // A clean comb has ACF peaks at every multiple of the period; detect_all
  // must report only the fundamental, not 2T/3T/4T as separate periods.
  const auto times = comb(60.0, 50, 0.0, 0.3, 8);
  PeriodicityDetector detector({});
  stats::Rng rng(9);
  const auto all = detector.detect_all(times, rng, 4);
  ASSERT_EQ(all.size(), 1u);
  EXPECT_NEAR(all.front().period_seconds, 60.0, 9.0);
}

TEST(DetectAll, AperiodicFlowYieldsNothing) {
  stats::Rng gen(10);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    t += gen.exponential(1.0 / 45.0);
    times.push_back(t);
  }
  PeriodicityDetector detector({});
  stats::Rng rng(11);
  EXPECT_TRUE(detector.detect_all(times, rng).empty());
}

TEST(DetectAll, RespectsMaxPeriods) {
  const auto times = comb(60.0, 50, 0.0, 0.3, 12);
  PeriodicityDetector detector({});
  stats::Rng rng(13);
  const auto all = detector.detect_all(times, rng, 0);
  EXPECT_TRUE(all.empty());
}

}  // namespace
}  // namespace jsoncdn::core
