file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn-analyze.dir/jsoncdn_analyze.cpp.o"
  "CMakeFiles/jsoncdn-analyze.dir/jsoncdn_analyze.cpp.o.d"
  "jsoncdn-analyze"
  "jsoncdn-analyze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn-analyze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
