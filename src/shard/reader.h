// Out-of-core reader for the `.jlog` v2 chunk store: mmap the file, verify
// the trailer/footer, load dictionaries + chunk directory, then decode only
// the chunks a scan's zone-map predicate selects — one chunk at a time into
// a reusable scratch LogTable. Peak memory is dictionaries + directory +
// one decoded chunk, independent of file size; processed pages are released
// back to the kernel (madvise) as the scan moves forward, so resident set
// stays flat over multi-GB files.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "logs/csv.h"
#include "logs/table.h"
#include "logs/zerocopy.h"
#include "shard/format.h"

namespace jsoncdn::shard {

// Pushdown predicate a scan evaluates twice: per chunk against the zone map
// (skip without decoding) and per row after decode. Zone pruning is
// conservative, so pruned and unpruned scans select identical rows.
struct ScanPredicate {
  double min_time = -std::numeric_limits<double>::infinity();
  double max_time = std::numeric_limits<double>::infinity();
  // Wanted symbols per keyed column, sorted ascending; empty = no
  // constraint. Symbols are file-global (resolve strings through
  // ShardReader::dictionaries() first).
  std::vector<std::uint32_t> url_symbols;
  std::vector<std::uint32_t> ctype_symbols;
  // Test hook: false decodes every chunk and relies on the row filter only.
  bool use_zone_maps = true;

  [[nodiscard]] bool selects(const ChunkMeta& meta) const noexcept;
  [[nodiscard]] bool selects_row(const logs::LogTable& chunk,
                                 std::uint32_t row) const noexcept;
};

struct ScanStats {
  std::uint32_t chunks_total = 0;
  std::uint32_t chunks_pruned = 0;   // skipped via zone map, never decoded
  std::uint32_t chunks_scanned = 0;  // decoded and row-filtered
  std::uint64_t rows_scanned = 0;    // rows decoded
  std::uint64_t rows_selected = 0;   // rows passing the row predicate
  std::uint64_t bytes_decoded = 0;   // compressed payload bytes touched
};

class ShardReader {
 public:
  // Maps and validates `path` up to (not including) chunk payloads: magics,
  // footer checksum, dictionaries, and a chunk directory whose payloads
  // must tile [magic, footer) exactly — every byte of the file is covered
  // by some check. Throws std::runtime_error on any violation.
  // `max_memory_bytes` (0 = default) tunes how eagerly scanned-past pages
  // are released to the kernel.
  explicit ShardReader(const std::string& path,
                       std::uint64_t max_memory_bytes = 0);

  [[nodiscard]] std::uint64_t row_count() const noexcept { return row_count_; }
  [[nodiscard]] std::uint32_t chunk_count() const noexcept {
    return static_cast<std::uint32_t>(directory_.size());
  }
  [[nodiscard]] std::uint32_t chunk_target_rows() const noexcept {
    return chunk_target_rows_;
  }
  [[nodiscard]] const std::vector<ChunkMeta>& chunks() const noexcept {
    return directory_;
  }
  // The file's dictionaries, hosted by the decode scratch table. Use these
  // to resolve predicate strings to symbols (StringInterner::find — never
  // allocates, returns kNoSymbol for absent strings).
  [[nodiscard]] const logs::LogTable& dictionaries() const noexcept {
    return scratch_;
  }

  // Scans the file in chunk order, invoking `fn(chunk, selected)` for every
  // chunk the predicate's zone map keeps, where `selected` lists the rows
  // of `chunk` passing the row predicate (possibly empty — pruning is
  // conservative). Both arguments are valid only during the call; the
  // chunk table is the reader's scratch and is overwritten by the next
  // chunk. Throws on any corruption in a decoded chunk.
  ScanStats scan(
      const ScanPredicate& predicate,
      const std::function<void(const logs::LogTable& chunk,
                               std::span<const std::uint32_t> selected)>& fn);

  // Materializes the whole file as one LogTable (the batch-mode path).
  // Throws when row_count exceeds the u32 row-index range, like the v1
  // reader. Fills *report the way the other binary readers do.
  [[nodiscard]] logs::LogTable read_all(logs::IngestReport* report = nullptr);

  // Approximate heap held by the reader (dictionaries + directory + scratch
  // columns) — what stays resident between chunks.
  [[nodiscard]] std::size_t resident_bytes() const noexcept;

 private:
  void release_scanned_pages(std::uint64_t scanned_up_to);

  std::string path_;
  std::unique_ptr<logs::MappedFile> file_;
  std::uint64_t footer_offset_ = 0;
  std::uint32_t chunk_target_rows_ = 0;
  std::uint64_t row_count_ = 0;
  std::vector<ChunkMeta> directory_;
  logs::LogTable scratch_;  // dictionaries live here; rows cycle per chunk
  std::vector<std::uint32_t> selected_;
  std::uint64_t advise_interval_ = 0;  // 0 = page release disabled
  std::uint64_t advise_mark_ = 0;      // file offset already released
};

// Loads any supported log format into a LogTable, dispatching on the
// leading magic (logs::detect_log_format): text logs go through the
// zero-copy TSV path with `options`, .jlog v1 and v2 through their binary
// readers (which ignore `options` — binary corruption is structural, never
// permissively skipped). The one loader every tool shares.
[[nodiscard]] logs::LogTable load_table_auto(
    const std::string& path, const logs::IngestOptions& options = {},
    logs::IngestReport* report = nullptr);

}  // namespace jsoncdn::shard
