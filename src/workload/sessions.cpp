#include "workload/sessions.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace jsoncdn::workload {

namespace {

// Geometric session length with the given mean, at least 1.
std::size_t geometric_length(double mean, stats::Rng& rng) {
  if (mean < 1.0) throw std::invalid_argument("geometric_length: mean < 1");
  const double p = 1.0 / mean;
  std::size_t len = 1;
  while (!rng.bernoulli(p)) ++len;
  return len;
}

std::uint64_t lognormal_bytes(double log_mean, double log_stddev,
                              stats::Rng& rng) {
  const double v = std::exp(rng.normal(log_mean, log_stddev));
  return static_cast<std::uint64_t>(std::llround(std::max(1.0, v)));
}

}  // namespace

std::vector<RequestEvent> generate_app_session(
    const AppGraph& graph, const std::string& client_address,
    const std::string& user_agent, double t0, const AppSessionParams& params,
    stats::Rng& rng) {
  std::vector<RequestEvent> events;
  const std::size_t length =
      geometric_length(params.mean_requests_per_session, rng);
  double t = t0;
  std::size_t tmpl = graph.manifest();
  for (std::size_t i = 0; i < length; ++i) {
    RequestEvent ev;
    ev.time = t;
    ev.client_address = client_address;
    ev.user_agent = user_agent;
    ev.method = graph.method_of(tmpl);
    ev.url = graph.instantiate(tmpl, rng);
    if (http::is_upload(ev.method)) {
      ev.request_bytes = lognormal_bytes(params.post_body_log_mean,
                                         params.post_body_log_stddev, rng);
    }
    events.push_back(std::move(ev));
    t += std::exp(rng.normal(params.think_time_log_mean,
                             params.think_time_log_stddev));
    tmpl = graph.next_template(tmpl, rng);
  }
  return events;
}

std::vector<RequestEvent> generate_browser_session(
    const DomainSpec& domain, const ObjectCatalog& catalog,
    const std::string& client_address, const std::string& user_agent,
    double t0, const BrowserSessionParams& params, stats::Rng& rng) {
  std::vector<RequestEvent> events;
  if (domain.html_objects.empty()) return events;
  const std::size_t pages =
      geometric_length(params.mean_pages_per_session, rng);
  double t = t0;
  for (std::size_t p = 0; p < pages; ++p) {
    // The HTML document itself.
    const auto page_index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(domain.html_objects.size()) - 1));
    const auto& page = catalog.at(domain.html_objects[page_index]);
    RequestEvent doc;
    doc.time = t;
    doc.client_address = client_address;
    doc.user_agent = user_agent;
    doc.method = http::Method::kGet;
    doc.url = page.url;
    events.push_back(std::move(doc));

    // Subresources are template-fixed per page: the browser fetches what the
    // HTML references.
    double st = t;
    if (page_index < domain.page_assets.size()) {
      for (const auto asset_index : domain.page_assets[page_index]) {
        st += params.subresource_gap;
        RequestEvent ev;
        ev.time = st;
        ev.client_address = client_address;
        ev.user_agent = user_agent;
        ev.method = http::Method::kGet;
        ev.url = catalog.at(asset_index).url;
        events.push_back(std::move(ev));
      }
    }

    // JSON XHRs, also template-driven; json_xhr_prob models pages whose
    // data was cached client-side.
    if (page_index < domain.page_xhrs.size() &&
        rng.bernoulli(params.json_xhr_prob)) {
      for (const auto xhr_index : domain.page_xhrs[page_index]) {
        st += params.subresource_gap;
        RequestEvent ev;
        ev.time = st;
        ev.client_address = client_address;
        ev.user_agent = user_agent;
        ev.method = http::Method::kGet;
        ev.url = catalog.at(xhr_index).url;
        events.push_back(std::move(ev));
      }
    }

    t += std::exp(rng.normal(params.page_dwell_log_mean,
                             params.page_dwell_log_stddev));
  }
  return events;
}

std::vector<RequestEvent> generate_periodic_flow(
    const std::string& url, http::Method method,
    const std::string& client_address, const std::string& user_agent,
    double t_begin, double t_end, const PeriodicFlowParams& params,
    stats::Rng& rng) {
  if (params.period_seconds <= 0.0)
    throw std::invalid_argument("generate_periodic_flow: period <= 0");
  if (params.jitter_stddev < 0.0)
    throw std::invalid_argument("generate_periodic_flow: negative jitter");
  if (params.diurnal_amplitude < 0.0 || params.diurnal_amplitude > 1.0)
    throw std::invalid_argument(
        "generate_periodic_flow: diurnal_amplitude outside [0,1]");
  if (params.diurnal_amplitude > 0.0 && params.diurnal_period <= 0.0)
    throw std::invalid_argument("generate_periodic_flow: diurnal_period <= 0");
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<RequestEvent> events;
  std::size_t cycle = 0;
  for (double tick = t_begin + params.phase_offset; tick < t_end; ++cycle) {
    double dropout = params.dropout_prob;
    if (params.diurnal_amplitude > 0.0) {
      // Raised-cosine swell: zero at the cycle boundaries, full amplitude
      // mid-cycle. Keyed to absolute time so all clients share the phase.
      dropout = std::clamp(
          dropout + params.diurnal_amplitude * 0.5 *
                        (1.0 - std::cos(kTwoPi * tick /
                                        params.diurnal_period)),
          0.0, 1.0);
    }
    const bool skipped = rng.bernoulli(dropout);
    if (!skipped) {
      double t = tick;
      if (params.jitter_stddev > 0.0)
        t += rng.normal(0.0, params.jitter_stddev);
      if (t >= t_begin && t < t_end) {
        RequestEvent ev;
        ev.time = t;
        ev.client_address = client_address;
        ev.user_agent = user_agent;
        ev.method = method;
        ev.url = url;
        if (http::is_upload(method))
          ev.request_bytes = lognormal_bytes(5.0, 0.5, rng);
        events.push_back(std::move(ev));
      }
    }
    double gap = params.period_seconds;
    if (params.drift_per_cycle != 0.0) {
      gap *= std::max(0.05, 1.0 + params.drift_per_cycle *
                                      static_cast<double>(cycle));
    }
    tick += gap;
  }
  // Jitter can reorder adjacent ticks; the dataset expects ascending times
  // per flow.
  std::sort(events.begin(), events.end(),
            [](const RequestEvent& a, const RequestEvent& b) {
              return a.time < b.time;
            });
  return events;
}

std::vector<RequestEvent> generate_poisson_beacon(
    const std::string& url, const std::string& client_address,
    const std::string& user_agent, double t_begin, double t_end, double rate,
    stats::Rng& rng) {
  stats::PoissonProcess process(rate);
  std::vector<RequestEvent> events;
  for (double t : process.arrivals(t_begin, t_end, rng)) {
    RequestEvent ev;
    ev.time = t;
    ev.client_address = client_address;
    ev.user_agent = user_agent;
    ev.method = http::Method::kPost;
    ev.url = url;
    ev.request_bytes = lognormal_bytes(5.0, 0.5, rng);
    events.push_back(std::move(ev));
  }
  return events;
}

}  // namespace jsoncdn::workload
