// Per-application request dependency graph — the generative model behind the
// paper's §5.2 observation that "a JSON request can predict a subsequent
// JSON request with about 70% accuracy".
//
// An app is modelled as a first-order Markov chain over endpoint *templates*
// (the clustered-URL level). Sessions start at a manifest endpoint (the
// Table 1 pattern: a stories manifest referencing articles), then walk the
// chain. Parameterized templates ("/article/{id}") instantiate a concrete id
// from a Zipf distribution, so raw-URL transitions are strictly less
// predictable than template transitions — exactly the gap between the
// "Actual URLs" and "Clustered URLs" columns of Table 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "http/method.h"
#include "stats/distributions.h"
#include "stats/rng.h"
#include "workload/catalog.h"

namespace jsoncdn::workload {

struct AppGraphParams {
  std::size_t n_endpoints = 20;       // templates, including the manifest
  double parameterized_share = 0.5;   // share of templates with an {id}
  std::size_t id_space = 40;          // distinct ids per parameterized template
  double id_zipf_s = 1.3;             // id popularity skew
  double top_transition_lo = 0.55;    // mass of the most likely next template
  double top_transition_hi = 0.75;
  // The rest of each row's mass splits between a geometric "mid" group of
  // likely follow-ups and a flat tail over everything else. The three knobs
  // shape Table 3's accuracy curve: top-1 ~ mean(top bounds), top-5 adds the
  // mid group, top-10 only nibbles at the flat tail.
  std::size_t mid_targets = 4;
  double mid_share = 0.55;            // of the non-top mass
  double transition_decay = 0.55;     // geometric decay inside the mid group
  double post_endpoint_share = 0.09;  // share of templates that are POSTs
  double json_size_log_shift = 0.0;   // see CatalogConfig::json_size_log_shift
};

class AppGraph {
 public:
  // Builds the graph for `domain`, registering every instantiable URL in
  // `catalog`. Deterministic given (params, rng).
  AppGraph(const DomainSpec& domain, ObjectCatalog& catalog,
           const AppGraphParams& params, stats::Rng rng);

  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return endpoints_.size();
  }
  [[nodiscard]] std::size_t manifest() const noexcept { return 0; }
  [[nodiscard]] const std::string& domain() const noexcept { return domain_; }

  // Samples the next template index given the current one.
  [[nodiscard]] std::size_t next_template(std::size_t current,
                                          stats::Rng& rng) const;

  // Samples a concrete URL for a template (fixed URL, or Zipf id draw).
  [[nodiscard]] const std::string& instantiate(std::size_t tmpl,
                                               stats::Rng& rng) const;

  [[nodiscard]] http::Method method_of(std::size_t tmpl) const;
  [[nodiscard]] bool is_parameterized(std::size_t tmpl) const;
  // All concrete URLs a template can produce.
  [[nodiscard]] const std::vector<std::string>& urls_of(
      std::size_t tmpl) const;
  [[nodiscard]] const std::vector<std::vector<double>>& transitions()
      const noexcept {
    return transitions_;
  }

  // Expected top-1 accuracy of an oracle predictor at template level: the
  // stationary-weighted mean of each row's max transition probability.
  // Tests compare the trained ngram model against this ceiling.
  [[nodiscard]] double oracle_top1_template_accuracy() const;

 private:
  struct Endpoint {
    std::string path_base;
    bool parameterized = false;
    http::Method method = http::Method::kGet;
    std::vector<std::string> urls;    // 1 or id_space entries
    std::vector<double> id_weights;   // Zipf pmf when parameterized
  };

  std::string domain_;
  std::vector<Endpoint> endpoints_;
  std::vector<std::vector<double>> transitions_;  // row-stochastic
};

}  // namespace jsoncdn::workload
