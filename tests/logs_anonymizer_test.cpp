#include "logs/anonymizer.h"

#include <gtest/gtest.h>

#include <string>
#include <unordered_map>
#include <unordered_set>

namespace jsoncdn::logs {
namespace {

TEST(Anonymizer, PseudonymIsDeterministicPerSalt) {
  const Anonymizer a(42);
  const Anonymizer b(42);
  EXPECT_EQ(a.pseudonym("10.1.2.3"), b.pseudonym("10.1.2.3"));
  EXPECT_EQ(a.pseudonym("10.1.2.3"), a.pseudonym("10.1.2.3"));
}

TEST(Anonymizer, GoldenPseudonymsAreStable) {
  // Pinned outputs: if these change, every sidecar/log pair ever written
  // stops joining, so a change here is a format break, not a refactor.
  const Anonymizer network_default(0x6a736f6e63646eULL);  // "jsoncdn"
  EXPECT_EQ(network_default.pseudonym("10.1.2.3"), "6c201e85cf5b8485");
  EXPECT_EQ(network_default.pseudonym(""), "9b9d4f872f79262a");
  const Anonymizer other_salt(1);
  EXPECT_EQ(other_salt.pseudonym("10.1.2.3"), "c568aacb0efd3d8b");
}

TEST(Anonymizer, OutputIsAlways16LowercaseHexDigits) {
  const Anonymizer anon(7);
  for (const std::string address :
       {"10.0.0.1", "", "2001:db8::1", "a-very-long-client-address-string",
        "client with spaces\tand\ttabs"}) {
    const auto p = anon.pseudonym(address);
    EXPECT_EQ(p.size(), 16u) << address;
    EXPECT_EQ(p.find_first_not_of("0123456789abcdef"), std::string::npos)
        << address;
  }
}

TEST(Anonymizer, SaltSeparatesStudies) {
  // The same address under different salts must not join across datasets.
  const Anonymizer study_a(1);
  const Anonymizer study_b(2);
  EXPECT_NE(study_a.pseudonym("10.1.2.3"), study_b.pseudonym("10.1.2.3"));
}

TEST(Anonymizer, PiiNeverRoundTrips) {
  // The pseudonym must not contain the address (or any 4+ char fragment of
  // it) in the clear — it is a hash, not an encoding.
  const Anonymizer anon(99);
  for (const std::string address : {"192.168.17.23", "alice.example.com"}) {
    const auto p = anon.pseudonym(address);
    EXPECT_EQ(p.find(address), std::string::npos);
    for (std::size_t i = 0; i + 4 <= address.size(); ++i) {
      EXPECT_EQ(p.find(address.substr(i, 4)), std::string::npos)
          << address << " fragment at " << i;
    }
  }
}

TEST(Anonymizer, CollisionFreeOverRealisticPopulation) {
  // 64-bit pseudonyms over tens of thousands of addresses: any collision at
  // this scale means the hash is broken (birthday bound ~1e-10).
  const Anonymizer anon(0x6a736f6e63646eULL);
  std::unordered_set<std::string> seen;
  for (int a = 0; a < 64; ++a) {
    for (int b = 0; b < 64; ++b) {
      for (int c = 0; c < 8; ++c) {
        const auto address = "10." + std::to_string(a) + "." +
                             std::to_string(b) + "." + std::to_string(c);
        EXPECT_TRUE(seen.insert(anon.pseudonym(address)).second) << address;
      }
    }
  }
  EXPECT_EQ(seen.size(), 64u * 64u * 8u);
}

}  // namespace
}  // namespace jsoncdn::logs
