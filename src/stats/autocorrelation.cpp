#include "stats/autocorrelation.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <stdexcept>

#include "stats/fft.h"
#include "stats/kernels.h"

namespace jsoncdn::stats {

namespace {

// Shared preamble: mean-centers and reports variance*n (the lag-0 raw value).
// Both reductions stay serial on purpose: their summation order is pinned by
// the committed periodicity golden fixture, and they are O(n) next to the
// O(n log n) transforms the kernels accelerate.
double center(std::span<const double> signal, std::vector<double>& out) {
  if (signal.empty())
    throw std::invalid_argument("autocorrelation: empty signal");
  double mean = 0.0;
  for (double v : signal) mean += v;
  mean /= static_cast<double>(signal.size());
  out.resize(signal.size());
  double energy = 0.0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    out[i] = signal[i] - mean;
    energy += out[i] * out[i];
  }
  return energy;
}

}  // namespace

std::vector<double> autocorrelation_direct(std::span<const double> signal,
                                           std::size_t max_lag) {
  std::vector<double> x;
  const double energy = center(signal, x);
  max_lag = std::min(max_lag, x.size() - 1);
  std::vector<double> r(max_lag + 1, 0.0);
  if (energy <= 0.0) return r;  // constant signal: no structure
  kernels::acf_direct(x.data(), x.size(), max_lag, energy, r.data());
  return r;
}

std::vector<double> autocorrelation_fft(std::span<const double> signal,
                                        std::size_t max_lag) {
  std::vector<double> x;
  const double energy = center(signal, x);
  max_lag = std::min(max_lag, x.size() - 1);
  std::vector<double> r(max_lag + 1, 0.0);
  if (energy <= 0.0) return r;

  // Pad to >= 2n so the circular correlation equals the linear one.
  const std::size_t padded = next_pow2(2 * x.size());
  std::vector<std::complex<double>> buf(padded);
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = x[i];
  fft_inplace(buf, /*inverse=*/false);
  kernels::complex_norm(buf.data(), buf.size());  // |X|^2, imaginary part zero
  const auto corr = ifft(std::move(buf));
  for (std::size_t k = 0; k <= max_lag; ++k) r[k] = corr[k].real() / energy;
  return r;
}

SpectralAnalysis spectral_analysis(std::span<const double> signal,
                                   std::size_t max_lag) {
  SpectralWorkspace ws;
  SpectralAnalysis out;
  spectral_analysis(signal, max_lag, ws, out);
  return out;
}

void spectral_analysis(std::span<const double> signal, std::size_t max_lag,
                       SpectralWorkspace& ws, SpectralAnalysis& out) {
  const double energy = center(signal, ws.centered);
  const auto& x = ws.centered;
  max_lag = std::min(max_lag, x.size() - 1);

  out.acf.assign(max_lag + 1, 0.0);

  const std::size_t padded = next_pow2(2 * x.size());
  out.padded_size = padded;
  ws.freq.assign(padded, std::complex<double>(0.0, 0.0));
  for (std::size_t i = 0; i < x.size(); ++i) ws.freq[i] = x[i];
  fft_inplace(ws.freq, /*inverse=*/false);
  kernels::complex_norm(ws.freq.data(), ws.freq.size());

  // Periodogram from the shared power spectrum.
  const std::size_t half = padded / 2;
  out.pgram_power.resize(half);
  kernels::pgram_extract(ws.freq.data(), half, static_cast<double>(padded),
                         out.pgram_power.data());
  if (energy <= 0.0) return;  // constant signal

  // Unscaled inverse transform, scaling applied per used lag: exactly the
  // ifft() arithmetic without surrendering the buffer.
  fft_inplace(ws.freq, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(padded);
  kernels::acf_extract(ws.freq.data(), max_lag + 1, scale, energy,
                       out.acf.data());
}

std::vector<std::size_t> acf_peaks(std::span<const double> r) {
  std::vector<std::size_t> peaks;
  for (std::size_t k = 1; k < r.size(); ++k) {
    const bool rising = r[k] > r[k - 1];
    const bool falling_next = (k + 1 >= r.size()) || r[k] >= r[k + 1];
    if (rising && falling_next) peaks.push_back(k);
  }
  return peaks;
}

}  // namespace jsoncdn::stats
