#include "core/url_cluster.h"

#include <gtest/gtest.h>

namespace jsoncdn::core {
namespace {

TEST(LooksLikeIdentifier, Numerics) {
  EXPECT_TRUE(looks_like_identifier("1234"));
  EXPECT_TRUE(looks_like_identifier("0"));
  EXPECT_FALSE(looks_like_identifier("12a"));
  EXPECT_FALSE(looks_like_identifier(""));
}

TEST(LooksLikeIdentifier, Uuids) {
  EXPECT_TRUE(
      looks_like_identifier("123e4567-e89b-12d3-a456-426614174000"));
  // Near-UUIDs still read as identifiers via the long-mixed-token rule.
  EXPECT_TRUE(
      looks_like_identifier("123e4567-e89b-12d3-a456-42661417400"));
  // Hyphenated route words carry no digits and stay route words.
  EXPECT_FALSE(looks_like_identifier("user-profile-settings"));
}

TEST(LooksLikeIdentifier, LongHexHashes) {
  EXPECT_TRUE(looks_like_identifier("deadbeef"));
  EXPECT_TRUE(looks_like_identifier("0123456789abcdef0123"));
  EXPECT_FALSE(looks_like_identifier("feed"));     // short hex = route word
  EXPECT_FALSE(looks_like_identifier("gateway"));  // non-hex letters
}

TEST(LooksLikeIdentifier, LongMixedTokens) {
  EXPECT_TRUE(looks_like_identifier("session8f3kq92mdk1"));
  EXPECT_FALSE(looks_like_identifier("recommendations"));  // letters only
  EXPECT_FALSE(looks_like_identifier("v2"));               // too short
}

TEST(ClusterUrl, CollapsesNumericPathSegments) {
  EXPECT_EQ(cluster_url("https://h/article/1234"),
            "https://h/article/%7Bid%7D");
}

TEST(ClusterUrl, SameTemplateDifferentIdsShareCluster) {
  EXPECT_EQ(cluster_url("https://h/api/v1/article/1234"),
            cluster_url("https://h/api/v1/article/8731"));
  EXPECT_NE(cluster_url("https://h/api/v1/article/1234"),
            cluster_url("https://h/api/v1/comments/1234"));
}

TEST(ClusterUrl, KeepsRouteWords) {
  const auto c = cluster_url("https://h/api/v1/stories");
  EXPECT_NE(c.find("stories"), std::string::npos);
  EXPECT_EQ(c.find("%7Bid%7D"), std::string::npos);
}

TEST(ClusterUrl, CollapsesQueryValuesKeepsKeys) {
  const auto a = cluster_url("https://h/s?user=12345&sort=asc");
  const auto b = cluster_url("https://h/s?user=99999&sort=asc");
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("user="), std::string::npos);
  EXPECT_NE(a.find("sort=asc"), std::string::npos);
}

TEST(ClusterUrl, VersionSegmentsSurvive) {
  const auto c = cluster_url("https://h/api/v1/feed");
  EXPECT_NE(c.find("v1"), std::string::npos);
}

TEST(ClusterUrl, UnparseableUrlClustersToItself) {
  EXPECT_EQ(cluster_url("not a url"), "not a url");
  EXPECT_EQ(cluster_url(""), "");
}

TEST(ClusterUrl, Idempotent) {
  const auto once = cluster_url("https://h/a/123?k=456");
  EXPECT_EQ(cluster_url(once), once);
}

}  // namespace
}  // namespace jsoncdn::core
