#include "workload/device_profiles.h"

#include <stdexcept>

namespace jsoncdn::workload {

namespace {

using http::AgentKind;
using http::DeviceType;

std::vector<DeviceProfile> make_mobile_apps() {
  // App UAs release weekly: many live versions per app.
  return {
      {"ios-news-app",
       "NewsReader/{v} (iPhone; iOS 12.4.1; Scale/3.00)",
       DeviceType::kMobile, AgentKind::kNativeApp, 14},
      {"ios-cfnetwork-app",
       "Feedly/{v} CFNetwork/978.0.7 Darwin/18.7.0",
       DeviceType::kMobile, AgentKind::kNativeApp, 12},
      {"android-okhttp-app",
       "com.example.shopping/{v} (Android 9; SM-G960F) okhttp/3.12.0",
       DeviceType::kMobile, AgentKind::kNativeApp, 14},
      {"android-dalvik-app",
       // Stock runtime UA: indistinguishable from a bare HTTP stack, so the
       // honest ground-truth agent label is "library".
       "Dalvik/2.1.0 (Linux; U; Android 8.1.0; Pixel 2 Build/{v})",
       DeviceType::kMobile, AgentKind::kLibrary, 10},
      {"ios-social-app",
       "SocialApp/{v} (iPhone11,2; iOS 13.1; Scale/2.00)",
       DeviceType::kMobile, AgentKind::kNativeApp, 14},
      {"android-game-app",
       "PuzzleQuest/{v} (Android 10; Build/QP1A.190711) okhttp/4.2.1",
       DeviceType::kMobile, AgentKind::kNativeApp, 12},
      {"ios-weather-app",
       "WeatherNow/{v} CFNetwork/976 Darwin/18.2.0 (iPhone/XS iOS/12.1.2)",
       DeviceType::kMobile, AgentKind::kNativeApp, 12},
  };
}

std::vector<DeviceProfile> make_mobile_browsers() {
  return {
      {"ios-safari",
       "Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) "
       "AppleWebKit/605.1.15 (KHTML, like Gecko) Version/{v} Mobile/15E148 "
       "Safari/604.1",
       DeviceType::kMobile, AgentKind::kBrowser, 5},
      {"android-chrome",
       "Mozilla/5.0 (Linux; Android 9; SM-G960F) AppleWebKit/537.36 (KHTML, "
       "like Gecko) Chrome/{v} Mobile Safari/537.36",
       DeviceType::kMobile, AgentKind::kBrowser, 6},
      {"ios-chrome",
       "Mozilla/5.0 (iPhone; CPU iPhone OS 12_4 like Mac OS X) "
       "AppleWebKit/605.1.15 (KHTML, like Gecko) CriOS/{v} "
       "Mobile/15E148 Safari/605.1",
       DeviceType::kMobile, AgentKind::kBrowser, 5},
  };
}

std::vector<DeviceProfile> make_desktop_browsers() {
  // Desktop browsers auto-update: very few live versions.
  return {
      {"win-chrome",
       "Mozilla/5.0 (Windows NT 10.0; Win64; x64) AppleWebKit/537.36 (KHTML, "
       "like Gecko) Chrome/76.0.3809.100 Safari/537.36",
       DeviceType::kDesktop, AgentKind::kBrowser, 1},
      {"mac-safari",
       "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_14_6) AppleWebKit/605.1.15 "
       "(KHTML, like Gecko) Version/12.1.2 Safari/605.1.15",
       DeviceType::kDesktop, AgentKind::kBrowser, 1},
      {"win-firefox",
       "Mozilla/5.0 (Windows NT 10.0; Win64; x64; rv:69.0) Gecko/20100101 "
       "Firefox/69.0",
       DeviceType::kDesktop, AgentKind::kBrowser, 1},
      {"linux-firefox",
       "Mozilla/5.0 (X11; Linux x86_64; rv:68.0) Gecko/20100101 Firefox/68.0",
       DeviceType::kDesktop, AgentKind::kBrowser, 1},
  };
}

std::vector<DeviceProfile> make_embedded() {
  // Firmware updates are rare: a handful of versions per device line.
  return {
      {"playstation",
       "Mozilla/5.0 (PlayStation 4 {v}) AppleWebKit/605.1.15 (KHTML, like "
       "Gecko)",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"xbox",
       "GameHub/{v} (Xbox One; XboxOS 10.0.18363) Network/1.0",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"nintendo",
       "Mozilla/5.0 (Nintendo Switch; WifiWebAuthApplet) AppleWebKit/601.6 "
       "(KHTML, like Gecko) NF/4.0.0.5.9 NintendoBrowser/{v}",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"apple-watch",
       "FitnessTracker/{v} (AppleWatch4,4; watchOS 5.3; Scale/2.00)",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 4},
      {"samsung-tv",
       "StreamPlayer/{v} (SMART-TV; Tizen 5.0) AppleWebKit/537.36",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"lg-tv",
       "MediaCenter/{v} (WebOS; LGE; 55UK6300) Luna/1.0",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"roku",
       "Roku/DVP-{v} (519.10E04111A)",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
      {"iot-sensor",
       "SmartThings-Hub/{v} ESP8266/2.4.1",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 2},
      {"smart-speaker",
       "VoiceAssistant/{v} (HomePod; audioOS 13.0)",
       DeviceType::kEmbedded, AgentKind::kNativeApp, 3},
  };
}

std::vector<DeviceProfile> make_libraries() {
  return {
      {"curl", "curl/7.58.0", DeviceType::kUnknown, AgentKind::kLibrary, 1},
      {"python-requests", "python-requests/2.22.0", DeviceType::kUnknown,
       AgentKind::kLibrary, 1},
      {"go-http", "Go-http-client/1.1", DeviceType::kUnknown,
       AgentKind::kLibrary, 1},
      {"java", "Java/1.8.0_222", DeviceType::kUnknown, AgentKind::kLibrary, 1},
      {"okhttp-bare", "okhttp/3.12.1", DeviceType::kMobile,
       AgentKind::kLibrary, 2},
  };
}

std::vector<DeviceProfile> make_no_ua() {
  return {
      {"no-ua", "", DeviceType::kUnknown, AgentKind::kUnknown, 1},
  };
}

std::vector<DeviceProfile> make_garbage_ua() {
  return {
      {"garbage-1", "0x8fA3-device", DeviceType::kUnknown,
       AgentKind::kUnknown, 1},
      {"garbage-2", "prod-fetcher-internal", DeviceType::kUnknown,
       AgentKind::kUnknown, 1},
      {"garbage-3", "AGENT_STRING_NOT_SET", DeviceType::kUnknown,
       AgentKind::kUnknown, 1},
  };
}

}  // namespace

const std::vector<DeviceProfile>& profiles(ProfileClass c) {
  static const auto mobile_apps = make_mobile_apps();
  static const auto mobile_browsers = make_mobile_browsers();
  static const auto desktop_browsers = make_desktop_browsers();
  static const auto embedded = make_embedded();
  static const auto libraries = make_libraries();
  static const auto no_ua = make_no_ua();
  static const auto garbage = make_garbage_ua();
  switch (c) {
    case ProfileClass::kMobileApp: return mobile_apps;
    case ProfileClass::kMobileBrowser: return mobile_browsers;
    case ProfileClass::kDesktopBrowser: return desktop_browsers;
    case ProfileClass::kEmbedded: return embedded;
    case ProfileClass::kLibrary: return libraries;
    case ProfileClass::kNoUserAgent: return no_ua;
    case ProfileClass::kGarbageUa: return garbage;
  }
  throw std::invalid_argument("profiles: unknown class");
}

const DeviceProfile& sample_profile(ProfileClass c, stats::Rng& rng) {
  const auto& list = profiles(c);
  const auto idx = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(list.size()) - 1));
  return list[idx];
}

std::string materialize_user_agent(const DeviceProfile& profile,
                                   stats::Rng& rng) {
  const auto slot = profile.user_agent.find("{v}");
  if (slot == std::string::npos) return profile.user_agent;
  const auto variant = static_cast<int>(
      rng.uniform_int(0, std::max(0, profile.version_variants - 1)));
  // Deterministic "maj.min.patch" per variant index.
  const std::string version = std::to_string(3 + variant / 5) + "." +
                              std::to_string((variant * 7) % 10) + "." +
                              std::to_string((variant * 3) % 8);
  std::string out = profile.user_agent;
  out.replace(slot, 3, version);
  return out;
}

std::string_view to_string(ProfileClass c) noexcept {
  switch (c) {
    case ProfileClass::kMobileApp: return "mobile-app";
    case ProfileClass::kMobileBrowser: return "mobile-browser";
    case ProfileClass::kDesktopBrowser: return "desktop-browser";
    case ProfileClass::kEmbedded: return "embedded";
    case ProfileClass::kLibrary: return "library";
    case ProfileClass::kNoUserAgent: return "no-ua";
    case ProfileClass::kGarbageUa: return "garbage-ua";
  }
  return "unknown";
}

}  // namespace jsoncdn::workload
