file(REMOVE_RECURSE
  "CMakeFiles/fig1_json_growth.dir/fig1_json_growth.cpp.o"
  "CMakeFiles/fig1_json_growth.dir/fig1_json_growth.cpp.o.d"
  "fig1_json_growth"
  "fig1_json_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_json_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
