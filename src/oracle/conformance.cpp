#include "oracle/conformance.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "cdn/network.h"
#include "core/characterization.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "oracle/metamorphic.h"
#include "stream/streaming_study.h"
#include "workload/scenario.h"

namespace jsoncdn::oracle {

namespace {

core::PeriodicityConfig periodicity_config(const ConformanceConfig& config,
                                           std::size_t threads) {
  core::PeriodicityConfig out;
  out.strategy = config.detector;
  out.threads = threads;
  return out;
}

core::NgramEvalConfig ngram_config(const ConformanceConfig& config,
                                   bool clustered, std::size_t threads) {
  core::NgramEvalConfig out;
  out.context_len = config.ngram_context;
  out.clustered = clustered;
  out.threads = threads;
  return out;
}

void check_band(std::vector<std::string>& failures, bool ok,
                const std::string& what) {
  if (!ok) failures.push_back(what);
}

std::string fmt(double value) {
  std::ostringstream out;
  out.precision(4);
  out << value;
  return out.str();
}

// The streaming study mirrors the batch pipeline's record scoping: status is
// a delivery-health view over the whole stream, while methods, cacheability,
// and the device breakdown are the paper's JSON-only analyses.
bool same_counters(const stream::StreamingSummary& streaming,
                   const logs::Dataset& dataset, const logs::Dataset& json,
                   std::size_t threads) {
  const auto methods = core::characterize_methods(json, threads);
  const auto cache = core::characterize_cacheability(json, threads);
  const auto status = core::characterize_status(dataset, threads);
  const auto source = core::characterize_source(json, threads);
  const auto& sm = streaming.methods;
  const auto& sc = streaming.cacheability;
  const auto& ss = streaming.status;
  if (sm.get != methods.get || sm.post != methods.post ||
      sm.other != methods.other || sm.total != methods.total) {
    return false;
  }
  if (sc.cacheable != cache.cacheable || sc.uncacheable != cache.uncacheable ||
      sc.hits != cache.hits) {
    return false;
  }
  if (ss.total != status.total || ss.ok_2xx != status.ok_2xx ||
      ss.redirect_3xx != status.redirect_3xx ||
      ss.client_error_4xx != status.client_error_4xx ||
      ss.server_error_5xx != status.server_error_5xx ||
      ss.gateway_timeout_504 != status.gateway_timeout_504 ||
      ss.stale_served != status.stale_served ||
      ss.error_cache_status != status.error_cache_status ||
      ss.shed != status.shed || ss.throttled != status.throttled) {
    return false;
  }
  // Request-side device counters are exact in the streaming study; the
  // UA-string side is HLL-estimated, so only the request side must match.
  return streaming.source.requests_by_device == source.requests_by_device &&
         streaming.source.total_requests == source.total_requests &&
         streaming.source.browser_requests == source.browser_requests &&
         streaming.source.missing_ua_requests == source.missing_ua_requests;
}

}  // namespace

GeneratedCase generate_case(std::uint64_t seed,
                            const ConformanceConfig& config) {
  auto wconfig =
      workload::scenario_by_name(config.scenario, config.scale, seed);
  if (config.hostile_share >= 0.0)
    wconfig.hostile.hostile_share = config.hostile_share;
  if (config.duration_seconds > 0.0)
    wconfig.duration_seconds = config.duration_seconds;
  if (config.n_clients > 0) wconfig.n_clients = config.n_clients;

  const workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();

  cdn::CdnNetwork network(generator.catalog().objects(), cdn::NetworkParams{});
  GeneratedCase out;
  out.seed = seed;
  out.dataset = network.run(workload.events);
  out.json = out.dataset.json_only();
  out.truth = make_sidecar(workload.truth, wconfig, network.anonymizer());
  return out;
}

CaseResult score_case(const logs::Dataset& dataset, const logs::Dataset& json,
                      const TruthSidecar& truth, std::uint64_t seed,
                      const ConformanceConfig& config, std::size_t threads) {
  CaseResult result;
  result.seed = seed;

  const auto pconfig = periodicity_config(config, threads);
  const auto report = core::analyze_periodicity(json, pconfig);
  result.detector = score_periodicity(report, truth,
                                      pconfig.detector.period_match_tolerance);

  result.ngram_raw = score_ngram(json, truth, ngram_config(config, false,
                                                           threads));
  result.ngram_clustered =
      score_ngram(json, truth, ngram_config(config, true, threads));

  const auto source = core::characterize_source(dataset, threads);
  result.marginals = score_marginals(dataset, source, truth);

  const auto& tol = config.tolerances;
  auto& failures = result.failures;
  const auto& det = result.detector;
  check_band(failures, det.precision() >= tol.min_detector_precision,
             "detector precision " + fmt(det.precision()) + " < " +
                 fmt(tol.min_detector_precision));
  check_band(failures, det.recall() >= tol.min_detector_recall,
             "detector recall " + fmt(det.recall()) + " < " +
                 fmt(tol.min_detector_recall));
  check_band(failures, det.f1() >= tol.min_detector_f1,
             "detector F1 " + fmt(det.f1()) + " < " + fmt(tol.min_detector_f1));
  check_band(failures,
             det.max_period_rel_error() <= tol.max_period_rel_error,
             "period error " + fmt(det.max_period_rel_error()) + " > " +
                 fmt(tol.max_period_rel_error));

  const double measured_top1 = [&] {
    const auto it = result.ngram_raw.measured.accuracy_at.find(1);
    return it == result.ngram_raw.measured.accuracy_at.end() ? 0.0
                                                             : it->second;
  }();
  const double skyline_top1 = [&] {
    const auto it = result.ngram_raw.skyline.accuracy_at.find(1);
    return it == result.ngram_raw.skyline.accuracy_at.end() ? 0.0 : it->second;
  }();
  check_band(failures, measured_top1 >= tol.min_measured_top1,
             "ngram accuracy@1 " + fmt(measured_top1) + " < " +
                 fmt(tol.min_measured_top1));
  check_band(failures, skyline_top1 >= tol.min_skyline_top1,
             "ngram skyline@1 " + fmt(skyline_top1) + " < " +
                 fmt(tol.min_skyline_top1));
  check_band(failures,
             skyline_top1 - measured_top1 <= tol.max_skyline_gap_top1,
             "ngram skyline gap " + fmt(skyline_top1 - measured_top1) + " > " +
                 fmt(tol.max_skyline_gap_top1));

  const auto& marg = result.marginals;
  check_band(failures, marg.device_request_l1 <= tol.max_device_l1,
             "device marginal L1 " + fmt(marg.device_request_l1) + " > " +
                 fmt(tol.max_device_l1));
  check_band(failures, marg.class_population_l1 <= tol.max_class_l1,
             "class marginal L1 " + fmt(marg.class_population_l1) + " > " +
                 fmt(tol.max_class_l1));
  check_band(failures, marg.industry_domain_l1 <= tol.max_industry_l1,
             "industry marginal L1 " + fmt(marg.industry_domain_l1) + " > " +
                 fmt(tol.max_industry_l1));
  return result;
}

bool ConformanceReport::all_passed() const noexcept {
  for (const auto& result : cases) {
    if (!result.passed()) return false;
  }
  return true;
}

std::size_t ConformanceReport::total_failures() const noexcept {
  std::size_t n = 0;
  for (const auto& result : cases) n += result.failures.size();
  return n;
}

ConformanceReport run_conformance(const ConformanceConfig& config) {
  ConformanceReport report;
  const std::size_t score_threads =
      config.thread_counts.empty() ? 0 : config.thread_counts.front();
  for (const auto seed : config.seeds) {
    const auto generated = generate_case(seed, config);
    auto result = score_case(generated.dataset, generated.json,
                             generated.truth, seed, config, score_threads);

    // Thread-count differential: labels and accuracies must be bit-identical
    // under every swept thread count.
    const auto reference_labels = detection_labels(
        core::analyze_periodicity(generated.json,
                                  periodicity_config(config, score_threads)));
    const auto reference_ngram = core::evaluate_ngram(
        generated.json, ngram_config(config, false, score_threads));
    for (std::size_t i = 1; i < config.thread_counts.size(); ++i) {
      const auto threads = config.thread_counts[i];
      const auto labels = detection_labels(core::analyze_periodicity(
          generated.json, periodicity_config(config, threads)));
      const auto accuracy = core::evaluate_ngram(
          generated.json, ngram_config(config, false, threads));
      if (labels != reference_labels ||
          accuracy.accuracy_at != reference_ngram.accuracy_at) {
        result.thread_invariant = false;
        result.failures.push_back(
            "thread differential: results differ between " +
            std::to_string(score_threads) + " and " + std::to_string(threads) +
            " threads");
        break;
      }
    }

    // Batch-vs-streaming differential on the exact counters.
    if (config.check_streaming) {
      stream::StreamingStudy study;
      study.ingest(generated.dataset.records());
      if (!same_counters(study.summary(), generated.dataset, generated.json,
                         score_threads)) {
        result.streaming_consistent = false;
        result.failures.push_back(
            "streaming differential: exact counters diverge from batch");
      }
    }
    report.cases.push_back(std::move(result));
  }
  return report;
}

std::string render_case(const CaseResult& result) {
  std::ostringstream out;
  out.precision(4);
  const auto& det = result.detector;
  out << "seed " << result.seed << (result.passed() ? "  [pass]" : "  [FAIL]")
      << "\n";
  out << "  detector: P " << det.precision() << "  R " << det.recall()
      << "  F1 " << det.f1() << "  (TP " << det.true_positives << ", FP "
      << det.false_positives << ", FN " << det.false_negatives;
  if (det.hostile_detections > 0)
    out << ", hostile " << det.hostile_detections;
  out << "; eligible " << det.eligible_truth << "/" << det.truth_flows
      << " truth flows, max period err " << det.max_period_rel_error()
      << ")\n";
  auto acc = [](const core::NgramAccuracy& a, std::size_t k) {
    const auto it = a.accuracy_at.find(k);
    return it == a.accuracy_at.end() ? 0.0 : it->second;
  };
  out << "  ngram raw: log@1 " << acc(result.ngram_raw.measured, 1)
      << "  skyline@1 " << acc(result.ngram_raw.skyline, 1) << "  log@10 "
      << acc(result.ngram_raw.measured, 10) << "\n";
  out << "  ngram clustered: log@1 " << acc(result.ngram_clustered.measured, 1)
      << "  skyline@1 " << acc(result.ngram_clustered.skyline, 1) << "\n";
  const auto& marg = result.marginals;
  out << "  marginals: device L1 " << marg.device_request_l1 << "  class L1 "
      << marg.class_population_l1 << "  industry L1 "
      << marg.industry_domain_l1 << "  (joined " << marg.joined_requests
      << ", unmatched " << marg.unmatched_requests;
  if (marg.hostile_requests > 0)
    out << ", hostile " << marg.hostile_requests;
  out << ")\n";
  out << "  differentials: threads "
      << (result.thread_invariant ? "identical" : "DIVERGED") << ", streaming "
      << (result.streaming_consistent ? "identical" : "DIVERGED") << "\n";
  for (const auto& failure : result.failures) {
    out << "  band violation: " << failure << "\n";
  }
  return out.str();
}

std::string render_conformance(const ConformanceReport& report) {
  std::ostringstream out;
  out << "== Conformance sweep (" << report.cases.size() << " seeds) ==\n";
  for (const auto& result : report.cases) out << render_case(result);
  out << (report.all_passed()
              ? "all seeds within bands\n"
              : std::to_string(report.total_failures()) +
                    " band violation(s)\n");
  return out.str();
}

OverloadExperiment run_overload_experiment(
    const OverloadExperimentConfig& config) {
  auto wconfig = workload::flash_crowd_scenario(config.scale, config.seed);
  if (config.hostile_share >= 0.0)
    wconfig.hostile.hostile_share = config.hostile_share;
  if (config.duration_seconds > 0.0)
    wconfig.duration_seconds = config.duration_seconds;
  if (config.n_clients > 0) wconfig.n_clients = config.n_clients;

  const workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();

  const auto run_arm = [&](cdn::OverloadParams params) {
    // Both arms share the edge sizing; only the protections differ.
    params.model_capacity = true;
    params.concurrency = config.concurrency;
    params.service_floor_seconds = config.service_floor_seconds;
    cdn::NetworkParams network_params;
    network_params.edge.overload = params;
    cdn::CdnNetwork network(generator.catalog().objects(), network_params);
    (void)network.run(workload.events);

    OverloadArm arm;
    arm.classes = network.total_two_class();
    arm.resilience = network.total_resilience();
    arm.human_p99 = arm.classes.human.latency_summary().p99;
    arm.human_hit_ratio = arm.classes.human.hit_ratio();
    arm.human_rejected_share = arm.classes.human.rejected_share();
    arm.machine_p99 = arm.classes.machine.latency_summary().p99;
    arm.machine_rejected_share = arm.classes.machine.rejected_share();
    return arm;
  };

  OverloadExperiment out;
  out.seed = config.seed;
  out.protected_arm = run_arm(config.protected_params);
  out.unprotected_arm = run_arm(config.unprotected_params);

  auto& failures = out.failures;
  const auto& prot = out.protected_arm;
  const auto& unprot = out.unprotected_arm;
  check_band(failures, prot.human_p99 <= config.max_human_p99_seconds,
             "protected human p99 " + fmt(prot.human_p99) + " s > " +
                 fmt(config.max_human_p99_seconds) + " s");
  check_band(failures, prot.human_hit_ratio >= config.min_human_hit_ratio,
             "protected human hit ratio " + fmt(prot.human_hit_ratio) +
                 " < " + fmt(config.min_human_hit_ratio));
  check_band(failures,
             prot.human_rejected_share <= config.max_human_rejected_share,
             "protected human rejected share " +
                 fmt(prot.human_rejected_share) + " > " +
                 fmt(config.max_human_rejected_share));
  // The whole point of the protections: the same traffic through an
  // unprotected edge must visibly collapse.
  check_band(failures, unprot.human_p99 > config.max_human_p99_seconds,
             "unprotected human p99 " + fmt(unprot.human_p99) +
                 " s stayed within the protected band — no overload "
                 "materialized");
  check_band(
      failures,
      unprot.human_p99 >=
          config.min_collapse_factor * std::max(prot.human_p99, 1e-9),
      "unprotected human p99 " + fmt(unprot.human_p99) + " s is not " +
          fmt(config.min_collapse_factor) + "x the protected " +
          fmt(prot.human_p99) + " s");
  return out;
}

namespace {

std::string render_arm(const char* name, const OverloadArm& arm) {
  std::ostringstream out;
  out.precision(4);
  out << "  " << name << ": human p99 " << arm.human_p99 << " s, hit ratio "
      << arm.human_hit_ratio << ", rejected " << arm.human_rejected_share
      << "  |  machine p99 " << arm.machine_p99 << " s, rejected "
      << arm.machine_rejected_share << "\n";
  out << "    rejections: " << arm.resilience.shed_queue_full
      << " shed (queue full), " << arm.resilience.shed_overload
      << " shed (overload), " << arm.resilience.throttled << " throttled\n";
  return out.str();
}

}  // namespace

std::string render_overload(const OverloadExperiment& experiment) {
  std::ostringstream out;
  out << "== Overload experiment (flash crowd + scrapers, seed "
      << experiment.seed << ") =="
      << (experiment.passed() ? "  [pass]" : "  [FAIL]") << "\n";
  out << render_arm("protected  ", experiment.protected_arm);
  out << render_arm("unprotected", experiment.unprotected_arm);
  for (const auto& failure : experiment.failures) {
    out << "  band violation: " << failure << "\n";
  }
  return out.str();
}

std::string render_overload_table(const OverloadExperiment& experiment) {
  std::ostringstream out;
  out.precision(3);
  out << "| arm | human p99 (s) | human hit ratio | human rejected | "
         "machine rejected | shed | throttled |\n";
  out << "|-----|--------------:|----------------:|---------------:|"
         "-----------------:|-----:|----------:|\n";
  const auto row = [&](const char* name, const OverloadArm& arm) {
    out << "| " << name << " | " << arm.human_p99 << " | "
        << arm.human_hit_ratio << " | " << arm.human_rejected_share << " | "
        << arm.machine_rejected_share << " | "
        << arm.resilience.shed_queue_full + arm.resilience.shed_overload
        << " | " << arm.resilience.throttled << " |\n";
  };
  row("protected", experiment.protected_arm);
  row("unprotected", experiment.unprotected_arm);
  return out.str();
}

std::string render_detector_table(const ConformanceReport& report) {
  std::ostringstream out;
  out.precision(3);
  out << "| seed | precision | recall | F1 | max period err | device L1 | "
         "class L1 | industry L1 |\n";
  out << "|-----:|----------:|-------:|---:|---------------:|----------:|"
         "---------:|------------:|\n";
  for (const auto& result : report.cases) {
    const auto& det = result.detector;
    out << "| " << result.seed << " | " << det.precision() << " | "
        << det.recall() << " | " << det.f1() << " | "
        << det.max_period_rel_error() << " | "
        << result.marginals.device_request_l1 << " | "
        << result.marginals.class_population_l1 << " | "
        << result.marginals.industry_domain_l1 << " |\n";
  }
  return out.str();
}

}  // namespace jsoncdn::oracle
