// jsoncdn-analyze — run the paper's analyses over a log file.
//
//   jsoncdn-analyze FILE [--characterize] [--periodicity] [--ngram] [--all]
//                   [--streaming] [--chunk-size N]
//                   [--permutations N] [--threads N]
//                   [--strict] [--quarantine FILE] [--max-error-share F]
//
// Consumes the TSV format written by jsoncdn-generate (or any producer of
// the same schema) and prints the corresponding figures/tables. Exactly the
// paper's situation: the analyst sees only the logs. A `.jlog` columnar
// sidecar (written by jsoncdn-generate --jlog) is detected by magic and
// loaded directly — no re-parse, no re-validation.
//
// The file is parsed exactly once, zero-copy, into a columnar LogTable;
// the batch and streaming paths both consume views of that one table, so a
// comparison run no longer pays (or skews on) a second ingest.
//
// Ingestion is hardened: by default malformed lines are skipped, counted
// per reason, and (with --quarantine) preserved for inspection; the run
// fails if the rejected share exceeds --max-error-share. --strict instead
// aborts on the first bad line, naming it. An empty or unreadable log is
// always an error — analyses over zero records are never silently printed.
//
// --streaming switches to the one-pass bounded-memory pipeline
// (stream::StreamingStudy): the table is consumed in --chunk-size record
// chunks, sketches replace exact tables, and the periodicity detector runs
// a targeted second pass over triage-selected candidate flows only.
//
// A `.jlog` v2 chunk store (shard/format.h) combined with --streaming runs
// fully out of core: chunks are decoded one at a time into a reusable
// scratch table, zone maps prune chunks outside --time-from/--time-to, and
// the periodicity second pass re-scans only the chunks holding candidate
// URLs — the whole table is never materialized, so peak memory is flat in
// file size (tunable with --max-memory, checkable with --assert-max-rss).
// The report matches the in-memory streaming run over the same records
// whenever --chunk-size divides the file's chunk row count (the default 64Ki
// geometry on both sides) — scan statistics go to stderr so stdout diffs
// clean against the in-memory run.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <numeric>
#include <optional>
#include <span>
#include <string>
#include <unordered_set>

#if defined(__unix__) || defined(__APPLE__)
#define JSONCDN_HAVE_GETRUSAGE 1
#include <sys/resource.h>
#endif

#include "core/characterization.h"
#include "core/ngram.h"
#include "core/period_detector.h"
#include "core/periodicity.h"
#include "core/report.h"
#include "http/mime.h"
#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "logs/zerocopy.h"
#include "shard/reader.h"
#include "stats/parallel.h"
#include "stream/streaming_study.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jsoncdn-analyze FILE [--characterize] [--periodicity]\n"
               "                       [--ngram] [--all] [--permutations N]\n"
               "                       [--detector NAME]  (acf-fft, "
               "lomb-scargle,\n"
               "                        autoperiod, cfd-autoperiod, "
               "multi-period)\n"
               "                       [--streaming] [--chunk-size N]\n"
               "                       [--threads N]  (0 = auto)\n"
               "                       [--strict] [--quarantine FILE]\n"
               "                       [--max-error-share F]  (0..1)\n"
               "                       [--time-from T] [--time-to T]\n"
               "                       (streaming only: analyze [T_from, "
               "T_to])\n"
               "                       [--max-memory SIZE]  (v2 out-of-core "
               "page budget, e.g. 1g)\n"
               "                       [--no-zone-maps]     (v2: decode every "
               "chunk)\n"
               "                       [--assert-max-rss SIZE] (fail if peak "
               "RSS exceeds SIZE)\n");
}

// Parses "4096", "64k", "512m", "1g" (case-insensitive suffixes, powers of
// 1024) into bytes. Returns false on anything else.
bool parse_size(const char* text, std::uint64_t& out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || value < 0) return false;
  std::uint64_t unit = 1;
  if (*end != '\0') {
    switch (*end | 0x20) {
      case 'k': unit = 1ull << 10; break;
      case 'm': unit = 1ull << 20; break;
      case 'g': unit = 1ull << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  out = static_cast<std::uint64_t>(value * static_cast<double>(unit));
  return true;
}

// Ingest-side knobs shared by the batch and streaming paths.
struct IngestFlags {
  bool strict = false;
  std::string quarantine_path;
  double max_error_share = 1.0;  // 1.0 = any amount of garbage tolerated
};

// Prints the ingest report (stderr — it is diagnostics, not analysis
// output) and enforces the error budget. Returns false when the budget is
// blown or nothing was ingested.
bool check_ingest(const jsoncdn::logs::IngestReport& report,
                  const IngestFlags& flags, const std::string& path) {
  if (report.malformed > 0) {
    std::fputs(jsoncdn::logs::render_ingest_report(report).c_str(), stderr);
  }
  if (report.records == 0) {
    std::fprintf(stderr,
                 "error: no records ingested from %s (empty or fully "
                 "malformed log)\n",
                 path.c_str());
    return false;
  }
  if (report.error_share() > flags.max_error_share) {
    std::fprintf(stderr,
                 "error: ingest error share %.4f exceeds budget %.4f\n",
                 report.error_share(), flags.max_error_share);
    return false;
  }
  return true;
}

// Analysis window shared by the streaming paths: the in-memory path drops
// out-of-window rows when building its ingest order; the v2 out-of-core
// path pushes the same bounds into the chunk scan's zone-map predicate.
// Both select exactly the same rows.
struct TimeWindow {
  double from = -std::numeric_limits<double>::infinity();
  double to = std::numeric_limits<double>::infinity();
  [[nodiscard]] bool bounded() const noexcept {
    return from != -std::numeric_limits<double>::infinity() ||
           to != std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] bool contains(double t) const noexcept {
    return t >= from && t <= to;
  }
};

// One-pass streaming path over the already-loaded table, consumed in file
// order (the order the stream would arrive) in --chunk-size chunks — the
// same chunk geometry the old parse-as-you-go path produced, so summaries
// are unchanged. The periodicity second pass selects candidate-flow rows
// from the same table instead of re-reading the file.
int run_streaming(const jsoncdn::logs::LogTable& table,
                  const std::string& path, bool periodicity,
                  std::size_t chunk_size, std::size_t permutations,
                  jsoncdn::core::DetectorStrategy detector,
                  std::size_t threads, const TimeWindow& window) {
  using namespace jsoncdn;
  using RowIndex = logs::LogTable::RowIndex;

  stream::StreamingConfig config;
  config.threads = threads;
  stream::StreamingStudy study(config);

  std::vector<RowIndex> order;
  order.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto row = static_cast<RowIndex>(i);
    if (window.contains(table.timestamp(row))) order.push_back(row);
  }
  for (std::size_t begin = 0; begin < order.size(); begin += chunk_size) {
    const std::size_t len = std::min(chunk_size, order.size() - begin);
    study.ingest(table, std::span<const RowIndex>(&order[begin], len));
  }
  const auto summary = study.summary();
  std::printf("streamed %llu records (%llu JSON) from %s in chunks of %zu\n\n",
              static_cast<unsigned long long>(summary.total_records),
              static_cast<unsigned long long>(summary.json_records),
              path.c_str(), chunk_size);
  std::fputs(stream::render_streaming_summary(summary).c_str(), stdout);

  if (periodicity && !summary.periodic_candidates.empty()) {
    std::unordered_set<std::string_view> candidates;
    for (const auto& c : summary.periodic_candidates)
      candidates.insert(c.key);
    std::vector<RowIndex> subset;
    for (RowIndex i = 0; i < table.size(); ++i) {
      if (window.contains(table.timestamp(i)) &&
          http::is_json(table.content_type(i)) &&
          candidates.contains(table.url(i)))
        subset.push_back(i);
    }
    // Same stable time order Dataset::sort_by_time() would give the subset.
    std::stable_sort(subset.begin(), subset.end(),
                     [&](RowIndex a, RowIndex b) {
                       return table.timestamp(a) < table.timestamp(b);
                     });

    core::PeriodicityConfig pconfig;
    pconfig.detector.permutations = permutations;
    pconfig.strategy = detector;
    pconfig.threads = threads;
    pconfig.total_requests_override =
        static_cast<std::size_t>(summary.json_records);
    const auto report = core::analyze_periodicity(
        logs::TableView(table, subset), pconfig);
    std::printf("\nperiodicity (targeted pass over %zu candidate flows, "
                "%zu records):\n",
                summary.periodic_candidates.size(), subset.size());
    std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
    std::fputs(core::render_period_histogram(report.object_periods).c_str(),
               stdout);
  }
  return 0;
}

void print_scan_stats(const char* label, const jsoncdn::shard::ScanStats& s) {
  std::fprintf(stderr,
               "v2 %s: %u/%u chunks decoded (%u pruned), %llu rows decoded, "
               "%llu selected, %.1f MiB payload\n",
               label, s.chunks_scanned, s.chunks_total, s.chunks_pruned,
               static_cast<unsigned long long>(s.rows_scanned),
               static_cast<unsigned long long>(s.rows_selected),
               static_cast<double>(s.bytes_decoded) / (1 << 20));
}

// Out-of-core streaming over a .jlog v2 chunk store: same StreamingStudy,
// fed chunk by chunk from the shard reader's scratch table. Within every
// decoded chunk the selected rows are ingested in --chunk-size sub-spans,
// so with the default geometry (chunk_size == the file's chunk row count,
// no window) every ingest call sees exactly the rows the in-memory path's
// would — the stdout report is identical. Scan statistics go to stderr.
int run_streaming_v2(jsoncdn::shard::ShardReader& reader,
                     const std::string& path, bool periodicity,
                     std::size_t chunk_size, std::size_t permutations,
                     jsoncdn::core::DetectorStrategy detector,
                     std::size_t threads, const TimeWindow& window,
                     bool use_zone_maps) {
  using namespace jsoncdn;
  using RowIndex = logs::LogTable::RowIndex;

  shard::ScanPredicate predicate;
  predicate.min_time = window.from;
  predicate.max_time = window.to;
  predicate.use_zone_maps = use_zone_maps;

  stream::StreamingConfig config;
  config.threads = threads;
  stream::StreamingStudy study(config);
  const auto stats = reader.scan(
      predicate, [&](const logs::LogTable& chunk,
                     std::span<const std::uint32_t> selected) {
        for (std::size_t begin = 0; begin < selected.size();
             begin += chunk_size) {
          const std::size_t len = std::min(chunk_size, selected.size() - begin);
          study.ingest(chunk, std::span<const RowIndex>(
                                  selected.data() + begin, len));
        }
      });
  print_scan_stats("scan", stats);

  const auto summary = study.summary();
  std::printf("streamed %llu records (%llu JSON) from %s in chunks of %zu\n\n",
              static_cast<unsigned long long>(summary.total_records),
              static_cast<unsigned long long>(summary.json_records),
              path.c_str(), chunk_size);
  std::fputs(stream::render_streaming_summary(summary).c_str(), stdout);

  if (periodicity && !summary.periodic_candidates.empty()) {
    // Targeted second pass: resolve the candidate URLs (and the JSON
    // content types) to file-global symbols and re-scan — zone maps skip
    // every chunk holding no candidate, and only the matching rows are
    // materialized into a small table for the exact detector.
    const auto& dicts = reader.dictionaries();
    shard::ScanPredicate second = predicate;
    for (const auto& c : summary.periodic_candidates) {
      const auto sym = dicts.urls().find(c.key);
      if (sym != logs::StringInterner::kNoSymbol) {
        second.url_symbols.push_back(sym);
      }
    }
    std::sort(second.url_symbols.begin(), second.url_symbols.end());
    second.url_symbols.erase(
        std::unique(second.url_symbols.begin(), second.url_symbols.end()),
        second.url_symbols.end());
    for (std::size_t s = 0; s < dicts.content_types().size(); ++s) {
      if (http::is_json(dicts.content_types().view(
              static_cast<logs::LogTable::Symbol>(s)))) {
        second.ctype_symbols.push_back(static_cast<std::uint32_t>(s));
      }
    }

    logs::LogTable subset;
    const auto second_stats = reader.scan(
        second, [&](const logs::LogTable& chunk,
                    std::span<const std::uint32_t> selected) {
          for (const auto row : selected) {
            subset.append_fields(
                chunk.timestamp(row), chunk.client_id(row),
                chunk.user_agent(row), chunk.method(row), chunk.url(row),
                chunk.domain(row), chunk.content_type(row), chunk.status(row),
                chunk.response_bytes(row), chunk.request_bytes(row),
                chunk.cache_status(row), chunk.edge_id(row));
          }
        });
    print_scan_stats("periodicity pass", second_stats);
    // Same stable time order the in-memory path gives its subset: rows
    // arrive in file order, and sort_by_time() is stable.
    subset.sort_by_time();

    core::PeriodicityConfig pconfig;
    pconfig.detector.permutations = permutations;
    pconfig.strategy = detector;
    pconfig.threads = threads;
    pconfig.total_requests_override =
        static_cast<std::size_t>(summary.json_records);
    const auto report =
        core::analyze_periodicity(logs::TableView(subset), pconfig);
    std::printf("\nperiodicity (targeted pass over %zu candidate flows, "
                "%zu records):\n",
                summary.periodic_candidates.size(), subset.size());
    std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
    std::fputs(core::render_period_histogram(report.object_periods).c_str(),
               stdout);
  }
  return 0;
}

// Enforces --assert-max-rss: compares the process's peak resident set
// against the budget. Returns false (after a stderr diagnostic) on breach
// or where peak RSS cannot be read.
bool check_max_rss(std::uint64_t budget_bytes) {
#if JSONCDN_HAVE_GETRUSAGE
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    std::fprintf(stderr, "error: getrusage failed; cannot assert peak RSS\n");
    return false;
  }
  // ru_maxrss is KiB on Linux (bytes on macOS — stricter, never lenient).
  const auto peak = static_cast<std::uint64_t>(usage.ru_maxrss) * 1024ull;
  std::fprintf(stderr, "peak RSS: %.1f MiB (budget %.1f MiB)\n",
               static_cast<double>(peak) / (1 << 20),
               static_cast<double>(budget_bytes) / (1 << 20));
  if (peak > budget_bytes) {
    std::fprintf(stderr, "error: peak RSS exceeds --assert-max-rss budget\n");
    return false;
  }
  return true;
#else
  (void)budget_bytes;
  std::fprintf(stderr,
               "error: --assert-max-rss unsupported on this platform\n");
  return false;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string path = argv[1];
  bool characterize = false;
  bool periodicity = false;
  bool ngram = false;
  bool streaming = false;
  IngestFlags flags;
  std::size_t chunk_size = 65536;
  std::size_t permutations = 100;
  core::DetectorStrategy detector = core::DetectorStrategy::kAcfFft;
  std::size_t threads = 0;  // auto
  TimeWindow window;
  std::uint64_t max_memory = 0;       // 0 = default paging behaviour
  std::uint64_t assert_max_rss = 0;   // 0 = no assertion
  bool use_zone_maps = true;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--characterize") {
      characterize = true;
    } else if (arg == "--periodicity") {
      periodicity = true;
    } else if (arg == "--ngram") {
      ngram = true;
    } else if (arg == "--all") {
      characterize = periodicity = ngram = true;
    } else if (arg == "--streaming") {
      streaming = true;
    } else if (arg == "--chunk-size" && i + 1 < argc) {
      chunk_size = static_cast<std::size_t>(std::atoll(argv[++i]));
      if (chunk_size == 0) chunk_size = 1;
    } else if (arg == "--permutations" && i + 1 < argc) {
      permutations = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--detector" && i + 1 < argc) {
      try {
        detector = core::detector_strategy_from_name(argv[++i]);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (arg == "--threads" && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg == "--strict") {
      flags.strict = true;
    } else if (arg == "--quarantine" && i + 1 < argc) {
      flags.quarantine_path = argv[++i];
    } else if (arg == "--max-error-share" && i + 1 < argc) {
      flags.max_error_share = std::atof(argv[++i]);
    } else if (arg == "--time-from" && i + 1 < argc) {
      window.from = std::atof(argv[++i]);
    } else if (arg == "--time-to" && i + 1 < argc) {
      window.to = std::atof(argv[++i]);
    } else if (arg == "--max-memory" && i + 1 < argc) {
      if (!parse_size(argv[++i], max_memory)) {
        std::fprintf(stderr, "bad --max-memory size: %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--assert-max-rss" && i + 1 < argc) {
      if (!parse_size(argv[++i], assert_max_rss)) {
        std::fprintf(stderr, "bad --assert-max-rss size: %s\n", argv[i]);
        return 2;
      }
    } else if (arg == "--no-zone-maps") {
      use_zone_maps = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }
  if (!characterize && !periodicity && !ngram) characterize = true;
  if (window.bounded() && !streaming) {
    std::fprintf(stderr,
                 "error: --time-from/--time-to require --streaming (batch "
                 "analyses always cover the whole log)\n");
    return 2;
  }
  const std::size_t effective_threads = jsoncdn::stats::resolve_threads(threads);

  std::ofstream quarantine_stream;
  std::optional<logs::StreamQuarantine> quarantine;
  if (!flags.quarantine_path.empty()) {
    quarantine_stream.open(flags.quarantine_path);
    if (!quarantine_stream) {
      std::fprintf(stderr, "error: cannot open quarantine file: %s\n",
                   flags.quarantine_path.c_str());
      return 2;
    }
    quarantine.emplace(quarantine_stream);
  }
  logs::IngestOptions options;
  options.mode =
      flags.strict ? logs::ParseMode::kStrict : logs::ParseMode::kPermissive;
  options.quarantine = quarantine ? &*quarantine : nullptr;

  // A v2 chunk store under --streaming never materializes the table: the
  // shard reader feeds the study chunk by chunk, out of core.
  if (streaming && logs::detect_log_format(path) == logs::LogFormat::kJlogV2) {
    try {
      shard::ShardReader reader(path, max_memory);
      if (reader.row_count() == 0) {
        std::fprintf(stderr,
                     "error: no records ingested from %s (empty or fully "
                     "malformed log)\n",
                     path.c_str());
        return 1;
      }
      const int rc =
          run_streaming_v2(reader, path, periodicity, chunk_size, permutations,
                           detector, effective_threads, window, use_zone_maps);
      if (rc != 0) return rc;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 1;
    }
    if (assert_max_rss > 0 && !check_max_rss(assert_max_rss)) return 1;
    return 0;
  }

  // Single ingest for every other mode, dispatched on the leading magic:
  // zero-copy TSV parse into the columnar table, or a direct binary load
  // (v1 image, or v2 materialized through its chunk reader).
  logs::IngestReport report;
  logs::LogTable table;
  try {
    table = shard::load_table_auto(path, options, &report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  if (!check_ingest(report, flags, path)) return 1;

  if (streaming) {
    const int rc = run_streaming(table, path, periodicity, chunk_size,
                                 permutations, detector, effective_threads,
                                 window);
    if (rc != 0) return rc;
    if (assert_max_rss > 0 && !check_max_rss(assert_max_rss)) return 1;
    return 0;
  }

  table.sort_by_time();
  const auto json_indices = table.json_rows();
  const logs::TableView full(table);
  const logs::TableView json(table, json_indices);
  std::printf("loaded %zu records (%zu JSON) from %s\n", table.size(),
              json.size(), path.c_str());
  std::printf("domains: %zu, objects: %zu, clients: %zu\n\n",
              table.distinct_domains(), table.distinct_objects(),
              table.distinct_clients());

  if (characterize) {
    std::fputs(core::render_source(
                   core::characterize_source(json, effective_threads))
                   .c_str(),
               stdout);
    std::printf("\n");
    std::fputs(core::render_headline(
                   core::characterize_methods(json, effective_threads),
                   core::characterize_cacheability(json, effective_threads),
                   core::compare_sizes(full, effective_threads))
                   .c_str(),
               stdout);
    std::printf("\n");
    // Without an external categorization service, group the heatmap by
    // registrable domain prefix (the synthetic logs encode the industry in
    // the hostname; real logs would plug a categorization database in here).
    const core::IndustryLookup lookup = [](std::string_view domain) {
      const auto dot = domain.find('.');
      const auto dash = domain.find('-');
      if (dot != std::string_view::npos && dash != std::string_view::npos &&
          dash > dot) {
        return std::string(domain.substr(dot + 1, dash - dot - 1));
      }
      return std::string("other");
    };
    const auto domains =
        core::domain_cacheability(json, lookup, effective_threads);
    std::fputs(core::render_heatmap(core::cacheability_heatmap(domains))
                   .c_str(),
               stdout);
    std::printf("\n");
    // Empty string (and so no output) on an error-free log.
    const auto status_block = core::render_status(
        core::characterize_status(full, effective_threads));
    if (!status_block.empty()) {
      std::fputs(status_block.c_str(), stdout);
      std::printf("\n");
    }
  }

  if (periodicity) {
    core::PeriodicityConfig config;
    config.detector.permutations = permutations;
    config.strategy = detector;
    config.threads = effective_threads;
    const auto report = core::analyze_periodicity(json, config);
    std::fputs(core::render_periodicity_summary(report).c_str(), stdout);
    std::fputs(core::render_period_histogram(report.object_periods).c_str(),
               stdout);
    std::fputs(
        core::render_periodic_client_cdf(report.periodic_client_shares)
            .c_str(),
        stdout);
    std::printf("\n");
  }

  if (ngram) {
    std::vector<core::NgramAccuracy> rows;
    for (const bool clustered : {true, false}) {
      core::NgramEvalConfig config;
      config.clustered = clustered;
      config.threads = effective_threads;
      rows.push_back(core::evaluate_ngram(json, config));
    }
    std::fputs(core::render_ngram_table(rows).c_str(), stdout);
  }
  if (assert_max_rss > 0 && !check_max_rss(assert_max_rss)) return 1;
  return 0;
}
