#include "core/study.h"

#include <unordered_map>

namespace jsoncdn::core {

StudyResult run_study(const StudyConfig& config) {
  workload::WorkloadGenerator generator(config.workload);
  auto workload = generator.generate();

  cdn::CdnNetwork network(generator.catalog().objects(), config.network);
  StudyResult result;
  result.dataset = network.run(workload.events);
  result.delivery = network.total_metrics();
  result.truth = std::move(workload.truth);
  result.json = result.dataset.json_only();

  if (config.run_characterization) {
    result.source = characterize_source(result.json);
    result.methods = characterize_methods(result.json);
    result.cacheability = characterize_cacheability(result.json);
    result.sizes = compare_sizes(result.dataset);

    // Industry lookup from the catalog ground truth (the stand-in for the
    // commercial categorization service the paper uses).
    std::unordered_map<std::string, std::string> industry;
    for (const auto& d : generator.catalog().domains()) {
      industry.emplace(d.name, std::string(to_string(d.industry)));
    }
    const IndustryLookup lookup = [&industry](std::string_view domain) {
      const auto it = industry.find(std::string(domain));
      return it == industry.end() ? std::string("Unknown") : it->second;
    };
    result.domains = domain_cacheability(result.json, lookup);
    result.heatmap = cacheability_heatmap(result.domains);
  }

  if (config.run_periodicity) {
    result.periodicity = analyze_periodicity(result.json, config.periodicity);
  }

  for (const auto& ngram_config : config.ngram_configs) {
    result.ngram.push_back(evaluate_ngram(result.json, ngram_config));
  }
  return result;
}

}  // namespace jsoncdn::core
