#include <gtest/gtest.h>

#include "cdn/edge.h"
#include "cdn/network.h"
#include "cdn/origin.h"

namespace jsoncdn::cdn {
namespace {

// Minimal catalog: one cacheable object, one uncacheable, one upload target.
class EdgeFixture : public ::testing::Test {
 protected:
  EdgeFixture()
      : origin_(catalog_, OriginParams{}),
        anonymizer_(123),
        edge_(0, origin_, anonymizer_, EdgeParams{}) {}

  void SetUp() override {
    workload::ObjectSpec cacheable;
    cacheable.url = "https://d.example/cacheable";
    cacheable.domain = "d.example";
    cacheable.content = http::ContentClass::kJson;
    cacheable.content_type = "application/json";
    cacheable.cacheable = true;
    cacheable.ttl_seconds = 60.0;
    cacheable.body_bytes = 1000;
    catalog_.add(cacheable);

    workload::ObjectSpec dynamic;
    dynamic.url = "https://d.example/dynamic";
    dynamic.domain = "d.example";
    dynamic.content_type = "application/json";
    dynamic.cacheable = false;
    dynamic.body_bytes = 500;
    catalog_.add(dynamic);
  }

  static workload::RequestEvent request(const std::string& url, double t,
                                        http::Method m = http::Method::kGet) {
    workload::RequestEvent ev;
    ev.time = t;
    ev.client_address = "10.1.2.3";
    ev.user_agent = "TestApp/1.0";
    ev.method = m;
    ev.url = url;
    if (http::is_upload(m)) ev.request_bytes = 64;
    return ev;
  }

  workload::ObjectCatalog catalog_;
  Origin origin_;
  logs::Anonymizer anonymizer_;
  EdgeServer edge_;
};

TEST_F(EdgeFixture, FirstGetMissesThenHits) {
  const auto r1 = edge_.handle(request("https://d.example/cacheable", 0.0));
  EXPECT_EQ(r1.cache_status, logs::CacheStatus::kMiss);
  EXPECT_EQ(r1.status, 200);
  EXPECT_EQ(r1.response_bytes, 1000u);
  const auto r2 = edge_.handle(request("https://d.example/cacheable", 1.0));
  EXPECT_EQ(r2.cache_status, logs::CacheStatus::kHit);
  EXPECT_EQ(edge_.metrics().hits(), 1u);
  EXPECT_EQ(edge_.metrics().misses(), 1u);
}

TEST_F(EdgeFixture, HitIsFasterThanMiss) {
  const auto r1 = edge_.handle(request("https://d.example/cacheable", 0.0));
  const auto r2 = edge_.handle(request("https://d.example/cacheable", 1.0));
  (void)r1;
  (void)r2;
  const auto& latencies = edge_.metrics().latencies();
  ASSERT_EQ(latencies.size(), 2u);
  EXPECT_GT(latencies[0], latencies[1]);
}

TEST_F(EdgeFixture, TtlExpiryCausesRefetch) {
  (void)edge_.handle(request("https://d.example/cacheable", 0.0));
  const auto r = edge_.handle(request("https://d.example/cacheable", 61.0));
  EXPECT_EQ(r.cache_status, logs::CacheStatus::kMiss);
}

TEST_F(EdgeFixture, UncacheableTunnelsEveryTime) {
  for (double t : {0.0, 1.0, 2.0}) {
    const auto r = edge_.handle(request("https://d.example/dynamic", t));
    EXPECT_EQ(r.cache_status, logs::CacheStatus::kNotCacheable);
  }
  EXPECT_EQ(edge_.metrics().uncacheable(), 3u);
  EXPECT_EQ(edge_.metrics().hits(), 0u);
}

TEST_F(EdgeFixture, UploadsNeverCached) {
  const auto r1 = edge_.handle(
      request("https://d.example/cacheable", 0.0, http::Method::kPost));
  EXPECT_EQ(r1.cache_status, logs::CacheStatus::kNotCacheable);
  EXPECT_EQ(r1.request_bytes, 64u);
  // A subsequent GET still misses: the POST must not have primed the cache.
  const auto r2 = edge_.handle(request("https://d.example/cacheable", 1.0));
  EXPECT_EQ(r2.cache_status, logs::CacheStatus::kMiss);
}

TEST_F(EdgeFixture, UnknownUrlIs404Uncacheable) {
  const auto r = edge_.handle(request("https://d.example/missing", 0.0));
  EXPECT_EQ(r.status, 404);
  EXPECT_EQ(r.cache_status, logs::CacheStatus::kNotCacheable);
  EXPECT_EQ(r.response_bytes, 0u);
}

TEST_F(EdgeFixture, LogRecordCarriesAnonymizedClientAndMetadata) {
  const auto r = edge_.handle(request("https://d.example/cacheable", 5.5));
  EXPECT_EQ(r.client_id, anonymizer_.pseudonym("10.1.2.3"));
  EXPECT_EQ(r.user_agent, "TestApp/1.0");
  EXPECT_EQ(r.domain, "d.example");
  EXPECT_EQ(r.content_type, "application/json");
  EXPECT_DOUBLE_EQ(r.timestamp, 5.5);
  EXPECT_EQ(r.edge_id, 0u);
}

// Static prefetch policy: always suggests one fixed URL.
class FixedPolicy final : public PrefetchPolicy {
 public:
  explicit FixedPolicy(std::string url) : url_(std::move(url)) {}
  std::vector<std::string> candidates(const logs::LogRecord&) override {
    return {url_};
  }

 private:
  std::string url_;
};

TEST_F(EdgeFixture, PrefetchWarmsCacheAndCountsUseful) {
  FixedPolicy policy("https://d.example/cacheable");
  // Serving the dynamic object triggers a prefetch of the cacheable one.
  (void)edge_.handle(request("https://d.example/dynamic", 0.0), &policy);
  EXPECT_EQ(edge_.metrics().prefetches_issued(), 1u);
  const auto r = edge_.handle(request("https://d.example/cacheable", 1.0));
  EXPECT_EQ(r.cache_status, logs::CacheStatus::kHit);
  EXPECT_EQ(edge_.metrics().useful_prefetches(), 1u);
  EXPECT_DOUBLE_EQ(edge_.metrics().prefetch_waste(), 0.0);
}

TEST_F(EdgeFixture, PrefetchSkipsUncacheableAndUnknown) {
  FixedPolicy dynamic_policy("https://d.example/dynamic");
  (void)edge_.handle(request("https://d.example/cacheable", 0.0),
                     &dynamic_policy);
  FixedPolicy missing_policy("https://d.example/missing");
  (void)edge_.handle(request("https://d.example/cacheable", 1.0),
                     &missing_policy);
  EXPECT_EQ(edge_.metrics().prefetches_issued(), 0u);
}

TEST_F(EdgeFixture, PrefetchDoesNotRefetchCachedObject) {
  FixedPolicy policy("https://d.example/cacheable");
  (void)edge_.handle(request("https://d.example/cacheable", 0.0));  // now cached
  const auto before = origin_.fetch_count();
  (void)edge_.handle(request("https://d.example/dynamic", 1.0), &policy);
  // Only the dynamic request itself should have touched origin.
  EXPECT_EQ(origin_.fetch_count(), before + 1);
}

TEST(Origin, LatencyIncludesRttProcessingAndTransfer) {
  workload::ObjectCatalog catalog;
  workload::ObjectSpec obj;
  obj.url = "https://d/x";
  obj.body_bytes = 5'000'000;
  catalog.add(obj);
  OriginParams params;
  params.rtt_seconds = 0.08;
  params.processing_seconds = 0.005;
  params.bandwidth_bytes_per_s = 5e6;
  Origin origin(catalog, params);
  const auto result = origin.fetch("https://d/x");
  ASSERT_NE(result.object, nullptr);
  EXPECT_NEAR(result.latency_seconds, 0.08 + 0.005 + 1.0, 1e-9);
  EXPECT_EQ(origin.bytes_served(), 5'000'000u);
}

TEST(Origin, NotFoundStillCostsRoundTrip) {
  workload::ObjectCatalog catalog;
  Origin origin(catalog, OriginParams{});
  const auto result = origin.fetch("https://d/missing");
  EXPECT_EQ(result.object, nullptr);
  EXPECT_GT(result.latency_seconds, 0.0);
}

TEST(Origin, RejectsBadParams) {
  workload::ObjectCatalog catalog;
  OriginParams params;
  params.bandwidth_bytes_per_s = 0.0;
  EXPECT_THROW(Origin(catalog, params), std::invalid_argument);
}

}  // namespace
}  // namespace jsoncdn::cdn
