// jsoncdn-generate — produce a synthetic CDN edge log file.
//
//   jsoncdn-generate [--scenario short|long] [--scale S] [--seed N]
//                    [--out FILE] [--json-only] [--ground-truth FILE]
//                    [--jlog FILE]
//                    [--fault-rate F] [--fault-seed N] [--fault-outages N]
//
// Writes the TSV log format (logs/csv.h) that jsoncdn-analyze consumes, so
// the full pipeline can be driven from the shell exactly like the paper's:
// collect logs on the edge, analyze offline.
//
// --jlog additionally writes the columnar binary sidecar (logs/jlog.h) of
// the same records; jsoncdn-analyze loads it directly, skipping the TSV
// parse entirely. --jlog-v2 writes the compressed chunk store instead
// (shard/format.h) — smaller on disk, and analyzable out of core with
// jsoncdn-analyze --streaming; --jlog-chunk-rows tunes its chunk geometry.
//
// --ground-truth additionally writes the oracle sidecar (oracle/ground_truth.h)
// holding the generator's labels keyed the way the log keys clients, so
// jsoncdn-validate can score the analyses against known truth.
//
// --fault-rate enables deterministic origin fault injection: F is the total
// per-request fault probability, split across errors, timeouts, truncated
// bodies, and latency spikes. The fault seed defaults to JSONCDN_FAULT_SEED
// (else the workload seed), so a fixed seed reproduces the incident
// byte-for-byte — logs, resilience counters, and breaker timeline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cdn/network.h"
#include "faults/plan.h"
#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "oracle/ground_truth.h"
#include "shard/writer.h"
#include "workload/scenario.h"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: jsoncdn-generate [--scenario NAME] [--list-scenarios]\n"
               "                        [--hostile-share H] (0..1 override "
               "of the scenario's hostile share)\n"
               "                        [--scale S]\n"
               "                        [--seed N] [--out FILE] [--json-only]\n"
               "                        [--ground-truth FILE] (oracle "
               "sidecar)\n"
               "                        [--jlog FILE]       (columnar binary "
               "sidecar)\n"
               "                        [--jlog-v2 FILE]    (compressed chunk "
               "store sidecar)\n"
               "                        [--jlog-chunk-rows N] (v2 rows per "
               "chunk, default 65536)\n"
               "                        [--fault-rate F]    (0..1, default 0)\n"
               "                        [--fault-seed N]    (default: "
               "JSONCDN_FAULT_SEED, else --seed)\n"
               "                        [--fault-outages N] (outage windows "
               "per origin)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;

  std::string scenario = "short-term";
  double hostile_share = -1.0;
  double scale = 0.005;
  std::uint64_t seed = 42;
  std::string out_path = "jsoncdn.log";
  std::string truth_path;
  std::string jlog_path;
  std::string jlog_v2_path;
  std::uint32_t jlog_chunk_rows = 65536;
  bool json_only = false;
  double fault_rate = 0.0;
  std::optional<std::uint64_t> fault_seed;
  std::size_t fault_outages = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario = next();
    } else if (arg == "--list-scenarios") {
      for (const auto& info : workload::scenario_registry()) {
        std::fprintf(stdout, "%-12s %s\n", info.name.c_str(),
                     info.summary.c_str());
      }
      return 0;
    } else if (arg == "--hostile-share") {
      hostile_share = std::atof(next());
      if (hostile_share < 0.0 || hostile_share >= 1.0) {
        std::fprintf(stderr, "--hostile-share must be in [0, 1)\n");
        return 2;
      }
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--ground-truth") {
      truth_path = next();
    } else if (arg == "--jlog") {
      jlog_path = next();
    } else if (arg == "--jlog-v2") {
      jlog_v2_path = next();
    } else if (arg == "--jlog-chunk-rows") {
      jlog_chunk_rows = static_cast<std::uint32_t>(std::atoll(next()));
      if (jlog_chunk_rows == 0) {
        std::fprintf(stderr, "--jlog-chunk-rows must be positive\n");
        return 2;
      }
    } else if (arg == "--json-only") {
      json_only = true;
    } else if (arg == "--fault-rate") {
      fault_rate = std::atof(next());
      if (fault_rate < 0.0 || fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be in [0, 1]\n");
        return 2;
      }
    } else if (arg == "--fault-seed") {
      fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (arg == "--fault-outages") {
      fault_outages = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  // Historical aliases for the two paper scenarios.
  if (scenario == "short") scenario = "short-term";
  if (scenario == "long") scenario = "long-term";

  workload::GeneratorConfig config;
  try {
    config = workload::scenario_by_name(scenario, scale, seed);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s (try --list-scenarios)\n", e.what());
    return 2;
  }
  if (hostile_share >= 0.0) config.hostile.hostile_share = hostile_share;

  std::fprintf(stderr,
               "generating %s scenario at scale %g (seed %llu, hostile "
               "share %g)\n",
               scenario.c_str(), scale, static_cast<unsigned long long>(seed),
               config.hostile.hostile_share);
  workload::WorkloadGenerator generator(config);
  const auto workload = generator.generate();

  cdn::NetworkParams params;
  if (fault_rate > 0.0 || fault_outages > 0) {
    auto& faults = params.faults;
    faults.enabled = true;
    faults.seed = fault_seed ? *fault_seed : faults::env_fault_seed(seed);
    // Split the composite rate across the fault kinds in rough proportion to
    // real origin incidents: mostly 5xx, some hangs, a few partial bodies
    // and slowdowns.
    faults.error_rate = 0.6 * fault_rate;
    faults.timeout_rate = 0.2 * fault_rate;
    faults.truncate_rate = 0.1 * fault_rate;
    faults.latency_spike_rate = 0.1 * fault_rate;
    faults.outages_per_origin = fault_outages;
    double horizon = 0.0;
    for (const auto& event : workload.events)
      horizon = std::max(horizon, event.time);
    faults.horizon_seconds = horizon + 1.0;
    std::fprintf(stderr,
                 "fault injection on: rate %g, seed %llu, %zu outages/origin\n",
                 fault_rate, static_cast<unsigned long long>(faults.seed),
                 fault_outages);
  }
  cdn::CdnNetwork network(generator.catalog().objects(), params);
  auto dataset = network.run(workload.events);
  if (json_only) dataset = dataset.json_only();
  const auto resilience = network.total_resilience();
  if (resilience.any_activity()) {
    std::fputs(cdn::render_resilience(resilience).c_str(), stderr);
  }

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  logs::LogWriter writer(out);
  for (const auto& record : dataset.records()) writer.write(record);
  std::fprintf(stderr, "wrote %llu records to %s\n",
               static_cast<unsigned long long>(writer.written()),
               out_path.c_str());

  if (!jlog_path.empty()) {
    try {
      logs::write_jlog(jlog_path, logs::LogTable::from_dataset(dataset));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "jlog: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "wrote columnar sidecar to %s\n", jlog_path.c_str());
  }

  if (!jlog_v2_path.empty()) {
    try {
      shard::ShardWriterOptions v2_options;
      v2_options.chunk_rows = jlog_chunk_rows;
      shard::ShardWriter writer(jlog_v2_path, v2_options);
      for (const auto& record : dataset.records()) writer.append(record);
      const auto stats = writer.finalize();
      std::fprintf(stderr,
                   "wrote chunk store sidecar to %s (%u chunks, %.1f MiB)\n",
                   jlog_v2_path.c_str(), stats.chunks,
                   static_cast<double>(stats.file_bytes) / (1 << 20));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "jlog-v2: %s\n", e.what());
      return 1;
    }
  }

  if (!truth_path.empty()) {
    // The sidecar speaks the log's identity vocabulary: client addresses are
    // pseudonymized through the same anonymizer the network logged with.
    try {
      const auto sidecar = oracle::make_sidecar(workload.truth, config,
                                                network.anonymizer());
      oracle::write_truth_file(truth_path, sidecar);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ground truth: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr,
                 "wrote ground truth to %s (%zu clients, %zu periodic flows, "
                 "%zu sessions, %zu attackers)\n",
                 truth_path.c_str(), workload.truth.clients.size(),
                 workload.truth.periodic_flows.size(),
                 workload.truth.sessions.size(),
                 workload.truth.attackers.size());
  }
  return 0;
}
