// Cache-capacity ablation: edge hit ratio vs cache size for JSON-heavy
// traffic. Context for the paper's cacheability findings — even for the
// ~45% of JSON traffic that is cacheable, the achievable offload depends on
// how much of the working set the edge can hold.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "workload/scenario.h"

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.004;
  bench::print_header("Ablation: edge cache capacity",
                      "hit ratio vs cache size (short-term)");

  workload::WorkloadGenerator generator(
      workload::short_term_scenario(scale, 77));
  const auto workload = generator.generate();

  std::printf("  %-14s %-16s %-14s %-12s\n", "capacity", "cacheable-hit",
              "overall-hit", "evictions");
  for (const double mb : {0.25, 1.0, 4.0, 16.0, 64.0, 512.0}) {
    cdn::NetworkParams params;
    params.edge.cache_capacity_bytes =
        static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
    cdn::CdnNetwork network(generator.catalog().objects(), params);
    (void)network.run(workload.events);
    const auto m = network.total_metrics();
    std::uint64_t evictions = 0;
    for (const auto& edge : network.edges())
      evictions += edge.cache().stats().evictions;
    std::printf("  %8.2f MB    %-16.4f %-14.4f %-12llu\n", mb,
                m.cacheable_hit_ratio(), m.overall_hit_ratio(),
                static_cast<unsigned long long>(evictions));
  }
  // Conditional revalidation: same capacity, stale entries validated with a
  // 304 instead of re-transferred.
  std::printf("\n  revalidation (64 MB cache):\n");
  std::printf("  %-14s %-16s %-16s %-14s\n", "mode", "cacheable-hit",
              "origin-MB", "refresh-hits");
  for (const bool reval : {false, true}) {
    cdn::NetworkParams params;
    params.edge.cache_capacity_bytes = 64ULL * 1024 * 1024;
    params.edge.enable_revalidation = reval;
    cdn::CdnNetwork network(generator.catalog().objects(), params);
    (void)network.run(workload.events);
    const auto m = network.total_metrics();
    std::printf("  %-14s %-16.4f %-16.1f %-14llu\n",
                reval ? "revalidate" : "refetch", m.cacheable_hit_ratio(),
                static_cast<double>(network.origin().bytes_served()) /
                    (1024.0 * 1024.0),
                static_cast<unsigned long long>(m.refresh_hits()));
  }
  bench::note("");
  bench::note("expected shape: hit ratio rises with capacity and saturates "
              "once the");
  bench::note("popular working set fits; evictions vanish at the plateau; "
              "revalidation");
  bench::note("converts expiry misses into 304s, cutting origin bytes.");
  return 0;
}
