file(REMOVE_RECURSE
  "CMakeFiles/headline_stats.dir/headline_stats.cpp.o"
  "CMakeFiles/headline_stats.dir/headline_stats.cpp.o.d"
  "headline_stats"
  "headline_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
