// On-disk layout of the `.jlog` v2 tiered chunk store (magic "jlogcdn2").
//
// The file is write-once, append-friendly, and readable with one mmap:
//
//   magic            8 bytes  "jlogcdn2"
//   chunk payloads   back-to-back compressed column chunks (see chunk.h)
//   footer           written last, once every dictionary is known:
//     6 dictionaries     v1 encoding (count, lengths, bytes), in order
//                        url, client_id, user_agent, domain, content_type,
//                        client_key — symbols are file-global
//     chunk_target_rows  u32   rows per full chunk (last chunk may be short)
//     chunk_count        u32
//     chunk directory    chunk_count × ChunkMeta (fixed 92 bytes each):
//                          offset u64 · payload_bytes u64 · checksum u64 ·
//                          row_count u32 · min_ts f64 · max_ts f64 ·
//                          6 × (min_sym u32, max_sym u32)
//     row_count          u64   total rows (must equal the directory sum)
//   trailer          fixed 24 bytes closing the file:
//     footer_offset      u64   byte offset of the footer
//     footer_checksum    u64   fnv1a64 over the footer bytes
//     tail magic         8 bytes "jlogend2"
//
// Dictionaries and the chunk directory live in the *footer* so a writer can
// stream chunks without knowing the final dictionaries up front — writer
// memory is the dictionaries plus one pending chunk, never the table. A
// reader seeks to the trailer, verifies the footer checksum, loads
// dictionaries + directory, and then touches only the chunk payloads its
// zone-map predicate selects.
//
// Every byte of the file is covered by some check: the leading and tail
// magics, each payload's fnv1a64 in the (checksummed) directory, and the
// footer checksum — a single flipped bit anywhere fails the read.
//
// The ChunkMeta zone map is what predicate pushdown evaluates without
// decoding: a chunk can be skipped when its [min_ts, max_ts] misses the
// time window or when no wanted symbol falls inside a keyed column's
// [min_sym, max_sym]. Pruning is conservative — a surviving chunk may still
// contain zero matching rows; the row-level predicate re-filters after
// decode, so pruned and unpruned scans select identical rows.
#pragma once

#include <array>
#include <cstdint>

#include "stats/hash.h"

namespace jsoncdn::shard {

// Tail magic closing a complete v2 file ("jlogcdn2" opens it; see
// logs::jlog_v2_magic()).
inline constexpr std::string_view kJlogV2TailMagic = "jlogend2";

// Trailer: footer_offset u64 + footer_checksum u64 + tail magic.
inline constexpr std::size_t kTrailerBytes = 8 + 8 + 8;

// Indices into ChunkMeta::symbols — the dictionary order every .jlog
// version shares.
inline constexpr std::size_t kSymUrl = 0;
inline constexpr std::size_t kSymClientId = 1;
inline constexpr std::size_t kSymUserAgent = 2;
inline constexpr std::size_t kSymDomain = 3;
inline constexpr std::size_t kSymContentType = 4;
inline constexpr std::size_t kSymClientKey = 5;
inline constexpr std::size_t kSymbolColumns = 6;

// Inclusive symbol range of one keyed column within a chunk; {0, 0} for an
// empty chunk.
struct SymbolRange {
  std::uint32_t min_sym = 0;
  std::uint32_t max_sym = 0;
};

// One chunk-directory entry: where the payload lives plus the zone map the
// scan prunes against. Serialized field-by-field (fixed 92 bytes), never by
// struct memcpy — padding must not reach the file.
struct ChunkMeta {
  std::uint64_t offset = 0;         // payload start, from file byte 0
  std::uint64_t payload_bytes = 0;  // encoded length
  std::uint64_t checksum = 0;       // fnv1a64 over the payload bytes
  std::uint32_t row_count = 0;
  double min_ts = 0.0;  // zone map: inclusive timestamp range
  double max_ts = 0.0;
  std::array<SymbolRange, kSymbolColumns> symbols{};
};

inline constexpr std::size_t kChunkMetaBytes =
    8 + 8 + 8 + 4 + 8 + 8 + kSymbolColumns * 8;

// Payload checksum — FNV-1a 64 like every other stable hash in the repo.
[[nodiscard]] inline std::uint64_t payload_checksum(
    std::string_view bytes) noexcept {
  return stats::fnv1a64(bytes);
}

}  // namespace jsoncdn::shard
