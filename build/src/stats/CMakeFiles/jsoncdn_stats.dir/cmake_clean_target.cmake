file(REMOVE_RECURSE
  "libjsoncdn_stats.a"
)
