// Scenario presets mirroring the paper's two datasets (Table 2):
//
//   Short-term: 25 M logs, 10 minutes, ~5 K domains  — the whole network,
//               used for the §4 characterization (Fig. 3, Fig. 4, sizes).
//   Long-term:  10 M logs, 24 hours,   ~170 domains — three Seattle vantage
//               points, used for the §5 pattern analyses (Fig. 5/6, Table 3).
//
// `scale` shrinks log volume and domain count proportionally so the full
// pipeline runs on a laptop; 1.0 would reproduce paper-sized datasets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "workload/generator.h"

namespace jsoncdn::workload {

// Wide, short window over a large customer base. scale=0.01 yields roughly
// 250 K logs over ~50 domains-per-industry.
[[nodiscard]] GeneratorConfig short_term_scenario(double scale = 0.01,
                                                  std::uint64_t seed = 42);

// Narrow, day-long window over a small customer base, rich in periodic and
// app-session traffic. scale=0.01 yields roughly 100 K logs.
[[nodiscard]] GeneratorConfig long_term_scenario(double scale = 0.01,
                                                 std::uint64_t seed = 43);

// --- Hostile presets (workload/adversary.h) ------------------------------
// Each is the short-term scenario plus one attack class at a default
// hostile share; override `config.hostile.hostile_share` to sweep it.

// Bot scrapers walking domain URL spaces at machine cadence (default 25%
// hostile share).
[[nodiscard]] GeneratorConfig scraper_scenario(double scale = 0.01,
                                               std::uint64_t seed = 44);
// Credential-stuffing POST bursts against auth endpoints (default 20%).
[[nodiscard]] GeneratorConfig stuffing_scenario(double scale = 0.01,
                                                std::uint64_t seed = 45);
// Correlated flash-crowd spike of real browser sessions, with a scraper
// underlay — the headline overload-protection experiment (default 35%).
[[nodiscard]] GeneratorConfig flash_crowd_scenario(double scale = 0.01,
                                                   std::uint64_t seed = 46);
// All four attack classes at their default weights (default 30%).
[[nodiscard]] GeneratorConfig hostile_mix_scenario(double scale = 0.01,
                                                   std::uint64_t seed = 47);

// --- Hostile-periodic presets (detector stress; workload/generator.h
// PeriodicStress) -----------------------------------------------------------
// Each is the long-term scenario with boosted periodic shares plus one
// stress regime the binned ACF+FFT detector is weak on. They feed the
// oracle's detector matrix (oracle/detector_matrix.h).

// Heavy timing jitter: per-flow sigma uniform in [5%, 30%] of the period.
[[nodiscard]] GeneratorConfig periodic_jitter_scenario(double scale = 0.01,
                                                       std::uint64_t seed = 48);
// Unsynchronized clocks: each cycle stretches by 0.3%.
[[nodiscard]] GeneratorConfig periodic_drift_scenario(double scale = 0.01,
                                                      std::uint64_t seed = 49);
// Random dropout: 45% of ticks never happen.
[[nodiscard]] GeneratorConfig periodic_dropout_scenario(
    double scale = 0.01, std::uint64_t seed = 50);
// Overlapping multi-period telemetry: every periodic client runs a second,
// non-harmonic flow to the same object.
[[nodiscard]] GeneratorConfig periodic_multi_scenario(double scale = 0.01,
                                                      std::uint64_t seed = 51);
// Diurnally modulated pollers: dropout swells to 85% mid-cycle.
[[nodiscard]] GeneratorConfig periodic_diurnal_scenario(
    double scale = 0.01, std::uint64_t seed = 52);

// --- Name registry (CLI `--scenario`) ------------------------------------
struct ScenarioInfo {
  std::string name;
  std::string summary;
};
// Every named scenario, in listing order.
[[nodiscard]] const std::vector<ScenarioInfo>& scenario_registry();
// Builds a named scenario; throws std::invalid_argument on unknown names.
[[nodiscard]] GeneratorConfig scenario_by_name(std::string_view name,
                                               double scale,
                                               std::uint64_t seed);

}  // namespace jsoncdn::workload
