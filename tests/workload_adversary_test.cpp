// Adversarial workload injection: deterministic hostile traffic classes
// layered on the benign population, with per-attacker ground truth. The
// tests pin the contracts the overload experiment and the oracle rely on:
// determinism, the hostile-share budget, address disjointness, and truth
// bookkeeping that matches the emitted events exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <unordered_map>

#include "workload/adversary.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace jsoncdn::workload {
namespace {

GeneratorConfig small_config(double hostile_share) {
  GeneratorConfig config;
  config.seed = 7;
  config.duration_seconds = 600.0;
  config.n_clients = 300;
  config.catalog.domains_per_industry = 2;
  config.hostile.hostile_share = hostile_share;
  return config;
}

TEST(AttackKindTest, RoundTripsThroughStrings) {
  for (std::size_t i = 0; i < kAttackKindCount; ++i) {
    const auto kind = static_cast<AttackKind>(i);
    AttackKind parsed{};
    ASSERT_TRUE(parse_attack_kind(to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  AttackKind parsed{};
  EXPECT_FALSE(parse_attack_kind("ddos", parsed));
  EXPECT_FALSE(parse_attack_kind("", parsed));
}

TEST(AdversaryTest, ZeroShareIsCompletelyInert) {
  const WorkloadGenerator benign(small_config(0.0));
  const auto workload = benign.generate();
  EXPECT_TRUE(workload.truth.attackers.empty());
  EXPECT_EQ(workload.truth.hostile_events, 0u);
  for (const auto& event : workload.events) {
    EXPECT_NE(event.client_address.rfind("203.0.", 0), 0u)
        << "attacker address in a benign workload: " << event.client_address;
  }
}

TEST(AdversaryTest, SameSeedReplaysBitIdentically) {
  const auto run = [] {
    const WorkloadGenerator generator(small_config(0.30));
    return generator.generate();
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.events[i].time, b.events[i].time);
    EXPECT_EQ(a.events[i].client_address, b.events[i].client_address);
    EXPECT_EQ(a.events[i].url, b.events[i].url);
  }
  ASSERT_EQ(a.truth.attackers.size(), b.truth.attackers.size());
  for (std::size_t i = 0; i < a.truth.attackers.size(); ++i) {
    EXPECT_EQ(a.truth.attackers[i].client_address,
              b.truth.attackers[i].client_address);
    EXPECT_EQ(a.truth.attackers[i].kind, b.truth.attackers[i].kind);
    EXPECT_EQ(a.truth.attackers[i].request_count,
              b.truth.attackers[i].request_count);
  }
}

TEST(AdversaryTest, HostileShareApproximatesTarget) {
  const WorkloadGenerator generator(small_config(0.30));
  const auto workload = generator.generate();
  ASSERT_GT(workload.truth.hostile_events, 0u);
  const double share = static_cast<double>(workload.truth.hostile_events) /
                       static_cast<double>(workload.events.size());
  // The budget is integral and per-class generators overshoot by at most one
  // attacker's tail, so the realized share lands near the target.
  EXPECT_GT(share, 0.20);
  EXPECT_LT(share, 0.45);
}

TEST(AdversaryTest, AttackerAddressesDisjointFromBenign) {
  const WorkloadGenerator generator(small_config(0.30));
  const auto workload = generator.generate();
  ASSERT_FALSE(workload.truth.attackers.empty());

  std::unordered_map<std::string, AttackKind> attacker_of;
  for (const auto& a : workload.truth.attackers) {
    EXPECT_EQ(a.client_address.rfind("203.0.", 0), 0u)
        << "attacker outside the TEST-NET range: " << a.client_address;
    attacker_of.emplace(a.client_address, a.kind);
  }
  for (const auto& c : workload.truth.clients) {
    EXPECT_EQ(attacker_of.count(c.address), 0u)
        << "benign client shares an attacker address: " << c.address;
  }

  // The client-address join labels every event unambiguously, and the truth
  // counts match the emitted events per attacker.
  std::unordered_map<std::string, std::size_t> events_of;
  std::size_t hostile_seen = 0;
  for (const auto& event : workload.events) {
    if (attacker_of.count(event.client_address) != 0) {
      ++events_of[event.client_address];
      ++hostile_seen;
    }
  }
  EXPECT_EQ(hostile_seen, workload.truth.hostile_events);
  for (const auto& a : workload.truth.attackers) {
    EXPECT_EQ(events_of[a.client_address], a.request_count)
        << "truth request_count mismatch for " << a.client_address;
  }
}

TEST(AdversaryTest, EventsStayInsideTheWindow) {
  const auto config = small_config(0.35);
  const WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  for (const auto& event : workload.events) {
    EXPECT_GE(event.time, 0.0);
    EXPECT_LT(event.time, config.duration_seconds);
  }
  // The merged stream is still time-sorted (the analyses assume it).
  EXPECT_TRUE(std::is_sorted(
      workload.events.begin(), workload.events.end(),
      [](const auto& a, const auto& b) { return a.time < b.time; }));
}

TEST(AdversaryTest, ClassWeightsSelectAttackClasses) {
  auto config = small_config(0.25);
  config.hostile.scraper_weight = 1.0;
  config.hostile.stuffing_weight = 0.0;
  config.hostile.flash_crowd_weight = 0.0;
  config.hostile.oversized_weight = 0.0;
  const WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  ASSERT_FALSE(workload.truth.attackers.empty());
  for (const auto& a : workload.truth.attackers) {
    EXPECT_EQ(a.kind, AttackKind::kScraper);
  }
}

TEST(AdversaryTest, StuffingTargetsAuthEndpointWithPosts) {
  auto config = small_config(0.20);
  config.hostile.scraper_weight = 0.0;
  config.hostile.stuffing_weight = 1.0;
  config.hostile.flash_crowd_weight = 0.0;
  config.hostile.oversized_weight = 0.0;
  const WorkloadGenerator generator(config);
  const auto workload = generator.generate();

  std::unordered_map<std::string, AttackKind> attacker_of;
  for (const auto& a : workload.truth.attackers) {
    EXPECT_EQ(a.kind, AttackKind::kStuffing);
    attacker_of.emplace(a.client_address, a.kind);
  }
  ASSERT_FALSE(attacker_of.empty());
  std::size_t stuffing_events = 0;
  for (const auto& event : workload.events) {
    if (attacker_of.count(event.client_address) == 0) continue;
    ++stuffing_events;
    EXPECT_EQ(event.method, http::Method::kPost);
    EXPECT_NE(event.url.find("/api/v1/login"), std::string::npos);
    EXPECT_GT(event.request_bytes, 0u);
  }
  EXPECT_GT(stuffing_events, 0u);
}

TEST(AdversaryTest, FlashCrowdConcentratesAroundTheSpike) {
  auto config = small_config(0.35);
  config.hostile.scraper_weight = 0.0;
  config.hostile.stuffing_weight = 0.0;
  config.hostile.flash_crowd_weight = 1.0;
  config.hostile.oversized_weight = 0.0;
  const WorkloadGenerator generator(config);
  const auto workload = generator.generate();

  std::unordered_map<std::string, AttackKind> attacker_of;
  for (const auto& a : workload.truth.attackers) {
    EXPECT_EQ(a.kind, AttackKind::kFlashCrowd);
    attacker_of.emplace(a.client_address, a.kind);
  }
  std::vector<double> times;
  for (const auto& event : workload.events) {
    if (attacker_of.count(event.client_address) != 0)
      times.push_back(event.time);
  }
  ASSERT_GT(times.size(), 100u);
  // Most of the crowd lands within a few stddevs of the spike moment; the
  // middle 90% of arrivals must span far less than the full window.
  std::sort(times.begin(), times.end());
  const double lo = times[times.size() / 20];
  const double hi = times[times.size() - 1 - times.size() / 20];
  EXPECT_LT(hi - lo, 0.6 * config.duration_seconds);
}

TEST(ScenarioRegistryTest, ListsAndResolvesEveryScenario) {
  const auto& registry = scenario_registry();
  ASSERT_GE(registry.size(), 6u);
  for (const auto& info : registry) {
    const auto config = scenario_by_name(info.name, 0.001, 9);
    EXPECT_EQ(config.seed, 9u) << info.name;
  }
  EXPECT_THROW((void)scenario_by_name("no-such", 1.0, 1),
               std::invalid_argument);
}

TEST(ScenarioRegistryTest, HostileScenariosCarryHostileShares) {
  EXPECT_DOUBLE_EQ(scenario_by_name("short-term", 0.01, 1)
                       .hostile.hostile_share, 0.0);
  EXPECT_GT(scenario_by_name("scraper", 0.01, 1).hostile.hostile_share, 0.0);
  EXPECT_GT(scenario_by_name("stuffing", 0.01, 1).hostile.hostile_share, 0.0);
  EXPECT_GT(scenario_by_name("flash-crowd", 0.01, 1).hostile.hostile_share,
            0.0);
  EXPECT_GT(scenario_by_name("hostile-mix", 0.01, 1).hostile.hostile_share,
            0.0);
}

}  // namespace
}  // namespace jsoncdn::workload
