// Columnar, dictionary-encoded log storage — the high-throughput counterpart
// of the row-oriented Dataset.
//
// A LogTable keeps each LogRecord field in its own contiguous column;
// the five string fields (url, client_id, user_agent, domain, content_type)
// are dictionary-encoded through per-column StringInterners, so a column
// holds one u32 symbol per row and each distinct string exists once. A sixth
// dictionary interns the paper's *client key* — the "client_id|user_agent"
// pair that defines a client (§5.1) — so the flow-grouping hot paths key on
// a precomputed u32 symbol instead of concatenating strings per record, and
// the packed (client_sym << 32 | url_sym) u64 identifies a client-object
// flow in one integer compare.
//
// Determinism contract: a LogTable built by appending the records of a
// Dataset in order contains the same rows in the same order; symbols are
// assigned in first-seen order; sort_by_time() applies the same stable
// timestamp sort as Dataset::sort_by_time(). Every analysis that consumes a
// TableView instead of a Dataset produces bit-identical reports (covered by
// logs_columnar_equivalence_test).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "http/method.h"
#include "logs/dataset.h"
#include "logs/interner.h"
#include "logs/record.h"

namespace jsoncdn::shard {
class ChunkCodec;  // shard/chunk.h — fills columns directly, like JlogReader
}  // namespace jsoncdn::shard

namespace jsoncdn::logs {

class LogTable {
 public:
  using RowIndex = std::uint32_t;
  using Symbol = StringInterner::Symbol;

  LogTable() = default;
  LogTable(const LogTable&) = delete;
  LogTable& operator=(const LogTable&) = delete;
  LogTable(LogTable&&) = default;
  LogTable& operator=(LogTable&&) = default;

  [[nodiscard]] std::size_t size() const noexcept { return ts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ts_.empty(); }
  void reserve(std::size_t rows);

  // Drops every row but keeps the dictionaries (and the client-pair cache,
  // whose symbols stay valid) and the columns' capacity. This is what makes
  // a LogTable reusable as a decode scratch: the shard reader loads the
  // file dictionaries once, then overwrites the row columns chunk by chunk
  // without reallocating or re-interning anything.
  void clear_rows() noexcept;

  // Appends one row from individual (still-escaped-free) field values; the
  // zero-copy ingest path calls this straight off string_views into the
  // mapped file. Returns the new row's index.
  RowIndex append_fields(double timestamp, std::string_view client_id,
                         std::string_view user_agent, http::Method method,
                         std::string_view url, std::string_view domain,
                         std::string_view content_type, int status,
                         std::uint64_t response_bytes,
                         std::uint64_t request_bytes, CacheStatus cache_status,
                         std::uint32_t edge_id);

  void append(const LogRecord& record);

  // ---- Column access ------------------------------------------------------
  [[nodiscard]] std::span<const double> timestamps() const noexcept {
    return ts_;
  }
  [[nodiscard]] double timestamp(RowIndex i) const noexcept { return ts_[i]; }
  [[nodiscard]] http::Method method(RowIndex i) const noexcept {
    return method_[i];
  }
  [[nodiscard]] int status(RowIndex i) const noexcept { return status_[i]; }
  [[nodiscard]] std::uint64_t response_bytes(RowIndex i) const noexcept {
    return resp_bytes_[i];
  }
  [[nodiscard]] std::uint64_t request_bytes(RowIndex i) const noexcept {
    return req_bytes_[i];
  }
  [[nodiscard]] CacheStatus cache_status(RowIndex i) const noexcept {
    return cache_[i];
  }
  [[nodiscard]] std::uint32_t edge_id(RowIndex i) const noexcept {
    return edge_[i];
  }

  [[nodiscard]] Symbol url_sym(RowIndex i) const noexcept { return url_[i]; }
  [[nodiscard]] Symbol client_id_sym(RowIndex i) const noexcept {
    return client_id_[i];
  }
  [[nodiscard]] Symbol user_agent_sym(RowIndex i) const noexcept {
    return ua_[i];
  }
  [[nodiscard]] Symbol domain_sym(RowIndex i) const noexcept {
    return domain_[i];
  }
  [[nodiscard]] Symbol content_type_sym(RowIndex i) const noexcept {
    return ctype_[i];
  }
  // Symbol of the interned "client_id|user_agent" pair.
  [[nodiscard]] Symbol client_sym(RowIndex i) const noexcept {
    return client_[i];
  }

  // Client-object flow identity as one integer (§5.1's client-object flow).
  [[nodiscard]] std::uint64_t flow_key(RowIndex i) const noexcept {
    return (static_cast<std::uint64_t>(client_[i]) << 32) |
           static_cast<std::uint64_t>(url_[i]);
  }

  [[nodiscard]] std::string_view url(RowIndex i) const noexcept {
    return url_dict_.view(url_[i]);
  }
  [[nodiscard]] std::string_view client_id(RowIndex i) const noexcept {
    return client_id_dict_.view(client_id_[i]);
  }
  [[nodiscard]] std::string_view user_agent(RowIndex i) const noexcept {
    return ua_dict_.view(ua_[i]);
  }
  [[nodiscard]] std::string_view domain(RowIndex i) const noexcept {
    return domain_dict_.view(domain_[i]);
  }
  [[nodiscard]] std::string_view content_type(RowIndex i) const noexcept {
    return ctype_dict_.view(ctype_[i]);
  }
  // The "client_id|user_agent" string LogRecord::client_key() would build —
  // already materialized in the client dictionary, so reading it is free.
  [[nodiscard]] std::string_view client_key(RowIndex i) const noexcept {
    return client_dict_.view(client_[i]);
  }

  [[nodiscard]] const StringInterner& urls() const noexcept {
    return url_dict_;
  }
  [[nodiscard]] const StringInterner& client_ids() const noexcept {
    return client_id_dict_;
  }
  [[nodiscard]] const StringInterner& user_agents() const noexcept {
    return ua_dict_;
  }
  [[nodiscard]] const StringInterner& domains() const noexcept {
    return domain_dict_;
  }
  [[nodiscard]] const StringInterner& content_types() const noexcept {
    return ctype_dict_;
  }
  [[nodiscard]] const StringInterner& client_keys() const noexcept {
    return client_dict_;
  }

  // ---- Raw column spans (vectorized kernel inputs) ------------------------
  // The stats/kernels layer walks whole columns (optionally gathered through
  // a TableView's row indices) instead of calling the per-row accessors.
  [[nodiscard]] std::span<const http::Method> methods() const noexcept {
    return method_;
  }
  [[nodiscard]] std::span<const CacheStatus> cache_statuses() const noexcept {
    return cache_;
  }
  [[nodiscard]] std::span<const std::int32_t> statuses() const noexcept {
    return status_;
  }
  [[nodiscard]] std::span<const Symbol> url_syms() const noexcept {
    return url_;
  }
  [[nodiscard]] std::span<const Symbol> user_agent_syms() const noexcept {
    return ua_;
  }

  // ---- Row proxy ----------------------------------------------------------
  // A borrowed view of one row with LogRecord-shaped accessors, so call
  // sites migrate incrementally without materializing strings.
  class Row {
   public:
    Row(const LogTable& table, RowIndex index) noexcept
        : table_(&table), index_(index) {}

    [[nodiscard]] RowIndex index() const noexcept { return index_; }
    [[nodiscard]] double timestamp() const noexcept {
      return table_->timestamp(index_);
    }
    [[nodiscard]] std::string_view client_id() const noexcept {
      return table_->client_id(index_);
    }
    [[nodiscard]] std::string_view user_agent() const noexcept {
      return table_->user_agent(index_);
    }
    [[nodiscard]] http::Method method() const noexcept {
      return table_->method(index_);
    }
    [[nodiscard]] std::string_view url() const noexcept {
      return table_->url(index_);
    }
    [[nodiscard]] std::string_view domain() const noexcept {
      return table_->domain(index_);
    }
    [[nodiscard]] std::string_view content_type() const noexcept {
      return table_->content_type(index_);
    }
    [[nodiscard]] int status() const noexcept {
      return table_->status(index_);
    }
    [[nodiscard]] std::uint64_t response_bytes() const noexcept {
      return table_->response_bytes(index_);
    }
    [[nodiscard]] std::uint64_t request_bytes() const noexcept {
      return table_->request_bytes(index_);
    }
    [[nodiscard]] CacheStatus cache_status() const noexcept {
      return table_->cache_status(index_);
    }
    [[nodiscard]] std::uint32_t edge_id() const noexcept {
      return table_->edge_id(index_);
    }
    [[nodiscard]] std::string_view object_key() const noexcept {
      return table_->url(index_);
    }
    // Zero-allocation counterpart of LogRecord::client_key().
    [[nodiscard]] std::string_view client_key() const noexcept {
      return table_->client_key(index_);
    }
    // Materializes a legacy LogRecord (copies the strings).
    [[nodiscard]] LogRecord materialize() const;

   private:
    const LogTable* table_;
    RowIndex index_;
  };

  [[nodiscard]] Row row(RowIndex i) const noexcept { return Row(*this, i); }
  [[nodiscard]] LogRecord record(RowIndex i) const {
    return row(i).materialize();
  }

  // ---- Conversions & maintenance ------------------------------------------
  [[nodiscard]] static LogTable from_dataset(const Dataset& dataset);
  [[nodiscard]] Dataset to_dataset() const;

  // Stable ascending-time sort of all columns — the same permutation
  // Dataset::sort_by_time() applies to its records.
  void sort_by_time();

  // Row indices whose response content-type is application/json (the
  // paper's JSON filter). Content classification runs once per distinct
  // content-type symbol, not per row.
  [[nodiscard]] std::vector<RowIndex> json_rows() const;

  // [min, max] timestamp; {0, 0} when empty.
  [[nodiscard]] std::pair<double, double> time_range() const;

  // Exact distinct counts — free: every dictionary entry is referenced by
  // at least one row.
  [[nodiscard]] std::size_t distinct_domains() const noexcept {
    return domain_dict_.size();
  }
  [[nodiscard]] std::size_t distinct_objects() const noexcept {
    return url_dict_.size();
  }
  [[nodiscard]] std::size_t distinct_clients() const noexcept {
    return client_dict_.size();
  }

  // Approximate heap footprint (columns + dictionaries) — comparable to the
  // per-record string capacities a Dataset carries.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

 private:
  std::vector<double> ts_;
  std::vector<http::Method> method_;
  std::vector<std::int32_t> status_;
  std::vector<std::uint64_t> resp_bytes_;
  std::vector<std::uint64_t> req_bytes_;
  std::vector<CacheStatus> cache_;
  std::vector<std::uint32_t> edge_;

  std::vector<Symbol> url_;
  std::vector<Symbol> client_id_;
  std::vector<Symbol> ua_;
  std::vector<Symbol> domain_;
  std::vector<Symbol> ctype_;
  std::vector<Symbol> client_;

  StringInterner url_dict_;
  StringInterner client_id_dict_;
  StringInterner ua_dict_;
  StringInterner domain_dict_;
  StringInterner ctype_dict_;
  StringInterner client_dict_;

  // (client_id_sym, ua_sym) -> client_sym: skips rebuilding the "id|ua"
  // string for every row of an already-seen pair.
  std::unordered_map<std::uint64_t, Symbol> client_pair_cache_;
  std::string key_scratch_;  // reused buffer for new pairs

  friend class JlogReader;  // the .jlog v1 reader fills columns directly
  friend class jsoncdn::shard::ChunkCodec;  // the v2 chunk codec, likewise
};

// Non-owning selection of rows of one LogTable, in selection order. The
// common cases are "all rows" and "the JSON-only rows"; analyses take a
// TableView so the filtered and unfiltered paths share one implementation.
// The view does not own the row-index storage — keep the vector alive.
class TableView {
 public:
  // All rows, in table order.
  explicit TableView(const LogTable& table) noexcept
      : table_(&table), all_(true) {}
  // The given rows, in span order.
  TableView(const LogTable& table,
            std::span<const LogTable::RowIndex> rows) noexcept
      : table_(&table), rows_(rows), all_(false) {}

  [[nodiscard]] const LogTable& table() const noexcept { return *table_; }
  [[nodiscard]] std::size_t size() const noexcept {
    return all_ ? table_->size() : rows_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  // Table row index of the k-th selected row.
  [[nodiscard]] LogTable::RowIndex operator[](std::size_t k) const noexcept {
    return all_ ? static_cast<LogTable::RowIndex>(k) : rows_[k];
  }
  // Row-index gather array for kernel calls: nullptr when the view selects
  // every table row in order (kernels then walk columns directly, offset by
  // the shard's begin).
  [[nodiscard]] const LogTable::RowIndex* row_indices() const noexcept {
    return all_ ? nullptr : rows_.data();
  }

 private:
  const LogTable* table_;
  std::span<const LogTable::RowIndex> rows_;
  bool all_;
};

// Columnar flow extraction: groups rows by url symbol (objects) and packed
// flow key (client-object subflows) instead of hashing strings per record.
// Output is identical to the Dataset overloads on the same rows — flows
// sorted by url, client subflows sorted by client key, same filter
// semantics — so every downstream analysis is unchanged.
[[nodiscard]] std::vector<ObjectFlow> extract_object_flows(
    const TableView& view, const FlowFilter& filter = {});

[[nodiscard]] std::vector<ClientFlow> extract_client_flows(
    const TableView& view, std::size_t min_requests = 2);

}  // namespace jsoncdn::logs
