# Empty compiler generated dependencies file for fig3_device_breakdown.
# This may be replaced when dependencies are built.
