#include "stats/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace jsoncdn::stats {

namespace {

bool env_disables_simd() noexcept {
  const char* v = std::getenv("JSONCDN_DISABLE_SIMD");
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") != 0;
}

bool detect_simd_available() noexcept {
#if defined(JSONCDN_SIMD_AVX2)
  // The SIMD translation unit was built for AVX2; only dispatch to it on
  // hardware that has it (the rest of the binary stays baseline x86-64).
  return __builtin_cpu_supports("avx2") != 0;
#elif defined(JSONCDN_SIMD_GENERIC)
  // The SIMD translation unit only uses the baseline ISA's vector forms
  // (auto-vectorized for the default target), so it runs anywhere.
  return true;
#else
  return false;
#endif
}

// 0 = uninitialized, 1 = scalar, 2 = simd. One-time lazy init keeps the
// per-kernel-call cost to a single relaxed load.
std::atomic<int> g_mode{0};

int init_mode() noexcept {
  const int mode = (detect_simd_available() && !env_disables_simd()) ? 2 : 1;
  g_mode.store(mode, std::memory_order_relaxed);
  return mode;
}

}  // namespace

bool simd_available() noexcept {
  static const bool available = detect_simd_available();
  return available;
}

bool simd_enabled() noexcept {
  int mode = g_mode.load(std::memory_order_relaxed);
  if (mode == 0) mode = init_mode();
  return mode == 2;
}

void set_simd_enabled(bool on) noexcept {
  g_mode.store(on && simd_available() ? 2 : 1, std::memory_order_relaxed);
}

const char* simd_isa() noexcept {
  if (!simd_enabled()) return "scalar";
#if defined(JSONCDN_SIMD_AVX2)
  return "avx2";
#else
  return "vector";
#endif
}

}  // namespace jsoncdn::stats
