#include "core/anomaly.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/period_detector.h"
#include "stats/timeseries.h"

namespace jsoncdn::core {

SequenceAnomaly score_sequence(const NgramModel& model,
                               std::span<const std::string> tokens,
                               std::size_t k, double max_surprisal_bits,
                               double novel_surprisal_bits) {
  if (k == 0) throw std::invalid_argument("score_sequence: k == 0");
  SequenceAnomaly out;
  if (tokens.size() < 2) return out;
  double surprisal_sum = 0.0;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::size_t ctx = std::min(model.max_context(), i);
    const std::span<const std::string> history(&tokens[i - ctx], ctx);
    const auto predictions = model.predict(history, k);
    ++out.transitions;
    double score = 0.0;
    for (const auto& p : predictions) {
      if (p.token == tokens[i]) {
        score = p.score;
        break;
      }
    }
    if (score <= 0.0) {
      ++out.unpredicted;
      if (model.knows(tokens[i])) {
        surprisal_sum += max_surprisal_bits;
      } else {
        ++out.novel;
        surprisal_sum += novel_surprisal_bits;
      }
    } else {
      surprisal_sum +=
          std::min(max_surprisal_bits, -std::log2(std::min(1.0, score)));
    }
  }
  out.unpredicted_share =
      static_cast<double>(out.unpredicted) /
      static_cast<double>(out.transitions);
  out.mean_surprisal = surprisal_sum / static_cast<double>(out.transitions);
  return out;
}

PeriodAnomaly check_period(std::span<const double> times,
                           double expected_period,
                           double relative_tolerance) {
  if (expected_period <= 0.0)
    throw std::invalid_argument("check_period: expected_period <= 0");
  if (relative_tolerance <= 0.0)
    throw std::invalid_argument("check_period: tolerance <= 0");
  PeriodAnomaly out;
  const auto gaps = stats::interarrival_gaps(times);
  out.gaps = gaps.size();
  for (const double g : gaps) {
    // A gap of ~m periods (missed ticks) is not deviant; compare against
    // the nearest multiple of the expected period.
    const double m = std::max(1.0, std::round(g / expected_period));
    if (std::abs(g - m * expected_period) >
        relative_tolerance * expected_period) {
      ++out.deviant_gaps;
    }
  }
  if (out.gaps > 0) {
    out.deviant_share =
        static_cast<double>(out.deviant_gaps) / static_cast<double>(out.gaps);
  }
  return out;
}

PeriodVerdict check_period(std::span<const double> times,
                           const PeriodDetector& detector, stats::Rng& rng,
                           double relative_tolerance) {
  if (relative_tolerance <= 0.0)
    throw std::invalid_argument("check_period: tolerance <= 0");
  PeriodVerdict out;
  const auto detection = detector.detect(times, rng);
  if (!detection.periodic) return out;
  out.detected = true;
  out.period_seconds = detection.period_seconds;
  out.anomaly = check_period(times, detection.period_seconds,
                             relative_tolerance);
  return out;
}

}  // namespace jsoncdn::core
