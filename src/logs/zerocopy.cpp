#include "logs/zerocopy.h"

#include <fstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define JSONCDN_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace jsoncdn::logs {

namespace {

// Reads the whole file into a heap buffer — the portable fallback.
char* read_whole_file(const std::string& path, std::size_t& size) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open log file: " + path);
  const auto end = in.tellg();
  if (end < 0) throw std::runtime_error("cannot open log file: " + path);
  size = static_cast<std::size_t>(end);
  char* buf = new char[size > 0 ? size : 1];
  in.seekg(0);
  if (size > 0 && !in.read(buf, static_cast<std::streamsize>(size))) {
    delete[] buf;
    throw std::runtime_error("cannot read log file: " + path);
  }
  return buf;
}

}  // namespace

MappedFile::MappedFile(const std::string& path) {
#if JSONCDN_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("cannot open log file: " + path);
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
    if (p != MAP_FAILED) {
      ::close(fd);
      data_ = static_cast<const char*>(p);
      size_ = static_cast<std::size_t>(st.st_size);
      mapped_ = true;
      // The parse is one sequential pass; let readahead run ahead of it.
      ::madvise(p, size_, MADV_SEQUENTIAL);
      return;
    }
  }
  ::close(fd);
#endif
  std::size_t size = 0;
  data_ = read_whole_file(path, size);
  size_ = size;
  mapped_ = false;
}

MappedFile::~MappedFile() {
#if JSONCDN_HAVE_MMAP
  if (mapped_) {
    ::munmap(const_cast<char*>(data_), size_);
    return;
  }
#endif
  delete[] data_;
}

namespace {

// True when unescaping could change the field: only '%' starts an escape
// (unescape_field is the exact inverse of the writer — no '+' folding).
// Fields without that byte intern directly off the mapped file — the common
// case by far.
inline bool needs_unescape(std::string_view field) noexcept {
  return field.find('%') != std::string_view::npos;
}

inline std::string_view unescape_into(std::string_view field,
                                      std::string& scratch) {
  if (!needs_unescape(field)) return field;
  scratch = unescape_field(field);
  return scratch;
}

}  // namespace

LogTable read_log_table(const std::string& path, const IngestOptions& options,
                        IngestReport* report) {
  constexpr std::string_view kMagic = "#jsoncdn-log";
  MappedFile file(path);

  LogTable table;
  table.reserve(estimate_record_count(path));

  IngestReport local;
  std::string reason;
  LineFields f;
  // One scratch buffer per string column — views returned by unescape_into
  // must all stay alive until append_fields has interned them.
  std::string s_client, s_ua, s_url, s_domain, s_ctype;
  std::uint64_t line_number = 0;

  const std::string_view data = file.view();
  std::size_t pos = 0;
  // Same line decomposition as std::getline: '\n'-separated, a final line
  // without trailing newline still counts, a trailing '\n' adds no line.
  while (pos < data.size()) {
    const auto nl = data.find('\n', pos);
    std::string_view line = nl == std::string_view::npos
                                ? data.substr(pos)
                                : data.substr(pos, nl - pos);
    pos = nl == std::string_view::npos ? data.size() : nl + 1;

    ++line_number;
    ++local.lines;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    if (line.front() == '#') {
      if (line.substr(0, kMagic.size()) == kMagic) {
        local.header_seen = true;
        // A wrong version means every following line may parse *wrong*
        // rather than fail — fatal in both modes.
        if (line != log_header()) {
          throw std::runtime_error(
              "unsupported log header at line " + std::to_string(line_number) +
              " (expected \"" + std::string(log_header()) + "\")");
        }
      }
      continue;
    }
    if (parse_line(line, f, &reason)) {
      ++local.records;
      table.append_fields(f.timestamp, unescape_into(f.client_id, s_client),
                          unescape_into(f.user_agent, s_ua), f.method,
                          unescape_into(f.url, s_url),
                          unescape_into(f.domain, s_domain),
                          unescape_into(f.content_type, s_ctype), f.status,
                          f.response_bytes, f.request_bytes, f.cache_status,
                          f.edge_id);
      continue;
    }
    if (options.mode == ParseMode::kStrict) {
      throw std::runtime_error("malformed log line " +
                               std::to_string(line_number) + ": " + reason);
    }
    ++local.malformed;
    ++local.reasons[reason];
    if (options.quarantine != nullptr) {
      options.quarantine->quarantine(line_number, line, reason);
    }
    if (local.malformed > options.max_malformed) {
      throw std::runtime_error(
          "ingest error budget exceeded: " + std::to_string(local.malformed) +
          " malformed lines (limit " + std::to_string(options.max_malformed) +
          ")");
    }
  }
  if (report != nullptr) *report = std::move(local);
  return table;
}

}  // namespace jsoncdn::logs
