#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace jsoncdn::stats {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double sum = std::accumulate(sorted.begin(), sorted.end(), 0.0);
  s.mean = sum / static_cast<double>(sorted.size());
  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(sorted.size()));
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.p50 = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p90 = percentile_sorted(sorted, 0.90);
  s.p99 = percentile_sorted(sorted, 0.99);
  return s;
}

void RunningMoments::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningMoments::merge(const RunningMoments& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
}

double RunningMoments::variance() const noexcept {
  return n_ == 0 ? 0.0 : std::max(0.0, m2_ / static_cast<double>(n_));
}

double RunningMoments::stddev() const noexcept {
  return std::sqrt(variance());
}

double RunningMoments::coefficient_of_variation() const noexcept {
  return mean() == 0.0 ? 0.0 : stddev() / mean();
}

double percentile(std::span<const double> values, double q) {
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, q);
}

double percentile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty())
    throw std::invalid_argument("percentile: empty sample");
  if (q < 0.0 || q > 1.0)
    throw std::invalid_argument("percentile: q outside [0,1]");
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: requires lo < hi");
  width_ = (hi - lo) / static_cast<double>(bins);
  counts_.assign(bins, 0);
}

void Histogram::add(double value) { add_n(value, 1); }

void Histogram::add_n(double value, std::uint64_t n) {
  total_ += n;
  if (value < lo_) {
    underflow_ += n;
    return;
  }
  const auto bin = static_cast<std::size_t>((value - lo_) / width_);
  if (bin >= counts_.size()) {
    overflow_ += n;
    return;
  }
  counts_[bin] += n;
}

std::uint64_t Histogram::count(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::count");
  return counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  if (bin >= counts_.size()) throw std::out_of_range("Histogram::bin_lo");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::bin_center(std::size_t bin) const {
  return bin_lo(bin) + width_ / 2.0;
}

std::size_t Histogram::mode_bin() const {
  if (total_ == underflow_ + overflow_)
    throw std::logic_error("Histogram::mode_bin: no in-range observations");
  return static_cast<std::size_t>(
      std::max_element(counts_.begin(), counts_.end()) - counts_.begin());
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> values)
    : sorted_(std::move(values)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  return percentile_sorted(sorted_, q);
}

std::string ascii_bar_chart(
    const std::vector<std::pair<std::string, double>>& rows,
    std::size_t width) {
  double max_v = 0.0;
  std::size_t max_label = 0;
  for (const auto& [label, v] : rows) {
    max_v = std::max(max_v, v);
    max_label = std::max(max_label, label.size());
  }
  std::ostringstream out;
  for (const auto& [label, v] : rows) {
    const auto bar_len =
        max_v > 0.0 ? static_cast<std::size_t>(std::lround(
                          v / max_v * static_cast<double>(width)))
                    : 0;
    out << "  " << std::left << std::setw(static_cast<int>(max_label + 2))
        << label << std::string(bar_len, '#') << ' ' << std::setprecision(4)
        << v << '\n';
  }
  return out.str();
}

}  // namespace jsoncdn::stats
