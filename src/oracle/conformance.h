// Conformance harness: generate → serve → analyze → score, against bands.
//
// One conformance *case* is a seeded workload pushed through the CDN and
// every analysis family, scored against its ground-truth sidecar, plus the
// differential checks the pipeline guarantees by contract:
//   - 1-thread and N-thread analysis runs must be bit-identical;
//   - the streaming study's exact counters (methods, cacheability, status,
//     per-device requests) must equal the batch aggregations.
// The runner sweeps cases over seeds and collects every band violation as a
// human-readable failure string — an empty list is a pass, so a test can
// EXPECT the list empty and print it verbatim on failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cdn/metrics.h"
#include "cdn/overload.h"
#include "core/periodicity.h"
#include "logs/dataset.h"
#include "oracle/ground_truth.h"
#include "oracle/scorer.h"

namespace jsoncdn::oracle {

// Acceptance bands. Defaults are the paper-band invariants ISSUE'd for the
// clean long-window workload: the detector must recover labelled periodic
// flows nearly perfectly, marginals must sit close to the configured
// populations, and the predictor must clear a usefulness floor.
struct ConformanceTolerances {
  double min_detector_precision = 0.90;
  double min_detector_recall = 0.90;
  double min_detector_f1 = 0.90;
  double max_period_rel_error = 0.15;  // worst true-positive period error
  double max_device_l1 = 0.20;
  double max_class_l1 = 0.25;
  double max_industry_l1 = 0.40;
  double min_measured_top1 = 0.05;   // raw-URL accuracy@1 on the edge log
  double min_skyline_top1 = 0.05;    // same protocol on the true chains
  // The log path may *gain* accuracy over the session skyline (periodic
  // machine flows are trivially predictable), but it must not lose more
  // than this at K=1.
  double max_skyline_gap_top1 = 0.50;
};

struct ConformanceConfig {
  std::vector<std::uint64_t> seeds = {1, 7, 1337};
  // Named scenario the sweep generates from (workload::scenario_by_name);
  // hostile scenarios exercise the detectors under adversarial load.
  std::string scenario = "long-term";
  // Overrides the scenario's hostile share when >= 0 (0 turns attacks off).
  double hostile_share = -1.0;
  // Workload shape: the scenario rescaled to a bounded window so a full
  // sweep stays test-sized. n_clients = 0 keeps the scenario's own client
  // count.
  double scale = 0.001;
  double duration_seconds = 2.0 * 3600.0;
  std::size_t n_clients = 600;
  // Thread counts swept by the determinism differential; the first entry is
  // the count used for scoring. 0 = auto.
  std::vector<std::size_t> thread_counts = {1, 0};
  bool check_streaming = true;
  std::size_t ngram_context = 1;
  // Period-detection strategy every periodicity analysis in the sweep runs
  // with (core/period_detector.h). The default keeps historical behaviour.
  core::DetectorStrategy detector = core::DetectorStrategy::kAcfFft;
  ConformanceTolerances tolerances;
};

// One generated workload, served through the CDN, with its sidecar.
struct GeneratedCase {
  std::uint64_t seed = 0;
  logs::Dataset dataset;       // full edge log
  logs::Dataset json;          // JSON-filtered view (the paper's input)
  TruthSidecar truth;
};

[[nodiscard]] GeneratedCase generate_case(std::uint64_t seed,
                                          const ConformanceConfig& config);

struct CaseResult {
  std::uint64_t seed = 0;
  DetectorScore detector;
  NgramScore ngram_raw;
  NgramScore ngram_clustered;
  MarginalScore marginals;
  bool thread_invariant = true;
  bool streaming_consistent = true;
  std::vector<std::string> failures;  // empty = within every band

  [[nodiscard]] bool passed() const noexcept { return failures.empty(); }
};

// Scores one prepared (log, sidecar) pair against the bands. `threads` is
// the analysis thread count (0 = auto). Differential checks are the
// sweep's job, not this function's.
[[nodiscard]] CaseResult score_case(const logs::Dataset& dataset,
                                    const logs::Dataset& json,
                                    const TruthSidecar& truth,
                                    std::uint64_t seed,
                                    const ConformanceConfig& config,
                                    std::size_t threads);

struct ConformanceReport {
  std::vector<CaseResult> cases;
  [[nodiscard]] bool all_passed() const noexcept;
  [[nodiscard]] std::size_t total_failures() const noexcept;
};

// The full sweep: every seed generated, scored, and differentially checked.
[[nodiscard]] ConformanceReport run_conformance(const ConformanceConfig& config);

// Plain-text renderings in the report.h house style.
[[nodiscard]] std::string render_case(const CaseResult& result);
[[nodiscard]] std::string render_conformance(const ConformanceReport& report);
// The EXPERIMENTS.md detector table: one row per seed with P/R/F1, period
// error, and marginal distances.
[[nodiscard]] std::string render_detector_table(const ConformanceReport& report);

// --- Overload-protection experiment ---------------------------------------
//
// The headline robustness claim: under a flash crowd with a scraper
// underlay, an edge with admission control + rate limiting + CoDel shedding
// keeps human-class p99 latency and hit ratio within bands, while the same
// workload through an unprotected (capacity-model-only) edge collapses.
// Both arms run the SAME workload events through identically-sized edges;
// only the protections differ.

struct OverloadExperimentConfig {
  std::uint64_t seed = 1;
  // Workload: the flash-crowd scenario (scraper underlay included).
  double scale = 0.004;
  double duration_seconds = 600.0;
  std::size_t n_clients = 0;      // 0 keeps the scenario's client count
  double hostile_share = -1.0;    // < 0 keeps the scenario default (0.35)
  // Edge sizing shared by both arms: capacity must sit above the benign
  // baseline but below the spike, or overload never materializes. At the
  // default scale the benign load is ~60 req/s per edge and the flash peak
  // ~250 req/s per edge; 2 workers at a 20 ms floor give 100 req/s.
  std::size_t concurrency = 2;
  double service_floor_seconds = 0.02;
  // Protection parameter sets for the two arms.
  cdn::OverloadParams protected_params = cdn::OverloadParams::protected_defaults();
  cdn::OverloadParams unprotected_params =
      cdn::OverloadParams::unprotected_defaults();

  // Bands the protected arm must hold...
  double max_human_p99_seconds = 0.40;
  double min_human_hit_ratio = 0.25;
  double max_human_rejected_share = 0.10;
  // ...and the collapse the unprotected arm must exhibit: its human p99
  // must exceed the protected arm's by at least this factor AND break the
  // protected band.
  double min_collapse_factor = 3.0;
};

// One arm's outcome (aggregated across edges).
struct OverloadArm {
  cdn::TwoClassDelivery classes;
  cdn::ResilienceMetrics resilience;
  double human_p99 = 0.0;
  double human_hit_ratio = 0.0;
  double human_rejected_share = 0.0;
  double machine_p99 = 0.0;
  double machine_rejected_share = 0.0;
};

struct OverloadExperiment {
  std::uint64_t seed = 0;
  OverloadArm protected_arm;
  OverloadArm unprotected_arm;
  std::vector<std::string> failures;  // empty = protected held, unprotected collapsed
  [[nodiscard]] bool passed() const noexcept { return failures.empty(); }
};

// Runs both arms and grades them against the bands.
[[nodiscard]] OverloadExperiment run_overload_experiment(
    const OverloadExperimentConfig& config);

// Plain-text and EXPERIMENTS.md-table renderings.
[[nodiscard]] std::string render_overload(const OverloadExperiment& experiment);
[[nodiscard]] std::string render_overload_table(
    const OverloadExperiment& experiment);

}  // namespace jsoncdn::oracle
