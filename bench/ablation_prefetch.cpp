// Prefetching ablation — the optimization Section 5.2 proposes but does not
// measure: ngram-driven prefetch at the edge, swept over the confidence
// threshold. Reports cache hit ratio, latency, and prefetch waste per
// setting against the no-prefetch baseline.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "core/prefetch.h"
#include "workload/generator.h"

namespace {

jsoncdn::workload::GeneratorConfig app_heavy(std::uint64_t seed,
                                             std::size_t n_clients) {
  jsoncdn::workload::GeneratorConfig config;
  config.seed = seed;
  config.catalog_seed = 777;
  config.duration_seconds = 3 * 3600.0;
  config.n_clients = n_clients;
  config.catalog.domains_per_industry = 2;
  config.shares = {0.75, 0.04, 0.03, 0.06, 0.02, 0.07, 0.03};
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const std::size_t n_clients =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 2000;
  bench::print_header("Ablation: ngram prefetching",
                      "hit ratio / latency vs confidence threshold");

  workload::WorkloadGenerator train_gen(app_heavy(601, n_clients));
  const auto train = train_gen.generate();
  cdn::CdnNetwork train_net(train_gen.catalog().objects(), {});
  const auto train_json = train_net.run(train.events).json_only();

  workload::WorkloadGenerator replay_gen(app_heavy(602, n_clients));
  const auto replay = replay_gen.generate();

  cdn::CdnNetwork baseline(train_gen.catalog().objects(), {});
  (void)baseline.run(replay.events);
  const auto base = baseline.total_metrics();
  std::printf("  baseline (no prefetch): hit ratio %.4f, p50 latency %.1f ms, "
              "origin share %.4f\n\n",
              base.cacheable_hit_ratio(),
              base.latency_summary().p50 * 1000.0, base.origin_share());

  std::printf("  %-12s %-10s %-12s %-12s %-12s %-10s\n", "min_score",
              "hit-ratio", "p50-ms", "prefetches", "waste", "origin");
  for (const double min_score : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    auto model = core::train_prefetch_model(train_json, /*context_len=*/2);
    core::PrefetcherParams params;
    params.min_score = min_score;
    core::NgramPrefetcher prefetcher(std::move(model), params);
    cdn::CdnNetwork network(train_gen.catalog().objects(), {});
    (void)network.run(replay.events, &prefetcher);
    const auto m = network.total_metrics();
    std::printf("  %-12.2f %-10.4f %-12.1f %-12llu %-12.3f %-10.4f\n",
                min_score, m.cacheable_hit_ratio(),
                m.latency_summary().p50 * 1000.0,
                static_cast<unsigned long long>(m.prefetches_issued()),
                m.prefetch_waste(), m.origin_share());
  }
  bench::note("");
  bench::note("expected shape: prefetching lifts hit ratio over baseline; "
              "aggressive");
  bench::note("thresholds trade waste (useless origin fetches) for reach.");
  return 0;
}
