// Streaming writer for the `.jlog` v2 chunk store (layout in format.h).
//
// The writer never holds the table: rows accumulate in one pending chunk
// (dictionaries are file-global and persist across chunks), each full chunk
// is compressed and flushed to disk, and finalize() closes the file with
// the footer (dictionaries + chunk directory) and trailer. Peak writer
// memory is the dictionaries plus chunk_rows rows — a 100M-record file
// streams through a few tens of MiB.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "logs/jlog.h"
#include "logs/record.h"
#include "logs/table.h"
#include "shard/format.h"

namespace jsoncdn::shard {

struct ShardWriterOptions {
  // Rows per full chunk (the last chunk may be short). The default matches
  // the streaming study's default --chunk-size, so an out-of-core scan over
  // the file reproduces the in-memory ingest geometry exactly.
  std::uint32_t chunk_rows = 65536;
};

struct ShardWriteStats {
  std::uint64_t rows = 0;
  std::uint32_t chunks = 0;
  std::uint64_t file_bytes = 0;     // total, incl. footer + trailer
  std::uint64_t payload_bytes = 0;  // compressed chunk payloads only
};

class ShardWriter {
 public:
  // Opens `path` for writing and emits the leading magic. Throws
  // std::runtime_error when the file cannot be created or chunk_rows is 0.
  explicit ShardWriter(const std::string& path, ShardWriterOptions options = {});

  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  // Appends one record; flushes a chunk whenever chunk_rows accumulate.
  void append(const logs::LogRecord& record);
  void append_fields(double timestamp, std::string_view client_id,
                     std::string_view user_agent, http::Method method,
                     std::string_view url, std::string_view domain,
                     std::string_view content_type, int status,
                     std::uint64_t response_bytes, std::uint64_t request_bytes,
                     logs::CacheStatus cache_status, std::uint32_t edge_id);

  // Appends every row of `table` (the v1 → v2 conversion path).
  void append(const logs::LogTable& table);

  // Flushes the pending chunk, writes footer + trailer, and closes the
  // file. Must be called exactly once; throws on write failure. A writer
  // destroyed without finalize() leaves a trailer-less (unreadable) file.
  ShardWriteStats finalize();

  [[nodiscard]] std::uint64_t rows_appended() const noexcept {
    return rows_total_ + pending_.size();
  }

 private:
  void flush_chunk();

  std::string path_;
  std::ofstream os_;
  logs::BinaryWriter out_;
  ShardWriterOptions options_;
  logs::LogTable pending_;  // rows of the open chunk; dicts are file-global
  std::vector<ChunkMeta> directory_;
  std::string payload_buf_;
  std::uint64_t rows_total_ = 0;
  std::uint64_t payload_total_ = 0;
  bool finalized_ = false;
};

// Convenience: writes the whole table as one v2 file.
ShardWriteStats write_jlog_v2(const std::string& path,
                              const logs::LogTable& table,
                              ShardWriterOptions options = {});

}  // namespace jsoncdn::shard
