file(REMOVE_RECURSE
  "CMakeFiles/fig4_cacheability_heatmap.dir/fig4_cacheability_heatmap.cpp.o"
  "CMakeFiles/fig4_cacheability_heatmap.dir/fig4_cacheability_heatmap.cpp.o.d"
  "fig4_cacheability_heatmap"
  "fig4_cacheability_heatmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cacheability_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
