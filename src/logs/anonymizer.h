// Client-address anonymization. The paper's logs carry "a client IP address
// that is hashed for anonymity"; we reproduce that with a salted 64-bit hash
// rendered as hex. The salt is per-study so identities cannot be joined
// across independently collected datasets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jsoncdn::logs {

class Anonymizer {
 public:
  explicit Anonymizer(std::uint64_t salt) : salt_(salt) {}

  // Deterministic pseudonym for an address: same input + salt -> same output.
  [[nodiscard]] std::string pseudonym(std::string_view client_address) const;

  [[nodiscard]] std::uint64_t salt() const noexcept { return salt_; }

 private:
  std::uint64_t salt_;
};

}  // namespace jsoncdn::logs
