// Google-benchmark microbenchmarks for the hot paths: FFT/ACF (periodicity
// inner loop), ngram training/prediction, edge cache operations, UA
// classification, URL parsing/clustering, and log (de)serialization.
#include <benchmark/benchmark.h>

#include "cdn/cache.h"
#include "core/ngram.h"
#include "core/periodicity.h"
#include "core/url_cluster.h"
#include "http/device_db.h"
#include "http/url.h"
#include "logs/csv.h"
#include "stats/autocorrelation.h"
#include "stats/fft.h"
#include "stats/rng.h"

namespace {

using namespace jsoncdn;

std::vector<double> random_signal(std::size_t n) {
  stats::Rng rng(n);
  std::vector<double> out(n);
  for (auto& v : out) v = rng.uniform(0.0, 2.0);
  return out;
}

void BM_FftReal(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::fft_real(signal));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FftReal)->RangeMultiplier(4)->Range(256, 16384)->Complexity();

void BM_SpectralAnalysis(benchmark::State& state) {
  const auto signal = random_signal(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::spectral_analysis(signal, signal.size() / 3));
  }
}
BENCHMARK(BM_SpectralAnalysis)->RangeMultiplier(4)->Range(256, 16384);

void BM_DetectPeriodicFlow(benchmark::State& state) {
  stats::Rng rng(7);
  std::vector<double> times;
  for (int i = 0; i < 40; ++i)
    times.push_back(60.0 * i + rng.normal(0.0, 0.4));
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(11);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPeriodicFlow);

void BM_DetectPoissonFlowEarlyExit(benchmark::State& state) {
  stats::Rng rng(8);
  std::vector<double> times;
  double t = 0.0;
  for (int i = 0; i < 40; ++i) {
    t += rng.exponential(1.0 / 60.0);
    times.push_back(t);
  }
  core::PeriodicityDetector detector({});
  for (auto _ : state) {
    stats::Rng prng(12);
    benchmark::DoNotOptimize(detector.detect(times, prng));
  }
}
BENCHMARK(BM_DetectPoissonFlowEarlyExit);

void BM_NgramObserve(benchmark::State& state) {
  std::vector<std::string> tokens;
  for (int i = 0; i < 64; ++i)
    tokens.push_back("https://h/api/v1/x/" + std::to_string(i % 12));
  for (auto _ : state) {
    core::NgramModel model(2);
    model.observe_sequence(tokens);
    benchmark::DoNotOptimize(model.observed_transitions());
  }
}
BENCHMARK(BM_NgramObserve);

void BM_NgramPredictTop10(benchmark::State& state) {
  core::NgramModel model(2);
  stats::Rng rng(5);
  std::vector<std::string> tokens;
  for (int i = 0; i < 5000; ++i) {
    tokens.push_back("https://h/api/v1/x/" +
                     std::to_string(rng.uniform_int(0, 50)));
  }
  model.observe_sequence(tokens);
  const std::vector<std::string> history = {tokens[100], tokens[101]};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(history, 10));
  }
}
BENCHMARK(BM_NgramPredictTop10);

void BM_CacheInsertLookup(benchmark::State& state) {
  cdn::LruCache cache(64ULL * 1024 * 1024);
  stats::Rng rng(3);
  std::vector<std::string> keys;
  for (int i = 0; i < 4096; ++i)
    keys.push_back("https://h/obj/" + std::to_string(i));
  std::size_t i = 0;
  double now = 0.0;
  for (auto _ : state) {
    now += 0.001;
    const auto& key = keys[i++ & 4095];
    if (!cache.lookup(key, now)) cache.insert(key, 20'000, 600.0, now);
  }
}
BENCHMARK(BM_CacheInsertLookup);

void BM_ClassifyDevice(benchmark::State& state) {
  constexpr std::string_view kUa =
      "Mozilla/5.0 (Linux; Android 9; SM-G960F) AppleWebKit/537.36 (KHTML, "
      "like Gecko) Chrome/76.0.3809.132 Mobile Safari/537.36";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::classify_device(kUa));
  }
}
BENCHMARK(BM_ClassifyDevice);

void BM_ParseUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(http::parse_url(kUrl));
  }
}
BENCHMARK(BM_ParseUrl);

void BM_ClusterUrl(benchmark::State& state) {
  constexpr std::string_view kUrl =
      "https://api.news-003.example/api/v1/article/18234?page=2&session="
      "a8f3bc2d91e04571";
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::cluster_url(kUrl));
  }
}
BENCHMARK(BM_ClusterUrl);

void BM_LogLineRoundTrip(benchmark::State& state) {
  logs::LogRecord record;
  record.timestamp = 1234.567;
  record.client_id = "deadbeefdeadbeef";
  record.user_agent = "NewsReader/5.2.1 (iPhone; iOS 12.4.1; Scale/3.00)";
  record.url = "https://api.news-003.example/api/v1/article/18234";
  record.domain = "api.news-003.example";
  record.content_type = "application/json; charset=utf-8";
  record.response_bytes = 2048;
  for (auto _ : state) {
    benchmark::DoNotOptimize(logs::from_line(logs::to_line(record)));
  }
}
BENCHMARK(BM_LogLineRoundTrip);

}  // namespace

BENCHMARK_MAIN();
