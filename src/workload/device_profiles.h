// Device / agent profiles: the user-agent corpus the synthetic population
// draws from, each carrying its ground-truth device class so detector
// accuracy can be scored. The corpus covers the classes the paper observes:
// native mobile apps (iOS + Android, several HTTP stacks), mobile browsers,
// desktop browsers, embedded devices (consoles, watches, TVs, IoT), generic
// HTTP libraries, and requests with a missing or garbage UA.
#pragma once

#include <string>
#include <vector>

#include "http/device_db.h"
#include "stats/rng.h"

namespace jsoncdn::workload {

struct DeviceProfile {
  std::string name;             // short label, e.g. "ios-news-app"
  std::string user_agent;       // UA template; "{v}" = version slot, "" = absent
  http::DeviceType true_device = http::DeviceType::kUnknown;
  http::AgentKind true_agent = http::AgentKind::kUnknown;
  // Distinct version strings in the wild for this profile. App UAs churn
  // fast (weekly releases), embedded firmware slowly, library UAs barely —
  // this is what shapes the paper's distinct-UA-string distribution
  // (73% mobile / 17% embedded / 3% desktop / 7% unknown).
  int version_variants = 1;
};

// Realizes a concrete UA string from the template by filling the "{v}" slot
// with one of the profile's version variants. Idempotent for variant-free
// profiles. Call once per client: a device keeps one UA.
[[nodiscard]] std::string materialize_user_agent(const DeviceProfile& profile,
                                                 stats::Rng& rng);

// Population classes used to dial the Fig. 3 device mix.
enum class ProfileClass {
  kMobileApp,        // native smartphone apps
  kMobileBrowser,
  kDesktopBrowser,
  kEmbedded,         // consoles / watches / TVs / IoT
  kLibrary,          // scripts and server-side clients
  kNoUserAgent,      // UA header missing entirely
  kGarbageUa,        // present but unidentifiable
};

// All built-in profiles of a class. Each list has several entries so the UA
// string distribution is not degenerate.
[[nodiscard]] const std::vector<DeviceProfile>& profiles(ProfileClass c);

// Uniformly picks one profile of the class.
[[nodiscard]] const DeviceProfile& sample_profile(ProfileClass c,
                                                  stats::Rng& rng);

[[nodiscard]] std::string_view to_string(ProfileClass c) noexcept;

}  // namespace jsoncdn::workload
