file(REMOVE_RECURSE
  "CMakeFiles/jsoncdn_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/descriptive.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/distributions.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/fft.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/fft.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/hash.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/hash.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/rng.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/rng.cpp.o.d"
  "CMakeFiles/jsoncdn_stats.dir/timeseries.cpp.o"
  "CMakeFiles/jsoncdn_stats.dir/timeseries.cpp.o.d"
  "libjsoncdn_stats.a"
  "libjsoncdn_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jsoncdn_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
