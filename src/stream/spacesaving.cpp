#include "stream/spacesaving.h"

#include <algorithm>
#include <stdexcept>

namespace jsoncdn::stream {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("SpaceSaving: capacity == 0");
  heap_.reserve(capacity);
  index_.reserve(capacity);
}

void SpaceSaving::swap_slots(std::size_t a, std::size_t b) {
  std::swap(heap_[a], heap_[b]);
  index_[heap_[a].key] = a;
  index_[heap_[b].key] = b;
}

void SpaceSaving::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (heap_[parent].count <= heap_[i].count) break;
    swap_slots(parent, i);
    i = parent;
  }
}

void SpaceSaving::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = 2 * i + 2;
    std::size_t smallest = i;
    if (l < n && heap_[l].count < heap_[smallest].count) smallest = l;
    if (r < n && heap_[r].count < heap_[smallest].count) smallest = r;
    if (smallest == i) break;
    swap_slots(smallest, i);
    i = smallest;
  }
}

std::optional<std::string> SpaceSaving::offer(std::string_view key,
                                              std::uint64_t weight) {
  total_ += weight;
  if (const auto it = index_.find(key); it != index_.end()) {
    heap_[it->second].count += weight;
    sift_down(it->second);
    return std::nullopt;
  }
  if (heap_.size() < capacity_) {
    heap_.push_back({std::string(key), weight, 0});
    index_[heap_.back().key] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
    return std::nullopt;
  }
  // Replace the minimum counter: the newcomer inherits its count as error.
  Entry& root = heap_.front();
  std::string evicted = std::move(root.key);
  index_.erase(evicted);
  root.key = std::string(key);
  root.error = root.count;
  root.count += weight;
  index_[root.key] = 0;
  sift_down(0);
  return evicted;
}

bool SpaceSaving::contains(std::string_view key) const {
  return index_.find(key) != index_.end();
}

std::uint64_t SpaceSaving::estimate(std::string_view key) const {
  const auto it = index_.find(key);
  return it == index_.end() ? untracked_bound() : heap_[it->second].count;
}

std::uint64_t SpaceSaving::untracked_bound() const noexcept {
  return heap_.size() < capacity_ || heap_.empty() ? 0 : heap_.front().count;
}

std::vector<HeavyHitter> SpaceSaving::top(std::size_t n) const {
  std::vector<HeavyHitter> out;
  out.reserve(heap_.size());
  for (const auto& e : heap_) out.push_back({e.key, e.count, e.error});
  std::sort(out.begin(), out.end(),
            [](const HeavyHitter& a, const HeavyHitter& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.key < b.key;
            });
  if (out.size() > n) out.resize(n);
  return out;
}

void SpaceSaving::merge(const SpaceSaving& other) {
  if (capacity_ != other.capacity_)
    throw std::invalid_argument("SpaceSaving::merge: capacity mismatch");
  const std::uint64_t bound_a = untracked_bound();
  const std::uint64_t bound_b = other.untracked_bound();

  // Combined estimates over the key union; absent sides contribute their
  // untracked bound to both count and error.
  std::unordered_map<std::string, Entry> combined;
  combined.reserve(heap_.size() + other.heap_.size());
  for (const auto& e : heap_)
    combined[e.key] = {e.key, e.count + bound_b, e.error + bound_b};
  for (const auto& e : other.heap_) {
    auto [it, inserted] =
        combined.try_emplace(e.key, Entry{e.key, bound_a, bound_a});
    it->second.count += e.count;
    it->second.error += e.error;
    if (!inserted) {
      // Key present in both: remove the absent-side bound added above.
      it->second.count -= bound_b;
      it->second.error -= bound_b;
    }
  }

  std::vector<Entry> entries;
  entries.reserve(combined.size());
  for (auto& [key, e] : combined) entries.push_back(std::move(e));
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  if (entries.size() > capacity_) entries.resize(capacity_);

  heap_.clear();
  index_.clear();
  total_ += other.total_;
  for (auto& e : entries) {
    heap_.push_back(std::move(e));
    index_[heap_.back().key] = heap_.size() - 1;
    sift_up(heap_.size() - 1);
  }
}

std::size_t SpaceSaving::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(*this) + heap_.capacity() * sizeof(Entry) +
                      index_.size() * (sizeof(std::string) + sizeof(std::size_t));
  for (const auto& e : heap_) bytes += 2 * e.key.capacity();
  return bytes;
}

}  // namespace jsoncdn::stream
