file(REMOVE_RECURSE
  "CMakeFiles/ablation_push_timing.dir/ablation_push_timing.cpp.o"
  "CMakeFiles/ablation_push_timing.dir/ablation_push_timing.cpp.o.d"
  "ablation_push_timing"
  "ablation_push_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_push_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
