#include "stats/hash.h"

#include <array>

namespace jsoncdn::stats {

std::string to_hex64(std::uint64_t value) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[value & 0xf];
    value >>= 4;
  }
  return out;
}

}  // namespace jsoncdn::stats
