// jsoncdn-jlog — inspect, verify, convert, and synthesize `.jlog` files.
//
//   jsoncdn-jlog inspect FILE [--chunks]
//   jsoncdn-jlog verify FILE
//   jsoncdn-jlog convert IN OUT [--to v1|v2] [--chunk-rows N]
//   jsoncdn-jlog synth --records N --out FILE [--seed S] [--chunk-rows N]
//                      [--clients N] [--urls N] [--duration SECONDS]
//
// inspect prints the format, row/chunk counts, dictionary sizes, and time
// range without decoding row data (for v2, only footer metadata is read);
// --chunks adds one line per chunk with its zone map. verify decodes every
// row through the full bounds/checksum/zone-map validation and exits
// non-zero on the first corruption. convert re-encodes any readable log
// (TSV, v1, v2) as a v1 image or v2 chunk store. synth streams the
// deterministic scale workload (shard/synth.h) straight into a v2 store —
// bounded memory at any record count, the generator for out-of-core scale
// tests.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "logs/csv.h"
#include "logs/jlog.h"
#include "logs/table.h"
#include "shard/reader.h"
#include "shard/synth.h"
#include "shard/writer.h"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: jsoncdn-jlog inspect FILE [--chunks]\n"
      "       jsoncdn-jlog verify FILE\n"
      "       jsoncdn-jlog convert IN OUT [--to v1|v2] [--chunk-rows N]\n"
      "       jsoncdn-jlog synth --records N --out FILE [--seed S]\n"
      "                          [--chunk-rows N] [--clients N] [--urls N]\n"
      "                          [--duration SECONDS]\n");
}

const char* format_name(jsoncdn::logs::LogFormat format) {
  switch (format) {
    case jsoncdn::logs::LogFormat::kJlogV1: return "jlog v1 (columnar image)";
    case jsoncdn::logs::LogFormat::kJlogV2: return "jlog v2 (chunk store)";
    case jsoncdn::logs::LogFormat::kText: break;
  }
  return "text";
}

int cmd_inspect(const std::string& path, bool chunks) {
  using namespace jsoncdn;
  const auto format = logs::detect_log_format(path);
  std::printf("%s: %s\n", path.c_str(), format_name(format));
  if (format == logs::LogFormat::kText) {
    std::fprintf(stderr, "not a .jlog file (no binary magic)\n");
    return 1;
  }
  if (format == logs::LogFormat::kJlogV1) {
    const auto table = logs::read_jlog(path);
    const auto [lo, hi] = table.time_range();
    std::printf("rows: %zu\ntime range: [%.3f, %.3f]\n", table.size(), lo, hi);
    std::printf("dictionaries: %zu urls, %zu client ids, %zu user agents, "
                "%zu domains, %zu content types, %zu client keys\n",
                table.urls().size(), table.client_ids().size(),
                table.user_agents().size(), table.domains().size(),
                table.content_types().size(), table.client_keys().size());
    return 0;
  }
  shard::ShardReader reader(path);
  const auto& dicts = reader.dictionaries();
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t payload = 0;
  bool first = true;
  for (const auto& meta : reader.chunks()) {
    payload += meta.payload_bytes;
    if (meta.row_count == 0) continue;
    if (first || meta.min_ts < lo) lo = meta.min_ts;
    if (first || meta.max_ts > hi) hi = meta.max_ts;
    first = false;
  }
  std::printf("rows: %llu in %u chunks (target %u rows/chunk)\n",
              static_cast<unsigned long long>(reader.row_count()),
              reader.chunk_count(), reader.chunk_target_rows());
  std::printf("time range: [%.3f, %.3f]\n", lo, hi);
  std::printf("payload: %.1f MiB compressed (%.2f bytes/row)\n",
              static_cast<double>(payload) / (1 << 20),
              reader.row_count() > 0
                  ? static_cast<double>(payload) /
                        static_cast<double>(reader.row_count())
                  : 0.0);
  std::printf("dictionaries: %zu urls, %zu client ids, %zu user agents, "
              "%zu domains, %zu content types, %zu client keys\n",
              dicts.urls().size(), dicts.client_ids().size(),
              dicts.user_agents().size(), dicts.domains().size(),
              dicts.content_types().size(), dicts.client_keys().size());
  if (chunks) {
    std::printf("%8s %10s %12s %22s %17s\n", "chunk", "rows", "bytes",
                "time range", "url symbols");
    for (std::size_t c = 0; c < reader.chunks().size(); ++c) {
      const auto& meta = reader.chunks()[c];
      std::printf("%8zu %10u %12llu [%9.3f,%9.3f] [%7u,%7u]\n", c,
                  meta.row_count,
                  static_cast<unsigned long long>(meta.payload_bytes),
                  meta.min_ts, meta.max_ts,
                  meta.symbols[shard::kSymUrl].min_sym,
                  meta.symbols[shard::kSymUrl].max_sym);
    }
  }
  return 0;
}

int cmd_verify(const std::string& path) {
  using namespace jsoncdn;
  const auto format = logs::detect_log_format(path);
  if (format == logs::LogFormat::kText) {
    std::fprintf(stderr, "%s: not a .jlog file (no binary magic)\n",
                 path.c_str());
    return 1;
  }
  if (format == logs::LogFormat::kJlogV1) {
    const auto table = logs::read_jlog(path);
    std::printf("ok: v1, %zu rows\n", table.size());
    return 0;
  }
  shard::ShardReader reader(path);
  // Decode every chunk through the full validation path (checksums, range
  // checks, zone-map recomputation); the no-op consumer discards the rows.
  shard::ScanPredicate everything;
  everything.use_zone_maps = false;
  const auto stats = reader.scan(
      everything,
      [](const logs::LogTable&, std::span<const std::uint32_t>) {});
  std::printf("ok: v2, %llu rows in %u chunks\n",
              static_cast<unsigned long long>(stats.rows_scanned),
              stats.chunks_scanned);
  return 0;
}

int cmd_convert(const std::string& in_path, const std::string& out_path,
                const std::string& to, std::uint32_t chunk_rows) {
  using namespace jsoncdn;
  logs::IngestReport report;
  const auto table = shard::load_table_auto(in_path, {}, &report);
  if (table.empty()) {
    std::fprintf(stderr, "no records in %s\n", in_path.c_str());
    return 1;
  }
  if (to == "v1") {
    logs::write_jlog(out_path, table);
    std::printf("wrote v1, %zu rows to %s\n", table.size(), out_path.c_str());
  } else if (to == "v2") {
    shard::ShardWriterOptions options;
    options.chunk_rows = chunk_rows;
    const auto stats = shard::write_jlog_v2(out_path, table, options);
    std::printf("wrote v2, %llu rows in %u chunks (%.1f MiB) to %s\n",
                static_cast<unsigned long long>(stats.rows),
                stats.chunks,
                static_cast<double>(stats.file_bytes) / (1 << 20),
                out_path.c_str());
  } else {
    std::fprintf(stderr, "unknown --to format: %s (want v1 or v2)\n",
                 to.c_str());
    return 2;
  }
  return 0;
}

int cmd_synth(const jsoncdn::shard::SynthOptions& options,
              const std::string& out_path, std::uint32_t chunk_rows) {
  using namespace jsoncdn;
  if (options.records == 0 || out_path.empty()) {
    usage();
    return 2;
  }
  shard::ShardWriterOptions writer_options;
  writer_options.chunk_rows = chunk_rows;
  shard::ShardWriter writer(out_path, writer_options);
  shard::synth_records(options, [&](const shard::SynthFields& f) {
    writer.append_fields(f.timestamp, f.client_id, f.user_agent, f.method,
                         f.url, f.domain, f.content_type, f.status,
                         f.response_bytes, f.request_bytes, f.cache_status,
                         f.edge_id);
  });
  const auto stats = writer.finalize();
  std::printf("wrote %llu synthetic rows in %u chunks (%.1f MiB) to %s\n",
              static_cast<unsigned long long>(stats.rows), stats.chunks,
              static_cast<double>(stats.file_bytes) / (1 << 20),
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  try {
    if (command == "--help" || command == "-h") {
      usage();
      return 0;
    }
    if (command == "inspect" || command == "verify") {
      if (argc < 3) {
        usage();
        return 2;
      }
      const std::string path = argv[2];
      bool chunks = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--chunks") == 0 && command == "inspect") {
          chunks = true;
        } else {
          usage();
          return 2;
        }
      }
      return command == "inspect" ? cmd_inspect(path, chunks)
                                  : cmd_verify(path);
    }
    if (command == "convert") {
      if (argc < 4) {
        usage();
        return 2;
      }
      const std::string in_path = argv[2];
      const std::string out_path = argv[3];
      std::string to = "v2";
      std::uint32_t chunk_rows = 65536;
      for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--to" && i + 1 < argc) {
          to = argv[++i];
        } else if (arg == "--chunk-rows" && i + 1 < argc) {
          chunk_rows = static_cast<std::uint32_t>(std::atoll(argv[++i]));
        } else {
          usage();
          return 2;
        }
      }
      return cmd_convert(in_path, out_path, to, chunk_rows);
    }
    if (command == "synth") {
      jsoncdn::shard::SynthOptions options;
      std::string out_path;
      std::uint32_t chunk_rows = 65536;
      for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
          if (i + 1 >= argc) {
            usage();
            std::exit(2);
          }
          return argv[++i];
        };
        if (arg == "--records") {
          options.records = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--out") {
          out_path = next();
        } else if (arg == "--seed") {
          options.seed = static_cast<std::uint64_t>(std::atoll(next()));
        } else if (arg == "--chunk-rows") {
          chunk_rows = static_cast<std::uint32_t>(std::atoll(next()));
        } else if (arg == "--clients") {
          options.clients = static_cast<std::uint32_t>(std::atoll(next()));
        } else if (arg == "--urls") {
          options.urls = static_cast<std::uint32_t>(std::atoll(next()));
        } else if (arg == "--duration") {
          options.duration = std::atof(next());
        } else {
          usage();
          return 2;
        }
      }
      return cmd_synth(options, out_path, chunk_rows);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  usage();
  return 2;
}
