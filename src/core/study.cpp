#include "core/study.h"

#include <algorithm>
#include <unordered_map>

#include "stats/parallel.h"

namespace jsoncdn::core {

StudyResult run_study(const StudyConfig& config) {
  workload::WorkloadGenerator generator(config.workload);
  auto workload = generator.generate();

  cdn::CdnNetwork network(generator.catalog().objects(), config.network);
  StudyResult result;
  result.dataset = network.run(workload.events);
  result.delivery = network.total_metrics();
  result.truth = std::move(workload.truth);
  result.json = result.dataset.json_only();

  const std::size_t threads = stats::resolve_threads(config.threads);

  if (config.run_characterization) {
    result.source = characterize_source(result.json, threads);
    result.methods = characterize_methods(result.json, threads);
    result.cacheability = characterize_cacheability(result.json, threads);
    result.sizes = compare_sizes(result.dataset, threads);

    // Industry lookup from the catalog ground truth (the stand-in for the
    // commercial categorization service the paper uses).
    std::unordered_map<std::string, std::string> industry;
    for (const auto& d : generator.catalog().domains()) {
      industry.emplace(d.name, std::string(to_string(d.industry)));
    }
    const IndustryLookup lookup = [&industry](std::string_view domain) {
      const auto it = industry.find(std::string(domain));
      return it == industry.end() ? std::string("Unknown") : it->second;
    };
    result.domains = domain_cacheability(result.json, lookup, threads);
    result.heatmap = cacheability_heatmap(result.domains);
  }

  if (config.run_periodicity) {
    PeriodicityConfig periodicity = config.periodicity;
    periodicity.threads = threads;
    result.periodicity = analyze_periodicity(result.json, periodicity);
  }

  if (!config.ngram_configs.empty()) {
    // Outer fan-out across configurations, inner threads split between
    // them; index-ordered placement keeps result.ngram in config order.
    const std::size_t outer =
        std::min(threads, config.ngram_configs.size());
    stats::ThreadPool pool(outer);
    result.ngram = stats::parallel_map<NgramAccuracy>(
        pool, config.ngram_configs.size(), [&](std::size_t i) {
          NgramEvalConfig ngram_config = config.ngram_configs[i];
          ngram_config.threads = std::max<std::size_t>(1, threads / outer);
          return evaluate_ngram(result.json, ngram_config);
        });
  }
  return result;
}

}  // namespace jsoncdn::core
