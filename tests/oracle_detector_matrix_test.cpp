// The scenario x strategy detector matrix at test size: shape, shared-case
// scoring, band wiring, and the renderings CI and EXPERIMENTS.md consume.
// The full committed-band matrix runs in CI (jsoncdn-validate
// --detector-matrix); this keeps the harness itself honest at a size a
// laptop test run can afford.
#include "oracle/detector_matrix.h"

#include <gtest/gtest.h>

#include <string>

#include "core/period_detector.h"

namespace jsoncdn::oracle {
namespace {

DetectorMatrixConfig tiny_config() {
  DetectorMatrixConfig config;
  config.seeds = {1};
  config.scenarios = {"long-term", "periodic-dropout"};
  config.strategies = {core::DetectorStrategy::kAcfFft,
                       core::DetectorStrategy::kLombScargle};
  config.scale = 0.001;
  config.duration_seconds = 3600.0;
  config.n_clients = 300;
  config.threads = 1;
  // Shape-only run: disarm every band so the assertions below are about
  // structure, not about tiny-sample F1.
  config.min_default_benign_f1 = 0.0;
  config.min_best_f1 = 0.0;
  config.must_improve.clear();
  return config;
}

TEST(DetectorMatrix, ProducesOneCellPerScenarioAndStrategy) {
  const auto config = tiny_config();
  const auto report = run_detector_matrix(config);
  EXPECT_TRUE(report.all_passed()) << render_detector_matrix(report);
  ASSERT_EQ(report.rows.size(), config.scenarios.size());
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    EXPECT_EQ(report.rows[i].scenario, config.scenarios[i]);
    ASSERT_EQ(report.rows[i].cells.size(), config.strategies.size());
    for (std::size_t s = 0; s < config.strategies.size(); ++s) {
      const auto& cell = report.rows[i].cells[s];
      EXPECT_EQ(cell.strategy, config.strategies[s]);
      EXPECT_GE(cell.precision, 0.0);
      EXPECT_LE(cell.precision, 1.0);
      EXPECT_GE(cell.recall, 0.0);
      EXPECT_LE(cell.recall, 1.0);
    }
  }
  // The stress scenario must actually carry labelled periodic flows.
  const auto& dropout = report.rows[1];
  EXPECT_GT(dropout.cells[0].eligible_truth, 0u);

  const auto text = render_detector_matrix(report);
  EXPECT_NE(text.find("periodic-dropout"), std::string::npos);
  EXPECT_NE(text.find("lomb-scargle"), std::string::npos);
  const auto table = render_detector_matrix_table(report);
  EXPECT_NE(table.find("| periodic-dropout | acf-fft |"), std::string::npos);
}

TEST(DetectorMatrix, ImpossibleBandsAreReportedAsFailures) {
  auto config = tiny_config();
  config.scenarios = {"long-term"};
  config.strategies = {core::DetectorStrategy::kAcfFft};
  config.min_default_benign_f1 = 1.01;  // unreachable
  config.must_improve = {"no-such-scenario"};
  const auto report = run_detector_matrix(config);
  EXPECT_FALSE(report.all_passed());
  ASSERT_EQ(report.failures.size(), 2u);
  EXPECT_NE(report.failures[1].find("no-such-scenario"), std::string::npos);
  EXPECT_NE(render_detector_matrix(report).find("FAIL"), std::string::npos);
}

TEST(DetectorMatrix, EmptyConfigFailsInsteadOfRunning) {
  DetectorMatrixConfig config;
  config.scenarios.clear();
  const auto report = run_detector_matrix(config);
  EXPECT_FALSE(report.all_passed());
  EXPECT_TRUE(report.rows.empty());
}

}  // namespace
}  // namespace jsoncdn::oracle
