#include "logs/interner.h"

#include <cstring>
#include <stdexcept>

namespace jsoncdn::logs {

std::string_view StringInterner::arena_store(std::string_view s) {
  if (s.empty()) return std::string_view();
  if (block_used_ + s.size() > block_capacity_) {
    const std::size_t cap = std::max(kBlockBytes, s.size());
    blocks_.push_back(std::make_unique<char[]>(cap));
    block_used_ = 0;
    block_capacity_ = cap;
    arena_bytes_ += cap;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, s.data(), s.size());
  block_used_ += s.size();
  return std::string_view(dst, s.size());
}

StringInterner::Symbol StringInterner::intern(std::string_view s) {
  const auto it = map_.find(s);
  if (it != map_.end()) return it->second;
  if (views_.size() >= static_cast<std::size_t>(kNoSymbol)) {
    throw std::length_error("StringInterner: symbol space exhausted");
  }
  const auto id = static_cast<Symbol>(views_.size());
  const auto stable = arena_store(s);
  views_.push_back(stable);
  map_.emplace(stable, id);
  return id;
}

void StringInterner::reserve(std::size_t symbols) {
  views_.reserve(symbols);
  map_.reserve(symbols);
}

std::size_t StringInterner::memory_bytes() const noexcept {
  return arena_bytes_ + views_.capacity() * sizeof(std::string_view) +
         map_.bucket_count() *
             (sizeof(std::string_view) + sizeof(Symbol) + sizeof(void*));
}

}  // namespace jsoncdn::logs
