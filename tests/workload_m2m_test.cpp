// Machine-to-machine structure of the generated workload: hub concentration,
// bounded beacon sessions, and webview HTML emission.
#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "http/mime.h"
#include "workload/generator.h"

namespace jsoncdn::workload {
namespace {

GeneratorConfig m2m_config() {
  GeneratorConfig config;
  config.seed = 555;
  config.duration_seconds = 4 * 3600.0;
  config.n_clients = 800;
  config.catalog.domains_per_industry = 2;
  config.shares = {0.2, 0.02, 0.02, 0.5, 0.06, 0.15, 0.05};
  config.periodic.embedded = 0.8;
  return config;
}

TEST(M2mConcentration, PeriodicFlowsClusterOnHubDomains) {
  auto config = m2m_config();
  config.m2m_concentration = 1.0;  // every periodic flow goes to a hub
  config.m2m_top_domains = 3;
  WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  const auto hubs = generator.catalog().top_domains(3);
  std::unordered_set<std::string> hub_names;
  for (const auto d : hubs)
    hub_names.insert(generator.catalog().domains()[d].name);

  ASSERT_FALSE(workload.truth.periodic_flows.empty());
  for (const auto& pt : workload.truth.periodic_flows) {
    const auto* obj = generator.catalog().objects().find(pt.url);
    ASSERT_NE(obj, nullptr);
    EXPECT_TRUE(hub_names.contains(obj->domain)) << obj->domain;
  }
}

TEST(M2mConcentration, ZeroConcentrationSpreadsFlows) {
  auto config = m2m_config();
  config.m2m_concentration = 0.0;
  WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  std::unordered_set<std::string> domains;
  for (const auto& pt : workload.truth.periodic_flows) {
    domains.insert(generator.catalog().objects().find(pt.url)->domain);
  }
  // With 22 domains and hundreds of flows, spreading reaches many domains.
  EXPECT_GT(domains.size(), 5u);
}

TEST(TopDomains, OrderedByPopularity) {
  WorkloadGenerator generator(m2m_config());
  const auto& catalog = generator.catalog();
  const auto top = catalog.top_domains(5);
  ASSERT_EQ(top.size(), 5u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(catalog.domains()[top[i - 1]].popularity_weight,
              catalog.domains()[top[i]].popularity_weight);
  }
  // Asking for more than exist clamps.
  EXPECT_EQ(catalog.top_domains(10'000).size(), catalog.domains().size());
}

TEST(BeaconSessions, BoundedActivitySpan) {
  auto config = m2m_config();
  config.shares = {0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0};  // all library
  config.periodic.library = 0.0;                        // beacons only
  config.beacon_session_lo_seconds = 600.0;
  config.beacon_session_hi_seconds = 1200.0;
  WorkloadGenerator generator(config);
  const auto workload = generator.generate();

  // Group events per client and check each client's activity span.
  std::unordered_map<std::string, std::pair<double, double>> spans;
  for (const auto& ev : workload.events) {
    auto [it, inserted] =
        spans.try_emplace(ev.client_address, ev.time, ev.time);
    it->second.first = std::min(it->second.first, ev.time);
    it->second.second = std::max(it->second.second, ev.time);
  }
  ASSERT_FALSE(spans.empty());
  for (const auto& [client, span] : spans) {
    EXPECT_LE(span.second - span.first, 1200.0 + 1e-6) << client;
  }
}

TEST(Webview, EmitsHtmlAfterAppSessions) {
  auto config = m2m_config();
  config.shares = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};  // all mobile apps
  config.periodic.mobile_app = 0.0;
  config.app_webview_html_prob = 1.0;
  WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  std::size_t html = 0;
  for (const auto& ev : workload.events) {
    const auto* obj = generator.catalog().objects().find(ev.url);
    ASSERT_NE(obj, nullptr);
    if (obj->content == http::ContentClass::kHtml) ++html;
  }
  EXPECT_GT(html, 0u);
}

TEST(Webview, DisabledMeansAppTrafficIsHtmlFree) {
  auto config = m2m_config();
  config.shares = {1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
  config.periodic.mobile_app = 0.0;
  config.app_webview_html_prob = 0.0;
  WorkloadGenerator generator(config);
  const auto workload = generator.generate();
  for (const auto& ev : workload.events) {
    const auto* obj = generator.catalog().objects().find(ev.url);
    ASSERT_NE(obj, nullptr);
    EXPECT_NE(obj->content, http::ContentClass::kHtml);
  }
}

}  // namespace
}  // namespace jsoncdn::workload
