// Streaming-vs-batch validation harness: runs the exact batch analyses over
// a materialized dataset and reports the observed sketch error next to each
// sketch's configured bound — the accuracy check the paper's production
// infrastructure could never run, because it never had the exact answer.
//
// Used by tests (assert observed <= bound on seeded synthetic streams) and
// by EXPERIMENTS.md (the streaming-accuracy table comes from this report).
#pragma once

#include <string>
#include <vector>

#include "logs/dataset.h"
#include "stream/streaming_study.h"

namespace jsoncdn::stream {

struct ValidationReport {
  // --- Cardinalities (HLL vs exact hash-set counts) -----------------------
  std::size_t exact_urls = 0;
  std::size_t exact_clients = 0;
  std::size_t exact_domains = 0;
  double url_cardinality_error = 0.0;     // |est - exact| / exact
  double client_cardinality_error = 0.0;
  double domain_cardinality_error = 0.0;
  double hll_error_bound = 0.0;           // 3 sigma of the configured HLL

  // --- Heavy hitters (Space-Saving/CMS vs exact URL counts) ---------------
  std::size_t topk_checked = 0;       // exact top-K URLs examined
  std::size_t topk_found = 0;         // of those, present in the sketch top
  double topk_max_count_error = 0.0;  // max |est - exact| over found keys
  double heavy_hitter_error_bound = 0.0;  // N / heavy_hitters

  // --- Size quantiles (sketch vs exact percentiles) -----------------------
  double quantile_max_rel_error = 0.0;  // max over json/html p25..p99
  double quantile_error_bound = 0.0;    // configured alpha

  // --- Exact-counter cross-check (must agree bit for bit) -----------------
  bool counters_identical = false;  // methods, cacheability, device counts

  // --- Triage recall ------------------------------------------------------
  std::size_t eligible_flows = 0;   // object flows passing the paper filter
  std::size_t candidate_flows = 0;  // triage candidates
  std::size_t eligible_missed = 0;  // eligible flows absent from candidates

  [[nodiscard]] bool within_bounds() const noexcept;
};

// Compares `summary` (built over exactly the records of `exact`) against
// the batch pipeline. `top_k` bounds the heavy-hitter check.
[[nodiscard]] ValidationReport validate_streaming(
    const logs::Dataset& exact, const StreamingSummary& summary,
    const StreamingConfig& config, std::size_t top_k = 20);

[[nodiscard]] std::string render_validation(const ValidationReport& report);

}  // namespace jsoncdn::stream
