file(REMOVE_RECURSE
  "CMakeFiles/cost_per_byte.dir/cost_per_byte.cpp.o"
  "CMakeFiles/cost_per_byte.dir/cost_per_byte.cpp.o.d"
  "cost_per_byte"
  "cost_per_byte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_per_byte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
