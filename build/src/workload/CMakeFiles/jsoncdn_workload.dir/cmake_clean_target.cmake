file(REMOVE_RECURSE
  "libjsoncdn_workload.a"
)
