file(REMOVE_RECURSE
  "CMakeFiles/ablation_periodicity.dir/ablation_periodicity.cpp.o"
  "CMakeFiles/ablation_periodicity.dir/ablation_periodicity.cpp.o.d"
  "ablation_periodicity"
  "ablation_periodicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_periodicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
