
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/http/device_db.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/device_db.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/device_db.cpp.o.d"
  "/root/repo/src/http/headers.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/headers.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/headers.cpp.o.d"
  "/root/repo/src/http/method.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/method.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/method.cpp.o.d"
  "/root/repo/src/http/mime.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/mime.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/mime.cpp.o.d"
  "/root/repo/src/http/url.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/url.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/url.cpp.o.d"
  "/root/repo/src/http/user_agent.cpp" "src/http/CMakeFiles/jsoncdn_http.dir/user_agent.cpp.o" "gcc" "src/http/CMakeFiles/jsoncdn_http.dir/user_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
