// Kernel dispatchers (scalar vs SIMD build, per stats/simd.h) plus the
// `baseline` reference loops. This TU is compiled with the project's default
// flags — exactly how the pre-kernel call sites were built — so the baseline
// loops measure what the code actually did before the kernel layer.
#include "stats/kernels.h"

#include <numbers>

#include "stats/simd.h"

namespace jsoncdn::stats::kernels {

// The two builds of the shared bodies (kernels_impl.h). Declared here rather
// than in a header: nothing but the dispatchers below may call them.
#define JSONCDN_DECLARE_KERNELS(ns)                                           \
  namespace ns {                                                              \
  void fft_pass(std::complex<double>* data, std::size_t n, std::size_t len,   \
                const std::complex<double>* twiddles);                        \
  void complex_norm(std::complex<double>* data, std::size_t n);               \
  void pgram_extract(const std::complex<double>* freq, std::size_t count,     \
                     double padded, double* out);                             \
  void acf_extract(const std::complex<double>* corr, std::size_t count,       \
                   double scale, double energy, double* out);                 \
  void acf_direct(const double* x, std::size_t n, std::size_t max_lag,        \
                  double energy, double* r);                                  \
  void bin_events(const double* times, std::size_t n, double t_begin,         \
                  double t_end, double dt, double* bins, std::size_t nbins);  \
  double max_value(const double* x, std::size_t n, double init) noexcept;     \
  bool diff_ascending(const double* x, std::size_t n, double* out);           \
  void count_u32(const std::uint32_t* keys, const std::uint32_t* idx,         \
                 std::size_t n, std::uint64_t* counts, std::size_t n_keys);   \
  void count_enum8(const std::int32_t* vals, const std::uint32_t* idx,        \
                   std::size_t n, std::uint64_t* counts);                     \
  StatusBuckets count_status(const std::int32_t* status,                      \
                             const std::uint32_t* idx,                        \
                             std::size_t n) noexcept;                         \
  void splitmix_batch(const std::uint64_t* keys, std::size_t n,               \
                      std::uint64_t salt, std::uint64_t* out);                \
  }

JSONCDN_DECLARE_KERNELS(kernels_scalar)
JSONCDN_DECLARE_KERNELS(kernels_simd)
#undef JSONCDN_DECLARE_KERNELS

void fft_pass(std::complex<double>* data, std::size_t n, std::size_t len,
              const std::complex<double>* twiddles) {
  if (simd_enabled()) {
    kernels_simd::fft_pass(data, n, len, twiddles);
  } else {
    kernels_scalar::fft_pass(data, n, len, twiddles);
  }
}

void complex_norm(std::complex<double>* data, std::size_t n) {
  if (simd_enabled()) {
    kernels_simd::complex_norm(data, n);
  } else {
    kernels_scalar::complex_norm(data, n);
  }
}

void pgram_extract(const std::complex<double>* freq, std::size_t count,
                   double padded, double* out) {
  if (simd_enabled()) {
    kernels_simd::pgram_extract(freq, count, padded, out);
  } else {
    kernels_scalar::pgram_extract(freq, count, padded, out);
  }
}

void acf_extract(const std::complex<double>* corr, std::size_t count,
                 double scale, double energy, double* out) {
  if (simd_enabled()) {
    kernels_simd::acf_extract(corr, count, scale, energy, out);
  } else {
    kernels_scalar::acf_extract(corr, count, scale, energy, out);
  }
}

void acf_direct(const double* x, std::size_t n, std::size_t max_lag,
                double energy, double* r) {
  if (simd_enabled()) {
    kernels_simd::acf_direct(x, n, max_lag, energy, r);
  } else {
    kernels_scalar::acf_direct(x, n, max_lag, energy, r);
  }
}

void bin_events(const double* times, std::size_t n, double t_begin,
                double t_end, double dt, double* bins, std::size_t nbins) {
  if (simd_enabled()) {
    kernels_simd::bin_events(times, n, t_begin, t_end, dt, bins, nbins);
  } else {
    kernels_scalar::bin_events(times, n, t_begin, t_end, dt, bins, nbins);
  }
}

double max_value(const double* x, std::size_t n, double init) noexcept {
  return simd_enabled() ? kernels_simd::max_value(x, n, init)
                        : kernels_scalar::max_value(x, n, init);
}

bool diff_ascending(const double* x, std::size_t n, double* out) {
  return simd_enabled() ? kernels_simd::diff_ascending(x, n, out)
                        : kernels_scalar::diff_ascending(x, n, out);
}

void count_u32(const std::uint32_t* keys, const std::uint32_t* idx,
               std::size_t n, std::uint64_t* counts, std::size_t n_keys) {
  if (simd_enabled()) {
    kernels_simd::count_u32(keys, idx, n, counts, n_keys);
  } else {
    kernels_scalar::count_u32(keys, idx, n, counts, n_keys);
  }
}

void count_enum8(const std::int32_t* vals, const std::uint32_t* idx,
                 std::size_t n, std::uint64_t* counts) {
  if (simd_enabled()) {
    kernels_simd::count_enum8(vals, idx, n, counts);
  } else {
    kernels_scalar::count_enum8(vals, idx, n, counts);
  }
}

StatusBuckets count_status(const std::int32_t* status,
                           const std::uint32_t* idx, std::size_t n) noexcept {
  return simd_enabled() ? kernels_simd::count_status(status, idx, n)
                        : kernels_scalar::count_status(status, idx, n);
}

void splitmix_batch(const std::uint64_t* keys, std::size_t n,
                    std::uint64_t salt, std::uint64_t* out) {
  if (simd_enabled()) {
    kernels_simd::splitmix_batch(keys, n, salt, out);
  } else {
    kernels_scalar::splitmix_batch(keys, n, salt, out);
  }
}

// ---- baseline reference loops (pre-kernel shapes, default flags) ---------

namespace baseline {

void fft_pass(std::complex<double>* data, std::size_t n, std::size_t len,
              bool inverse) {
  const double angle =
      2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
  const std::complex<double> wlen(std::cos(angle), std::sin(angle));
  for (std::size_t i = 0; i < n; i += len) {
    std::complex<double> w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const std::complex<double> u = data[i + k];
      const std::complex<double> v = data[i + k + len / 2] * w;
      data[i + k] = u + v;
      data[i + k + len / 2] = u - v;
      w *= wlen;
    }
  }
}

void acf_direct(const double* x, std::size_t n, std::size_t max_lag,
                double energy, double* r) {
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) acc += x[i] * x[i + k];
    r[k] = acc / energy;
  }
}

void bin_events(const double* times, std::size_t n, double t_begin,
                double t_end, double dt, double* bins, std::size_t nbins) {
  for (std::size_t i = 0; i < n; ++i) {
    const double t = times[i];
    if (t < t_begin || t >= t_end) continue;
    auto bin = static_cast<std::size_t>((t - t_begin) / dt);
    if (bin >= nbins) bin = nbins - 1;
    bins[bin] += 1.0;
  }
}

void count_u32(const std::uint32_t* keys, const std::uint32_t* idx,
               std::size_t n, std::uint64_t* counts, std::size_t n_keys) {
  (void)n_keys;
  if (idx != nullptr) {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[idx[i]]];
  } else {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
  }
}

StatusBuckets count_status(const std::int32_t* status,
                           const std::uint32_t* idx, std::size_t n) noexcept {
  StatusBuckets out;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t s = idx != nullptr ? status[idx[i]] : status[i];
    if (s >= 500) {
      ++out.server_error_5xx;
      if (s == 504) ++out.gateway_timeout_504;
    } else if (s >= 400) {
      ++out.client_error_4xx;
    } else if (s >= 300) {
      ++out.redirect_3xx;
    } else if (s >= 200) {
      ++out.ok_2xx;
    }
  }
  return out;
}

void splitmix_batch(const std::uint64_t* keys, std::size_t n,
                    std::uint64_t salt, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z = (keys[i] ^ salt) + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    out[i] = z ^ (z >> 31);
  }
}

}  // namespace baseline

}  // namespace jsoncdn::stats::kernels
