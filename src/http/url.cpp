#include "http/url.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace jsoncdn::http {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool is_unreserved(unsigned char c) {
  return std::isalnum(c) != 0 || c == '-' || c == '.' || c == '_' || c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void parse_query_into(std::string_view q, Url& url) {
  while (!q.empty()) {
    std::string_view pair = q;
    if (const auto amp = q.find('&'); amp != std::string_view::npos) {
      pair = q.substr(0, amp);
      q = q.substr(amp + 1);
    } else {
      q = {};
    }
    if (pair.empty()) continue;
    const auto eq = pair.find('=');
    if (eq == std::string_view::npos) {
      url.query.emplace_back(url_decode(pair), "");
    } else {
      url.query.emplace_back(url_decode(pair.substr(0, eq)),
                             url_decode(pair.substr(eq + 1)));
    }
  }
}

void parse_path_into(std::string_view path, Url& url) {
  while (!path.empty() && path.front() == '/') path.remove_prefix(1);
  while (!path.empty()) {
    std::string_view seg = path;
    if (const auto slash = path.find('/'); slash != std::string_view::npos) {
      seg = path.substr(0, slash);
      path = path.substr(slash + 1);
    } else {
      path = {};
    }
    if (!seg.empty()) url.path_segments.push_back(url_decode(seg));
  }
}

}  // namespace

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = hex_value(s[i + 1]);
      const int lo = hex_value(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    if (s[i] == '+') {
      out.push_back(' ');
      continue;
    }
    out.push_back(s[i]);
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    if (is_unreserved(c)) {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

std::optional<Url> parse_url(std::string_view raw) {
  Url url;
  // Strip fragment.
  if (const auto hash = raw.find('#'); hash != std::string_view::npos)
    raw = raw.substr(0, hash);
  if (raw.empty()) return std::nullopt;

  std::string_view rest = raw;
  if (const auto scheme_end = rest.find("://");
      scheme_end != std::string_view::npos) {
    url.scheme = to_lower(rest.substr(0, scheme_end));
    if (url.scheme.empty()) return std::nullopt;
    rest = rest.substr(scheme_end + 3);
    // Authority runs to the first '/', '?' or end.
    const auto auth_end = rest.find_first_of("/?");
    std::string_view authority =
        auth_end == std::string_view::npos ? rest : rest.substr(0, auth_end);
    rest = auth_end == std::string_view::npos ? std::string_view{}
                                              : rest.substr(auth_end);
    if (authority.empty()) return std::nullopt;
    if (const auto colon = authority.rfind(':');
        colon != std::string_view::npos) {
      const auto port_str = authority.substr(colon + 1);
      int port = 0;
      const auto [ptr, ec] = std::from_chars(
          port_str.data(), port_str.data() + port_str.size(), port);
      if (ec != std::errc{} || ptr != port_str.data() + port_str.size() ||
          port < 1 || port > 65535)
        return std::nullopt;
      url.port = port;
      authority = authority.substr(0, colon);
      if (authority.empty()) return std::nullopt;
    }
    url.host = to_lower(authority);
  } else if (rest.front() != '/') {
    return std::nullopt;  // neither absolute nor origin-relative
  }

  std::string_view path = rest;
  if (const auto qmark = rest.find('?'); qmark != std::string_view::npos) {
    path = rest.substr(0, qmark);
    parse_query_into(rest.substr(qmark + 1), url);
  }
  parse_path_into(path, url);
  return url;
}

std::string Url::path() const {
  if (path_segments.empty()) return "/";
  std::string out;
  for (const auto& seg : path_segments) {
    out.push_back('/');
    out += url_encode(seg);
  }
  return out;
}

std::string Url::str() const {
  std::string out;
  if (!host.empty()) {
    out += scheme.empty() ? std::string("https") : scheme;
    out += "://";
    out += host;
    const bool default_port =
        !port || (scheme == "https" && *port == 443) ||
        (scheme == "http" && *port == 80);
    if (!default_port) {
      out.push_back(':');
      out += std::to_string(*port);
    }
  }
  out += path();
  if (!query.empty()) {
    out.push_back('?');
    bool first = true;
    for (const auto& [k, v] : query) {
      if (!first) out.push_back('&');
      first = false;
      out += url_encode(k);
      if (!v.empty()) {
        out.push_back('=');
        out += url_encode(v);
      }
    }
  }
  return out;
}

}  // namespace jsoncdn::http
