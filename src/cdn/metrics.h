// Delivery metrics aggregated by the edge network: cache outcomes, byte
// volumes, origin offload, and client-perceived latency. These quantify the
// optimizations the paper proposes (prefetching -> hit ratio; machine-traffic
// deprioritization -> human latency).
#pragma once

#include <cstdint>
#include <vector>

#include "stats/descriptive.h"

namespace jsoncdn::cdn {

class DeliveryMetrics {
 public:
  void record(bool cacheable, bool hit, std::uint64_t bytes,
              double latency_seconds);
  void record_prefetch(std::uint64_t bytes);
  // Called when a previously prefetched object gets its first hit.
  void mark_prefetch_useful();
  // Server-push accounting: a speculative response sent to a client, and a
  // later request answered from the client-side pushed copy.
  void record_push(std::uint64_t bytes);
  void mark_push_used();
  // A stale cache entry served after a 304 revalidation (counted as a hit
  // by record(); this tracks how many of those hits were refreshes).
  void mark_refresh_hit();

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t uncacheable() const noexcept {
    return uncacheable_;
  }
  [[nodiscard]] std::uint64_t bytes_served() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t prefetches_issued() const noexcept {
    return prefetches_;
  }
  [[nodiscard]] std::uint64_t prefetch_bytes() const noexcept {
    return prefetch_bytes_;
  }
  [[nodiscard]] std::uint64_t useful_prefetches() const noexcept {
    return useful_prefetches_;
  }
  [[nodiscard]] std::uint64_t pushes_sent() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t push_bytes() const noexcept {
    return push_bytes_;
  }
  [[nodiscard]] std::uint64_t pushes_used() const noexcept {
    return pushes_used_;
  }
  [[nodiscard]] std::uint64_t refresh_hits() const noexcept {
    return refresh_hits_;
  }
  // Wasted-push ratio (sent but never consumed before expiry).
  [[nodiscard]] double push_waste() const noexcept;

  // Hit ratio over cacheable traffic only.
  [[nodiscard]] double cacheable_hit_ratio() const noexcept;
  // Hit ratio over everything (uncacheable counts as a non-hit) — the number
  // a CDN operator reports as edge offload.
  [[nodiscard]] double overall_hit_ratio() const noexcept;
  // Share of requests that had to touch the origin.
  [[nodiscard]] double origin_share() const noexcept;
  // Wasted-prefetch ratio (fetched but never used before expiry).
  [[nodiscard]] double prefetch_waste() const noexcept;

  [[nodiscard]] stats::Summary latency_summary() const;
  [[nodiscard]] const std::vector<double>& latencies() const noexcept {
    return latencies_;
  }

  // Merges another metrics object (for summing per-edge metrics).
  void merge(const DeliveryMetrics& other);

 private:
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t uncacheable_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t prefetches_ = 0;
  std::uint64_t prefetch_bytes_ = 0;
  std::uint64_t useful_prefetches_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t push_bytes_ = 0;
  std::uint64_t pushes_used_ = 0;
  std::uint64_t refresh_hits_ = 0;
  std::vector<double> latencies_;
};

}  // namespace jsoncdn::cdn
