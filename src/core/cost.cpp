#include "core/cost.h"

#include <algorithm>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

namespace jsoncdn::core {

double ClassCost::cost_per_kilobyte() const noexcept {
  const double kb = static_cast<double>(bytes) / 1024.0;
  return kb <= 0.0 ? 0.0 : total_cost() / kb;
}

double ClassCost::cpu_share() const noexcept {
  const double total = total_cost();
  return total <= 0.0 ? 0.0 : cpu_cost / total;
}

const ClassCost* CostReport::find(http::ContentClass content) const {
  for (const auto& c : by_class) {
    if (c.content == content) return &c;
  }
  return nullptr;
}

CostReport analyze_costs(const logs::Dataset& ds, const CostModel& model) {
  if (model.cpu_per_request < 0.0 || model.cpu_per_kilobyte < 0.0 ||
      model.network_per_kilobyte < 0.0 || model.origin_per_request < 0.0)
    throw std::invalid_argument("analyze_costs: negative cost component");

  std::map<http::ContentClass, ClassCost> by_class;
  for (const auto& record : ds.records()) {
    const auto content = http::classify_content(record.content_type);
    auto& acc = by_class[content];
    acc.content = content;
    ++acc.requests;
    acc.bytes += record.response_bytes;
    const double kb = static_cast<double>(record.response_bytes) / 1024.0;
    acc.cpu_cost += model.cpu_per_request + model.cpu_per_kilobyte * kb;
    acc.network_cost += model.network_per_kilobyte * kb;
    // Overload rejections are answered at the edge without an origin trip.
    if (record.cache_status != logs::CacheStatus::kHit &&
        record.cache_status != logs::CacheStatus::kShed &&
        record.cache_status != logs::CacheStatus::kThrottled) {
      acc.origin_cost += model.origin_per_request;
    }
  }

  CostReport report;
  report.by_class.reserve(by_class.size());
  for (auto& [content, cost] : by_class) {
    report.total_cost += cost.total_cost();
    report.by_class.push_back(std::move(cost));
  }
  std::sort(report.by_class.begin(), report.by_class.end(),
            [](const ClassCost& a, const ClassCost& b) {
              return a.total_cost() > b.total_cost();
            });
  return report;
}

std::string render_costs(const CostReport& report) {
  std::ostringstream out;
  out << "Serving-cost breakdown by content class (abstract units)\n";
  out << "  " << std::left << std::setw(12) << "class" << std::right
      << std::setw(10) << "requests" << std::setw(14) << "megabytes"
      << std::setw(12) << "cost" << std::setw(12) << "cost/KB"
      << std::setw(11) << "cpu-share" << '\n';
  for (const auto& c : report.by_class) {
    out << "  " << std::left << std::setw(12)
        << std::string(http::to_string(c.content)) << std::right
        << std::setw(10) << c.requests << std::setw(14) << std::fixed
        << std::setprecision(1)
        << static_cast<double>(c.bytes) / (1024.0 * 1024.0) << std::setw(12)
        << std::setprecision(0) << c.total_cost() << std::setw(12)
        << std::setprecision(3) << c.cost_per_kilobyte() << std::setw(10)
        << std::setprecision(1) << c.cpu_share() * 100.0 << "%\n";
  }
  out << "  total cost: " << std::setprecision(0) << report.total_cost
      << '\n';
  return out.str();
}

}  // namespace jsoncdn::core
