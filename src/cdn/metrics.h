// Delivery metrics aggregated by the edge network: cache outcomes, byte
// volumes, origin offload, and client-perceived latency. These quantify the
// optimizations the paper proposes (prefetching -> hit ratio; machine-traffic
// deprioritization -> human latency).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "faults/breaker.h"
#include "stats/descriptive.h"

namespace jsoncdn::cdn {

// How the edge absorbed origin failures: retries, stale serves, negative
// caching, and circuit-breaker activity. All counters are zero when no
// fault plan is active, so seed behaviour is unchanged.
struct ResilienceMetrics {
  std::uint64_t origin_errors = 0;     // failed origin attempts (incl. retried)
  std::uint64_t timeouts = 0;          // attempts that hit the timeout budget
  std::uint64_t truncated_bodies = 0;  // attempts with partial bodies
  std::uint64_t retries = 0;           // re-attempts issued
  std::uint64_t retry_successes = 0;   // requests rescued by a retry
  std::uint64_t stale_served = 0;      // RFC 5861 stale-if-error responses
  std::uint64_t negative_cache_hits = 0;   // answered from a cached failure
  std::uint64_t breaker_short_circuits = 0;  // refused while breaker open
  std::uint64_t breaker_trips = 0;           // closed -> open transitions
  std::uint64_t error_responses = 0;   // 5xx actually returned to clients
  double backoff_seconds = 0.0;        // total simulated backoff delay

  // Overload protection (cdn::OverloadController). All zero unless the
  // capacity model is on, so default runs are unchanged.
  std::uint64_t shed_queue_full = 0;   // 503: bounded admission queue overflow
  std::uint64_t shed_overload = 0;     // 503: CoDel queue-delay shedding
  std::uint64_t throttled = 0;         // 429: per-client token bucket empty
  double queue_wait_seconds = 0.0;     // total simulated worker-queue wait

  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return shed_queue_full + shed_overload + throttled;
  }

  void merge(const ResilienceMetrics& other);
  // True when any fault-path or overload counter moved.
  [[nodiscard]] bool any_activity() const noexcept;
};

// One breaker state change, attributed to its edge and origin domain.
struct BreakerEvent {
  std::uint32_t edge_id = 0;
  std::string domain;
  faults::BreakerTransition transition;
};

// Plain-text block for tools and benches.
[[nodiscard]] std::string render_resilience(const ResilienceMetrics& m);

// Delivery outcomes for one side of the prioritizer's two-class split.
// Latencies cover served responses only (rejections return instantly and
// would otherwise flatter the percentiles they exist to protect).
struct ClassDelivery {
  std::uint64_t requests = 0;   // arrivals, including rejected ones
  std::uint64_t hits = 0;       // served from edge cache
  std::uint64_t served = 0;     // responses that carried a body (non-rejected)
  std::uint64_t shed = 0;       // rejected with SHED (503)
  std::uint64_t throttled = 0;  // rejected with THROTTLED (429)
  std::vector<double> latencies;

  [[nodiscard]] double hit_ratio() const noexcept;
  [[nodiscard]] double rejected_share() const noexcept;
  [[nodiscard]] stats::Summary latency_summary() const;
  void merge(const ClassDelivery& other);
};

// Human-class vs machine-class delivery, populated only when the overload
// capacity model is on. The headline overload experiment reads human.p99.
struct TwoClassDelivery {
  ClassDelivery human;
  ClassDelivery machine;

  [[nodiscard]] bool any() const noexcept {
    return human.requests != 0 || machine.requests != 0;
  }
  void merge(const TwoClassDelivery& other);
};

[[nodiscard]] std::string render_two_class(const TwoClassDelivery& d);

class DeliveryMetrics {
 public:
  void record(bool cacheable, bool hit, std::uint64_t bytes,
              double latency_seconds);
  // An error response served to a client (origin failure that no resilience
  // mechanism could absorb): counted in requests/latency but in none of the
  // hit/miss/uncacheable buckets.
  void record_error(double latency_seconds);
  // A request rejected by overload protection (SHED or THROTTLED): counted
  // in requests but deliberately NOT in the latency sample — rejections
  // return instantly and would flatter the percentiles shedding protects.
  void record_rejected();
  void record_prefetch(std::uint64_t bytes);
  // Called when a previously prefetched object gets its first hit.
  void mark_prefetch_useful();
  // Server-push accounting: a speculative response sent to a client, and a
  // later request answered from the client-side pushed copy.
  void record_push(std::uint64_t bytes);
  void mark_push_used();
  // A stale cache entry served after a 304 revalidation (counted as a hit
  // by record(); this tracks how many of those hits were refreshes).
  void mark_refresh_hit();

  [[nodiscard]] std::uint64_t requests() const noexcept { return requests_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t uncacheable() const noexcept {
    return uncacheable_;
  }
  [[nodiscard]] std::uint64_t errors() const noexcept { return errors_; }
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::uint64_t bytes_served() const noexcept { return bytes_; }
  [[nodiscard]] std::uint64_t prefetches_issued() const noexcept {
    return prefetches_;
  }
  [[nodiscard]] std::uint64_t prefetch_bytes() const noexcept {
    return prefetch_bytes_;
  }
  [[nodiscard]] std::uint64_t useful_prefetches() const noexcept {
    return useful_prefetches_;
  }
  [[nodiscard]] std::uint64_t pushes_sent() const noexcept { return pushes_; }
  [[nodiscard]] std::uint64_t push_bytes() const noexcept {
    return push_bytes_;
  }
  [[nodiscard]] std::uint64_t pushes_used() const noexcept {
    return pushes_used_;
  }
  [[nodiscard]] std::uint64_t refresh_hits() const noexcept {
    return refresh_hits_;
  }
  // Wasted-push ratio (sent but never consumed before expiry).
  [[nodiscard]] double push_waste() const noexcept;

  // Hit ratio over cacheable traffic only.
  [[nodiscard]] double cacheable_hit_ratio() const noexcept;
  // Hit ratio over everything (uncacheable counts as a non-hit) — the number
  // a CDN operator reports as edge offload.
  [[nodiscard]] double overall_hit_ratio() const noexcept;
  // Share of requests that had to touch the origin.
  [[nodiscard]] double origin_share() const noexcept;
  // Wasted-prefetch ratio (fetched but never used before expiry).
  [[nodiscard]] double prefetch_waste() const noexcept;

  [[nodiscard]] stats::Summary latency_summary() const;
  [[nodiscard]] const std::vector<double>& latencies() const noexcept {
    return latencies_;
  }

  // Merges another metrics object (for summing per-edge metrics).
  void merge(const DeliveryMetrics& other);

 private:
  std::uint64_t requests_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t uncacheable_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t prefetches_ = 0;
  std::uint64_t prefetch_bytes_ = 0;
  std::uint64_t useful_prefetches_ = 0;
  std::uint64_t pushes_ = 0;
  std::uint64_t push_bytes_ = 0;
  std::uint64_t pushes_used_ = 0;
  std::uint64_t refresh_hits_ = 0;
  std::vector<double> latencies_;
};

}  // namespace jsoncdn::cdn
