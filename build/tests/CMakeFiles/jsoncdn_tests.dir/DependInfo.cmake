
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cdn_cache_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_cache_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_cache_test.cpp.o.d"
  "/root/repo/tests/cdn_edge_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_edge_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_edge_test.cpp.o.d"
  "/root/repo/tests/cdn_network_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_network_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_network_test.cpp.o.d"
  "/root/repo/tests/cdn_prioritizer_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_prioritizer_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_prioritizer_test.cpp.o.d"
  "/root/repo/tests/cdn_push_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_push_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_push_test.cpp.o.d"
  "/root/repo/tests/cdn_revalidation_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_revalidation_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_revalidation_test.cpp.o.d"
  "/root/repo/tests/cdn_scheduler_property_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_scheduler_property_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/cdn_scheduler_property_test.cpp.o.d"
  "/root/repo/tests/core_anomaly_prefetch_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_anomaly_prefetch_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_anomaly_prefetch_test.cpp.o.d"
  "/root/repo/tests/core_characterization_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_characterization_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_characterization_test.cpp.o.d"
  "/root/repo/tests/core_cost_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_cost_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_cost_test.cpp.o.d"
  "/root/repo/tests/core_detector_property_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_detector_property_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_detector_property_test.cpp.o.d"
  "/root/repo/tests/core_multiperiod_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_multiperiod_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_multiperiod_test.cpp.o.d"
  "/root/repo/tests/core_ngram_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_ngram_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_ngram_test.cpp.o.d"
  "/root/repo/tests/core_periodicity_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_periodicity_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_periodicity_test.cpp.o.d"
  "/root/repo/tests/core_report_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_report_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_report_test.cpp.o.d"
  "/root/repo/tests/core_study_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_study_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_study_test.cpp.o.d"
  "/root/repo/tests/core_timing_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_timing_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_timing_test.cpp.o.d"
  "/root/repo/tests/core_url_cluster_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/core_url_cluster_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/core_url_cluster_test.cpp.o.d"
  "/root/repo/tests/http_device_db_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_device_db_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_device_db_test.cpp.o.d"
  "/root/repo/tests/http_headers_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_headers_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_headers_test.cpp.o.d"
  "/root/repo/tests/http_message_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_message_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_message_test.cpp.o.d"
  "/root/repo/tests/http_mime_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_mime_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_mime_test.cpp.o.d"
  "/root/repo/tests/http_url_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_url_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_url_test.cpp.o.d"
  "/root/repo/tests/http_user_agent_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/http_user_agent_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/http_user_agent_test.cpp.o.d"
  "/root/repo/tests/integration_cli_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/integration_cli_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/integration_cli_test.cpp.o.d"
  "/root/repo/tests/logs_dataset_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/logs_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/logs_dataset_test.cpp.o.d"
  "/root/repo/tests/logs_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/logs_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/logs_test.cpp.o.d"
  "/root/repo/tests/stats_autocorrelation_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_autocorrelation_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_autocorrelation_test.cpp.o.d"
  "/root/repo/tests/stats_descriptive_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_descriptive_test.cpp.o.d"
  "/root/repo/tests/stats_distributions_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_distributions_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_distributions_test.cpp.o.d"
  "/root/repo/tests/stats_fft_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_fft_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_fft_test.cpp.o.d"
  "/root/repo/tests/stats_hash_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_hash_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_hash_test.cpp.o.d"
  "/root/repo/tests/stats_property_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_property_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_property_test.cpp.o.d"
  "/root/repo/tests/stats_rng_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_rng_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_rng_test.cpp.o.d"
  "/root/repo/tests/stats_timeseries_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/stats_timeseries_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/stats_timeseries_test.cpp.o.d"
  "/root/repo/tests/workload_app_graph_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_app_graph_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_app_graph_test.cpp.o.d"
  "/root/repo/tests/workload_catalog_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_catalog_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_catalog_test.cpp.o.d"
  "/root/repo/tests/workload_generator_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_generator_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_generator_test.cpp.o.d"
  "/root/repo/tests/workload_m2m_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_m2m_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_m2m_test.cpp.o.d"
  "/root/repo/tests/workload_profiles_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_profiles_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_profiles_test.cpp.o.d"
  "/root/repo/tests/workload_sessions_test.cpp" "tests/CMakeFiles/jsoncdn_tests.dir/workload_sessions_test.cpp.o" "gcc" "tests/CMakeFiles/jsoncdn_tests.dir/workload_sessions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/jsoncdn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cdn/CMakeFiles/jsoncdn_cdn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/jsoncdn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/logs/CMakeFiles/jsoncdn_logs.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/jsoncdn_http.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/jsoncdn_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
