#include "stats/fft.h"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace jsoncdn::stats {

std::size_t next_pow2(std::size_t n) noexcept {
  constexpr std::size_t kTopBit =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  if (n > kTopBit) return 0;  // no representable power of two >= n
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_inplace(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft_inplace: size must be a power of two");
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  // Butterfly passes.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

std::vector<std::complex<double>> fft_real(std::span<const double> signal) {
  std::vector<std::complex<double>> data(next_pow2(signal.size()));
  for (std::size_t i = 0; i < signal.size(); ++i) data[i] = signal[i];
  fft_inplace(data, /*inverse=*/false);
  return data;
}

std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> data) {
  fft_inplace(data, /*inverse=*/true);
  const double scale = 1.0 / static_cast<double>(data.size());
  for (auto& v : data) v *= scale;
  return data;
}

Periodogram periodogram(std::span<const double> signal) {
  if (signal.empty()) throw std::invalid_argument("periodogram: empty signal");
  double mean = 0.0;
  for (double v : signal) mean += v;
  mean /= static_cast<double>(signal.size());

  std::vector<double> centered(signal.size());
  for (std::size_t i = 0; i < signal.size(); ++i) centered[i] = signal[i] - mean;

  const auto spectrum = fft_real(centered);
  Periodogram out;
  out.padded_size = spectrum.size();
  const std::size_t half = spectrum.size() / 2;
  out.power.reserve(half);
  for (std::size_t k = 1; k <= half; ++k) {
    out.power.push_back(std::norm(spectrum[k]) /
                        static_cast<double>(spectrum.size()));
  }
  return out;
}

}  // namespace jsoncdn::stats
