# Empty compiler generated dependencies file for ablation_periodicity.
# This may be replaced when dependencies are built.
