// Non-cryptographic 64-bit hashing used across the library: stable IDs for
// URLs/domains, salted anonymization of client addresses, and RNG stream
// derivation. These hashes are deterministic across platforms and runs —
// unlike std::hash, which the standard does not pin down.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace jsoncdn::stats {

inline constexpr std::uint64_t kFnvOffsetBasis64 = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime64 = 0x100000001b3ULL;

// FNV-1a over bytes, optionally continuing from a previous state so callers
// can hash multiple fields without concatenating strings.
[[nodiscard]] constexpr std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t state = kFnvOffsetBasis64) noexcept {
  for (unsigned char c : bytes) {
    state ^= c;
    state *= kFnvPrime64;
  }
  return state;
}

// Mixes an integer into an FNV state (hashes its 8 little-endian bytes).
[[nodiscard]] constexpr std::uint64_t fnv1a64_mix(
    std::uint64_t value, std::uint64_t state = kFnvOffsetBasis64) noexcept {
  for (int i = 0; i < 8; ++i) {
    state ^= (value >> (8 * i)) & 0xffULL;
    state *= kFnvPrime64;
  }
  return state;
}

// Renders a 64-bit hash as 16 lowercase hex digits (stable textual IDs).
[[nodiscard]] std::string to_hex64(std::uint64_t value);

// Heterogeneous ("transparent") hashing for std::string-keyed hash maps:
// lets find()/contains() take a std::string_view without materializing a
// std::string, so lookups on hot paths never allocate. Use together with
// std::equal_to<> as the key-equality functor.
struct TransparentStringHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace jsoncdn::stats
