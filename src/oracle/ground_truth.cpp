#include "oracle/ground_truth.h"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "http/device_db.h"
#include "logs/csv.h"
#include "workload/device_profiles.h"

namespace jsoncdn::oracle {

namespace {

constexpr std::string_view kHeader = "#jsoncdn-truth-v1";

// Same three-byte percent escaping as the log format, so a sidecar line can
// never be broken by a tab/newline smuggled inside a UA string or URL.
std::string escape(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\t': out += "%09"; break;
      case '\n': out += "%0A"; break;
      case '\r': out += "%0D"; break;
      case '%': out += "%25"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

// Exact inverse of escape(): decode %XX only. http::url_decode is NOT the
// inverse — it also folds '+' to space (form encoding), which mangles UA
// strings like "Scrapy/2.11.0 (+https://scrapy.org)" on the way back in.
std::string unescape(std::string_view field) {
  return logs::unescape_field(field);
}

std::vector<std::string_view> split_tabs(std::string_view line) {
  std::vector<std::string_view> cols;
  std::size_t start = 0;
  while (true) {
    const auto tab = line.find('\t', start);
    if (tab == std::string_view::npos) {
      cols.push_back(line.substr(start));
      return cols;
    }
    cols.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

bool parse_u64(std::string_view s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_double(std::string_view s, double& out) {
  const std::string tmp(s);
  char* end = nullptr;
  out = std::strtod(tmp.c_str(), &end);
  return !tmp.empty() && end == tmp.c_str() + tmp.size();
}

[[noreturn]] void bad_line(std::uint64_t line_number, std::string_view what) {
  throw std::runtime_error("truth sidecar line " +
                           std::to_string(line_number) + ": " +
                           std::string(what));
}

}  // namespace

std::string_view truth_header() noexcept { return kHeader; }

TruthSidecar make_sidecar(const workload::GroundTruth& truth,
                          const workload::GeneratorConfig& config,
                          const logs::Anonymizer& anonymizer) {
  TruthSidecar out;
  auto key_of = [&](const std::string& address, const std::string& ua) {
    return anonymizer.pseudonym(address) + "|" + ua;
  };

  out.clients.reserve(truth.clients.size());
  for (const auto& c : truth.clients) {
    TruthClient tc;
    tc.client_key = key_of(c.address, c.user_agent);
    tc.profile_class = std::string(workload::to_string(c.profile_class));
    tc.device = std::string(http::to_string(c.device));
    tc.agent = std::string(http::to_string(c.agent));
    tc.runs_periodic_flow = c.runs_periodic_flow;
    out.clients.push_back(std::move(tc));
  }

  out.periodic_flows.reserve(truth.periodic_flows.size());
  for (const auto& f : truth.periodic_flows) {
    TruthFlow tf;
    tf.client_key = key_of(f.client_address, f.user_agent);
    tf.url = f.url;
    tf.period_seconds = f.period_seconds;
    tf.request_count = f.request_count;
    out.periodic_flows.push_back(std::move(tf));
  }

  out.sessions.reserve(truth.sessions.size());
  for (const auto& s : truth.sessions) {
    TruthSession ts;
    ts.client_key = key_of(s.client_address, s.user_agent);
    ts.urls = s.urls;
    out.sessions.push_back(std::move(ts));
  }

  out.attackers.reserve(truth.attackers.size());
  for (const auto& a : truth.attackers) {
    TruthAttacker ta;
    ta.client_key = key_of(a.client_address, a.user_agent);
    ta.kind = std::string(workload::to_string(a.kind));
    ta.request_count = a.request_count;
    out.attackers.push_back(std::move(ta));
  }

  out.template_of_url.insert(truth.template_of_url.begin(),
                             truth.template_of_url.end());
  out.industry_of_domain.insert(truth.industry_of_domain.begin(),
                                truth.industry_of_domain.end());

  const auto& shares = config.shares;
  out.population_shares = {
      {"mobile-app", shares.mobile_app},
      {"mobile-browser", shares.mobile_browser},
      {"desktop-browser", shares.desktop_browser},
      {"embedded", shares.embedded},
      {"library", shares.library},
      {"no-ua", shares.no_ua},
      {"garbage-ua", shares.garbage_ua},
  };
  out.total_events = truth.total_events;
  out.periodic_events = truth.periodic_events;
  out.hostile_events = truth.hostile_events;
  return out;
}

void write_truth(std::ostream& out, const TruthSidecar& sidecar) {
  out << kHeader << '\n';
  out << "stat\ttotal_events\t" << sidecar.total_events << '\n';
  out << "stat\tperiodic_events\t" << sidecar.periodic_events << '\n';
  // Additive v1 rows: only emitted for hostile workloads, so sidecars of
  // benign runs are byte-identical to those of earlier builds.
  if (sidecar.hostile_events != 0 || !sidecar.attackers.empty()) {
    out << "stat\thostile_events\t" << sidecar.hostile_events << '\n';
  }
  for (const auto& [name, value] : sidecar.population_shares) {
    out << "share\t" << escape(name) << '\t' << value << '\n';
  }
  for (const auto& c : sidecar.clients) {
    out << "client\t" << escape(c.client_key) << '\t'
        << escape(c.profile_class) << '\t' << escape(c.device) << '\t'
        << escape(c.agent) << '\t' << (c.runs_periodic_flow ? 1 : 0) << '\n';
  }
  for (const auto& f : sidecar.periodic_flows) {
    out << "flow\t" << escape(f.client_key) << '\t' << escape(f.url) << '\t'
        << f.period_seconds << '\t' << f.request_count << '\n';
  }
  for (const auto& s : sidecar.sessions) {
    out << "session\t" << escape(s.client_key);
    for (const auto& url : s.urls) out << '\t' << escape(url);
    out << '\n';
  }
  for (const auto& a : sidecar.attackers) {
    out << "attacker\t" << escape(a.client_key) << '\t' << escape(a.kind)
        << '\t' << a.request_count << '\n';
  }
  for (const auto& [url, key] : sidecar.template_of_url) {
    out << "template\t" << escape(url) << '\t' << escape(key) << '\n';
  }
  for (const auto& [domain, industry] : sidecar.industry_of_domain) {
    out << "industry\t" << escape(domain) << '\t' << escape(industry) << '\n';
  }
}

TruthSidecar read_truth(std::istream& in) {
  TruthSidecar out;
  std::string line;
  std::uint64_t line_number = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (!header_seen) {
      if (line != kHeader) {
        throw std::runtime_error(
            "truth sidecar: missing or unsupported header (expected \"" +
            std::string(kHeader) + "\", got \"" + line + "\")");
      }
      header_seen = true;
      continue;
    }
    const auto cols = split_tabs(line);
    const auto kind = cols[0];
    if (kind == "stat") {
      if (cols.size() != 3) bad_line(line_number, "stat needs 3 columns");
      std::uint64_t value = 0;
      if (!parse_u64(cols[2], value)) bad_line(line_number, "bad stat value");
      const auto name = unescape(cols[1]);
      if (name == "total_events") {
        out.total_events = value;
      } else if (name == "periodic_events") {
        out.periodic_events = value;
      } else if (name == "hostile_events") {
        out.hostile_events = value;
      } else {
        bad_line(line_number, "unknown stat name");
      }
    } else if (kind == "share") {
      if (cols.size() != 3) bad_line(line_number, "share needs 3 columns");
      double value = 0.0;
      if (!parse_double(cols[2], value)) bad_line(line_number, "bad share");
      out.population_shares.emplace(unescape(cols[1]), value);
    } else if (kind == "client") {
      if (cols.size() != 6) bad_line(line_number, "client needs 6 columns");
      TruthClient c;
      c.client_key = unescape(cols[1]);
      c.profile_class = unescape(cols[2]);
      c.device = unescape(cols[3]);
      c.agent = unescape(cols[4]);
      if (cols[5] != "0" && cols[5] != "1")
        bad_line(line_number, "bad periodic flag");
      c.runs_periodic_flow = cols[5] == "1";
      out.clients.push_back(std::move(c));
    } else if (kind == "flow") {
      if (cols.size() != 5) bad_line(line_number, "flow needs 5 columns");
      TruthFlow f;
      f.client_key = unescape(cols[1]);
      f.url = unescape(cols[2]);
      if (!parse_double(cols[3], f.period_seconds) || f.period_seconds <= 0.0)
        bad_line(line_number, "bad flow period");
      if (!parse_u64(cols[4], f.request_count))
        bad_line(line_number, "bad flow request count");
      out.periodic_flows.push_back(std::move(f));
    } else if (kind == "session") {
      if (cols.size() < 2) bad_line(line_number, "session needs >= 2 columns");
      TruthSession s;
      s.client_key = unescape(cols[1]);
      s.urls.reserve(cols.size() - 2);
      for (std::size_t i = 2; i < cols.size(); ++i)
        s.urls.push_back(unescape(cols[i]));
      out.sessions.push_back(std::move(s));
    } else if (kind == "attacker") {
      if (cols.size() != 4) bad_line(line_number, "attacker needs 4 columns");
      TruthAttacker a;
      a.client_key = unescape(cols[1]);
      a.kind = unescape(cols[2]);
      workload::AttackKind parsed{};
      if (!workload::parse_attack_kind(a.kind, parsed))
        bad_line(line_number, "unknown attack kind");
      if (!parse_u64(cols[3], a.request_count))
        bad_line(line_number, "bad attacker request count");
      out.attackers.push_back(std::move(a));
    } else if (kind == "template") {
      if (cols.size() != 3) bad_line(line_number, "template needs 3 columns");
      out.template_of_url.emplace(unescape(cols[1]), unescape(cols[2]));
    } else if (kind == "industry") {
      if (cols.size() != 3) bad_line(line_number, "industry needs 3 columns");
      out.industry_of_domain.emplace(unescape(cols[1]), unescape(cols[2]));
    } else {
      bad_line(line_number, "unknown record type");
    }
  }
  if (!header_seen)
    throw std::runtime_error("truth sidecar: empty file (no header)");
  return out;
}

void write_truth_file(const std::string& path, const TruthSidecar& sidecar) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("cannot open truth sidecar for writing: " + path);
  write_truth(out, sidecar);
  if (!out)
    throw std::runtime_error("failed writing truth sidecar: " + path);
}

TruthSidecar read_truth_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("cannot open truth sidecar: " + path);
  return read_truth(in);
}

}  // namespace jsoncdn::oracle
