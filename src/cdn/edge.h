// Edge server: the component whose request logs the paper analyzes. Each
// incoming request is resolved against the customer's cacheability config
// and the edge cache, fetched from origin when needed, logged, and measured.
// An optional prefetch policy (implemented in core/prefetch on top of the
// ngram model) is consulted after every served request.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cdn/cache.h"
#include "cdn/metrics.h"
#include "cdn/origin.h"
#include "cdn/overload.h"
#include "faults/breaker.h"
#include "faults/retry.h"
#include "logs/anonymizer.h"
#include "logs/record.h"
#include "workload/sessions.h"

namespace jsoncdn::cdn {

// Interface the edge consults after serving a request. Implementations
// return URLs to warm into the cache.
class PrefetchPolicy {
 public:
  virtual ~PrefetchPolicy() = default;
  [[nodiscard]] virtual std::vector<std::string> candidates(
      const logs::LogRecord& served) = 0;
};

// How the edge absorbs origin failures — the mechanisms real CDNs layer in
// front of unreliable customer infrastructure. All of them are inert when
// no fault plan is active (an origin that never fails never triggers them),
// so enabling them does not perturb fault-free runs.
struct ResilienceParams {
  // Bounded retry with exponential backoff + deterministic jitter. The
  // jitter seed makes the whole backoff schedule a pure function of
  // (seed, url, attempt) — identical across runs and thread counts.
  faults::RetryConfig retry;
  // Per-attempt budget charged when the origin connection hangs.
  double timeout_seconds = 1.0;
  // RFC 5861 stale-if-error: when the origin fails, an expired cached copy
  // no more than `stale_if_error_seconds` past its TTL is served instead of
  // the error.
  bool serve_stale_on_error = true;
  double stale_if_error_seconds = 600.0;
  // Negative caching: an origin failure is remembered this long, so repeat
  // requests during an incident fail fast (or serve stale) without another
  // origin round trip.
  double negative_ttl_seconds = 5.0;
  // Per-origin circuit breaker (closed / open / half-open).
  faults::BreakerConfig breaker;
};

struct EdgeParams {
  std::uint64_t cache_capacity_bytes = 512ULL * 1024 * 1024;
  double client_rtt_seconds = 0.020;       // client <-> edge
  double edge_bandwidth_bytes_per_s = 10e6;
  std::size_t max_prefetches_per_request = 3;
  // HTTP Server Push (the other delivery mechanism Section 5.2 proposes):
  // besides warming the edge cache, speculatively send predicted responses
  // to the requesting client. A later request covered by a fresh pushed
  // copy is answered from the client's buffer — no edge round trip.
  bool enable_push = false;
  double push_validity_seconds = 30.0;
  std::size_t max_pushes_per_request = 2;
  // Conditional revalidation: when a cached copy is merely stale, ask the
  // origin to validate it (If-None-Match -> 304) instead of re-transferring
  // the body. Cheaper than a full miss; logged as REFRESH.
  bool enable_revalidation = false;
  // Push-table hygiene: expired entries are swept once the table exceeds
  // `push_table_sweep_entries`, or when `push_table_sweep_seconds` of
  // simulated time has passed since the last sweep — whichever comes first.
  // Both triggers depend only on event time and table size, so sweeps replay
  // identically; sweeping only drops entries that could no longer be used.
  std::size_t push_table_sweep_entries = 200'000;
  double push_table_sweep_seconds = 300.0;
  ResilienceParams resilience;
  // Admission control, rate limiting, and load shedding. Inert by default
  // (model_capacity == false): the edge behaves bit-identically to builds
  // that predate overload protection.
  OverloadParams overload;
};

class EdgeServer {
 public:
  EdgeServer(std::uint32_t id, const Origin& origin,
             const logs::Anonymizer& anonymizer, const EdgeParams& params);

  // Serves one request at its event time and returns the log record.
  // `policy` may be nullptr (no prefetching).
  [[nodiscard]] logs::LogRecord handle(const workload::RequestEvent& event,
                                       PrefetchPolicy* policy = nullptr);

  [[nodiscard]] std::uint32_t id() const noexcept { return id_; }
  [[nodiscard]] const DeliveryMetrics& metrics() const noexcept {
    return metrics_;
  }
  [[nodiscard]] const ResilienceMetrics& resilience() const noexcept {
    return resilience_;
  }
  // Human/machine delivery split; empty unless overload.model_capacity.
  [[nodiscard]] const TwoClassDelivery& two_class() const noexcept {
    return two_class_;
  }
  [[nodiscard]] const LruCache& cache() const noexcept { return cache_; }
  // Live push-table entries (sweep instrumentation; tests assert the bound).
  [[nodiscard]] std::size_t push_table_size() const noexcept {
    return pushed_.size();
  }

  // Every breaker state change on this edge, sorted by (time, domain).
  [[nodiscard]] std::vector<BreakerEvent> breaker_timeline() const;

 private:
  // One logical origin interaction: breaker gate, then up to
  // 1 + retry.max_retries attempts with backoff. `latency` accumulates the
  // origin-side time spent (failed attempts, backoff, timeout budgets).
  struct OriginOutcome {
    OriginResult result;
    double latency = 0.0;
    bool success = false;
    int status = 503;           // client-facing status on failure
    bool short_circuited = false;  // breaker refused; origin untouched
  };
  OriginOutcome contact_origin(const std::string& url,
                               const std::string& domain, double now,
                               bool revalidate_only);

  // The pre-overload request path: cache/origin resolution for an admitted
  // request. `queue_wait` (simulated time spent waiting for a worker) is
  // added to every client-perceived latency.
  [[nodiscard]] logs::LogRecord serve(const workload::RequestEvent& event,
                                      PrefetchPolicy* policy,
                                      double queue_wait);

  // Cached two-class split (machine_class() parses the UA once per string).
  [[nodiscard]] bool is_machine(const std::string& user_agent);

  void maybe_prefetch(const logs::LogRecord& served, PrefetchPolicy* policy,
                      double now);

  std::uint32_t id_;
  const Origin& origin_;
  const logs::Anonymizer& anonymizer_;
  EdgeParams params_;
  LruCache cache_;
  DeliveryMetrics metrics_;
  ResilienceMetrics resilience_;
  // Per-origin-domain breakers; ordered so iteration (and therefore the
  // reported timeline) is deterministic.
  std::map<std::string, faults::CircuitBreaker> breakers_;
  // url -> remembered origin failure (negative cache).
  struct NegativeEntry {
    double expires_at = 0.0;
    int status = 503;
  };
  std::unordered_map<std::string, NegativeEntry> negative_cache_;
  // URLs currently in cache because of a prefetch, not yet used.
  std::unordered_set<std::string> pending_prefetches_;
  // (client_key \x1f url) -> push expiry time.
  std::unordered_map<std::string, double> pushed_;
  // Simulated time of the last push-table sweep.
  double last_push_sweep_ = 0.0;
  // Overload protection state and per-class delivery accounting.
  OverloadController overload_;
  TwoClassDelivery two_class_;
  std::unordered_map<std::string, bool> ua_machine_;
};

}  // namespace jsoncdn::cdn
