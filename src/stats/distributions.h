// Heavy-tailed and arrival-process samplers used by the workload generator.
//
// Web object popularity is classically Zipf-distributed; response bodies are
// well modelled by lognormal (body) + Pareto (tail); human request arrivals by
// Poisson processes. Each sampler is a small value type that owns its
// parameters and draws from a caller-supplied Rng, keeping all randomness on
// the single seeded path.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.h"

namespace jsoncdn::stats {

// Zipf distribution over ranks {0, ..., n-1} with exponent s >= 0 (s = 0 is
// uniform). Uses an inverted-CDF table: O(n) setup, O(log n) per draw, exact.
class ZipfSampler {
 public:
  // Requires n >= 1 and s >= 0.
  ZipfSampler(std::size_t n, double s);

  // Draws a rank in [0, size()); rank 0 is the most popular item.
  [[nodiscard]] std::size_t sample(Rng& rng) const;

  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }
  [[nodiscard]] double exponent() const noexcept { return s_; }
  // P(rank = k); useful for tests and expected-share computations.
  [[nodiscard]] double pmf(std::size_t rank) const;

 private:
  double s_;
  std::vector<double> cdf_;  // cdf_[k] = P(rank <= k), cdf_.back() == 1
};

// Lognormal body-size model with an optional Pareto upper tail, clamped to
// [min_bytes, max_bytes]. Matches the empirical shape of HTTP response sizes:
// most bodies cluster around a mode with a long right tail.
class BodySizeSampler {
 public:
  struct Params {
    double log_mean = 6.0;      // mean of ln(bytes)
    double log_stddev = 1.0;    // stddev of ln(bytes)
    double tail_prob = 0.0;     // probability a draw comes from the Pareto tail
    double tail_xm = 64 * 1024; // Pareto scale (tail minimum), bytes
    double tail_alpha = 1.5;    // Pareto shape; > 1 for finite mean
    std::uint64_t min_bytes = 16;
    std::uint64_t max_bytes = 64ULL * 1024 * 1024;
  };

  explicit BodySizeSampler(const Params& params);

  [[nodiscard]] std::uint64_t sample(Rng& rng) const;
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
};

// Homogeneous Poisson arrival process: successive inter-arrival gaps are
// exponential with the given rate (events per second).
class PoissonProcess {
 public:
  // Requires rate > 0.
  explicit PoissonProcess(double rate);

  // Returns the next arrival strictly after `now` (seconds).
  [[nodiscard]] double next_after(double now, Rng& rng) const;

  // All arrivals in [t_begin, t_end).
  [[nodiscard]] std::vector<double> arrivals(double t_begin, double t_end,
                                             Rng& rng) const;

  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
};

// Draws an index in [0, weights.size()) proportionally to non-negative
// weights. Requires at least one strictly positive weight.
[[nodiscard]] std::size_t weighted_choice(const std::vector<double>& weights,
                                          Rng& rng);

}  // namespace jsoncdn::stats
