# Empty dependencies file for cost_per_byte.
# This may be replaced when dependencies are built.
