// Delivery-mechanism ablation for §5.2's proposals: edge prefetch alone,
// prefetch + HTTP server push, and prefetch + push + interarrival-aware
// candidate filtering (the paper's future-work refinement). Reports hit
// ratio, client latency, and speculative-traffic waste.
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "cdn/network.h"
#include "core/prefetch.h"
#include "core/timing.h"
#include "workload/generator.h"

namespace {

jsoncdn::workload::GeneratorConfig scenario(std::uint64_t seed,
                                            std::size_t n_clients) {
  jsoncdn::workload::GeneratorConfig config;
  config.seed = seed;
  config.catalog_seed = 4321;
  config.duration_seconds = 3 * 3600.0;
  config.n_clients = n_clients;
  config.catalog.domains_per_industry = 2;
  config.shares = {0.75, 0.04, 0.03, 0.06, 0.02, 0.07, 0.03};
  return config;
}

struct Row {
  const char* name;
  jsoncdn::cdn::DeliveryMetrics metrics;
};

void print_row(const Row& row) {
  const auto& m = row.metrics;
  const auto latency = m.latency_summary();
  std::printf("  %-24s hit %.4f   mean %6.1f ms   p50 %6.1f ms   "
              "p99 %6.1f ms   pushes %6llu (waste %.2f)\n",
              row.name, m.cacheable_hit_ratio(), latency.mean * 1000.0,
              latency.p50 * 1000.0, latency.p99 * 1000.0,
              static_cast<unsigned long long>(m.pushes_sent()),
              m.push_waste());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace jsoncdn;
  const std::size_t n_clients =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 1500;
  bench::print_header("Ablation: prefetch / push / interarrival filtering",
                      "Section 5.2 delivery mechanisms");

  workload::WorkloadGenerator train_gen(scenario(801, n_clients));
  const auto train = train_gen.generate();
  cdn::CdnNetwork train_net(train_gen.catalog().objects(), {});
  const auto train_json = train_net.run(train.events).json_only();

  workload::WorkloadGenerator replay_gen(scenario(802, n_clients));
  const auto replay = replay_gen.generate();

  std::vector<Row> rows;

  {
    cdn::CdnNetwork net(train_gen.catalog().objects(), {});
    (void)net.run(replay.events);
    rows.push_back({"baseline", net.total_metrics()});
  }
  {
    core::NgramPrefetcher prefetcher(
        core::train_prefetch_model(train_json, 2), {});
    cdn::CdnNetwork net(train_gen.catalog().objects(), {});
    (void)net.run(replay.events, &prefetcher);
    rows.push_back({"prefetch", net.total_metrics()});
  }
  {
    core::NgramPrefetcher prefetcher(
        core::train_prefetch_model(train_json, 2), {});
    cdn::NetworkParams params;
    params.edge.enable_push = true;
    cdn::CdnNetwork net(train_gen.catalog().objects(), params);
    (void)net.run(replay.events, &prefetcher);
    rows.push_back({"prefetch+push", net.total_metrics()});
  }
  {
    core::PrefetcherParams pparams;
    pparams.max_expected_gap_seconds = 120.0;
    core::NgramPrefetcher prefetcher(
        core::train_prefetch_model(train_json, 2), pparams);
    core::InterarrivalModel timing;
    timing.observe_dataset(train_json);
    prefetcher.set_timing_model(std::move(timing));
    cdn::NetworkParams params;
    params.edge.enable_push = true;
    cdn::CdnNetwork net(train_gen.catalog().objects(), params);
    (void)net.run(replay.events, &prefetcher);
    rows.push_back({"prefetch+push+timing", net.total_metrics()});
    std::printf("  (timing filter dropped %llu candidates)\n",
                static_cast<unsigned long long>(prefetcher.timing_filtered()));
  }

  for (const auto& row : rows) print_row(row);
  bench::note("");
  bench::note("expected shape: prefetch lifts hit ratio; push additionally "
              "collapses p50");
  bench::note("latency for correctly predicted requests; the interarrival "
              "filter trims");
  bench::note("speculative traffic for far-future predictions at little "
              "hit-ratio cost.");
  return 0;
}
