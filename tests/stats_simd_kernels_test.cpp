// Scalar-vs-SIMD equivalence suite for the dual-build analysis kernels
// (stats/kernels.h). The contract under test: every kernel — float kernels
// included, because both builds compile the identical arithmetic graph with
// FP contraction off — returns bit-identical results whichever dispatch path
// runs it, and matches the pre-kernel reference loop (kernels::baseline) the
// call sites ran before the kernel layer existed. Lengths sweep 0 / 1 /
// lane-1 / lane / lane+1 and beyond so remainder handling is covered on
// every kernel, and the counting kernels are additionally sharded the way
// parallel_reduce shards them to pin order-independence.
#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <complex>
#include <cstdint>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "shard/varint.h"
#include "stats/kernels.h"
#include "stats/rng.h"
#include "stats/simd.h"
#include "stream/countmin.h"
#include "stream/hyperloglog.h"

namespace jsoncdn {
namespace {

namespace kernels = stats::kernels;

// Edge lengths around the 4-wide double / 8-wide int32 AVX2 lanes, plus the
// 1024-element internal block size of bin_events, plus a mid-size bulk.
constexpr std::array<std::size_t, 17> kLengths = {
    0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 1000, 1023, 1024, 1025};

// Runs `fn(simd_active)` under both dispatch paths, restoring the mode the
// process entered with. On hardware without the SIMD build both invocations
// run the scalar build and the comparison is trivially (but still validly)
// satisfied.
template <typename Fn>
void with_both_modes(Fn&& fn) {
  const bool entry = stats::simd_enabled();
  stats::set_simd_enabled(false);
  fn(false);
  stats::set_simd_enabled(true);
  fn(stats::simd_available());
  stats::set_simd_enabled(entry);
}

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed,
                                   double scale) {
  std::vector<double> out(n);
  std::uint64_t s = seed;
  for (auto& v : out) {
    s = stats::splitmix64(s);
    // Map to [-scale, scale) with full mantissa variety.
    v = (static_cast<double>(s >> 11) / 9007199254740992.0 * 2.0 - 1.0) *
        scale;
  }
  return out;
}

std::vector<std::uint64_t> random_u64(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> out(n);
  std::uint64_t s = seed;
  for (auto& v : out) v = s = stats::splitmix64(s);
  return out;
}

::testing::AssertionResult bits_equal(const std::vector<double>& a,
                                      const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size " << a.size() << " vs "
                                         << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i]) !=
        std::bit_cast<std::uint64_t>(b[i])) {
      return ::testing::AssertionFailure()
             << "bit mismatch at " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult bits_equal(
    const std::vector<std::complex<double>>& a,
    const std::vector<std::complex<double>>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "size mismatch";
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::bit_cast<std::uint64_t>(a[i].real()) !=
            std::bit_cast<std::uint64_t>(b[i].real()) ||
        std::bit_cast<std::uint64_t>(a[i].imag()) !=
            std::bit_cast<std::uint64_t>(b[i].imag())) {
      return ::testing::AssertionFailure() << "bit mismatch at " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

// The twiddle chain fft.cpp feeds the table kernel: one complex multiply
// per entry, exactly the w *= wlen recurrence the baseline stage runs.
std::vector<std::complex<double>> stage_twiddles(std::size_t len,
                                                 bool inverse) {
  const double angle = (inverse ? 2.0 : -2.0) * std::numbers::pi /
                       static_cast<double>(len);
  const std::complex<double> wlen(std::cos(angle), std::sin(angle));
  std::vector<std::complex<double>> tw;
  tw.reserve(len / 2);
  std::complex<double> w(1.0, 0.0);
  for (std::size_t k = 0; k < len / 2; ++k) {
    tw.push_back(w);
    w *= wlen;
  }
  return tw;
}

TEST(SimdKernels, DispatchRespectsOverrideAndReportsIsa) {
  const bool entry = stats::simd_enabled();
  stats::set_simd_enabled(false);
  EXPECT_FALSE(stats::simd_enabled());
  EXPECT_STREQ(stats::simd_isa(), "scalar");
  stats::set_simd_enabled(true);
  EXPECT_EQ(stats::simd_enabled(), stats::simd_available());
  if (stats::simd_available()) {
    EXPECT_STRNE(stats::simd_isa(), "scalar");
  }
  stats::set_simd_enabled(entry);
}

TEST(SimdKernels, FftPassMatchesBaselineBitIdentical) {
  constexpr std::size_t n = 512;
  const auto re = random_doubles(n, 0xf17u, 100.0);
  const auto im = random_doubles(n, 0xf18u, 100.0);
  std::vector<std::complex<double>> input(n);
  for (std::size_t i = 0; i < n; ++i) input[i] = {re[i], im[i]};

  for (const bool inverse : {false, true}) {
    for (std::size_t len = 2; len <= n; len <<= 1) {
      auto expected = input;
      kernels::baseline::fft_pass(expected.data(), n, len, inverse);
      const auto tw = stage_twiddles(len, inverse);
      with_both_modes([&](bool) {
        auto got = input;
        kernels::fft_pass(got.data(), n, len, tw.data());
        EXPECT_TRUE(bits_equal(expected, got))
            << "len=" << len << " inverse=" << inverse << " isa="
            << stats::simd_isa();
      });
    }
  }
}

TEST(SimdKernels, ComplexNormAndExtractsBitIdenticalAcrossDispatch) {
  for (const std::size_t n : kLengths) {
    const auto re = random_doubles(n, 0xabcu + n, 50.0);
    const auto im = random_doubles(n, 0xdefu + n, 50.0);
    std::vector<std::complex<double>> input(n);
    for (std::size_t i = 0; i < n; ++i) input[i] = {re[i], im[i]};

    // Reference loops: the exact expressions the pre-kernel code ran.
    std::vector<std::complex<double>> norm_ref = input;
    for (auto& v : norm_ref)
      v = {v.real() * v.real() + v.imag() * v.imag(), 0.0};
    const double padded = 4096.0;
    const double scale = 1.0 / 3072.0;
    const double energy = 17.25;
    const std::size_t count = n > 0 ? n - 1 : 0;
    std::vector<double> pgram_ref(count);
    for (std::size_t k = 0; k < count; ++k)
      pgram_ref[k] = input[k + 1].real() / padded;
    std::vector<double> acf_ref(n);
    for (std::size_t k = 0; k < n; ++k)
      acf_ref[k] = (input[k].real() * scale) / energy;

    with_both_modes([&](bool) {
      auto norm = input;
      kernels::complex_norm(norm.data(), n);
      EXPECT_TRUE(bits_equal(norm_ref, norm)) << "n=" << n;

      std::vector<double> pgram(count);
      kernels::pgram_extract(input.data(), count, padded, pgram.data());
      EXPECT_TRUE(bits_equal(pgram_ref, pgram)) << "n=" << n;

      std::vector<double> acf(n);
      kernels::acf_extract(input.data(), n, scale, energy, acf.data());
      EXPECT_TRUE(bits_equal(acf_ref, acf)) << "n=" << n;
    });
  }
}

TEST(SimdKernels, AcfDirectMatchesBaselineAcrossLagCounts) {
  for (const std::size_t n : kLengths) {
    if (n == 0) continue;  // acf over an empty series never runs
    const auto x = random_doubles(n, 0x5ca1eu + n, 2.0);
    double energy = 0.0;
    for (const double v : x) energy += v * v;
    if (energy == 0.0) energy = 1.0;
    for (const std::size_t max_lag :
         {std::size_t{0}, std::size_t{1}, n / 2, n - 1}) {
      std::vector<double> expected(max_lag + 1);
      kernels::baseline::acf_direct(x.data(), n, max_lag, energy,
                                    expected.data());
      with_both_modes([&](bool) {
        std::vector<double> got(max_lag + 1);
        kernels::acf_direct(x.data(), n, max_lag, energy, got.data());
        EXPECT_TRUE(bits_equal(expected, got))
            << "n=" << n << " max_lag=" << max_lag;
      });
    }
  }
}

TEST(SimdKernels, BinEventsMatchesBaselineIncludingExactEdges) {
  const double t_begin = 10.0;
  const double dt = 0.25;
  const std::size_t nbins = 16;
  const double t_end = t_begin + dt * static_cast<double>(nbins);
  for (const std::size_t n : kLengths) {
    auto times = random_doubles(n, 0xb1du + n, 3.0);
    for (auto& t : times) t = t_begin + (t + 3.0) * 0.8;  // mostly in-window
    // Salt in the hard cases: exact bin edges, the window edges themselves,
    // out-of-window values on both sides, and a top-edge round-off stressor.
    const double specials[] = {t_begin,        t_begin + dt,  t_begin + 7 * dt,
                               t_end - dt,     t_end,         t_end + 1.0,
                               t_begin - 1e-9, std::nextafter(t_end, t_begin),
                               t_begin + 0.999999 * dt};
    for (std::size_t i = 0; i < n && i < std::size(specials); ++i)
      times[i] = specials[i];

    std::vector<double> expected(nbins, 0.0);
    kernels::baseline::bin_events(times.data(), n, t_begin, t_end, dt,
                                  expected.data(), nbins);
    with_both_modes([&](bool) {
      std::vector<double> got(nbins, 0.0);
      kernels::bin_events(times.data(), n, t_begin, t_end, dt, got.data(),
                          nbins);
      EXPECT_TRUE(bits_equal(expected, got)) << "n=" << n;
    });
  }
}

TEST(SimdKernels, BinEventsExactBoundaryTimestampsLandInOpeningBin) {
  // Regression for the bin-edge rounding audit: a timestamp exactly on an
  // interior bin edge belongs to the bin it opens (quotient is exact), the
  // window start lands in bin 0, and t_end is excluded — identically under
  // both dispatch paths.
  const double t_begin = 100.0;
  const double dt = 0.5;
  const std::size_t nbins = 8;
  const double t_end = 104.0;
  const std::vector<double> times = {100.0, 100.5, 101.5, 103.5, 104.0};
  with_both_modes([&](bool) {
    std::vector<double> bins(nbins, 0.0);
    kernels::bin_events(times.data(), times.size(), t_begin, t_end, dt,
                        bins.data(), nbins);
    EXPECT_DOUBLE_EQ(bins[0], 1.0);  // t_begin itself
    EXPECT_DOUBLE_EQ(bins[1], 1.0);  // first interior edge opens bin 1
    EXPECT_DOUBLE_EQ(bins[3], 1.0);
    EXPECT_DOUBLE_EQ(bins[7], 1.0);  // last edge opens the final bin
    double total = 0.0;
    for (const double b : bins) total += b;
    EXPECT_DOUBLE_EQ(total, 4.0);  // t_end excluded
  });
}

TEST(SimdKernels, BinEventsLargeSortedAndShuffledMatchBaseline) {
  // Large inputs engage the kernel's bulk strategies — the sorted
  // boundary-search path for chronological times and the integer
  // sub-histogram scatter for shuffled ones — both of which must reproduce
  // the single-pass loop bit for bit. dt = 1/3 is not representable, so the
  // bin edges and the top-edge clamp all involve real round-off.
  const std::size_t n = 8192;
  const double t_begin = -7.0;
  const double dt = 1.0 / 3.0;
  for (const std::size_t nbins :
       {std::size_t{1}, std::size_t{16}, std::size_t{1024}}) {
    const double t_end = t_begin + dt * static_cast<double>(nbins);
    auto times = random_doubles(n, 0x50feu + nbins, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      times[i] = t_begin - 5.0 + (times[i] + 1.0) * 0.5 *
                                     (t_end - t_begin + 10.0);
    }
    // Exact interior edges, window edges, duplicates, and off-by-one-ulp.
    for (std::size_t i = 0; i + 4 <= n && i < 40 * nbins; i += 4) {
      const double edge =
          t_begin + dt * static_cast<double>((i / 4) % (nbins + 1));
      times[i] = edge;
      times[i + 1] = edge;
      times[i + 2] = std::nextafter(edge, t_begin);
      times[i + 3] = t_end;
    }
    std::vector<double> shuffled = times;
    std::sort(times.begin(), times.end());
    std::vector<double> nearly = times;
    std::swap(nearly[n - 1], nearly[n / 2]);  // defeats the sorted detector

    for (const auto* input : {&times, &shuffled, &nearly}) {
      std::vector<double> expected(nbins, 0.0);
      kernels::baseline::bin_events(input->data(), n, t_begin, t_end, dt,
                                    expected.data(), nbins);
      with_both_modes([&](bool) {
        std::vector<double> got(nbins, 0.0);
        kernels::bin_events(input->data(), n, t_begin, t_end, dt, got.data(),
                            nbins);
        EXPECT_TRUE(bits_equal(expected, got))
            << "nbins=" << nbins
            << (input == &times ? " sorted" : input == &shuffled ? " shuffled"
                                                                 : " nearly");
      });
    }
  }
}

TEST(SimdKernels, MaxValueMatchesSerialFold) {
  for (const std::size_t n : kLengths) {
    const auto x = random_doubles(n, 0x3a7u + n, 9.0);
    double expected = -1.0;
    for (const double v : x) expected = std::max(expected, v);
    with_both_modes([&](bool) {
      const double got = kernels::max_value(x.data(), n, -1.0);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(expected),
                std::bit_cast<std::uint64_t>(got))
          << "n=" << n;
    });
  }
}

TEST(SimdKernels, DiffAscendingComputesGapsAndFlagsViolations) {
  for (const std::size_t n : kLengths) {
    if (n < 2) {
      with_both_modes([&](bool) {
        double out = 0.0;
        const double t = 1.0;
        EXPECT_TRUE(kernels::diff_ascending(&t, n, &out));
      });
      continue;
    }
    auto x = random_doubles(n, 0x9e3u + n, 1.0);
    std::sort(x.begin(), x.end());
    std::vector<double> expected(n - 1);
    for (std::size_t i = 0; i + 1 < n; ++i) expected[i] = x[i + 1] - x[i];
    with_both_modes([&](bool) {
      std::vector<double> got(n - 1);
      EXPECT_TRUE(kernels::diff_ascending(x.data(), n, got.data()));
      EXPECT_TRUE(bits_equal(expected, got)) << "n=" << n;
    });
    // One violation anywhere flips the flag; gaps are still written.
    auto bad = x;
    std::swap(bad[n / 2], bad[n - 1]);
    if (bad[n / 2] == bad[n - 1]) continue;  // duplicate values: no violation
    with_both_modes([&](bool) {
      std::vector<double> got(n - 1);
      EXPECT_FALSE(kernels::diff_ascending(bad.data(), n, got.data()));
    });
  }
}

TEST(SimdKernels, CountU32MatchesBaselineAcrossTableShapes) {
  // Shapes straddling the multi-table cutover: tiny tables, the 4096-key
  // boundary, and a table too large for sub-table splitting; uniform and
  // heavily skewed streams; gathered and direct walks.
  const std::size_t shapes[][2] = {
      {1, 64}, {7, 64}, {8, 8}, {4096, 100000}, {4097, 100000}, {8000, 9000}};
  for (const auto& [n_keys, n] : shapes) {
    const auto raw = random_u64(n, 0xc0deu + n_keys);
    std::vector<std::uint32_t> uniform(n);
    std::vector<std::uint32_t> skewed(n);
    for (std::size_t i = 0; i < n; ++i) {
      uniform[i] = static_cast<std::uint32_t>(raw[i] % n_keys);
      // ~90% of the stream hits key 0 — the store-forwarding worst case.
      skewed[i] = (raw[i] % 10 != 0)
                      ? 0u
                      : static_cast<std::uint32_t>(raw[i] % n_keys);
    }
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < n; i += 2)
      idx.push_back(static_cast<std::uint32_t>(i));

    for (const auto* keys : {&uniform, &skewed}) {
      for (const bool gathered : {false, true}) {
        const std::uint32_t* gi = gathered ? idx.data() : nullptr;
        const std::size_t count = gathered ? idx.size() : n;
        // Accumulation contract: start from a non-zero tally.
        std::vector<std::uint64_t> expected(n_keys, 5);
        kernels::baseline::count_u32(keys->data(), gi, count, expected.data(),
                                     n_keys);
        with_both_modes([&](bool) {
          std::vector<std::uint64_t> got(n_keys, 5);
          kernels::count_u32(keys->data(), gi, count, got.data(), n_keys);
          EXPECT_EQ(expected, got)
              << "n_keys=" << n_keys << " gathered=" << gathered;
        });
      }
    }
  }
}

TEST(SimdKernels, CountingKernelsShardAccumulateLikeSinglePass) {
  // The parallel_reduce usage: shards tally into per-shard buffers that
  // merge by addition. u64 increments commute, so any shard split — any
  // thread count — must reproduce the single-pass tallies exactly.
  constexpr std::size_t n = 4099;
  constexpr std::size_t n_keys = 37;
  const auto raw = random_u64(n, 0x5eedu);
  std::vector<std::uint32_t> keys(n);
  std::vector<std::int32_t> enums(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = static_cast<std::uint32_t>(raw[i] % n_keys);
    enums[i] = static_cast<std::int32_t>(raw[i] % 8);
  }
  with_both_modes([&](bool) {
    std::vector<std::uint64_t> whole_keys(n_keys, 0);
    kernels::count_u32(keys.data(), nullptr, n, whole_keys.data(), n_keys);
    std::vector<std::uint64_t> whole_enum(8, 0);
    kernels::count_enum8(enums.data(), nullptr, n, whole_enum.data());

    for (const std::size_t shards : {1, 2, 3, 8}) {
      std::vector<std::uint64_t> acc_keys(n_keys, 0);
      std::vector<std::uint64_t> acc_enum(8, 0);
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t b = n * s / shards;
        const std::size_t e = n * (s + 1) / shards;
        kernels::count_u32(keys.data() + b, nullptr, e - b, acc_keys.data(),
                           n_keys);
        kernels::count_enum8(enums.data() + b, nullptr, e - b,
                             acc_enum.data());
      }
      EXPECT_EQ(whole_keys, acc_keys) << "shards=" << shards;
      EXPECT_EQ(whole_enum, acc_enum) << "shards=" << shards;
    }
  });
}

TEST(SimdKernels, CountEnum8MatchesManualTally) {
  for (const std::size_t n : kLengths) {
    const auto raw = random_u64(n, 0xe9u + n);
    std::vector<std::int32_t> vals(n);
    for (std::size_t i = 0; i < n; ++i)
      vals[i] = static_cast<std::int32_t>(raw[i] % 8);
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < n; i += 3)
      idx.push_back(static_cast<std::uint32_t>(i));

    for (const bool gathered : {false, true}) {
      const std::uint32_t* gi = gathered ? idx.data() : nullptr;
      const std::size_t count = gathered ? idx.size() : n;
      std::vector<std::uint64_t> expected(8, 0);
      for (std::size_t i = 0; i < count; ++i)
        ++expected[static_cast<std::size_t>(vals[gathered ? idx[i] : i])];
      with_both_modes([&](bool) {
        std::vector<std::uint64_t> got(8, 0);
        kernels::count_enum8(vals.data(), gi, count, got.data());
        EXPECT_EQ(expected, got) << "n=" << n << " gathered=" << gathered;
      });
    }
  }
}

TEST(SimdKernels, CountStatusMatchesBaseline) {
  const std::int32_t pool[] = {200, 204, 299, 300, 304, 399, 400, 404, 499,
                               500, 503, 504, 599, 100, 0,   -5,  999, 504};
  for (const std::size_t n : kLengths) {
    std::vector<std::int32_t> status(n);
    for (std::size_t i = 0; i < n; ++i) status[i] = pool[i % std::size(pool)];
    std::vector<std::uint32_t> idx;
    for (std::size_t i = 0; i < n; i += 2)
      idx.push_back(static_cast<std::uint32_t>(i));
    for (const bool gathered : {false, true}) {
      const std::uint32_t* gi = gathered ? idx.data() : nullptr;
      const std::size_t count = gathered ? idx.size() : n;
      const auto expected =
          kernels::baseline::count_status(status.data(), gi, count);
      with_both_modes([&](bool) {
        const auto got = kernels::count_status(status.data(), gi, count);
        EXPECT_EQ(expected.ok_2xx, got.ok_2xx);
        EXPECT_EQ(expected.redirect_3xx, got.redirect_3xx);
        EXPECT_EQ(expected.client_error_4xx, got.client_error_4xx);
        EXPECT_EQ(expected.server_error_5xx, got.server_error_5xx);
        EXPECT_EQ(expected.gateway_timeout_504, got.gateway_timeout_504);
      });
    }
  }
}

TEST(SimdKernels, SplitmixBatchMatchesElementwise) {
  for (const std::size_t n : kLengths) {
    const auto keys = random_u64(n, 0x77u + n);
    for (const std::uint64_t salt :
         {std::uint64_t{0}, std::uint64_t{0x123456789abcdefULL}}) {
      std::vector<std::uint64_t> expected(n);
      kernels::baseline::splitmix_batch(keys.data(), n, salt,
                                        expected.data());
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(expected[i], stats::splitmix64(keys[i] ^ salt));
      with_both_modes([&](bool) {
        std::vector<std::uint64_t> got(n);
        kernels::splitmix_batch(keys.data(), n, salt, got.data());
        EXPECT_EQ(expected, got) << "n=" << n;
      });
    }
  }
}

TEST(SimdKernels, SketchAddBatchBitIdenticalToAddLoop) {
  const auto hashes = random_u64(4099, 0x40adu);
  with_both_modes([&](bool) {
    stream::HyperLogLog one_by_one(12);
    stream::HyperLogLog batched(12);
    for (const auto h : hashes) one_by_one.add(h);
    batched.add_batch(hashes.data(), hashes.size());
    EXPECT_EQ(std::bit_cast<std::uint64_t>(one_by_one.estimate()),
              std::bit_cast<std::uint64_t>(batched.estimate()));
    // Idempotent-merge cross-check: merging the two must change neither.
    stream::HyperLogLog merged = one_by_one;
    merged.merge(batched);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(merged.estimate()),
              std::bit_cast<std::uint64_t>(one_by_one.estimate()));

    stream::CountMinSketch cms_loop(0.01, 0.01, 42);
    stream::CountMinSketch cms_batch(0.01, 0.01, 42);
    for (const auto h : hashes) cms_loop.add(h);
    cms_batch.add_batch(hashes.data(), hashes.size());
    EXPECT_EQ(cms_loop.total_weight(), cms_batch.total_weight());
    for (std::size_t i = 0; i < hashes.size(); i += 97)
      EXPECT_EQ(cms_loop.estimate(hashes[i]), cms_batch.estimate(hashes[i]));
  });
}

TEST(SimdKernels, DeltaDecoderBulkMatchesScalarGet) {
  // Values spanning every varint length, including modular-wraparound jumps.
  std::vector<std::uint64_t> values = {0,
                                       1,
                                       127,
                                       128,
                                       300,
                                       1u << 20,
                                       0xffffffffULL,
                                       0xffffffffffffffffULL,
                                       5,
                                       0x8000000000000000ULL,
                                       6};
  const auto extra = random_u64(500, 0xdecu);
  for (const auto v : extra) values.push_back(v % 4096);  // small deltas

  std::string buf;
  {
    shard::DeltaEncoder enc;
    for (const auto v : values) enc.put(buf, v);
  }

  // Scalar reference decode.
  std::vector<std::uint64_t> expected(values.size());
  std::size_t ref_pos = 0;
  {
    shard::DeltaDecoder dec;
    for (auto& v : expected) ASSERT_TRUE(dec.get(buf, ref_pos, v));
  }
  EXPECT_EQ(expected, values);

  // Bulk decode, whole and split at an arbitrary interior point (decoder
  // state must carry across calls).
  {
    shard::DeltaDecoder dec;
    std::size_t pos = 0;
    std::vector<std::uint64_t> got(values.size());
    ASSERT_TRUE(dec.get_n(buf, pos, got.data(), got.size()));
    EXPECT_EQ(expected, got);
    EXPECT_EQ(ref_pos, pos);
  }
  {
    shard::DeltaDecoder dec;
    std::size_t pos = 0;
    std::vector<std::uint64_t> got(values.size());
    const std::size_t split = values.size() / 3;
    ASSERT_TRUE(dec.get_n(buf, pos, got.data(), split));
    ASSERT_TRUE(dec.get_n(buf, pos, got.data() + split, got.size() - split));
    EXPECT_EQ(expected, got);
    EXPECT_EQ(ref_pos, pos);
  }

  // Truncation parity: at every cut point the bulk decoder fails exactly
  // when the element-at-a-time loop fails.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    const std::string_view truncated(buf.data(), cut);
    bool loop_ok = true;
    {
      shard::DeltaDecoder dec;
      std::size_t pos = 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        std::uint64_t v = 0;
        if (!dec.get(truncated, pos, v)) {
          loop_ok = false;
          break;
        }
      }
    }
    shard::DeltaDecoder dec;
    std::size_t pos = 0;
    std::vector<std::uint64_t> got(values.size());
    EXPECT_EQ(loop_ok, dec.get_n(truncated, pos, got.data(), got.size()))
        << "cut=" << cut;
  }
}

}  // namespace
}  // namespace jsoncdn
