// Determinism properties of the fault-injection + resilience layer, in the
// style of cdn_scheduler_property_test.cpp: whole-workload runs under a
// fixed fault seed must replay byte-for-byte, switching injection off must
// be bit-identical to a build without the layer, and the underlying
// per-request decisions must be pure (thread-schedule-independent).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdn/network.h"
#include "faults/plan.h"
#include "faults/retry.h"
#include "logs/csv.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace jsoncdn::cdn {
namespace {

faults::FaultPlanConfig faulty_config(std::uint64_t seed, double horizon) {
  faults::FaultPlanConfig config;
  config.enabled = true;
  config.seed = seed;
  config.error_rate = 0.03;
  config.timeout_rate = 0.01;
  config.truncate_rate = 0.005;
  config.latency_spike_rate = 0.01;
  config.outages_per_origin = 1.0;
  config.horizon_seconds = horizon;
  return config;
}

struct RunResult {
  std::string log;  // serialized dataset, the exact bytes a file would hold
  ResilienceMetrics resilience;
  std::vector<BreakerEvent> timeline;
};

RunResult run_network(const workload::GeneratorConfig& wconfig,
                      const NetworkParams& params) {
  workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();
  CdnNetwork network(generator.catalog().objects(), params);
  const auto dataset = network.run(workload.events);

  RunResult out;
  std::ostringstream log;
  logs::LogWriter writer(log);
  for (const auto& record : dataset.records()) writer.write(record);
  out.log = log.str();
  out.resilience = network.total_resilience();
  out.timeline = network.breaker_timeline();
  return out;
}

double workload_horizon(const workload::GeneratorConfig& wconfig) {
  workload::WorkloadGenerator generator(wconfig);
  const auto workload = generator.generate();
  double horizon = 0.0;
  for (const auto& event : workload.events)
    horizon = std::max(horizon, event.time);
  return horizon + 1.0;
}

TEST(FaultsProperty, FixedSeedReplaysByteForByte) {
  const auto wconfig = workload::short_term_scenario(0.001, 99);
  NetworkParams params;
  params.faults =
      faulty_config(faults::env_fault_seed(1337), workload_horizon(wconfig));

  const auto a = run_network(wconfig, params);
  const auto b = run_network(wconfig, params);

  // The run actually exercised the fault paths — otherwise the equalities
  // below are vacuous.
  ASSERT_TRUE(a.resilience.any_activity());

  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.resilience.origin_errors, b.resilience.origin_errors);
  EXPECT_EQ(a.resilience.timeouts, b.resilience.timeouts);
  EXPECT_EQ(a.resilience.truncated_bodies, b.resilience.truncated_bodies);
  EXPECT_EQ(a.resilience.retries, b.resilience.retries);
  EXPECT_EQ(a.resilience.retry_successes, b.resilience.retry_successes);
  EXPECT_EQ(a.resilience.stale_served, b.resilience.stale_served);
  EXPECT_EQ(a.resilience.negative_cache_hits,
            b.resilience.negative_cache_hits);
  EXPECT_EQ(a.resilience.breaker_short_circuits,
            b.resilience.breaker_short_circuits);
  EXPECT_EQ(a.resilience.breaker_trips, b.resilience.breaker_trips);
  EXPECT_EQ(a.resilience.error_responses, b.resilience.error_responses);
  EXPECT_DOUBLE_EQ(a.resilience.backoff_seconds, b.resilience.backoff_seconds);

  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (std::size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_EQ(a.timeline[i].edge_id, b.timeline[i].edge_id);
    EXPECT_EQ(a.timeline[i].domain, b.timeline[i].domain);
    EXPECT_DOUBLE_EQ(a.timeline[i].transition.time,
                     b.timeline[i].transition.time);
    EXPECT_EQ(a.timeline[i].transition.from, b.timeline[i].transition.from);
    EXPECT_EQ(a.timeline[i].transition.to, b.timeline[i].transition.to);
  }
}

TEST(FaultsProperty, InjectionOffIsBitIdenticalToNoLayer) {
  const auto wconfig = workload::short_term_scenario(0.001, 99);

  // enabled == false must win over any configured rates: the whole layer is
  // a no-op and output matches a default (fault-free) network exactly.
  NetworkParams disabled;
  disabled.faults = faulty_config(1337, workload_horizon(wconfig));
  disabled.faults.enabled = false;

  const auto plain = run_network(wconfig, NetworkParams{});
  const auto off = run_network(wconfig, disabled);

  EXPECT_EQ(plain.log, off.log);
  EXPECT_FALSE(off.resilience.any_activity());
  EXPECT_TRUE(off.timeline.empty());
}

TEST(FaultsProperty, DecideIsPureUnderConcurrentCallers) {
  const auto config = faulty_config(faults::env_fault_seed(7), 3600.0);
  const faults::FaultPlan plan(config);

  constexpr std::uint64_t kRequests = 2000;
  const std::vector<std::string> origins = {"origin-a", "origin-b",
                                            "origin-c"};

  // Serial reference grid.
  std::vector<std::vector<faults::FaultOutcome>> expected(origins.size());
  for (std::size_t o = 0; o < origins.size(); ++o) {
    for (std::uint64_t k = 0; k < kRequests; ++k) {
      expected[o].push_back(
          plan.decide(origins[o], k, static_cast<double>(k)).outcome);
    }
  }

  // The same grid computed by concurrent threads, one per origin, each
  // racing over the shared plan. decide() is const + pure, so the result
  // must match the serial pass exactly.
  std::vector<std::vector<faults::FaultOutcome>> got(origins.size());
  std::vector<std::thread> threads;
  threads.reserve(origins.size());
  for (std::size_t o = 0; o < origins.size(); ++o) {
    threads.emplace_back([&, o] {
      for (std::uint64_t k = 0; k < kRequests; ++k) {
        got[o].push_back(
            plan.decide(origins[o], k, static_cast<double>(k)).outcome);
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(got, expected);
}

TEST(FaultsProperty, BackoffDeterministicAcrossThreadsAndBounded) {
  faults::RetryConfig config;
  config.seed = 17;

  std::vector<double> expected;
  for (std::size_t attempt = 0; attempt < 8; ++attempt)
    expected.push_back(faults::backoff_delay(config, "https://d/x", attempt));

  std::vector<std::vector<double>> per_thread(4);
  std::vector<std::thread> threads;
  for (auto& slot : per_thread) {
    threads.emplace_back([&config, &slot] {
      for (std::size_t attempt = 0; attempt < 8; ++attempt)
        slot.push_back(faults::backoff_delay(config, "https://d/x", attempt));
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& slot : per_thread) EXPECT_EQ(slot, expected);

  // Exponential envelope: base * mult^a <= delay < base * mult^a * (1 + j).
  double floor = config.base_delay_seconds;
  for (std::size_t attempt = 0; attempt < 8; ++attempt) {
    EXPECT_GE(expected[attempt], floor);
    EXPECT_LT(expected[attempt], floor * (1.0 + config.jitter));
    floor *= config.multiplier;
  }
}

// Stale-if-error vs negative caching: same origin incident, same seed; the
// stale window decides whether a repeat request inside the negative TTL is
// absorbed (STALE) or failed fast (ERROR). This is the interaction the two
// mechanisms were designed to have: negative caching kills the origin round
// trip, stale-if-error upgrades the response when a usable copy exists.
TEST(FaultsProperty, StaleWindowDecidesNegativeCacheResponse) {
  workload::ObjectSpec obj;
  obj.url = "https://d/x";
  obj.domain = "d";
  obj.content_type = "application/json";
  obj.cacheable = true;
  obj.ttl_seconds = 60.0;
  obj.body_bytes = 1000;

  // Mine a seed: fill succeeds, then the origin stays down for the next two
  // retry budgets (k = 1..6) — the stale-serving path does not populate the
  // negative cache, so in the wide-window variant the repeat request
  // contacts the origin again with ordinals 4..6.
  faults::FaultPlanConfig base;
  base.enabled = true;
  base.error_rate = 0.5;
  std::uint64_t seed = 0;
  for (std::uint64_t candidate = 1; candidate < 2'000'000; ++candidate) {
    faults::FaultPlanConfig probe = base;
    probe.seed = candidate;
    const faults::FaultPlan plan(probe);
    bool ok = plan.decide("d", 0, 0.0).outcome == faults::FaultOutcome::kOk;
    for (std::uint64_t k = 1; ok && k <= 6; ++k)
      ok = plan.decide("d", k, 0.0).outcome == faults::FaultOutcome::kError;
    if (ok) {
      seed = candidate;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no seed found for the incident sequence";
  base.seed = seed;

  const auto run_pair = [&](double stale_window) {
    workload::ObjectCatalog catalog;
    catalog.add(obj);
    faults::FaultPlan plan(base);
    Origin origin(catalog, OriginParams{});
    origin.set_fault_plan(&plan);
    logs::Anonymizer anonymizer(9);
    EdgeParams params;
    params.resilience.stale_if_error_seconds = stale_window;
    EdgeServer edge(0, origin, anonymizer, params);

    workload::RequestEvent ev;
    ev.client_address = "10.0.0.1";
    ev.user_agent = "ua";
    ev.url = obj.url;

    ev.time = 0.0;
    (void)edge.handle(ev);  // fill (MISS)
    ev.time = 61.0;
    const auto incident = edge.handle(ev);  // TTL expired, origin down
    ev.time = 62.0;  // within the 5 s negative TTL of the incident
    const auto repeat = edge.handle(ev);
    return std::pair{incident.cache_status, repeat.cache_status};
  };

  // Wide stale window: both the incident and the negative-cache-answered
  // repeat are absorbed as STALE.
  const auto wide = run_pair(600.0);
  EXPECT_EQ(wide.first, logs::CacheStatus::kStale);
  EXPECT_EQ(wide.second, logs::CacheStatus::kStale);

  // Zero stale window: the copy (1 s past TTL) is too old to use, so the
  // incident is an ERROR and the repeat is answered from the negative cache
  // as the same ERROR — without touching the origin again.
  const auto none = run_pair(0.0);
  EXPECT_EQ(none.first, logs::CacheStatus::kError);
  EXPECT_EQ(none.second, logs::CacheStatus::kError);
}

}  // namespace
}  // namespace jsoncdn::cdn
