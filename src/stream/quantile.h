// Mergeable quantile sketch over non-negative values (response body sizes).
//
// DDSketch-style (Masson et al. '19) logarithmic bucketing: bucket i covers
// (gamma^(i-1), gamma^i] with gamma = (1 + alpha) / (1 - alpha), so any
// returned quantile is within relative error alpha of an exact quantile of
// the ingested stream. Chosen over KLL / t-digest because the state is a
// plain bucket->count map: merge is bucket-wise addition — commutative,
// associative, and bit-identical to the single-pass sketch — which fits the
// repo's deterministic shard-then-merge contract, and the alpha bound is a
// worst-case guarantee rather than an expectation.
//
// Memory is bounded by max_buckets; overflow collapses the lowest buckets
// together (preserving upper-quantile accuracy, like the reference
// implementation). Body sizes span far fewer than max_buckets log-buckets
// at the default alpha, so collapse never triggers in practice; when it has
// triggered, merges remain correct but the lowest quantiles widen.
#pragma once

#include <cstdint>
#include <map>

namespace jsoncdn::stream {

class QuantileSketch {
 public:
  // Requires 0 < alpha < 1 and max_buckets >= 16.
  explicit QuantileSketch(double alpha = 0.01,
                          std::size_t max_buckets = 4096);

  // Adds `count` observations of `value`. Values <= 0 land in a dedicated
  // zero bucket (uploads and empty bodies are legitimately 0 bytes).
  void add(double value, std::uint64_t count = 1);

  // Value at quantile q in [0, 1], within relative error alpha. Returns 0
  // for an empty sketch.
  [[nodiscard]] double quantile(double q) const;

  // Requires matching (alpha, max_buckets); throws otherwise.
  void merge(const QuantileSketch& other);

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] bool collapsed() const noexcept { return collapsed_; }
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    // std::map node: key + count + ~3 pointers + color, rounded up.
    return buckets_.size() * (sizeof(std::int32_t) + sizeof(std::uint64_t) +
                              4 * sizeof(void*)) +
           sizeof(*this);
  }

 private:
  [[nodiscard]] std::int32_t bucket_index(double value) const;
  [[nodiscard]] double bucket_value(std::int32_t index) const;
  void collapse_if_needed();

  double alpha_;
  double gamma_;
  double inv_log_gamma_;
  std::size_t max_buckets_;
  std::uint64_t zero_count_ = 0;
  std::uint64_t total_ = 0;
  bool collapsed_ = false;
  std::map<std::int32_t, std::uint64_t> buckets_;  // ordered for quantile walk
};

}  // namespace jsoncdn::stream
