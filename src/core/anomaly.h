// Anomaly detection on JSON traffic — both directions the paper sketches:
// "detect when a highly unlikely object is requested" (ngram-based, §5.2)
// and "when an object is requested at a different period than it is
// intended" (period-based, §5.1).
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/ngram.h"
#include "stats/rng.h"

namespace jsoncdn::core {

class PeriodDetector;

struct SequenceAnomaly {
  std::size_t transitions = 0;
  std::size_t unpredicted = 0;     // actual next not in the model's top-k
  std::size_t novel = 0;           // actual next never seen in training
  double unpredicted_share = 0.0;
  double mean_surprisal = 0.0;     // mean -log2(score of actual next)
};

// Scores one client's token sequence against a trained model. An in-
// vocabulary token missing from every top-k prediction is an order
// violation, charged `max_surprisal_bits`; a token the model has never seen
// is merely novel (cold objects appear all the time on a CDN), charged the
// lower `novel_surprisal_bits`.
[[nodiscard]] SequenceAnomaly score_sequence(
    const NgramModel& model, std::span<const std::string> tokens,
    std::size_t k = 10, double max_surprisal_bits = 20.0,
    double novel_surprisal_bits = 12.0);

struct PeriodAnomaly {
  std::size_t gaps = 0;
  std::size_t deviant_gaps = 0;  // |gap - period| > tolerance * period
  double deviant_share = 0.0;
};

// Checks observed request times of a flow against its expected period.
[[nodiscard]] PeriodAnomaly check_period(std::span<const double> times,
                                         double expected_period,
                                         double relative_tolerance = 0.25);

struct PeriodVerdict {
  bool detected = false;           // the detector found a period at all
  double period_seconds = 0.0;     // its primary period when detected
  PeriodAnomaly anomaly;           // gap grading against that period
};

// Strategy-routed variant for flows whose intended period is unknown: the
// detector (any core::PeriodDetector — core/period_detector.h) establishes
// the period, then the observed gaps are graded against it. A non-default
// strategy can change the verdict on flows the binned default misses (heavy
// jitter, dropout) — that is the point of routing through the interface.
[[nodiscard]] PeriodVerdict check_period(std::span<const double> times,
                                         const PeriodDetector& detector,
                                         stats::Rng& rng,
                                         double relative_tolerance = 0.25);

}  // namespace jsoncdn::core
