// Kernel bodies shared by the scalar and SIMD translation units. Each TU
// defines JSONCDN_KERNEL_NS (kernels_scalar / kernels_simd) and its own
// compile flags; the arithmetic graph below is identical in both, which is
// what makes the two dispatch paths bit-identical (see kernels.h).
//
// Vectorization strategy: loops are written in lane-blocked or mask-sum
// form — independent accumulator lanes with a fixed combine order — so the
// SIMD build's auto-vectorizer maps lanes onto vector elements without ever
// reassociating a serial reduction. Order-sensitive float sums (per-lag ACF
// chains, bin increments) keep their original element order in both builds.
#ifndef JSONCDN_KERNEL_NS
#error "kernels_impl.h must be included with JSONCDN_KERNEL_NS defined"
#endif

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "stats/kernels.h"

namespace jsoncdn::stats::kernels {
namespace JSONCDN_KERNEL_NS {

inline constexpr std::uint64_t kSplitmixGamma = 0x9e3779b97f4a7c15ULL;
inline constexpr std::uint64_t kSplitmixMul1 = 0xbf58476d1ce4e5b9ULL;
inline constexpr std::uint64_t kSplitmixMul2 = 0x94d049bb133111ebULL;

void fft_pass(std::complex<double>* data, std::size_t n, std::size_t len,
              const std::complex<double>* twiddles) {
  const std::size_t half = len / 2;
  // std::complex<double> is layout-compatible with double[2] ([complex.numbers]).
  double* d = reinterpret_cast<double*>(data);
  const double* w = reinterpret_cast<const double*>(twiddles);
  for (std::size_t i = 0; i < n; i += len) {
    double* a = d + 2 * i;
    double* b = a + 2 * half;
    for (std::size_t k = 0; k < half; ++k) {
      const double ar = a[2 * k];
      const double ai = a[2 * k + 1];
      const double br = b[2 * k];
      const double bi = b[2 * k + 1];
      const double wr = w[2 * k];
      const double wi = w[2 * k + 1];
      const double vr = br * wr - bi * wi;
      const double vi = br * wi + bi * wr;
      a[2 * k] = ar + vr;
      a[2 * k + 1] = ai + vi;
      b[2 * k] = ar - vr;
      b[2 * k + 1] = ai - vi;
    }
  }
}

void complex_norm(std::complex<double>* data, std::size_t n) {
  double* d = reinterpret_cast<double*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    const double re = d[2 * i];
    const double im = d[2 * i + 1];
    d[2 * i] = re * re + im * im;
    d[2 * i + 1] = 0.0;
  }
}

void pgram_extract(const std::complex<double>* freq, std::size_t count,
                   double padded, double* out) {
  const double* f = reinterpret_cast<const double*>(freq);
  for (std::size_t k = 0; k < count; ++k) {
    out[k] = f[2 * (k + 1)] / padded;
  }
}

void acf_extract(const std::complex<double>* corr, std::size_t count,
                 double scale, double energy, double* out) {
  const double* c = reinterpret_cast<const double*>(corr);
  for (std::size_t k = 0; k < count; ++k) {
    out[k] = (c[2 * k] * scale) / energy;
  }
}

void acf_direct(const double* x, std::size_t n, std::size_t max_lag,
                double energy, double* r) {
  std::size_t k = 0;
  // Four lags per block: each lag keeps its own serial ascending-i sum (the
  // order the per-lag scalar loop used), and the four independent chains
  // vectorize across the lag dimension.
  for (; k + 3 <= max_lag && k + 3 < n; k += 4) {
    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
    const std::size_t m = n - (k + 3);  // i range where all four lags exist
    for (std::size_t i = 0; i < m; ++i) {
      const double xi = x[i];
      a0 += xi * x[i + k];
      a1 += xi * x[i + k + 1];
      a2 += xi * x[i + k + 2];
      a3 += xi * x[i + k + 3];
    }
    // Trailing terms of the three shorter lags, same ascending order.
    for (std::size_t i = m; i + k < n; ++i) a0 += x[i] * x[i + k];
    for (std::size_t i = m; i + k + 1 < n; ++i) a1 += x[i] * x[i + k + 1];
    for (std::size_t i = m; i + k + 2 < n; ++i) a2 += x[i] * x[i + k + 2];
    r[k] = a0 / energy;
    r[k + 1] = a1 / energy;
    r[k + 2] = a2 / energy;
    r[k + 3] = a3 / energy;
  }
  for (; k <= max_lag; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i + k < n; ++i) acc += x[i] * x[i + k];
    r[k] = acc / energy;
  }
}

namespace {

// Monotone bijection between finite doubles and uint64 (negatives reversed),
// so binary search over bin boundaries can halve the *representation* space.
inline std::uint64_t ordered_key(double x) noexcept {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof(b));
  return (b >> 63) ? ~b : (b | 0x8000000000000000ULL);
}

inline double ordered_unkey(std::uint64_t k) noexcept {
  const std::uint64_t b = (k >> 63) ? (k & 0x7fffffffffffffffULL) : ~k;
  double x;
  std::memcpy(&x, &b, sizeof(x));
  return x;
}

// Smallest double x in [t_begin, t_end] whose quotient (x - t_begin) / dt
// reaches kd, or t_end if none does. Uses the exact same subtract/divide
// expression as the per-element loop, so for integer kd >= 1 and quotients
// >= 0, `quotient >= kd` is equivalent to `trunc(quotient) >= kd` and the
// returned boundary reproduces the truncating cast's bin edges bit for bit.
// Seeded at the arithmetic edge t_begin + kd * dt and bracketed by galloping
// in representation space — the true edge is normally within a few ulps of
// the seed, so each edge costs a handful of divisions, not a full 64-step
// bisection (division latency chains would otherwise dominate).
inline double bin_edge(double t_begin, double t_end, double dt,
                       double kd) noexcept {
  if (!((t_end - t_begin) / dt >= kd)) return t_end;
  const std::uint64_t kb = ordered_key(t_begin);  // quotient 0 < kd
  std::uint64_t lo = kb;
  std::uint64_t hi = ordered_key(t_end);  // quotient >= kd
  double guess = t_begin + kd * dt;
  if (!(guess >= t_begin)) guess = t_begin;
  if (!(guess <= t_end)) guess = t_end;
  const std::uint64_t g = ordered_key(guess);
  std::uint64_t step = 1;
  if ((guess - t_begin) / dt >= kd) {
    hi = g;
    while (hi - lo >= step && hi - step > kb) {
      const std::uint64_t probe = hi - step;
      if ((ordered_unkey(probe) - t_begin) / dt >= kd) {
        hi = probe;
        step <<= 1;
      } else {
        lo = probe;
        break;
      }
    }
  } else {
    lo = g;
    while (hi - lo >= step) {
      const std::uint64_t probe = lo + step;
      if (probe >= hi) break;
      if ((ordered_unkey(probe) - t_begin) / dt >= kd) {
        hi = probe;
        break;
      }
      lo = probe;
      step <<= 1;
    }
  }
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if ((ordered_unkey(mid) - t_begin) / dt >= kd) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return ordered_unkey(hi);
}

// First pointer in [p, hi) not less than e, assuming a sorted range, found
// by galloping: probes stay within the current bin's run, so the accesses
// are sequential-scale instead of whole-array bisection.
inline const double* gallop_lower_bound(const double* p, const double* hi,
                                        double e) noexcept {
  const auto count = static_cast<std::size_t>(hi - p);
  if (count == 0 || !(p[0] < e)) return p;
  std::size_t bound = 1;
  while (bound < count && p[bound] < e) bound <<= 1;
  const double* lo2 = p + (bound >> 1);  // p[bound >> 1] < e holds
  const double* hi2 = p + (bound < count ? bound : count);
  return std::lower_bound(lo2, hi2, e);
}

}  // namespace

void bin_events(const double* times, std::size_t n, double t_begin,
                double t_end, double dt, double* bins, std::size_t nbins) {
  constexpr std::size_t kBlock = 1024;
  // Sorted fast path. Flow event times arrive chronologically, and the bin
  // index min(trunc((t - t_begin) / dt), nbins - 1) is a monotone step
  // function of t (FP subtract, divide-by-positive, and truncation are all
  // monotone). So instead of dividing per element, binary-search the
  // smallest double that opens each bin — evaluating the identical quotient
  // expression, hence identical edges — and count each bin's run with a
  // two-pointer sweep: O(nbins log) divisions total instead of O(n).
  // NaN times are excluded by the finite-input contract (the per-element
  // loop would cast a NaN quotient, which is undefined).
  constexpr std::size_t kMinSortedN = 4096;
  if (n >= kMinSortedN && nbins >= 1 && n >= 8 * nbins && dt > 0.0 &&
      std::isfinite(dt) && std::isfinite(t_begin) && std::isfinite(t_end) &&
      t_begin < t_end) {
    bool sorted = true;
    for (std::size_t i = 1; i < n && sorted;) {
      // Violation count per block (vectorizes as a mask sum); early exit
      // keeps the cost negligible for genuinely unsorted inputs.
      const std::size_t stop = (n - i < 16384) ? n : i + 16384;
      std::uint32_t violations = 0;
      for (; i < stop; ++i)
        violations += static_cast<std::uint32_t>(times[i] < times[i - 1]);
      sorted = violations == 0;
    }
    if (sorted) {
      const double* const last = times + n;
      const double* p = std::lower_bound(times, last, t_begin);
      const double* const p_hi = std::lower_bound(p, last, t_end);
      const std::size_t top = nbins - 1;
      for (std::size_t k = 0; k < top && p != p_hi; ++k) {
        const double e =
            bin_edge(t_begin, t_end, dt, static_cast<double>(k + 1));
        const double* const p2 = gallop_lower_bound(p, p_hi, e);
        if (p2 != p) bins[k] += static_cast<double>(p2 - p);
        p = p2;
      }
      if (p != p_hi) bins[top] += static_cast<double>(p_hi - p);
      return;
    }
  }
  // Fast path: when bin indices fit an int32 (always, in practice), the
  // truncating cast and the top-edge clamp vectorize too — packed
  // double->int32 exists on every x86-64 baseline, packed double->uint64
  // does not. Out-of-window lanes blend to quotient 0.0 before the cast (so
  // the cast never sees an out-of-range value) and carry weight 0.0; adding
  // +0.0 to bins[0] leaves any count bit-identical because histogram counts
  // are never negative zero. In-window lanes add the same +1.0 in the same
  // ascending element order as the single-pass scalar loop.
  if (nbins <= (std::size_t{1} << 30)) {
    std::int32_t bin[kBlock];
    std::int32_t oki[kBlock];
    const auto top = static_cast<std::int32_t>(nbins - 1);
    // Large batches: scatter into four interleaved integer sub-histograms
    // (independent increment chains, cheap integer adds), then fold back.
    // Every count is an exact small integer, so the fold's u64 sums and the
    // final u64 -> double conversion reproduce the serial loop's doubles bit
    // for bit under the documented integer-count contract on `bins`.
    if (n >= 4 * nbins && nbins <= (std::size_t{1} << 20)) {
      std::vector<std::uint64_t> sub(4 * nbins, 0);
      std::uint64_t* c0 = sub.data();
      std::uint64_t* c1 = c0 + nbins;
      std::uint64_t* c2 = c1 + nbins;
      std::uint64_t* c3 = c2 + nbins;
      for (std::size_t base = 0; base < n; base += kBlock) {
        const std::size_t m = (n - base < kBlock) ? n - base : kBlock;
        for (std::size_t j = 0; j < m; ++j) {
          const double t = times[base + j];
          const double q = (t - t_begin) / dt;
          const bool ok = !(t < t_begin || t >= t_end);
          oki[j] = ok ? 1 : 0;
          const auto v = static_cast<std::int32_t>(ok ? q : 0.0);
          bin[j] = v > top ? top : v;
        }
        std::size_t j = 0;
        for (; j + 4 <= m; j += 4) {
          c0[static_cast<std::size_t>(bin[j])] +=
              static_cast<std::uint64_t>(oki[j]);
          c1[static_cast<std::size_t>(bin[j + 1])] +=
              static_cast<std::uint64_t>(oki[j + 1]);
          c2[static_cast<std::size_t>(bin[j + 2])] +=
              static_cast<std::uint64_t>(oki[j + 2]);
          c3[static_cast<std::size_t>(bin[j + 3])] +=
              static_cast<std::uint64_t>(oki[j + 3]);
        }
        for (; j < m; ++j) {
          c0[static_cast<std::size_t>(bin[j])] +=
              static_cast<std::uint64_t>(oki[j]);
        }
      }
      for (std::size_t s = 0; s < nbins; ++s) {
        bins[s] += static_cast<double>(c0[s] + c1[s] + c2[s] + c3[s]);
      }
      return;
    }
    double w[kBlock];
    for (std::size_t base = 0; base < n; base += kBlock) {
      const std::size_t m = (n - base < kBlock) ? n - base : kBlock;
      // Pass 1 (vectorizes): the division is unconditional — and the exact
      // scalar quotient `(t - t_begin) / dt`, never a reciprocal multiply,
      // so bin-edge rounding is identical — then out-of-window lanes blend
      // to quotient 0.0 BEFORE the truncating cast (the cast never sees an
      // out-of-range or NaN lane) and the clamp mirrors the scalar loop's
      // `if (bin >= nbins) bin = nbins - 1`.
      for (std::size_t j = 0; j < m; ++j) {
        const double t = times[base + j];
        const double q = (t - t_begin) / dt;
        const bool ok = !(t < t_begin || t >= t_end);
        w[j] = ok ? 1.0 : 0.0;
        const auto v = static_cast<std::int32_t>(ok ? q : 0.0);
        bin[j] = v > top ? top : v;
      }
      // Pass 2 (scalar scatter, ascending order preserved).
      for (std::size_t j = 0; j < m; ++j) {
        bins[static_cast<std::size_t>(bin[j])] += w[j];
      }
    }
    return;
  }
  // Histograms wider than 2^30 bins: two-pass form with the size_t cast
  // applied only to in-window quotients.
  double q[kBlock];
  std::uint8_t ok[kBlock];
  for (std::size_t base = 0; base < n; base += kBlock) {
    const std::size_t m = (n - base < kBlock) ? n - base : kBlock;
    for (std::size_t j = 0; j < m; ++j) {
      const double t = times[base + j];
      q[j] = (t - t_begin) / dt;
      ok[j] = static_cast<std::uint8_t>(!(t < t_begin || t >= t_end));
    }
    for (std::size_t j = 0; j < m; ++j) {
      if (!ok[j]) continue;
      auto bin = static_cast<std::size_t>(q[j]);
      if (bin >= nbins) bin = nbins - 1;  // top-edge float round-off
      bins[bin] += 1.0;
    }
  }
}

double max_value(const double* x, std::size_t n, double init) noexcept {
  constexpr std::size_t kLanes = 8;
  double m[kLanes] = {init, init, init, init, init, init, init, init};
  std::size_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    for (std::size_t l = 0; l < kLanes; ++l) {
      const double v = x[i + l];
      m[l] = m[l] < v ? v : m[l];
    }
  }
  for (; i < n; ++i) m[0] = m[0] < x[i] ? x[i] : m[0];
  double best = m[0];
  for (std::size_t l = 1; l < kLanes; ++l) best = best < m[l] ? m[l] : best;
  return best;
}

bool diff_ascending(const double* x, std::size_t n, double* out) {
  // Mask-sum of violations instead of early exit: the diff loop stays
  // branch-free and vectorizes; `x[i+1] < x[i]` (not >=) keeps the caller's
  // NaN behavior.
  std::size_t violations = 0;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    out[i] = x[i + 1] - x[i];
    violations += static_cast<std::size_t>(x[i + 1] < x[i]);
  }
  return violations == 0;
}

namespace {

template <std::size_t kWays, bool kGather>
void count_u32_ways(const std::uint32_t* keys, const std::uint32_t* idx,
                    std::size_t n, std::uint64_t* counts, std::size_t n_keys) {
  // One cache line of padding between sub-tables: power-of-two dictionaries
  // would otherwise put every sub-table's copy of a hot key in the same L1
  // set.
  constexpr std::size_t kPad = 8;
  const std::size_t stride = n_keys + kPad;
  std::vector<std::uint64_t> extra((kWays - 1) * stride, 0);
  std::uint64_t* table[kWays];
  table[0] = counts;
  for (std::size_t w = 1; w < kWays; ++w)
    table[w] = extra.data() + (w - 1) * stride;
  std::size_t i = 0;
  for (; i + kWays <= n; i += kWays) {
    for (std::size_t w = 0; w < kWays; ++w) {
      const std::size_t j = i + w;
      ++table[w][kGather ? keys[idx[j]] : keys[j]];
    }
  }
  for (; i < n; ++i) ++counts[kGather ? keys[idx[i]] : keys[i]];
  for (std::size_t s = 0; s < n_keys; ++s) {
    std::uint64_t sum = 0;
    for (std::size_t w = 1; w < kWays; ++w) sum += table[w][s];
    counts[s] += sum;
  }
}

}  // namespace

void count_u32(const std::uint32_t* keys, const std::uint32_t* idx,
               std::size_t n, std::uint64_t* counts, std::size_t n_keys) {
  // Interleaved sub-tables when they fit comfortably in cache: u64 adds
  // commute, so folding the sub-tables back reproduces the single-table
  // totals exactly while multiplying the independent store chains. Hot-key
  // bursts (time-sorted CDN logs repeat the same object back-to-back)
  // serialise a single table on store-to-load forwarding; eight ways keep
  // even a pure single-key run's forwarding chains eight elements apart.
  constexpr std::size_t kMaxEightWayKeys = 2048;
  constexpr std::size_t kMaxMultiTableKeys = 4096;
  if (n_keys <= kMaxEightWayKeys && n >= 8 * n_keys) {
    if (idx != nullptr) {
      count_u32_ways<8, true>(keys, idx, n, counts, n_keys);
    } else {
      count_u32_ways<8, false>(keys, idx, n, counts, n_keys);
    }
    return;
  }
  if (n_keys <= kMaxMultiTableKeys && n >= 4 * n_keys) {
    if (idx != nullptr) {
      count_u32_ways<4, true>(keys, idx, n, counts, n_keys);
    } else {
      count_u32_ways<4, false>(keys, idx, n, counts, n_keys);
    }
    return;
  }
  if (idx != nullptr) {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[idx[i]]];
  } else {
    for (std::size_t i = 0; i < n; ++i) ++counts[keys[i]];
  }
}

namespace {

template <bool kGather>
void count_enum8_loop(const std::int32_t* vals, const std::uint32_t* idx,
                      std::size_t n, std::uint64_t* counts) {
  std::uint64_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::uint64_t c4 = 0, c5 = 0, c6 = 0, c7 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t v = kGather ? vals[idx[i]] : vals[i];
    c0 += static_cast<std::uint64_t>(v == 0);
    c1 += static_cast<std::uint64_t>(v == 1);
    c2 += static_cast<std::uint64_t>(v == 2);
    c3 += static_cast<std::uint64_t>(v == 3);
    c4 += static_cast<std::uint64_t>(v == 4);
    c5 += static_cast<std::uint64_t>(v == 5);
    c6 += static_cast<std::uint64_t>(v == 6);
    c7 += static_cast<std::uint64_t>(v == 7);
  }
  counts[0] += c0;
  counts[1] += c1;
  counts[2] += c2;
  counts[3] += c3;
  counts[4] += c4;
  counts[5] += c5;
  counts[6] += c6;
  counts[7] += c7;
}

template <bool kGather>
StatusBuckets count_status_loop(const std::int32_t* status,
                                const std::uint32_t* idx,
                                std::size_t n) noexcept {
  StatusBuckets out;
  std::uint64_t b2 = 0, b3 = 0, b4 = 0, b5 = 0, b504 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t s = kGather ? status[idx[i]] : status[i];
    b2 += static_cast<std::uint64_t>(s >= 200 && s < 300);
    b3 += static_cast<std::uint64_t>(s >= 300 && s < 400);
    b4 += static_cast<std::uint64_t>(s >= 400 && s < 500);
    b5 += static_cast<std::uint64_t>(s >= 500);
    b504 += static_cast<std::uint64_t>(s == 504);
  }
  out.ok_2xx = b2;
  out.redirect_3xx = b3;
  out.client_error_4xx = b4;
  out.server_error_5xx = b5;
  out.gateway_timeout_504 = b504;
  return out;
}

}  // namespace

void count_enum8(const std::int32_t* vals, const std::uint32_t* idx,
                 std::size_t n, std::uint64_t* counts) {
  if (idx != nullptr) {
    count_enum8_loop<true>(vals, idx, n, counts);
  } else {
    count_enum8_loop<false>(vals, idx, n, counts);
  }
}

StatusBuckets count_status(const std::int32_t* status,
                           const std::uint32_t* idx, std::size_t n) noexcept {
  return idx != nullptr ? count_status_loop<true>(status, idx, n)
                        : count_status_loop<false>(status, idx, n);
}

void splitmix_batch(const std::uint64_t* keys, std::size_t n,
                    std::uint64_t salt, std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t z = (keys[i] ^ salt) + kSplitmixGamma;
    z = (z ^ (z >> 30)) * kSplitmixMul1;
    z = (z ^ (z >> 27)) * kSplitmixMul2;
    out[i] = z ^ (z >> 31);
  }
}

}  // namespace JSONCDN_KERNEL_NS
}  // namespace jsoncdn::stats::kernels
