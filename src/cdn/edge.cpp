#include "cdn/edge.h"

#include <algorithm>

namespace jsoncdn::cdn {

EdgeServer::EdgeServer(std::uint32_t id, const Origin& origin,
                       const logs::Anonymizer& anonymizer,
                       const EdgeParams& params)
    : id_(id),
      origin_(origin),
      anonymizer_(anonymizer),
      params_(params),
      cache_(params.cache_capacity_bytes),
      overload_(params.overload) {}

bool EdgeServer::is_machine(const std::string& user_agent) {
  const auto it = ua_machine_.find(user_agent);
  if (it != ua_machine_.end()) return it->second;
  const bool machine = machine_class(user_agent);
  ua_machine_.emplace(user_agent, machine);
  return machine;
}

EdgeServer::OriginOutcome EdgeServer::contact_origin(const std::string& url,
                                                     const std::string& domain,
                                                     double now,
                                                     bool revalidate_only) {
  OriginOutcome out;
  auto& breaker =
      breakers_.try_emplace(domain, params_.resilience.breaker).first->second;
  const auto trips_before = breaker.trips();
  if (!breaker.allow(now)) {
    out.short_circuited = true;
    out.status = 503;
    ++resilience_.breaker_short_circuits;
    return out;
  }

  const auto& retry = params_.resilience.retry;
  for (std::size_t attempt = 0;; ++attempt) {
    const auto result = revalidate_only ? origin_.revalidate(url, now)
                                        : origin_.fetch(url, now);
    if (!result.failed()) {
      out.result = result;
      out.latency += result.latency_seconds;
      out.success = true;
      out.status = result.status;
      if (attempt > 0) ++resilience_.retry_successes;
      breaker.record_success(now);
      break;
    }

    ++resilience_.origin_errors;
    if (result.timed_out) {
      ++resilience_.timeouts;
      // A hung connection is abandoned at the budget, not at whatever the
      // origin's internal latency would have been.
      out.latency += params_.resilience.timeout_seconds;
    } else {
      out.latency += result.latency_seconds;
      if (result.truncated) ++resilience_.truncated_bodies;
    }
    out.status = result.timed_out    ? 504
                 : result.truncated ? 502
                                    : result.status;
    breaker.record_failure(now);

    // Stop when retries are exhausted or the breaker just tripped open.
    if (attempt >= retry.max_retries || !breaker.allow(now)) break;
    const double delay = faults::backoff_delay(retry, url, attempt);
    out.latency += delay;
    resilience_.backoff_seconds += delay;
    ++resilience_.retries;
  }
  resilience_.breaker_trips += breaker.trips() - trips_before;
  return out;
}

logs::LogRecord EdgeServer::handle(const workload::RequestEvent& event,
                                   PrefetchPolicy* policy) {
  if (!params_.overload.model_capacity) {
    // Overload protection off: the request path is untouched, so runs are
    // bit-identical to builds without an admission layer.
    return serve(event, policy, /*queue_wait=*/0.0);
  }

  const double now = event.time;
  const bool machine = is_machine(event.user_agent);
  const auto decision = overload_.admit(event.client_address, machine, now);
  auto& cls = machine ? two_class_.machine : two_class_.human;
  ++cls.requests;

  if (!decision.admitted()) {
    logs::LogRecord record;
    record.timestamp = now;
    record.client_id = anonymizer_.pseudonym(event.client_address);
    record.user_agent = event.user_agent;
    record.method = event.method;
    record.url = event.url;
    record.request_bytes = event.request_bytes;
    record.edge_id = id_;
    record.content_type = "text/plain";
    record.response_bytes = 0;
    if (const auto* object = origin_.describe(event.url)) {
      record.domain = object->domain;
    }
    if (decision.outcome == AdmitOutcome::kThrottled) {
      record.status = 429;
      record.cache_status = logs::CacheStatus::kThrottled;
      ++resilience_.throttled;
      ++cls.throttled;
    } else {
      record.status = 503;
      record.cache_status = logs::CacheStatus::kShed;
      if (decision.outcome == AdmitOutcome::kShedQueueFull) {
        ++resilience_.shed_queue_full;
      } else {
        ++resilience_.shed_overload;
      }
      ++cls.shed;
    }
    metrics_.record_rejected();
    return record;
  }

  resilience_.queue_wait_seconds += decision.queue_wait;
  auto record = serve(event, policy, decision.queue_wait);
  // The worker is occupied for the transfer time of whatever body was sent
  // (floored in complete()), so oversized responses hold a slot longer.
  overload_.complete(now, static_cast<double>(record.response_bytes) /
                              params_.edge_bandwidth_bytes_per_s);
  ++cls.served;
  if (record.cache_status == logs::CacheStatus::kHit ||
      record.cache_status == logs::CacheStatus::kRefreshHit ||
      record.cache_status == logs::CacheStatus::kStale) {
    ++cls.hits;
  }
  // serve() pushes exactly one latency per request; reuse it rather than
  // threading a second return value through every exit path.
  cls.latencies.push_back(metrics_.latencies().back());
  return record;
}

logs::LogRecord EdgeServer::serve(const workload::RequestEvent& event,
                                  PrefetchPolicy* policy, double queue_wait) {
  const double now = event.time;
  // Client-perceived floor for anything the edge answers itself: the RTT
  // plus however long the request waited for a worker.
  const double rtt = params_.client_rtt_seconds + queue_wait;

  logs::LogRecord record;
  record.timestamp = now;
  record.client_id = anonymizer_.pseudonym(event.client_address);
  record.user_agent = event.user_agent;
  record.method = event.method;
  record.url = event.url;
  record.request_bytes = event.request_bytes;
  record.edge_id = id_;

  // Metadata first; the origin is only contacted on the paths that really
  // reach it (miss, revalidation, uncacheable tunnel, 404).
  const auto* object = origin_.describe(event.url);
  if (object == nullptr) {
    // Unknown object: tunneled to origin. Even a 404 needs the origin to
    // answer, so a failing origin turns it into an error response. Single
    // attempt — the edge does not retry objects it knows nothing about.
    const auto origin_result = origin_.fetch(event.url, now);
    record.content_type = "text/plain";
    record.response_bytes = 0;
    if (origin_result.failed()) {
      ++resilience_.origin_errors;
      double origin_latency = origin_result.latency_seconds;
      if (origin_result.timed_out) {
        ++resilience_.timeouts;
        origin_latency = params_.resilience.timeout_seconds;
      } else if (origin_result.truncated) {
        ++resilience_.truncated_bodies;
      }
      record.status = origin_result.timed_out    ? 504
                      : origin_result.truncated ? 502
                                                : origin_result.status;
      record.cache_status = logs::CacheStatus::kError;
      ++resilience_.error_responses;
      metrics_.record_error(rtt + origin_latency);
      return record;
    }
    record.status = 404;
    record.cache_status = logs::CacheStatus::kNotCacheable;
    metrics_.record(/*cacheable=*/false, /*hit=*/false, 0,
                    rtt + origin_result.latency_seconds);
    return record;
  }

  record.domain = object->domain;
  record.content_type = object->content_type;
  record.status = 200;
  record.response_bytes = object->body_bytes;

  const double transfer =
      static_cast<double>(object->body_bytes) /
      params_.edge_bandwidth_bytes_per_s;
  const bool upload = http::is_upload(event.method);
  const bool cacheable = object->cacheable && !upload;

  // A fresh pushed copy in the client's buffer answers the request locally:
  // no edge round trip at all. Logged as a HIT — the bytes were served from
  // CDN-controlled storage.
  if (params_.enable_push && cacheable && !upload) {
    const auto push_key = record.client_key() + '\x1f' + event.url;
    if (const auto it = pushed_.find(push_key); it != pushed_.end()) {
      const bool fresh = it->second > now;
      pushed_.erase(it);
      if (fresh) {
        record.cache_status = logs::CacheStatus::kHit;
        metrics_.record(cacheable, /*hit=*/true, object->body_bytes,
                        /*latency=*/0.001);
        metrics_.mark_push_used();
        maybe_prefetch(record, policy, now);
        return record;
      }
    }
  }

  double latency = rtt + transfer;
  bool hit = false;
  // Snapshot any expired copy before lookup() — lookup erases expired
  // entries, and both revalidation and stale-if-error need the copy.
  const auto stale_entry =
      (params_.enable_revalidation || params_.resilience.serve_stale_on_error)
          ? cache_.peek_stale_entry(event.url, now)
          : std::optional<LruCache::StaleEntry>{};
  const bool stale_available =
      params_.enable_revalidation && stale_entry.has_value();
  const double stale_window = params_.resilience.stale_if_error_seconds;
  const bool stale_usable_on_error =
      params_.resilience.serve_stale_on_error && stale_entry.has_value() &&
      now - stale_entry->expires_at <= stale_window;

  if (!cacheable) {
    // Tunneled to customer infrastructure, exactly as the paper describes
    // for the >55% uncacheable JSON share. Retries and the breaker apply;
    // there is no cached copy to fall back on.
    const auto outcome =
        contact_origin(event.url, object->domain, now, /*revalidate_only=*/false);
    if (!outcome.success) {
      record.status = outcome.status;
      record.cache_status = logs::CacheStatus::kError;
      record.response_bytes = 0;
      ++resilience_.error_responses;
      metrics_.record_error(rtt + outcome.latency);
      return record;
    }
    record.cache_status = logs::CacheStatus::kNotCacheable;
    latency += outcome.latency;
  } else if (cache_.lookup(event.url, now).has_value()) {
    hit = true;
    record.cache_status = logs::CacheStatus::kHit;
    if (const auto it = pending_prefetches_.find(event.url);
        it != pending_prefetches_.end()) {
      metrics_.mark_prefetch_useful();
      pending_prefetches_.erase(it);
    }
  } else {
    // Cache miss (possibly with a stale copy on disk). Before touching the
    // origin, consult the negative cache: a failure observed moments ago is
    // answered without another round trip — stale copy if usable, else the
    // remembered error.
    if (const auto neg = negative_cache_.find(event.url);
        neg != negative_cache_.end()) {
      if (neg->second.expires_at > now) {
        ++resilience_.negative_cache_hits;
        if (stale_usable_on_error) {
          record.cache_status = logs::CacheStatus::kStale;
          cache_.restore(event.url, stale_entry->bytes,
                         stale_entry->expires_at);
          ++resilience_.stale_served;
          metrics_.record(cacheable, /*hit=*/true, object->body_bytes,
                          latency);
          maybe_prefetch(record, policy, now);
          return record;
        }
        record.status = neg->second.status;
        record.cache_status = logs::CacheStatus::kError;
        record.response_bytes = 0;
        ++resilience_.error_responses;
        metrics_.record_error(rtt);
        return record;
      }
      negative_cache_.erase(neg);
    }

    const auto outcome =
        contact_origin(event.url, object->domain, now, stale_available);
    if (outcome.success) {
      latency += outcome.latency;
      if (stale_available) {
        // Stale copy on disk: a 304 revalidation refreshed it without
        // re-transferring the body.
        hit = true;
        record.cache_status = logs::CacheStatus::kRefreshHit;
        cache_.insert(event.url, object->body_bytes, object->ttl_seconds, now);
        metrics_.mark_refresh_hit();
      } else {
        record.cache_status = logs::CacheStatus::kMiss;
        cache_.insert(event.url, object->body_bytes, object->ttl_seconds, now);
        pending_prefetches_.erase(event.url);
      }
    } else if (stale_usable_on_error) {
      // RFC 5861 stale-if-error: the expired copy is better than the error.
      // Restore it with its old expiry so later requests during the same
      // outage can also be served stale.
      hit = true;
      record.cache_status = logs::CacheStatus::kStale;
      cache_.restore(event.url, stale_entry->bytes, stale_entry->expires_at);
      ++resilience_.stale_served;
      latency += outcome.latency;
    } else {
      // Unabsorbed failure: remember it (unless the breaker answered without
      // asking the origin) and return the error to the client.
      if (!outcome.short_circuited) {
        negative_cache_[event.url] = {
            now + params_.resilience.negative_ttl_seconds, outcome.status};
        if (negative_cache_.size() > 100'000) {
          std::erase_if(negative_cache_, [now](const auto& kv) {
            return kv.second.expires_at <= now;
          });
        }
      }
      record.status = outcome.status;
      record.cache_status = logs::CacheStatus::kError;
      record.response_bytes = 0;
      ++resilience_.error_responses;
      metrics_.record_error(rtt + outcome.latency);
      return record;
    }
  }

  metrics_.record(cacheable, hit, object->body_bytes, latency);
  maybe_prefetch(record, policy, now);
  return record;
}

std::vector<BreakerEvent> EdgeServer::breaker_timeline() const {
  std::vector<BreakerEvent> events;
  for (const auto& [domain, breaker] : breakers_) {
    for (const auto& transition : breaker.timeline()) {
      events.push_back({id_, domain, transition});
    }
  }
  std::sort(events.begin(), events.end(),
            [](const BreakerEvent& a, const BreakerEvent& b) {
              if (a.transition.time != b.transition.time) {
                return a.transition.time < b.transition.time;
              }
              return a.domain < b.domain;
            });
  return events;
}

void EdgeServer::maybe_prefetch(const logs::LogRecord& served,
                                PrefetchPolicy* policy, double now) {
  if (policy == nullptr) return;
  auto candidates = policy->candidates(served);
  std::size_t issued = 0;
  std::size_t pushed = 0;
  for (const auto& url : candidates) {
    if (issued >= params_.max_prefetches_per_request) break;
    const workload::ObjectSpec* object = nullptr;
    if (!cache_.contains(url, now)) {
      const auto result = origin_.fetch(url, now);
      // Speculative traffic gets no resilience budget: a failed prefetch is
      // simply dropped.
      if (result.object == nullptr || result.failed() ||
          !result.object->cacheable) {
        continue;
      }
      object = result.object;
      cache_.insert(url, object->body_bytes, object->ttl_seconds, now);
      pending_prefetches_.insert(url);
      metrics_.record_prefetch(object->body_bytes);
      ++issued;
    }
    // Push the speculative response to this client as well: the copy rides
    // the open connection and is valid for a short window.
    if (params_.enable_push && pushed < params_.max_pushes_per_request) {
      const auto bytes =
          object != nullptr ? object->body_bytes : cache_.lookup(url, now)
                                  .value_or(0);
      if (bytes > 0) {
        pushed_[served.client_key() + '\x1f' + url] =
            now + params_.push_validity_seconds;
        metrics_.record_push(bytes);
        ++pushed;
      }
    }
  }
  // Bound push-table memory: drop expired entries once the table grows past
  // the configured size, or periodically on simulated time. Both triggers
  // only remove entries whose expiry has passed — entries a later request
  // could never consume — so sweeping cannot change any served response.
  if (pushed_.size() > params_.push_table_sweep_entries ||
      now - last_push_sweep_ >= params_.push_table_sweep_seconds) {
    last_push_sweep_ = now;
    std::erase_if(pushed_, [now](const auto& kv) { return kv.second <= now; });
  }
}

}  // namespace jsoncdn::cdn
