#include "shard/varint.h"

namespace jsoncdn::shard {

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(std::string_view buf, std::size_t& pos,
                std::uint64_t& out) noexcept {
  std::uint64_t value = 0;
  unsigned shift = 0;
  std::size_t p = pos;
  while (p < buf.size()) {
    const auto byte = static_cast<std::uint8_t>(buf[p++]);
    if (shift == 63 && byte > 1) return false;  // bits beyond the 64th
    value |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      pos = p;
      out = value;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;  // longer than 10 bytes
  }
  return false;  // truncated mid-varint
}

void pack3(std::string& out, const std::uint8_t* values, std::size_t n) {
  std::uint32_t acc = 0;
  unsigned bits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    acc |= static_cast<std::uint32_t>(values[i] & 0x7u) << bits;
    bits += 3;
    while (bits >= 8) {
      out.push_back(static_cast<char>(acc & 0xff));
      acc >>= 8;
      bits -= 8;
    }
  }
  if (bits > 0) out.push_back(static_cast<char>(acc & 0xff));
}

bool unpack3(std::string_view buf, std::size_t& pos, std::uint8_t* values,
             std::size_t n) noexcept {
  const std::size_t need = (3 * n + 7) / 8;
  if (pos > buf.size() || need > buf.size() - pos) return false;
  std::uint32_t acc = 0;
  unsigned bits = 0;
  std::size_t p = pos;
  for (std::size_t i = 0; i < n; ++i) {
    if (bits < 3) {
      acc |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(buf[p++]))
             << bits;
      bits += 8;
    }
    values[i] = static_cast<std::uint8_t>(acc & 0x7u);
    acc >>= 3;
    bits -= 3;
  }
  pos += need;
  return true;
}

}  // namespace jsoncdn::shard
