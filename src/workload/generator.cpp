#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace jsoncdn::workload {

const std::vector<PeriodChoice>& canonical_periods() {
  // Spike set from Fig. 5 (even intervals dominate) plus a few oddball
  // periods so the histogram has realistic off-spike mass.
  static const std::vector<PeriodChoice> kPeriods = {
      {30.0, 0.16}, {60.0, 0.22}, {120.0, 0.13}, {180.0, 0.11},
      {300.0, 0.09}, {600.0, 0.11}, {900.0, 0.08}, {1800.0, 0.06},
      {45.0, 0.02},  {75.0, 0.02},
  };
  return kPeriods;
}

namespace {

double sample_period(stats::Rng& rng) {
  const auto& choices = canonical_periods();
  std::vector<double> weights;
  weights.reserve(choices.size());
  for (const auto& c : choices) weights.push_back(c.weight);
  return choices[stats::weighted_choice(weights, rng)].seconds;
}

std::string address_of(std::size_t client_index) {
  // Synthetic 10.x.y.z addresses; unique per client.
  const auto i = client_index;
  return "10." + std::to_string((i >> 16) & 0xff) + "." +
         std::to_string((i >> 8) & 0xff) + "." + std::to_string(i & 0xff);
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(GeneratorConfig config)
    : config_(std::move(config)) {
  if (config_.duration_seconds <= 0.0)
    throw std::invalid_argument("WorkloadGenerator: duration <= 0");
  if (config_.n_clients == 0)
    throw std::invalid_argument("WorkloadGenerator: n_clients == 0");
  stats::Rng croot(config_.catalog_seed != 0 ? config_.catalog_seed
                                             : config_.seed);
  catalog_ = std::make_unique<DomainCatalog>(config_.catalog,
                                             croot.fork("catalog"));
  const auto& domains = catalog_->domains();
  app_graphs_.reserve(domains.size());
  auto graph_params = config_.app_graph;
  graph_params.json_size_log_shift = config_.catalog.json_size_log_shift;
  for (std::size_t d = 0; d < domains.size(); ++d) {
    app_graphs_.emplace_back(domains[d], catalog_->mutable_objects(),
                             graph_params, croot.fork("appgraph").fork(d));
  }
}

Workload WorkloadGenerator::generate() const {
  stats::Rng root(config_.seed);
  // Canonical polling periods are firmware properties: tied to the catalog
  // seed so shared-ecosystem runs agree on them.
  stats::Rng setup = stats::Rng(config_.catalog_seed != 0 ? config_.catalog_seed
                                                          : config_.seed)
                         .fork("period-setup");

  const auto& domains = catalog_->domains();
  const double window = config_.duration_seconds;

  // Per-domain canonical polling period + client adherence probability.
  std::vector<double> canonical(domains.size());
  std::vector<double> adherence(domains.size());
  for (std::size_t d = 0; d < domains.size(); ++d) {
    canonical[d] = sample_period(setup);
    adherence[d] = setup.uniform(config_.canonical_period_adherence_lo,
                                 config_.canonical_period_adherence_hi);
  }

  Workload out;
  auto& truth = out.truth;

  const auto m2m_hubs = catalog_->top_domains(config_.m2m_top_domains);

  const std::vector<double> class_weights = {
      config_.shares.mobile_app,     config_.shares.mobile_browser,
      config_.shares.desktop_browser, config_.shares.embedded,
      config_.shares.library,        config_.shares.no_ua,
      config_.shares.garbage_ua,
  };
  constexpr ProfileClass kClasses[] = {
      ProfileClass::kMobileApp,      ProfileClass::kMobileBrowser,
      ProfileClass::kDesktopBrowser, ProfileClass::kEmbedded,
      ProfileClass::kLibrary,        ProfileClass::kNoUserAgent,
      ProfileClass::kGarbageUa,
  };

  auto append = [&](std::vector<RequestEvent>&& events) {
    for (auto& ev : events) out.events.push_back(std::move(ev));
  };

  // Records an app session's true URL chain before appending its events.
  auto append_session = [&](std::vector<RequestEvent>&& events) {
    if (!events.empty()) {
      SessionTruth st;
      st.client_address = events.front().client_address;
      st.user_agent = events.front().user_agent;
      st.urls.reserve(events.size());
      for (const auto& ev : events) st.urls.push_back(ev.url);
      truth.sessions.push_back(std::move(st));
    }
    append(std::move(events));
  };

  // Hybrid-app webview: after an app session, optionally load one HTML page
  // of the same domain (plus its template assets).
  auto maybe_webview = [&](const std::vector<RequestEvent>& session,
                           std::size_t dom, stats::Rng& rng) {
    if (session.empty() || !rng.bernoulli(config_.app_webview_html_prob))
      return;
    const auto& domain = domains[dom];
    if (domain.html_objects.empty()) return;
    const auto page_index = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(domain.html_objects.size()) - 1));
    RequestEvent ev;
    ev.time = session.back().time + rng.uniform(0.5, 3.0);
    ev.client_address = session.back().client_address;
    ev.user_agent = session.back().user_agent;
    ev.method = http::Method::kGet;
    ev.url = catalog_->objects().at(domain.html_objects[page_index]).url;
    out.events.push_back(std::move(ev));
  };

  // Emits one periodic flow for `client` and records the ground truth.
  // Machine-to-machine traffic concentrates: with m2m_concentration the
  // flow targets one of the hub domains rather than the client's favourite.
  auto add_periodic_flow = [&](const std::string& address,
                               const std::string& ua, std::size_t dom,
                               bool prefer_upload, stats::Rng& rng) {
    if (!m2m_hubs.empty() && rng.bernoulli(config_.m2m_concentration)) {
      dom = m2m_hubs[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(m2m_hubs.size()) - 1))];
    }
    const auto& domain = domains[dom];
    const bool upload = prefer_upload ? rng.bernoulli(0.75)
                                      : rng.bernoulli(0.35);
    const auto obj_index =
        upload ? domain.telemetry_object : domain.poll_object;
    if (!obj_index) return;
    const auto& url = catalog_->objects().at(*obj_index).url;

    const PeriodicStress& stress = config_.periodic_stress;
    // Applies the stress knobs to one flow's params. Parameter-value
    // changes only — no RNG draws — so inert knobs leave streams
    // bit-identical.
    auto apply_stress = [&](PeriodicFlowParams& params) {
      if (stress.jitter_relative > 0.0) {
        // Per-flow sigma uniform in [5%, jitter_relative] of the period: a
        // fleet of pollers with unequal timer quality, so the stress sweeps
        // from easy to hopeless instead of one cliff. Guarded draw keeps
        // the knob inert at 0.
        const double lo = std::min(0.05, stress.jitter_relative);
        const double rel = rng.uniform(lo, stress.jitter_relative);
        params.jitter_stddev =
            std::max(params.jitter_stddev, rel * params.period_seconds);
      }
      params.drift_per_cycle = stress.drift_per_cycle;
      if (stress.dropout_prob >= 0.0)
        params.dropout_prob = stress.dropout_prob;
      params.diurnal_amplitude = stress.diurnal_amplitude;
      params.diurnal_period = stress.diurnal_period;
    };
    // Emits one flow to `url` and records its truth row.
    auto emit_flow = [&](const PeriodicFlowParams& params,
                         stats::Rng& rng) {
      // Device online for a bounded stretch, not the whole window: flows
      // need >= 10 requests to enter the analysis but should not dominate
      // volume.
      const double ticks = static_cast<double>(rng.uniform_int(12, 60));
      const double span = std::min(window, params.period_seconds * ticks);
      const double start = rng.uniform(0.0, std::max(1e-9, window - span));
      PeriodicFlowParams flow_params = params;
      flow_params.phase_offset = rng.uniform(0.0, params.period_seconds);
      auto events = generate_periodic_flow(
          url, upload ? http::Method::kPost : http::Method::kGet, address,
          ua, start, start + span, flow_params, rng);
      if (events.empty()) return;
      PeriodicTruth pt;
      pt.client_address = address;
      pt.user_agent = ua;
      pt.url = url;
      pt.period_seconds = params.period_seconds;
      pt.request_count = events.size();
      truth.periodic_flows.push_back(std::move(pt));
      truth.periodic_events += events.size();
      append(std::move(events));
    };

    PeriodicFlowParams params;
    params.period_seconds = rng.bernoulli(adherence[dom])
                                ? canonical[dom]
                                : sample_period(rng);
    params.jitter_stddev = config_.periodic_jitter_stddev;
    apply_stress(params);
    emit_flow(params, rng);

    // Overlapping multi-period telemetry: a second flow to the SAME object
    // whose period is not a near-multiple of the first, so neither is a
    // harmonic of the other. Guarded draws keep the knob inert at 0.
    if (stress.multi_period_share > 0.0 &&
        rng.bernoulli(stress.multi_period_share)) {
      double second_period = 0.0;
      for (int attempt = 0; attempt < 8; ++attempt) {
        const double p = sample_period(rng);
        const double ratio = std::max(p, params.period_seconds) /
                             std::min(p, params.period_seconds);
        const double nearest = std::max(1.0, std::round(ratio));
        if (std::abs(ratio - nearest) / nearest > 0.25) {
          second_period = p;
          break;
        }
      }
      if (second_period > 0.0) {
        PeriodicFlowParams second;
        second.period_seconds = second_period;
        second.jitter_stddev = config_.periodic_jitter_stddev;
        apply_stress(second);
        emit_flow(second, rng);
      }
    }
  };

  auto interactive_session_starts = [&](stats::Rng& rng) {
    std::vector<double> starts;
    const double mean = config_.mean_sessions_per_client;
    // Poisson-distributed session count, uniform start times.
    const double rate = mean / window;
    stats::PoissonProcess process(std::max(rate, 1e-12));
    starts = process.arrivals(0.0, window, rng);
    return starts;
  };

  for (std::size_t i = 0; i < config_.n_clients; ++i) {
    stats::Rng rng = root.fork("client").fork(i);
    const auto cls =
        kClasses[stats::weighted_choice(class_weights, rng)];
    const auto& profile = sample_profile(cls, rng);
    const auto ua = materialize_user_agent(profile, rng);
    const auto address = address_of(i);
    const auto favorite = catalog_->sample_domain(rng);

    ClientTruth ct;
    ct.address = address;
    ct.user_agent = ua;
    ct.profile_class = cls;
    ct.device = profile.true_device;
    ct.agent = profile.true_agent;

    switch (cls) {
      case ProfileClass::kMobileApp: {
        for (double t0 : interactive_session_starts(rng)) {
          auto session = generate_app_session(app_graphs_[favorite], address,
                                              ua, t0, config_.app_session,
                                              rng);
          maybe_webview(session, favorite, rng);
          append_session(std::move(session));
        }
        if (rng.bernoulli(config_.periodic.mobile_app)) {
          ct.runs_periodic_flow = true;
          add_periodic_flow(address, ua, favorite,
                            /*prefer_upload=*/true, rng);
        }
        break;
      }
      case ProfileClass::kMobileBrowser:
      case ProfileClass::kDesktopBrowser: {
        for (double t0 : interactive_session_starts(rng)) {
          append(generate_browser_session(domains[favorite],
                                          catalog_->objects(), address,
                                          ua, t0,
                                          config_.browser_session, rng));
        }
        break;
      }
      case ProfileClass::kEmbedded: {
        if (rng.bernoulli(config_.periodic.embedded)) {
          ct.runs_periodic_flow = true;
          // IoT / watch style: one or two periodic flows.
          add_periodic_flow(address, ua, favorite,
                            /*prefer_upload=*/true, rng);
          if (rng.bernoulli(0.3)) {
            add_periodic_flow(address, ua,
                              catalog_->sample_domain(rng),
                              /*prefer_upload=*/false, rng);
          }
        } else {
          // Console / smart-TV app behaviour.
          for (double t0 : interactive_session_starts(rng)) {
            append_session(generate_app_session(app_graphs_[favorite], address,
                                                ua, t0,
                                                config_.app_session, rng));
          }
        }
        break;
      }
      case ProfileClass::kLibrary: {
        const auto& domain = domains[favorite];
        if (domain.telemetry_object) {
          const auto& url = catalog_->objects().at(*domain.telemetry_object).url;
          const double span = std::min(
              window, rng.uniform(config_.beacon_session_lo_seconds,
                                  config_.beacon_session_hi_seconds));
          const double start = rng.uniform(0.0, std::max(1e-9, window - span));
          append(generate_poisson_beacon(url, address, ua,
                                         start, start + span,
                                         config_.beacon_rate, rng));
        }
        if (rng.bernoulli(config_.periodic.library)) {
          ct.runs_periodic_flow = true;
          add_periodic_flow(address, ua, favorite,
                            /*prefer_upload=*/false, rng);
        }
        break;
      }
      case ProfileClass::kNoUserAgent:
      case ProfileClass::kGarbageUa: {
        // Unknown UAs hide a mix of app traffic and scripted beacons.
        if (rng.bernoulli(config_.unknown_app_like_share)) {
          for (double t0 : interactive_session_starts(rng)) {
            append_session(generate_app_session(app_graphs_[favorite], address,
                                                ua, t0,
                                                config_.app_session, rng));
          }
        } else {
          const auto& domain = domains[favorite];
          if (domain.telemetry_object) {
            const auto& url =
                catalog_->objects().at(*domain.telemetry_object).url;
            const double span = std::min(
                window, rng.uniform(config_.beacon_session_lo_seconds,
                                    config_.beacon_session_hi_seconds));
            const double start =
                rng.uniform(0.0, std::max(1e-9, window - span));
            append(generate_poisson_beacon(url, address, ua, start,
                                           start + span, config_.beacon_rate,
                                           rng));
          }
        }
        const double p = cls == ProfileClass::kNoUserAgent
                             ? config_.periodic.no_ua
                             : config_.periodic.garbage_ua;
        if (rng.bernoulli(p)) {
          ct.runs_periodic_flow = true;
          add_periodic_flow(address, ua, favorite,
                            /*prefer_upload=*/true, rng);
        }
        break;
      }
    }
    truth.clients.push_back(std::move(ct));
  }

  // Adversarial traffic rides on top of the benign stream. The benign
  // event count is measured post-clamp so the hostile share targets what
  // the CDN will actually see; hostile events are emitted in-window.
  if (config_.hostile.hostile_share > 0.0) {
    std::erase_if(out.events, [&](const RequestEvent& ev) {
      return ev.time < 0.0 || ev.time >= window;
    });
    inject_hostile_traffic(out, *catalog_, config_.hostile, window,
                           out.events.size(), root.fork("hostile"));
  }

  // Clamp to the window (sessions started near the end may overrun) and
  // establish global time order.
  std::erase_if(out.events, [&](const RequestEvent& ev) {
    return ev.time < 0.0 || ev.time >= window;
  });
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const RequestEvent& a, const RequestEvent& b) {
                     return a.time < b.time;
                   });
  truth.total_events = out.events.size();

  // Domain -> industry label, straight from the catalog's assignment.
  for (const auto& domain : domains) {
    truth.industry_of_domain.emplace(domain.name,
                                     std::string(to_string(domain.industry)));
  }

  // URL -> template key map for clustered-prediction scoring.
  for (const auto& graph : app_graphs_) {
    for (std::size_t t = 0; t < graph.endpoint_count(); ++t) {
      const std::string key = graph.domain() + "#" + std::to_string(t);
      for (const auto& url : graph.urls_of(t)) {
        truth.template_of_url.emplace(url, key);
      }
    }
  }
  return out;
}

}  // namespace jsoncdn::workload
